#ifndef MRX_INDEX_M_STAR_INDEX_H_
#define MRX_INDEX_M_STAR_INDEX_H_

#include <cstddef>
#include <vector>

#include "index/bisimulation.h"
#include "index/evaluator.h"
#include "index/index_graph.h"
#include "query/data_evaluator.h"
#include "query/path_expression.h"
#include "util/status.h"

namespace mrx {

class ThreadPool;

/// \brief The M*(k)-index (paper §4): a *multiresolution* structural index.
///
/// Logically it is a sequence of component indexes I0, I1, ..., organized
/// in a partition hierarchy: each Ii is an M(k)-like index whose local
/// similarity values are capped at i, and Ii+1 refines Ii (every Ii+1 node
/// has exactly one supernode in Ii whose extent contains its own). The
/// hierarchy keeps k-bisimilarity information for *all* k up to the finest
/// resolution required, which:
///   - lets short queries run on coarse (small) components,
///   - gives refinement "perfectly qualified" parents (always exactly the
///     (k-1)-bisimulation), eliminating over-refinement due to
///     overqualified parents (§2's Figure 4 problem).
///
/// Physical size accounting follows §4/§5: a node of Ii+1 that is its
/// supernode's only subnode is a *duplicate* and not counted; neither is an
/// edge between two duplicates, nor the cross link to a duplicate.
class MStarIndex;

/// One component's logical content, used by the storage layer to persist
/// and reassemble an M*(k)-index. Nodes are identified by their position
/// ("ordinal") in these parallel vectors.
struct MStarComponentSpec {
  std::vector<Extent> extents;  ///< Sorted data-node sets, per node.
  std::vector<int32_t> ks;      ///< Local similarity, per node.
  /// Ordinal of each node's supernode within the *previous* component's
  /// spec; ignored for component 0.
  std::vector<uint32_t> supernodes;
};

class MStarIndex {
 public:
  /// Starts with the single component I0 = A(0); `g` must outlive the
  /// index.
  explicit MStarIndex(const DataGraph& g);

  /// Reassembles an index from per-component partitions (the storage
  /// layer's load path). Adjacency is recomputed from the data graph
  /// (Property 2 makes index edges derivable), and the result is checked
  /// against Properties 1-5 before being returned.
  static Result<MStarIndex> FromComponents(
      const DataGraph& g, const std::vector<MStarComponentSpec>& specs);

  /// Builds the *static* multiresolution hierarchy: component Ii is the
  /// full A(i) partition, for i = 0..k_max. No workload awareness — every
  /// node is refined to the cap everywhere. Precise for every simple path
  /// expression of length ≤ k_max, at the size cost the paper's adaptive
  /// refinement exists to avoid (the static-vs-adaptive ablation bench
  /// quantifies the gap). Each level is one refinement round on top of the
  /// previous level's partition (not a from-scratch rebuild), sharded over
  /// `pool` when one is given; component materialization and property
  /// verification then fan out over the levels. Ids are byte-identical for
  /// any thread count (see docs/PERFORMANCE.md). `options` carries the
  /// pool and an optional shared refinement scratch (see RefineOptions).
  static MStarIndex BuildStaticHierarchy(const DataGraph& g, int k_max,
                                         const RefineOptions& options = {});

  /// Transitional shim for the pre-RefineOptions overload (no default on
  /// `pool` so two-argument calls resolve to the options form).
  [[deprecated("pass RefineOptions{pool, scratch} instead")]]
  static MStarIndex BuildStaticHierarchy(const DataGraph& g, int k_max,
                                         ThreadPool* pool);

  /// REFINE* (§4.2): creates components up to I_length(fup) (by copying)
  /// if needed, then refines the hierarchy so `fup` evaluates precisely in
  /// the finest required component, and finally breaks any surviving false
  /// instance with PROMOTE*.
  void Refine(const PathExpression& fup);

  /// Refines for a whole batch of FUPs, equivalent to calling Refine on
  /// each in order. The target sets of all eligible expressions are
  /// evaluated up front — they depend only on the immutable data graph,
  /// not on index state — and fan out over the thread pool when one is
  /// attached; the refinement itself stays serial (and deterministic).
  void RefineBatch(const std::vector<PathExpression>& fups);

  /// Attaches a thread pool used to parallelize batch target evaluation
  /// and cascade regrouping. May be null (serial). The pool must outlive
  /// the index; clones do NOT inherit it (published read-only copies have
  /// no refinement to parallelize).
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }
  ThreadPool* thread_pool() const { return pool_; }

  /// §4.1 "Naive evaluation": evaluates in component I_min(length, finest)
  /// with the M(k) query algorithm.
  QueryResult QueryNaive(const PathExpression& path);

  /// §4.1 QUERYTOPDOWN: evaluates prefixes of increasing length in
  /// successively finer components, descending through the partition
  /// hierarchy via supernode links, and validates under-refined answers.
  QueryResult QueryTopDown(const PathExpression& path);

  /// Concurrent-read variants of the query strategies: identical results,
  /// but validation runs through the caller-supplied evaluator instead of
  /// the index's internal scratch evaluator. Queries never mutate the
  /// index, so any number of threads may call these on one index
  /// concurrently as long as (a) each thread passes its own evaluator and
  /// (b) no thread is inside Refine() at the same time — the server
  /// subsystem enforces both (see docs/SERVER.md).
  QueryResult QueryNaive(const PathExpression& path,
                         DataEvaluator* validator) const;
  QueryResult QueryTopDown(const PathExpression& path,
                           DataEvaluator* validator) const;
  QueryResult QueryBottomUp(const PathExpression& path,
                            DataEvaluator* validator) const;
  QueryResult QueryHybrid(const PathExpression& path,
                          DataEvaluator* validator) const;
  QueryResult QueryHybrid(const PathExpression& path, size_t meet,
                          DataEvaluator* validator) const;
  QueryResult QueryWithPrefilter(const PathExpression& path, size_t sub_begin,
                                 size_t sub_end,
                                 DataEvaluator* validator) const;

  /// Deep copy over the same data graph. The server's refinement worker
  /// refines a private master copy off the read path and publishes clones,
  /// so readers never observe a half-refined hierarchy.
  MStarIndex Clone() const;

  /// §4.1 "Subpath pre-filtering": evaluates the floating subpath
  /// steps[sub_begin..sub_end] in the coarse component of its own length,
  /// maps the survivors down to the finest needed component, and finishes
  /// the full expression there with the frontier at step `sub_end`
  /// restricted to the survivors. `sub_begin <= sub_end < num_steps()`.
  QueryResult QueryWithPrefilter(const PathExpression& path,
                                 size_t sub_begin, size_t sub_end);

  /// §4.1 "Other approaches", bottom-up: evaluates progressively longer
  /// *suffixes* of the expression in progressively finer components.
  /// Because k-bisimilarity guarantees nothing about outgoing paths, every
  /// descent re-checks downward that the suffix still exists — the
  /// overhead the paper predicts makes bottom-up lose to top-down (the
  /// strategy ablation bench quantifies it). Anchored paths are rejected
  /// to the top-down algorithm internally.
  QueryResult QueryBottomUp(const PathExpression& path);

  /// §4.1 "Other approaches", hybrid: top-down for the prefix up to step
  /// `meet` (default: the middle), bottom-up for the suffix, joined at the
  /// meeting step in the finest needed component.
  QueryResult QueryHybrid(const PathExpression& path);
  QueryResult QueryHybrid(const PathExpression& path, size_t meet);

  size_t num_components() const { return components_.size(); }
  const IndexGraph& component(size_t i) const { return components_[i].graph; }

  /// The supernode in component i-1 of node `v` of component i (i ≥ 1).
  IndexNodeId supernode(size_t i, IndexNodeId v) const {
    return components_[i].supernode[v];
  }

  /// Total reorganization effort across all components (including the
  /// cascade realignments).
  RefinementStats TotalRefinementStats() const;

  /// Physical node count across components (§5 cost metric): nodes of I0
  /// plus non-duplicate nodes of finer components.
  size_t PhysicalNodeCount() const;

  /// Physical edge count: edges of I0, edges of finer components not
  /// connecting two duplicates, plus cross links to non-duplicate nodes.
  size_t PhysicalEdgeCount() const;

  /// Verifies Properties 1-5 of §4 that are checkable structurally
  /// (component consistency, caps, hierarchy refinement, Property 4 k
  /// bounds, Property 5 stability). Bisimilarity of extents is checked
  /// separately in tests against reference partitions.
  Status CheckProperties() const;

  /// Same checks fanned out per component over `pool` (may be null =
  /// serial). Reports the same error the serial walk would: the failing
  /// component with the lowest index wins.
  Status CheckProperties(ThreadPool* pool) const;

 private:
  /// Tag for the internal constructor that skips building the A(0)
  /// component (BuildStaticHierarchy materializes all components itself).
  struct EmptyInit {};
  MStarIndex(const DataGraph& g, EmptyInit);
  struct Component {
    IndexGraph graph;
    /// Per node id (parallel to graph's id space): the node's supernode in
    /// the previous component; kInvalidIndexNode in component 0.
    std::vector<IndexNodeId> supernode;
  };

  /// Appends a copy of the finest component; supernode links are identity.
  void AppendComponentCopy();

  /// Refine's body after target evaluation: shared by Refine (which
  /// evaluates inline) and RefineBatch (which pre-evaluates in parallel).
  void RefineWithTarget(const PathExpression& fup,
                        const std::vector<NodeId>& target);

  /// REFINENODE*, reformulated over data-node sets: ensures every index
  /// node of component k containing a node of `relevant` has similarity
  /// ≥ k, recursing on predecessors in component k-1 first and then
  /// splitting ancestor supernodes coarse-to-fine with SPLITNODE*,
  /// propagating each component's changes to finer components immediately.
  void RefineNodeStar(int k, const std::vector<NodeId>& relevant);

  /// SPLITNODE* (§4.2) on node `v` of component `ci`: splits by the Succ
  /// sets of the *perfectly qualified* parents of v's supernode in
  /// component ci-1, keeps `relevant` pieces at similarity ci, merges the
  /// rest. Then cascades the refinement into finer components.
  void SplitNodeStar(int ci, IndexNodeId v,
                     const std::vector<NodeId>& relevant);

  /// Replaces `v` in component `ci` by `parts` (inheriting v's supernode)
  /// and realigns all finer components with the new partition.
  void SplitAndPropagate(int ci, IndexNodeId v,
                         std::vector<IndexGraph::Part> parts);

  /// Realigns component `ci` with component ci-1 over the data nodes in
  /// `affected` (splitting nodes that now span several supernodes and
  /// refreshing supernode links), recursing into finer components.
  void CascadeInto(int ci, const std::vector<NodeId>& affected);

  /// PROMOTE*: like RefineNodeStar but relevance-free, breaking false
  /// instances of `fup`; returns true as soon as none remain.
  bool PromoteStar(int k, const std::vector<NodeId>& extent,
                   const PathExpression& fup);

  bool NoFalseInstances(const PathExpression& fup);

  /// True if node `v` of component `i` (≥1) duplicates its supernode
  /// (equal extents).
  bool IsDuplicate(size_t i, IndexNodeId v) const;

  /// Shared tail of the query strategies: collects extents of the target
  /// index nodes of `path` in component `ci`, validating under-refined
  /// ones through `validator`, into `result`.
  void CollectAnswer(const PathExpression& path, size_t ci,
                     std::vector<IndexNodeId> target, DataEvaluator* validator,
                     QueryResult* result) const;

  /// True iff `v` (in component `ci`) has an outgoing instance of
  /// steps[from..] of `path` within that component; visited index nodes
  /// are charged to `stats`. `v`'s own label is assumed checked.
  bool HasOutgoingSuffix(size_t ci, IndexNodeId v,
                         const PathExpression& path, size_t from,
                         QueryStats* stats) const;

  /// Maps index nodes of component `from_ci` to the index nodes of the
  /// finer component `to_ci` covering the same data, charging the visit
  /// count to `stats`.
  std::vector<IndexNodeId> DescendNodes(size_t from_ci, size_t to_ci,
                                        const std::vector<IndexNodeId>& nodes,
                                        QueryStats* stats) const;

  const DataGraph& data_;
  DataEvaluator evaluator_;
  std::vector<Component> components_;
  ThreadPool* pool_ = nullptr;  ///< Optional; not owned, not cloned.
};

}  // namespace mrx

#endif  // MRX_INDEX_M_STAR_INDEX_H_
