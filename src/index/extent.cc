#include "index/extent.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <ostream>

#include "index/extent_kernels.h"

namespace mrx {
namespace {

std::atomic<ExtentRepMode> g_rep_mode{ExtentRepMode::kAuto};

/// Below this many elements the plain vector always wins: compressed
/// headers cost more than they save and the kernels' small-case merges are
/// fastest on contiguous u32. Refinement churns out huge numbers of tiny
/// extents, so this threshold is load-bearing for build speed too.
constexpr size_t kSmallExtent = 32;

/// kAuto only compresses when the encoding actually pays: best compressed
/// size must be under this fraction of the vector's 4 B/element.
constexpr double kCompressGain = 0.9;

/// Within this factor of kDeltaPacked's size, kHybridBitmap is preferred:
/// near-equal bytes, but word-parallel set algebra.
constexpr double kHybridSlack = 1.1;

/// Above this many elements an extent is intersect-hot: the §5 cost model
/// is dominated by set algebra over exactly these big extents, so kAuto
/// prefers kHybridBitmap (native chunk kernels, SIMD word dispatch)
/// whenever it compresses at all, and reserves kDeltaPacked — denser, and
/// since the blocked-stream kernels no longer decode-everything, no longer
/// catastrophic to intersect — for the small/mid population. Retuned from
/// 16k to 2k for ISSUE 10: BENCH_extent showed the 500k tier's hot extents
/// landing below the old threshold on delta, costing 2x intersect
/// throughput (auto 0.98x vector vs hybrid 2.01x) for a byte win the 0.60x
/// size gate does not need.
constexpr size_t kHotExtent = 2048;

/// Chunk encoding cost by kind, in payload bytes (headers excluded — all
/// kinds pay the same BitmapChunk struct).
size_t ChunkBytes(uint32_t count, uint32_t runs) {
  const size_t array_bytes = count * sizeof(uint16_t);
  const size_t run_bytes = runs * 2 * sizeof(uint16_t);
  const size_t bitmap_bytes = 1024 * sizeof(uint64_t);
  return std::min({array_bytes, run_bytes, bitmap_bytes});
}

/// Everything the representation decision needs, from ONE pass over the
/// sorted members — no per-representation estimation passes and no trial
/// encodes of rejected representations (the encode-cost fix of ISSUE 10:
/// auto used to pay a delta pass, a hybrid pass, and then the chosen
/// encoder's own re-scan).
struct RepStats {
  uint32_t max_delta = 1;     ///< Largest gap between consecutive members.
  size_t hybrid_bytes = 0;    ///< Exact kHybridBitmap physical estimate.
};

RepStats ComputeRepStats(const std::vector<NodeId>& sorted) {
  RepStats stats;
  size_t i = 0;
  NodeId prev = 0;
  while (i < sorted.size()) {
    const uint32_t high = sorted[i] >> 16;
    uint32_t count = 0;
    uint32_t runs = 0;
    for (; i < sorted.size() && (sorted[i] >> 16) == high; ++i) {
      if (i > 0) stats.max_delta = std::max(stats.max_delta, sorted[i] - prev);
      if (count == 0 || sorted[i] != prev + 1) ++runs;
      ++count;
      prev = sorted[i];
    }
    stats.hybrid_bytes +=
        sizeof(extent_internal::BitmapChunk) + ChunkBytes(count, runs);
  }
  return stats;
}

uint8_t DeltaBitsFromMax(uint32_t max_delta) {
  // Fields store (delta - 1); a contiguous run needs 0 bits.
  return max_delta == 1 ? 0
                        : static_cast<uint8_t>(std::bit_width(max_delta - 1));
}

size_t DeltaPackedBytes(size_t n, uint8_t bits) {
  if (n <= 1) return sizeof(extent_internal::ExtentPayload);
  const size_t words = (((n - 1) * bits) + 63) / 64;
  // A non-run encoding also carries the per-block skip index.
  const size_t blocks =
      bits == 0 ? 0
                : (n + extent_internal::kDeltaBlock - 1) /
                      extent_internal::kDeltaBlock;
  return sizeof(extent_internal::ExtentPayload) + words * sizeof(uint64_t) +
         blocks * sizeof(NodeId);
}

std::shared_ptr<const extent_internal::ExtentPayload> BuildSortedVector(
    std::vector<NodeId> sorted) {
  auto p = std::make_shared<extent_internal::ExtentPayload>();
  p->rep = ExtentRep::kSortedVector;
  p->size = static_cast<uint32_t>(sorted.size());
  p->sorted = std::move(sorted);
  return p;
}

std::shared_ptr<const extent_internal::ExtentPayload> BuildDeltaPacked(
    const std::vector<NodeId>& sorted, uint8_t delta_bits) {
  auto p = std::make_shared<extent_internal::ExtentPayload>();
  p->rep = ExtentRep::kDeltaPacked;
  p->size = static_cast<uint32_t>(sorted.size());
  if (sorted.empty()) return p;
  p->base = sorted.front();
  p->delta_bits = delta_bits;
  if (p->delta_bits > 0) {
    const size_t fields = sorted.size() - 1;
    p->packed.assign(((fields * p->delta_bits) + 63) / 64, 0);
    size_t bit = 0;
    for (size_t i = 1; i < sorted.size(); ++i) {
      const uint64_t field = sorted[i] - sorted[i - 1] - 1;
      const size_t word = bit >> 6;
      const size_t off = bit & 63;
      p->packed[word] |= field << off;
      if (off + p->delta_bits > 64) {
        p->packed[word + 1] |= field >> (64 - off);
      }
      bit += p->delta_bits;
    }
    // The block skip index is derived from the packed stream (the same
    // routine the storage decode path uses), so there is exactly one
    // definition of the block boundaries.
    extent_internal::FinalizeDeltaPayload(p.get());
  }
  return p;
}

}  // namespace

namespace extent_internal {

BitmapChunk MakeChunk(uint16_t high, const uint16_t* lows, uint32_t count) {
  BitmapChunk chunk;
  chunk.high = high;
  chunk.count = count;
  uint32_t runs = 0;
  for (uint32_t j = 0; j < count; ++j) {
    if (j == 0 || lows[j] != lows[j - 1] + 1) ++runs;
  }
  const size_t array_bytes = count * sizeof(uint16_t);
  const size_t run_bytes = runs * 2 * sizeof(uint16_t);
  const size_t bitmap_bytes = 1024 * sizeof(uint64_t);
  if (run_bytes <= array_bytes && run_bytes <= bitmap_bytes) {
    chunk.kind = BitmapChunk::Kind::kRuns;
    chunk.lows.reserve(runs * 2);
    for (uint32_t j = 0; j < count;) {
      const uint16_t start = lows[j];
      uint32_t len = 1;
      while (j + len < count && lows[j + len] == start + len) ++len;
      chunk.lows.push_back(start);
      chunk.lows.push_back(static_cast<uint16_t>(len - 1));
      j += len;
    }
  } else if (array_bytes <= bitmap_bytes) {
    chunk.kind = BitmapChunk::Kind::kArray;
    chunk.lows.assign(lows, lows + count);
  } else {
    chunk.kind = BitmapChunk::Kind::kBitmap;
    chunk.words.assign(1024, 0);
    for (uint32_t j = 0; j < count; ++j) {
      chunk.words[lows[j] >> 6] |= uint64_t{1} << (lows[j] & 63);
    }
  }
  return chunk;
}

std::shared_ptr<const ExtentPayload> MakeHybridPayload(
    std::vector<BitmapChunk> chunks) {
  auto p = std::make_shared<ExtentPayload>();
  p->rep = ExtentRep::kHybridBitmap;
  uint32_t size = 0;
  for (const BitmapChunk& chunk : chunks) size += chunk.count;
  p->size = size;
  p->chunks = std::move(chunks);
  return p;
}

}  // namespace extent_internal

namespace {

std::shared_ptr<const extent_internal::ExtentPayload> BuildHybridBitmap(
    const std::vector<NodeId>& sorted) {
  std::vector<extent_internal::BitmapChunk> chunks;
  std::vector<uint16_t> lows;
  size_t i = 0;
  while (i < sorted.size()) {
    const uint32_t high = sorted[i] >> 16;
    lows.clear();
    for (; i < sorted.size() && (sorted[i] >> 16) == high; ++i) {
      lows.push_back(static_cast<uint16_t>(sorted[i] & 0xffff));
    }
    chunks.push_back(extent_internal::MakeChunk(static_cast<uint16_t>(high),
                                                lows.data(),
                                                static_cast<uint32_t>(lows.size())));
  }
  return extent_internal::MakeHybridPayload(std::move(chunks));
}

}  // namespace

void SetExtentRepMode(ExtentRepMode mode) {
  g_rep_mode.store(mode, std::memory_order_relaxed);
}

ExtentRepMode GetExtentRepMode() {
  return g_rep_mode.load(std::memory_order_relaxed);
}

std::optional<ExtentRepMode> ParseExtentRepMode(std::string_view name) {
  if (name == "auto") return ExtentRepMode::kAuto;
  if (name == "vector") return ExtentRepMode::kForceSortedVector;
  if (name == "delta") return ExtentRepMode::kForceDeltaPacked;
  if (name == "hybrid") return ExtentRepMode::kForceHybridBitmap;
  return std::nullopt;
}

const char* ExtentRepName(ExtentRep rep) {
  switch (rep) {
    case ExtentRep::kSortedVector: return "vector";
    case ExtentRep::kDeltaPacked: return "delta";
    case ExtentRep::kHybridBitmap: return "hybrid";
  }
  return "?";
}

namespace extent_internal {

size_t ExtentPayload::physical_bytes() const {
  size_t bytes = sizeof(ExtentPayload);
  bytes += sorted.capacity() * sizeof(NodeId);
  bytes += packed.capacity() * sizeof(uint64_t);
  bytes += block_last.capacity() * sizeof(NodeId);
  for (const BitmapChunk& chunk : chunks) {
    bytes += chunk.physical_bytes();
  }
  return bytes;
}

uint32_t DecodeDeltaBlock(const ExtentPayload& p, size_t block, NodeId* out) {
  assert(p.delta_bits > 0);
  const size_t begin = block * kDeltaBlock;
  assert(begin < p.size);
  const uint32_t count =
      static_cast<uint32_t>(std::min<size_t>(kDeltaBlock, p.size - begin));
  // First member: the base, or the previous block's last member plus the
  // bridging delta field (field i produces the member at index i + 1).
  if (block == 0) {
    out[0] = p.base;
  } else {
    uint32_t bridge;
    UnpackFieldsU32(p.packed.data(), p.delta_bits, begin - 1, 1, 1, &bridge);
    out[0] = p.block_last[block - 1] + bridge;
  }
  if (count > 1) {
    UnpackFieldsU32(p.packed.data(), p.delta_bits, begin, count - 1, 1,
                    out + 1);
    PrefixSumU32(out, count, 0);
  }
  return count;
}

void FinalizeDeltaPayload(ExtentPayload* p) {
  p->block_last.clear();
  if (p->rep != ExtentRep::kDeltaPacked || p->delta_bits == 0 ||
      p->size == 0) {
    return;
  }
  const size_t blocks = (p->size + kDeltaBlock - 1) / kDeltaBlock;
  p->block_last.reserve(blocks);
  // DecodeDeltaBlock(b) only reads block_last[b - 1], which the previous
  // iteration just appended, so the index can bootstrap itself.
  NodeId buf[kDeltaBlock];
  for (size_t b = 0; b < blocks; ++b) {
    const uint32_t count = DecodeDeltaBlock(*p, b, buf);
    p->block_last.push_back(buf[count - 1]);
  }
}

bool BitmapChunk::Contains(uint16_t low) const {
  switch (kind) {
    case Kind::kArray:
      return std::binary_search(lows.begin(), lows.end(), low);
    case Kind::kBitmap:
      return (words[low >> 6] >> (low & 63)) & 1;
    case Kind::kRuns: {
      // Find the last run with start <= low. Pairs are (start, len-1).
      size_t lo = 0, hi = lows.size() / 2;
      while (lo < hi) {
        const size_t mid = (lo + hi) / 2;
        if (lows[2 * mid] <= low) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      if (lo == 0) return false;
      const uint16_t start = lows[2 * (lo - 1)];
      const uint16_t len1 = lows[2 * (lo - 1) + 1];
      return low >= start && static_cast<uint32_t>(low) <= start + len1;
    }
  }
  return false;
}

uint64_t UnpackDelta(const std::vector<uint64_t>& packed, uint8_t bits,
                     size_t index) {
  const size_t bit = index * bits;
  const size_t word = bit >> 6;
  const size_t off = bit & 63;
  uint64_t field = packed[word] >> off;
  if (off + bits > 64) {
    field |= packed[word + 1] << (64 - off);
  }
  return field & ((uint64_t{1} << bits) - 1);
}

}  // namespace extent_internal

Extent Extent::FromSorted(std::vector<NodeId> sorted) {
  assert(std::is_sorted(sorted.begin(), sorted.end()));
  assert(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end());
  switch (GetExtentRepMode()) {
    case ExtentRepMode::kForceSortedVector:
      return FromSortedAs(std::move(sorted), ExtentRep::kSortedVector);
    case ExtentRepMode::kForceDeltaPacked:
      return FromSortedAs(std::move(sorted), ExtentRep::kDeltaPacked);
    case ExtentRepMode::kForceHybridBitmap:
      return FromSortedAs(std::move(sorted), ExtentRep::kHybridBitmap);
    case ExtentRepMode::kAuto:
      break;
  }
  if (sorted.size() <= kSmallExtent) {
    return FromSortedAs(std::move(sorted), ExtentRep::kSortedVector);
  }
  // One statistics pass decides; only the winning representation is ever
  // encoded (the rejected ones are costed from the stats alone).
  const RepStats stats = ComputeRepStats(sorted);
  const uint8_t delta_bits = DeltaBitsFromMax(stats.max_delta);
  const size_t vector_bytes = sorted.size() * sizeof(NodeId);
  const size_t delta_bytes = DeltaPackedBytes(sorted.size(), delta_bits);
  const size_t hybrid_bytes = stats.hybrid_bytes;
  const size_t best = std::min(delta_bytes, hybrid_bytes);
  if (static_cast<double>(best) >= kCompressGain * static_cast<double>(vector_bytes)) {
    return FromSortedAs(std::move(sorted), ExtentRep::kSortedVector);
  }
  if (sorted.size() >= kHotExtent &&
      static_cast<double>(hybrid_bytes) <
          kCompressGain * static_cast<double>(vector_bytes)) {
    return FromSortedAs(std::move(sorted), ExtentRep::kHybridBitmap);
  }
  if (static_cast<double>(hybrid_bytes) <=
      kHybridSlack * static_cast<double>(delta_bytes)) {
    return FromSortedAs(std::move(sorted), ExtentRep::kHybridBitmap);
  }
  return Extent(BuildDeltaPacked(sorted, delta_bits));
}

Extent Extent::FromSortedAs(std::vector<NodeId> sorted, ExtentRep rep) {
  if (sorted.empty()) return Extent();
  switch (rep) {
    case ExtentRep::kSortedVector:
      sorted.shrink_to_fit();
      return Extent(BuildSortedVector(std::move(sorted)));
    case ExtentRep::kDeltaPacked:
      return Extent(BuildDeltaPacked(
          sorted, DeltaBitsFromMax(ComputeRepStats(sorted).max_delta)));
    case ExtentRep::kHybridBitmap:
      return Extent(BuildHybridBitmap(sorted));
  }
  return Extent();
}

Extent Extent::FromPayload(
    std::shared_ptr<const extent_internal::ExtentPayload> payload) {
  if (payload == nullptr || payload->size == 0) return Extent();
  return Extent(std::move(payload));
}

NodeId Extent::front() const {
  assert(!empty());
  switch (payload_->rep) {
    case ExtentRep::kSortedVector:
      return payload_->sorted.front();
    case ExtentRep::kDeltaPacked:
      return payload_->base;
    case ExtentRep::kHybridBitmap: {
      const extent_internal::BitmapChunk& c = payload_->chunks.front();
      const uint32_t high = static_cast<uint32_t>(c.high) << 16;
      switch (c.kind) {
        case extent_internal::BitmapChunk::Kind::kArray:
        case extent_internal::BitmapChunk::Kind::kRuns:
          return high | c.lows.front();
        case extent_internal::BitmapChunk::Kind::kBitmap:
          for (size_t w = 0; w < c.words.size(); ++w) {
            if (c.words[w] != 0) {
              return high |
                     static_cast<uint32_t>(w * 64 + std::countr_zero(c.words[w]));
            }
          }
      }
      break;
    }
  }
  return 0;
}

NodeId Extent::back() const {
  assert(!empty());
  switch (payload_->rep) {
    case ExtentRep::kSortedVector:
      return payload_->sorted.back();
    case ExtentRep::kDeltaPacked:
      if (payload_->delta_bits == 0) return payload_->base + payload_->size - 1;
      return payload_->block_last.back();
    case ExtentRep::kHybridBitmap: {
      const extent_internal::BitmapChunk& c = payload_->chunks.back();
      const uint32_t high = static_cast<uint32_t>(c.high) << 16;
      switch (c.kind) {
        case extent_internal::BitmapChunk::Kind::kArray:
          return high | c.lows.back();
        case extent_internal::BitmapChunk::Kind::kRuns:
          return high | static_cast<uint32_t>(c.lows[c.lows.size() - 2] +
                                              c.lows[c.lows.size() - 1]);
        case extent_internal::BitmapChunk::Kind::kBitmap:
          for (size_t w = c.words.size(); w-- > 0;) {
            if (c.words[w] != 0) {
              return high | static_cast<uint32_t>(
                                w * 64 + 63 - std::countl_zero(c.words[w]));
            }
          }
      }
      break;
    }
  }
  return 0;
}

bool Extent::Contains(NodeId id) const {
  if (payload_ == nullptr) return false;
  switch (payload_->rep) {
    case ExtentRep::kSortedVector:
      return std::binary_search(payload_->sorted.begin(),
                                payload_->sorted.end(), id);
    case ExtentRep::kDeltaPacked: {
      if (id < payload_->base) return false;
      if (payload_->delta_bits == 0) {
        return id < payload_->base + payload_->size;
      }
      // block_last is sorted, so the first block whose last member is >= id
      // is the only block that can contain it.
      const auto& bl = payload_->block_last;
      const size_t block = static_cast<size_t>(
          std::lower_bound(bl.begin(), bl.end(), id) - bl.begin());
      if (block == bl.size()) return false;
      NodeId buf[extent_internal::kDeltaBlock];
      const uint32_t count =
          extent_internal::DecodeDeltaBlock(*payload_, block, buf);
      return std::binary_search(buf, buf + count, id);
    }
    case ExtentRep::kHybridBitmap: {
      const uint16_t high = static_cast<uint16_t>(id >> 16);
      const auto it = std::lower_bound(
          payload_->chunks.begin(), payload_->chunks.end(), high,
          [](const extent_internal::BitmapChunk& c, uint16_t h) {
            return c.high < h;
          });
      if (it == payload_->chunks.end() || it->high != high) return false;
      return it->Contains(static_cast<uint16_t>(id & 0xffff));
    }
  }
  return false;
}

std::vector<NodeId> Extent::Materialize() const {
  std::vector<NodeId> out;
  AppendTo(&out);
  return out;
}

void Extent::AppendTo(std::vector<NodeId>* out) const {
  if (payload_ == nullptr) return;
  out->reserve(out->size() + payload_->size);
  switch (payload_->rep) {
    case ExtentRep::kSortedVector:
      out->insert(out->end(), payload_->sorted.begin(), payload_->sorted.end());
      return;
    case ExtentRep::kDeltaPacked: {
      if (payload_->delta_bits == 0) {
        for (uint32_t i = 0; i < payload_->size; ++i) {
          out->push_back(payload_->base + i);
        }
        return;
      }
      // Blockwise decode straight into the output tail: UnpackFieldsU32 +
      // vectorized prefix sum per block instead of a per-element unpack.
      const size_t tail = out->size();
      out->resize(tail + payload_->size);
      NodeId* dst = out->data() + tail;
      const size_t blocks =
          (payload_->size + extent_internal::kDeltaBlock - 1) /
          extent_internal::kDeltaBlock;
      for (size_t b = 0; b < blocks; ++b) {
        dst += extent_internal::DecodeDeltaBlock(*payload_, b, dst);
      }
      return;
    }
    case ExtentRep::kHybridBitmap:
      for (const extent_internal::BitmapChunk& c : payload_->chunks) {
        const uint32_t high = static_cast<uint32_t>(c.high) << 16;
        switch (c.kind) {
          case extent_internal::BitmapChunk::Kind::kArray:
            for (uint16_t low : c.lows) out->push_back(high | low);
            break;
          case extent_internal::BitmapChunk::Kind::kRuns:
            for (size_t r = 0; r < c.lows.size(); r += 2) {
              const uint32_t start = c.lows[r];
              const uint32_t len = static_cast<uint32_t>(c.lows[r + 1]) + 1;
              for (uint32_t j = 0; j < len; ++j) {
                out->push_back(high | (start + j));
              }
            }
            break;
          case extent_internal::BitmapChunk::Kind::kBitmap:
            for (size_t w = 0; w < c.words.size(); ++w) {
              uint64_t bits = c.words[w];
              while (bits != 0) {
                const int b = std::countr_zero(bits);
                out->push_back(high | static_cast<uint32_t>(w * 64 + b));
                bits &= bits - 1;
              }
            }
            break;
        }
      }
      return;
  }
}

Extent::const_iterator::const_iterator(const extent_internal::ExtentPayload* p,
                                       size_t pos)
    : p_(p), pos_(pos) {
  if (p_ == nullptr || pos_ >= p_->size) {
    pos_ = p_ == nullptr ? 0 : p_->size;
    return;
  }
  // Only begin() constructs a mid-sequence iterator (pos == 0); end() takes
  // the branch above.
  assert(pos_ == 0);
  switch (p_->rep) {
    case ExtentRep::kSortedVector:
      value_ = p_->sorted[0];
      break;
    case ExtentRep::kDeltaPacked:
      value_ = p_->base;
      break;
    case ExtentRep::kHybridBitmap:
      chunk_ = 0;
      LoadChunkCursor();
      break;
  }
}

void Extent::const_iterator::LoadChunkCursor() {
  // Positions the cursor at the first value of chunk_ and loads value_.
  const extent_internal::BitmapChunk& c = p_->chunks[chunk_];
  const uint32_t high = static_cast<uint32_t>(c.high) << 16;
  in_chunk_ = 0;
  switch (c.kind) {
    case extent_internal::BitmapChunk::Kind::kArray:
      value_ = high | c.lows[0];
      break;
    case extent_internal::BitmapChunk::Kind::kRuns:
      run_ = 0;
      run_off_ = 0;
      value_ = high | c.lows[0];
      break;
    case extent_internal::BitmapChunk::Kind::kBitmap:
      word_ = 0;
      while (c.words[word_] == 0) ++word_;
      word_bits_ = c.words[word_];
      value_ = high |
               static_cast<uint32_t>(word_ * 64 + std::countr_zero(word_bits_));
      word_bits_ &= word_bits_ - 1;
      break;
  }
}

void Extent::const_iterator::Advance() {
  ++pos_;
  if (pos_ >= p_->size) {
    pos_ = p_->size;
    return;
  }
  switch (p_->rep) {
    case ExtentRep::kSortedVector:
      value_ = p_->sorted[pos_];
      return;
    case ExtentRep::kDeltaPacked:
      if (p_->delta_bits == 0) {
        ++value_;
      } else {
        value_ += static_cast<NodeId>(extent_internal::UnpackDelta(
                      p_->packed, p_->delta_bits, delta_index_)) +
                  1;
        ++delta_index_;
      }
      return;
    case ExtentRep::kHybridBitmap: {
      const extent_internal::BitmapChunk& c = p_->chunks[chunk_];
      ++in_chunk_;
      if (in_chunk_ >= c.count) {
        ++chunk_;
        LoadChunkCursor();
        return;
      }
      const uint32_t high = static_cast<uint32_t>(c.high) << 16;
      switch (c.kind) {
        case extent_internal::BitmapChunk::Kind::kArray:
          value_ = high | c.lows[in_chunk_];
          return;
        case extent_internal::BitmapChunk::Kind::kRuns:
          if (run_off_ < c.lows[2 * run_ + 1]) {
            ++run_off_;
            ++value_;
          } else {
            ++run_;
            run_off_ = 0;
            value_ = high | c.lows[2 * run_];
          }
          return;
        case extent_internal::BitmapChunk::Kind::kBitmap:
          while (word_bits_ == 0) {
            ++word_;
            word_bits_ = c.words[word_];
          }
          value_ = high |
                   static_cast<uint32_t>(word_ * 64 +
                                         std::countr_zero(word_bits_));
          word_bits_ &= word_bits_ - 1;
          return;
      }
      return;
    }
  }
}

bool Extent::operator==(const Extent& o) const {
  if (payload_ == o.payload_) return true;
  if (size() != o.size()) return false;
  const_iterator a = begin(), b = o.begin();
  for (const const_iterator a_end = end(); a != a_end; ++a, ++b) {
    if (*a != *b) return false;
  }
  return true;
}

bool Extent::operator==(const std::vector<NodeId>& v) const {
  if (size() != v.size()) return false;
  if (const std::vector<NodeId>* mine = AsSortedVector()) return *mine == v;
  size_t i = 0;
  for (NodeId id : *this) {
    if (id != v[i++]) return false;
  }
  return true;
}

std::ostream& operator<<(std::ostream& os, const Extent& extent) {
  os << "Extent<" << ExtentRepName(extent.rep()) << ">{";
  size_t shown = 0;
  for (NodeId id : extent) {
    if (shown == 16) {
      os << ", ...";
      break;
    }
    if (shown > 0) os << ", ";
    os << id;
    ++shown;
  }
  os << "} (" << extent.size() << " elems)";
  return os;
}

}  // namespace mrx
