#include "index/a_k_index.h"

#include "index/bisimulation.h"

namespace mrx {
namespace {

IndexGraph BuildQuotient(const DataGraph& g, int k, int32_t recorded_k) {
  BisimulationPartition part = ComputeKBisimulation(g, k);
  std::vector<int32_t> block_k(part.num_blocks, recorded_k);
  return IndexGraph::FromPartition(g, part.block_of, part.num_blocks,
                                   block_k);
}

}  // namespace

AkIndex::AkIndex(const DataGraph& g, int k)
    : k_(k), graph_(BuildQuotient(g, k, k)), validator_(g) {}

QueryResult AkIndex::Query(const PathExpression& path) {
  return AnswerOnIndex(graph_, path, &validator_);
}

OneIndex::OneIndex(const DataGraph& g)
    : graph_(BuildQuotient(g, /*k=*/-1, kInfiniteSimilarity)),
      validator_(g) {}

QueryResult OneIndex::Query(const PathExpression& path) {
  return AnswerOnIndex(graph_, path, &validator_);
}

}  // namespace mrx
