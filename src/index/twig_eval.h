#ifndef MRX_INDEX_TWIG_EVAL_H_
#define MRX_INDEX_TWIG_EVAL_H_

#include "index/m_star_index.h"
#include "query/data_evaluator.h"
#include "query/twig.h"

namespace mrx {

/// \brief Index-assisted twig evaluation: the structural index answers the
/// *trunk* (the output path), then each trunk candidate is validated
/// against the data graph — the branch predicates are checked at every
/// trunk position along a backward instance walk.
///
/// Bisimilarity summarizes incoming label paths only, so branch predicates
/// can never be certified by the index (the paper's §2 points to covering
/// indexes / UD(k,l) for that); `precise` is therefore false whenever the
/// twig has predicates. Answers are always exact. Validation work is
/// charged to `stats.data_nodes_validated` as usual.
QueryResult EvaluateTwigWithIndex(MStarIndex& index, const TwigQuery& twig,
                                  DataEvaluator& evaluator);

}  // namespace mrx

#endif  // MRX_INDEX_TWIG_EVAL_H_
