#ifndef MRX_INDEX_BISIMULATION_H_
#define MRX_INDEX_BISIMULATION_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "graph/data_graph.h"

namespace mrx {

class ThreadPool;
struct RefineScratchImpl;

/// \brief Reusable working memory for refinement rounds.
///
/// A refinement round needs a signature-interning table, per-shard scratch
/// tables when sharded, and remap buffers. Allocating them fresh every
/// round is measurable at scale (millions of nodes × k levels); callers
/// that run many rounds — the static hierarchy build, the scale benches —
/// pass one RefineScratch through all of them and the arenas/tables are
/// Reset (capacity kept) instead of reallocated. Purely an allocation
/// cache: results are byte-identical with or without it, and a null
/// scratch everywhere keeps the old behavior.
class RefineScratch {
 public:
  RefineScratch();
  ~RefineScratch();
  RefineScratch(const RefineScratch&) = delete;
  RefineScratch& operator=(const RefineScratch&) = delete;

  RefineScratchImpl* impl() { return impl_.get(); }

 private:
  std::unique_ptr<RefineScratchImpl> impl_;
};

/// Local similarity value recorded for blocks of a full (fixpoint)
/// bisimulation: bisimilar nodes are k-bisimilar for every k.
inline constexpr int32_t kInfiniteSimilarity =
    std::numeric_limits<int32_t>::max();

/// \brief A partition of the data nodes produced by iterated refinement.
struct BisimulationPartition {
  std::vector<uint32_t> block_of;  ///< Block of each data node.
  uint32_t num_blocks = 0;
  /// Number of refinement rounds actually applied (< requested k when the
  /// fixpoint — the full bisimulation — was reached early).
  int rounds = 0;
  bool reached_fixpoint = false;
};

/// \brief Execution knobs shared by every refinement entry point.
///
/// Replaces the historical (ThreadPool*, RefineScratch*) trailing
/// parameters, which had grown into four diverging overload sets. Both
/// fields are optional: `{}` is the serial, allocate-fresh path, and any
/// combination is valid — results are byte-identical regardless (the
/// pool's determinism contract and the scratch's allocation-cache contract
/// both guarantee it). Aggregate construction keeps call sites terse:
/// `ComputeKBisimulation(g, k, {.pool = &pool, .scratch = &scratch})`.
struct RefineOptions {
  ThreadPool* pool = nullptr;      ///< Shard rounds over this pool.
  RefineScratch* scratch = nullptr;  ///< Reuse round working memory.
};

/// \brief Computes the k-bisimulation partition of `g` (Definition 2).
///
/// Round 0 is the label partition (A(0)); each subsequent round refines by
/// the parents' blocks of the previous round. Stops early at the fixpoint.
/// Pass k < 0 to refine all the way to the fixpoint — the full bisimulation
/// underlying the 1-index (Definition 1).
///
/// With a non-null `pool`, each round shards its signature grouping over
/// contiguous node ranges and merges the per-shard tables with a
/// deterministic renumbering pass. Block ids are **byte-identical for any
/// thread count** — including the pool-less serial path — because the
/// merge assigns ids in ascending first-occurrence order, exactly the
/// order the serial scan produces (see docs/PERFORMANCE.md for the
/// contract; tests/parallel_build_test.cc pins it).
BisimulationPartition ComputeKBisimulation(const DataGraph& g, int k,
                                           const RefineOptions& options = {});

/// Transitional shim for the pre-RefineOptions overload; forwards to the
/// options form. New code should pass RefineOptions.
[[deprecated("pass RefineOptions{pool, scratch} instead")]]
BisimulationPartition ComputeKBisimulation(const DataGraph& g, int k,
                                           ThreadPool* pool,
                                           RefineScratch* scratch = nullptr);

/// \brief One all-active refinement round applied in place: advances the
/// A(i) partition in `part` to A(i+1). Returns false — leaving `part`
/// untouched except for `reached_fixpoint` — when the partition is already
/// the fixpoint. Callers that need every level A(0..k) (the static M*(k)
/// hierarchy, growth benches) use this to pay one round per level instead
/// of rebuilding each level from scratch.
bool RefineBisimulationRound(const DataGraph& g, BisimulationPartition* part,
                             const RefineOptions& options = {});

/// Transitional shim (note: `pool` lost its default so two-argument calls
/// resolve unambiguously to the options form).
[[deprecated("pass RefineOptions{pool, scratch} instead")]]
bool RefineBisimulationRound(const DataGraph& g, BisimulationPartition* part,
                             ThreadPool* pool,
                             RefineScratch* scratch = nullptr);

/// \brief The D(k)-construct partition (Chen et al., SIGMOD'03), used by
/// DkIndex::Construct.
///
/// `kreq_by_label[l]` is the local similarity required of nodes labeled
/// `l`; the caller must already have propagated the D(k) constraint
/// (parent requirement ≥ child requirement − 1 along every data edge).
/// Nodes freeze once their label's requirement is met, which is exactly
/// what makes D(k)-construct over-refine *irrelevant index nodes* (every
/// same-label node is refined alike) but never violate Property 3.
BisimulationPartition ComputeDkConstructPartition(
    const DataGraph& g, const std::vector<int32_t>& kreq_by_label,
    const RefineOptions& options = {});

/// Transitional shim for the pre-RefineOptions overload.
[[deprecated("pass RefineOptions{pool, scratch} instead")]]
BisimulationPartition ComputeDkConstructPartition(
    const DataGraph& g, const std::vector<int32_t>& kreq_by_label,
    ThreadPool* pool, RefineScratch* scratch = nullptr);

/// \brief One D(k)-construct refinement round applied in place: advances
/// the round-(`round`−1) partition in `part` to round `round` under the
/// freeze schedule `kreq_by_label` (nodes whose label requirement is
/// < `round` are frozen). Returns false — setting `reached_fixpoint` —
/// when the round leaves the partition unchanged; because the active set
/// only shrinks with the round number and blocks are label-uniform, no
/// later round can change it either, so callers may stop. The live-update
/// maintainer uses this to rebuild a single D(k) level after a mutation
/// cascade exceeds its incremental threshold.
bool RefineDkConstructRound(const DataGraph& g, BisimulationPartition* part,
                            const std::vector<int32_t>& kreq_by_label,
                            int32_t round, const RefineOptions& options = {});

/// Transitional shim (no default on `pool`, as above).
[[deprecated("pass RefineOptions{pool, scratch} instead")]]
bool RefineDkConstructRound(const DataGraph& g, BisimulationPartition* part,
                            const std::vector<int32_t>& kreq_by_label,
                            int32_t round, ThreadPool* pool,
                            RefineScratch* scratch = nullptr);

}  // namespace mrx

#endif  // MRX_INDEX_BISIMULATION_H_
