#include "index/index_graph.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <unordered_set>

namespace mrx {

namespace {

/// Inserts `id` into the sorted-unique vector `v` if absent.
void InsertSorted(std::vector<IndexNodeId>* v, IndexNodeId id) {
  auto it = std::lower_bound(v->begin(), v->end(), id);
  if (it == v->end() || *it != id) v->insert(it, id);
}

/// Removes `id` from the sorted-unique vector `v` if present.
void EraseSorted(std::vector<IndexNodeId>* v, IndexNodeId id) {
  auto it = std::lower_bound(v->begin(), v->end(), id);
  if (it != v->end() && *it == id) v->erase(it);
}

void SortUnique(std::vector<IndexNodeId>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

}  // namespace

IndexGraph IndexGraph::LabelPartition(const DataGraph& g) {
  const size_t num_labels = g.symbols().size();
  std::vector<uint32_t> block_of(g.num_nodes());
  // Blocks are labels with at least one node, renumbered densely.
  std::vector<uint32_t> block_of_label(num_labels, static_cast<uint32_t>(-1));
  uint32_t num_blocks = 0;
  for (LabelId l = 0; l < num_labels; ++l) {
    if (!g.nodes_with_label(l).empty()) block_of_label[l] = num_blocks++;
  }
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    block_of[n] = block_of_label[g.label(n)];
  }
  std::vector<int32_t> block_k(num_blocks, 0);
  return FromPartition(g, block_of, num_blocks, block_k);
}

IndexGraph IndexGraph::FromPartition(const DataGraph& g,
                                     const std::vector<uint32_t>& block_of,
                                     uint32_t num_blocks,
                                     const std::vector<int32_t>& block_k) {
  assert(block_of.size() == g.num_nodes());
  assert(block_k.size() == num_blocks);

  IndexGraph ig;
  ig.graph_ = &g;
  ig.nodes_.resize(num_blocks);
  ig.node_of_.assign(g.num_nodes(), kInvalidIndexNode);
  ig.num_alive_ = num_blocks;

  // Stage extents as plain vectors (NodeIds visited ascending, so they come
  // out sorted), then seal each into its normalized representation.
  std::vector<std::vector<NodeId>> staged(num_blocks);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    IndexNodeId b = block_of[n];
    assert(b < num_blocks);
    staged[b].push_back(n);
    ig.node_of_[n] = b;
  }
  for (uint32_t b = 0; b < num_blocks; ++b) {
    Node& node = ig.nodes_[b];
    assert(!staged[b].empty());
    node.k = block_k[b];
    node.label = g.label(staged[b].front());
    node.extent = Extent::FromSorted(std::move(staged[b]));
  }
  // Adjacency from data edges.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    IndexNodeId bu = block_of[u];
    for (NodeId v : g.children(u)) {
      ig.nodes_[bu].children.push_back(block_of[v]);
      ig.nodes_[block_of[v]].parents.push_back(bu);
    }
  }
  for (Node& node : ig.nodes_) {
    SortUnique(&node.children);
    SortUnique(&node.parents);
  }
  return ig;
}

size_t IndexGraph::num_edges() const {
  size_t edges = 0;
  for (const Node& node : nodes_) {
    if (node.alive) edges += node.children.size();
  }
  return edges;
}

std::vector<IndexNodeId> IndexGraph::AliveNodes() const {
  std::vector<IndexNodeId> out;
  out.reserve(num_alive_);
  for (IndexNodeId v = 0; v < nodes_.size(); ++v) {
    if (nodes_[v].alive) out.push_back(v);
  }
  return out;
}

void IndexGraph::ComputeAdjacency(IndexNodeId v) {
  Node& node = nodes_[v];
  node.children.clear();
  node.parents.clear();
  for (NodeId o : node.extent) {
    for (NodeId c : graph_->children(o)) node.children.push_back(node_of_[c]);
    for (NodeId p : graph_->parents(o)) node.parents.push_back(node_of_[p]);
  }
  SortUnique(&node.children);
  SortUnique(&node.parents);
}

std::vector<IndexNodeId> IndexGraph::ReplaceNode(IndexNodeId v,
                                                 std::vector<Part> parts) {
  assert(alive(v));
  assert(!parts.empty());
#ifndef NDEBUG
  {
    size_t total = 0;
    for (const Part& p : parts) {
      assert(!p.extent.empty());
      assert(std::is_sorted(p.extent.begin(), p.extent.end()));
      total += p.extent.size();
    }
    assert(total == nodes_[v].extent.size());
    for (const Part& p : parts) {
      for (NodeId o : p.extent) assert(node_of_[o] == v);
    }
  }
#endif

  // Detach v from its neighbors.
  const std::vector<IndexNodeId> old_children = nodes_[v].children;
  const std::vector<IndexNodeId> old_parents = nodes_[v].parents;
  for (IndexNodeId c : old_children) {
    if (c != v) EraseSorted(&nodes_[c].parents, v);
  }
  for (IndexNodeId p : old_parents) {
    if (p != v) EraseSorted(&nodes_[p].children, v);
  }
  const LabelId label = nodes_[v].label;
  if (parts.size() > 1) {
    ++refinement_stats_.splits;
    refinement_stats_.nodes_created += parts.size() - 1;
    refinement_stats_.extent_moves += nodes_[v].extent.size();
  }
  nodes_[v].alive = false;
  nodes_[v].extent = Extent();
  nodes_[v].children.clear();
  nodes_[v].parents.clear();
  --num_alive_;

  // Create the parts and remap their data nodes.
  std::vector<IndexNodeId> part_ids;
  part_ids.reserve(parts.size());
  for (Part& part : parts) {
    IndexNodeId id = static_cast<IndexNodeId>(nodes_.size());
    part_ids.push_back(id);
    Node node;
    node.label = label;
    node.k = part.k;
    node.extent = std::move(part.extent);
    nodes_.push_back(std::move(node));
    ++num_alive_;
    for (NodeId o : nodes_.back().extent) node_of_[o] = id;
  }

  // Compute the parts' adjacency from the data graph (part-to-part edges
  // come out consistent on both sides because node_of_ is fully remapped),
  // then mirror edges into non-part neighbors.
  std::unordered_set<IndexNodeId> part_set(part_ids.begin(), part_ids.end());
  for (IndexNodeId id : part_ids) ComputeAdjacency(id);
  for (IndexNodeId id : part_ids) {
    for (IndexNodeId c : nodes_[id].children) {
      if (!part_set.contains(c)) InsertSorted(&nodes_[c].parents, id);
    }
    for (IndexNodeId p : nodes_[id].parents) {
      if (!part_set.contains(p)) InsertSorted(&nodes_[p].children, id);
    }
  }
  return part_ids;
}

std::vector<NodeId> IndexGraph::Succ(const std::vector<NodeId>& s) const {
  std::vector<NodeId> out;
  for (NodeId o : s) {
    auto kids = graph_->children(o);
    out.insert(out.end(), kids.begin(), kids.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<NodeId> IndexGraph::Pred(const std::vector<NodeId>& s) const {
  std::vector<NodeId> out;
  for (NodeId o : s) {
    auto ps = graph_->parents(o);
    out.insert(out.end(), ps.begin(), ps.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<NodeId> IndexGraph::Succ(const Extent& s) const {
  std::vector<NodeId> out;
  for (NodeId o : s) {
    auto kids = graph_->children(o);
    out.insert(out.end(), kids.begin(), kids.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<NodeId> IndexGraph::Pred(const Extent& s) const {
  std::vector<NodeId> out;
  for (NodeId o : s) {
    auto ps = graph_->parents(o);
    out.insert(out.end(), ps.begin(), ps.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Status IndexGraph::CheckConsistency() const {
  const DataGraph& g = *graph_;
  std::vector<char> seen(g.num_nodes(), 0);
  size_t alive_count = 0;
  for (IndexNodeId v = 0; v < nodes_.size(); ++v) {
    const Node& node = nodes_[v];
    if (!node.alive) continue;
    ++alive_count;
    if (node.extent.empty()) {
      return Status::Internal("alive index node with empty extent");
    }
    if (!std::is_sorted(node.extent.begin(), node.extent.end())) {
      return Status::Internal("extent not sorted");
    }
    for (NodeId o : node.extent) {
      if (seen[o]) return Status::Internal("data node in two extents");
      seen[o] = 1;
      if (node_of_[o] != v) return Status::Internal("node_of out of sync");
      if (g.label(o) != node.label) {
        return Status::Internal("extent label not uniform");
      }
    }
  }
  if (alive_count != num_alive_) {
    return Status::Internal("alive counter out of sync");
  }
  for (NodeId o = 0; o < g.num_nodes(); ++o) {
    if (!seen[o]) return Status::Internal("data node in no extent");
  }
  // Property 2: edges match data edges exactly, both directions.
  for (IndexNodeId v = 0; v < nodes_.size(); ++v) {
    const Node& node = nodes_[v];
    if (!node.alive) continue;
    std::vector<IndexNodeId> children;
    std::vector<IndexNodeId> parents;
    for (NodeId o : node.extent) {
      for (NodeId c : g.children(o)) children.push_back(node_of_[c]);
      for (NodeId p : g.parents(o)) parents.push_back(node_of_[p]);
    }
    SortUnique(&children);
    SortUnique(&parents);
    if (children != node.children) {
      return Status::Internal("children list does not match Property 2");
    }
    if (parents != node.parents) {
      return Status::Internal("parents list does not match Property 2");
    }
    for (IndexNodeId c : node.children) {
      if (!nodes_[c].alive) return Status::Internal("edge to dead node");
    }
    for (IndexNodeId p : node.parents) {
      if (!nodes_[p].alive) return Status::Internal("edge from dead node");
    }
  }
  return Status::Ok();
}

std::string IndexGraph::DebugString() const {
  std::ostringstream os;
  for (IndexNodeId v = 0; v < nodes_.size(); ++v) {
    const Node& node = nodes_[v];
    if (!node.alive) continue;
    os << v << "[" << graph_->symbols().Name(node.label) << ",k=" << node.k
       << "]{";
    bool first = true;
    for (NodeId o : node.extent) {
      if (!first) os << ",";
      os << o;
      first = false;
    }
    os << "} ->";
    for (IndexNodeId c : node.children) os << " " << c;
    os << "\n";
  }
  return os.str();
}

}  // namespace mrx
