#ifndef MRX_INDEX_STRATEGY_CHOOSER_H_
#define MRX_INDEX_STRATEGY_CHOOSER_H_

#include <vector>

#include "index/m_star_index.h"
#include "query/path_expression.h"

namespace mrx {

/// The M*(k) evaluation strategies of §4.1.
enum class MStarQueryStrategy {
  kNaive,
  kTopDown,
  kBottomUp,
  kHybrid,
};

/// Stable lowercase name for a strategy ("naive", "topdown", "bottomup",
/// "hybrid") — the spelling used by the CLI, metrics, and explain records.
const char* StrategyName(MStarQueryStrategy strategy);

/// One row of an EXPLAIN decision table: a strategy the chooser looked at,
/// its estimated cost, and whether the path's shape even permits it
/// (anchored paths force top-down; descendant axes force naive).
struct StrategyCandidate {
  MStarQueryStrategy strategy;
  double estimated_cost = 0;
  bool eligible = true;
  bool chosen = false;
};

/// \brief A cost-based chooser for the §4.1 strategies — the "interesting
/// query optimization problem" the paper leaves open.
///
/// The estimate uses only catalog-grade statistics that are O(1) to
/// maintain: per-component label-row sizes (how many index nodes carry
/// each label). Top-down's cost is dominated by the prefix frontiers in
/// successively finer components; naive's by frontiers that all live in
/// the finest component; bottom-up additionally pays a downward re-check
/// per candidate, which the estimator charges as a multiplicative penalty.
/// The frontier-size estimates are crude upper bounds (label-row sizes,
/// ignoring edge selectivity), but the *relative* order they induce is
/// what the choice needs.
class StrategyChooser {
 public:
  /// Builds label-row statistics for the index's current components.
  /// Cheap (one pass over index nodes); rebuild after refinement batches.
  explicit StrategyChooser(const MStarIndex& index);

  /// Picks a strategy for `path`. Anchored and descendant-axis paths
  /// always pick strategies that support them (top-down / naive).
  MStarQueryStrategy Choose(const PathExpression& path) const;

  /// The full decision table behind Choose: all four strategies with their
  /// estimated costs, eligibility under the path's shape, and which one
  /// Choose picks. Rows come back in enum order; exactly one is chosen.
  std::vector<StrategyCandidate> ExplainChoice(
      const PathExpression& path) const;

  /// The estimated index-node visits used for the decision (exposed for
  /// tests and the ablation bench).
  double EstimateCost(const PathExpression& path,
                      MStarQueryStrategy strategy) const;

  /// Convenience: Choose then evaluate with the chosen strategy.
  static QueryResult QueryAuto(MStarIndex& index,
                               const PathExpression& path);

  /// Concurrent-read variant: Choose with this chooser's (prebuilt)
  /// statistics, then evaluate through the index's const query path with
  /// the caller's evaluator. The server rebuilds one chooser per published
  /// index and shares it across worker threads; Choose/EstimateCost only
  /// read the row tables, so this is safe to call concurrently.
  QueryResult Evaluate(const MStarIndex& index, const PathExpression& path,
                       DataEvaluator* validator) const;

  /// Same, reporting which strategy ran (for EXPLAIN and slow-query
  /// records). `chosen_out` may be null.
  QueryResult Evaluate(const MStarIndex& index, const PathExpression& path,
                       DataEvaluator* validator,
                       MStarQueryStrategy* chosen_out) const;

 private:
  /// Number of alive index nodes with label `l` in component `ci`
  /// (wildcard = all nodes of the component).
  double RowSize(size_t ci, LabelId l) const;

  /// label_rows_[ci][label] = node count; labels beyond the table are 0.
  std::vector<std::vector<uint32_t>> label_rows_;
  std::vector<uint32_t> component_sizes_;
};

}  // namespace mrx

#endif  // MRX_INDEX_STRATEGY_CHOOSER_H_
