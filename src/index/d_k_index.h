#ifndef MRX_INDEX_D_K_INDEX_H_
#define MRX_INDEX_D_K_INDEX_H_

#include <vector>

#include "index/evaluator.h"
#include "index/index_graph.h"
#include "query/data_evaluator.h"
#include "query/path_expression.h"

namespace mrx {

/// \brief The D(k)-index of Chen, Lim & Ong (SIGMOD 2003), reproduced as
/// the paper's baseline, in both of its flavors (§2, §5):
///
///  - **D(k)-construct**: built from scratch for a FUP set. All index nodes
///    with the same label share a local similarity requirement, which is
///    the source of its *over-refinement of irrelevant index nodes*.
///  - **D(k)-promote**: starts from an A(0)-index and incrementally applies
///    the PROMOTE procedure per FUP. PROMOTE recursively promotes *all*
///    parents and splits by the (possibly overqualified) parents' current
///    extents, which is the source of its *over-refinement for irrelevant
///    data nodes* and *due to overqualified parents*.
///
/// Both flavors keep the D(k) properties: extents are v.k-bisimilar and a
/// parent's local similarity is at least the child's minus one.
class DkIndex {
 public:
  /// D(k)-construct: builds the index supporting every FUP in `fups`.
  /// `g` must outlive the index.
  static DkIndex Construct(const DataGraph& g,
                           const std::vector<PathExpression>& fups);

  /// D(k)-promote starting point: the A(0)-index of `g`.
  explicit DkIndex(const DataGraph& g);

  /// The paper's PROMOTE procedure (§2), applied for one FUP: every index
  /// node reachable by `fup` is promoted to local similarity ≥ length(fup).
  void Promote(const PathExpression& fup);

  /// Evaluates `path` with validation (§3.1's query algorithm applies to
  /// the D(k)-index unchanged).
  QueryResult Query(const PathExpression& path);

  const IndexGraph& graph() const { return graph_; }

 private:
  DkIndex(const DataGraph& g, IndexGraph graph);

  /// Promotes every index node containing a node of `extent` to local
  /// similarity ≥ kv, recursively promoting parents to kv-1 first and then
  /// splitting by Succ of each current parent's extent (PROMOTE lines 3-6).
  /// Extent-based rather than node-id-based so that it stays correct when
  /// recursion through a cyclic region splits the original node.
  void PromoteExtent(const std::vector<NodeId>& extent, int32_t kv);

  IndexGraph graph_;
  DataEvaluator validator_;
};

/// \brief Per-label local-similarity requirements for D(k)-construct:
/// each FUP's target label requires the FUP's length, propagated backwards
/// through the label adjacency of `g` so that a parent label's requirement
/// is at least the child label's minus one. Exposed for tests.
std::vector<int32_t> ComputeDkLabelRequirements(
    const DataGraph& g, const std::vector<PathExpression>& fups);

}  // namespace mrx

#endif  // MRX_INDEX_D_K_INDEX_H_
