#include "index/m_k_index.h"

#include <algorithm>

#include "index/extent_ops.h"

namespace mrx {

MkIndex::MkIndex(const DataGraph& g)
    : graph_(IndexGraph::LabelPartition(g)), evaluator_(g) {}

QueryResult MkIndex::Query(const PathExpression& path) {
  return AnswerOnIndex(graph_, path, &evaluator_);
}

void MkIndex::Refine(const PathExpression& fup) {
  const int32_t len = static_cast<int32_t>(fup.length());
  if (len == 0) return;  // A single label is precise already (k ≥ 0).
  // No finite k certifies a descendant-axis expression; leave such
  // queries to validation.
  if (fup.HasDescendantAxis()) return;

  // T: target set in the data graph; in the §3 lifecycle it comes from the
  // validation pass of the query processor.
  std::vector<NodeId> target = evaluator_.Evaluate(fup);

  // REFINE lines 1-2. The union over the index target set S of
  // v.extent ∩ T is T itself (the index is safe), and RefineNode re-derives
  // the current covering index nodes internally, so one call suffices and
  // stays correct even when refining one S-node splits another.
  if (!target.empty()) RefineNode(target, len);

  // REFINE lines 3-4: break false instances of the FUP that refinement may
  // have created (the Figure 6 situation).
  while (true) {
    std::vector<IndexNodeId> s = IndexTargetSet(graph_, fup, nullptr);
    IndexNodeId bad = kInvalidIndexNode;
    for (IndexNodeId v : s) {
      if (graph_.node(v).k < len) {
        bad = v;
        break;
      }
    }
    if (bad == kInvalidIndexNode) return;
    // Copy the extent: PromotePrime splits nodes, which can reallocate the
    // node array and invalidate references into it.
    std::vector<NodeId> bad_extent = graph_.node(bad).extent.Materialize();
    PromotePrime(bad_extent, len, fup);
  }
}

void MkIndex::RefineNode(const std::vector<NodeId>& relevant, int32_t k) {
  if (k <= 0 || relevant.empty()) return;

  // Covers: current index nodes of the relevant data nodes that still lack
  // similarity k (the check of REFINENODE line 2).
  auto under_refined_covers = [&]() {
    std::vector<IndexNodeId> covers;
    for (NodeId o : relevant) covers.push_back(graph_.index_of(o));
    std::sort(covers.begin(), covers.end());
    covers.erase(std::unique(covers.begin(), covers.end()), covers.end());
    std::erase_if(covers,
                  [&](IndexNodeId v) { return graph_.node(v).k >= k; });
    return covers;
  };

  std::vector<IndexNodeId> covers = under_refined_covers();
  if (covers.empty()) return;

  // Restrict to the relevant nodes inside under-refined covers: per the
  // paper, REFINENODE returns immediately for nodes with v.k ≥ k, so their
  // relevant data must not drive parent refinement.
  std::vector<NodeId> active_relevant;
  for (IndexNodeId v : covers) {
    std::vector<NodeId> here = Intersect(graph_.node(v).extent, relevant);
    active_relevant.insert(active_relevant.end(), here.begin(), here.end());
  }
  SortUnique(&active_relevant);

  // Lines 4-7: recursively refine only parents containing predecessors of
  // the relevant data (this is what avoids D(k)'s over-refinement). The
  // per-parent predData sets of the paper union to Pred(active_relevant),
  // and the recursion re-derives its own covers, so one extent-level call
  // is equivalent and survives splits of the current node via cycles.
  RefineNode(graph_.Pred(active_relevant), k - 1);

  // Lines 9-26: split each (re-derived) cover.
  for (IndexNodeId v : under_refined_covers()) {
    SplitCover(v, k, active_relevant);
  }
}

void MkIndex::SplitCover(IndexNodeId v, int32_t k,
                         const std::vector<NodeId>& relevant) {
  const int32_t kold = graph_.node(v).k;
  std::vector<NodeId> relevant_here =
      Intersect(graph_.node(v).extent, relevant);
  if (relevant_here.empty()) return;
  std::vector<NodeId> pred_relevant = graph_.Pred(relevant_here);

  // Lines 10-17: partition v's extent by Succ of each qualifying parent.
  // With the merge ablation active, *all* parents qualify and no pieces
  // merge — reproducing D(k)'s PROMOTE splitting exactly.
  std::vector<std::vector<NodeId>> pieces = {graph_.node(v).extent.Materialize()};
  std::vector<NodeId> qualifying_union;  // Data nodes of qualifying parents.
  const std::vector<IndexNodeId> parents = graph_.node(v).parents;
  for (IndexNodeId u : parents) {
    if (merge_unnecessary_splits_ &&
        !Overlaps(pred_relevant, graph_.node(u).extent)) {
      continue;
    }
    const auto& u_extent = graph_.node(u).extent;
    u_extent.AppendTo(&qualifying_union);
    std::vector<NodeId> succ = graph_.Succ(u_extent);
    std::vector<std::vector<NodeId>> next;
    for (const auto& w : pieces) {
      std::vector<NodeId> in = Intersect(w, succ);
      std::vector<NodeId> out = Difference(w, succ);
      if (!in.empty()) next.push_back(std::move(in));
      if (!out.empty()) next.push_back(std::move(out));
    }
    pieces.swap(next);
  }
  SortUnique(&qualifying_union);

  // Lines 19-26: merge pieces with no relevant member into one remainder
  // that keeps the old similarity (unless the ablation hook turned merging
  // off, in which case every piece gets k as in PROMOTE).
  //
  // Soundness refinement over the paper's literal pseudocode: a piece that
  // mixes relevant and irrelevant members keeps an irrelevant member at k
  // only if *all of that member's data parents lie inside the qualifying
  // parents' extents*. For such members the Venn-cell argument of Lemma 1
  // applies (same Succ membership for every qualifying, (k-1)-uniform
  // parent ⇒ k-bisimilar to the relevant members); a member with a parent
  // the split never consulted has no such guarantee and recording k for it
  // can produce false positives later, so it joins the remainder instead.
  std::vector<IndexGraph::Part> parts;
  std::vector<NodeId> remainder;
  auto provably_bisimilar = [&](NodeId m) {
    for (NodeId p : graph_.data().parents(m)) {
      if (!std::binary_search(qualifying_union.begin(),
                              qualifying_union.end(), p)) {
        return false;
      }
    }
    return true;
  };
  for (auto& piece : pieces) {
    if (!merge_unnecessary_splits_) {
      parts.push_back(IndexGraph::Part{std::move(piece), k});
      continue;
    }
    if (!Overlaps(piece, relevant_here)) {
      remainder.insert(remainder.end(), piece.begin(), piece.end());
      continue;
    }
    std::vector<NodeId> keep;
    for (NodeId m : piece) {
      if (provably_bisimilar(m)) {
        keep.push_back(m);
      } else {
        remainder.push_back(m);
      }
    }
    if (!keep.empty()) {
      parts.push_back(IndexGraph::Part{std::move(keep), k});
    }
  }
  if (!remainder.empty()) {
    SortUnique(&remainder);
    parts.push_back(IndexGraph::Part{std::move(remainder), kold});
  }
  graph_.ReplaceNode(v, std::move(parts));
}

bool MkIndex::NoFalseInstances(const PathExpression& fup) {
  const int32_t len = static_cast<int32_t>(fup.length());
  for (IndexNodeId v : IndexTargetSet(graph_, fup, nullptr)) {
    if (graph_.node(v).k < len) return false;
  }
  return true;
}

bool MkIndex::PromotePrime(const std::vector<NodeId>& extent, int32_t kv,
                           const PathExpression& fup) {
  if (NoFalseInstances(fup)) return true;
  if (kv <= 0 || extent.empty()) return false;

  auto under_refined_covers = [&]() {
    std::vector<IndexNodeId> covers;
    for (NodeId o : extent) covers.push_back(graph_.index_of(o));
    std::sort(covers.begin(), covers.end());
    covers.erase(std::unique(covers.begin(), covers.end()), covers.end());
    std::erase_if(covers,
                  [&](IndexNodeId v) { return graph_.node(v).k >= kv; });
    return covers;
  };

  std::vector<IndexNodeId> covers = under_refined_covers();
  if (covers.empty()) return NoFalseInstances(fup);

  // PROMOTE lines 3-4 (all parents, no relevance filter).
  std::vector<NodeId> parent_extent;
  for (IndexNodeId v : covers) {
    for (NodeId o : graph_.node(v).extent) {
      auto ps = graph_.data().parents(o);
      parent_extent.insert(parent_extent.end(), ps.begin(), ps.end());
    }
  }
  SortUnique(&parent_extent);
  if (PromotePrime(parent_extent, kv - 1, fup)) return true;

  // PROMOTE lines 5-6, with the "long jump" check after each node's split
  // completes (splitting only part-way would record an unsound k).
  for (IndexNodeId v : under_refined_covers()) {
    std::vector<std::vector<NodeId>> pieces = {graph_.node(v).extent.Materialize()};
    const std::vector<IndexNodeId> parents = graph_.node(v).parents;
    for (IndexNodeId u : parents) {
      std::vector<NodeId> succ = graph_.Succ(graph_.node(u).extent);
      std::vector<std::vector<NodeId>> next;
      for (const auto& w : pieces) {
        std::vector<NodeId> in = Intersect(w, succ);
        std::vector<NodeId> out = Difference(w, succ);
        if (!in.empty()) next.push_back(std::move(in));
        if (!out.empty()) next.push_back(std::move(out));
      }
      pieces.swap(next);
    }
    std::vector<IndexGraph::Part> parts;
    for (auto& piece : pieces) {
      parts.push_back(IndexGraph::Part{std::move(piece), kv});
    }
    graph_.ReplaceNode(v, std::move(parts));
    if (NoFalseInstances(fup)) return true;
  }
  return NoFalseInstances(fup);
}

}  // namespace mrx
