#ifndef MRX_INDEX_EVALUATOR_H_
#define MRX_INDEX_EVALUATOR_H_

#include <atomic>
#include <vector>

#include "index/index_graph.h"
#include "query/data_evaluator.h"
#include "query/path_expression.h"
#include "query/stats.h"

namespace mrx {

namespace fault {

/// Test-only fault injection for the differential checker (src/check/):
/// while true, AnswerOnIndex silently drops the highest data node from
/// every non-empty answer — a deliberate extent bug in the production
/// answer path. The checker's acceptance test flips this flag to prove
/// the oracle catches wrong answers and the shrinker minimizes them.
/// Never set outside tests.
inline std::atomic<bool> inject_extent_drop{false};

}  // namespace fault

/// \brief The answer to a path expression evaluated through an index.
struct QueryResult {
  /// Data nodes satisfying the expression, sorted ascending. When some
  /// target index node is under-refined (k < query length) the answer has
  /// been validated against the data graph, so it is always exact.
  std::vector<NodeId> answer;

  /// The target set of the expression in the index graph.
  std::vector<IndexNodeId> target;

  /// Cost incurred, per the paper's metric.
  QueryStats stats;

  /// True if every target index node had sufficient local similarity, i.e.
  /// no validation was needed (the index was *precise* for this query).
  bool precise = true;
};

/// \brief Computes the target set of `path` in `ig`: all alive index nodes
/// with `path` as an incoming label path (instances starting at the index
/// node of the data root for anchored paths).
///
/// Adds every index node placed on a search frontier to
/// `stats->index_nodes_visited` (the paper's index-side cost) if `stats` is
/// non-null.
std::vector<IndexNodeId> IndexTargetSet(const IndexGraph& ig,
                                        const PathExpression& path,
                                        QueryStats* stats);

/// \brief The M(k)/A(k)/D(k) query algorithm (§3.1): computes the target
/// set on the index, returns extents of sufficiently-refined target nodes
/// directly, and validates the extents of under-refined ones against the
/// data graph via `validator` (charging `data_nodes_validated`).
QueryResult AnswerOnIndex(const IndexGraph& ig, const PathExpression& path,
                          DataEvaluator* validator);

}  // namespace mrx

#endif  // MRX_INDEX_EVALUATOR_H_
