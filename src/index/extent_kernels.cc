#include "index/extent_kernels.h"

#include <bit>

#if defined(__x86_64__) || defined(_M_X64)
#define MRX_X86_64 1
#include <immintrin.h>
#endif

namespace mrx::extent_internal {
namespace {

/// Set-bit positions per byte value, padded with zeros — the classic
/// roaring emission table. Row b holds the bit indices of b's set bits in
/// ascending order; a vector load of the row plus a base-offset add emits
/// up to 8 positions in one step.
struct BitPosLut {
  alignas(64) uint8_t pos[256][8];
};

constexpr BitPosLut MakeBitPosLut() {
  BitPosLut lut{};
  for (int b = 0; b < 256; ++b) {
    int n = 0;
    for (int i = 0; i < 8; ++i) {
      if (b & (1 << i)) lut.pos[b][n++] = static_cast<uint8_t>(i);
    }
  }
  return lut;
}

constexpr BitPosLut kBitPosLut = MakeBitPosLut();

/// Shuffle-compact control bytes per 8-bit match mask: row m moves the u16
/// lanes whose mask bit is set to the front of the vector (0xFF zeroes the
/// rest). Pairs with the STTNI EQUAL_ANY bit mask in IntersectU16Sse42.
struct ShuffleU16Lut {
  alignas(64) uint8_t ctrl[256][16];
};

constexpr ShuffleU16Lut MakeShuffleU16Lut() {
  ShuffleU16Lut lut{};
  for (int m = 0; m < 256; ++m) {
    int n = 0;
    for (int lane = 0; lane < 8; ++lane) {
      if (m & (1 << lane)) {
        lut.ctrl[m][2 * n] = static_cast<uint8_t>(2 * lane);
        lut.ctrl[m][2 * n + 1] = static_cast<uint8_t>(2 * lane + 1);
        ++n;
      }
    }
    for (; n < 8; ++n) {
      lut.ctrl[m][2 * n] = 0xFF;
      lut.ctrl[m][2 * n + 1] = 0xFF;
    }
  }
  return lut;
}

constexpr ShuffleU16Lut kShuffleU16Lut = MakeShuffleU16Lut();

// ---------------------------------------------------------------------------
// Scalar builds: the semantic definition of every primitive.
// ---------------------------------------------------------------------------

uint32_t AndWordsPopcountScalar(const uint64_t* a, const uint64_t* b,
                                uint64_t* out, size_t n) {
  uint32_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    out[i] = a[i] & b[i];
    count += static_cast<uint32_t>(std::popcount(out[i]));
  }
  return count;
}

uint32_t AndNotWordsPopcountScalar(const uint64_t* a, const uint64_t* b,
                                   uint64_t* out, size_t n) {
  uint32_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    out[i] = a[i] & ~b[i];
    count += static_cast<uint32_t>(std::popcount(out[i]));
  }
  return count;
}

uint32_t PopcountWordsScalar(const uint64_t* w, size_t n) {
  uint32_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    count += static_cast<uint32_t>(std::popcount(w[i]));
  }
  return count;
}

uint32_t EmitWordBits16Scalar(const uint64_t* words, size_t n, uint16_t* out) {
  uint16_t* cursor = out;
  for (size_t w = 0; w < n; ++w) {
    uint64_t bits = words[w];
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      *cursor++ = static_cast<uint16_t>(w * 64 + static_cast<size_t>(b));
      bits &= bits - 1;
    }
  }
  return static_cast<uint32_t>(cursor - out);
}

uint32_t IntersectU16Scalar(const uint16_t* a, size_t na, const uint16_t* b,
                            size_t nb, uint16_t* out) {
  uint16_t* cursor = out;
  size_t i = 0;
  size_t j = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      *cursor++ = a[i];
      ++i;
      ++j;
    }
  }
  return static_cast<uint32_t>(cursor - out);
}

void PrefixSumU32Scalar(uint32_t* v, size_t n, uint32_t carry_in) {
  uint32_t acc = carry_in;
  for (size_t i = 0; i < n; ++i) {
    acc += v[i];
    v[i] = acc;
  }
}

#if defined(MRX_X86_64)

// ---------------------------------------------------------------------------
// SSE4.2 tier: 128-bit word ops + hardware POPCNT. The byte-LUT emitter
// only needs SSE4.1's zero-extension, which SSE4.2 implies.
// ---------------------------------------------------------------------------

__attribute__((target("sse4.2,popcnt"))) uint32_t AndWordsPopcountSse42(
    const uint64_t* a, const uint64_t* b, uint64_t* out, size_t n) {
  uint64_t count = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    const __m128i v = _mm_and_si128(va, vb);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), v);
    count += static_cast<uint64_t>(__builtin_popcountll(out[i]));
    count += static_cast<uint64_t>(__builtin_popcountll(out[i + 1]));
  }
  for (; i < n; ++i) {
    out[i] = a[i] & b[i];
    count += static_cast<uint64_t>(__builtin_popcountll(out[i]));
  }
  return static_cast<uint32_t>(count);
}

__attribute__((target("sse4.2,popcnt"))) uint32_t AndNotWordsPopcountSse42(
    const uint64_t* a, const uint64_t* b, uint64_t* out, size_t n) {
  uint64_t count = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    // _mm_andnot_si128(x, y) = ~x & y, so b goes first.
    const __m128i v = _mm_andnot_si128(vb, va);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), v);
    count += static_cast<uint64_t>(__builtin_popcountll(out[i]));
    count += static_cast<uint64_t>(__builtin_popcountll(out[i + 1]));
  }
  for (; i < n; ++i) {
    out[i] = a[i] & ~b[i];
    count += static_cast<uint64_t>(__builtin_popcountll(out[i]));
  }
  return static_cast<uint32_t>(count);
}

__attribute__((target("popcnt"))) uint32_t PopcountWordsHw(const uint64_t* w,
                                                           size_t n) {
  uint64_t count = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    count += static_cast<uint64_t>(__builtin_popcountll(w[i])) +
             static_cast<uint64_t>(__builtin_popcountll(w[i + 1])) +
             static_cast<uint64_t>(__builtin_popcountll(w[i + 2])) +
             static_cast<uint64_t>(__builtin_popcountll(w[i + 3]));
  }
  for (; i < n; ++i) {
    count += static_cast<uint64_t>(__builtin_popcountll(w[i]));
  }
  return static_cast<uint32_t>(count);
}

__attribute__((target("sse4.2,popcnt"))) uint32_t EmitWordBits16Sse42(
    const uint64_t* words, size_t n, uint16_t* out) {
  uint16_t* cursor = out;
  for (size_t w = 0; w < n; ++w) {
    uint64_t bits = words[w];
    if (bits == 0) continue;
    uint32_t base = static_cast<uint32_t>(w * 64);
    while (bits != 0) {
      const uint8_t byte = static_cast<uint8_t>(bits);
      if (byte != 0) {
        // 8 positions from the LUT row, widened to u16, plus the byte's
        // base offset; over-stores up to 8 lanes (caller guarantees slack)
        // and advances by the true popcount.
        const __m128i row = _mm_loadl_epi64(
            reinterpret_cast<const __m128i*>(kBitPosLut.pos[byte]));
        const __m128i wide = _mm_cvtepu8_epi16(row);
        const __m128i v =
            _mm_add_epi16(wide, _mm_set1_epi16(static_cast<short>(base)));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(cursor), v);
        cursor += __builtin_popcountll(byte);
      }
      bits >>= 8;
      base += 8;
    }
  }
  return static_cast<uint32_t>(cursor - out);
}

__attribute__((target("sse4.2,popcnt"))) uint32_t IntersectU16Sse42(
    const uint16_t* a, size_t na, const uint16_t* b, size_t nb,
    uint16_t* out) {
  uint16_t* cursor = out;
  size_t i = 0;
  size_t j = 0;
  const size_t sa = na & ~size_t{7};
  const size_t sb = nb & ~size_t{7};
  if (i < sa && j < sb) {
    __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    while (true) {
      // EQUAL_ANY over explicit-length u16 fragments: bit k of the result
      // marks va lane k as present somewhere in vb. Explicit length (estrm,
      // not istrm) so a zero value is an ordinary set member, not a
      // terminator. Matched lanes are compacted to the front via the LUT and
      // stored as a full vector (the 8-slot slack contract), advancing by
      // the true match count.
      const __m128i res = _mm_cmpestrm(
          vb, 8, va, 8, _SIDD_UWORD_OPS | _SIDD_CMP_EQUAL_ANY | _SIDD_BIT_MASK);
      const uint32_t mask =
          static_cast<uint32_t>(_mm_extract_epi32(res, 0));
      const __m128i ctrl = _mm_load_si128(
          reinterpret_cast<const __m128i*>(kShuffleU16Lut.ctrl[mask]));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(cursor),
                       _mm_shuffle_epi8(va, ctrl));
      cursor += __builtin_popcount(mask);
      // Advance whichever block's maximum is smaller (both on a tie —
      // members are unique, so nothing past a shared maximum can match it).
      const uint16_t a_max = a[i + 7];
      const uint16_t b_max = b[j + 7];
      if (a_max <= b_max) {
        i += 8;
        if (i == sa) break;
        va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
      }
      if (b_max <= a_max) {
        j += 8;
        if (j == sb) break;
        vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
      }
    }
  }
  // Scalar merge over the tails. Elements before i / j were fully compared
  // against everything that could still match them, so resuming the plain
  // merge here emits no duplicates and misses nothing.
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      *cursor++ = a[i];
      ++i;
      ++j;
    }
  }
  return static_cast<uint32_t>(cursor - out);
}

__attribute__((target("sse4.2"))) void PrefixSumU32Sse42(uint32_t* v, size_t n,
                                                         uint32_t carry_in) {
  __m128i carry = _mm_set1_epi32(static_cast<int>(carry_in));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i));
    x = _mm_add_epi32(x, _mm_slli_si128(x, 4));
    x = _mm_add_epi32(x, _mm_slli_si128(x, 8));
    x = _mm_add_epi32(x, carry);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(v + i), x);
    carry = _mm_shuffle_epi32(x, _MM_SHUFFLE(3, 3, 3, 3));
  }
  uint32_t acc = static_cast<uint32_t>(_mm_cvtsi128_si32(carry));
  for (; i < n; ++i) {
    acc += v[i];
    v[i] = acc;
  }
}

// ---------------------------------------------------------------------------
// AVX2 tier: 256-bit word ops; POPCNT for the counts.
// ---------------------------------------------------------------------------

__attribute__((target("avx2,popcnt"))) uint32_t AndWordsPopcountAvx2(
    const uint64_t* a, const uint64_t* b, uint64_t* out, size_t n) {
  uint64_t count = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i v = _mm256_and_si256(va, vb);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
    count += static_cast<uint64_t>(__builtin_popcountll(out[i])) +
             static_cast<uint64_t>(__builtin_popcountll(out[i + 1])) +
             static_cast<uint64_t>(__builtin_popcountll(out[i + 2])) +
             static_cast<uint64_t>(__builtin_popcountll(out[i + 3]));
  }
  for (; i < n; ++i) {
    out[i] = a[i] & b[i];
    count += static_cast<uint64_t>(__builtin_popcountll(out[i]));
  }
  return static_cast<uint32_t>(count);
}

__attribute__((target("avx2,popcnt"))) uint32_t AndNotWordsPopcountAvx2(
    const uint64_t* a, const uint64_t* b, uint64_t* out, size_t n) {
  uint64_t count = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i v = _mm256_andnot_si256(vb, va);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
    count += static_cast<uint64_t>(__builtin_popcountll(out[i])) +
             static_cast<uint64_t>(__builtin_popcountll(out[i + 1])) +
             static_cast<uint64_t>(__builtin_popcountll(out[i + 2])) +
             static_cast<uint64_t>(__builtin_popcountll(out[i + 3]));
  }
  for (; i < n; ++i) {
    out[i] = a[i] & ~b[i];
    count += static_cast<uint64_t>(__builtin_popcountll(out[i]));
  }
  return static_cast<uint32_t>(count);
}

__attribute__((target("avx2"))) void PrefixSumU32Avx2(uint32_t* v, size_t n,
                                                      uint32_t carry_in) {
  const __m256i bcast_last = _mm256_set1_epi32(7);
  __m256i carry = _mm256_set1_epi32(static_cast<int>(carry_in));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    // In-lane scan, then propagate the low lane's total into the high lane.
    x = _mm256_add_epi32(x, _mm256_slli_si256(x, 4));
    x = _mm256_add_epi32(x, _mm256_slli_si256(x, 8));
    __m256i low_total = _mm256_permutevar8x32_epi32(
        x, _mm256_set1_epi32(3));
    low_total = _mm256_blend_epi32(_mm256_setzero_si256(), low_total, 0xF0);
    x = _mm256_add_epi32(x, low_total);
    x = _mm256_add_epi32(x, carry);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(v + i), x);
    carry = _mm256_permutevar8x32_epi32(x, bcast_last);
  }
  uint32_t acc = static_cast<uint32_t>(_mm256_extract_epi32(carry, 0));
  for (; i < n; ++i) {
    acc += v[i];
    v[i] = acc;
  }
}

#endif  // MRX_X86_64

}  // namespace

uint32_t AndWordsPopcount(const uint64_t* a, const uint64_t* b, uint64_t* out,
                          size_t n) {
#if defined(MRX_X86_64)
  switch (ActiveSimdLevel()) {
    case SimdLevel::kAVX2: return AndWordsPopcountAvx2(a, b, out, n);
    case SimdLevel::kSSE42: return AndWordsPopcountSse42(a, b, out, n);
    case SimdLevel::kScalar: break;
  }
#endif
  return AndWordsPopcountScalar(a, b, out, n);
}

uint32_t AndNotWordsPopcount(const uint64_t* a, const uint64_t* b,
                             uint64_t* out, size_t n) {
#if defined(MRX_X86_64)
  switch (ActiveSimdLevel()) {
    case SimdLevel::kAVX2: return AndNotWordsPopcountAvx2(a, b, out, n);
    case SimdLevel::kSSE42: return AndNotWordsPopcountSse42(a, b, out, n);
    case SimdLevel::kScalar: break;
  }
#endif
  return AndNotWordsPopcountScalar(a, b, out, n);
}

uint32_t PopcountWords(const uint64_t* w, size_t n) {
#if defined(MRX_X86_64)
  if (ActiveSimdLevel() >= SimdLevel::kSSE42) return PopcountWordsHw(w, n);
#endif
  return PopcountWordsScalar(w, n);
}

uint32_t EmitWordBits16(const uint64_t* words, size_t n, uint16_t* out) {
#if defined(MRX_X86_64)
  if (ActiveSimdLevel() >= SimdLevel::kSSE42) {
    return EmitWordBits16Sse42(words, n, out);
  }
#endif
  return EmitWordBits16Scalar(words, n, out);
}

uint32_t IntersectU16(const uint16_t* a, size_t na, const uint16_t* b,
                      size_t nb, uint16_t* out) {
#if defined(MRX_X86_64)
  // The STTNI compare is an SSE4.2 instruction; there is no wider AVX2 form,
  // so both vector tiers share this build.
  if (ActiveSimdLevel() >= SimdLevel::kSSE42) {
    return IntersectU16Sse42(a, na, b, nb, out);
  }
#endif
  return IntersectU16Scalar(a, na, b, nb, out);
}

void PrefixSumU32(uint32_t* v, size_t n, uint32_t carry_in) {
#if defined(MRX_X86_64)
  switch (ActiveSimdLevel()) {
    case SimdLevel::kAVX2: PrefixSumU32Avx2(v, n, carry_in); return;
    case SimdLevel::kSSE42: PrefixSumU32Sse42(v, n, carry_in); return;
    case SimdLevel::kScalar: break;
  }
#endif
  PrefixSumU32Scalar(v, n, carry_in);
}

void UnpackFieldsU32(const uint64_t* packed, uint8_t bits, size_t from,
                     size_t count, uint32_t add, uint32_t* out) {
  // Rolling 64-bit window over the packed stream: each field is at bit
  // offset (from + i) * bits; the window is refilled one word at a time,
  // so each packed word is loaded once per call instead of once per field.
  const uint64_t mask =
      bits >= 64 ? ~uint64_t{0} : (uint64_t{1} << bits) - 1;
  size_t bit = from * static_cast<size_t>(bits);
  for (size_t i = 0; i < count; ++i) {
    const size_t word = bit >> 6;
    const size_t off = bit & 63;
    uint64_t field = packed[word] >> off;
    if (off + bits > 64) {
      field |= packed[word + 1] << (64 - off);
    }
    out[i] = static_cast<uint32_t>(field & mask) + add;
    bit += bits;
  }
}

}  // namespace mrx::extent_internal
