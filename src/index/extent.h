#ifndef MRX_INDEX_EXTENT_H_
#define MRX_INDEX_EXTENT_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "graph/data_graph.h"

namespace mrx {

/// \file
/// The pluggable compressed extent representation (ISSUE 9 tentpole).
///
/// Every structural index in the reproduction stands on *extents* — sorted,
/// duplicate-free sets of data-node ids. At the 2M-node scale tier they
/// dominate both index physical size and the §5 intersection cost, so the
/// raw `std::vector<uint32_t>` of the early PRs is now one of three
/// representations behind an immutable value type:
///
///  - kSortedVector — the original format and the equivalence oracle;
///  - kDeltaPacked  — fixed-width bit-packed (delta − 1) runs, the densest
///    encoding for clustered id ranges;
///  - kHybridBitmap — roaring-style containers per 64k id chunk (sorted
///    u16 array / 1024-word bitmap / run list), the set-algebra workhorse
///    with word-parallel intersection.
///
/// The representation is chosen per extent by a size heuristic when the
/// extent is *normalized on construction*; `SetExtentRepMode` forces one
/// globally (differential runs force each in turn — `mrx check
/// --extent-rep`). Payloads are immutable and shared, so copying an Extent
/// (index clones, cache handles) is one refcount. Ground truth stays on
/// plain vectors: DataGraph adjacency, DataEvaluator and the differential
/// oracle never see a compressed set.

/// Physical representation of one extent.
enum class ExtentRep : uint8_t {
  kSortedVector = 0,
  kDeltaPacked = 1,
  kHybridBitmap = 2,
};

/// Process-wide construction policy. kAuto picks per extent by the size
/// heuristic; the force modes pin every new extent to one representation
/// (the differential harness runs each against the vector oracle).
enum class ExtentRepMode : uint8_t {
  kAuto = 0,
  kForceSortedVector,
  kForceDeltaPacked,
  kForceHybridBitmap,
};

void SetExtentRepMode(ExtentRepMode mode);
ExtentRepMode GetExtentRepMode();

/// "auto" | "vector" | "delta" | "hybrid" (the `--extent-rep` spellings).
std::optional<ExtentRepMode> ParseExtentRepMode(std::string_view name);
const char* ExtentRepName(ExtentRep rep);

namespace extent_internal {

/// One 64k id chunk of a kHybridBitmap extent. `kind` follows the classic
/// hybrid rule: whichever of array (2 B/element), bitmap (8 KiB flat) or
/// runs (4 B/run) is smallest for the chunk's contents.
struct BitmapChunk {
  enum class Kind : uint8_t { kArray = 0, kBitmap = 1, kRuns = 2 };
  uint16_t high = 0;    ///< Chunk id: value >> 16.
  Kind kind = Kind::kArray;
  uint32_t count = 0;   ///< Number of values in the chunk.
  /// kArray: sorted low 16 bits. kRuns: (start, length-1) pairs, sorted,
  /// non-adjacent. kBitmap: unused.
  std::vector<uint16_t> lows;
  /// kBitmap: exactly 1024 words. Others: unused.
  std::vector<uint64_t> words;

  size_t physical_bytes() const {
    return sizeof(BitmapChunk) + lows.size() * sizeof(uint16_t) +
           words.size() * sizeof(uint64_t);
  }
  bool Contains(uint16_t low) const;
};

/// Values per delta block: the granularity of the kDeltaPacked skip index
/// and of the native delta-stream kernels' decode window. 128 values keep
/// the decode buffer stack-resident (512 B) while the per-block maximum
/// costs 4 B per 128 members (~3% of the vector encoding).
inline constexpr size_t kDeltaBlock = 128;

/// Immutable storage behind an Extent; shared between copies.
struct ExtentPayload {
  ExtentRep rep = ExtentRep::kSortedVector;
  uint32_t size = 0;

  // kSortedVector.
  std::vector<NodeId> sorted;

  // kDeltaPacked: values are base, base + d0, base + d0 + d1, ... with
  // each field storing (delta - 1) in `delta_bits` bits (extents are
  // duplicate-free, so every delta is >= 1). delta_bits == 0 encodes a
  // contiguous run [base, base + size).
  NodeId base = 0;
  uint8_t delta_bits = 0;
  std::vector<uint64_t> packed;

  // kDeltaPacked skip index, *derived* from `packed` (never serialized;
  // storage decode recomputes it via FinalizeDeltaPayload): entry b is the
  // last member of block b, i.e. the value at logical index
  // min(size, (b+1)*kDeltaBlock) - 1. Empty when delta_bits == 0 — a
  // contiguous run answers every question with arithmetic. The native
  // kernels binary-search it to skip blocks that cannot overlap the other
  // operand, and Contains uses it for O(log + kDeltaBlock) membership.
  std::vector<NodeId> block_last;

  // kHybridBitmap, ascending by `high`.
  std::vector<BitmapChunk> chunks;

  size_t physical_bytes() const;
};

uint64_t UnpackDelta(const std::vector<uint64_t>& packed, uint8_t bits,
                     size_t index);

/// Builds the block_last skip index of a kDeltaPacked payload from its
/// packed stream (one sequential decode). Must be called on every payload
/// whose `packed`/`base`/`delta_bits`/`size` were filled in by hand — the
/// storage decode path and tests; Extent::FromSortedAs does it itself.
void FinalizeDeltaPayload(ExtentPayload* p);

/// Decodes one delta block: writes the members at logical indices
/// [block * kDeltaBlock, min(size, (block+1) * kDeltaBlock)) into `out`
/// (capacity >= kDeltaBlock) and returns how many were written. Requires
/// delta_bits > 0 and a finalized block_last.
uint32_t DecodeDeltaBlock(const ExtentPayload& p, size_t block, NodeId* out);

/// Builds a chunk for `count` sorted low halfwords, choosing the cheapest
/// kind. Shared by extent normalization and the native hybrid kernels in
/// extent_ops.cc (which produce result chunks directly).
BitmapChunk MakeChunk(uint16_t high, const uint16_t* lows, uint32_t count);

/// Wraps chunks (ascending by high, all non-empty) into a hybrid payload.
std::shared_ptr<const ExtentPayload> MakeHybridPayload(
    std::vector<BitmapChunk> chunks);

}  // namespace extent_internal

/// \brief An immutable, normalized extent: a sorted duplicate-free set of
/// data-node ids that owns its physical representation.
class Extent {
 public:
  /// Empty set.
  Extent() = default;

  /// Normalizes a sorted duplicate-free vector into the representation the
  /// heuristic (or the forced mode) selects. Implicit on purpose: every
  /// boundary that used to traffic in raw vectors normalizes on the way
  /// in, which is the API contract of the redesign.
  Extent(std::vector<NodeId> sorted) : Extent(FromSorted(std::move(sorted))) {}

  static Extent FromSorted(std::vector<NodeId> sorted);
  /// Forces a specific representation (benchmarks, tests, storage reload).
  static Extent FromSortedAs(std::vector<NodeId> sorted, ExtentRep rep);
  /// Adopts an already-built payload (storage decode path). The payload
  /// must be well-formed; only debug builds re-verify.
  static Extent FromPayload(std::shared_ptr<const extent_internal::ExtentPayload> payload);

  size_t size() const { return payload_ == nullptr ? 0 : payload_->size; }
  bool empty() const { return size() == 0; }
  NodeId front() const;
  NodeId back() const;

  ExtentRep rep() const {
    return payload_ == nullptr ? ExtentRep::kSortedVector : payload_->rep;
  }

  /// Heap bytes of the physical encoding (the §5 index-size accounting the
  /// extent bench reports). An empty extent is 0.
  size_t physical_bytes() const {
    return payload_ == nullptr ? 0 : payload_->physical_bytes();
  }

  bool Contains(NodeId id) const;

  /// Decodes to the oracle representation.
  std::vector<NodeId> Materialize() const;

  /// Appends all members to `out` in ascending order (bulk decode; the
  /// answer-collection hot path).
  void AppendTo(std::vector<NodeId>* out) const;

  /// Non-null iff the physical representation is kSortedVector — the
  /// kernels' zero-copy fast path.
  const std::vector<NodeId>* AsSortedVector() const {
    if (payload_ == nullptr || payload_->rep != ExtentRep::kSortedVector) {
      return nullptr;
    }
    return &payload_->sorted;
  }

  const extent_internal::ExtentPayload* payload() const {
    return payload_.get();
  }

  /// Forward iterator decoding on the fly; keeps range-for call sites from
  /// the vector era source-compatible.
  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = NodeId;
    using difference_type = ptrdiff_t;
    using pointer = const NodeId*;
    using reference = const NodeId&;

    const_iterator() = default;

    reference operator*() const { return value_; }
    pointer operator->() const { return &value_; }
    const_iterator& operator++() {
      Advance();
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator copy = *this;
      Advance();
      return copy;
    }
    bool operator==(const const_iterator& o) const { return pos_ == o.pos_; }
    bool operator!=(const const_iterator& o) const { return pos_ != o.pos_; }

   private:
    friend class Extent;
    const_iterator(const extent_internal::ExtentPayload* p, size_t pos);
    void Advance();
    void LoadChunkCursor();

    const extent_internal::ExtentPayload* p_ = nullptr;
    size_t pos_ = 0;       ///< Logical index; == size() at end.
    NodeId value_ = 0;
    // kDeltaPacked cursor.
    size_t delta_index_ = 0;
    // kHybridBitmap cursor.
    size_t chunk_ = 0;     ///< Current chunk index.
    size_t in_chunk_ = 0;  ///< Values consumed from the current chunk.
    size_t word_ = 0;      ///< Bitmap kind: current word index.
    uint64_t word_bits_ = 0;  ///< Bitmap kind: unconsumed bits of word_.
    size_t run_ = 0;       ///< Runs kind: current run pair index.
    uint32_t run_off_ = 0; ///< Runs kind: offset within the current run.
  };

  const_iterator begin() const { return const_iterator(payload_.get(), 0); }
  const_iterator end() const { return const_iterator(payload_.get(), size()); }

  /// Logical set equality (representation-independent).
  bool operator==(const Extent& o) const;
  bool operator!=(const Extent& o) const { return !(*this == o); }
  bool operator==(const std::vector<NodeId>& v) const;
  bool operator!=(const std::vector<NodeId>& v) const { return !(*this == v); }

 private:
  explicit Extent(std::shared_ptr<const extent_internal::ExtentPayload> p)
      : payload_(std::move(p)) {}

  std::shared_ptr<const extent_internal::ExtentPayload> payload_;
};

/// Debug/printing support (gtest failure messages); prints up to 16
/// members then an ellipsis with the size.
std::ostream& operator<<(std::ostream& os, const Extent& extent);

}  // namespace mrx

#endif  // MRX_INDEX_EXTENT_H_
