#include "index/evaluator.h"

#include <algorithm>

#include "obs/query_cost.h"

namespace mrx {

std::vector<IndexNodeId> IndexTargetSet(const IndexGraph& ig,
                                        const PathExpression& path,
                                        QueryStats* stats) {
  std::vector<IndexNodeId> frontier;
  std::vector<char> in_frontier(ig.capacity(), 0);

  if (path.anchored()) {
    IndexNodeId root_node = ig.index_of(ig.data().root());
    if (path.StepMatches(0, ig.node(root_node).label)) {
      frontier.push_back(root_node);
    }
  } else {
    for (IndexNodeId v = 0; v < ig.capacity(); ++v) {
      if (ig.alive(v) && path.StepMatches(0, ig.node(v).label)) {
        frontier.push_back(v);
      }
    }
  }
  if (stats != nullptr) stats->index_nodes_visited += frontier.size();

  for (size_t step = 1; step < path.num_steps() && !frontier.empty();
       ++step) {
    std::vector<IndexNodeId> next;
    if (path.DescendantStep(step)) {
      // Descendant axis: the closure of one-or-more index edges, filtered
      // by the step's label. Safe: index reachability over-approximates
      // data reachability (Property 2), and answers are validated.
      std::vector<IndexNodeId> work = frontier;
      std::vector<char> reached(ig.capacity(), 0);
      for (size_t i = 0; i < work.size(); ++i) {
        for (IndexNodeId v : ig.node(work[i]).children) {
          if (!reached[v]) {
            reached[v] = 1;
            work.push_back(v);
            if (path.StepMatches(step, ig.node(v).label)) {
              next.push_back(v);
            }
          }
        }
      }
    } else {
      for (IndexNodeId u : frontier) {
        for (IndexNodeId v : ig.node(u).children) {
          if (path.StepMatches(step, ig.node(v).label) && !in_frontier[v]) {
            in_frontier[v] = 1;
            next.push_back(v);
          }
        }
      }
      for (IndexNodeId v : next) in_frontier[v] = 0;
    }
    if (stats != nullptr) stats->index_nodes_visited += next.size();
    frontier.swap(next);
  }
  std::sort(frontier.begin(), frontier.end());
  return frontier;
}

QueryResult AnswerOnIndex(const IndexGraph& ig, const PathExpression& path,
                          DataEvaluator* validator) {
  QueryResult result;
  result.target = IndexTargetSet(ig, path, &result.stats);

  const int32_t needed = static_cast<int32_t>(path.length());
  const bool certifiable = !path.anchored() && !path.HasDescendantAxis();
  for (IndexNodeId v : result.target) {
    const IndexGraph::Node& node = ig.node(v);
    obs::CountExtentScan(node.extent.size());
    if (node.k >= needed && certifiable) {
      // Precise: the whole extent is part of the answer (§3.1 step 2).
      // Bulk decode — blockwise for delta, chunkwise for hybrid — instead
      // of the per-element iterator round-trip.
      node.extent.AppendTo(&result.answer);
      continue;
    }
    if (node.k >= needed && !certifiable) {
      // Anchored expressions pin the instance's start to the root, and
      // descendant-axis expressions have unbounded instances; in both
      // cases k-bisimilarity cannot certify the whole extent, so fall
      // through to validation (answers stay exact either way).
    }
    result.precise = false;
    for (NodeId o : node.extent) {
      if (validator->HasIncomingPath(o, path,
                                     &result.stats.data_nodes_validated)) {
        result.answer.push_back(o);
      }
    }
  }
  std::sort(result.answer.begin(), result.answer.end());
  if (fault::inject_extent_drop.load(std::memory_order_relaxed) &&
      !result.answer.empty()) {
    result.answer.pop_back();
  }
  return result;
}

}  // namespace mrx
