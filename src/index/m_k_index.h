#ifndef MRX_INDEX_M_K_INDEX_H_
#define MRX_INDEX_M_K_INDEX_H_

#include <vector>

#include "index/evaluator.h"
#include "index/index_graph.h"
#include "query/data_evaluator.h"
#include "query/path_expression.h"

namespace mrx {

/// \brief The M(k)-index (paper §3): a workload-adaptive structural index
/// that refines itself to support frequently used path expressions (FUPs)
/// *without* over-refining irrelevant index or data nodes.
///
/// It shares the D(k)-index's three properties (extents are v.k-bisimilar;
/// index edges mirror data edges between extents; parent.k ≥ child.k − 1)
/// but its REFINE procedure (§3.2) uses the FUP's *data-graph target set* to
/// restrict refinement to relevant data, merging all irrelevant pieces back
/// into a single remainder node (`vrest`) that keeps its old similarity.
///
/// Lifecycle (§3's Figure 5): initialize as A(0); answer queries with
/// validation; Refine() for each FUP extracted from the workload; repeat.
class MkIndex {
 public:
  /// Starts as the A(0)-index of `g`; `g` must outlive the index.
  explicit MkIndex(const DataGraph& g);

  /// The §3.1 query algorithm: evaluate on the index graph, return
  /// sufficiently-refined extents directly, validate the rest.
  QueryResult Query(const PathExpression& path);

  /// The §3.2 REFINE procedure: refines the index so `fup` is answered
  /// precisely (its data-graph target set is computed internally, as the
  /// query processor would have during validation). After Refine returns,
  /// every index node reachable by `fup` has local similarity ≥
  /// length(fup), so Query(fup) no longer validates.
  ///
  /// Anchored (`/a/b`) FUPs are refined like their floating counterparts;
  /// see AnswerOnIndex for why anchored queries always validate.
  void Refine(const PathExpression& fup);

  const IndexGraph& graph() const { return graph_; }

  /// Test hook: disables the "merge unnecessary splits" step (REFINENODE
  /// lines 19-26). With merging off, refinement over-refines irrelevant
  /// data nodes the way D(k)-promote does — the ablation of DESIGN.md §6.
  void set_merge_unnecessary_splits(bool enabled) {
    merge_unnecessary_splits_ = enabled;
  }

 private:
  /// REFINENODE (§3.2), reformulated over data-node sets: ensures every
  /// index node containing a node of `relevant` has local similarity ≥ k,
  /// first refining (only) the parents that contain predecessors of
  /// `relevant`, then splitting each cover by the Succ sets of qualifying
  /// parents, merging pieces that contain no relevant node back together.
  /// `relevant` must be sorted.
  void RefineNode(const std::vector<NodeId>& relevant, int32_t k);

  /// Splits one cover node (REFINENODE lines 9-26).
  void SplitCover(IndexNodeId v, int32_t k,
                  const std::vector<NodeId>& relevant);

  /// PROMOTE' (§3.2): breaks surviving false instances of `fup` by
  /// promoting all data nodes of under-refined target nodes, long-jumping
  /// out (via the return flag) as soon as no false instance of `fup`
  /// remains. Returns true when evaluation of `fup` is precise.
  bool PromotePrime(const std::vector<NodeId>& extent, int32_t kv,
                    const PathExpression& fup);

  /// True iff every index node reachable by `fup` has similarity ≥ its
  /// length (no false instances remain).
  bool NoFalseInstances(const PathExpression& fup);

  IndexGraph graph_;
  DataEvaluator evaluator_;
  bool merge_unnecessary_splits_ = true;
};

}  // namespace mrx

#endif  // MRX_INDEX_M_K_INDEX_H_
