// The bottom-up and hybrid evaluation strategies of §4.1 "Other
// approaches", plus the shared helpers they use. Kept out of
// m_star_index.cc so each translation unit stays focused (refinement
// there, alternative evaluation strategies here).

#include <algorithm>
#include <cassert>

#include "index/extent_ops.h"
#include "index/m_star_index.h"
#include "obs/query_cost.h"

namespace mrx {

void MStarIndex::CollectAnswer(const PathExpression& path, size_t ci,
                               std::vector<IndexNodeId> target,
                               DataEvaluator* validator,
                               QueryResult* result) const {
  SortUnique(&target);
  result->target = std::move(target);
  const IndexGraph& comp = components_[ci].graph;
  obs::CountComponentTouched(ci);
  const int32_t needed = static_cast<int32_t>(path.length());
  const bool certifiable = !path.anchored() && !path.HasDescendantAxis();
  for (IndexNodeId v : result->target) {
    const IndexGraph::Node& node = comp.node(v);
    obs::CountExtentScan(node.extent.size());
    if (node.k >= needed && certifiable) {
      // Bulk decode instead of the per-element iterator round-trip.
      node.extent.AppendTo(&result->answer);
    } else {
      result->precise = false;
      for (NodeId o : node.extent) {
        if (validator->HasIncomingPath(
                o, path, &result->stats.data_nodes_validated)) {
          result->answer.push_back(o);
        }
      }
    }
  }
  std::sort(result->answer.begin(), result->answer.end());
}

bool MStarIndex::HasOutgoingSuffix(size_t ci, IndexNodeId v,
                                   const PathExpression& path, size_t from,
                                   QueryStats* stats) const {
  const IndexGraph& comp = components_[ci].graph;
  std::vector<IndexNodeId> frontier = {v};
  for (size_t step = from + 1;
       step < path.num_steps() && !frontier.empty(); ++step) {
    std::vector<IndexNodeId> next;
    std::vector<char> seen(comp.capacity(), 0);
    for (IndexNodeId u : frontier) {
      for (IndexNodeId c : comp.node(u).children) {
        if (path.StepMatches(step, comp.node(c).label) && !seen[c]) {
          seen[c] = 1;
          next.push_back(c);
        }
      }
    }
    if (stats != nullptr) stats->index_nodes_visited += next.size();
    frontier = std::move(next);
  }
  return !frontier.empty();
}

std::vector<IndexNodeId> MStarIndex::DescendNodes(
    size_t from_ci, size_t to_ci, const std::vector<IndexNodeId>& nodes,
    QueryStats* stats) const {
  if (from_ci == to_ci) return nodes;
  const IndexGraph& from = components_[from_ci].graph;
  const IndexGraph& to = components_[to_ci].graph;
  obs::CountComponentTouched(to_ci);
  std::vector<IndexNodeId> out;
  std::vector<char> seen(to.capacity(), 0);
  for (IndexNodeId u : nodes) {
    obs::CountExtentScan(from.node(u).extent.size());
    for (NodeId o : from.node(u).extent) {
      IndexNodeId v = to.index_of(o);
      if (!seen[v]) {
        seen[v] = 1;
        out.push_back(v);
      }
    }
  }
  if (stats != nullptr) stats->index_nodes_visited += out.size();
  return out;
}

QueryResult MStarIndex::QueryBottomUp(const PathExpression& path) {
  return QueryBottomUp(path, &evaluator_);
}

QueryResult MStarIndex::QueryBottomUp(const PathExpression& path,
                                      DataEvaluator* validator) const {
  // Anchoring needs the prefix side pinned to the root; top-down handles
  // it naturally. Descendant axes need closure logic, which the naive
  // strategy (AnswerOnIndex) implements.
  if (path.anchored()) return QueryTopDown(path, validator);
  if (path.HasDescendantAxis()) return QueryNaive(path, validator);

  QueryResult result;
  const size_t finest = components_.size() - 1;
  const size_t j = path.length();

  // Suffix of length 0: every node labeled l_j, in I0.
  size_t current_ci = 0;
  obs::CountComponentTouched(0);
  std::vector<IndexNodeId> starts;  // Nodes at path position j - s.
  {
    const IndexGraph& c0 = components_[0].graph;
    for (IndexNodeId v = 0; v < c0.capacity(); ++v) {
      if (c0.alive(v) && path.StepMatches(j, c0.node(v).label)) {
        starts.push_back(v);
      }
    }
    result.stats.index_nodes_visited += starts.size();
  }

  // Grow the suffix one step at a time, moving to finer components and
  // re-checking downward each time (the paper's caveat: a subnode may
  // have fewer outgoing paths than its supernode).
  for (size_t s = 1; s <= j && !starts.empty(); ++s) {
    const size_t ci = std::min(s, finest);
    const size_t position = j - s;
    std::vector<IndexNodeId> descended =
        DescendNodes(current_ci, ci, starts, &result.stats);
    current_ci = ci;

    const IndexGraph& comp = components_[ci].graph;
    std::vector<IndexNodeId> candidates;
    std::vector<char> seen(comp.capacity(), 0);
    for (IndexNodeId v : descended) {
      for (IndexNodeId p : comp.node(v).parents) {
        if (path.StepMatches(position, comp.node(p).label) && !seen[p]) {
          seen[p] = 1;
          candidates.push_back(p);
        }
      }
    }
    result.stats.index_nodes_visited += candidates.size();

    // Downward check: keep only candidates whose outgoing suffix really
    // exists in this component.
    starts.clear();
    for (IndexNodeId p : candidates) {
      if (HasOutgoingSuffix(ci, p, path, position, &result.stats)) {
        starts.push_back(p);
      }
    }
  }

  // `starts` now holds verified instance starts in component current_ci;
  // walk forward once more to collect the target (end) nodes.
  std::vector<IndexNodeId> frontier = std::move(starts);
  const IndexGraph& comp = components_[current_ci].graph;
  for (size_t step = 1; step < path.num_steps() && !frontier.empty();
       ++step) {
    std::vector<IndexNodeId> next;
    std::vector<char> seen(comp.capacity(), 0);
    for (IndexNodeId u : frontier) {
      for (IndexNodeId c : comp.node(u).children) {
        if (path.StepMatches(step, comp.node(c).label) && !seen[c]) {
          seen[c] = 1;
          next.push_back(c);
        }
      }
    }
    result.stats.index_nodes_visited += next.size();
    frontier = std::move(next);
  }
  CollectAnswer(path, current_ci, std::move(frontier), validator, &result);
  return result;
}

QueryResult MStarIndex::QueryHybrid(const PathExpression& path) {
  return QueryHybrid(path, path.num_steps() / 2);
}

QueryResult MStarIndex::QueryHybrid(const PathExpression& path,
                                    size_t meet) {
  return QueryHybrid(path, meet, &evaluator_);
}

QueryResult MStarIndex::QueryHybrid(const PathExpression& path,
                                    DataEvaluator* validator) const {
  return QueryHybrid(path, path.num_steps() / 2, validator);
}

QueryResult MStarIndex::QueryHybrid(const PathExpression& path, size_t meet,
                                    DataEvaluator* validator) const {
  if (path.HasDescendantAxis()) return QueryNaive(path, validator);
  if (path.anchored() || path.num_steps() < 3) {
    return QueryTopDown(path, validator);
  }
  assert(meet < path.num_steps());

  QueryResult result;
  const size_t finest = components_.size() - 1;
  const size_t cq = std::min(path.length(), finest);
  const IndexGraph& fine = components_[cq].graph;
  obs::CountComponentTouched(cq);
  obs::CountComponentTouched(0);

  // Top-down half: prefix frontier at step `meet`, evaluated in the fine
  // component directly (simplified prefix descent; the full staircase is
  // QueryTopDown's job — the hybrid's interest is the join).
  std::vector<IndexNodeId> prefix_frontier;
  for (IndexNodeId v = 0; v < fine.capacity(); ++v) {
    if (fine.alive(v) && path.StepMatches(0, fine.node(v).label)) {
      prefix_frontier.push_back(v);
    }
  }
  result.stats.index_nodes_visited += prefix_frontier.size();
  for (size_t step = 1; step <= meet && !prefix_frontier.empty(); ++step) {
    std::vector<IndexNodeId> next;
    std::vector<char> seen(fine.capacity(), 0);
    for (IndexNodeId u : prefix_frontier) {
      for (IndexNodeId c : fine.node(u).children) {
        if (path.StepMatches(step, fine.node(c).label) && !seen[c]) {
          seen[c] = 1;
          next.push_back(c);
        }
      }
    }
    result.stats.index_nodes_visited += next.size();
    prefix_frontier = std::move(next);
  }

  // Bottom-up half: verified suffix starts at step `meet` (suffix length
  // j - meet), computed like QueryBottomUp but stopping at the meet.
  const size_t j = path.length();
  size_t current_ci = 0;
  std::vector<IndexNodeId> suffix_starts;
  {
    const IndexGraph& c0 = components_[0].graph;
    for (IndexNodeId v = 0; v < c0.capacity(); ++v) {
      if (c0.alive(v) && path.StepMatches(j, c0.node(v).label)) {
        suffix_starts.push_back(v);
      }
    }
    result.stats.index_nodes_visited += suffix_starts.size();
  }
  for (size_t s = 1; s <= j - meet && !suffix_starts.empty(); ++s) {
    const size_t ci = std::min(s, finest);
    const size_t position = j - s;
    std::vector<IndexNodeId> descended =
        DescendNodes(current_ci, ci, suffix_starts, &result.stats);
    current_ci = ci;
    const IndexGraph& comp = components_[ci].graph;
    std::vector<IndexNodeId> candidates;
    std::vector<char> seen(comp.capacity(), 0);
    for (IndexNodeId v : descended) {
      for (IndexNodeId p : comp.node(v).parents) {
        if (path.StepMatches(position, comp.node(p).label) && !seen[p]) {
          seen[p] = 1;
          candidates.push_back(p);
        }
      }
    }
    result.stats.index_nodes_visited += candidates.size();
    suffix_starts.clear();
    for (IndexNodeId p : candidates) {
      if (HasOutgoingSuffix(ci, p, path, position, &result.stats)) {
        suffix_starts.push_back(p);
      }
    }
  }

  // Join at the meet step in the fine component.
  std::vector<IndexNodeId> meet_nodes =
      DescendNodes(current_ci, cq, suffix_starts, &result.stats);
  std::vector<char> in_prefix(fine.capacity(), 0);
  for (IndexNodeId v : prefix_frontier) in_prefix[v] = 1;
  std::erase_if(meet_nodes,
                [&](IndexNodeId v) { return !in_prefix[v]; });

  // Finish forward from the joined frontier to the end of the path.
  std::vector<IndexNodeId> frontier = std::move(meet_nodes);
  for (size_t step = meet + 1; step < path.num_steps() && !frontier.empty();
       ++step) {
    std::vector<IndexNodeId> next;
    std::vector<char> seen(fine.capacity(), 0);
    for (IndexNodeId u : frontier) {
      for (IndexNodeId c : fine.node(u).children) {
        if (path.StepMatches(step, fine.node(c).label) && !seen[c]) {
          seen[c] = 1;
          next.push_back(c);
        }
      }
    }
    result.stats.index_nodes_visited += next.size();
    frontier = std::move(next);
  }
  CollectAnswer(path, cq, std::move(frontier), validator, &result);
  return result;
}

}  // namespace mrx
