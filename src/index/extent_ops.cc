#include "index/extent_ops.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "index/extent.h"
#include "index/extent_kernels.h"

namespace mrx {
namespace {

using extent_internal::BitmapChunk;
using extent_internal::ExtentPayload;

/// Decodes set bits of `word` (word index `w`) into `out` as low halfwords.
inline void ExtractWordBits(uint64_t word, size_t w, std::vector<uint16_t>* out) {
  while (word != 0) {
    const int b = std::countr_zero(word);
    out->push_back(static_cast<uint16_t>(w * 64 + static_cast<size_t>(b)));
    word &= word - 1;
  }
}

/// Expands a chunk's members into `out` as low halfwords.
void ChunkLows(const BitmapChunk& c, std::vector<uint16_t>* out) {
  out->clear();
  out->reserve(c.count);
  switch (c.kind) {
    case BitmapChunk::Kind::kArray:
      out->assign(c.lows.begin(), c.lows.end());
      return;
    case BitmapChunk::Kind::kRuns:
      for (size_t r = 0; r < c.lows.size(); r += 2) {
        const uint32_t start = c.lows[r];
        const uint32_t len = static_cast<uint32_t>(c.lows[r + 1]) + 1;
        for (uint32_t j = 0; j < len; ++j) {
          out->push_back(static_cast<uint16_t>(start + j));
        }
      }
      return;
    case BitmapChunk::Kind::kBitmap:
      for (size_t w = 0; w < c.words.size(); ++w) {
        ExtractWordBits(c.words[w], w, out);
      }
      return;
  }
}

/// Reusable working buffers for the per-chunk kernels — one allocation per
/// CombineHybrid call instead of one per chunk.
struct ChunkScratch {
  std::vector<uint16_t> lows;
  std::vector<uint64_t> words;
};

/// Count above which a 1024-word bitmap is at most as large as a u16 array
/// (8 KiB / 2 B). Mirrors MakeChunk's kind rule; the native word-result
/// emitters keep such chunks as bitmaps without ever extracting bits.
constexpr uint32_t kBitmapCutoff = 4096;

/// Emits the result chunk for the AND/ANDNOT words sitting in `s->words`,
/// whose popcount is `count` (the fused word kernels return it for free).
/// Dense results stay bitmaps (one 8 KiB copy, no per-bit extraction);
/// sparse ones decode through the SIMD bit emitter and fall back to
/// MakeChunk's exact kind rule. Returns false for an empty result.
bool EmitFromWords(uint16_t high, uint32_t count, ChunkScratch* s,
                   BitmapChunk* out) {
  if (count == 0) return false;
  if (count > kBitmapCutoff) {
    out->high = high;
    out->kind = BitmapChunk::Kind::kBitmap;
    out->count = count;
    out->lows.clear();
    out->words.assign(s->words.begin(), s->words.end());
    return true;
  }
  // +8 slots: EmitWordBits16's vectorized emitter over-stores full 8-lane
  // groups past the true count (see its contract).
  s->lows.resize(count + 8);
  const uint32_t written = extent_internal::EmitWordBits16(
      s->words.data(), s->words.size(), s->lows.data());
  assert(written == count);
  *out = extent_internal::MakeChunk(high, s->lows.data(), written);
  return true;
}

/// Masks `words` down to the bits inside the run [start, end] (inclusive),
/// OR-ing the surviving bits into `s->words` (runs are non-adjacent, so
/// their masks never collide).
void AccumulateRunWords(const std::vector<uint64_t>& words, uint32_t start,
                        uint32_t end, std::vector<uint64_t>* acc) {
  const size_t w_first = start >> 6;
  const size_t w_last = end >> 6;
  for (size_t w = w_first; w <= w_last; ++w) {
    uint64_t mask = ~uint64_t{0};
    if (w == w_first) mask &= ~uint64_t{0} << (start & 63);
    if (w == w_last && (end & 63) != 63) {
      mask &= (uint64_t{1} << ((end & 63) + 1)) - 1;
    }
    (*acc)[w] |= words[w] & mask;
  }
}

/// a ∩ b within one 64k chunk; returns false when the result is empty.
bool IntersectChunk(const BitmapChunk& a, const BitmapChunk& b,
                    ChunkScratch* s, BitmapChunk* out) {
  // Word-parallel fast path: one fused SIMD AND+popcount pass into scratch
  // words, emitted natively.
  if (a.kind == BitmapChunk::Kind::kBitmap &&
      b.kind == BitmapChunk::Kind::kBitmap) {
    s->words.resize(1024);
    const uint32_t count = extent_internal::AndWordsPopcount(
        a.words.data(), b.words.data(), s->words.data(), 1024);
    return EmitFromWords(a.high, count, s, out);
  }
  // Runs against a bitmap: mask only the run-covered words, emit natively.
  if (a.kind == BitmapChunk::Kind::kBitmap &&
      b.kind == BitmapChunk::Kind::kRuns) {
    return IntersectChunk(b, a, s, out);
  }
  if (a.kind == BitmapChunk::Kind::kRuns &&
      b.kind == BitmapChunk::Kind::kBitmap) {
    s->words.assign(1024, 0);
    for (size_t r = 0; r < a.lows.size(); r += 2) {
      AccumulateRunWords(b.words, a.lows[r],
                         static_cast<uint32_t>(a.lows[r]) + a.lows[r + 1],
                         &s->words);
    }
    return EmitFromWords(
        a.high, extent_internal::PopcountWords(s->words.data(), 1024), s, out);
  }
  // Run × run: overlap the sorted run lists, emitting result runs as run
  // pairs — never expanded when the run encoding stays the cheapest.
  if (a.kind == BitmapChunk::Kind::kRuns && b.kind == BitmapChunk::Kind::kRuns) {
    s->lows.clear();
    uint32_t count = 0;
    size_t i = 0, j = 0;
    while (i < a.lows.size() && j < b.lows.size()) {
      const uint32_t as = a.lows[i], ae = as + a.lows[i + 1];
      const uint32_t bs = b.lows[j], be = bs + b.lows[j + 1];
      // Run bounds stay within the chunk (≤ 65535), so no overflow here.
      const uint32_t start = std::max(as, bs), end = std::min(ae, be);
      if (start <= end) {
        s->lows.push_back(static_cast<uint16_t>(start));
        s->lows.push_back(static_cast<uint16_t>(end - start));
        count += end - start + 1;
      }
      if (ae <= be) {
        i += 2;
      } else {
        j += 2;
      }
    }
    if (count == 0) return false;
    // Overlapping two non-adjacent sorted run lists yields non-adjacent
    // sorted runs, so the pairs are already a well-formed kRuns payload.
    // Keep them unless an array would be smaller (MakeChunk's rule).
    if (s->lows.size() <= count) {
      out->high = a.high;
      out->kind = BitmapChunk::Kind::kRuns;
      out->count = count;
      out->words.clear();
      out->lows = s->lows;
      return true;
    }
    std::vector<uint16_t> expanded;
    expanded.reserve(count);
    for (size_t r = 0; r < s->lows.size(); r += 2) {
      const uint32_t start = s->lows[r];
      for (uint32_t v = 0; v <= s->lows[r + 1]; ++v) {
        expanded.push_back(static_cast<uint16_t>(start + v));
      }
    }
    *out = extent_internal::MakeChunk(a.high, expanded.data(), count);
    return true;
  }
  // Array × array: linear merge, unless one side is small enough that
  // probing it into the other wins (the galloping-ratio rule).
  if (a.kind == BitmapChunk::Kind::kArray &&
      b.kind == BitmapChunk::Kind::kArray) {
    const BitmapChunk& small = a.count <= b.count ? a : b;
    const BitmapChunk& large = a.count <= b.count ? b : a;
    s->lows.clear();
    if (small.count * kGallopRatio < large.count) {
      for (uint16_t low : small.lows) {
        if (large.Contains(low)) s->lows.push_back(low);
      }
    } else {
      // +8 slack for IntersectU16's full-vector stores; truncated below.
      s->lows.resize(static_cast<size_t>(small.count) + 8);
      const uint32_t n = extent_internal::IntersectU16(
          a.lows.data(), a.count, b.lows.data(), b.count, s->lows.data());
      s->lows.resize(n);
    }
    if (s->lows.empty()) return false;
    *out = extent_internal::MakeChunk(a.high, s->lows.data(),
                                      static_cast<uint32_t>(s->lows.size()));
    return true;
  }
  // An array against a bitmap or runs: probe each array member against the
  // other container (bit test or run bracket) — the compressed analogue of
  // the vector kernels' galloping sweep.
  const BitmapChunk& arr = a.kind == BitmapChunk::Kind::kArray ? a : b;
  const BitmapChunk& other = a.kind == BitmapChunk::Kind::kArray ? b : a;
  s->lows.clear();
  for (uint16_t low : arr.lows) {
    if (other.Contains(low)) s->lows.push_back(low);
  }
  if (s->lows.empty()) return false;
  *out = extent_internal::MakeChunk(a.high, s->lows.data(),
                                    static_cast<uint32_t>(s->lows.size()));
  return true;
}

/// a \ b within one 64k chunk; returns false when the result is empty.
bool DifferenceChunk(const BitmapChunk& a, const BitmapChunk& b,
                     ChunkScratch* s, BitmapChunk* out) {
  if (a.kind == BitmapChunk::Kind::kBitmap) {
    // Copy a's words, clear b's members, emit natively.
    if (b.kind == BitmapChunk::Kind::kBitmap) {
      s->words.resize(1024);
      return EmitFromWords(a.high,
                           extent_internal::AndNotWordsPopcount(
                               a.words.data(), b.words.data(), s->words.data(),
                               1024),
                           s, out);
    } else {
      s->words.assign(a.words.begin(), a.words.end());
      if (b.kind == BitmapChunk::Kind::kArray) {
        for (uint16_t low : b.lows) {
          s->words[low >> 6] &= ~(uint64_t{1} << (low & 63));
        }
      } else {
        for (size_t r = 0; r < b.lows.size(); r += 2) {
          const uint32_t start = b.lows[r];
          const uint32_t end = start + b.lows[r + 1];
          const size_t w_first = start >> 6;
          const size_t w_last = end >> 6;
          for (size_t w = w_first; w <= w_last; ++w) {
            uint64_t mask = ~uint64_t{0};
            if (w == w_first) mask &= ~uint64_t{0} << (start & 63);
            if (w == w_last && (end & 63) != 63) {
              mask &= (uint64_t{1} << ((end & 63) + 1)) - 1;
            }
            s->words[w] &= ~mask;
          }
        }
      }
    }
    return EmitFromWords(
        a.high, extent_internal::PopcountWords(s->words.data(), 1024), s, out);
  }
  // Array \ array: linear merge beats per-element probing.
  if (a.kind == BitmapChunk::Kind::kArray &&
      b.kind == BitmapChunk::Kind::kArray) {
    s->lows.clear();
    std::set_difference(a.lows.begin(), a.lows.end(), b.lows.begin(),
                        b.lows.end(), std::back_inserter(s->lows));
    if (s->lows.empty()) return false;
    *out = extent_internal::MakeChunk(a.high, s->lows.data(),
                                      static_cast<uint32_t>(s->lows.size()));
    return true;
  }
  // a is array or runs: expand and probe b per element.
  std::vector<uint16_t> lows;
  ChunkLows(a, &lows);
  s->lows.clear();
  for (uint16_t low : lows) {
    if (!b.Contains(low)) s->lows.push_back(low);
  }
  if (s->lows.empty()) return false;
  *out = extent_internal::MakeChunk(a.high, s->lows.data(),
                                    static_cast<uint32_t>(s->lows.size()));
  return true;
}

/// Chunk-aligned merge over two hybrid payloads; `op` combines chunk pairs
/// with equal highs, `keep_unmatched_a` passes a-only chunks through
/// (difference semantics).
template <typename ChunkOp>
Extent CombineHybrid(const ExtentPayload& a, const ExtentPayload& b,
                     bool keep_unmatched_a, ChunkOp op) {
  std::vector<BitmapChunk> out;
  ChunkScratch scratch;
  BitmapChunk result;
  size_t i = 0, j = 0;
  while (i < a.chunks.size()) {
    const BitmapChunk& ca = a.chunks[i];
    while (j < b.chunks.size() && b.chunks[j].high < ca.high) ++j;
    if (j == b.chunks.size() || b.chunks[j].high != ca.high) {
      if (keep_unmatched_a) out.push_back(ca);
      ++i;
      continue;
    }
    if (op(ca, b.chunks[j], &scratch, &result)) {
      out.push_back(std::move(result));
    }
    ++i;
    ++j;
  }
  return Extent::FromPayload(extent_internal::MakeHybridPayload(std::move(out)));
}

/// Walks sorted vector `a`, keeping members by `b.Contains` probe (want =
/// true → intersection, false → difference). Used when b is hybrid: the
/// per-element probe (chunk binary search + container test) is the
/// compressed analogue of galloping through a big vector.
std::vector<NodeId> ProbeFilter(const std::vector<NodeId>& a, const Extent& b,
                                bool want) {
  std::vector<NodeId> out;
  for (const NodeId x : a) {
    if (b.Contains(x) == want) out.push_back(x);
  }
  return out;
}

/// True when the kernels should decode this hybrid extent and use the
/// vector kernels: a hybrid far smaller than the other side is cheaper to
/// decode once than to probe element-by-element from the big side. (Delta
/// extents no longer decode — the native stream kernels below walk the
/// packed form directly.)
bool PreferDecode(const Extent& e, size_t other_size) {
  return e.size() * kGallopRatio < other_size;
}

/// Streaming cursor over a kDeltaPacked payload: decodes one kDeltaBlock
/// window at a time (SIMD field unpack + prefix sum) into a stack buffer
/// and skips whole blocks via the block_last maxima index without touching
/// their packed bits. delta_bits == 0 (a contiguous run) is modeled
/// arithmetically so the native kernels have a single delta path.
class DeltaCursor {
 public:
  /// The payload must be non-empty (callers dispatch empties away first).
  explicit DeltaCursor(const ExtentPayload& p) : p_(&p) { LoadBlock(0); }

  bool exhausted() const { return exhausted_; }
  NodeId value() const { return buf_[pos_]; }

  // The rest of the current decode window. The blockwise kernels merge
  // [begin(), end()) directly in tight array loops — per-element cursor
  // calls only pay off when whole blocks can be skipped.
  const NodeId* begin() const { return buf_ + pos_; }
  const NodeId* end() const { return buf_ + count_; }
  NodeId window_back() const { return buf_[count_ - 1]; }

  /// Repositions at `p`, a pointer into [begin(), end()]; a drained window
  /// loads the next block (or exhausts the cursor).
  void Rebase(const NodeId* p) {
    pos_ = static_cast<uint32_t>(p - buf_);
    if (pos_ < count_) return;
    const size_t next = block_ + 1;
    if (next * extent_internal::kDeltaBlock >= p_->size) {
      exhausted_ = true;
    } else {
      LoadBlock(next);
    }
  }

  void Next() {
    if (++pos_ < count_) return;
    const size_t next = block_ + 1;
    if (next * extent_internal::kDeltaBlock >= p_->size) {
      exhausted_ = true;
    } else {
      LoadBlock(next);
    }
  }

  /// Advances to the first member >= key (no-op when already there).
  /// Returns false — and exhausts the cursor — when every remaining member
  /// is < key. Blocks whose maximum is below key are skipped undecoded.
  bool SkipTo(NodeId key) {
    if (exhausted_) return false;
    if (BlockLast(block_) < key) {
      size_t lo = block_ + 1;
      size_t hi = NumBlocks();
      while (lo < hi) {
        const size_t mid = (lo + hi) / 2;
        if (BlockLast(mid) < key) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      if (lo == NumBlocks()) {
        exhausted_ = true;
        return false;
      }
      LoadBlock(lo);
    }
    pos_ = static_cast<uint32_t>(
        std::lower_bound(buf_ + pos_, buf_ + count_, key) - buf_);
    // The current block's maximum is >= key, so pos_ < count_ here.
    return true;
  }

  /// Appends everything from the cursor position on (difference tails).
  void AppendRest(std::vector<NodeId>* out) {
    while (!exhausted_) {
      out->insert(out->end(), buf_ + pos_, buf_ + count_);
      const size_t next = block_ + 1;
      if (next * extent_internal::kDeltaBlock >= p_->size) {
        exhausted_ = true;
      } else {
        LoadBlock(next);
      }
    }
  }

 private:
  size_t NumBlocks() const {
    return (p_->size + extent_internal::kDeltaBlock - 1) /
           extent_internal::kDeltaBlock;
  }

  NodeId BlockLast(size_t b) const {
    if (p_->delta_bits == 0) {
      const size_t end =
          std::min<size_t>(p_->size, (b + 1) * extent_internal::kDeltaBlock);
      return p_->base + static_cast<NodeId>(end) - 1;
    }
    return p_->block_last[b];
  }

  void LoadBlock(size_t b) {
    block_ = b;
    pos_ = 0;
    if (p_->delta_bits == 0) {
      const size_t begin = b * extent_internal::kDeltaBlock;
      count_ = static_cast<uint32_t>(
          std::min<size_t>(extent_internal::kDeltaBlock, p_->size - begin));
      const NodeId first = p_->base + static_cast<NodeId>(begin);
      for (uint32_t i = 0; i < count_; ++i) buf_[i] = first + i;
    } else {
      count_ = extent_internal::DecodeDeltaBlock(*p_, b, buf_);
    }
  }

  const ExtentPayload* p_;
  size_t block_ = 0;
  uint32_t pos_ = 0;
  uint32_t count_ = 0;
  bool exhausted_ = false;
  NodeId buf_[extent_internal::kDeltaBlock];
};

/// a ∩ b, both kDeltaPacked: dual-cursor walk. Decode windows that cannot
/// overlap are hopped over whole (block-skip via the per-block maxima);
/// overlapping windows are merged in a tight in-buffer loop — the
/// per-element cursor arithmetic only runs at window boundaries.
std::vector<NodeId> IntersectDeltaDelta(const ExtentPayload& a,
                                        const ExtentPayload& b) {
  std::vector<NodeId> out;
  out.reserve(std::min(a.size, b.size));
  DeltaCursor ca(a);
  DeltaCursor cb(b);
  while (!ca.exhausted() && !cb.exhausted()) {
    if (ca.window_back() < cb.value()) {
      if (!ca.SkipTo(cb.value())) break;
      continue;
    }
    if (cb.window_back() < ca.value()) {
      if (!cb.SkipTo(ca.value())) break;
      continue;
    }
    const NodeId* pa = ca.begin();
    const NodeId* const ea = ca.end();
    const NodeId* pb = cb.begin();
    const NodeId* const eb = cb.end();
    while (pa != ea && pb != eb) {
      const NodeId x = *pa;
      const NodeId y = *pb;
      if (x < y) {
        ++pa;
      } else if (y < x) {
        ++pb;
      } else {
        out.push_back(x);
        ++pa;
        ++pb;
      }
    }
    ca.Rebase(pa);
    cb.Rebase(pb);
  }
  return out;
}

/// a ∩ b, a kDeltaPacked, b a plain sorted vector: the cursor skips blocks
/// toward b's current member, b gallops toward the cursor's.
std::vector<NodeId> IntersectDeltaVec(const ExtentPayload& a,
                                      const std::vector<NodeId>& b) {
  std::vector<NodeId> out;
  if (b.empty()) return out;
  out.reserve(std::min<size_t>(a.size, b.size()));
  DeltaCursor ca(a);
  size_t j = 0;
  while (!ca.exhausted() && j < b.size()) {
    if (ca.window_back() < b[j]) {
      if (!ca.SkipTo(b[j])) break;
      continue;
    }
    if (b[j] < ca.value()) {
      j = extent_internal::GallopLowerBound(b, j, ca.value());
      continue;
    }
    const NodeId* pa = ca.begin();
    const NodeId* const ea = ca.end();
    while (pa != ea && j < b.size()) {
      const NodeId x = *pa;
      const NodeId y = b[j];
      if (x < y) {
        ++pa;
      } else if (y < x) {
        ++j;
      } else {
        out.push_back(x);
        ++pa;
        ++j;
      }
    }
    ca.Rebase(pa);
  }
  return out;
}

/// a ∩ b, a kDeltaPacked, b kHybridBitmap: walk a's decode windows probing
/// b's chunk containers; delta blocks falling inside b's chunk gaps are
/// skipped undecoded.
std::vector<NodeId> IntersectDeltaHybrid(const ExtentPayload& a,
                                         const ExtentPayload& b) {
  std::vector<NodeId> out;
  DeltaCursor ca(a);
  size_t ci = 0;
  while (!ca.exhausted() && ci < b.chunks.size()) {
    const NodeId x = ca.value();
    const uint16_t high = static_cast<uint16_t>(x >> 16);
    while (ci < b.chunks.size() && b.chunks[ci].high < high) ++ci;
    if (ci == b.chunks.size()) break;
    const BitmapChunk& c = b.chunks[ci];
    if (c.high > high) {
      if (!ca.SkipTo(static_cast<NodeId>(c.high) << 16)) break;
      continue;
    }
    if (c.Contains(static_cast<uint16_t>(x & 0xffff))) out.push_back(x);
    ca.Next();
  }
  return out;
}

/// a \ b, both kDeltaPacked: a decodes fully (the output is a subset of
/// it); b only decodes blocks a actually reaches into.
std::vector<NodeId> DifferenceDeltaDelta(const ExtentPayload& a,
                                         const ExtentPayload& b) {
  std::vector<NodeId> out;
  out.reserve(a.size);
  DeltaCursor ca(a);
  DeltaCursor cb(b);
  while (!ca.exhausted()) {
    if (cb.exhausted()) {
      ca.AppendRest(&out);
      break;
    }
    // b's window wholly below a's position: hop b forward, undecoded.
    if (cb.window_back() < ca.value()) {
      cb.SkipTo(ca.value());
      continue;
    }
    // a's window wholly below b's position: every member survives.
    if (ca.window_back() < cb.value()) {
      out.insert(out.end(), ca.begin(), ca.end());
      ca.Rebase(ca.end());
      continue;
    }
    const NodeId* pa = ca.begin();
    const NodeId* const ea = ca.end();
    const NodeId* pb = cb.begin();
    const NodeId* const eb = cb.end();
    while (pa != ea && pb != eb) {
      const NodeId x = *pa;
      const NodeId y = *pb;
      if (x < y) {
        out.push_back(x);
        ++pa;
      } else if (y < x) {
        ++pb;
      } else {
        ++pa;
        ++pb;
      }
    }
    ca.Rebase(pa);
    cb.Rebase(pb);
  }
  return out;
}

/// a \ b, a kDeltaPacked, b a plain sorted vector.
std::vector<NodeId> DifferenceDeltaVec(const ExtentPayload& a,
                                       const std::vector<NodeId>& b) {
  std::vector<NodeId> out;
  out.reserve(a.size);
  DeltaCursor ca(a);
  size_t j = 0;
  while (!ca.exhausted()) {
    if (j == b.size()) {
      ca.AppendRest(&out);
      break;
    }
    if (ca.window_back() < b[j]) {
      out.insert(out.end(), ca.begin(), ca.end());
      ca.Rebase(ca.end());
      continue;
    }
    if (b[j] < ca.value()) {
      j = extent_internal::GallopLowerBound(b, j, ca.value());
      continue;
    }
    const NodeId* pa = ca.begin();
    const NodeId* const ea = ca.end();
    while (pa != ea && j < b.size()) {
      const NodeId x = *pa;
      const NodeId y = b[j];
      if (x < y) {
        out.push_back(x);
        ++pa;
      } else if (y < x) {
        ++j;
      } else {
        ++pa;
        ++j;
      }
    }
    ca.Rebase(pa);
  }
  return out;
}

/// a \ b, a a plain sorted vector, b kDeltaPacked: b's windows are merged
/// against a's remaining range; windows of b wholly below a's position are
/// skipped undecoded.
std::vector<NodeId> DifferenceVecDelta(const std::vector<NodeId>& a,
                                       const ExtentPayload& b) {
  std::vector<NodeId> out;
  out.reserve(a.size());
  DeltaCursor cb(b);
  size_t i = 0;
  while (i < a.size()) {
    if (cb.exhausted()) {
      out.insert(out.end(), a.begin() + static_cast<ptrdiff_t>(i), a.end());
      break;
    }
    if (cb.window_back() < a[i]) {
      cb.SkipTo(a[i]);
      continue;
    }
    const NodeId* pb = cb.begin();
    const NodeId* const eb = cb.end();
    while (i < a.size() && pb != eb) {
      const NodeId x = a[i];
      const NodeId y = *pb;
      if (x < y) {
        out.push_back(x);
        ++i;
      } else if (y < x) {
        ++pb;
      } else {
        ++i;
        ++pb;
      }
    }
    cb.Rebase(pb);
  }
  return out;
}

/// a \ b, a kDeltaPacked, b kHybridBitmap: full walk of a probing b.
std::vector<NodeId> DifferenceDeltaHybrid(const ExtentPayload& a,
                                          const ExtentPayload& b) {
  std::vector<NodeId> out;
  DeltaCursor ca(a);
  size_t ci = 0;
  while (!ca.exhausted()) {
    const NodeId x = ca.value();
    const uint16_t high = static_cast<uint16_t>(x >> 16);
    while (ci < b.chunks.size() && b.chunks[ci].high < high) ++ci;
    if (ci == b.chunks.size() || b.chunks[ci].high != high ||
        !b.chunks[ci].Contains(static_cast<uint16_t>(x & 0xffff))) {
      out.push_back(x);
    }
    ca.Next();
  }
  return out;
}

}  // namespace

Extent Intersect(const Extent& a, const Extent& b) {
  obs::CountIntersect(a.size() + b.size());
  if (a.empty() || b.empty()) return Extent();
  // Shared-payload identity: payloads are immutable, so the same payload on
  // both sides means a == b and the intersection is a refcount bump. The
  // cost hooks above still charge the full logical |a| + |b|.
  if (a.payload() == b.payload()) return a;
  const std::vector<NodeId>* av = a.AsSortedVector();
  const std::vector<NodeId>* bv = b.AsSortedVector();
  if (av != nullptr && bv != nullptr) {
    return Extent::FromSorted(extent_internal::IntersectVec(*av, *bv));
  }
  if (a.rep() == ExtentRep::kHybridBitmap &&
      b.rep() == ExtentRep::kHybridBitmap) {
    return CombineHybrid(*a.payload(), *b.payload(), /*keep_unmatched_a=*/false,
                         IntersectChunk);
  }
  // Native delta-stream kernels: walk the packed stream in kDeltaBlock
  // windows, block-skipping via the per-block maxima — neither operand is
  // ever materialized.
  if (a.rep() == ExtentRep::kDeltaPacked && b.rep() == ExtentRep::kDeltaPacked) {
    return Extent::FromSorted(IntersectDeltaDelta(*a.payload(), *b.payload()));
  }
  if (a.rep() == ExtentRep::kDeltaPacked || b.rep() == ExtentRep::kDeltaPacked) {
    const Extent& d = a.rep() == ExtentRep::kDeltaPacked ? a : b;
    const Extent& o = a.rep() == ExtentRep::kDeltaPacked ? b : a;
    if (const std::vector<NodeId>* ov = o.AsSortedVector()) {
      return Extent::FromSorted(IntersectDeltaVec(*d.payload(), *ov));
    }
    return Extent::FromSorted(IntersectDeltaHybrid(*d.payload(), *o.payload()));
  }
  // The only remaining pair: vector × hybrid. Probe the hybrid per vector
  // member unless the hybrid is small enough that decoding it once wins.
  const std::vector<NodeId>* v = av != nullptr ? av : bv;
  const Extent& h = av != nullptr ? b : a;
  return Extent::FromSorted(
      PreferDecode(h, v->size())
          ? extent_internal::IntersectVec(*v, h.Materialize())
          : ProbeFilter(*v, h, /*want=*/true));
}

Extent Difference(const Extent& a, const Extent& b) {
  obs::CountDifference(a.size() + b.size());
  if (a.empty()) return Extent();
  if (b.empty()) return a;
  // Shared-payload identity: a \ a is empty (see Intersect).
  if (a.payload() == b.payload()) return Extent();
  const std::vector<NodeId>* av = a.AsSortedVector();
  const std::vector<NodeId>* bv = b.AsSortedVector();
  if (av != nullptr && bv != nullptr) {
    return Extent::FromSorted(extent_internal::DifferenceVec(*av, *bv));
  }
  if (a.rep() == ExtentRep::kHybridBitmap &&
      b.rep() == ExtentRep::kHybridBitmap) {
    return CombineHybrid(*a.payload(), *b.payload(), /*keep_unmatched_a=*/true,
                         DifferenceChunk);
  }
  // Native delta-stream paths: the delta side is walked blockwise, never
  // materialized.
  if (a.rep() == ExtentRep::kDeltaPacked) {
    if (b.rep() == ExtentRep::kDeltaPacked) {
      return Extent::FromSorted(DifferenceDeltaDelta(*a.payload(), *b.payload()));
    }
    if (bv != nullptr) {
      return Extent::FromSorted(DifferenceDeltaVec(*a.payload(), *bv));
    }
    return Extent::FromSorted(DifferenceDeltaHybrid(*a.payload(), *b.payload()));
  }
  if (b.rep() == ExtentRep::kDeltaPacked) {
    // a is vector or hybrid; its members must come out either way.
    return Extent::FromSorted(DifferenceVecDelta(
        av != nullptr ? *av : a.Materialize(), *b.payload()));
  }
  // Remaining pairs: vector \ hybrid probes the hybrid per member; hybrid
  // \ vector decodes a (the output is a subset of it) and merges.
  if (av != nullptr) {
    return Extent::FromSorted(ProbeFilter(*av, b, /*want=*/false));
  }
  return Extent::FromSorted(
      extent_internal::DifferenceVec(a.Materialize(), *bv));
}

std::vector<NodeId> Intersect(const Extent& a, const std::vector<NodeId>& b) {
  obs::CountIntersect(a.size() + b.size());
  if (a.empty() || b.empty()) return {};
  if (const std::vector<NodeId>* av = a.AsSortedVector()) {
    return extent_internal::IntersectVec(*av, b);
  }
  if (a.rep() == ExtentRep::kDeltaPacked) {
    return IntersectDeltaVec(*a.payload(), b);
  }
  if (!PreferDecode(a, b.size())) {
    return ProbeFilter(b, a, /*want=*/true);
  }
  return extent_internal::IntersectVec(a.Materialize(), b);
}

std::vector<NodeId> Intersect(const std::vector<NodeId>& a, const Extent& b) {
  obs::CountIntersect(a.size() + b.size());
  if (a.empty() || b.empty()) return {};
  if (const std::vector<NodeId>* bv = b.AsSortedVector()) {
    return extent_internal::IntersectVec(a, *bv);
  }
  if (b.rep() == ExtentRep::kDeltaPacked) {
    return IntersectDeltaVec(*b.payload(), a);
  }
  if (!PreferDecode(b, a.size())) {
    return ProbeFilter(a, b, /*want=*/true);
  }
  return extent_internal::IntersectVec(a, b.Materialize());
}

std::vector<NodeId> Difference(const Extent& a, const std::vector<NodeId>& b) {
  obs::CountDifference(a.size() + b.size());
  if (a.empty()) return {};
  if (const std::vector<NodeId>* av = a.AsSortedVector()) {
    return extent_internal::DifferenceVec(*av, b);
  }
  if (a.rep() == ExtentRep::kDeltaPacked) {
    return DifferenceDeltaVec(*a.payload(), b);
  }
  return extent_internal::DifferenceVec(a.Materialize(), b);
}

std::vector<NodeId> Difference(const std::vector<NodeId>& a, const Extent& b) {
  obs::CountDifference(a.size() + b.size());
  if (a.empty()) return {};
  if (b.empty()) return a;
  if (const std::vector<NodeId>* bv = b.AsSortedVector()) {
    return extent_internal::DifferenceVec(a, *bv);
  }
  if (b.rep() == ExtentRep::kDeltaPacked) {
    return DifferenceVecDelta(a, *b.payload());
  }
  return ProbeFilter(a, b, /*want=*/false);
}

bool Overlaps(const Extent& a, const Extent& b) {
  // Charged like the materializing Intersect this replaces: the §5 cost
  // metric is representation- and early-exit-independent by design.
  obs::CountIntersect(a.size() + b.size());
  if (a.empty() || b.empty()) return false;
  if (a.payload() == b.payload()) return true;
  if (a.back() < b.front() || b.back() < a.front()) return false;
  const Extent& small = a.size() <= b.size() ? a : b;
  const Extent& large = a.size() <= b.size() ? b : a;
  const std::vector<NodeId>* sv = small.AsSortedVector();
  const std::vector<NodeId>* lv = large.AsSortedVector();
  if (sv != nullptr && lv != nullptr) {
    return extent_internal::OverlapsVec(*sv, *lv);
  }
  if (small.rep() == ExtentRep::kDeltaPacked &&
      large.rep() == ExtentRep::kDeltaPacked) {
    // Dual-cursor walk with block skipping, stopping at the first match;
    // overlapping windows are merged in-buffer like IntersectDeltaDelta.
    DeltaCursor cs(*small.payload());
    DeltaCursor cl(*large.payload());
    while (!cs.exhausted() && !cl.exhausted()) {
      if (cs.window_back() < cl.value()) {
        if (!cs.SkipTo(cl.value())) return false;
        continue;
      }
      if (cl.window_back() < cs.value()) {
        if (!cl.SkipTo(cs.value())) return false;
        continue;
      }
      const NodeId* ps = cs.begin();
      const NodeId* const es = cs.end();
      const NodeId* pl = cl.begin();
      const NodeId* const el = cl.end();
      while (ps != es && pl != el) {
        if (*ps < *pl) {
          ++ps;
        } else if (*pl < *ps) {
          ++pl;
        } else {
          return true;
        }
      }
      cs.Rebase(ps);
      cl.Rebase(pl);
    }
    return false;
  }
  // Generic path: walk the smaller side (blockwise for delta, chunkwise
  // for hybrid via the iterator), probing the larger — every probe is
  // sublinear in every representation since the blocked delta index.
  for (const NodeId x : small) {
    if (large.Contains(x)) return true;
  }
  return false;
}

bool Overlaps(const std::vector<NodeId>& a, const Extent& b) {
  obs::CountIntersect(a.size() + b.size());
  if (a.empty() || b.empty()) return false;
  if (const std::vector<NodeId>* bv = b.AsSortedVector()) {
    return extent_internal::OverlapsVec(a, *bv);
  }
  if (a.back() < b.front() || b.back() < a.front()) return false;
  if (b.rep() == ExtentRep::kDeltaPacked) {
    // Cursor vs gallop, first hit wins; non-overlapping delta blocks are
    // skipped undecoded.
    DeltaCursor cb(*b.payload());
    size_t j = 0;
    while (!cb.exhausted() && j < a.size()) {
      const NodeId x = cb.value();
      const NodeId y = a[j];
      if (x == y) return true;
      if (x < y) {
        if (!cb.SkipTo(y)) return false;
      } else {
        j = extent_internal::GallopLowerBound(a, j, x);
      }
    }
    return false;
  }
  // b hybrid: probe it from the smaller logical side.
  if (a.size() <= b.size()) {
    for (const NodeId x : a) {
      if (b.Contains(x)) return true;
    }
    return false;
  }
  for (const NodeId x : b) {
    if (std::binary_search(a.begin(), a.end(), x)) return true;
  }
  return false;
}

Extent IntersectMany(std::vector<const Extent*> operands) {
  std::erase_if(operands, [](const Extent* e) { return e == nullptr; });
  if (operands.empty()) return Extent();
  // Ascending estimated cost — size is the estimate — seeding the fold
  // from the smallest operand: the running result stays bounded by it, so
  // each step runs a small probe side against the next-cheapest operand.
  std::sort(operands.begin(), operands.end(),
            [](const Extent* x, const Extent* y) { return x->size() < y->size(); });
  Extent result = *operands.front();
  for (size_t i = 1; i < operands.size() && !result.empty(); ++i) {
    result = Intersect(result, *operands[i]);
  }
  return result;
}

}  // namespace mrx
