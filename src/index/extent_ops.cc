#include "index/extent_ops.h"

#include <algorithm>
#include <bit>

#include "index/extent.h"

namespace mrx {
namespace {

using extent_internal::BitmapChunk;
using extent_internal::ExtentPayload;

/// Decodes set bits of `word` (word index `w`) into `out` as low halfwords.
inline void ExtractWordBits(uint64_t word, size_t w, std::vector<uint16_t>* out) {
  while (word != 0) {
    const int b = std::countr_zero(word);
    out->push_back(static_cast<uint16_t>(w * 64 + static_cast<size_t>(b)));
    word &= word - 1;
  }
}

/// Expands a chunk's members into `out` as low halfwords.
void ChunkLows(const BitmapChunk& c, std::vector<uint16_t>* out) {
  out->clear();
  out->reserve(c.count);
  switch (c.kind) {
    case BitmapChunk::Kind::kArray:
      out->assign(c.lows.begin(), c.lows.end());
      return;
    case BitmapChunk::Kind::kRuns:
      for (size_t r = 0; r < c.lows.size(); r += 2) {
        const uint32_t start = c.lows[r];
        const uint32_t len = static_cast<uint32_t>(c.lows[r + 1]) + 1;
        for (uint32_t j = 0; j < len; ++j) {
          out->push_back(static_cast<uint16_t>(start + j));
        }
      }
      return;
    case BitmapChunk::Kind::kBitmap:
      for (size_t w = 0; w < c.words.size(); ++w) {
        ExtractWordBits(c.words[w], w, out);
      }
      return;
  }
}

/// Appends the bits of `words` that fall inside the run [start, end]
/// (inclusive) — the gallop-into-runs fast path: only the overlapped words
/// are touched, masked at the run boundaries.
void ExtractRunBits(const std::vector<uint64_t>& words, uint32_t start,
                    uint32_t end, std::vector<uint16_t>* out) {
  const size_t w_first = start >> 6;
  const size_t w_last = end >> 6;
  for (size_t w = w_first; w <= w_last; ++w) {
    uint64_t word = words[w];
    if (w == w_first) word &= ~uint64_t{0} << (start & 63);
    if (w == w_last && (end & 63) != 63) {
      word &= (uint64_t{1} << ((end & 63) + 1)) - 1;
    }
    ExtractWordBits(word, w, out);
  }
}

/// Reusable working buffers for the per-chunk kernels — one allocation per
/// CombineHybrid call instead of one per chunk.
struct ChunkScratch {
  std::vector<uint16_t> lows;
  std::vector<uint64_t> words;
};

/// Count above which a 1024-word bitmap is at most as large as a u16 array
/// (8 KiB / 2 B). Mirrors MakeChunk's kind rule; the native word-result
/// emitters keep such chunks as bitmaps without ever extracting bits.
constexpr uint32_t kBitmapCutoff = 4096;

/// Emits the result chunk for the AND/ANDNOT words sitting in `s->words`.
/// Dense results stay bitmaps (one 8 KiB copy, no per-bit extraction);
/// sparse ones fall back to MakeChunk's exact kind rule. Returns false for
/// an empty result.
bool EmitFromWords(uint16_t high, ChunkScratch* s, BitmapChunk* out) {
  uint32_t count = 0;
  for (const uint64_t w : s->words) {
    count += static_cast<uint32_t>(std::popcount(w));
  }
  if (count == 0) return false;
  if (count > kBitmapCutoff) {
    out->high = high;
    out->kind = BitmapChunk::Kind::kBitmap;
    out->count = count;
    out->lows.clear();
    out->words.assign(s->words.begin(), s->words.end());
    return true;
  }
  s->lows.clear();
  for (size_t w = 0; w < s->words.size(); ++w) {
    ExtractWordBits(s->words[w], w, &s->lows);
  }
  *out = extent_internal::MakeChunk(high, s->lows.data(), count);
  return true;
}

/// Masks `words` down to the bits inside the run [start, end] (inclusive),
/// OR-ing the surviving bits into `s->words` (runs are non-adjacent, so
/// their masks never collide).
void AccumulateRunWords(const std::vector<uint64_t>& words, uint32_t start,
                        uint32_t end, std::vector<uint64_t>* acc) {
  const size_t w_first = start >> 6;
  const size_t w_last = end >> 6;
  for (size_t w = w_first; w <= w_last; ++w) {
    uint64_t mask = ~uint64_t{0};
    if (w == w_first) mask &= ~uint64_t{0} << (start & 63);
    if (w == w_last && (end & 63) != 63) {
      mask &= (uint64_t{1} << ((end & 63) + 1)) - 1;
    }
    (*acc)[w] |= words[w] & mask;
  }
}

/// a ∩ b within one 64k chunk; returns false when the result is empty.
bool IntersectChunk(const BitmapChunk& a, const BitmapChunk& b,
                    ChunkScratch* s, BitmapChunk* out) {
  // Word-parallel fast path: AND into scratch words, emit natively.
  if (a.kind == BitmapChunk::Kind::kBitmap &&
      b.kind == BitmapChunk::Kind::kBitmap) {
    s->words.resize(1024);
    for (size_t w = 0; w < 1024; ++w) {
      s->words[w] = a.words[w] & b.words[w];
    }
    return EmitFromWords(a.high, s, out);
  }
  // Runs against a bitmap: mask only the run-covered words, emit natively.
  if (a.kind == BitmapChunk::Kind::kBitmap &&
      b.kind == BitmapChunk::Kind::kRuns) {
    return IntersectChunk(b, a, s, out);
  }
  if (a.kind == BitmapChunk::Kind::kRuns &&
      b.kind == BitmapChunk::Kind::kBitmap) {
    s->words.assign(1024, 0);
    for (size_t r = 0; r < a.lows.size(); r += 2) {
      AccumulateRunWords(b.words, a.lows[r],
                         static_cast<uint32_t>(a.lows[r]) + a.lows[r + 1],
                         &s->words);
    }
    return EmitFromWords(a.high, s, out);
  }
  // Run × run: overlap the sorted run lists, emitting result runs as run
  // pairs — never expanded when the run encoding stays the cheapest.
  if (a.kind == BitmapChunk::Kind::kRuns && b.kind == BitmapChunk::Kind::kRuns) {
    s->lows.clear();
    uint32_t count = 0;
    size_t i = 0, j = 0;
    while (i < a.lows.size() && j < b.lows.size()) {
      const uint32_t as = a.lows[i], ae = as + a.lows[i + 1];
      const uint32_t bs = b.lows[j], be = bs + b.lows[j + 1];
      // Run bounds stay within the chunk (≤ 65535), so no overflow here.
      const uint32_t start = std::max(as, bs), end = std::min(ae, be);
      if (start <= end) {
        s->lows.push_back(static_cast<uint16_t>(start));
        s->lows.push_back(static_cast<uint16_t>(end - start));
        count += end - start + 1;
      }
      if (ae <= be) {
        i += 2;
      } else {
        j += 2;
      }
    }
    if (count == 0) return false;
    // Overlapping two non-adjacent sorted run lists yields non-adjacent
    // sorted runs, so the pairs are already a well-formed kRuns payload.
    // Keep them unless an array would be smaller (MakeChunk's rule).
    if (s->lows.size() <= count) {
      out->high = a.high;
      out->kind = BitmapChunk::Kind::kRuns;
      out->count = count;
      out->words.clear();
      out->lows = s->lows;
      return true;
    }
    std::vector<uint16_t> expanded;
    expanded.reserve(count);
    for (size_t r = 0; r < s->lows.size(); r += 2) {
      const uint32_t start = s->lows[r];
      for (uint32_t v = 0; v <= s->lows[r + 1]; ++v) {
        expanded.push_back(static_cast<uint16_t>(start + v));
      }
    }
    *out = extent_internal::MakeChunk(a.high, expanded.data(), count);
    return true;
  }
  // Array × array: linear merge, unless one side is small enough that
  // probing it into the other wins (the galloping-ratio rule).
  if (a.kind == BitmapChunk::Kind::kArray &&
      b.kind == BitmapChunk::Kind::kArray) {
    const BitmapChunk& small = a.count <= b.count ? a : b;
    const BitmapChunk& large = a.count <= b.count ? b : a;
    s->lows.clear();
    if (small.count * kGallopRatio < large.count) {
      for (uint16_t low : small.lows) {
        if (large.Contains(low)) s->lows.push_back(low);
      }
    } else {
      std::set_intersection(a.lows.begin(), a.lows.end(), b.lows.begin(),
                            b.lows.end(), std::back_inserter(s->lows));
    }
    if (s->lows.empty()) return false;
    *out = extent_internal::MakeChunk(a.high, s->lows.data(),
                                      static_cast<uint32_t>(s->lows.size()));
    return true;
  }
  // An array against a bitmap or runs: probe each array member against the
  // other container (bit test or run bracket) — the compressed analogue of
  // the vector kernels' galloping sweep.
  const BitmapChunk& arr = a.kind == BitmapChunk::Kind::kArray ? a : b;
  const BitmapChunk& other = a.kind == BitmapChunk::Kind::kArray ? b : a;
  s->lows.clear();
  for (uint16_t low : arr.lows) {
    if (other.Contains(low)) s->lows.push_back(low);
  }
  if (s->lows.empty()) return false;
  *out = extent_internal::MakeChunk(a.high, s->lows.data(),
                                    static_cast<uint32_t>(s->lows.size()));
  return true;
}

/// a \ b within one 64k chunk; returns false when the result is empty.
bool DifferenceChunk(const BitmapChunk& a, const BitmapChunk& b,
                     ChunkScratch* s, BitmapChunk* out) {
  if (a.kind == BitmapChunk::Kind::kBitmap) {
    // Copy a's words, clear b's members, emit natively.
    if (b.kind == BitmapChunk::Kind::kBitmap) {
      s->words.resize(1024);
      for (size_t w = 0; w < 1024; ++w) {
        s->words[w] = a.words[w] & ~b.words[w];
      }
    } else {
      s->words.assign(a.words.begin(), a.words.end());
      if (b.kind == BitmapChunk::Kind::kArray) {
        for (uint16_t low : b.lows) {
          s->words[low >> 6] &= ~(uint64_t{1} << (low & 63));
        }
      } else {
        for (size_t r = 0; r < b.lows.size(); r += 2) {
          const uint32_t start = b.lows[r];
          const uint32_t end = start + b.lows[r + 1];
          const size_t w_first = start >> 6;
          const size_t w_last = end >> 6;
          for (size_t w = w_first; w <= w_last; ++w) {
            uint64_t mask = ~uint64_t{0};
            if (w == w_first) mask &= ~uint64_t{0} << (start & 63);
            if (w == w_last && (end & 63) != 63) {
              mask &= (uint64_t{1} << ((end & 63) + 1)) - 1;
            }
            s->words[w] &= ~mask;
          }
        }
      }
    }
    return EmitFromWords(a.high, s, out);
  }
  // Array \ array: linear merge beats per-element probing.
  if (a.kind == BitmapChunk::Kind::kArray &&
      b.kind == BitmapChunk::Kind::kArray) {
    s->lows.clear();
    std::set_difference(a.lows.begin(), a.lows.end(), b.lows.begin(),
                        b.lows.end(), std::back_inserter(s->lows));
    if (s->lows.empty()) return false;
    *out = extent_internal::MakeChunk(a.high, s->lows.data(),
                                      static_cast<uint32_t>(s->lows.size()));
    return true;
  }
  // a is array or runs: expand and probe b per element.
  std::vector<uint16_t> lows;
  ChunkLows(a, &lows);
  s->lows.clear();
  for (uint16_t low : lows) {
    if (!b.Contains(low)) s->lows.push_back(low);
  }
  if (s->lows.empty()) return false;
  *out = extent_internal::MakeChunk(a.high, s->lows.data(),
                                    static_cast<uint32_t>(s->lows.size()));
  return true;
}

/// Chunk-aligned merge over two hybrid payloads; `op` combines chunk pairs
/// with equal highs, `keep_unmatched_a` passes a-only chunks through
/// (difference semantics).
template <typename ChunkOp>
Extent CombineHybrid(const ExtentPayload& a, const ExtentPayload& b,
                     bool keep_unmatched_a, ChunkOp op) {
  std::vector<BitmapChunk> out;
  ChunkScratch scratch;
  BitmapChunk result;
  size_t i = 0, j = 0;
  while (i < a.chunks.size()) {
    const BitmapChunk& ca = a.chunks[i];
    while (j < b.chunks.size() && b.chunks[j].high < ca.high) ++j;
    if (j == b.chunks.size() || b.chunks[j].high != ca.high) {
      if (keep_unmatched_a) out.push_back(ca);
      ++i;
      continue;
    }
    if (op(ca, b.chunks[j], &scratch, &result)) {
      out.push_back(std::move(result));
    }
    ++i;
    ++j;
  }
  return Extent::FromPayload(extent_internal::MakeHybridPayload(std::move(out)));
}

/// Walks sorted vector `a`, keeping members by `b.Contains` probe (want =
/// true → intersection, false → difference). Used when b is hybrid: the
/// per-element probe (chunk binary search + container test) is the
/// compressed analogue of galloping through a big vector.
std::vector<NodeId> ProbeFilter(const std::vector<NodeId>& a, const Extent& b,
                                bool want) {
  std::vector<NodeId> out;
  for (const NodeId x : a) {
    if (b.Contains(x) == want) out.push_back(x);
  }
  return out;
}

/// True when the kernels should decode this extent and use the vector
/// kernels: packed deltas have no sublinear probe, and a hybrid extent
/// far smaller than the other side is cheaper to decode than to probe
/// element-by-element from the big side.
bool PreferDecode(const Extent& e, size_t other_size) {
  if (e.rep() == ExtentRep::kDeltaPacked) return true;
  return e.size() * kGallopRatio < other_size;
}

}  // namespace

Extent Intersect(const Extent& a, const Extent& b) {
  obs::CountIntersect(a.size() + b.size());
  if (a.empty() || b.empty()) return Extent();
  // Shared-payload identity: payloads are immutable, so the same payload on
  // both sides means a == b and the intersection is a refcount bump. The
  // cost hooks above still charge the full logical |a| + |b|.
  if (a.payload() == b.payload()) return a;
  const std::vector<NodeId>* av = a.AsSortedVector();
  const std::vector<NodeId>* bv = b.AsSortedVector();
  if (av != nullptr && bv != nullptr) {
    return Extent::FromSorted(extent_internal::IntersectVec(*av, *bv));
  }
  if (a.rep() == ExtentRep::kHybridBitmap &&
      b.rep() == ExtentRep::kHybridBitmap) {
    return CombineHybrid(*a.payload(), *b.payload(), /*keep_unmatched_a=*/false,
                         IntersectChunk);
  }
  // Mixed pair: decode whichever sides lack a native probe and reuse the
  // vector/probe paths.
  if (av != nullptr) {
    return Extent::FromSorted(PreferDecode(b, av->size())
                                  ? extent_internal::IntersectVec(*av, b.Materialize())
                                  : ProbeFilter(*av, b, /*want=*/true));
  }
  if (bv != nullptr) {
    return Extent::FromSorted(PreferDecode(a, bv->size())
                                  ? extent_internal::IntersectVec(a.Materialize(), *bv)
                                  : ProbeFilter(*bv, a, /*want=*/true));
  }
  return Extent::FromSorted(
      extent_internal::IntersectVec(a.Materialize(), b.Materialize()));
}

Extent Difference(const Extent& a, const Extent& b) {
  obs::CountDifference(a.size() + b.size());
  if (a.empty()) return Extent();
  if (b.empty()) return a;
  // Shared-payload identity: a \ a is empty (see Intersect).
  if (a.payload() == b.payload()) return Extent();
  const std::vector<NodeId>* av = a.AsSortedVector();
  const std::vector<NodeId>* bv = b.AsSortedVector();
  if (av != nullptr && bv != nullptr) {
    return Extent::FromSorted(extent_internal::DifferenceVec(*av, *bv));
  }
  if (a.rep() == ExtentRep::kHybridBitmap &&
      b.rep() == ExtentRep::kHybridBitmap) {
    return CombineHybrid(*a.payload(), *b.payload(), /*keep_unmatched_a=*/true,
                         DifferenceChunk);
  }
  if (av != nullptr && b.rep() == ExtentRep::kHybridBitmap) {
    return Extent::FromSorted(ProbeFilter(*av, b, /*want=*/false));
  }
  // The output is a subset of a, which must be decoded anyway; b decodes
  // unless it supports probing from a's walk.
  const std::vector<NodeId> am = av != nullptr ? *av : a.Materialize();
  if (b.rep() == ExtentRep::kHybridBitmap) {
    return Extent::FromSorted(ProbeFilter(am, b, /*want=*/false));
  }
  return Extent::FromSorted(
      extent_internal::DifferenceVec(am, bv != nullptr ? *bv : b.Materialize()));
}

std::vector<NodeId> Intersect(const Extent& a, const std::vector<NodeId>& b) {
  obs::CountIntersect(a.size() + b.size());
  if (a.empty() || b.empty()) return {};
  if (const std::vector<NodeId>* av = a.AsSortedVector()) {
    return extent_internal::IntersectVec(*av, b);
  }
  if (a.rep() == ExtentRep::kHybridBitmap && !PreferDecode(a, b.size())) {
    return ProbeFilter(b, a, /*want=*/true);
  }
  return extent_internal::IntersectVec(a.Materialize(), b);
}

std::vector<NodeId> Intersect(const std::vector<NodeId>& a, const Extent& b) {
  obs::CountIntersect(a.size() + b.size());
  if (a.empty() || b.empty()) return {};
  if (const std::vector<NodeId>* bv = b.AsSortedVector()) {
    return extent_internal::IntersectVec(a, *bv);
  }
  if (b.rep() == ExtentRep::kHybridBitmap && !PreferDecode(b, a.size())) {
    return ProbeFilter(a, b, /*want=*/true);
  }
  return extent_internal::IntersectVec(a, b.Materialize());
}

std::vector<NodeId> Difference(const Extent& a, const std::vector<NodeId>& b) {
  obs::CountDifference(a.size() + b.size());
  if (a.empty()) return {};
  if (const std::vector<NodeId>* av = a.AsSortedVector()) {
    return extent_internal::DifferenceVec(*av, b);
  }
  return extent_internal::DifferenceVec(a.Materialize(), b);
}

std::vector<NodeId> Difference(const std::vector<NodeId>& a, const Extent& b) {
  obs::CountDifference(a.size() + b.size());
  if (a.empty()) return {};
  if (b.empty()) return a;
  if (const std::vector<NodeId>* bv = b.AsSortedVector()) {
    return extent_internal::DifferenceVec(a, *bv);
  }
  if (b.rep() == ExtentRep::kHybridBitmap) {
    return ProbeFilter(a, b, /*want=*/false);
  }
  return extent_internal::DifferenceVec(a, b.Materialize());
}

}  // namespace mrx
