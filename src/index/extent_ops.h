#ifndef MRX_INDEX_EXTENT_OPS_H_
#define MRX_INDEX_EXTENT_OPS_H_

#include <algorithm>
#include <vector>

#include "graph/data_graph.h"
#include "index/extent.h"
#include "obs/query_cost.h"

namespace mrx {

/// \file
/// Shared sorted-extent algebra for the index family (docs/PERFORMANCE.md).
///
/// Every structural index in the reproduction manipulates *extents*:
/// sorted, duplicate-free sets of data-node ids. The split kernels of
/// M(k), M*(k) and D(k) repeatedly intersect and subtract them; before
/// this header they each carried a private copy of the same linear-merge
/// helpers. The kernels here are the single implementation, plus an
/// adaptive *galloping* intersection for the skewed case (a handful of
/// relevant nodes against a huge extent) that split relevance filtering
/// hits constantly.
///
/// Since the Extent redesign (ISSUE 9) the kernels come in three flavors:
///   - vector × vector — the original kernels, unchanged; these are the
///     oracle the representation-equivalence property test compares
///     against, and the ground-truth path (DataGraph adjacency, the
///     differential oracle) only ever uses these;
///   - Extent × Extent — representation-pair dispatch with word-parallel
///     bitmap∩bitmap and run-aware fast paths (extent_ops.cc);
///   - Extent × vector (both orders) — the refinement hot path: an index
///     node's extent against a plain relevant/successor set, with a
///     Contains-probe fast path into hybrid chunks that plays the role
///     galloping plays for vectors.
///
/// Every flavor charges the same QueryCostScope hooks with *logical*
/// element counts (the §5 cost metric), never physical words or chunks —
/// compressing an extent must not make a query look cheaper.

/// Size ratio beyond which Intersect/Difference switch from the linear
/// merge to galloping (exponential search) through the larger input. At
/// 16x, the crossover comfortably favors galloping (|a| log|b| work versus
/// |a| + |b|) while keeping near-balanced inputs on the branch-predictable
/// merge.
inline constexpr size_t kGallopRatio = 16;

namespace extent_internal {

/// First index i in [from, v.size()) with v[i] >= key, found by doubling
/// probes from `from` and a binary search over the final bracket. O(log d)
/// where d is the distance advanced — the property that makes a sweep of a
/// small set through a big one O(small * log big) total.
inline size_t GallopLowerBound(const std::vector<NodeId>& v, size_t from,
                               NodeId key) {
  size_t bound = 1;
  while (from + bound < v.size() && v[from + bound] < key) bound <<= 1;
  const size_t lo = from + (bound >> 1);
  const size_t hi = from + bound < v.size() ? from + bound + 1 : v.size();
  return static_cast<size_t>(
      std::lower_bound(v.begin() + static_cast<ptrdiff_t>(lo),
                       v.begin() + static_cast<ptrdiff_t>(hi), key) -
      v.begin());
}

/// a ∩ b when |a| is far smaller than |b|: walk a, gallop through b.
inline void IntersectGallop(const std::vector<NodeId>& a,
                            const std::vector<NodeId>& b,
                            std::vector<NodeId>* out) {
  size_t j = 0;
  for (const NodeId x : a) {
    j = GallopLowerBound(b, j, x);
    if (j == b.size()) return;
    if (b[j] == x) {
      out->push_back(x);
      ++j;
    }
  }
}

/// a \ b when |a| is far smaller than |b|: walk a, gallop through b.
inline void DifferenceGallop(const std::vector<NodeId>& a,
                             const std::vector<NodeId>& b,
                             std::vector<NodeId>* out) {
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    const NodeId x = a[i];
    j = GallopLowerBound(b, j, x);
    if (j == b.size()) {
      out->insert(out->end(), a.begin() + static_cast<ptrdiff_t>(i), a.end());
      return;
    }
    if (b[j] != x) out->push_back(x);
  }
}

/// Uncounted a ∩ b — the kernel body without the cost hook, so the Extent
/// dispatch layer can delegate here after charging the hook exactly once.
inline std::vector<NodeId> IntersectVec(const std::vector<NodeId>& a,
                                        const std::vector<NodeId>& b) {
  std::vector<NodeId> out;
  if (a.empty() || b.empty()) return out;
  if (a.size() * kGallopRatio < b.size()) {
    out.reserve(a.size());
    IntersectGallop(a, b, &out);
  } else if (b.size() * kGallopRatio < a.size()) {
    out.reserve(b.size());
    IntersectGallop(b, a, &out);
  } else {
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(out));
  }
  return out;
}

/// Uncounted overlap test (see IntersectVec): true iff a ∩ b != ∅,
/// returning at the first common member. Adaptive like the merge kernels:
/// gallops through the larger side under heavy skew.
inline bool OverlapsVec(const std::vector<NodeId>& a,
                        const std::vector<NodeId>& b) {
  if (a.empty() || b.empty()) return false;
  if (a.back() < b.front() || b.back() < a.front()) return false;
  const std::vector<NodeId>& small = a.size() <= b.size() ? a : b;
  const std::vector<NodeId>& large = a.size() <= b.size() ? b : a;
  if (small.size() * kGallopRatio < large.size()) {
    size_t j = 0;
    for (const NodeId x : small) {
      j = GallopLowerBound(large, j, x);
      if (j == large.size()) return false;
      if (large[j] == x) return true;
    }
    return false;
  }
  size_t i = 0, j = 0;
  while (i < small.size() && j < large.size()) {
    const NodeId x = small[i];
    const NodeId y = large[j];
    if (x == y) return true;
    if (x < y) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

/// Uncounted a \ b (see IntersectVec).
inline std::vector<NodeId> DifferenceVec(const std::vector<NodeId>& a,
                                         const std::vector<NodeId>& b) {
  std::vector<NodeId> out;
  if (a.empty()) return out;
  if (b.empty()) return a;
  if (a.size() * kGallopRatio < b.size()) {
    out.reserve(a.size());
    DifferenceGallop(a, b, &out);
  } else {
    std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  }
  return out;
}

}  // namespace extent_internal

/// Sorted-set intersection a ∩ b. Inputs must be sorted ascending and
/// duplicate-free (the extent invariant); the output is too. Adaptive:
/// linear merge for comparable sizes, galloping through the larger side
/// when the sizes differ by more than kGallopRatio.
inline std::vector<NodeId> Intersect(const std::vector<NodeId>& a,
                                     const std::vector<NodeId>& b) {
  // Cost hook (a thread-local load + branch; active only under a
  // QueryCostScope): one kernel call, both inputs charged as scanned.
  obs::CountIntersect(a.size() + b.size());
  return extent_internal::IntersectVec(a, b);
}

/// Sorted-set difference a \ b, same contracts as Intersect. Only the
/// |a| << |b| skew benefits from galloping (the output is a subset of a);
/// a large `a` against a small `b` is already near-linear in |a| on the
/// merge path.
inline std::vector<NodeId> Difference(const std::vector<NodeId>& a,
                                      const std::vector<NodeId>& b) {
  obs::CountDifference(a.size() + b.size());
  return extent_internal::DifferenceVec(a, b);
}

/// a ∩ b over compressed extents: representation-pair dispatch. Matching
/// kSortedVector pair falls through to the adaptive vector kernel;
/// kHybridBitmap pairs intersect chunk-by-chunk (SIMD word-parallel AND
/// for bitmap×bitmap, run-aware probes otherwise); anything involving
/// kDeltaPacked runs the native delta-stream kernels — a blockwise walk of
/// the packed stream that skips non-overlapping blocks via the per-block
/// maxima index and never materializes a scratch vector. The result is a
/// normalized Extent. Charges CountIntersect with logical sizes.
Extent Intersect(const Extent& a, const Extent& b);

/// a \ b over compressed extents, same dispatch structure as Intersect.
Extent Difference(const Extent& a, const Extent& b);

/// True iff a ∩ b is non-empty. Replaces the `Intersect(a, b).empty()`
/// idiom on validation paths: same representation dispatch, but returns at
/// the FIRST common member and builds nothing. Charges CountIntersect with
/// the same logical sizes the materializing call would (compression and
/// early exit must not make a query look cheaper).
bool Overlaps(const Extent& a, const Extent& b);
bool Overlaps(const std::vector<NodeId>& a, const Extent& b);
inline bool Overlaps(const Extent& a, const std::vector<NodeId>& b) {
  return Overlaps(b, a);
}

/// Vector flavor of Overlaps (same contract), inline for the query layer.
inline bool Overlaps(const std::vector<NodeId>& a,
                     const std::vector<NodeId>& b) {
  obs::CountIntersect(a.size() + b.size());
  return extent_internal::OverlapsVec(a, b);
}

/// k-way intersection folding in ascending size order (size is the kernel
/// cost estimate): the running result is seeded from the smallest operand
/// and stays bounded by it, so every fold step runs a small probe side
/// against the next-cheapest operand, with an early exit the moment the
/// running result is empty. Null entries are skipped. Replaces left-fold
/// `Intersect` chains on the query hot path.
Extent IntersectMany(std::vector<const Extent*> operands);

/// Mixed kernels for the refinement hot path: an index node's (possibly
/// compressed) extent against a plain sorted vector (relevant sets, Succ
/// results). A hybrid extent is probed per element (the compressed
/// analogue of galloping); a delta extent decodes and merges. Outputs are
/// plain sorted vectors — refinement scratch data stays uncompressed.
std::vector<NodeId> Intersect(const Extent& a, const std::vector<NodeId>& b);
std::vector<NodeId> Intersect(const std::vector<NodeId>& a, const Extent& b);
std::vector<NodeId> Difference(const Extent& a, const std::vector<NodeId>& b);
std::vector<NodeId> Difference(const std::vector<NodeId>& a, const Extent& b);

/// Vector flavor of IntersectMany for hot paths that fold plain sorted
/// vectors (twig match-set combination): same ascending-size ordering rule
/// and empty-result early exit. Header-inline because mrx_query cannot
/// link the compiled extent kernels. Null entries are skipped; an all-null
/// or empty list yields the empty set.
inline std::vector<NodeId> IntersectMany(
    std::vector<const std::vector<NodeId>*> operands) {
  std::erase(operands, nullptr);
  if (operands.empty()) return {};
  std::sort(operands.begin(), operands.end(),
            [](const std::vector<NodeId>* x, const std::vector<NodeId>* y) {
              return x->size() < y->size();
            });
  std::vector<NodeId> result = *operands.front();
  for (size_t i = 1; i < operands.size() && !result.empty(); ++i) {
    result = Intersect(result, *operands[i]);
  }
  return result;
}

/// Sorts and deduplicates in place — the normalization every extent and
/// index-node id list goes through. Works for NodeId and IndexNodeId
/// vectors alike.
template <typename Id>
inline void SortUnique(std::vector<Id>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

}  // namespace mrx

#endif  // MRX_INDEX_EXTENT_OPS_H_
