#ifndef MRX_INDEX_EXTENT_OPS_H_
#define MRX_INDEX_EXTENT_OPS_H_

#include <algorithm>
#include <vector>

#include "graph/data_graph.h"
#include "obs/query_cost.h"

namespace mrx {

/// \file
/// Shared sorted-extent algebra for the index family (docs/PERFORMANCE.md).
///
/// Every structural index in the reproduction manipulates *extents*:
/// sorted, duplicate-free vectors of data-node ids. The split kernels of
/// M(k), M*(k) and D(k) repeatedly intersect and subtract them; before
/// this header they each carried a private copy of the same linear-merge
/// helpers. The kernels here are the single implementation, plus an
/// adaptive *galloping* intersection for the skewed case (a handful of
/// relevant nodes against a huge extent) that split relevance filtering
/// hits constantly.

/// Size ratio beyond which Intersect/Difference switch from the linear
/// merge to galloping (exponential search) through the larger input. At
/// 16x, the crossover comfortably favors galloping (|a| log|b| work versus
/// |a| + |b|) while keeping near-balanced inputs on the branch-predictable
/// merge.
inline constexpr size_t kGallopRatio = 16;

namespace extent_internal {

/// First index i in [from, v.size()) with v[i] >= key, found by doubling
/// probes from `from` and a binary search over the final bracket. O(log d)
/// where d is the distance advanced — the property that makes a sweep of a
/// small set through a big one O(small * log big) total.
inline size_t GallopLowerBound(const std::vector<NodeId>& v, size_t from,
                               NodeId key) {
  size_t bound = 1;
  while (from + bound < v.size() && v[from + bound] < key) bound <<= 1;
  const size_t lo = from + (bound >> 1);
  const size_t hi = from + bound < v.size() ? from + bound + 1 : v.size();
  return static_cast<size_t>(
      std::lower_bound(v.begin() + static_cast<ptrdiff_t>(lo),
                       v.begin() + static_cast<ptrdiff_t>(hi), key) -
      v.begin());
}

/// a ∩ b when |a| is far smaller than |b|: walk a, gallop through b.
inline void IntersectGallop(const std::vector<NodeId>& a,
                            const std::vector<NodeId>& b,
                            std::vector<NodeId>* out) {
  size_t j = 0;
  for (const NodeId x : a) {
    j = GallopLowerBound(b, j, x);
    if (j == b.size()) return;
    if (b[j] == x) {
      out->push_back(x);
      ++j;
    }
  }
}

/// a \ b when |a| is far smaller than |b|: walk a, gallop through b.
inline void DifferenceGallop(const std::vector<NodeId>& a,
                             const std::vector<NodeId>& b,
                             std::vector<NodeId>* out) {
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    const NodeId x = a[i];
    j = GallopLowerBound(b, j, x);
    if (j == b.size()) {
      out->insert(out->end(), a.begin() + static_cast<ptrdiff_t>(i), a.end());
      return;
    }
    if (b[j] != x) out->push_back(x);
  }
}

}  // namespace extent_internal

/// Sorted-set intersection a ∩ b. Inputs must be sorted ascending and
/// duplicate-free (the extent invariant); the output is too. Adaptive:
/// linear merge for comparable sizes, galloping through the larger side
/// when the sizes differ by more than kGallopRatio.
inline std::vector<NodeId> Intersect(const std::vector<NodeId>& a,
                                     const std::vector<NodeId>& b) {
  // Cost hook (a thread-local load + branch; active only under a
  // QueryCostScope): one kernel call, both inputs charged as scanned.
  obs::CountIntersect(a.size() + b.size());
  std::vector<NodeId> out;
  if (a.empty() || b.empty()) return out;
  if (a.size() * kGallopRatio < b.size()) {
    out.reserve(a.size());
    extent_internal::IntersectGallop(a, b, &out);
  } else if (b.size() * kGallopRatio < a.size()) {
    out.reserve(b.size());
    extent_internal::IntersectGallop(b, a, &out);
  } else {
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(out));
  }
  return out;
}

/// Sorted-set difference a \ b, same contracts as Intersect. Only the
/// |a| << |b| skew benefits from galloping (the output is a subset of a);
/// a large `a` against a small `b` is already near-linear in |a| on the
/// merge path.
inline std::vector<NodeId> Difference(const std::vector<NodeId>& a,
                                      const std::vector<NodeId>& b) {
  obs::CountDifference(a.size() + b.size());
  std::vector<NodeId> out;
  if (a.empty()) return out;
  if (b.empty()) return a;
  if (a.size() * kGallopRatio < b.size()) {
    out.reserve(a.size());
    extent_internal::DifferenceGallop(a, b, &out);
  } else {
    std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  }
  return out;
}

/// Sorts and deduplicates in place — the normalization every extent and
/// index-node id list goes through. Works for NodeId and IndexNodeId
/// vectors alike.
template <typename Id>
inline void SortUnique(std::vector<Id>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

}  // namespace mrx

#endif  // MRX_INDEX_EXTENT_OPS_H_
