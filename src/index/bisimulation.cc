#include "index/bisimulation.h"

#include <algorithm>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace mrx {
namespace {

/// Tag word prefixing the signature of a frozen node. Distinct from every
/// block id (block ids are < num_nodes < 2^32 - 1), so frozen blocks can
/// never merge with active ones.
constexpr uint32_t kFrozenTag = static_cast<uint32_t>(-1);

/// Sharded refinement thresholds (see docs/PERFORMANCE.md, "Scale tier").
/// Below kParallelRefineMinNodes a round is too small to amortize the
/// fork/merge overhead; shards are kept to >= kMinNodesPerShard each so
/// per-shard tables stay dense, and threads get kShardsPerThread shards of
/// work each so uneven shards (hubs, label clusters) still balance. None
/// of these affect results — only where the work runs.
constexpr size_t kParallelRefineMinNodes = 2048;
constexpr size_t kMinNodesPerShard = 1024;
constexpr size_t kShardsPerThread = 4;

/// FNV-1a over the signature words.
uint64_t HashWords(const uint32_t* data, uint32_t len) {
  uint64_t h = 1469598103934665603ULL;
  for (uint32_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;
  }
  return h;
}

size_t NextPow2(size_t v) {
  size_t p = 16;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

/// Interning store for refinement signatures. The unique signatures live
/// flattened in one arena (no per-signature vector, no hash-map key
/// copies); an open-addressing table over (hash, id) indexes them. Ids are
/// assigned in insertion order, which is what the deterministic shard
/// merge below relies on. (mrx scope, not anonymous, so RefineScratchImpl
/// can hold instances across rounds.)
class SignatureTable {
 public:
  explicit SignatureTable(size_t expected_sigs = 0) {
    slots_.assign(NextPow2(expected_sigs * 2 + 16), Slot{});
    mask_ = slots_.size() - 1;
  }

  /// Empties the table for a new round, keeping every allocation whose
  /// capacity already suffices. Equivalent to assigning a fresh
  /// SignatureTable(expected_sigs) — minus the reallocation.
  void Reset(size_t expected_sigs) {
    const size_t want = NextPow2(expected_sigs * 2 + 16);
    slots_.assign(std::max(want, slots_.size()), Slot{});
    mask_ = slots_.size() - 1;
    arena_.clear();
    offsets_.clear();
    lens_.clear();
    hashes_.clear();
  }

  /// Interns the signature, returning its id (existing or freshly
  /// assigned as the next integer).
  uint32_t Intern(const uint32_t* sig, uint32_t len, uint64_t hash) {
    if ((size() + 1) * 10 >= slots_.size() * 7) Grow();
    size_t i = static_cast<size_t>(hash) & mask_;
    for (;;) {
      Slot& s = slots_[i];
      if (s.id == kEmptySlot) {
        const uint32_t id = static_cast<uint32_t>(offsets_.size());
        s.hash = hash;
        s.id = id;
        offsets_.push_back(static_cast<uint32_t>(arena_.size()));
        lens_.push_back(len);
        hashes_.push_back(hash);
        arena_.insert(arena_.end(), sig, sig + len);
        return id;
      }
      if (s.hash == hash && lens_[s.id] == len &&
          std::memcmp(arena_.data() + offsets_[s.id], sig,
                      len * sizeof(uint32_t)) == 0) {
        return s.id;
      }
      i = (i + 1) & mask_;
    }
  }

  uint32_t size() const { return static_cast<uint32_t>(offsets_.size()); }
  const uint32_t* data(uint32_t id) const {
    return arena_.data() + offsets_[id];
  }
  uint32_t len(uint32_t id) const { return lens_[id]; }
  uint64_t hash(uint32_t id) const { return hashes_[id]; }

 private:
  static constexpr uint32_t kEmptySlot = static_cast<uint32_t>(-1);
  struct Slot {
    uint64_t hash = 0;
    uint32_t id = kEmptySlot;
  };

  void Grow() {
    std::vector<Slot> old;
    old.swap(slots_);
    slots_.assign(old.size() * 2, Slot{});
    mask_ = slots_.size() - 1;
    for (const Slot& s : old) {
      if (s.id == kEmptySlot) continue;
      size_t i = static_cast<size_t>(s.hash) & mask_;
      while (slots_[i].id != kEmptySlot) i = (i + 1) & mask_;
      slots_[i] = s;
    }
  }

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  std::vector<uint32_t> arena_;    ///< All unique signatures, flattened.
  std::vector<uint32_t> offsets_;  ///< Arena offset per id.
  std::vector<uint32_t> lens_;     ///< Word count per id.
  std::vector<uint64_t> hashes_;   ///< Cached hash per id (for Grow/merge).
};

/// The allocations RefineRound would otherwise make fresh every round.
/// Everything is Reset at the top of each round; capacities persist.
struct RefineScratchImpl {
  struct Shard {
    SignatureTable table;
    std::vector<uint32_t> local_of;  ///< Local signature id per node.
    std::vector<uint32_t> remap;     ///< Local -> global id.
    size_t begin = 0, end = 0;
  };
  std::vector<Shard> shards;
  SignatureTable global;
  /// Unique-signature count of the previous round; seeds table sizing so a
  /// steady-state round never grows its table.
  uint32_t last_uniques = 0;
};

RefineScratch::RefineScratch() : impl_(std::make_unique<RefineScratchImpl>()) {}
RefineScratch::~RefineScratch() = default;

namespace {

/// Appends node n's signature words to `sig` (cleared first):
/// active  -> [own block, sorted unique parent blocks],
/// frozen  -> [kFrozenTag, own block].
template <typename ActivePredicate>
void BuildSignature(const DataGraph& g, const std::vector<uint32_t>& block_of,
                    const ActivePredicate& active, NodeId n,
                    std::vector<uint32_t>* sig) {
  sig->clear();
  if (active(n)) {
    sig->push_back(block_of[n]);
    for (NodeId p : g.parents(n)) sig->push_back(block_of[p]);
    std::sort(sig->begin() + 1, sig->end());
    sig->erase(std::unique(sig->begin() + 1, sig->end()), sig->end());
  } else {
    // Frozen nodes keep their identity; the tag separates their signature
    // space from the active one (frozen blocks must not merge with active).
    sig->push_back(kFrozenTag);
    sig->push_back(block_of[n]);
  }
}

/// One refinement round. `active(n)` says whether node n still refines.
/// Returns the new block count; fills `next_block_of`. `scratch` is never
/// null (callers without one borrow a function-local RefineScratch).
///
/// Parallel structure (determinism contract, docs/PERFORMANCE.md): nodes
/// are cut into contiguous ascending shards. Each shard interns its
/// signatures into a private table (ids in ascending first-occurrence
/// order within the shard). The serial merge then walks shards in order,
/// re-interning each shard's unique signatures into the global table — so
/// a global id is assigned exactly when its signature is first seen in
/// ascending node order, which is precisely the numbering the serial scan
/// produces. The result is byte-identical for every shard/thread count —
/// including the single-shard path, which interns straight into the global
/// table (same insertion order, no merge).
template <typename ActivePredicate>
uint32_t RefineRound(const DataGraph& g, const std::vector<uint32_t>& block_of,
                     const ActivePredicate& active,
                     std::vector<uint32_t>* next_block_of, ThreadPool* pool,
                     RefineScratchImpl* scratch) {
  const size_t n = g.num_nodes();
  next_block_of->resize(n);

  size_t num_shards = 1;
  if (pool != nullptr && pool->num_threads() > 1 &&
      n >= kParallelRefineMinNodes) {
    num_shards =
        std::min(pool->num_threads() * kShardsPerThread, n / kMinNodesPerShard);
  }

  SignatureTable& global = scratch->global;

  if (num_shards == 1) {
    // Serial fast path: intern directly into the global table — one intern
    // per node instead of the shard-then-merge double intern.
    global.Reset(scratch->last_uniques > 0 ? scratch->last_uniques
                                           : n / 4 + 16);
    std::vector<uint32_t> sig;
    for (size_t i = 0; i < n; ++i) {
      BuildSignature(g, block_of, active, static_cast<NodeId>(i), &sig);
      const uint64_t h =
          HashWords(sig.data(), static_cast<uint32_t>(sig.size()));
      (*next_block_of)[i] =
          global.Intern(sig.data(), static_cast<uint32_t>(sig.size()), h);
    }
    scratch->last_uniques = global.size();
    return global.size();
  }

  const size_t shard_size = (n + num_shards - 1) / num_shards;
  auto& shards = scratch->shards;
  shards.resize(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    shards[s].begin = s * shard_size;
    shards[s].end = std::min(n, (s + 1) * shard_size);
  }

  // Phase 1 (parallel): per-shard signature interning.
  auto intern_shards = [&](size_t lo, size_t hi) {
    std::vector<uint32_t> sig;
    for (size_t s = lo; s < hi; ++s) {
      auto& shard = shards[s];
      const size_t count = shard.end - shard.begin;
      shard.table.Reset(count / 4 + 16);
      shard.local_of.resize(count);
      for (size_t i = shard.begin; i < shard.end; ++i) {
        BuildSignature(g, block_of, active, static_cast<NodeId>(i), &sig);
        const uint64_t h =
            HashWords(sig.data(), static_cast<uint32_t>(sig.size()));
        shard.local_of[i - shard.begin] = shard.table.Intern(
            sig.data(), static_cast<uint32_t>(sig.size()), h);
      }
    }
  };
  pool->ParallelFor(0, num_shards, 1, intern_shards);

  // Phase 2 (serial): merge shard tables in shard order. Each shard's
  // uniques are re-interned ascending, establishing the canonical global
  // numbering; `remap` translates local ids.
  size_t total_uniques = 0;
  for (const auto& shard : shards) total_uniques += shard.table.size();
  global.Reset(total_uniques);
  for (size_t s = 0; s < num_shards; ++s) {
    auto& shard = shards[s];
    shard.remap.resize(shard.table.size());
    for (uint32_t u = 0; u < shard.table.size(); ++u) {
      shard.remap[u] =
          global.Intern(shard.table.data(u), shard.table.len(u),
                        shard.table.hash(u));
    }
  }

  // Phase 3 (parallel): write the renumbered blocks back.
  auto write_shards = [&](size_t lo, size_t hi) {
    for (size_t s = lo; s < hi; ++s) {
      const auto& shard = shards[s];
      for (size_t i = shard.begin; i < shard.end; ++i) {
        (*next_block_of)[i] = shard.remap[shard.local_of[i - shard.begin]];
      }
    }
  };
  pool->ParallelFor(0, num_shards, 1, write_shards);
  scratch->last_uniques = global.size();
  return global.size();
}

/// Initial (round-0) partition: one block per label in use.
uint32_t LabelBlocks(const DataGraph& g, std::vector<uint32_t>* block_of) {
  const size_t num_labels = g.symbols().size();
  std::vector<uint32_t> block_of_label(num_labels, static_cast<uint32_t>(-1));
  uint32_t num_blocks = 0;
  for (LabelId l = 0; l < num_labels; ++l) {
    if (!g.nodes_with_label(l).empty()) block_of_label[l] = num_blocks++;
  }
  block_of->resize(g.num_nodes());
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    (*block_of)[n] = block_of_label[g.label(n)];
  }
  return num_blocks;
}

/// Build-phase observability: every refinement round records its wall
/// time, wherever it runs (static build, M*(k) growth, D(k) construct).
void RecordRound(uint64_t start_ns) {
  static obs::Counter* rounds = obs::MetricsRegistry::Global().GetCounter(
      "mrx_build_refine_rounds_total");
  static obs::Histogram* round_ns = obs::MetricsRegistry::Global().GetHistogram(
      "mrx_build_refine_round_ns");
  rounds->Increment();
  round_ns->Record(
      static_cast<double>(obs::MonotonicNowNs() - start_ns));
}

}  // namespace

BisimulationPartition ComputeKBisimulation(const DataGraph& g, int k,
                                           const RefineOptions& options) {
  ThreadPool* pool = options.pool;
  RefineScratch local;
  RefineScratchImpl* impl = (options.scratch ? options.scratch : &local)->impl();

  BisimulationPartition part;
  part.num_blocks = LabelBlocks(g, &part.block_of);

  std::vector<uint32_t> next;
  int round = 0;
  while (k < 0 || round < k) {
    const uint64_t start_ns = obs::MonotonicNowNs();
    uint32_t new_blocks = RefineRound(
        g, part.block_of, [](NodeId) { return true; }, &next, pool, impl);
    RecordRound(start_ns);
    ++round;
    if (new_blocks == part.num_blocks) {
      // Refinement is monotone and the new partition refines the old one,
      // so an unchanged block count means an unchanged partition.
      part.reached_fixpoint = true;
      --round;  // The no-op round did not change anything.
      break;
    }
    part.block_of.swap(next);
    part.num_blocks = new_blocks;
  }
  part.rounds = round;
  return part;
}

bool RefineBisimulationRound(const DataGraph& g, BisimulationPartition* part,
                             const RefineOptions& options) {
  ThreadPool* pool = options.pool;
  if (part->reached_fixpoint) return false;
  RefineScratch local;
  RefineScratchImpl* impl = (options.scratch ? options.scratch : &local)->impl();
  const uint64_t start_ns = obs::MonotonicNowNs();
  std::vector<uint32_t> next;
  uint32_t new_blocks = RefineRound(
      g, part->block_of, [](NodeId) { return true; }, &next, pool, impl);
  RecordRound(start_ns);
  if (new_blocks == part->num_blocks) {
    part->reached_fixpoint = true;
    return false;
  }
  part->block_of.swap(next);
  part->num_blocks = new_blocks;
  ++part->rounds;
  return true;
}

BisimulationPartition ComputeDkConstructPartition(
    const DataGraph& g, const std::vector<int32_t>& kreq_by_label,
    const RefineOptions& options) {
  RefineScratch local;
  RefineScratch* use = options.scratch ? options.scratch : &local;

  BisimulationPartition part;
  part.num_blocks = LabelBlocks(g, &part.block_of);

  int32_t max_k = 0;
  for (int32_t k : kreq_by_label) max_k = std::max(max_k, k);

  for (int32_t i = 1; i <= max_k; ++i) {
    if (!RefineDkConstructRound(g, &part, kreq_by_label, i,
                                RefineOptions{options.pool, use})) {
      break;
    }
  }
  return part;
}

bool RefineDkConstructRound(const DataGraph& g, BisimulationPartition* part,
                            const std::vector<int32_t>& kreq_by_label,
                            int32_t round, const RefineOptions& options) {
  ThreadPool* pool = options.pool;
  if (part->reached_fixpoint) return false;
  RefineScratch local;
  RefineScratchImpl* impl = (options.scratch ? options.scratch : &local)->impl();
  const uint64_t start_ns = obs::MonotonicNowNs();
  std::vector<uint32_t> next;
  uint32_t new_blocks = RefineRound(
      g, part->block_of,
      [&](NodeId n) { return kreq_by_label[g.label(n)] >= round; }, &next,
      pool, impl);
  RecordRound(start_ns);
  if (new_blocks == part->num_blocks) {
    // Unchanged partition: the active set only shrinks as the round number
    // grows and blocks are label-uniform (every block freezes as a whole),
    // so no later round can change it either.
    part->reached_fixpoint = true;
    return false;
  }
  part->block_of.swap(next);
  part->num_blocks = new_blocks;
  ++part->rounds;
  return true;
}

// Deprecated (ThreadPool*, RefineScratch*) shims. Bodies live here so the
// attribute in the header warns at *call* sites, not in this file.
BisimulationPartition ComputeKBisimulation(const DataGraph& g, int k,
                                           ThreadPool* pool,
                                           RefineScratch* scratch) {
  return ComputeKBisimulation(g, k, RefineOptions{pool, scratch});
}

bool RefineBisimulationRound(const DataGraph& g, BisimulationPartition* part,
                             ThreadPool* pool, RefineScratch* scratch) {
  return RefineBisimulationRound(g, part, RefineOptions{pool, scratch});
}

BisimulationPartition ComputeDkConstructPartition(
    const DataGraph& g, const std::vector<int32_t>& kreq_by_label,
    ThreadPool* pool, RefineScratch* scratch) {
  return ComputeDkConstructPartition(g, kreq_by_label,
                                     RefineOptions{pool, scratch});
}

bool RefineDkConstructRound(const DataGraph& g, BisimulationPartition* part,
                            const std::vector<int32_t>& kreq_by_label,
                            int32_t round, ThreadPool* pool,
                            RefineScratch* scratch) {
  return RefineDkConstructRound(g, part, kreq_by_label, round,
                                RefineOptions{pool, scratch});
}

}  // namespace mrx
