#include "index/bisimulation.h"

#include <algorithm>
#include <unordered_map>

namespace mrx {
namespace {

/// Hash for a refinement signature: (own previous block, sorted unique
/// previous blocks of parents). FNV-1a over the words.
struct SignatureHash {
  size_t operator()(const std::vector<uint32_t>& sig) const {
    uint64_t h = 1469598103934665603ULL;
    for (uint32_t w : sig) {
      h ^= w;
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

/// Initial (round-0) partition: one block per label in use.
uint32_t LabelBlocks(const DataGraph& g, std::vector<uint32_t>* block_of) {
  const size_t num_labels = g.symbols().size();
  std::vector<uint32_t> block_of_label(num_labels, static_cast<uint32_t>(-1));
  uint32_t num_blocks = 0;
  for (LabelId l = 0; l < num_labels; ++l) {
    if (!g.nodes_with_label(l).empty()) block_of_label[l] = num_blocks++;
  }
  block_of->resize(g.num_nodes());
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    (*block_of)[n] = block_of_label[g.label(n)];
  }
  return num_blocks;
}

/// One refinement round. `active(n)` says whether node n still refines.
/// Returns the new block count; fills `next_block_of`.
template <typename ActivePredicate>
uint32_t RefineRound(const DataGraph& g,
                     const std::vector<uint32_t>& block_of,
                     ActivePredicate active,
                     std::vector<uint32_t>* next_block_of) {
  std::unordered_map<std::vector<uint32_t>, uint32_t, SignatureHash> ids;
  ids.reserve(g.num_nodes() / 4 + 16);
  next_block_of->resize(g.num_nodes());
  std::vector<uint32_t> sig;
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    sig.clear();
    if (active(n)) {
      sig.push_back(block_of[n]);
      for (NodeId p : g.parents(n)) sig.push_back(block_of[p]);
      std::sort(sig.begin() + 1, sig.end());
      sig.erase(std::unique(sig.begin() + 1, sig.end()), sig.end());
    } else {
      // Frozen nodes keep their identity; tag distinguishes the signature
      // space from active ones (frozen blocks must not merge with active).
      sig.push_back(static_cast<uint32_t>(-1));
      sig.push_back(block_of[n]);
    }
    auto [it, inserted] =
        ids.emplace(sig, static_cast<uint32_t>(ids.size()));
    (*next_block_of)[n] = it->second;
  }
  return static_cast<uint32_t>(ids.size());
}

}  // namespace

BisimulationPartition ComputeKBisimulation(const DataGraph& g, int k) {
  BisimulationPartition part;
  part.num_blocks = LabelBlocks(g, &part.block_of);

  std::vector<uint32_t> next;
  int round = 0;
  while (k < 0 || round < k) {
    uint32_t new_blocks = RefineRound(
        g, part.block_of, [](NodeId) { return true; }, &next);
    ++round;
    if (new_blocks == part.num_blocks) {
      // Refinement is monotone and the new partition refines the old one,
      // so an unchanged block count means an unchanged partition.
      part.reached_fixpoint = true;
      --round;  // The no-op round did not change anything.
      break;
    }
    part.block_of.swap(next);
    part.num_blocks = new_blocks;
  }
  part.rounds = round;
  return part;
}

BisimulationPartition ComputeDkConstructPartition(
    const DataGraph& g, const std::vector<int32_t>& kreq_by_label) {
  BisimulationPartition part;
  part.num_blocks = LabelBlocks(g, &part.block_of);

  int32_t max_k = 0;
  for (int32_t k : kreq_by_label) max_k = std::max(max_k, k);

  std::vector<uint32_t> next;
  int round = 0;
  for (int32_t i = 1; i <= max_k; ++i) {
    uint32_t new_blocks = RefineRound(
        g, part.block_of,
        [&](NodeId n) { return kreq_by_label[g.label(n)] >= i; }, &next);
    ++round;
    if (new_blocks == part.num_blocks) {
      part.reached_fixpoint = true;
      --round;
      break;
    }
    part.block_of.swap(next);
    part.num_blocks = new_blocks;
  }
  part.rounds = round;
  return part;
}

}  // namespace mrx
