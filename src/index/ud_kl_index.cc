#include "index/ud_kl_index.h"

#include <algorithm>
#include <unordered_map>

namespace mrx {
namespace {

struct SignatureHash {
  size_t operator()(const std::vector<uint32_t>& sig) const {
    uint64_t h = 1469598103934665603ULL;
    for (uint32_t w : sig) {
      h ^= w;
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

uint32_t LabelBlocks(const DataGraph& g, std::vector<uint32_t>* block_of) {
  const size_t num_labels = g.symbols().size();
  std::vector<uint32_t> block_of_label(num_labels, static_cast<uint32_t>(-1));
  uint32_t num_blocks = 0;
  for (LabelId l = 0; l < num_labels; ++l) {
    if (!g.nodes_with_label(l).empty()) block_of_label[l] = num_blocks++;
  }
  block_of->resize(g.num_nodes());
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    (*block_of)[n] = block_of_label[g.label(n)];
  }
  return num_blocks;
}

}  // namespace

BisimulationPartition ComputeDownBisimulation(const DataGraph& g, int l) {
  BisimulationPartition part;
  part.num_blocks = LabelBlocks(g, &part.block_of);

  std::vector<uint32_t> next(g.num_nodes());
  std::vector<uint32_t> sig;
  int round = 0;
  while (l < 0 || round < l) {
    std::unordered_map<std::vector<uint32_t>, uint32_t, SignatureHash> ids;
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      sig.clear();
      sig.push_back(part.block_of[n]);
      for (NodeId c : g.children(n)) sig.push_back(part.block_of[c]);
      std::sort(sig.begin() + 1, sig.end());
      sig.erase(std::unique(sig.begin() + 1, sig.end()), sig.end());
      auto [it, inserted] =
          ids.emplace(sig, static_cast<uint32_t>(ids.size()));
      next[n] = it->second;
    }
    ++round;
    if (ids.size() == part.num_blocks) {
      part.reached_fixpoint = true;
      --round;
      break;
    }
    part.block_of.swap(next);
    part.num_blocks = static_cast<uint32_t>(ids.size());
  }
  part.rounds = round;
  return part;
}

BisimulationPartition ComputeUdKlPartition(const DataGraph& g, int k,
                                           int l) {
  BisimulationPartition up = ComputeKBisimulation(g, k);
  BisimulationPartition down = ComputeDownBisimulation(g, l);

  // Common refinement: block = dense id of the (up, down) pair.
  BisimulationPartition part;
  part.rounds = std::max(up.rounds, down.rounds);
  part.reached_fixpoint = up.reached_fixpoint && down.reached_fixpoint;
  part.block_of.resize(g.num_nodes());
  std::unordered_map<uint64_t, uint32_t> pair_ids;
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    uint64_t key = (static_cast<uint64_t>(up.block_of[n]) << 32) |
                   down.block_of[n];
    auto [it, inserted] =
        pair_ids.emplace(key, static_cast<uint32_t>(pair_ids.size()));
    part.block_of[n] = it->second;
  }
  part.num_blocks = static_cast<uint32_t>(pair_ids.size());
  return part;
}

UdklIndex::UdklIndex(const DataGraph& g, int k, int l)
    : k_(k),
      l_(l),
      graph_([&] {
        BisimulationPartition part = ComputeUdKlPartition(g, k, l);
        // Incoming precision is governed by k: each block is a subset of
        // a k-bisimilarity class.
        std::vector<int32_t> block_k(part.num_blocks, k);
        return IndexGraph::FromPartition(g, part.block_of, part.num_blocks,
                                         block_k);
      }()),
      validator_(g) {}

QueryResult UdklIndex::Query(const PathExpression& path) {
  return AnswerOnIndex(graph_, path, &validator_);
}

}  // namespace mrx
