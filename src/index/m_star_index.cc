#include "index/m_star_index.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <utility>

#include "index/bisimulation.h"
#include "index/extent_ops.h"
#include "obs/query_cost.h"
#include "util/thread_pool.h"

namespace mrx {
namespace {

/// Minimum number of touched nodes before CascadeInto fans its regrouping
/// precompute out over the pool — below this the dispatch overhead wins.
constexpr size_t kParallelCascadeMinNodes = 32;

}  // namespace

MStarIndex::MStarIndex(const DataGraph& g) : data_(g), evaluator_(g) {
  IndexGraph g0 = IndexGraph::LabelPartition(g);
  std::vector<IndexNodeId> sup(g0.capacity(), kInvalidIndexNode);
  components_.push_back(Component{std::move(g0), std::move(sup)});
}

MStarIndex::MStarIndex(const DataGraph& g, EmptyInit)
    : data_(g), evaluator_(g) {}

Result<MStarIndex> MStarIndex::FromComponents(
    const DataGraph& g, const std::vector<MStarComponentSpec>& specs) {
  if (specs.empty()) {
    return Status::InvalidArgument("need at least one component spec");
  }
  MStarIndex index(g);
  index.components_.clear();
  for (size_t i = 0; i < specs.size(); ++i) {
    const MStarComponentSpec& spec = specs[i];
    if (spec.extents.size() != spec.ks.size() ||
        (i > 0 && spec.supernodes.size() != spec.extents.size())) {
      return Status::InvalidArgument("component spec vectors disagree");
    }
    std::vector<uint32_t> block_of(g.num_nodes(), static_cast<uint32_t>(-1));
    for (uint32_t b = 0; b < spec.extents.size(); ++b) {
      for (NodeId o : spec.extents[b]) {
        if (o >= g.num_nodes() || block_of[o] != static_cast<uint32_t>(-1)) {
          return Status::InvalidArgument(
              "component extents do not partition the data nodes");
        }
        block_of[o] = b;
      }
    }
    for (uint32_t b : block_of) {
      if (b == static_cast<uint32_t>(-1)) {
        return Status::InvalidArgument(
            "component extents do not cover the data nodes");
      }
    }
    IndexGraph graph = IndexGraph::FromPartition(
        g, block_of, static_cast<uint32_t>(spec.extents.size()), spec.ks);
    // FromPartition numbers nodes by block ordinal, so the spec's
    // supernode ordinals are node ids in the previous component directly.
    std::vector<IndexNodeId> sup(graph.capacity(), kInvalidIndexNode);
    if (i > 0) {
      const size_t prev_size = specs[i - 1].extents.size();
      for (IndexNodeId v = 0; v < graph.capacity(); ++v) {
        if (spec.supernodes[v] >= prev_size) {
          return Status::InvalidArgument("supernode ordinal out of range");
        }
        sup[v] = spec.supernodes[v];
      }
    }
    index.components_.push_back(Component{std::move(graph), std::move(sup)});
  }
  MRX_RETURN_IF_ERROR(index.CheckProperties());
  return index;
}

MStarIndex MStarIndex::BuildStaticHierarchy(const DataGraph& g, int k_max,
                                            ThreadPool* pool) {
  return BuildStaticHierarchy(g, k_max, RefineOptions{pool, nullptr});
}

MStarIndex MStarIndex::BuildStaticHierarchy(const DataGraph& g, int k_max,
                                            const RefineOptions& options) {
  ThreadPool* pool = options.pool;
  // Phase A — refinement. Level i is A(i) = one refinement round on A(i-1):
  // the partition is carried across levels instead of recomputed from
  // scratch (k_max rounds total rather than k_max^2/2), with one scratch
  // arena shared by every round. At the fixpoint, RefineBisimulationRound
  // is a no-op and the remaining levels repeat the fixpoint partition,
  // exactly as per-level ComputeKBisimulation(g, i) would. Each round is
  // itself sharded over `pool`.
  assert(k_max >= 0);
  const size_t levels = static_cast<size_t>(k_max) + 1;
  std::vector<std::vector<uint32_t>> block_of(levels);
  std::vector<uint32_t> num_blocks(levels);
  RefineScratch local_scratch;
  const RefineOptions round_options{
      pool, options.scratch ? options.scratch : &local_scratch};
  BisimulationPartition part = ComputeKBisimulation(g, 0, round_options);
  for (size_t i = 0; i < levels; ++i) {
    if (i > 0) RefineBisimulationRound(g, &part, round_options);
    block_of[i] = part.block_of;
    num_blocks[i] = part.num_blocks;
  }

  // Phase B — materialization, one level per pool task. Levels are
  // independent given the snapshots: FromPartition derives extents and
  // adjacency, and the supernode of block b in level i is simply b's
  // level-(i-1) block (FromPartition numbers index nodes by block id).
  // This is the serial O(n)-per-level tail Amdahl leaves behind when only
  // the rounds are parallel.
  MStarIndex index(g, EmptyInit{});
  std::vector<std::unique_ptr<Component>> built(levels);
  auto build_level = [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      std::vector<int32_t> ks(num_blocks[i], static_cast<int32_t>(i));
      IndexGraph graph =
          IndexGraph::FromPartition(g, block_of[i], num_blocks[i], ks);
      std::vector<IndexNodeId> sup(graph.capacity(), kInvalidIndexNode);
      if (i > 0) {
        for (IndexNodeId v = 0; v < graph.capacity(); ++v) {
          sup[v] = block_of[i - 1][graph.node(v).extent.front()];
        }
      }
      built[i] =
          std::make_unique<Component>(Component{std::move(graph), std::move(sup)});
    }
  };
  if (pool != nullptr && levels > 1) {
    pool->ParallelFor(0, levels, 1, build_level);
  } else {
    build_level(0, levels);
  }
  index.components_.reserve(levels);
  for (auto& comp : built) index.components_.push_back(std::move(*comp));

  // The A(i) family satisfies Properties 1-5 by construction (each A(i+1)
  // refines A(i)); verify anyway — per component over the pool — exactly
  // as the FromComponents load path does.
  Status properties = index.CheckProperties(pool);
  assert(properties.ok());
  (void)properties;
  return index;
}

void MStarIndex::AppendComponentCopy() {
  // Copies the finest component; supernode links are the identity.
  IndexGraph graph = components_.back().graph;
  std::vector<IndexNodeId> sup(graph.capacity(), kInvalidIndexNode);
  for (IndexNodeId v = 0; v < graph.capacity(); ++v) {
    if (graph.alive(v)) sup[v] = v;
  }
  components_.push_back(Component{std::move(graph), std::move(sup)});
}

void MStarIndex::Refine(const PathExpression& fup) {
  const int32_t len = static_cast<int32_t>(fup.length());
  if (len == 0) return;
  // Descendant-axis expressions have unbounded instances; no finite k
  // certifies them, so there is nothing to refine toward (queries remain
  // exact through validation).
  if (fup.HasDescendantAxis()) return;
  RefineWithTarget(fup, evaluator_.Evaluate(fup));
}

void MStarIndex::RefineBatch(const std::vector<PathExpression>& fups) {
  // Keep only the expressions Refine would act on, in order.
  std::vector<const PathExpression*> eligible;
  for (const PathExpression& fup : fups) {
    if (fup.length() == 0 || fup.HasDescendantAxis()) continue;
    eligible.push_back(&fup);
  }
  if (eligible.empty()) return;

  // Target sets depend only on the immutable data graph, never on index
  // state, so they can all be evaluated before any refinement — and in
  // parallel. Each chunk gets its own evaluator (graph-sized scratch).
  std::vector<std::vector<NodeId>> targets(eligible.size());
  if (pool_ != nullptr && pool_->num_threads() > 1 && eligible.size() > 1) {
    pool_->ParallelFor(0, eligible.size(), 1, [&](size_t lo, size_t hi) {
      DataEvaluator evaluator(data_);
      for (size_t i = lo; i < hi; ++i) {
        targets[i] = evaluator.Evaluate(*eligible[i]);
      }
    });
  } else {
    for (size_t i = 0; i < eligible.size(); ++i) {
      targets[i] = evaluator_.Evaluate(*eligible[i]);
    }
  }

  // The refinement itself stays serial: splits mutate the shared
  // hierarchy, and the deterministic result is Refine applied in order.
  for (size_t i = 0; i < eligible.size(); ++i) {
    RefineWithTarget(*eligible[i], targets[i]);
  }
}

void MStarIndex::RefineWithTarget(const PathExpression& fup,
                                  const std::vector<NodeId>& target) {
  const int32_t len = static_cast<int32_t>(fup.length());
  while (components_.size() <= static_cast<size_t>(len)) {
    AppendComponentCopy();
  }

  if (!target.empty()) RefineNodeStar(len, target);

  // REFINE* lines 7-8: break false instances created by refinement.
  while (true) {
    IndexGraph& finest = components_[len].graph;
    std::vector<IndexNodeId> s = IndexTargetSet(finest, fup, nullptr);
    IndexNodeId bad = kInvalidIndexNode;
    for (IndexNodeId v : s) {
      if (finest.node(v).k < len) {
        bad = v;
        break;
      }
    }
    if (bad == kInvalidIndexNode) return;
    // Copy the extent: PromoteStar splits nodes, which can reallocate the
    // component's node array and invalidate references into it.
    std::vector<NodeId> bad_extent = finest.node(bad).extent.Materialize();
    PromoteStar(len, bad_extent, fup);
  }
}

void MStarIndex::RefineNodeStar(int k, const std::vector<NodeId>& relevant) {
  if (k <= 0 || relevant.empty()) return;
  IndexGraph& comp = components_[k].graph;

  auto under_refined_covers = [&]() {
    std::vector<IndexNodeId> covers;
    for (NodeId o : relevant) covers.push_back(comp.index_of(o));
    SortUnique(&covers);
    std::erase_if(covers, [&](IndexNodeId v) {
      return comp.node(v).k >= k;
    });
    return covers;
  };

  std::vector<IndexNodeId> covers = under_refined_covers();
  if (covers.empty()) return;

  // Only relevant data inside under-refined covers drives refinement
  // (REFINENODE* line 2's early return, per node).
  std::vector<NodeId> active;
  for (IndexNodeId v : covers) {
    std::vector<NodeId> here = Intersect(comp.node(v).extent, relevant);
    active.insert(active.end(), here.begin(), here.end());
  }
  SortUnique(&active);

  // Lines 4-7: refine the predecessors in component k-1 first.
  RefineNodeStar(k - 1, comp.Pred(active));

  // Lines 9-13: split the ancestor supernodes coarse-to-fine; each split
  // cascades into finer components immediately (the propagation of line
  // 13), so by the time component i is processed, component i-1 is final.
  for (int i = 1; i <= k; ++i) {
    while (true) {
      IndexGraph& ci = components_[i].graph;
      IndexNodeId p = kInvalidIndexNode;
      for (NodeId o : active) {
        IndexNodeId cand = ci.index_of(o);
        if (ci.node(cand).k < i) {
          p = cand;
          break;
        }
      }
      if (p == kInvalidIndexNode) break;
      SplitNodeStar(i, p, active);
    }
  }
}

void MStarIndex::SplitNodeStar(int ci, IndexNodeId v,
                               const std::vector<NodeId>& relevant) {
  assert(ci >= 1);
  IndexGraph& comp = components_[ci].graph;
  const IndexGraph& prev = components_[ci - 1].graph;

  const std::vector<NodeId> relevant_here =
      Intersect(comp.node(v).extent, relevant);
  if (relevant_here.empty()) return;
  const int32_t kold = comp.node(v).k;
  const std::vector<NodeId> pred_relevant = comp.Pred(relevant_here);

  // The perfectly qualified parents: parents of v's supernode in component
  // ci-1 (their similarity is exactly ci-1 after the recursion refined
  // them — never overqualified, the whole point of §4).
  IndexNodeId sup = prev.index_of(comp.node(v).extent.front());
  const std::vector<IndexNodeId> sup_parents = prev.node(sup).parents;

  std::vector<std::vector<NodeId>> pieces = {comp.node(v).extent.Materialize()};
  std::vector<NodeId> qualifying_union;
  for (IndexNodeId u : sup_parents) {
    if (!Overlaps(pred_relevant, prev.node(u).extent)) continue;
    const auto& u_extent = prev.node(u).extent;
    u_extent.AppendTo(&qualifying_union);
    std::vector<NodeId> succ = prev.Succ(u_extent);
    std::vector<std::vector<NodeId>> next;
    for (const auto& w : pieces) {
      std::vector<NodeId> in = Intersect(w, succ);
      std::vector<NodeId> out = Difference(w, succ);
      if (!in.empty()) next.push_back(std::move(in));
      if (!out.empty()) next.push_back(std::move(out));
    }
    pieces.swap(next);
  }
  SortUnique(&qualifying_union);

  // Merge pieces with no relevant member into the remainder (SPLITNODE*
  // lines 11-19). As in MkIndex::SplitCover, an irrelevant member of a
  // mixed piece stays at the new similarity only when all its parents lie
  // in the qualifying parents' extents (which makes it provably
  // ci-bisimilar to the relevant members); otherwise it joins the
  // remainder.
  std::vector<IndexGraph::Part> parts;
  std::vector<NodeId> remainder;
  auto provably_bisimilar = [&](NodeId m) {
    for (NodeId p : comp.data().parents(m)) {
      if (!std::binary_search(qualifying_union.begin(),
                              qualifying_union.end(), p)) {
        return false;
      }
    }
    return true;
  };
  for (auto& piece : pieces) {
    if (!Overlaps(piece, relevant_here)) {
      remainder.insert(remainder.end(), piece.begin(), piece.end());
      continue;
    }
    std::vector<NodeId> keep;
    for (NodeId m : piece) {
      if (provably_bisimilar(m)) {
        keep.push_back(m);
      } else {
        remainder.push_back(m);
      }
    }
    if (!keep.empty()) {
      parts.push_back(IndexGraph::Part{std::move(keep), ci});
    }
  }
  if (!remainder.empty()) {
    SortUnique(&remainder);
    parts.push_back(IndexGraph::Part{std::move(remainder), kold});
  }
  SplitAndPropagate(ci, v, std::move(parts));
}

void MStarIndex::SplitAndPropagate(int ci, IndexNodeId v,
                                   std::vector<IndexGraph::Part> parts) {
  Component& comp = components_[ci];
  const IndexNodeId sup = comp.supernode[v];
  const std::vector<NodeId> affected = comp.graph.node(v).extent.Materialize();
  std::vector<IndexNodeId> ids =
      comp.graph.ReplaceNode(v, std::move(parts));
  comp.supernode.resize(comp.graph.capacity(), kInvalidIndexNode);
  for (IndexNodeId id : ids) comp.supernode[id] = sup;
  if (static_cast<size_t>(ci) + 1 < components_.size()) {
    CascadeInto(ci + 1, affected);
  }
}

void MStarIndex::CascadeInto(int ci, const std::vector<NodeId>& affected) {
  Component& comp = components_[ci];
  const IndexGraph& prev = components_[ci - 1].graph;

  std::vector<IndexNodeId> touched;
  for (NodeId o : affected) touched.push_back(comp.graph.index_of(o));
  SortUnique(&touched);

  // Group each touched extent by the (new) partition of the previous
  // component. Sorting (supernode, member) pairs reproduces the old
  // std::map grouping exactly — supernodes ascending, each group's members
  // ascending (extents are sorted and each member has one supernode) —
  // without a tree node per member. The regroupings read only disjoint
  // extents and the already-final previous component, so they are
  // precomputed up front and fan out over the pool when large enough; the
  // splits below stay serial.
  std::vector<std::vector<std::pair<IndexNodeId, NodeId>>> owners(
      touched.size());
  auto regroup = [&](size_t lo, size_t hi) {
    for (size_t t = lo; t < hi; ++t) {
      const auto& extent = comp.graph.node(touched[t]).extent;
      auto& pairs = owners[t];
      pairs.reserve(extent.size());
      for (NodeId o : extent) pairs.emplace_back(prev.index_of(o), o);
      std::sort(pairs.begin(), pairs.end());
    }
  };
  if (pool_ != nullptr && pool_->num_threads() > 1 &&
      touched.size() >= kParallelCascadeMinNodes) {
    pool_->ParallelFor(0, touched.size(), 1, regroup);
  } else {
    regroup(0, touched.size());
  }

  bool any_split = false;
  std::vector<NodeId> deeper;
  for (size_t t = 0; t < touched.size(); ++t) {
    const IndexNodeId q = touched[t];
    const auto& pairs = owners[t];
    if (pairs.front().first == pairs.back().first) {
      IndexNodeId sup = pairs.front().first;
      comp.supernode[q] = sup;
      // Property 4: a subnode is at least as refined as its supernode. Its
      // extent is a subset of the supernode's, so inheriting the larger k
      // is sound.
      if (comp.graph.node(q).k < prev.node(sup).k) {
        comp.graph.SetK(q, prev.node(sup).k);
        const auto& extent = comp.graph.node(q).extent;
        deeper.insert(deeper.end(), extent.begin(), extent.end());
        any_split = true;  // k changed; finer components must re-check.
      }
      continue;
    }
    // q now spans several supernodes: split it along them. A piece is both
    // q.k-bisimilar (subset of q) and supernode.k-bisimilar (subset of the
    // supernode), so it soundly records the max of the two.
    any_split = true;
    const auto& extent = comp.graph.node(q).extent;
    deeper.insert(deeper.end(), extent.begin(), extent.end());
    const int32_t qk = comp.graph.node(q).k;
    std::vector<IndexGraph::Part> parts;
    std::vector<IndexNodeId> sups;
    for (size_t i = 0; i < pairs.size();) {
      const IndexNodeId sup_id = pairs[i].first;
      std::vector<NodeId> group;
      for (; i < pairs.size() && pairs[i].first == sup_id; ++i) {
        group.push_back(pairs[i].second);
      }
      parts.push_back(IndexGraph::Part{std::move(group),
                                       std::max(qk, prev.node(sup_id).k)});
      sups.push_back(sup_id);
    }
    std::vector<IndexNodeId> ids =
        comp.graph.ReplaceNode(q, std::move(parts));
    comp.supernode.resize(comp.graph.capacity(), kInvalidIndexNode);
    for (size_t j = 0; j < ids.size(); ++j) comp.supernode[ids[j]] = sups[j];
  }
  if (any_split && static_cast<size_t>(ci) + 1 < components_.size()) {
    SortUnique(&deeper);
    CascadeInto(ci + 1, deeper);
  }
}

bool MStarIndex::NoFalseInstances(const PathExpression& fup) {
  const int32_t len = static_cast<int32_t>(fup.length());
  const size_t ci =
      std::min<size_t>(len, components_.size() - 1);
  IndexGraph& comp = components_[ci].graph;
  for (IndexNodeId v : IndexTargetSet(comp, fup, nullptr)) {
    if (comp.node(v).k < len) return false;
  }
  return true;
}

bool MStarIndex::PromoteStar(int k, const std::vector<NodeId>& extent,
                             const PathExpression& fup) {
  if (NoFalseInstances(fup)) return true;
  if (k <= 0 || extent.empty()) return false;
  IndexGraph& comp = components_[k].graph;

  auto under_refined_covers = [&]() {
    std::vector<IndexNodeId> covers;
    for (NodeId o : extent) covers.push_back(comp.index_of(o));
    SortUnique(&covers);
    std::erase_if(covers, [&](IndexNodeId v) {
      return comp.node(v).k >= k;
    });
    return covers;
  };

  std::vector<IndexNodeId> covers = under_refined_covers();
  if (covers.empty()) return NoFalseInstances(fup);

  std::vector<NodeId> all;
  for (IndexNodeId v : covers) {
    const auto& e = comp.node(v).extent;
    all.insert(all.end(), e.begin(), e.end());
  }
  SortUnique(&all);

  // Recurse on all predecessors (PROMOTE* promotes all data nodes).
  if (PromoteStar(k - 1, comp.Pred(all), fup)) return true;

  // Split ancestor supernodes coarse-to-fine by *all* parents of the
  // supernode in the previous component; long-jump out as soon as no
  // false instance of the FUP remains.
  for (int i = 1; i <= k; ++i) {
    while (true) {
      IndexGraph& ci_graph = components_[i].graph;
      const IndexGraph& prev = components_[i - 1].graph;
      IndexNodeId p = kInvalidIndexNode;
      for (NodeId o : all) {
        IndexNodeId cand = ci_graph.index_of(o);
        if (ci_graph.node(cand).k < i) {
          p = cand;
          break;
        }
      }
      if (p == kInvalidIndexNode) break;

      IndexNodeId sup = prev.index_of(ci_graph.node(p).extent.front());
      const std::vector<IndexNodeId> sup_parents = prev.node(sup).parents;
      std::vector<std::vector<NodeId>> pieces = {
          ci_graph.node(p).extent.Materialize()};
      for (IndexNodeId u : sup_parents) {
        std::vector<NodeId> succ = prev.Succ(prev.node(u).extent);
        std::vector<std::vector<NodeId>> next;
        for (const auto& w : pieces) {
          std::vector<NodeId> in = Intersect(w, succ);
          std::vector<NodeId> out = Difference(w, succ);
          if (!in.empty()) next.push_back(std::move(in));
          if (!out.empty()) next.push_back(std::move(out));
        }
        pieces.swap(next);
      }
      std::vector<IndexGraph::Part> parts;
      for (auto& piece : pieces) {
        parts.push_back(IndexGraph::Part{std::move(piece), i});
      }
      SplitAndPropagate(i, p, std::move(parts));
      if (NoFalseInstances(fup)) return true;
    }
  }
  return NoFalseInstances(fup);
}

QueryResult MStarIndex::QueryNaive(const PathExpression& path) {
  return QueryNaive(path, &evaluator_);
}

QueryResult MStarIndex::QueryNaive(const PathExpression& path,
                                   DataEvaluator* validator) const {
  const size_t ci = std::min(path.length(), components_.size() - 1);
  obs::CountComponentTouched(ci);
  return AnswerOnIndex(components_[ci].graph, path, validator);
}

QueryResult MStarIndex::QueryTopDown(const PathExpression& path) {
  return QueryTopDown(path, &evaluator_);
}

QueryResult MStarIndex::QueryTopDown(const PathExpression& path,
                                     DataEvaluator* validator) const {
  // Descendant axes need closure evaluation; the naive strategy's
  // AnswerOnIndex implements it.
  if (path.HasDescendantAxis()) return QueryNaive(path, validator);
  QueryResult result;
  const size_t finest = components_.size() - 1;

  // Level 0 in I0.
  std::vector<IndexNodeId> q;
  {
    const IndexGraph& c0 = components_[0].graph;
    if (path.anchored()) {
      IndexNodeId root_node = c0.index_of(data_.root());
      if (path.StepMatches(0, c0.node(root_node).label)) {
        q.push_back(root_node);
      }
    } else {
      for (IndexNodeId v = 0; v < c0.capacity(); ++v) {
        if (c0.alive(v) && path.StepMatches(0, c0.node(v).label)) {
          q.push_back(v);
        }
      }
    }
    result.stats.index_nodes_visited += q.size();
  }
  obs::CountComponentTouched(0);

  size_t current_component = 0;
  for (size_t step = 1; step < path.num_steps() && !q.empty(); ++step) {
    const size_t ci = std::min(step, finest);
    const IndexGraph& comp = components_[ci].graph;
    obs::CountComponentTouched(ci);

    // QUERYTOPDOWN line 3: descend to the subnodes in the next component.
    std::vector<IndexNodeId> s;
    if (ci != current_component) {
      const IndexGraph& prev_comp = components_[current_component].graph;
      for (IndexNodeId u : q) {
        obs::CountExtentScan(prev_comp.node(u).extent.size());
        for (NodeId o : prev_comp.node(u).extent) {
          s.push_back(comp.index_of(o));
        }
      }
      SortUnique(&s);
      result.stats.index_nodes_visited += s.size();
      current_component = ci;
    } else {
      s = std::move(q);
    }

    // QUERYTOPDOWN line 4: one forward step within component ci.
    std::vector<IndexNodeId> next;
    std::vector<char> seen(comp.capacity(), 0);
    for (IndexNodeId u : s) {
      for (IndexNodeId v : comp.node(u).children) {
        if (path.StepMatches(step, comp.node(v).label) && !seen[v]) {
          seen[v] = 1;
          next.push_back(v);
        }
      }
    }
    result.stats.index_nodes_visited += next.size();
    q = std::move(next);
  }

  // Lines 5-12: collect extents, validating under-refined nodes.
  SortUnique(&q);
  result.target = q;
  const IndexGraph& comp = components_[current_component].graph;
  const int32_t needed = static_cast<int32_t>(path.length());
  for (IndexNodeId v : q) {
    const IndexGraph::Node& node = comp.node(v);
    obs::CountExtentScan(node.extent.size());
    if (node.k >= needed && !path.anchored()) {
      node.extent.AppendTo(&result.answer);
    } else {
      result.precise = false;
      for (NodeId o : node.extent) {
        if (validator->HasIncomingPath(
                o, path, &result.stats.data_nodes_validated)) {
          result.answer.push_back(o);
        }
      }
    }
  }
  std::sort(result.answer.begin(), result.answer.end());
  return result;
}

QueryResult MStarIndex::QueryWithPrefilter(const PathExpression& path,
                                           size_t sub_begin,
                                           size_t sub_end) {
  return QueryWithPrefilter(path, sub_begin, sub_end, &evaluator_);
}

QueryResult MStarIndex::QueryWithPrefilter(const PathExpression& path,
                                           size_t sub_begin, size_t sub_end,
                                           DataEvaluator* validator) const {
  if (path.HasDescendantAxis()) return QueryNaive(path, validator);
  assert(sub_begin <= sub_end && sub_end < path.num_steps());
  QueryResult result;
  const size_t finest = components_.size() - 1;
  const size_t cq = std::min(path.length(), finest);
  const IndexGraph& fine = components_[cq].graph;
  obs::CountComponentTouched(cq);

  // Phase 1: evaluate the subpath in the coarse component of its length.
  PathExpression sub = path.Subpath(sub_begin, sub_end);
  const size_t cs = std::min(sub.length(), finest);
  obs::CountComponentTouched(cs);
  std::vector<IndexNodeId> coarse_hits =
      IndexTargetSet(components_[cs].graph, sub, &result.stats);

  // Map the survivors down to the fine component through the hierarchy
  // (extent containment makes the data-node route exact).
  std::vector<char> candidate(fine.capacity(), 0);
  std::vector<IndexNodeId> fine_candidates;
  for (IndexNodeId u : coarse_hits) {
    obs::CountExtentScan(components_[cs].graph.node(u).extent.size());
    for (NodeId o : components_[cs].graph.node(u).extent) {
      IndexNodeId v = fine.index_of(o);
      if (!candidate[v]) {
        candidate[v] = 1;
        fine_candidates.push_back(v);
      }
    }
  }
  result.stats.index_nodes_visited += fine_candidates.size();

  // Phase 2: evaluate the full path in the fine component, restricting the
  // frontier at step `sub_end` to the pre-filtered candidates.
  std::vector<IndexNodeId> frontier;
  if (path.anchored()) {
    IndexNodeId root_node = fine.index_of(data_.root());
    if (path.StepMatches(0, fine.node(root_node).label)) {
      frontier.push_back(root_node);
    }
  } else {
    for (IndexNodeId v = 0; v < fine.capacity(); ++v) {
      if (fine.alive(v) && path.StepMatches(0, fine.node(v).label)) {
        frontier.push_back(v);
      }
    }
  }
  if (sub_end == 0) {
    std::erase_if(frontier, [&](IndexNodeId v) { return !candidate[v]; });
  }
  result.stats.index_nodes_visited += frontier.size();

  for (size_t step = 1; step < path.num_steps() && !frontier.empty();
       ++step) {
    std::vector<IndexNodeId> next;
    std::vector<char> seen(fine.capacity(), 0);
    for (IndexNodeId u : frontier) {
      for (IndexNodeId v : fine.node(u).children) {
        if (!path.StepMatches(step, fine.node(v).label) || seen[v]) continue;
        if (step == sub_end && !candidate[v]) continue;
        seen[v] = 1;
        next.push_back(v);
      }
    }
    result.stats.index_nodes_visited += next.size();
    frontier = std::move(next);
  }

  SortUnique(&frontier);
  result.target = frontier;
  const int32_t needed = static_cast<int32_t>(path.length());
  for (IndexNodeId v : frontier) {
    const IndexGraph::Node& node = fine.node(v);
    obs::CountExtentScan(node.extent.size());
    if (node.k >= needed && !path.anchored()) {
      node.extent.AppendTo(&result.answer);
    } else {
      result.precise = false;
      for (NodeId o : node.extent) {
        if (validator->HasIncomingPath(
                o, path, &result.stats.data_nodes_validated)) {
          result.answer.push_back(o);
        }
      }
    }
  }
  std::sort(result.answer.begin(), result.answer.end());
  return result;
}

MStarIndex MStarIndex::Clone() const {
  MStarIndex copy(data_);
  copy.components_ = components_;
  return copy;
}

bool MStarIndex::IsDuplicate(size_t i, IndexNodeId v) const {
  const IndexGraph& comp = components_[i].graph;
  const IndexGraph& prev = components_[i - 1].graph;
  IndexNodeId sup = prev.index_of(comp.node(v).extent.front());
  return prev.node(sup).extent.size() == comp.node(v).extent.size();
}

RefinementStats MStarIndex::TotalRefinementStats() const {
  RefinementStats total;
  for (const Component& c : components_) {
    total += c.graph.refinement_stats();
  }
  return total;
}

size_t MStarIndex::PhysicalNodeCount() const {
  size_t count = components_[0].graph.num_nodes();
  for (size_t i = 1; i < components_.size(); ++i) {
    const IndexGraph& comp = components_[i].graph;
    for (IndexNodeId v = 0; v < comp.capacity(); ++v) {
      if (comp.alive(v) && !IsDuplicate(i, v)) ++count;
    }
  }
  return count;
}

size_t MStarIndex::PhysicalEdgeCount() const {
  size_t count = components_[0].graph.num_edges();
  for (size_t i = 1; i < components_.size(); ++i) {
    const IndexGraph& comp = components_[i].graph;
    for (IndexNodeId v = 0; v < comp.capacity(); ++v) {
      if (!comp.alive(v)) continue;
      const bool v_dup = IsDuplicate(i, v);
      // Component edges: skip those whose endpoints are both duplicates
      // (the corresponding edge already exists one component up).
      for (IndexNodeId c : comp.node(v).children) {
        if (!(v_dup && IsDuplicate(i, c))) ++count;
      }
      // Cross-component link from the supernode, skipped for duplicates.
      if (!v_dup) ++count;
    }
  }
  return count;
}

Status MStarIndex::CheckProperties() const { return CheckProperties(nullptr); }

Status MStarIndex::CheckProperties(ThreadPool* pool) const {
  // Each component's checks read only that component and its predecessor,
  // so components verify independently (and in parallel when a pool is
  // given — verification is an O(total extent) walk that would otherwise
  // dominate a parallel build's serial tail).
  auto check_component = [this](size_t i) -> Status {
    const Component& comp = components_[i];
    MRX_RETURN_IF_ERROR(comp.graph.CheckConsistency());
    for (IndexNodeId v = 0; v < comp.graph.capacity(); ++v) {
      if (!comp.graph.alive(v)) continue;
      const IndexGraph::Node& node = comp.graph.node(v);
      if (node.k > static_cast<int32_t>(i)) {
        return Status::Internal("Property 2 violated: k exceeds component");
      }
      if (i == 0) continue;
      const IndexGraph& prev = components_[i - 1].graph;
      IndexNodeId sup = comp.supernode[v];
      if (sup == kInvalidIndexNode || !prev.alive(sup)) {
        return Status::Internal("missing or dead supernode link");
      }
      for (NodeId o : node.extent) {
        if (prev.index_of(o) != sup) {
          return Status::Internal(
              "Property 3 violated: extent not within supernode");
        }
      }
      const IndexGraph::Node& sup_node = prev.node(sup);
      if (node.k < sup_node.k || node.k > sup_node.k + 1) {
        return Status::Internal("Property 4 violated: k bounds");
      }
      if (sup_node.k < static_cast<int32_t>(i) - 1 &&
          node.k != sup_node.k) {
        return Status::Internal("Property 5 violated: k not stable");
      }
    }
    return Status::Ok();
  };

  if (pool == nullptr || components_.size() <= 1) {
    for (size_t i = 0; i < components_.size(); ++i) {
      MRX_RETURN_IF_ERROR(check_component(i));
    }
    return Status::Ok();
  }
  std::vector<Status> results(components_.size());
  pool->ParallelFor(0, components_.size(), 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) results[i] = check_component(i);
  });
  for (Status& status : results) {
    MRX_RETURN_IF_ERROR(std::move(status));
  }
  return Status::Ok();
}

}  // namespace mrx
