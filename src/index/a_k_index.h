#ifndef MRX_INDEX_A_K_INDEX_H_
#define MRX_INDEX_A_K_INDEX_H_

#include <memory>

#include "index/evaluator.h"
#include "index/index_graph.h"
#include "query/data_evaluator.h"

namespace mrx {

/// \brief The A(k)-index of Kaushik et al. (ICDE 2002): the k-bisimulation
/// quotient of the data graph (§2).
///
/// Every index node has local similarity k, so the index is precise for all
/// simple path expressions of length ≤ k and safe for all of them; longer
/// queries are validated against the data graph. The parameter k trades
/// index size for query answering power — the paper's Figures 10-13 sweep
/// k from 0 to 7.
class AkIndex {
 public:
  /// Builds the A(k)-index of `g`; `g` must outlive the index. k ≥ 0.
  AkIndex(const DataGraph& g, int k);

  /// Evaluates `path` with validation of under-refined answers (§3.1).
  QueryResult Query(const PathExpression& path);

  const IndexGraph& graph() const { return graph_; }
  int k() const { return k_; }

 private:
  int k_;
  IndexGraph graph_;
  DataEvaluator validator_;
};

/// \brief The 1-index of Milo & Suciu: the full bisimulation quotient,
/// precise for simple path expressions of every length. Equivalent to the
/// fixpoint of the A(k) family.
class OneIndex {
 public:
  explicit OneIndex(const DataGraph& g);

  QueryResult Query(const PathExpression& path);

  const IndexGraph& graph() const { return graph_; }

 private:
  IndexGraph graph_;
  DataEvaluator validator_;
};

}  // namespace mrx

#endif  // MRX_INDEX_A_K_INDEX_H_
