#ifndef MRX_INDEX_EXTENT_KERNELS_H_
#define MRX_INDEX_EXTENT_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "util/cpu_features.h"

namespace mrx::extent_internal {

/// \file
/// The vectorized primitives under the extent algebra (docs/PERFORMANCE.md
/// "Extent representations"). Every function here dispatches on
/// ActiveSimdLevel() per call — the calls are coarse (a whole 1024-word
/// bitmap chunk, a whole 128-value delta block), so the dispatch branch is
/// noise and forcing a level mid-process (differential tests, MRX_SIMD)
/// takes effect immediately. Each primitive has a portable scalar build
/// that is the semantic definition; the SSE4.2 and AVX2 builds must
/// produce byte-identical outputs (enforced by extent_simd_fuzz_test).

/// out[i] = a[i] & b[i] for n words; returns the popcount of the result.
uint32_t AndWordsPopcount(const uint64_t* a, const uint64_t* b, uint64_t* out,
                          size_t n);

/// out[i] = a[i] & ~b[i] for n words; returns the popcount of the result.
uint32_t AndNotWordsPopcount(const uint64_t* a, const uint64_t* b,
                             uint64_t* out, size_t n);

/// Popcount over n words.
uint32_t PopcountWords(const uint64_t* w, size_t n);

/// Decodes the set-bit positions of words[0..n) (bit b of word w =
/// position w*64+b) into `out`, ascending, as uint16 values. Returns the
/// number written. CONTRACT: `out` must have 8 writable slots beyond the
/// true count — the vectorized emitter stores full 8-lane groups and the
/// caller truncates to the returned count.
uint32_t EmitWordBits16(const uint64_t* words, size_t n, uint16_t* out);

/// Intersects two sorted duplicate-free u16 sets, writing the (ascending)
/// common members into `out` and returning how many were written. The
/// vectorized build compares 8-lane blocks with the SSE4.2 string-compare
/// unit and compacts matches through a shuffle table — the array-chunk
/// analogue of the word kernels above. CONTRACT: `out` needs 8 writable
/// slots beyond the true count (full-vector stores, caller truncates).
/// `out` must not alias `a` or `b`.
uint32_t IntersectU16(const uint16_t* a, size_t na, const uint16_t* b,
                      size_t nb, uint16_t* out);

/// In-place inclusive prefix sum: v[i] += v[i-1] (+ carry_in for v[0]).
void PrefixSumU32(uint32_t* v, size_t n, uint32_t carry_in);

/// Extracts `count` consecutive `bits`-wide fields starting at field index
/// `from` of the little-endian bit-packed stream `packed`, writing
/// (field + add) into out. Scalar rolling-window extraction (bit-packed
/// fields have no aligned SIMD form worth the shuffle tables at these
/// widths); the vectorized half of delta decode is the prefix sum above.
/// bits must be in [1, 32].
void UnpackFieldsU32(const uint64_t* packed, uint8_t bits, size_t from,
                     size_t count, uint32_t add, uint32_t* out);

}  // namespace mrx::extent_internal

#endif  // MRX_INDEX_EXTENT_KERNELS_H_
