#ifndef MRX_INDEX_INDEX_GRAPH_H_
#define MRX_INDEX_INDEX_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/data_graph.h"
#include "index/extent.h"
#include "util/status.h"

namespace mrx {

/// Dense identifier of an index node (an equivalence class of data nodes).
using IndexNodeId = uint32_t;

/// Sentinel for "no index node".
inline constexpr IndexNodeId kInvalidIndexNode = static_cast<IndexNodeId>(-1);

/// \brief Reorganization-effort counters maintained by IndexGraph: how
/// much splitting work refinement performed. The adaptive indexes expose
/// them so experiments can weigh query savings against refinement cost.
struct RefinementStats {
  uint64_t splits = 0;          ///< ReplaceNode calls that split a node.
  uint64_t nodes_created = 0;   ///< New index nodes created by splits.
  uint64_t extent_moves = 0;    ///< Data nodes re-homed across splits.

  RefinementStats& operator+=(const RefinementStats& o) {
    splits += o.splits;
    nodes_created += o.nodes_created;
    extent_moves += o.extent_moves;
    return *this;
  }
};

/// \brief The shared structural-index representation used by the A(k),
/// D(k), M(k) indexes and by each component of the M*(k) index.
///
/// An IndexGraph is a labeled directed graph over index nodes, each holding
/// an *extent* (the set of data nodes it stands for), a label, and a local
/// similarity value `k` (paper §2/§3). It maintains the paper's structural
/// properties mechanically:
///
///  - extents of alive nodes partition the data nodes (Property 1's carrier);
///  - there is an index edge (u, v) iff some data edge crosses the extents
///    (Property 2) — ReplaceNode rebuilds adjacency from the data graph;
///  - `k` values are whatever the owning index algorithm assigns; the
///    *semantic* guarantees (extents k-bisimilar, Property 3) are the
///    algorithm's responsibility and are verified in the test suite.
///
/// Node ids are stable; splitting marks the old node dead and appends new
/// nodes. Dead nodes stay as tombstones (cheap, and keeps outstanding ids
/// harmless); all accessors that enumerate skip them.
class IndexGraph {
 public:
  struct Node {
    LabelId label = 0;
    int32_t k = 0;
    /// The node's data-node set, normalized into a (possibly compressed)
    /// representation on assignment — see index/extent.h.
    Extent extent;
    std::vector<IndexNodeId> parents;   // sorted unique, alive ids
    std::vector<IndexNodeId> children;  // sorted unique, alive ids
    bool alive = true;
  };

  /// One piece of a node split: the new extent and its local similarity.
  /// Parts stay plain vectors — split kernels assemble them element by
  /// element; they are sealed into Extents when ReplaceNode installs them.
  struct Part {
    std::vector<NodeId> extent;
    int32_t k = 0;
  };

  /// The A(0) partition: one index node per label occurring in `g`, k = 0.
  static IndexGraph LabelPartition(const DataGraph& g);

  /// Builds an index graph from an arbitrary partition. `block_of[n]` is
  /// the block of data node n, in [0, num_blocks); `block_k[b]` the local
  /// similarity to record for block b. Every block must be non-empty and
  /// label-uniform (callers produce refinements of the label partition).
  static IndexGraph FromPartition(const DataGraph& g,
                                  const std::vector<uint32_t>& block_of,
                                  uint32_t num_blocks,
                                  const std::vector<int32_t>& block_k);

  IndexGraph(const IndexGraph&) = default;
  IndexGraph& operator=(const IndexGraph&) = default;
  IndexGraph(IndexGraph&&) = default;
  IndexGraph& operator=(IndexGraph&&) = default;

  const DataGraph& data() const { return *graph_; }

  /// Upper bound on node ids (including tombstones).
  size_t capacity() const { return nodes_.size(); }

  bool alive(IndexNodeId v) const { return nodes_[v].alive; }
  const Node& node(IndexNodeId v) const { return nodes_[v]; }

  /// The index node whose extent contains data node `o`.
  IndexNodeId index_of(NodeId o) const { return node_of_[o]; }

  /// Number of alive index nodes — the paper's "number of index nodes".
  size_t num_nodes() const { return num_alive_; }

  /// Number of index edges between alive nodes — the paper's "number of
  /// index edges". Computed on demand.
  size_t num_edges() const;

  /// All alive node ids, ascending.
  std::vector<IndexNodeId> AliveNodes() const;

  /// Sets the local similarity of `v`.
  void SetK(IndexNodeId v, int32_t k) { nodes_[v].k = k; }

  /// Replaces alive node `v` by `parts`. Part extents must be non-empty,
  /// pairwise disjoint, and cover v's extent exactly (checked with
  /// assertions in debug builds). Adjacency of the new nodes and of their
  /// neighbors is rebuilt from the data graph so Property 2 keeps holding.
  /// Passing a single part effectively relabels v's similarity under a new
  /// id. Returns the new node ids in part order.
  std::vector<IndexNodeId> ReplaceNode(IndexNodeId v,
                                       std::vector<Part> parts);

  /// The paper's Succ(s): all data nodes with a parent in `s`; sorted.
  /// `s` must be sorted. The Extent overload decodes on the fly (split
  /// kernels pass index-node extents directly).
  std::vector<NodeId> Succ(const std::vector<NodeId>& s) const;
  std::vector<NodeId> Succ(const Extent& s) const;

  /// The paper's Pred(s): all data nodes with a child in `s`; sorted.
  std::vector<NodeId> Pred(const std::vector<NodeId>& s) const;
  std::vector<NodeId> Pred(const Extent& s) const;

  /// Structural self-check used by tests and debugging: extents partition
  /// the data nodes, node_of is consistent, labels are uniform within
  /// extents, adjacency matches Property 2 exactly and is symmetric.
  Status CheckConsistency() const;

  /// Multi-line dump ("id[label,k]{extent} -> children") for debugging.
  std::string DebugString() const;

  /// Cumulative reorganization effort of all ReplaceNode calls.
  const RefinementStats& refinement_stats() const {
    return refinement_stats_;
  }

 private:
  IndexGraph() = default;

  /// Recomputes children/parents of `v` from the data graph. Does not
  /// touch other nodes' lists.
  void ComputeAdjacency(IndexNodeId v);

  const DataGraph* graph_ = nullptr;
  std::vector<Node> nodes_;
  std::vector<IndexNodeId> node_of_;  // per data node
  size_t num_alive_ = 0;
  RefinementStats refinement_stats_;
};

}  // namespace mrx

#endif  // MRX_INDEX_INDEX_GRAPH_H_
