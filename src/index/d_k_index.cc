#include "index/d_k_index.h"

#include <algorithm>
#include <unordered_set>

#include "index/bisimulation.h"
#include "index/extent_ops.h"

namespace mrx {

std::vector<int32_t> ComputeDkLabelRequirements(
    const DataGraph& g, const std::vector<PathExpression>& fups) {
  const size_t num_labels = g.symbols().size();
  std::vector<int32_t> kreq(num_labels, 0);

  for (const PathExpression& fup : fups) {
    if (fup.HasDescendantAxis()) continue;
    const int32_t len = static_cast<int32_t>(fup.length());
    LabelId target = fup.label(fup.num_steps() - 1);
    if (target == kUnknownLabel) continue;
    if (target == kWildcardLabel) {
      // A wildcard target touches every label; be conservative.
      for (LabelId l = 0; l < num_labels; ++l) {
        kreq[l] = std::max(kreq[l], len);
      }
      continue;
    }
    kreq[target] = std::max(kreq[target], len);
  }

  // Propagate the D(k) constraint over the *label* adjacency: for every
  // data edge (u, v), require kreq[label(u)] ≥ kreq[label(v)] - 1. This is
  // exactly what makes D(k)-construct refine every index node with a given
  // label alike (the paper's "over-refinement of irrelevant index nodes").
  std::vector<std::pair<LabelId, LabelId>> label_edges;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.children(u)) {
      label_edges.emplace_back(g.label(u), g.label(v));
    }
  }
  std::sort(label_edges.begin(), label_edges.end());
  label_edges.erase(std::unique(label_edges.begin(), label_edges.end()),
                    label_edges.end());

  bool changed = true;
  while (changed) {
    changed = false;
    for (auto [lu, lv] : label_edges) {
      if (kreq[lu] < kreq[lv] - 1) {
        kreq[lu] = kreq[lv] - 1;
        changed = true;
      }
    }
  }
  return kreq;
}

DkIndex DkIndex::Construct(const DataGraph& g,
                           const std::vector<PathExpression>& fups) {
  std::vector<int32_t> kreq = ComputeDkLabelRequirements(g, fups);
  BisimulationPartition part = ComputeDkConstructPartition(g, kreq);

  // Each block's recorded similarity is its label's requirement (all nodes
  // of a label share one k in D(k)-construct). If the partition reached its
  // fixpoint before a label's requirement, the blocks are in fact fully
  // bisimilar, so the recorded value remains sound.
  std::vector<int32_t> block_k(part.num_blocks, 0);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    block_k[part.block_of[n]] = kreq[g.label(n)];
  }
  return DkIndex(g, IndexGraph::FromPartition(g, part.block_of,
                                              part.num_blocks, block_k));
}

DkIndex::DkIndex(const DataGraph& g)
    : graph_(IndexGraph::LabelPartition(g)), validator_(g) {}

DkIndex::DkIndex(const DataGraph& g, IndexGraph graph)
    : graph_(std::move(graph)), validator_(g) {}

void DkIndex::Promote(const PathExpression& fup) {
  const int32_t len = static_cast<int32_t>(fup.length());
  if (len == 0 || fup.HasDescendantAxis()) return;
  // PROMOTE is invoked on every index node reachable by the FUP that lacks
  // the required similarity; repeat until the target set is fully promoted
  // (splits can surface new under-refined target nodes).
  while (true) {
    std::vector<IndexNodeId> targets = IndexTargetSet(graph_, fup, nullptr);
    std::vector<NodeId> pending;
    for (IndexNodeId v : targets) {
      if (graph_.node(v).k < len) {
        const auto& extent = graph_.node(v).extent;
        pending.insert(pending.end(), extent.begin(), extent.end());
      }
    }
    if (pending.empty()) return;
    std::sort(pending.begin(), pending.end());
    PromoteExtent(pending, len);
  }
}

void DkIndex::PromoteExtent(const std::vector<NodeId>& extent, int32_t kv) {
  if (kv <= 0 || extent.empty()) return;

  // Index nodes currently holding `extent` that lack similarity kv.
  auto under_refined_covers = [&]() {
    std::vector<IndexNodeId> covers;
    for (NodeId o : extent) covers.push_back(graph_.index_of(o));
    std::sort(covers.begin(), covers.end());
    covers.erase(std::unique(covers.begin(), covers.end()), covers.end());
    std::erase_if(covers,
                  [&](IndexNodeId v) { return graph_.node(v).k >= kv; });
    return covers;
  };

  std::vector<IndexNodeId> covers = under_refined_covers();
  if (covers.empty()) return;

  // PROMOTE lines 3-4: recursively promote all parents to kv - 1. The
  // parents of the covers are exactly the index nodes containing a data
  // parent of a cover extent, so one extent-level recursion covers them
  // all (and stays correct if a cyclic recursion splits a cover).
  std::vector<NodeId> parent_extent;
  for (IndexNodeId v : covers) {
    for (NodeId o : graph_.node(v).extent) {
      auto ps = graph_.data().parents(o);
      parent_extent.insert(parent_extent.end(), ps.begin(), ps.end());
    }
  }
  std::sort(parent_extent.begin(), parent_extent.end());
  parent_extent.erase(
      std::unique(parent_extent.begin(), parent_extent.end()),
      parent_extent.end());
  PromoteExtent(parent_extent, kv - 1);

  // PROMOTE lines 5-6: split each cover by Succ of each current parent's
  // extent. Note the deliberate over-refinement: parents promoted beyond
  // kv - 1 by earlier FUPs ("overqualified parents") split the cover more
  // finely than kv-bisimilarity requires.
  for (IndexNodeId v : under_refined_covers()) {
    std::vector<std::vector<NodeId>> pieces = {
        graph_.node(v).extent.Materialize()};
    const std::vector<IndexNodeId> parents = graph_.node(v).parents;
    for (IndexNodeId u : parents) {
      std::vector<NodeId> succ = graph_.Succ(graph_.node(u).extent);
      std::vector<std::vector<NodeId>> next;
      for (const auto& w : pieces) {
        std::vector<NodeId> in = Intersect(w, succ);
        std::vector<NodeId> out = Difference(w, succ);
        if (!in.empty()) next.push_back(std::move(in));
        if (!out.empty()) next.push_back(std::move(out));
      }
      pieces.swap(next);
    }
    std::vector<IndexGraph::Part> parts;
    parts.reserve(pieces.size());
    for (auto& piece : pieces) {
      parts.push_back(IndexGraph::Part{std::move(piece), kv});
    }
    graph_.ReplaceNode(v, std::move(parts));
  }
}

QueryResult DkIndex::Query(const PathExpression& path) {
  return AnswerOnIndex(graph_, path, &validator_);
}

}  // namespace mrx
