#include "index/strategy_chooser.h"

#include <algorithm>

#include "obs/metrics.h"

namespace mrx {
namespace {

/// Bumps the process-global counter for the chosen strategy, so the
/// kAuto traffic mix is visible in any metrics exposition
/// (mrx_strategy_chosen_<name>_total in the catalog). Handles are resolved
/// once; the hot path is one striped-atomic increment.
void CountChoice(MStarQueryStrategy strategy) {
  using obs::Counter;
  static Counter* const naive =
      obs::MetricsRegistry::Global().GetCounter("mrx_strategy_chosen_naive_total");
  static Counter* const topdown = obs::MetricsRegistry::Global().GetCounter(
      "mrx_strategy_chosen_topdown_total");
  static Counter* const bottomup = obs::MetricsRegistry::Global().GetCounter(
      "mrx_strategy_chosen_bottomup_total");
  static Counter* const hybrid = obs::MetricsRegistry::Global().GetCounter(
      "mrx_strategy_chosen_hybrid_total");
  switch (strategy) {
    case MStarQueryStrategy::kNaive:
      naive->Increment();
      break;
    case MStarQueryStrategy::kTopDown:
      topdown->Increment();
      break;
    case MStarQueryStrategy::kBottomUp:
      bottomup->Increment();
      break;
    case MStarQueryStrategy::kHybrid:
      hybrid->Increment();
      break;
  }
}

// Multiplier on the bottom-up/hybrid downward-check term. The checks walk
// real frontiers, so they cost far more than one node visit per candidate;
// 4 reproduces the empirical ordering on the XMark workloads.
constexpr double kDownCheckPenalty = 4.0;

}  // namespace

const char* StrategyName(MStarQueryStrategy strategy) {
  switch (strategy) {
    case MStarQueryStrategy::kNaive:
      return "naive";
    case MStarQueryStrategy::kTopDown:
      return "topdown";
    case MStarQueryStrategy::kBottomUp:
      return "bottomup";
    case MStarQueryStrategy::kHybrid:
      return "hybrid";
  }
  return "unknown";
}

StrategyChooser::StrategyChooser(const MStarIndex& index) {
  const size_t num_labels = index.component(0).data().symbols().size();
  label_rows_.resize(index.num_components());
  component_sizes_.resize(index.num_components());
  for (size_t ci = 0; ci < index.num_components(); ++ci) {
    label_rows_[ci].assign(num_labels, 0);
    const IndexGraph& comp = index.component(ci);
    component_sizes_[ci] = static_cast<uint32_t>(comp.num_nodes());
    for (IndexNodeId v : comp.AliveNodes()) {
      ++label_rows_[ci][comp.node(v).label];
    }
  }
}

double StrategyChooser::RowSize(size_t ci, LabelId l) const {
  ci = std::min(ci, label_rows_.size() - 1);
  if (l == kWildcardLabel) return component_sizes_[ci];
  if (l == kUnknownLabel || l >= label_rows_[ci].size()) return 0;
  return label_rows_[ci][l];
}

double StrategyChooser::EstimateCost(const PathExpression& path,
                                     MStarQueryStrategy strategy) const {
  const size_t finest = label_rows_.size() - 1;
  const size_t j = path.length();
  switch (strategy) {
    case MStarQueryStrategy::kNaive: {
      // Every frontier lives in the finest needed component.
      const size_t cq = std::min(j, finest);
      double cost = 0;
      for (size_t i = 0; i < path.num_steps(); ++i) {
        cost += RowSize(cq, path.label(i));
      }
      return cost;
    }
    case MStarQueryStrategy::kTopDown: {
      // Prefix i runs in component min(i, finest): coarse rows first.
      double cost = 0;
      for (size_t i = 0; i < path.num_steps(); ++i) {
        cost += RowSize(std::min(i, finest), path.label(i));
        // Descent step: subnodes of the previous frontier.
        if (i > 0 && std::min(i, finest) != std::min(i - 1, finest)) {
          cost += RowSize(std::min(i, finest), path.label(i - 1));
        }
      }
      return cost;
    }
    case MStarQueryStrategy::kBottomUp: {
      // Suffix s runs in component min(s, finest); each candidate pays a
      // downward re-check that itself walks frontiers of the grown suffix,
      // so the penalty is superlinear in the suffix length (empirically
      // the checks dominate; see the strategy ablation bench).
      double cost = 0;
      for (size_t s = 0; s <= j; ++s) {
        const size_t ci = std::min(s, finest);
        double candidates = RowSize(ci, path.label(j - s));
        double check = (1.0 + static_cast<double>(s));
        cost += candidates * (1.0 + kDownCheckPenalty * check * check);
      }
      return cost;
    }
    case MStarQueryStrategy::kHybrid: {
      const size_t meet = path.num_steps() / 2;
      double cost = 0;
      const size_t cq = std::min(j, finest);
      for (size_t i = 0; i <= meet && i < path.num_steps(); ++i) {
        cost += RowSize(cq, path.label(i));
      }
      for (size_t s = 0; s <= j - meet; ++s) {
        const size_t ci = std::min(s, finest);
        double check = (1.0 + static_cast<double>(s));
        cost += RowSize(ci, path.label(j - s)) *
                (1.0 + kDownCheckPenalty * check * check);
      }
      return cost;
    }
  }
  return 0;
}

MStarQueryStrategy StrategyChooser::Choose(
    const PathExpression& path) const {
  if (path.anchored()) return MStarQueryStrategy::kTopDown;
  if (path.HasDescendantAxis()) return MStarQueryStrategy::kNaive;
  MStarQueryStrategy best = MStarQueryStrategy::kNaive;
  double best_cost = EstimateCost(path, best);
  for (MStarQueryStrategy s :
       {MStarQueryStrategy::kTopDown, MStarQueryStrategy::kBottomUp,
        MStarQueryStrategy::kHybrid}) {
    double cost = EstimateCost(path, s);
    if (cost < best_cost) {
      best = s;
      best_cost = cost;
    }
  }
  return best;
}

std::vector<StrategyCandidate> StrategyChooser::ExplainChoice(
    const PathExpression& path) const {
  const MStarQueryStrategy chosen = Choose(path);
  std::vector<StrategyCandidate> table;
  for (MStarQueryStrategy s :
       {MStarQueryStrategy::kNaive, MStarQueryStrategy::kTopDown,
        MStarQueryStrategy::kBottomUp, MStarQueryStrategy::kHybrid}) {
    StrategyCandidate c;
    c.strategy = s;
    c.estimated_cost = EstimateCost(path, s);
    if (path.anchored()) {
      c.eligible = s == MStarQueryStrategy::kTopDown;
    } else if (path.HasDescendantAxis()) {
      c.eligible = s == MStarQueryStrategy::kNaive;
    }
    c.chosen = s == chosen;
    table.push_back(c);
  }
  return table;
}

QueryResult StrategyChooser::Evaluate(const MStarIndex& index,
                                      const PathExpression& path,
                                      DataEvaluator* validator) const {
  return Evaluate(index, path, validator, nullptr);
}

QueryResult StrategyChooser::Evaluate(const MStarIndex& index,
                                      const PathExpression& path,
                                      DataEvaluator* validator,
                                      MStarQueryStrategy* chosen_out) const {
  const MStarQueryStrategy chosen = Choose(path);
  if (chosen_out != nullptr) *chosen_out = chosen;
  CountChoice(chosen);
  switch (chosen) {
    case MStarQueryStrategy::kNaive:
      return index.QueryNaive(path, validator);
    case MStarQueryStrategy::kTopDown:
      return index.QueryTopDown(path, validator);
    case MStarQueryStrategy::kBottomUp:
      return index.QueryBottomUp(path, validator);
    case MStarQueryStrategy::kHybrid:
      return index.QueryHybrid(path, validator);
  }
  return index.QueryTopDown(path, validator);
}

QueryResult StrategyChooser::QueryAuto(MStarIndex& index,
                                       const PathExpression& path) {
  StrategyChooser chooser(index);
  const MStarQueryStrategy chosen = chooser.Choose(path);
  CountChoice(chosen);
  switch (chosen) {
    case MStarQueryStrategy::kNaive:
      return index.QueryNaive(path);
    case MStarQueryStrategy::kTopDown:
      return index.QueryTopDown(path);
    case MStarQueryStrategy::kBottomUp:
      return index.QueryBottomUp(path);
    case MStarQueryStrategy::kHybrid:
      return index.QueryHybrid(path);
  }
  return index.QueryTopDown(path);
}

}  // namespace mrx
