#ifndef MRX_INDEX_UD_KL_INDEX_H_
#define MRX_INDEX_UD_KL_INDEX_H_

#include "index/bisimulation.h"
#include "index/evaluator.h"
#include "index/index_graph.h"
#include "query/data_evaluator.h"

namespace mrx {

/// \brief The UD(k,l)-index of Wu et al. (WAIM 2003), the paper's §2
/// "other indexes" baseline: extends the A(k)-index's local (upward)
/// bisimilarity with *downward* bisimilarity over outgoing paths.
///
/// Two data nodes share an index node iff they are k-bisimilar over
/// incoming paths (the A(k) relation) *and* l-bisimilar over outgoing
/// paths (the dual relation over children). The partition is therefore the
/// common refinement of the up- and down-quotients; it is at least as fine
/// as A(k), so it retains A(k)'s safety and its precision for simple path
/// expressions of length ≤ k, and it additionally guarantees that all
/// members of an index node have the same outgoing label paths of length
/// ≤ l.
///
/// That downward guarantee is exactly what §4.1 says the M*(k)-index is
/// missing for efficient bottom-up evaluation ("a subnode may have fewer
/// outgoing paths than its supernode"): with l-down-uniform extents, a
/// bottom-up step never needs to re-check the suffix for suffixes of
/// length ≤ l. The test suite verifies the guarantee against an oracle.
class UdklIndex {
 public:
  /// Builds the UD(k,l)-index of `g`; `g` must outlive the index.
  UdklIndex(const DataGraph& g, int k, int l);

  /// Evaluates `path` with validation of under-refined answers (incoming
  /// precision is governed by k, as for the A(k)-index).
  QueryResult Query(const PathExpression& path);

  const IndexGraph& graph() const { return graph_; }
  int k() const { return k_; }
  int l() const { return l_; }

 private:
  int k_;
  int l_;
  IndexGraph graph_;
  DataEvaluator validator_;
};

/// \brief The downward dual of ComputeKBisimulation: partitions by label
/// and, for `l` rounds, by the blocks of *children*. Nodes in one block
/// share all outgoing label paths of length ≤ l. Pass l < 0 for the
/// fixpoint.
BisimulationPartition ComputeDownBisimulation(const DataGraph& g, int l);

/// \brief The UD(k,l) partition: the common refinement of the k-up and
/// l-down bisimulations.
BisimulationPartition ComputeUdKlPartition(const DataGraph& g, int k, int l);

}  // namespace mrx

#endif  // MRX_INDEX_UD_KL_INDEX_H_
