#include "index/twig_eval.h"

#include <algorithm>

namespace mrx {
namespace {

/// The trunk chain as pattern-node pointers, root first.
std::vector<const TwigNode*> TrunkChain(const TwigQuery& twig) {
  std::vector<const TwigNode*> chain;
  const TwigNode* node = &twig.root();
  while (node != nullptr) {
    chain.push_back(node);
    const TwigNode* next = nullptr;
    for (const TwigNode& c : node->children) {
      if (c.trunk) next = &c;
    }
    node = next;
  }
  return chain;
}

/// Existential forward match of predicate `pattern` below `node`
/// (pattern.descendant selects child vs descendant axis). Counts visited
/// data nodes.
bool MatchesPredicate(const DataGraph& g, NodeId node,
                      const TwigNode& pattern, uint64_t* visited);

bool MatchesHere(const DataGraph& g, NodeId node, const TwigNode& pattern,
                 uint64_t* visited) {
  if (pattern.label != kWildcardLabel && pattern.label != g.label(node)) {
    return false;
  }
  for (const TwigNode& c : pattern.children) {
    if (!MatchesPredicate(g, node, c, visited)) return false;
  }
  return true;
}

bool MatchesPredicate(const DataGraph& g, NodeId node,
                      const TwigNode& pattern, uint64_t* visited) {
  if (!pattern.descendant) {
    for (NodeId c : g.children(node)) {
      ++*visited;
      if (MatchesHere(g, c, pattern, visited)) return true;
    }
    return false;
  }
  // Descendant axis: bounded BFS over the closure.
  std::vector<char> seen(g.num_nodes(), 0);
  std::vector<NodeId> work;
  for (NodeId c : g.children(node)) {
    if (!seen[c]) {
      seen[c] = 1;
      work.push_back(c);
    }
  }
  for (size_t i = 0; i < work.size(); ++i) {
    ++*visited;
    if (MatchesHere(g, work[i], pattern, visited)) return true;
    for (NodeId c : g.children(work[i])) {
      if (!seen[c]) {
        seen[c] = 1;
        work.push_back(c);
      }
    }
  }
  return false;
}

/// Backward walk: does some instance of the trunk ending at `node`
/// satisfy every trunk position's predicates (and anchoring)?
bool ValidateTrunkAt(const DataGraph& g, NodeId node,
                     const std::vector<const TwigNode*>& chain, size_t pos,
                     bool anchored, uint64_t* visited) {
  ++*visited;
  if (!MatchesHere(g, node, *chain[pos], visited)) return false;
  if (pos == 0) return !anchored || node == g.root();

  const bool via_descendant = chain[pos]->descendant;
  if (!via_descendant) {
    for (NodeId p : g.parents(node)) {
      if (ValidateTrunkAt(g, p, chain, pos - 1, anchored, visited)) {
        return true;
      }
    }
    return false;
  }
  // Descendant axis: any proper ancestor may carry the previous step.
  std::vector<char> seen(g.num_nodes(), 0);
  std::vector<NodeId> work;
  for (NodeId p : g.parents(node)) {
    if (!seen[p]) {
      seen[p] = 1;
      work.push_back(p);
    }
  }
  for (size_t i = 0; i < work.size(); ++i) {
    if (ValidateTrunkAt(g, work[i], chain, pos - 1, anchored, visited)) {
      return true;
    }
    for (NodeId p : g.parents(work[i])) {
      if (!seen[p]) {
        seen[p] = 1;
        work.push_back(p);
      }
    }
  }
  return false;
}

}  // namespace

QueryResult EvaluateTwigWithIndex(MStarIndex& index, const TwigQuery& twig,
                                  DataEvaluator& evaluator) {
  (void)evaluator;  // The trunk evaluation validates internally.
  // Phase 1: the index answers the trunk exactly.
  PathExpression trunk = twig.TrunkExpression();
  QueryResult result = index.QueryTopDown(trunk);
  if (!twig.HasPredicates()) return result;

  // Phase 2: validate each trunk candidate's predicates along a backward
  // instance walk.
  const DataGraph& g = index.component(0).data();
  std::vector<const TwigNode*> chain = TrunkChain(twig);
  std::vector<NodeId> answer;
  for (NodeId n : result.answer) {
    if (ValidateTrunkAt(g, n, chain, chain.size() - 1, twig.anchored(),
                        &result.stats.data_nodes_validated)) {
      answer.push_back(n);
    }
  }
  result.answer = std::move(answer);
  result.precise = false;
  std::sort(result.answer.begin(), result.answer.end());
  return result;
}

}  // namespace mrx
