#include "util/string_util.h"

#include <cctype>

namespace mrx {

std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string_view> SplitSkipEmpty(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  for (std::string_view piece : Split(s, sep)) {
    if (!piece.empty()) out.push_back(piece);
  }
  return out;
}

namespace {
template <typename T>
std::string JoinImpl(const std::vector<T>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}
}  // namespace

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  return JoinImpl(pieces, sep);
}

std::string Join(const std::vector<std::string_view>& pieces,
                 std::string_view sep) {
  return JoinImpl(pieces, sep);
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string XmlEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace mrx
