#ifndef MRX_UTIL_TABLE_WRITER_H_
#define MRX_UTIL_TABLE_WRITER_H_

#include <cstdint>
#include <type_traits>
#include <ostream>
#include <string>
#include <vector>

namespace mrx {

/// \brief Accumulates rows of string cells and renders them either as an
/// aligned monospace table (for terminal output of the figure benches) or as
/// CSV (for replotting the paper's figures).
class TableWriter {
 public:
  /// Creates a table with the given column headers.
  explicit TableWriter(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats each cell with Format() below.
  template <typename... Args>
  void AddRowValues(const Args&... args) {
    AddRow({Format(args)...});
  }

  /// Renders an aligned table with a header separator line.
  void RenderText(std::ostream& os) const;

  /// Renders RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  void RenderCsv(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

  /// Formats a value for a cell: doubles with 2 decimal places, integrals
  /// as-is, strings passed through.
  static std::string Format(double v);
  template <typename T>
    requires std::is_integral_v<T>
  static std::string Format(T v) {
    return std::to_string(v);
  }
  static std::string Format(const std::string& v) { return v; }
  static std::string Format(const char* v) { return v; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mrx

#endif  // MRX_UTIL_TABLE_WRITER_H_
