#ifndef MRX_UTIL_LATENCY_HISTOGRAM_H_
#define MRX_UTIL_LATENCY_HISTOGRAM_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace mrx {

/// \brief A fixed-size log-bucketed histogram for latency samples.
///
/// Values (in any unit; the server records nanoseconds) are binned by the
/// bit width of the sample, with each power of two subdivided into
/// `kSubBuckets` linear sub-buckets — the classic HdrHistogram-lite layout.
/// Relative quantile error is bounded by 1/kSubBuckets (~6%), which is
/// plenty for p50/p95/p99 reporting, and Record() is a single array
/// increment so it is cheap enough for per-query instrumentation.
///
/// Not thread-safe; the server keeps one histogram per worker and merges
/// them under the workers' stats mutexes when taking a snapshot.
class LatencyHistogram {
 public:
  static constexpr size_t kSubBucketBits = 4;
  static constexpr size_t kSubBuckets = 1u << kSubBucketBits;  // 16
  // Magnitudes run 0..(64 - kSubBucketBits) inclusive: a 64-bit value has
  // bit_width 64 and lands in magnitude 64 - kSubBucketBits.
  static constexpr size_t kMagnitudes = 64 - kSubBucketBits + 1;
  static constexpr size_t kNumBuckets = kMagnitudes * kSubBuckets;

  void Record(uint64_t value);

  /// The value below which `p` percent of recorded samples fall.
  /// Returns 0 when empty.
  ///
  /// `p` outside [0, 100] is clamped to the nearest bound; a NaN `p` is
  /// treated as 0 (the minimum recorded bucket) rather than producing an
  /// unspecified rank.
  ///
  /// Bias: the result is the *upper bound* of the bucket containing the
  /// rank-`p` sample (capped at max()), so quantiles systematically
  /// over-estimate by up to one bucket width — a relative error bounded by
  /// 1/kSubBuckets (~6%) for values >= kSubBuckets, and exact below that
  /// (magnitude-0 buckets have width 1). The bias is one-sided: reported
  /// quantiles never under-estimate.
  uint64_t ValueAtPercentile(double p) const;

  /// Adds all of `other`'s samples to this histogram.
  void Merge(const LatencyHistogram& other);

  void Reset();

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t max() const { return max_; }

  /// Mean of recorded samples (0 when empty).
  double Mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_;
  }

 private:
  static size_t BucketOf(uint64_t value);
  /// Largest value mapping to bucket `b` (the reported quantile bound).
  static uint64_t BucketUpperBound(size_t b);

  std::array<uint64_t, kNumBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
};

}  // namespace mrx

#endif  // MRX_UTIL_LATENCY_HISTOGRAM_H_
