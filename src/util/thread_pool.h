#ifndef MRX_UTIL_THREAD_POOL_H_
#define MRX_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mrx {

/// \brief A fixed-size worker pool for data-parallel index construction
/// and refinement (docs/PERFORMANCE.md).
///
/// Design constraints, in order:
///  - *Determinism first.* The pool only decides *where* work runs, never
///    what it computes. ParallelFor partitions a range into chunks whose
///    boundaries depend on the range and grain alone — not on the thread
///    count or on scheduling — and ParallelReduce combines per-chunk
///    partials in ascending chunk order on the calling thread, so any
///    reduction (even a non-commutative one) yields the same result at
///    every thread count, including the inline num_threads() == 1 path.
///  - *No exceptions.* Bodies must not throw (the codebase is
///    status-based); a throw escaping a worker terminates, as anywhere
///    else in the process.
///  - *Caller participates.* ParallelFor runs chunks on the calling thread
///    too, so a pool of n serves n-way parallelism with n-1 workers and
///    degrades to plain serial execution (zero synchronization beyond one
///    allocation) when n <= 1.
///
/// One job runs at a time per pool (dispatch is serialized internally);
/// concurrent ParallelFor calls from different threads are safe but
/// queue behind each other. Workers never dispatch jobs themselves, so
/// nesting a ParallelFor inside a pool body deadlocks — don't.
///
/// The pool keeps cumulative Stats (jobs, chunks, busy nanoseconds) that
/// the obs layer exports as gauges (mrx_refine_pool_*, see
/// docs/OBSERVABILITY.md); recording is relaxed-atomic and effectively
/// free next to any chunk worth dispatching.
class ThreadPool {
 public:
  /// Cumulative pool activity since construction. Totals are maintained
  /// with relaxed atomics; a snapshot may miss in-flight chunks, which is
  /// fine for telemetry.
  struct Stats {
    uint64_t jobs = 0;      ///< ParallelFor/ParallelReduce dispatches.
    uint64_t chunks = 0;    ///< Chunk executions across all threads.
    uint64_t busy_ns = 0;   ///< Sum of per-chunk execution wall time.
  };

  /// A pool presenting `num_threads` lanes of parallelism: `num_threads-1`
  /// background workers plus the calling thread. 0 and 1 both mean "no
  /// workers, run inline".
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Lanes of parallelism (workers + caller); at least 1.
  size_t num_threads() const { return workers_.size() + 1; }

  /// Runs `body(chunk_begin, chunk_end)` over a partition of
  /// [begin, end) into chunks of at least `min_grain` elements, on the
  /// workers and the calling thread. Returns when every chunk has
  /// finished. Chunk boundaries are a pure function of (begin, end,
  /// min_grain); distinct chunks never overlap, so bodies may write to
  /// disjoint per-index slots without synchronization.
  void ParallelFor(size_t begin, size_t end, size_t min_grain,
                   const std::function<void(size_t, size_t)>& body);

  /// Deterministic map-reduce: computes `map(chunk_begin, chunk_end)` per
  /// chunk in parallel, then folds the partials into `init` with
  /// `reduce(accumulator, partial)` in ascending chunk order on the
  /// calling thread. Identical results at any thread count.
  template <typename T, typename Map, typename Reduce>
  T ParallelReduce(size_t begin, size_t end, size_t min_grain, T init,
                   const Map& map, const Reduce& reduce) {
    if (end <= begin) return init;
    const size_t chunk = ChunkSize(begin, end, min_grain);
    const size_t num_chunks = (end - begin + chunk - 1) / chunk;
    std::vector<T> partials(num_chunks);
    ParallelFor(0, num_chunks, 1, [&](size_t cb, size_t ce) {
      for (size_t c = cb; c < ce; ++c) {
        const size_t lo = begin + c * chunk;
        const size_t hi = lo + chunk < end ? lo + chunk : end;
        partials[c] = map(lo, hi);
      }
    });
    T acc = std::move(init);
    for (T& partial : partials) acc = reduce(std::move(acc), std::move(partial));
    return acc;
  }

  Stats stats() const;

 private:
  /// Immutable per-dispatch state. Workers hold a shared_ptr while they
  /// execute, so a laggard waking after the job completed only observes an
  /// exhausted cursor — never a recycled body or range.
  struct Job {
    std::function<void(size_t, size_t)> body;
    size_t begin = 0;
    size_t end = 0;
    size_t chunk = 1;
    size_t total_chunks = 0;
    std::atomic<size_t> next{0};       ///< Next chunk index to claim.
    std::atomic<size_t> completed{0};  ///< Chunks fully executed.
  };

  /// Deterministic chunking: aims for enough chunks to balance the pool
  /// without depending on the pool (fixed fan-out), floored at min_grain.
  size_t ChunkSize(size_t begin, size_t end, size_t min_grain) const;

  void WorkerLoop();
  void RunChunks(Job& job);

  std::vector<std::thread> workers_;

  std::mutex mu_;                   ///< Guards job_/stop_ and both CVs.
  std::condition_variable work_cv_;  ///< Wakes workers on a new job.
  std::condition_variable done_cv_;  ///< Wakes the dispatcher on completion.
  std::shared_ptr<Job> job_;         ///< Current job; null when idle.
  uint64_t job_seq_ = 0;             ///< Bumped per dispatch.
  bool stop_ = false;

  std::mutex dispatch_mu_;  ///< Serializes ParallelFor callers.

  std::atomic<uint64_t> stat_jobs_{0};
  std::atomic<uint64_t> stat_chunks_{0};
  std::atomic<uint64_t> stat_busy_ns_{0};
};

}  // namespace mrx

#endif  // MRX_UTIL_THREAD_POOL_H_
