#include "util/cpu_features.h"

#include <atomic>
#include <cstdlib>

namespace mrx {
namespace {

SimdLevel ProbeHardware() {
#if defined(__x86_64__) || defined(_M_X64)
  // __builtin_cpu_supports reads CPUID once per process under the hood
  // (libgcc/compiler-rt cache it); both GCC and Clang provide it.
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAVX2;
  if (__builtin_cpu_supports("sse4.2") && __builtin_cpu_supports("popcnt")) {
    return SimdLevel::kSSE42;
  }
#endif
  return SimdLevel::kScalar;
}

/// The MRX_SIMD cap, resolved once. Unset/unparseable = no cap.
SimdLevel EnvCap() {
  const char* env = std::getenv("MRX_SIMD");
  if (env == nullptr) return SimdLevel::kAVX2;
  const std::optional<SimdLevel> parsed = ParseSimdLevel(env);
  return parsed.value_or(SimdLevel::kAVX2);
}

std::atomic<SimdLevel>& OverrideCap() {
  // Starts at the env cap so MRX_SIMD=scalar affects every kernel call
  // from process start; SetSimdLevel replaces it.
  static std::atomic<SimdLevel> cap{EnvCap()};
  return cap;
}

}  // namespace

SimdLevel DetectedSimdLevel() {
  static const SimdLevel detected = ProbeHardware();
  return detected;
}

SimdLevel ActiveSimdLevel() {
  const SimdLevel cap = OverrideCap().load(std::memory_order_relaxed);
  const SimdLevel detected = DetectedSimdLevel();
  return cap < detected ? cap : detected;
}

void SetSimdLevel(SimdLevel level) {
  OverrideCap().store(level, std::memory_order_relaxed);
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kSSE42: return "sse42";
    case SimdLevel::kAVX2: return "avx2";
  }
  return "?";
}

std::optional<SimdLevel> ParseSimdLevel(std::string_view name) {
  if (name == "scalar") return SimdLevel::kScalar;
  if (name == "sse42") return SimdLevel::kSSE42;
  if (name == "avx2") return SimdLevel::kAVX2;
  if (name == "native") return DetectedSimdLevel();
  return std::nullopt;
}

}  // namespace mrx
