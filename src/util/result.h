#ifndef MRX_UTIL_RESULT_H_
#define MRX_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace mrx {

/// \brief A value-or-Status union, the library's exception-free analogue of
/// `absl::StatusOr<T>`.
///
/// Invariant: exactly one of {value, error status} is present. Accessing
/// `value()` on an error Result aborts in debug builds (assert) and is
/// undefined in release builds; call `ok()` first.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. The status must not be OK:
  /// an OK status carries no value and is normalized to kInternal.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// The error status; OK when a value is present.
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ present.
};

}  // namespace mrx

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error status. `lhs` may declare a new variable.
#define MRX_ASSIGN_OR_RETURN(lhs, expr)          \
  MRX_ASSIGN_OR_RETURN_IMPL_(                    \
      MRX_RESULT_CONCAT_(mrx_result_, __LINE__), lhs, expr)

#define MRX_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define MRX_RESULT_CONCAT_INNER_(a, b) a##b
#define MRX_RESULT_CONCAT_(a, b) MRX_RESULT_CONCAT_INNER_(a, b)

#endif  // MRX_UTIL_RESULT_H_
