#include "util/status.h"

namespace mrx {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s(StatusCodeToString(code_));
  s += ": ";
  s += message_;
  return s;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace mrx
