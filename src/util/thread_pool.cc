#include "util/thread_pool.h"

#include <chrono>

namespace mrx {
namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Fixed dispatch fan-out: chunk boundaries target this many chunks per
/// job regardless of the pool size, so the partition (and everything
/// derived from chunk indices, e.g. ParallelReduce partials) is identical
/// at every thread count. 32 chunks keep an 8-lane pool load-balanced
/// (4 claims per lane) without making chunks so small that the claim
/// atomics show up.
constexpr size_t kTargetChunks = 32;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t workers = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

size_t ThreadPool::ChunkSize(size_t begin, size_t end,
                             size_t min_grain) const {
  const size_t n = end - begin;
  if (min_grain == 0) min_grain = 1;
  const size_t by_fanout = (n + kTargetChunks - 1) / kTargetChunks;
  return by_fanout > min_grain ? by_fanout : min_grain;
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t min_grain,
                             const std::function<void(size_t, size_t)>& body) {
  if (end <= begin) return;
  if (workers_.empty()) {
    // Inline path: one "chunk", no synchronization.
    const uint64_t start = NowNs();
    body(begin, end);
    stat_jobs_.fetch_add(1, std::memory_order_relaxed);
    stat_chunks_.fetch_add(1, std::memory_order_relaxed);
    stat_busy_ns_.fetch_add(NowNs() - start, std::memory_order_relaxed);
    return;
  }

  std::lock_guard<std::mutex> dispatch(dispatch_mu_);
  auto job = std::make_shared<Job>();
  job->body = body;
  job->begin = begin;
  job->end = end;
  job->chunk = ChunkSize(begin, end, min_grain);
  job->total_chunks = (end - begin + job->chunk - 1) / job->chunk;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
    ++job_seq_;
  }
  work_cv_.notify_all();
  stat_jobs_.fetch_add(1, std::memory_order_relaxed);

  RunChunks(*job);

  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return job->completed.load(std::memory_order_acquire) ==
             job->total_chunks;
    });
    // Drop the pool's reference; laggard workers may still hold theirs,
    // but every chunk has run, so they only observe an exhausted cursor.
    if (job_ == job) job_.reset();
  }
}

void ThreadPool::RunChunks(Job& job) {
  for (;;) {
    const size_t c = job.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.total_chunks) return;
    const size_t lo = job.begin + c * job.chunk;
    size_t hi = lo + job.chunk;
    if (hi > job.end) hi = job.end;
    const uint64_t start = NowNs();
    job.body(lo, hi);
    stat_busy_ns_.fetch_add(NowNs() - start, std::memory_order_relaxed);
    stat_chunks_.fetch_add(1, std::memory_order_relaxed);
    if (job.completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job.total_chunks) {
      // Last chunk: wake the dispatcher. Taking mu_ orders the notify
      // after the dispatcher's wait registration.
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_seq = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || job_seq_ != seen_seq; });
      if (stop_) return;
      seen_seq = job_seq_;
      job = job_;  // May be null if the job already completed; loop.
    }
    if (job != nullptr) RunChunks(*job);
  }
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  s.jobs = stat_jobs_.load(std::memory_order_relaxed);
  s.chunks = stat_chunks_.load(std::memory_order_relaxed);
  s.busy_ns = stat_busy_ns_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace mrx
