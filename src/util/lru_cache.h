#ifndef MRX_UTIL_LRU_CACHE_H_
#define MRX_UTIL_LRU_CACHE_H_

#include <cstddef>
#include <list>
#include <unordered_map>
#include <utility>

namespace mrx {

/// \brief A bounded map with least-recently-used eviction.
///
/// Get() and Put() both count as a use and move the entry to the front of
/// the recency order; when an insertion would exceed the capacity the least
/// recently used entry is dropped. Not thread-safe — callers that share an
/// instance across threads must lock around it (the server's answer-cache
/// shards do exactly that).
template <typename K, typename V>
class LruCache {
 public:
  /// A capacity of 0 disables the cache (every Put is a no-op).
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  /// Returns the cached value and marks it most recently used, or nullptr.
  /// The pointer is invalidated by any subsequent Put/Clear.
  const V* Get(const K& key) {
    auto it = map_.find(key);
    if (it == map_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  /// Inserts or overwrites `key`, marking it most recently used; evicts the
  /// least recently used entry if the cache was full. Returns true iff an
  /// entry was evicted to make room (callers use this for eviction
  /// telemetry; overwrites and no-op Puts return false).
  bool Put(K key, V value) {
    if (capacity_ == 0) return false;
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return false;
    }
    bool evicted = false;
    if (map_.size() >= capacity_) {
      map_.erase(order_.back().first);
      order_.pop_back();
      evicted = true;
    }
    order_.emplace_front(std::move(key), std::move(value));
    map_.emplace(order_.front().first, order_.begin());
    return evicted;
  }

  void Clear() {
    map_.clear();
    order_.clear();
  }

  size_t size() const { return map_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  /// Front = most recently used. map_ values point into this list.
  std::list<std::pair<K, V>> order_;
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator> map_;
};

}  // namespace mrx

#endif  // MRX_UTIL_LRU_CACHE_H_
