#include "util/table_writer.h"

#include <cassert>
#include <cstdio>
#include <iomanip>

namespace mrx {

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TableWriter::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TableWriter::RenderText(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      os << (i == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[i]))
         << row[i];
    }
    os << "\n";
  };
  render_row(headers_);
  size_t total = 0;
  for (size_t i = 0; i < widths.size(); ++i) {
    total += widths[i] + (i == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) render_row(row);
}

namespace {
std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}
}  // namespace

void TableWriter::RenderCsv(std::ostream& os) const {
  auto render_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << ",";
      os << CsvEscape(row[i]);
    }
    os << "\n";
  };
  render_row(headers_);
  for (const auto& row : rows_) render_row(row);
}

std::string TableWriter::Format(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}



}  // namespace mrx
