#ifndef MRX_UTIL_CPU_FEATURES_H_
#define MRX_UTIL_CPU_FEATURES_H_

#include <cstdint>
#include <optional>
#include <string_view>

namespace mrx {

/// \file
/// Runtime CPU-feature dispatch for the vectorized extent kernels
/// (docs/PERFORMANCE.md "Extent representations").
///
/// The hybrid-bitmap and delta-stream kernels come in three builds of the
/// same code: a portable scalar fallback, an SSE4.2 tier (hardware POPCNT
/// plus 128-bit word ops), and an AVX2 tier (256-bit word ops). The level
/// is probed once at startup from CPUID, can be *lowered* via the MRX_SIMD
/// environment variable ("scalar" | "sse42" | "avx2" | "native") or
/// SetSimdLevel() — differential tests force scalar and native in turn and
/// assert identical outputs — and can never exceed what the hardware
/// supports, so a forced level is always safe to execute.

/// Dispatch tiers in strictly increasing capability order. Comparing
/// enum values compares capability.
enum class SimdLevel : uint8_t {
  kScalar = 0,  ///< Portable C++; the differential baseline.
  kSSE42 = 1,   ///< 128-bit ops + hardware POPCNT.
  kAVX2 = 2,    ///< 256-bit ops + hardware POPCNT.
};

/// What the hardware supports (CPUID probe, cached after the first call).
SimdLevel DetectedSimdLevel();

/// The level the kernels actually dispatch on: the detected level, capped
/// by any SetSimdLevel() override and by MRX_SIMD (read once, at the first
/// call). Never exceeds DetectedSimdLevel().
SimdLevel ActiveSimdLevel();

/// Caps the dispatch level for the process (clamped to the detected
/// level). Passing the detected level restores full-speed dispatch. Safe
/// to call at any time; the extent kernels re-read the level per call.
void SetSimdLevel(SimdLevel level);

/// "scalar" | "sse42" | "avx2".
const char* SimdLevelName(SimdLevel level);

/// Accepts the names above plus "native" (= the detected level).
std::optional<SimdLevel> ParseSimdLevel(std::string_view name);

}  // namespace mrx

#endif  // MRX_UTIL_CPU_FEATURES_H_
