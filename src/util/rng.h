#ifndef MRX_UTIL_RNG_H_
#define MRX_UTIL_RNG_H_

#include <cassert>
#include <cstdint>
#include <vector>

namespace mrx {

/// \brief SplitMix64: a tiny, fast 64-bit PRNG used to seed Xoshiro256**.
/// Deterministic across platforms — experiments are reproducible bit-for-bit.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// \brief Xoshiro256** by Blackman & Vigna: the project-wide PRNG.
///
/// All randomized components (data generators, workload generator, property
/// tests) take an explicit Rng so every experiment is reproducible from its
/// seed. Satisfies the essentials of UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return Next(); }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be positive. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  uint64_t Below(uint64_t bound) {
    assert(bound > 0);
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  int64_t Range(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    Below(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// True with probability `p` (clamped to [0,1]).
  bool Chance(double p) { return NextDouble() < p; }

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    assert(!v.empty());
    return v[Below(v.size())];
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace mrx

#endif  // MRX_UTIL_RNG_H_
