#ifndef MRX_UTIL_STRING_UTIL_H_
#define MRX_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace mrx {

/// Splits `s` on `sep`, keeping empty pieces ("a//b" -> {"a","","b"}).
std::vector<std::string_view> Split(std::string_view s, char sep);

/// Splits `s` on `sep`, dropping empty pieces.
std::vector<std::string_view> SplitSkipEmpty(std::string_view s, char sep);

/// Joins `pieces` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);
std::string Join(const std::vector<std::string_view>& pieces,
                 std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// True if `s` begins with / ends with the given prefix / suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// ASCII-only lowercase copy.
std::string ToLowerAscii(std::string_view s);

/// Escapes &, <, >, ", ' into XML character entities.
std::string XmlEscape(std::string_view s);

}  // namespace mrx

#endif  // MRX_UTIL_STRING_UTIL_H_
