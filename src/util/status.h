#ifndef MRX_UTIL_STATUS_H_
#define MRX_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace mrx {

/// Error category for a Status. Mirrors the small set of failure modes the
/// library can produce; the library does not throw exceptions on these paths.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed something malformed (bad query, ...).
  kParseError,        ///< XML/DTD/path text could not be parsed.
  kNotFound,          ///< A referenced entity (label, ID, file) is missing.
  kOutOfRange,        ///< A numeric parameter is outside its legal range.
  kFailedPrecondition,///< An invariant required by the call does not hold.
  kUnavailable,       ///< Transient overload (queue full, shutting down);
                      ///< the caller may retry after backing off.
  kInternal,          ///< A bug in the library itself.
};

/// \brief Human-readable name of a StatusCode, e.g. "ParseError".
std::string_view StatusCodeToString(StatusCode code);

/// \brief A lightweight success-or-error value, used instead of exceptions
/// on all library paths (per the project style rules).
///
/// A Status is cheap to copy in the success case (no allocation) and carries
/// a code plus a free-form message in the failure case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. A code of kOk with
  /// a non-empty message is normalized to a plain OK status.
  Status(StatusCode code, std::string message)
      : code_(code), message_(code == StatusCode::kOk ? std::string()
                                                      : std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace mrx

/// Propagates a non-OK Status to the caller; evaluates `expr` exactly once.
#define MRX_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::mrx::Status mrx_status_ = (expr);          \
    if (!mrx_status_.ok()) return mrx_status_;   \
  } while (0)

#endif  // MRX_UTIL_STATUS_H_
