#include "util/latency_histogram.h"

#include <algorithm>
#include <bit>

namespace mrx {

size_t LatencyHistogram::BucketOf(uint64_t value) {
  // Values below kSubBuckets land in magnitude 0, where the sub-buckets
  // are exact (width 1).
  if (value < kSubBuckets) return value;
  const size_t magnitude = std::bit_width(value) - kSubBucketBits;
  const size_t sub = (value >> magnitude) & (kSubBuckets - 1);
  return magnitude * kSubBuckets + sub;
}

uint64_t LatencyHistogram::BucketUpperBound(size_t b) {
  const size_t magnitude = b / kSubBuckets;
  const size_t sub = b % kSubBuckets;
  if (magnitude == 0) return sub;
  // For magnitude m >= 1 the bucket holds values v with
  // bit_width(v) == m + kSubBucketBits and (v >> m) == sub (sub is then in
  // [kSubBuckets/2, kSubBuckets)), i.e. v in [sub<<m, ((sub+1)<<m) - 1].
  return ((static_cast<uint64_t>(sub) + 1) << magnitude) - 1;
}

void LatencyHistogram::Record(uint64_t value) {
  ++buckets_[BucketOf(value)];
  ++count_;
  sum_ += value;
  max_ = std::max(max_, value);
}

uint64_t LatencyHistogram::ValueAtPercentile(double p) const {
  if (count_ == 0) return 0;
  // Clamp out-of-range p; the negated comparison also routes NaN to 0
  // (std::clamp passes NaN through, and a NaN rank would be UB to cast).
  if (!(p >= 0.0)) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Rank of the sample we are after, 1-based, rounded up.
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(p / 100.0 * count_ + 0.5));
  uint64_t seen = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    seen += buckets_[b];
    if (seen >= rank) return std::min(BucketUpperBound(b), max_);
  }
  return max_;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (size_t b = 0; b < kNumBuckets; ++b) buckets_[b] += other.buckets_[b];
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

void LatencyHistogram::Reset() {
  buckets_.fill(0);
  count_ = sum_ = max_ = 0;
}

}  // namespace mrx
