#ifndef MRX_DATAGEN_XMARK_H_
#define MRX_DATAGEN_XMARK_H_

#include <cstdint>
#include <string>

namespace mrx::datagen {

class DocumentSink;

/// Size/shape knobs for the XMark-like generator. The defaults at
/// `scale = 1.0` (see XMarkOptions::Scaled) target the paper's dataset:
/// roughly 120,000 element nodes.
struct XMarkOptions {
  uint64_t seed = 7;

  size_t num_categories = 120;
  size_t num_items = 2600;           // Split across the six regions.
  size_t num_persons = 1500;
  size_t num_open_auctions = 1400;
  size_t num_closed_auctions = 900;

  double mean_bidders_per_auction = 2.0;
  double mean_incategory_per_item = 2.0;
  double mean_mails_per_item = 1.0;
  double mean_watches_per_person = 1.5;
  size_t catgraph_edges = 250;

  /// Returns the default shape multiplied by `scale`. Entity counts are
  /// clamped into [1, 2^31] with the arithmetic done in double space, so
  /// extreme, NaN, or negative scales stay well-defined; mean_* knobs are
  /// clamped into [0, 64].
  static XMarkOptions Scaled(double scale, uint64_t seed = 7);
};

/// \brief From-scratch generator of an XMark-style auction-site document
/// (the XML Benchmark Project schema the paper's first dataset comes from).
///
/// Reproduces the XMark element vocabulary, nesting, and reference
/// topology: site/{regions×6, categories, catgraph, people, open_auctions,
/// closed_auctions}; items referencing categories (`incategory`), auctions
/// referencing items (`itemref`) and persons (`seller`, `bidder/personref`,
/// `buyer`, `annotation/author`), persons watching auctions (`watch`), and
/// a category graph (`edge from/to`). Recursive description markup
/// (parlist/listitem, text with bold/keyword/emph) gives the irregular
/// structure XMark is known for. Text content is filler — structural
/// indexes never look at it.
std::string GenerateXMarkDocument(const XMarkOptions& options = {});

/// Streaming variant: drives `sink` with the document's event stream in a
/// single pass. With an XmlTextSink this reproduces GenerateXMarkDocument's
/// bytes exactly; with a DirectGraphSink the data graph assembles without
/// the serialized document ever existing (the scale tier's path — see
/// docs/PERFORMANCE.md).
void GenerateXMarkDocument(const XMarkOptions& options, DocumentSink* sink);

}  // namespace mrx::datagen

#endif  // MRX_DATAGEN_XMARK_H_
