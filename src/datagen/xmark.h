#ifndef MRX_DATAGEN_XMARK_H_
#define MRX_DATAGEN_XMARK_H_

#include <cstdint>
#include <string>

namespace mrx::datagen {

/// Size/shape knobs for the XMark-like generator. The defaults at
/// `scale = 1.0` (see XMarkOptions::Scaled) target the paper's dataset:
/// roughly 120,000 element nodes.
struct XMarkOptions {
  uint64_t seed = 7;

  size_t num_categories = 120;
  size_t num_items = 2600;           // Split across the six regions.
  size_t num_persons = 1500;
  size_t num_open_auctions = 1400;
  size_t num_closed_auctions = 900;

  double mean_bidders_per_auction = 2.0;
  double mean_incategory_per_item = 2.0;
  double mean_mails_per_item = 1.0;
  double mean_watches_per_person = 1.5;
  size_t catgraph_edges = 250;

  /// Returns the default shape multiplied by `scale` (entity counts only).
  static XMarkOptions Scaled(double scale, uint64_t seed = 7);
};

/// \brief From-scratch generator of an XMark-style auction-site document
/// (the XML Benchmark Project schema the paper's first dataset comes from).
///
/// Reproduces the XMark element vocabulary, nesting, and reference
/// topology: site/{regions×6, categories, catgraph, people, open_auctions,
/// closed_auctions}; items referencing categories (`incategory`), auctions
/// referencing items (`itemref`) and persons (`seller`, `bidder/personref`,
/// `buyer`, `annotation/author`), persons watching auctions (`watch`), and
/// a category graph (`edge from/to`). Recursive description markup
/// (parlist/listitem, text with bold/keyword/emph) gives the irregular
/// structure XMark is known for. Text content is filler — structural
/// indexes never look at it.
std::string GenerateXMarkDocument(const XMarkOptions& options = {});

}  // namespace mrx::datagen

#endif  // MRX_DATAGEN_XMARK_H_
