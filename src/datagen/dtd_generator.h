#ifndef MRX_DATAGEN_DTD_GENERATOR_H_
#define MRX_DATAGEN_DTD_GENERATOR_H_

#include <string>

#include "datagen/dtd.h"
#include "util/result.h"
#include "util/rng.h"

namespace mrx::datagen {

class DocumentSink;

/// Tuning knobs for the random-instance generator, in the spirit of the
/// IBM XML Generator the paper used for its NASA dataset.
struct DtdGeneratorOptions {
  /// Random seed; the same (dtd, options) pair reproduces the same bytes.
  uint64_t seed = 42;

  /// Probability that an optional (`?`) particle is emitted.
  double optional_probability = 0.5;

  /// Mean repetition count of `*` particles (geometric distribution);
  /// `+` uses 1 + the same distribution. Scales document size.
  double star_mean = 2.0;

  /// Hard cap on the number of elements; once reached, the generator
  /// switches to minimal expansions (empty stars, skipped optionals,
  /// min-depth choices) so the document stays well-formed.
  size_t max_elements = 200000;

  /// Size target: repeated (`*`/`+`) particles directly under the document
  /// element keep emitting instances until at least this many elements
  /// exist (the way the IBM XML Generator fills its size budget through
  /// the root's list). 0 disables filling.
  size_t min_elements = 0;

  /// Recursion guard: beyond this depth the generator also switches to
  /// minimal expansions, bounding recursive content models.
  size_t max_depth = 24;

  /// Probability that an #IMPLIED attribute is emitted.
  double implied_attribute_probability = 0.5;

  /// Number of id tokens an IDREFS attribute carries (at least 1).
  size_t idrefs_count = 2;
};

/// \brief Generates a random XML document valid against `dtd` (element
/// nesting and attribute presence; IDREF attributes always reference an ID
/// that exists in the document).
///
/// ID values are `<element>_<counter>`. IDREF/IDREFS values are chosen
/// uniformly among all IDs generated in a first pass and patched in a
/// second pass, so references can point forward as well as backward —
/// yielding the reference-rich, cyclic data graphs the paper's NASA
/// experiments rely on. #PCDATA runs are short pseudo-English words.
///
/// Fails if the DTD references an undeclared element anywhere reachable
/// from the root.
Result<std::string> GenerateDocument(const Dtd& dtd,
                                     const DtdGeneratorOptions& options);

/// Streaming variant: drives `sink` with the document's event stream in a
/// single pass (IDREF/IDREFS tokens are reserved during emission and
/// resolved through DocumentSink::ResolveDeferredToken afterwards). With an
/// XmlTextSink this reproduces the string overload's bytes exactly; with a
/// DirectGraphSink the data graph assembles without the serialized document
/// ever existing.
Status GenerateDocument(const Dtd& dtd, const DtdGeneratorOptions& options,
                        DocumentSink* sink);

}  // namespace mrx::datagen

#endif  // MRX_DATAGEN_DTD_GENERATOR_H_
