#ifndef MRX_DATAGEN_GRAPH_SINK_H_
#define MRX_DATAGEN_GRAPH_SINK_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "datagen/document_sink.h"
#include "graph/streaming_csr_builder.h"
#include "util/result.h"

namespace mrx::datagen {

/// \brief Assembles the data graph directly from a generator's event
/// stream, without ever materializing the serialized document.
///
/// Mirrors xml::GraphBuildingHandler under its default options exactly
/// (element nodes only; the attribute literally named "id" registers its
/// value; every other attribute value is a pending reference, resolved at
/// Finish() — whole value first, then whitespace-split tokens; a duplicate
/// id value is an error). Combined with StreamingCsrBuilder's
/// Build()-equivalent dedup, a streamed graph is byte-identical to
/// generate-string → parse on the same generator options and seed.
///
/// Transient emission state is the open-element stack — O(document depth),
/// not O(document). The pending-reference arena grows with the number of
/// reference attributes (graph-proportional, like the CSR itself); both
/// are exposed for the memory-bound tests.
class DirectGraphSink final : public DocumentSink {
 public:
  void StartTag(std::string_view name) override;
  void Attribute(std::string_view name, std::string_view value) override;
  void DeferredRefAttribute(std::string_view name,
                            size_t token_count) override;
  void FinishStartTag(bool self_close) override;
  void EndTag(std::string_view name) override;
  void Text(std::string_view) override {}  // Structural indexes only.
  void Raw(std::string_view) override {}
  void ResolveDeferredToken(std::string_view value) override;

  /// Resolves pending references and freezes the graph. Fails on duplicate
  /// id values (as the parse path does) or an empty document.
  Result<DataGraph> Finish() &&;

  size_t num_nodes() const { return csr_.num_nodes(); }

  /// High-water mark of the transient emission state (open-element stack),
  /// in bytes. Stays O(fan-out × depth) at any document size.
  size_t peak_transient_bytes() const {
    return peak_depth_ * sizeof(NodeId);
  }

  /// Bytes of pending-reference values awaiting resolution — linear in the
  /// number of reference attributes, never in the document text.
  size_t pending_ref_bytes() const {
    return ref_values_.size() + pending_.size() * sizeof(PendingRef) +
           deferred_owners_.size() * sizeof(NodeId);
  }

 private:
  struct PendingRef {
    NodeId from;
    uint32_t offset;  ///< Into ref_values_.
    uint32_t len;
  };

  void AddPendingRef(NodeId from, std::string_view value);

  StreamingCsrBuilder csr_;
  std::vector<NodeId> stack_;
  size_t peak_depth_ = 0;

  std::unordered_map<std::string, NodeId> ids_;
  bool duplicate_id_ = false;
  std::string duplicate_id_value_;

  std::string ref_values_;  ///< Arena of pending reference values.
  std::vector<PendingRef> pending_;

  /// Owner node of each reserved deferred token, in reservation order.
  std::vector<NodeId> deferred_owners_;
  size_t next_deferred_ = 0;
};

}  // namespace mrx::datagen

#endif  // MRX_DATAGEN_GRAPH_SINK_H_
