#include "datagen/nasa.h"

#include <algorithm>

#include "datagen/dtd.h"
#include "datagen/dtd_generator.h"

namespace mrx::datagen {

const char* NasaDatasetDtd() {
  return R"dtd(
<!-- Transcription of the NASA ADC dataset.dtd shape (see nasa.h). -->
<!ELEMENT datasets (dataset+)>

<!ELEMENT dataset (identifier, title, altname*, reference*, keywords?,
                   descriptions?, tableHead?, tableLinks?, history?,
                   footnotes?, seeAlso?)>
<!ATTLIST dataset id ID #REQUIRED
                  subject CDATA #IMPLIED
                  project (adc | heasarc | ned | simbad) "adc">

<!ELEMENT identifier (#PCDATA)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT altname (#PCDATA)>
<!ATTLIST altname type CDATA #IMPLIED
                  resolvesTo IDREF #IMPLIED>

<!ELEMENT reference (source)>
<!ELEMENT source (journal | proceedings | thesis | communication | other)>

<!ELEMENT journal (title, author+, name?, volume?, pages?, date?)>
<!ELEMENT proceedings (title, author+, name?, place?, date?)>
<!ELEMENT thesis (title, author, institution?, date?)>
<!ELEMENT communication (author+, date?)>
<!ELEMENT other (title?, author*, date?)>

<!ELEMENT author ((initial*, lastname) | corporateName)>
<!ELEMENT initial (#PCDATA)>
<!ELEMENT lastname (#PCDATA)>
<!ELEMENT corporateName (#PCDATA)>
<!ELEMENT institution (name, place?)>
<!ELEMENT place (#PCDATA)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT volume (#PCDATA)>
<!ELEMENT pages (#PCDATA)>
<!ELEMENT date (year, month?, day?)>
<!ELEMENT year (#PCDATA)>
<!ELEMENT month (#PCDATA)>
<!ELEMENT day (#PCDATA)>

<!ELEMENT keywords (keyword+)>
<!ATTLIST keywords parentListURL CDATA #IMPLIED>
<!ELEMENT keyword (#PCDATA)>
<!ATTLIST keyword principal (yes | no) "no"
                  id ID #IMPLIED
                  sameAs IDREF #IMPLIED>

<!ELEMENT descriptions (description+)>
<!ELEMENT description (title?, para+)>
<!ATTLIST description id ID #IMPLIED
                      continues IDREF #IMPLIED>
<!ELEMENT para (#PCDATA | footnote | emph | dataref)*>
<!ELEMENT emph (#PCDATA)>
<!ELEMENT footnote (para+)>
<!ATTLIST footnote marker CDATA #IMPLIED>
<!ELEMENT dataref EMPTY>
<!ATTLIST dataref ref IDREF #REQUIRED>

<!ELEMENT tableHead (tableLinks?, fields, footnotes?)>
<!ATTLIST tableHead rows CDATA #IMPLIED>
<!ELEMENT fields (field+)>
<!ELEMENT field (name, definition?, units?, relatedField?)>
<!ATTLIST field id ID #IMPLIED>
<!ELEMENT definition (para+)>
<!ELEMENT units (#PCDATA)>
<!ELEMENT relatedField EMPTY>
<!ATTLIST relatedField ref IDREF #REQUIRED>

<!ELEMENT tableLinks (tableLink+)>
<!ELEMENT tableLink (title?)>
<!ATTLIST tableLink ref IDREF #REQUIRED>

<!ELEMENT history (ingest?, revisions*)>
<!ELEMENT ingest (creator, date)>
<!ELEMENT creator (author, affiliation?)>
<!ELEMENT affiliation (name, place?)>
<!ELEMENT revisions (revision+)>
<!ELEMENT revision (date, author+, description)>
<!ATTLIST revision basedOn IDREF #IMPLIED>

<!ELEMENT footnotes (footnote+)>

<!ELEMENT seeAlso EMPTY>
<!ATTLIST seeAlso refs IDREFS #REQUIRED>
)dtd";
}

namespace {

DtdGeneratorOptions NasaOptions(double scale, uint64_t seed) {
  DtdGeneratorOptions options;
  options.seed = seed;
  options.star_mean = 1.4;
  options.optional_probability = 0.4;
  options.max_depth = 16;
  const size_t target = std::max<size_t>(
      100, static_cast<size_t>(90000 * std::max(scale, 0.0)));
  options.min_elements = target;
  options.max_elements = target + target / 10;
  options.idrefs_count = 3;
  return options;
}

}  // namespace

Result<std::string> GenerateNasaDocument(double scale, uint64_t seed) {
  MRX_ASSIGN_OR_RETURN(Dtd dtd, Dtd::Parse(NasaDatasetDtd()));
  return GenerateDocument(dtd, NasaOptions(scale, seed));
}

Status GenerateNasaDocument(double scale, uint64_t seed, DocumentSink* sink) {
  MRX_ASSIGN_OR_RETURN(Dtd dtd, Dtd::Parse(NasaDatasetDtd()));
  return GenerateDocument(dtd, NasaOptions(scale, seed), sink);
}

}  // namespace mrx::datagen
