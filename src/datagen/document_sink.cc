#include "datagen/document_sink.h"

namespace mrx::datagen {

void XmlTextSink::DeferredRefAttribute(std::string_view name,
                                       size_t token_count) {
  out_ += ' ';
  out_ += name;
  out_ += "=\"";
  slots_.emplace_back(out_.size(), token_count);
  out_ += kPlaceholder;
  for (size_t i = 1; i < token_count; ++i) {
    out_ += ' ';
    out_ += kPlaceholder;
  }
  out_ += '"';
}

std::string XmlTextSink::TakeDocument() {
  if (slots_.empty()) return std::move(out_);
  // Patch pass: rewrite the document once, substituting the resolved
  // tokens for the placeholders in slot order (exactly the historical
  // PatchIdrefs pass of the DTD generator).
  std::string patched;
  patched.reserve(out_.size());
  size_t prev = 0;
  size_t next_token = 0;
  for (const auto& [pos, count] : slots_) {
    patched.append(out_, prev, pos - prev);
    const size_t placeholder_len = kPlaceholder.size() * count + (count - 1);
    for (size_t i = 0; i < count; ++i) {
      if (i > 0) patched += ' ';
      patched += resolved_[next_token++];
    }
    prev = pos + placeholder_len;
  }
  patched.append(out_, prev, out_.size() - prev);
  out_ = std::move(patched);
  slots_.clear();
  resolved_.clear();
  return std::move(out_);
}

}  // namespace mrx::datagen
