#ifndef MRX_DATAGEN_DOCUMENT_SINK_H_
#define MRX_DATAGEN_DOCUMENT_SINK_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mrx::datagen {

/// \brief Receiver of a generator's document event stream.
///
/// The generators (XMark, DTD-random) drive a sink instead of appending to
/// a string, so the same single pass — with the same RNG draw sequence —
/// can either serialize the document (XmlTextSink, byte-identical to the
/// historical string output) or assemble the data graph directly
/// (DirectGraphSink, never materializing the document). The event grammar
/// mirrors XML serialization:
///
///   StartTag(name) (Attribute | DeferredRefAttribute)* FinishStartTag(sc)
///   ... children events / Text ... EndTag(name)        [unless sc]
///
/// DeferredRefAttribute reserves `token_count` attribute-value tokens whose
/// values are only known after the whole document is emitted (the DTD
/// generator's forward IDREF/IDREFS references). The generator later calls
/// ResolveDeferredToken once per reserved token, in reservation order —
/// keeping the RNG draw order identical between sink kinds.
class DocumentSink {
 public:
  virtual ~DocumentSink() = default;

  /// Opens `<name`; attribute events may follow until FinishStartTag.
  virtual void StartTag(std::string_view name) = 0;

  /// One attribute with a known value: ` name="value"`.
  virtual void Attribute(std::string_view name, std::string_view value) = 0;

  /// One attribute whose `token_count` whitespace-separated value tokens
  /// are supplied later through ResolveDeferredToken.
  virtual void DeferredRefAttribute(std::string_view name,
                                    size_t token_count) = 0;

  /// Closes the open start tag: `>` — or `/>` when `self_close`, which
  /// also ends the element (no EndTag follows).
  virtual void FinishStartTag(bool self_close) = 0;

  /// Emits `</name>`.
  virtual void EndTag(std::string_view name) = 0;

  /// Character data inside the current element. May be called repeatedly
  /// for adjacent runs; sinks must treat consecutive calls as one run.
  virtual void Text(std::string_view text) = 0;

  /// Non-structural document bytes (XML declaration, trailing newline).
  /// Text sinks copy them verbatim; graph sinks ignore them.
  virtual void Raw(std::string_view bytes) = 0;

  /// Supplies the value of the next reserved deferred-reference token
  /// (reservation order: DeferredRefAttribute call order, then token order
  /// within a call).
  virtual void ResolveDeferredToken(std::string_view value) = 0;
};

/// \brief Serializes the event stream into one in-memory XML document —
/// the historical generator output, byte for byte. The small-scale oracle
/// the streamed direct-to-graph path is tested against.
class XmlTextSink final : public DocumentSink {
 public:
  void StartTag(std::string_view name) override {
    out_ += '<';
    out_ += name;
  }
  void Attribute(std::string_view name, std::string_view value) override {
    out_ += ' ';
    out_ += name;
    out_ += "=\"";
    out_ += value;
    out_ += '"';
  }
  void DeferredRefAttribute(std::string_view name,
                            size_t token_count) override;
  void FinishStartTag(bool self_close) override {
    out_ += self_close ? "/>" : ">";
  }
  void EndTag(std::string_view name) override {
    out_ += "</";
    out_ += name;
    out_ += '>';
  }
  void Text(std::string_view text) override { out_ += text; }
  void Raw(std::string_view bytes) override { out_ += bytes; }
  void ResolveDeferredToken(std::string_view value) override {
    resolved_.emplace_back(value);
  }

  /// The serialized document, with every deferred token patched in.
  /// Consumes the sink's buffer.
  std::string TakeDocument();

  /// High-water mark of the serialized buffer: O(document) by design —
  /// the number the memory-bound tests contrast DirectGraphSink against.
  size_t peak_buffered_bytes() const { return out_.capacity(); }

 private:
  static constexpr std::string_view kPlaceholder = "@IDREF@";

  std::string out_;
  std::vector<std::pair<size_t, size_t>> slots_;  ///< (pos, token count).
  std::vector<std::string> resolved_;             ///< Token values, in order.
};

}  // namespace mrx::datagen

#endif  // MRX_DATAGEN_DOCUMENT_SINK_H_
