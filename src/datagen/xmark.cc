#include "datagen/xmark.h"

#include <algorithm>

#include "util/rng.h"

namespace mrx::datagen {
namespace {

constexpr const char* kRegions[] = {"africa",   "asia",    "australia",
                                    "europe",   "namerica", "samerica"};
constexpr size_t kNumRegions = 6;

constexpr const char* kWords[] = {
    "great",   "vintage", "rare",   "classic", "mint",   "signed",
    "antique", "bargain", "superb", "quality", "sturdy", "elegant",
    "gadget",  "widget",  "tool",   "lamp",    "clock",  "atlas",
    "camera",  "guitar",  "stamp",  "coin",    "print",  "chair",
};
constexpr size_t kNumWords = sizeof(kWords) / sizeof(kWords[0]);

constexpr const char* kCities[] = {"Lisbon", "Durham", "Kyoto", "Oslo",
                                   "Quito",  "Accra",  "Perth", "Reno"};
constexpr const char* kCountries[] = {"Portugal", "UnitedStates", "Japan",
                                      "Norway",   "Ecuador",      "Ghana"};

/// Emits the XMark auction-site document.
class XMarkWriter {
 public:
  explicit XMarkWriter(const XMarkOptions& options)
      : options_(options), rng_(options.seed) {
    out_.reserve(1 << 20);
  }

  std::string Run() {
    out_ += "<?xml version=\"1.0\" standalone=\"yes\"?>\n";
    Open("site");
    WriteRegions();
    WriteCategories();
    WriteCatgraph();
    WritePeople();
    WriteOpenAuctions();
    WriteClosedAuctions();
    Close("site");
    out_ += "\n";
    return std::move(out_);
  }

 private:
  // ---- Small emission helpers -------------------------------------------

  void Open(std::string_view tag) {
    out_ += '<';
    out_ += tag;
    out_ += '>';
  }
  void OpenWithId(std::string_view tag, std::string_view id_prefix,
                  size_t n) {
    out_ += '<';
    out_ += tag;
    out_ += " id=\"";
    out_ += id_prefix;
    out_ += std::to_string(n);
    out_ += "\">";
  }
  void Close(std::string_view tag) {
    out_ += "</";
    out_ += tag;
    out_ += '>';
  }
  void EmptyRef(std::string_view tag, std::string_view attr,
                std::string_view id_prefix, size_t n) {
    out_ += '<';
    out_ += tag;
    out_ += ' ';
    out_ += attr;
    out_ += "=\"";
    out_ += id_prefix;
    out_ += std::to_string(n);
    out_ += "\"/>";
  }
  void Leaf(std::string_view tag, std::string_view content) {
    Open(tag);
    out_ += content;
    Close(tag);
  }
  void LeafWords(std::string_view tag, size_t count) {
    Open(tag);
    Words(count);
    Close(tag);
  }

  void Words(size_t count) {
    for (size_t i = 0; i < count; ++i) {
      if (i > 0) out_ += ' ';
      out_ += kWords[rng_.Below(kNumWords)];
    }
  }

  size_t Geometric(double mean) {
    if (mean <= 0) return 0;
    double p = 1.0 / (1.0 + mean);
    size_t n = 0;
    while (!rng_.Chance(p) && n < 32) ++n;
    return n;
  }

  // ---- XMark text markup: text with nested bold/keyword/emph ------------

  /// `text` is mixed content; XMark nests bold/keyword/emph markup inside.
  void WriteText(size_t depth = 0) {
    Open("text");
    Words(2 + rng_.Below(6));
    if (depth < 2) {
      size_t markups = Geometric(0.6);
      for (size_t i = 0; i < markups; ++i) {
        const char* tag =
            (rng_.Below(3) == 0) ? "bold"
                                 : (rng_.Below(2) == 0 ? "keyword" : "emph");
        Open(tag);
        Words(1 + rng_.Below(3));
        // Occasionally nest markup (XMark's parmkup is recursive).
        if (rng_.Chance(0.25)) {
          Open("emph");
          Words(1 + rng_.Below(2));
          Close("emph");
        }
        Close(tag);
        Words(1 + rng_.Below(3));
      }
    }
    Close("text");
  }

  /// description is (text | parlist); parlist/listitem recurse.
  void WriteDescription(size_t depth = 0) {
    Open("description");
    if (depth < 2 && rng_.Chance(0.3)) {
      Open("parlist");
      size_t items = 1 + Geometric(1.0);
      for (size_t i = 0; i < items; ++i) {
        Open("listitem");
        if (depth + 1 < 2 && rng_.Chance(0.25)) {
          // Nested parlist inside a listitem.
          Open("parlist");
          Open("listitem");
          WriteText(depth + 2);
          Close("listitem");
          Close("parlist");
        } else {
          WriteText(depth + 1);
        }
        Close("listitem");
      }
      Close("parlist");
    } else {
      WriteText(depth);
    }
    Close("description");
  }

  // ---- Sections ----------------------------------------------------------

  void WriteRegions() {
    Open("regions");
    for (size_t r = 0; r < kNumRegions; ++r) {
      Open(kRegions[r]);
      // Items are distributed round-robin so every region is populated.
      for (size_t i = r; i < options_.num_items; i += kNumRegions) {
        WriteItem(i);
      }
      Close(kRegions[r]);
    }
    Close("regions");
  }

  void WriteItem(size_t i) {
    OpenWithId("item", "item", i);
    Leaf("location", kCountries[rng_.Below(6)]);
    Leaf("quantity", std::to_string(1 + rng_.Below(5)));
    LeafWords("name", 2);
    Open("payment");
    Words(2);
    Close("payment");
    WriteDescription();
    Open("shipping");
    Words(3);
    Close("shipping");
    size_t cats = 1 + Geometric(options_.mean_incategory_per_item - 1);
    for (size_t c = 0; c < cats; ++c) {
      EmptyRef("incategory", "category", "category",
               rng_.Below(options_.num_categories));
    }
    size_t mails = Geometric(options_.mean_mails_per_item);
    if (mails > 0) {
      Open("mailbox");
      for (size_t m = 0; m < mails; ++m) {
        Open("mail");
        LeafWords("from", 2);
        LeafWords("to", 2);
        WriteDate();
        WriteText();
        Close("mail");
      }
      Close("mailbox");
    }
    Close("item");
  }

  void WriteDate() {
    Open("date");
    out_ += std::to_string(1 + rng_.Below(12));
    out_ += '/';
    out_ += std::to_string(1 + rng_.Below(28));
    out_ += "/200";
    out_ += std::to_string(rng_.Below(4));
    Close("date");
  }

  void WriteCategories() {
    Open("categories");
    for (size_t c = 0; c < options_.num_categories; ++c) {
      OpenWithId("category", "category", c);
      LeafWords("name", 1);
      WriteDescription();
      Close("category");
    }
    Close("categories");
  }

  void WriteCatgraph() {
    Open("catgraph");
    for (size_t e = 0; e < options_.catgraph_edges; ++e) {
      out_ += "<edge from=\"category";
      out_ += std::to_string(rng_.Below(options_.num_categories));
      out_ += "\" to=\"category";
      out_ += std::to_string(rng_.Below(options_.num_categories));
      out_ += "\"/>";
    }
    Close("catgraph");
  }

  void WritePeople() {
    Open("people");
    for (size_t p = 0; p < options_.num_persons; ++p) {
      OpenWithId("person", "person", p);
      LeafWords("name", 2);
      Leaf("emailaddress", "mailto:user" + std::to_string(p) + "@host");
      if (rng_.Chance(0.5)) {
        Leaf("phone", "+1 (" + std::to_string(100 + rng_.Below(900)) + ") " +
                          std::to_string(1000000 + rng_.Below(9000000)));
      }
      if (rng_.Chance(0.5)) {
        Open("address");
        Leaf("street", std::to_string(1 + rng_.Below(99)) + " Main St");
        Leaf("city", kCities[rng_.Below(8)]);
        Leaf("country", kCountries[rng_.Below(6)]);
        if (rng_.Chance(0.3)) LeafWords("province", 1);
        Leaf("zipcode", std::to_string(10000 + rng_.Below(90000)));
        Close("address");
      }
      if (rng_.Chance(0.3)) {
        Leaf("homepage", "http://host/~user" + std::to_string(p));
      }
      if (rng_.Chance(0.4)) {
        Leaf("creditcard", std::to_string(1000 + rng_.Below(9000)) + " " +
                               std::to_string(1000 + rng_.Below(9000)));
      }
      if (rng_.Chance(0.7)) WriteProfile();
      size_t watches = Geometric(options_.mean_watches_per_person);
      if (watches > 0 && options_.num_open_auctions > 0) {
        Open("watches");
        for (size_t w = 0; w < watches; ++w) {
          EmptyRef("watch", "open_auction", "open_auction",
                   rng_.Below(options_.num_open_auctions));
        }
        Close("watches");
      }
      Close("person");
    }
    Close("people");
  }

  void WriteProfile() {
    out_ += "<profile income=\"";
    out_ += std::to_string(20000 + rng_.Below(80000));
    out_ += "\">";
    size_t interests = Geometric(1.2);
    for (size_t i = 0; i < interests; ++i) {
      EmptyRef("interest", "category", "category",
               rng_.Below(options_.num_categories));
    }
    if (rng_.Chance(0.4)) LeafWords("education", 2);
    if (rng_.Chance(0.6)) Leaf("gender", rng_.Chance(0.5) ? "male" : "female");
    Leaf("business", rng_.Chance(0.5) ? "Yes" : "No");
    if (rng_.Chance(0.5)) Leaf("age", std::to_string(18 + rng_.Below(60)));
    Close("profile");
  }

  void WriteOpenAuctions() {
    Open("open_auctions");
    for (size_t a = 0; a < options_.num_open_auctions; ++a) {
      OpenWithId("open_auction", "open_auction", a);
      Leaf("initial", std::to_string(1 + rng_.Below(200)));
      if (rng_.Chance(0.4)) {
        Leaf("reserve", std::to_string(50 + rng_.Below(400)));
      }
      size_t bidders = Geometric(options_.mean_bidders_per_auction);
      for (size_t b = 0; b < bidders; ++b) {
        Open("bidder");
        WriteDate();
        Leaf("time", std::to_string(rng_.Below(24)) + ":" +
                         std::to_string(10 + rng_.Below(50)));
        EmptyRef("personref", "person", "person",
                 rng_.Below(options_.num_persons));
        Leaf("increase", std::to_string(1 + rng_.Below(20)));
        Close("bidder");
      }
      Leaf("current", std::to_string(10 + rng_.Below(500)));
      if (rng_.Chance(0.3)) Leaf("privacy", "Yes");
      EmptyRef("itemref", "item", "item", rng_.Below(options_.num_items));
      EmptyRef("seller", "person", "person", rng_.Below(options_.num_persons));
      WriteAnnotation();
      Leaf("quantity", std::to_string(1 + rng_.Below(5)));
      Leaf("type", rng_.Chance(0.5) ? "Regular" : "Featured");
      Open("interval");
      Open("start");
      out_ += "01/01/2003";
      Close("start");
      Open("end");
      out_ += "12/31/2003";
      Close("end");
      Close("interval");
      Close("open_auction");
    }
    Close("open_auctions");
  }

  void WriteAnnotation() {
    Open("annotation");
    EmptyRef("author", "person", "person", rng_.Below(options_.num_persons));
    WriteDescription();
    LeafWords("happiness", 1);
    Close("annotation");
  }

  void WriteClosedAuctions() {
    Open("closed_auctions");
    for (size_t a = 0; a < options_.num_closed_auctions; ++a) {
      Open("closed_auction");
      EmptyRef("seller", "person", "person", rng_.Below(options_.num_persons));
      EmptyRef("buyer", "person", "person", rng_.Below(options_.num_persons));
      EmptyRef("itemref", "item", "item", rng_.Below(options_.num_items));
      Leaf("price", std::to_string(10 + rng_.Below(900)));
      WriteDate();
      Leaf("quantity", std::to_string(1 + rng_.Below(5)));
      Leaf("type", rng_.Chance(0.5) ? "Regular" : "Featured");
      WriteAnnotation();
      Close("closed_auction");
    }
    Close("closed_auctions");
  }

  XMarkOptions options_;
  Rng rng_;
  std::string out_;
};

}  // namespace

XMarkOptions XMarkOptions::Scaled(double scale, uint64_t seed) {
  XMarkOptions o;
  o.seed = seed;
  auto scaled = [scale](size_t base) {
    return std::max<size_t>(1, static_cast<size_t>(base * scale));
  };
  o.num_categories = scaled(o.num_categories);
  o.num_items = scaled(o.num_items);
  o.num_persons = scaled(o.num_persons);
  o.num_open_auctions = scaled(o.num_open_auctions);
  o.num_closed_auctions = scaled(o.num_closed_auctions);
  o.catgraph_edges = scaled(o.catgraph_edges);
  return o;
}

std::string GenerateXMarkDocument(const XMarkOptions& options) {
  XMarkWriter writer(options);
  return writer.Run();
}

}  // namespace mrx::datagen
