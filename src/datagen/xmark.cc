#include "datagen/xmark.h"

#include <algorithm>
#include <cmath>

#include "datagen/document_sink.h"
#include "util/rng.h"

namespace mrx::datagen {
namespace {

constexpr const char* kRegions[] = {"africa",   "asia",    "australia",
                                    "europe",   "namerica", "samerica"};
constexpr size_t kNumRegions = 6;

constexpr const char* kWords[] = {
    "great",   "vintage", "rare",   "classic", "mint",   "signed",
    "antique", "bargain", "superb", "quality", "sturdy", "elegant",
    "gadget",  "widget",  "tool",   "lamp",    "clock",  "atlas",
    "camera",  "guitar",  "stamp",  "coin",    "print",  "chair",
};
constexpr size_t kNumWords = sizeof(kWords) / sizeof(kWords[0]);

constexpr const char* kCities[] = {"Lisbon", "Durham", "Kyoto", "Oslo",
                                   "Quito",  "Accra",  "Perth", "Reno"};
constexpr const char* kCountries[] = {"Portugal", "UnitedStates", "Japan",
                                      "Norway",   "Ecuador",      "Ghana"};

/// Emits the XMark auction-site document as a sink event stream. One code
/// path serves both outputs: with an XmlTextSink the bytes are the
/// historical document exactly; with a DirectGraphSink the graph assembles
/// without the document ever existing. All RNG draws happen here, in
/// emission order, so the two modes consume the identical draw sequence.
class XMarkWriter {
 public:
  XMarkWriter(const XMarkOptions& options, DocumentSink* sink)
      : options_(options), rng_(options.seed), sink_(sink) {}

  void Run() {
    sink_->Raw("<?xml version=\"1.0\" standalone=\"yes\"?>\n");
    Open("site");
    WriteRegions();
    WriteCategories();
    WriteCatgraph();
    WritePeople();
    WriteOpenAuctions();
    WriteClosedAuctions();
    Close("site");
    sink_->Raw("\n");
  }

 private:
  // ---- Small emission helpers -------------------------------------------

  void Open(std::string_view tag) {
    sink_->StartTag(tag);
    sink_->FinishStartTag(false);
  }
  std::string_view Ref(std::string_view id_prefix, size_t n) {
    scratch_.assign(id_prefix);
    scratch_ += std::to_string(n);
    return scratch_;
  }
  void OpenWithId(std::string_view tag, std::string_view id_prefix,
                  size_t n) {
    sink_->StartTag(tag);
    sink_->Attribute("id", Ref(id_prefix, n));
    sink_->FinishStartTag(false);
  }
  void Close(std::string_view tag) { sink_->EndTag(tag); }
  void EmptyRef(std::string_view tag, std::string_view attr,
                std::string_view id_prefix, size_t n) {
    sink_->StartTag(tag);
    sink_->Attribute(attr, Ref(id_prefix, n));
    sink_->FinishStartTag(true);
  }
  void Leaf(std::string_view tag, std::string_view content) {
    Open(tag);
    sink_->Text(content);
    Close(tag);
  }
  void LeafWords(std::string_view tag, size_t count) {
    Open(tag);
    Words(count);
    Close(tag);
  }

  void Words(size_t count) {
    for (size_t i = 0; i < count; ++i) {
      if (i > 0) sink_->Text(" ");
      sink_->Text(kWords[rng_.Below(kNumWords)]);
    }
  }

  size_t Geometric(double mean) {
    if (mean <= 0) return 0;
    double p = 1.0 / (1.0 + mean);
    size_t n = 0;
    while (!rng_.Chance(p) && n < 32) ++n;
    return n;
  }

  // ---- XMark text markup: text with nested bold/keyword/emph ------------

  /// `text` is mixed content; XMark nests bold/keyword/emph markup inside.
  void WriteText(size_t depth = 0) {
    Open("text");
    Words(2 + rng_.Below(6));
    if (depth < 2) {
      size_t markups = Geometric(0.6);
      for (size_t i = 0; i < markups; ++i) {
        const char* tag =
            (rng_.Below(3) == 0) ? "bold"
                                 : (rng_.Below(2) == 0 ? "keyword" : "emph");
        Open(tag);
        Words(1 + rng_.Below(3));
        // Occasionally nest markup (XMark's parmkup is recursive).
        if (rng_.Chance(0.25)) {
          Open("emph");
          Words(1 + rng_.Below(2));
          Close("emph");
        }
        Close(tag);
        Words(1 + rng_.Below(3));
      }
    }
    Close("text");
  }

  /// description is (text | parlist); parlist/listitem recurse.
  void WriteDescription(size_t depth = 0) {
    Open("description");
    if (depth < 2 && rng_.Chance(0.3)) {
      Open("parlist");
      size_t items = 1 + Geometric(1.0);
      for (size_t i = 0; i < items; ++i) {
        Open("listitem");
        if (depth + 1 < 2 && rng_.Chance(0.25)) {
          // Nested parlist inside a listitem.
          Open("parlist");
          Open("listitem");
          WriteText(depth + 2);
          Close("listitem");
          Close("parlist");
        } else {
          WriteText(depth + 1);
        }
        Close("listitem");
      }
      Close("parlist");
    } else {
      WriteText(depth);
    }
    Close("description");
  }

  // ---- Sections ----------------------------------------------------------

  void WriteRegions() {
    Open("regions");
    for (size_t r = 0; r < kNumRegions; ++r) {
      Open(kRegions[r]);
      // Items are distributed round-robin so every region is populated.
      for (size_t i = r; i < options_.num_items; i += kNumRegions) {
        WriteItem(i);
      }
      Close(kRegions[r]);
    }
    Close("regions");
  }

  void WriteItem(size_t i) {
    OpenWithId("item", "item", i);
    Leaf("location", kCountries[rng_.Below(6)]);
    Leaf("quantity", std::to_string(1 + rng_.Below(5)));
    LeafWords("name", 2);
    Open("payment");
    Words(2);
    Close("payment");
    WriteDescription();
    Open("shipping");
    Words(3);
    Close("shipping");
    size_t cats = 1 + Geometric(options_.mean_incategory_per_item - 1);
    for (size_t c = 0; c < cats; ++c) {
      EmptyRef("incategory", "category", "category",
               rng_.Below(options_.num_categories));
    }
    size_t mails = Geometric(options_.mean_mails_per_item);
    if (mails > 0) {
      Open("mailbox");
      for (size_t m = 0; m < mails; ++m) {
        Open("mail");
        LeafWords("from", 2);
        LeafWords("to", 2);
        WriteDate();
        WriteText();
        Close("mail");
      }
      Close("mailbox");
    }
    Close("item");
  }

  void WriteDate() {
    Open("date");
    sink_->Text(std::to_string(1 + rng_.Below(12)));
    sink_->Text("/");
    sink_->Text(std::to_string(1 + rng_.Below(28)));
    sink_->Text("/200");
    sink_->Text(std::to_string(rng_.Below(4)));
    Close("date");
  }

  void WriteCategories() {
    Open("categories");
    for (size_t c = 0; c < options_.num_categories; ++c) {
      OpenWithId("category", "category", c);
      LeafWords("name", 1);
      WriteDescription();
      Close("category");
    }
    Close("categories");
  }

  void WriteCatgraph() {
    Open("catgraph");
    for (size_t e = 0; e < options_.catgraph_edges; ++e) {
      sink_->StartTag("edge");
      sink_->Attribute("from",
                       Ref("category", rng_.Below(options_.num_categories)));
      sink_->Attribute("to",
                       Ref("category", rng_.Below(options_.num_categories)));
      sink_->FinishStartTag(true);
    }
    Close("catgraph");
  }

  void WritePeople() {
    Open("people");
    for (size_t p = 0; p < options_.num_persons; ++p) {
      OpenWithId("person", "person", p);
      LeafWords("name", 2);
      Leaf("emailaddress", "mailto:user" + std::to_string(p) + "@host");
      if (rng_.Chance(0.5)) {
        Leaf("phone", "+1 (" + std::to_string(100 + rng_.Below(900)) + ") " +
                          std::to_string(1000000 + rng_.Below(9000000)));
      }
      if (rng_.Chance(0.5)) {
        Open("address");
        Leaf("street", std::to_string(1 + rng_.Below(99)) + " Main St");
        Leaf("city", kCities[rng_.Below(8)]);
        Leaf("country", kCountries[rng_.Below(6)]);
        if (rng_.Chance(0.3)) LeafWords("province", 1);
        Leaf("zipcode", std::to_string(10000 + rng_.Below(90000)));
        Close("address");
      }
      if (rng_.Chance(0.3)) {
        Leaf("homepage", "http://host/~user" + std::to_string(p));
      }
      if (rng_.Chance(0.4)) {
        Leaf("creditcard", std::to_string(1000 + rng_.Below(9000)) + " " +
                               std::to_string(1000 + rng_.Below(9000)));
      }
      if (rng_.Chance(0.7)) WriteProfile();
      size_t watches = Geometric(options_.mean_watches_per_person);
      if (watches > 0 && options_.num_open_auctions > 0) {
        Open("watches");
        for (size_t w = 0; w < watches; ++w) {
          EmptyRef("watch", "open_auction", "open_auction",
                   rng_.Below(options_.num_open_auctions));
        }
        Close("watches");
      }
      Close("person");
    }
    Close("people");
  }

  void WriteProfile() {
    sink_->StartTag("profile");
    sink_->Attribute("income", std::to_string(20000 + rng_.Below(80000)));
    sink_->FinishStartTag(false);
    size_t interests = Geometric(1.2);
    for (size_t i = 0; i < interests; ++i) {
      EmptyRef("interest", "category", "category",
               rng_.Below(options_.num_categories));
    }
    if (rng_.Chance(0.4)) LeafWords("education", 2);
    if (rng_.Chance(0.6)) Leaf("gender", rng_.Chance(0.5) ? "male" : "female");
    Leaf("business", rng_.Chance(0.5) ? "Yes" : "No");
    if (rng_.Chance(0.5)) Leaf("age", std::to_string(18 + rng_.Below(60)));
    Close("profile");
  }

  void WriteOpenAuctions() {
    Open("open_auctions");
    for (size_t a = 0; a < options_.num_open_auctions; ++a) {
      OpenWithId("open_auction", "open_auction", a);
      Leaf("initial", std::to_string(1 + rng_.Below(200)));
      if (rng_.Chance(0.4)) {
        Leaf("reserve", std::to_string(50 + rng_.Below(400)));
      }
      size_t bidders = Geometric(options_.mean_bidders_per_auction);
      for (size_t b = 0; b < bidders; ++b) {
        Open("bidder");
        WriteDate();
        Leaf("time", std::to_string(rng_.Below(24)) + ":" +
                         std::to_string(10 + rng_.Below(50)));
        EmptyRef("personref", "person", "person",
                 rng_.Below(options_.num_persons));
        Leaf("increase", std::to_string(1 + rng_.Below(20)));
        Close("bidder");
      }
      Leaf("current", std::to_string(10 + rng_.Below(500)));
      if (rng_.Chance(0.3)) Leaf("privacy", "Yes");
      EmptyRef("itemref", "item", "item", rng_.Below(options_.num_items));
      EmptyRef("seller", "person", "person", rng_.Below(options_.num_persons));
      WriteAnnotation();
      Leaf("quantity", std::to_string(1 + rng_.Below(5)));
      Leaf("type", rng_.Chance(0.5) ? "Regular" : "Featured");
      Open("interval");
      Open("start");
      sink_->Text("01/01/2003");
      Close("start");
      Open("end");
      sink_->Text("12/31/2003");
      Close("end");
      Close("interval");
      Close("open_auction");
    }
    Close("open_auctions");
  }

  void WriteAnnotation() {
    Open("annotation");
    EmptyRef("author", "person", "person", rng_.Below(options_.num_persons));
    WriteDescription();
    LeafWords("happiness", 1);
    Close("annotation");
  }

  void WriteClosedAuctions() {
    Open("closed_auctions");
    for (size_t a = 0; a < options_.num_closed_auctions; ++a) {
      Open("closed_auction");
      EmptyRef("seller", "person", "person", rng_.Below(options_.num_persons));
      EmptyRef("buyer", "person", "person", rng_.Below(options_.num_persons));
      EmptyRef("itemref", "item", "item", rng_.Below(options_.num_items));
      Leaf("price", std::to_string(10 + rng_.Below(900)));
      WriteDate();
      Leaf("quantity", std::to_string(1 + rng_.Below(5)));
      Leaf("type", rng_.Chance(0.5) ? "Regular" : "Featured");
      WriteAnnotation();
      Close("closed_auction");
    }
    Close("closed_auctions");
  }

  XMarkOptions options_;
  Rng rng_;
  DocumentSink* sink_;
  std::string scratch_;  ///< Reused for attribute values; O(1) memory.
};

}  // namespace

XMarkOptions XMarkOptions::Scaled(double scale, uint64_t seed) {
  XMarkOptions o;
  o.seed = seed;
  // Entity counts are clamped into [1, kMaxEntities]: a NaN, negative, or
  // sub-unity product lands at 1 (rng_.Below(count) needs count >= 1), and
  // the cap keeps base*scale finite and well inside size_t — and the node
  // count inside NodeId (uint32) — at any scale a caller can pass.
  // Casting an out-of-range double to size_t is undefined behavior, so the
  // comparisons happen in double space before the cast.
  constexpr double kMaxEntities = 1u << 31;
  auto scaled = [scale](size_t base) -> size_t {
    const double v = static_cast<double>(base) * scale;
    if (!(v >= 1.0)) return 1;  // NaN fails every comparison: lands here.
    if (v >= kMaxEntities) return static_cast<size_t>(kMaxEntities);
    return static_cast<size_t>(v);
  };
  o.num_categories = scaled(o.num_categories);
  o.num_items = scaled(o.num_items);
  o.num_persons = scaled(o.num_persons);
  o.num_open_auctions = scaled(o.num_open_auctions);
  o.num_closed_auctions = scaled(o.num_closed_auctions);
  o.catgraph_edges = scaled(o.catgraph_edges);
  // The mean_* knobs stay at their defaults here, but clamp them anyway so
  // a caller that scales them externally cannot push the per-entity
  // geometric draws into pathological territory (negatives disable the
  // draw; the Geometric helper already caps a single draw at 32).
  auto clamp_mean = [](double m) { return std::clamp(m, 0.0, 64.0); };
  o.mean_bidders_per_auction = clamp_mean(o.mean_bidders_per_auction);
  o.mean_incategory_per_item = clamp_mean(o.mean_incategory_per_item);
  o.mean_mails_per_item = clamp_mean(o.mean_mails_per_item);
  o.mean_watches_per_person = clamp_mean(o.mean_watches_per_person);
  return o;
}

void GenerateXMarkDocument(const XMarkOptions& options, DocumentSink* sink) {
  XMarkWriter writer(options, sink);
  writer.Run();
}

std::string GenerateXMarkDocument(const XMarkOptions& options) {
  XmlTextSink sink;
  GenerateXMarkDocument(options, &sink);
  return sink.TakeDocument();
}

}  // namespace mrx::datagen
