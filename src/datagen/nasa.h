#ifndef MRX_DATAGEN_NASA_H_
#define MRX_DATAGEN_NASA_H_

#include <string>

#include "util/result.h"

namespace mrx::datagen {

class DocumentSink;

/// \brief The DTD behind the paper's NASA dataset, embedded.
///
/// The paper's NASA data is *synthetic*: it was produced by the IBM XML
/// Generator from the NASA ADC `dataset.dtd` [9]. With no network access,
/// this is a transcription of that DTD's shape rather than a byte copy:
/// astronomical dataset records with deep nesting (9+ levels through
/// fields/definitions/paragraphs/footnotes), recursive mixed content
/// (para ⇄ footnote), element names reused in many contexts (`name`,
/// `title`, `date`, `description`, `para` — the paper notes `name` appears
/// in seven contexts), and several ID/IDREF(S) attributes so the generated
/// graph is reference-rich. Unlike [5] (and like the paper) no references
/// are removed.
const char* NasaDatasetDtd();

/// \brief Generates a NASA-like document. `scale` = 1.0 targets roughly
/// the paper's ~90,000 element nodes; smaller values shrink proportionally.
Result<std::string> GenerateNasaDocument(double scale, uint64_t seed);

/// Streaming variant (see GenerateDocument's sink overload): same options,
/// same bytes through an XmlTextSink, graph-direct through a
/// DirectGraphSink.
Status GenerateNasaDocument(double scale, uint64_t seed, DocumentSink* sink);

}  // namespace mrx::datagen

#endif  // MRX_DATAGEN_NASA_H_
