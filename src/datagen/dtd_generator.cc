#include "datagen/dtd_generator.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>
#include <vector>

namespace mrx::datagen {
namespace {

constexpr const char* kWords[] = {
    "orbit",   "quasar", "nebula",  "flux",    "survey",  "catalog",
    "stellar", "photon", "galaxy",  "archive", "epoch",   "spectra",
    "binary",  "radial", "transit", "maser",   "parsec",  "plasma",
    "corona",  "albedo", "zenith",  "apogee",  "cosmic",  "lens",
};
constexpr size_t kNumWords = sizeof(kWords) / sizeof(kWords[0]);

/// Computes, per element, the minimum element-subtree size needed to emit
/// it legally (for cap/depth-bounded minimal expansions), via fixpoint over
/// the (possibly cyclic) DTD. Elements on unavoidable cycles keep a large
/// cost; the generator avoids them when shrinking.
class MinCost {
 public:
  static constexpr uint32_t kInf = 1u << 30;

  explicit MinCost(const Dtd& dtd) {
    for (const auto& [name, element] : dtd.elements()) cost_[name] = kInf;
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& [name, element] : dtd.elements()) {
        uint32_t c = ElementCost(element);
        if (c < cost_[name]) {
          cost_[name] = c;
          changed = true;
        }
      }
    }
  }

  uint32_t OfName(const std::string& name) const {
    auto it = cost_.find(name);
    return it == cost_.end() ? kInf : it->second;
  }

  /// Minimal total element count for one mandatory expansion of `p`.
  uint32_t OfParticle(const Particle& p) const {
    uint32_t inner = 0;
    switch (p.kind) {
      case ParticleKind::kPcdata:
        inner = 0;
        break;
      case ParticleKind::kElement:
        inner = OfName(p.name);
        break;
      case ParticleKind::kSequence: {
        uint64_t sum = 0;
        for (const auto& c : p.children) sum += OfParticle(*c);
        inner = static_cast<uint32_t>(std::min<uint64_t>(sum, kInf));
        break;
      }
      case ParticleKind::kChoice: {
        inner = kInf;
        for (const auto& c : p.children) {
          inner = std::min(inner, OfParticle(*c));
        }
        if (p.children.empty()) inner = 0;
        break;
      }
    }
    switch (p.occurrence) {
      case Occurrence::kOptional:
      case Occurrence::kZeroOrMore:
        return 0;
      case Occurrence::kOne:
      case Occurrence::kOneOrMore:
        return inner;
    }
    return inner;
  }

 private:
  uint32_t ElementCost(const DtdElement& e) const {
    switch (e.content_kind) {
      case ContentKind::kEmpty:
      case ContentKind::kAny:
      case ContentKind::kMixed:
        return 1;
      case ContentKind::kChildren: {
        uint32_t c = OfParticle(*e.model);
        return c >= kInf ? kInf : 1 + c;
      }
    }
    return 1;
  }

  std::map<std::string, uint32_t, std::less<>> cost_;
};

class Generator {
 public:
  Generator(const Dtd& dtd, const DtdGeneratorOptions& options)
      : dtd_(dtd), options_(options), rng_(options.seed), min_cost_(dtd) {}

  Result<std::string> Run() {
    const DtdElement* root = dtd_.FindElement(dtd_.root_name());
    if (root == nullptr) {
      return Status::Internal("DTD has no root element");
    }
    out_ += "<?xml version=\"1.0\"?>\n";
    MRX_RETURN_IF_ERROR(EmitElement(*root, 0));
    out_ += "\n";
    PatchIdrefs();
    return std::move(out_);
  }

 private:
  bool Shrinking(size_t depth) const {
    return element_count_ >= options_.max_elements ||
           depth >= options_.max_depth;
  }

  size_t GeometricCount(double mean) {
    // Geometric with the given mean (mean >= 0); p = 1/(1+mean).
    if (mean <= 0) return 0;
    double p = 1.0 / (1.0 + mean);
    size_t n = 0;
    while (!rng_.Chance(p) && n < 64) ++n;
    return n;
  }

  std::string RandomWords(size_t count) {
    std::string text;
    for (size_t i = 0; i < count; ++i) {
      if (i > 0) text += ' ';
      text += kWords[rng_.Below(kNumWords)];
    }
    return text;
  }

  Status EmitElement(const DtdElement& element, size_t depth) {
    ++element_count_;
    out_ += '<';
    out_ += element.name;
    MRX_RETURN_IF_ERROR(EmitAttributes(element));

    switch (element.content_kind) {
      case ContentKind::kEmpty:
        out_ += "/>";
        return Status::Ok();
      case ContentKind::kAny:
        // ANY: treat as empty-or-text (the generator never fabricates
        // arbitrary children for ANY).
        out_ += '>';
        out_ += RandomWords(1 + rng_.Below(3));
        break;
      case ContentKind::kMixed: {
        out_ += '>';
        out_ += RandomWords(1 + rng_.Below(4));
        if (element.model != nullptr && !element.model->children.empty() &&
            !Shrinking(depth)) {
          size_t repeats = GeometricCount(options_.star_mean);
          for (size_t i = 0; i < repeats; ++i) {
            const Particle& alt = *element.model->children[rng_.Below(
                element.model->children.size())];
            MRX_RETURN_IF_ERROR(EmitChildByName(alt.name, depth + 1));
            out_ += RandomWords(1 + rng_.Below(3));
          }
        }
        break;
      }
      case ContentKind::kChildren:
        out_ += '>';
        MRX_RETURN_IF_ERROR(EmitParticle(*element.model, depth + 1));
        break;
    }
    out_ += "</";
    out_ += element.name;
    out_ += '>';
    return Status::Ok();
  }

  Status EmitChildByName(const std::string& name, size_t depth) {
    const DtdElement* child = dtd_.FindElement(name);
    if (child == nullptr) {
      return Status::ParseError("DTD references undeclared element '" +
                                name + "'");
    }
    return EmitElement(*child, depth);
  }

  Status EmitParticleOnce(const Particle& p, size_t depth) {
    switch (p.kind) {
      case ParticleKind::kPcdata:
        out_ += RandomWords(1 + rng_.Below(4));
        return Status::Ok();
      case ParticleKind::kElement:
        return EmitChildByName(p.name, depth);
      case ParticleKind::kSequence:
        for (const auto& c : p.children) {
          MRX_RETURN_IF_ERROR(EmitParticle(*c, depth));
        }
        return Status::Ok();
      case ParticleKind::kChoice: {
        if (p.children.empty()) return Status::Ok();
        if (Shrinking(depth)) {
          // Pick the cheapest alternative to wind the document down.
          const Particle* best = p.children.front().get();
          uint32_t best_cost = min_cost_.OfParticle(*best);
          for (const auto& c : p.children) {
            uint32_t cost = min_cost_.OfParticle(*c);
            if (cost < best_cost) {
              best = c.get();
              best_cost = cost;
            }
          }
          return EmitParticle(*best, depth);
        }
        return EmitParticle(*p.children[rng_.Below(p.children.size())],
                            depth);
      }
    }
    return Status::Ok();
  }

  Status EmitParticle(const Particle& p, size_t depth) {
    size_t count = 0;
    switch (p.occurrence) {
      case Occurrence::kOne:
        count = 1;
        break;
      case Occurrence::kOptional:
        count = (!Shrinking(depth) &&
                 rng_.Chance(options_.optional_probability))
                    ? 1
                    : 0;
        break;
      case Occurrence::kZeroOrMore:
        count = Shrinking(depth) ? 0 : GeometricCount(options_.star_mean);
        break;
      case Occurrence::kOneOrMore:
        count =
            1 + (Shrinking(depth) ? 0 : GeometricCount(options_.star_mean));
        break;
    }
    for (size_t i = 0; i < count; ++i) {
      MRX_RETURN_IF_ERROR(EmitParticleOnce(p, depth));
    }
    // Root-level lists fill the document up to the size target.
    if (depth <= 1 && options_.min_elements > 0 &&
        (p.occurrence == Occurrence::kZeroOrMore ||
         p.occurrence == Occurrence::kOneOrMore)) {
      while (element_count_ < options_.min_elements) {
        size_t before = element_count_;
        MRX_RETURN_IF_ERROR(EmitParticleOnce(p, depth));
        if (element_count_ == before) break;  // Particle emits no elements.
      }
    }
    return Status::Ok();
  }

  Status EmitAttributes(const DtdElement& element) {
    for (const DtdAttribute& attr : element.attributes) {
      bool emit = false;
      switch (attr.presence) {
        case AttributePresence::kRequired:
        case AttributePresence::kFixed:
        case AttributePresence::kDefault:
          emit = true;
          break;
        case AttributePresence::kImplied:
          emit = rng_.Chance(options_.implied_attribute_probability);
          break;
      }
      if (!emit) continue;
      out_ += ' ';
      out_ += attr.name;
      out_ += "=\"";
      switch (attr.type) {
        case AttributeType::kId: {
          std::string id =
              element.name + "_" + std::to_string(next_id_++);
          ids_.push_back(id);
          out_ += id;
          break;
        }
        case AttributeType::kIdref:
          MarkIdrefSlot(1);
          break;
        case AttributeType::kIdrefs:
          MarkIdrefSlot(std::max<size_t>(1, options_.idrefs_count));
          break;
        case AttributeType::kEnumeration:
          out_ += attr.enum_values[rng_.Below(attr.enum_values.size())];
          break;
        case AttributeType::kCdata:
        case AttributeType::kNmtoken:
          if (!attr.default_value.empty()) {
            out_ += attr.default_value;
          } else {
            out_ += kWords[rng_.Below(kNumWords)];
          }
          break;
      }
      out_ += '"';
    }
    return Status::Ok();
  }

  /// Reserves space for `count` id tokens in the output and remembers the
  /// slot; PatchIdrefs fills them once the full id population is known,
  /// letting references point forward in the document.
  void MarkIdrefSlot(size_t count) {
    idref_slots_.push_back({out_.size(), count});
    // Reserve: each token is at most "placeholder" width; we rewrite the
    // document in one pass at the end, so no fixed width is needed — we
    // only record the insertion point in the *pre-patch* text.
    out_ += kIdrefPlaceholder;
    for (size_t i = 1; i < count; ++i) {
      out_ += ' ';
      out_ += kIdrefPlaceholder;
    }
  }

  void PatchIdrefs() {
    if (idref_slots_.empty()) return;
    std::string patched;
    patched.reserve(out_.size());
    size_t prev = 0;
    for (const auto& [pos, count] : idref_slots_) {
      patched.append(out_, prev, pos - prev);
      size_t placeholder_len =
          kIdrefPlaceholder.size() * count + (count - 1);
      for (size_t i = 0; i < count; ++i) {
        if (i > 0) patched += ' ';
        if (ids_.empty()) {
          patched += "none";
        } else {
          patched += ids_[rng_.Below(ids_.size())];
        }
      }
      prev = pos + placeholder_len;
    }
    patched.append(out_, prev, out_.size() - prev);
    out_ = std::move(patched);
  }

  static constexpr std::string_view kIdrefPlaceholder = "@IDREF@";

  const Dtd& dtd_;
  const DtdGeneratorOptions& options_;
  Rng rng_;
  MinCost min_cost_;
  std::string out_;
  size_t element_count_ = 0;
  size_t next_id_ = 0;
  std::vector<std::string> ids_;
  std::vector<std::pair<size_t, size_t>> idref_slots_;  // (pos, token count)
};

}  // namespace

Result<std::string> GenerateDocument(const Dtd& dtd,
                                     const DtdGeneratorOptions& options) {
  Generator generator(dtd, options);
  return generator.Run();
}

}  // namespace mrx::datagen
