#include "datagen/dtd_generator.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>
#include <vector>

#include "datagen/document_sink.h"

namespace mrx::datagen {
namespace {

constexpr const char* kWords[] = {
    "orbit",   "quasar", "nebula",  "flux",    "survey",  "catalog",
    "stellar", "photon", "galaxy",  "archive", "epoch",   "spectra",
    "binary",  "radial", "transit", "maser",   "parsec",  "plasma",
    "corona",  "albedo", "zenith",  "apogee",  "cosmic",  "lens",
};
constexpr size_t kNumWords = sizeof(kWords) / sizeof(kWords[0]);

/// Computes, per element, the minimum element-subtree size needed to emit
/// it legally (for cap/depth-bounded minimal expansions), via fixpoint over
/// the (possibly cyclic) DTD. Elements on unavoidable cycles keep a large
/// cost; the generator avoids them when shrinking.
class MinCost {
 public:
  static constexpr uint32_t kInf = 1u << 30;

  explicit MinCost(const Dtd& dtd) {
    for (const auto& [name, element] : dtd.elements()) cost_[name] = kInf;
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& [name, element] : dtd.elements()) {
        uint32_t c = ElementCost(element);
        if (c < cost_[name]) {
          cost_[name] = c;
          changed = true;
        }
      }
    }
  }

  uint32_t OfName(const std::string& name) const {
    auto it = cost_.find(name);
    return it == cost_.end() ? kInf : it->second;
  }

  /// Minimal total element count for one mandatory expansion of `p`.
  uint32_t OfParticle(const Particle& p) const {
    uint32_t inner = 0;
    switch (p.kind) {
      case ParticleKind::kPcdata:
        inner = 0;
        break;
      case ParticleKind::kElement:
        inner = OfName(p.name);
        break;
      case ParticleKind::kSequence: {
        uint64_t sum = 0;
        for (const auto& c : p.children) sum += OfParticle(*c);
        inner = static_cast<uint32_t>(std::min<uint64_t>(sum, kInf));
        break;
      }
      case ParticleKind::kChoice: {
        inner = kInf;
        for (const auto& c : p.children) {
          inner = std::min(inner, OfParticle(*c));
        }
        if (p.children.empty()) inner = 0;
        break;
      }
    }
    switch (p.occurrence) {
      case Occurrence::kOptional:
      case Occurrence::kZeroOrMore:
        return 0;
      case Occurrence::kOne:
      case Occurrence::kOneOrMore:
        return inner;
    }
    return inner;
  }

 private:
  uint32_t ElementCost(const DtdElement& e) const {
    switch (e.content_kind) {
      case ContentKind::kEmpty:
      case ContentKind::kAny:
      case ContentKind::kMixed:
        return 1;
      case ContentKind::kChildren: {
        uint32_t c = OfParticle(*e.model);
        return c >= kInf ? kInf : 1 + c;
      }
    }
    return 1;
  }

  std::map<std::string, uint32_t, std::less<>> cost_;
};

/// Emits a random DTD instance as a sink event stream. One pass, one RNG
/// draw sequence, for both the text and the direct-to-graph sinks (see
/// DocumentSink). IDREF/IDREFS values are *deferred*: the slots are
/// reserved during emission and resolved afterwards — in slot order, one
/// draw per token, once the full id population exists — which is exactly
/// the draw schedule the historical placeholder-then-patch pass used.
class Generator {
 public:
  Generator(const Dtd& dtd, const DtdGeneratorOptions& options,
            DocumentSink* sink)
      : dtd_(dtd),
        options_(options),
        rng_(options.seed),
        min_cost_(dtd),
        sink_(sink) {}

  Status Run() {
    const DtdElement* root = dtd_.FindElement(dtd_.root_name());
    if (root == nullptr) {
      return Status::Internal("DTD has no root element");
    }
    sink_->Raw("<?xml version=\"1.0\"?>\n");
    MRX_RETURN_IF_ERROR(EmitElement(*root, 0));
    sink_->Raw("\n");
    ResolveDeferredRefs();
    return Status::Ok();
  }

 private:
  bool Shrinking(size_t depth) const {
    return element_count_ >= options_.max_elements ||
           depth >= options_.max_depth;
  }

  size_t GeometricCount(double mean) {
    // Geometric with the given mean (mean >= 0); p = 1/(1+mean).
    if (mean <= 0) return 0;
    double p = 1.0 / (1.0 + mean);
    size_t n = 0;
    while (!rng_.Chance(p) && n < 64) ++n;
    return n;
  }

  std::string RandomWords(size_t count) {
    std::string text;
    for (size_t i = 0; i < count; ++i) {
      if (i > 0) text += ' ';
      text += kWords[rng_.Below(kNumWords)];
    }
    return text;
  }

  Status EmitElement(const DtdElement& element, size_t depth) {
    ++element_count_;
    sink_->StartTag(element.name);
    MRX_RETURN_IF_ERROR(EmitAttributes(element));

    switch (element.content_kind) {
      case ContentKind::kEmpty:
        sink_->FinishStartTag(true);
        return Status::Ok();
      case ContentKind::kAny:
        // ANY: treat as empty-or-text (the generator never fabricates
        // arbitrary children for ANY).
        sink_->FinishStartTag(false);
        sink_->Text(RandomWords(1 + rng_.Below(3)));
        break;
      case ContentKind::kMixed: {
        sink_->FinishStartTag(false);
        sink_->Text(RandomWords(1 + rng_.Below(4)));
        if (element.model != nullptr && !element.model->children.empty() &&
            !Shrinking(depth)) {
          size_t repeats = GeometricCount(options_.star_mean);
          for (size_t i = 0; i < repeats; ++i) {
            const Particle& alt = *element.model->children[rng_.Below(
                element.model->children.size())];
            MRX_RETURN_IF_ERROR(EmitChildByName(alt.name, depth + 1));
            sink_->Text(RandomWords(1 + rng_.Below(3)));
          }
        }
        break;
      }
      case ContentKind::kChildren:
        sink_->FinishStartTag(false);
        MRX_RETURN_IF_ERROR(EmitParticle(*element.model, depth + 1));
        break;
    }
    sink_->EndTag(element.name);
    return Status::Ok();
  }

  Status EmitChildByName(const std::string& name, size_t depth) {
    const DtdElement* child = dtd_.FindElement(name);
    if (child == nullptr) {
      return Status::ParseError("DTD references undeclared element '" +
                                name + "'");
    }
    return EmitElement(*child, depth);
  }

  Status EmitParticleOnce(const Particle& p, size_t depth) {
    switch (p.kind) {
      case ParticleKind::kPcdata:
        sink_->Text(RandomWords(1 + rng_.Below(4)));
        return Status::Ok();
      case ParticleKind::kElement:
        return EmitChildByName(p.name, depth);
      case ParticleKind::kSequence:
        for (const auto& c : p.children) {
          MRX_RETURN_IF_ERROR(EmitParticle(*c, depth));
        }
        return Status::Ok();
      case ParticleKind::kChoice: {
        if (p.children.empty()) return Status::Ok();
        if (Shrinking(depth)) {
          // Pick the cheapest alternative to wind the document down.
          const Particle* best = p.children.front().get();
          uint32_t best_cost = min_cost_.OfParticle(*best);
          for (const auto& c : p.children) {
            uint32_t cost = min_cost_.OfParticle(*c);
            if (cost < best_cost) {
              best = c.get();
              best_cost = cost;
            }
          }
          return EmitParticle(*best, depth);
        }
        return EmitParticle(*p.children[rng_.Below(p.children.size())],
                            depth);
      }
    }
    return Status::Ok();
  }

  Status EmitParticle(const Particle& p, size_t depth) {
    size_t count = 0;
    switch (p.occurrence) {
      case Occurrence::kOne:
        count = 1;
        break;
      case Occurrence::kOptional:
        count = (!Shrinking(depth) &&
                 rng_.Chance(options_.optional_probability))
                    ? 1
                    : 0;
        break;
      case Occurrence::kZeroOrMore:
        count = Shrinking(depth) ? 0 : GeometricCount(options_.star_mean);
        break;
      case Occurrence::kOneOrMore:
        count =
            1 + (Shrinking(depth) ? 0 : GeometricCount(options_.star_mean));
        break;
    }
    for (size_t i = 0; i < count; ++i) {
      MRX_RETURN_IF_ERROR(EmitParticleOnce(p, depth));
    }
    // Root-level lists fill the document up to the size target.
    if (depth <= 1 && options_.min_elements > 0 &&
        (p.occurrence == Occurrence::kZeroOrMore ||
         p.occurrence == Occurrence::kOneOrMore)) {
      while (element_count_ < options_.min_elements) {
        size_t before = element_count_;
        MRX_RETURN_IF_ERROR(EmitParticleOnce(p, depth));
        if (element_count_ == before) break;  // Particle emits no elements.
      }
    }
    return Status::Ok();
  }

  Status EmitAttributes(const DtdElement& element) {
    for (const DtdAttribute& attr : element.attributes) {
      bool emit = false;
      switch (attr.presence) {
        case AttributePresence::kRequired:
        case AttributePresence::kFixed:
        case AttributePresence::kDefault:
          emit = true;
          break;
        case AttributePresence::kImplied:
          emit = rng_.Chance(options_.implied_attribute_probability);
          break;
      }
      if (!emit) continue;
      switch (attr.type) {
        case AttributeType::kId: {
          std::string id =
              element.name + "_" + std::to_string(next_id_++);
          sink_->Attribute(attr.name, id);
          ids_.push_back(std::move(id));
          break;
        }
        case AttributeType::kIdref:
          sink_->DeferredRefAttribute(attr.name, 1);
          deferred_tokens_ += 1;
          break;
        case AttributeType::kIdrefs: {
          const size_t count = std::max<size_t>(1, options_.idrefs_count);
          sink_->DeferredRefAttribute(attr.name, count);
          deferred_tokens_ += count;
          break;
        }
        case AttributeType::kEnumeration:
          sink_->Attribute(attr.name,
                           attr.enum_values[rng_.Below(
                               attr.enum_values.size())]);
          break;
        case AttributeType::kCdata:
        case AttributeType::kNmtoken:
          if (!attr.default_value.empty()) {
            sink_->Attribute(attr.name, attr.default_value);
          } else {
            sink_->Attribute(attr.name, kWords[rng_.Below(kNumWords)]);
          }
          break;
      }
    }
    return Status::Ok();
  }

  /// Fills every reserved IDREF/IDREFS token, choosing uniformly among all
  /// ids generated during emission — so references point forward as well
  /// as backward. One rng draw per token, in reservation order, and no
  /// draw at all when the document carries no ids: the exact schedule of
  /// the historical patch pass.
  void ResolveDeferredRefs() {
    for (size_t t = 0; t < deferred_tokens_; ++t) {
      if (ids_.empty()) {
        sink_->ResolveDeferredToken("none");
      } else {
        sink_->ResolveDeferredToken(ids_[rng_.Below(ids_.size())]);
      }
    }
  }

  const Dtd& dtd_;
  const DtdGeneratorOptions& options_;
  Rng rng_;
  MinCost min_cost_;
  DocumentSink* sink_;
  size_t element_count_ = 0;
  size_t next_id_ = 0;
  std::vector<std::string> ids_;
  size_t deferred_tokens_ = 0;
};

}  // namespace

Status GenerateDocument(const Dtd& dtd, const DtdGeneratorOptions& options,
                        DocumentSink* sink) {
  Generator generator(dtd, options, sink);
  return generator.Run();
}

Result<std::string> GenerateDocument(const Dtd& dtd,
                                     const DtdGeneratorOptions& options) {
  XmlTextSink sink;
  MRX_RETURN_IF_ERROR(GenerateDocument(dtd, options, &sink));
  return sink.TakeDocument();
}

}  // namespace mrx::datagen
