#include "datagen/dtd.h"

#include <cctype>

namespace mrx::datagen {
namespace {

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '-' || c == '.' || c == ':';
}

/// Character cursor over the DTD text.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  void Advance() { ++pos_; }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool Consume(char c) {
    if (AtEnd() || Peek() != c) return false;
    Advance();
    return true;
  }

  bool SkipPast(std::string_view lit) {
    size_t found = text_.find(lit, pos_);
    if (found == std::string_view::npos) return false;
    pos_ = found + lit.size();
    return true;
  }

  std::string ReadName() {
    size_t begin = pos_;
    while (!AtEnd() && IsNameChar(Peek())) Advance();
    return std::string(text_.substr(begin, pos_ - begin));
  }

  Status Error(std::string message) const {
    return Status::ParseError("DTD: " + message + " near offset " +
                              std::to_string(pos_));
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

Occurrence ReadOccurrence(Cursor* cur) {
  if (cur->Consume('?')) return Occurrence::kOptional;
  if (cur->Consume('*')) return Occurrence::kZeroOrMore;
  if (cur->Consume('+')) return Occurrence::kOneOrMore;
  return Occurrence::kOne;
}

/// Parses a parenthesized group (cursor sits just after '('); used for
/// deterministic (children) content. Mixed content is handled separately.
Result<std::unique_ptr<Particle>> ParseGroup(Cursor* cur) {
  auto group = std::make_unique<Particle>();
  group->kind = ParticleKind::kSequence;  // Revised to kChoice on '|'.
  bool decided = false;

  while (true) {
    cur->SkipWhitespace();
    if (cur->Consume('(')) {
      MRX_ASSIGN_OR_RETURN(auto child, ParseGroup(cur));
      group->children.push_back(std::move(child));
    } else if (cur->ConsumeLiteral("#PCDATA")) {
      auto child = std::make_unique<Particle>();
      child->kind = ParticleKind::kPcdata;
      group->children.push_back(std::move(child));
    } else {
      std::string name = cur->ReadName();
      if (name.empty()) return cur->Error("expected a name in content model");
      auto child = std::make_unique<Particle>();
      child->kind = ParticleKind::kElement;
      child->name = std::move(name);
      child->occurrence = ReadOccurrence(cur);
      group->children.push_back(std::move(child));
    }
    cur->SkipWhitespace();
    if (cur->Consume(',')) {
      if (decided && group->kind != ParticleKind::kSequence) {
        return cur->Error("mixed ',' and '|' in one group");
      }
      group->kind = ParticleKind::kSequence;
      decided = true;
      continue;
    }
    if (cur->Consume('|')) {
      if (decided && group->kind != ParticleKind::kChoice) {
        return cur->Error("mixed ',' and '|' in one group");
      }
      group->kind = ParticleKind::kChoice;
      decided = true;
      continue;
    }
    if (cur->Consume(')')) {
      group->occurrence = ReadOccurrence(cur);
      return group;
    }
    return cur->Error("expected ',', '|' or ')' in content model");
  }
}

Status ParseAttlistDecl(
    Cursor* cur, std::map<std::string, DtdElement, std::less<>>* elements);

}  // namespace

const DtdElement* Dtd::FindElement(std::string_view name) const {
  auto it = elements_.find(name);
  return it == elements_.end() ? nullptr : &it->second;
}

Result<Dtd> Dtd::Parse(std::string_view text) {
  Dtd dtd;
  Cursor cur(text);
  while (true) {
    cur.SkipWhitespace();
    if (cur.AtEnd()) break;
    if (cur.ConsumeLiteral("<!--")) {
      if (!cur.SkipPast("-->")) return cur.Error("unterminated comment");
      continue;
    }
    if (cur.ConsumeLiteral("<?")) {
      if (!cur.SkipPast("?>")) return cur.Error("unterminated PI");
      continue;
    }
    if (cur.ConsumeLiteral("<!ENTITY")) {
      if (!cur.SkipPast(">")) return cur.Error("unterminated ENTITY");
      continue;
    }
    if (cur.ConsumeLiteral("<!NOTATION")) {
      if (!cur.SkipPast(">")) return cur.Error("unterminated NOTATION");
      continue;
    }
    if (cur.ConsumeLiteral("<!ELEMENT")) {
      cur.SkipWhitespace();
      std::string name = cur.ReadName();
      if (name.empty()) return cur.Error("ELEMENT without a name");
      DtdElement element;
      element.name = name;
      cur.SkipWhitespace();
      if (cur.ConsumeLiteral("EMPTY")) {
        element.content_kind = ContentKind::kEmpty;
      } else if (cur.ConsumeLiteral("ANY")) {
        element.content_kind = ContentKind::kAny;
      } else if (cur.Consume('(')) {
        MRX_ASSIGN_OR_RETURN(auto model, ParseGroup(&cur));
        bool mixed = false;
        // Mixed content parses as a group whose first child is #PCDATA.
        for (const auto& child : model->children) {
          if (child->kind == ParticleKind::kPcdata) mixed = true;
        }
        if (mixed) {
          element.content_kind = ContentKind::kMixed;
          // Keep only the element alternatives as a choice.
          auto choice = std::make_unique<Particle>();
          choice->kind = ParticleKind::kChoice;
          choice->occurrence = Occurrence::kZeroOrMore;
          for (auto& child : model->children) {
            if (child->kind == ParticleKind::kElement) {
              choice->children.push_back(std::move(child));
            }
          }
          element.model = std::move(choice);
        } else {
          element.content_kind = ContentKind::kChildren;
          element.model = std::move(model);
        }
      } else {
        return cur.Error("bad content spec for element '" + name + "'");
      }
      cur.SkipWhitespace();
      if (!cur.Consume('>')) {
        return cur.Error("expected '>' after ELEMENT " + name);
      }
      auto [it, inserted] =
          dtd.elements_.emplace(name, std::move(element));
      if (!inserted) {
        return Status::ParseError("DTD: duplicate element '" + name + "'");
      }
      if (dtd.root_name_.empty()) dtd.root_name_ = name;
      continue;
    }
    if (cur.ConsumeLiteral("<!ATTLIST")) {
      MRX_RETURN_IF_ERROR(ParseAttlistDecl(&cur, &dtd.elements_));
      continue;
    }
    return cur.Error("unrecognized declaration");
  }
  if (dtd.elements_.empty()) {
    return Status::ParseError("DTD: no element declarations");
  }
  return dtd;
}

namespace {

Status ParseAttlistDecl(
    Cursor* cur, std::map<std::string, DtdElement, std::less<>>* elements) {
  cur->SkipWhitespace();
  std::string element_name = cur->ReadName();
  if (element_name.empty()) return cur->Error("ATTLIST without element name");
  auto it = elements->find(element_name);

  std::vector<DtdAttribute> attrs;
  while (true) {
    cur->SkipWhitespace();
    if (cur->Consume('>')) break;
    DtdAttribute attr;
    attr.name = cur->ReadName();
    if (attr.name.empty()) return cur->Error("attribute without a name");
    cur->SkipWhitespace();
    if (cur->ConsumeLiteral("CDATA")) {
      attr.type = AttributeType::kCdata;
    } else if (cur->ConsumeLiteral("IDREFS")) {
      attr.type = AttributeType::kIdrefs;
    } else if (cur->ConsumeLiteral("IDREF")) {
      attr.type = AttributeType::kIdref;
    } else if (cur->ConsumeLiteral("ID")) {
      attr.type = AttributeType::kId;
    } else if (cur->ConsumeLiteral("NMTOKENS")) {
      attr.type = AttributeType::kNmtoken;
    } else if (cur->ConsumeLiteral("NMTOKEN")) {
      attr.type = AttributeType::kNmtoken;
    } else if (cur->ConsumeLiteral("ENTITY") ||
               cur->ConsumeLiteral("ENTITIES")) {
      attr.type = AttributeType::kCdata;
    } else if (cur->Consume('(')) {
      attr.type = AttributeType::kEnumeration;
      while (true) {
        cur->SkipWhitespace();
        std::string value = cur->ReadName();
        if (value.empty()) return cur->Error("empty enumeration value");
        attr.enum_values.push_back(std::move(value));
        cur->SkipWhitespace();
        if (cur->Consume('|')) continue;
        if (cur->Consume(')')) break;
        return cur->Error("expected '|' or ')' in enumeration");
      }
    } else {
      return cur->Error("unsupported attribute type for '" + attr.name +
                        "'");
    }
    cur->SkipWhitespace();
    if (cur->ConsumeLiteral("#REQUIRED")) {
      attr.presence = AttributePresence::kRequired;
    } else if (cur->ConsumeLiteral("#IMPLIED")) {
      attr.presence = AttributePresence::kImplied;
    } else if (cur->ConsumeLiteral("#FIXED")) {
      attr.presence = AttributePresence::kFixed;
      cur->SkipWhitespace();
      char quote = cur->Peek();
      if (quote != '"' && quote != '\'') {
        return cur->Error("expected quoted #FIXED value");
      }
      cur->Advance();
      while (!cur->AtEnd() && cur->Peek() != quote) {
        attr.default_value += cur->Peek();
        cur->Advance();
      }
      if (!cur->Consume(quote)) return cur->Error("unterminated value");
    } else if (cur->Peek() == '"' || cur->Peek() == '\'') {
      attr.presence = AttributePresence::kDefault;
      char quote = cur->Peek();
      cur->Advance();
      while (!cur->AtEnd() && cur->Peek() != quote) {
        attr.default_value += cur->Peek();
        cur->Advance();
      }
      if (!cur->Consume(quote)) return cur->Error("unterminated value");
    } else {
      return cur->Error("bad default spec for attribute '" + attr.name +
                        "'");
    }
    attrs.push_back(std::move(attr));
  }

  if (it != elements->end()) {
    for (auto& attr : attrs) it->second.attributes.push_back(std::move(attr));
  }
  // ATTLIST for an undeclared element is legal XML; we ignore it.
  return Status::Ok();
}

}  // namespace
}  // namespace mrx::datagen
