#ifndef MRX_DATAGEN_DTD_H_
#define MRX_DATAGEN_DTD_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace mrx::datagen {

/// Occurrence modifier on a content particle: `a`, `a?`, `a*`, `a+`.
enum class Occurrence : uint8_t {
  kOne,
  kOptional,   // ?
  kZeroOrMore, // *
  kOneOrMore,  // +
};

/// Kind of a content-model particle.
enum class ParticleKind : uint8_t {
  kElement,  ///< A child element reference by name.
  kPcdata,   ///< #PCDATA (character data).
  kSequence, ///< (a, b, c)
  kChoice,   ///< (a | b | c)
};

/// \brief One node of a content-model expression tree, e.g. the model
/// `((a | b)*, c?)` is a kSequence of a starred kChoice and an optional
/// kElement.
struct Particle {
  ParticleKind kind = ParticleKind::kElement;
  Occurrence occurrence = Occurrence::kOne;
  std::string name;                               ///< kElement only.
  std::vector<std::unique_ptr<Particle>> children;  ///< kSequence/kChoice.
};

/// Declared type of an attribute (the subset the generator needs).
enum class AttributeType : uint8_t {
  kCdata,
  kId,
  kIdref,
  kIdrefs,
  kNmtoken,
  kEnumeration,
};

/// Default/presence spec of an attribute.
enum class AttributePresence : uint8_t {
  kRequired,  // #REQUIRED
  kImplied,   // #IMPLIED
  kFixed,     // #FIXED "value"
  kDefault,   // "value"
};

struct DtdAttribute {
  std::string name;
  AttributeType type = AttributeType::kCdata;
  AttributePresence presence = AttributePresence::kImplied;
  std::string default_value;              // kFixed / kDefault
  std::vector<std::string> enum_values;   // kEnumeration
};

/// Content category of an element declaration.
enum class ContentKind : uint8_t {
  kEmpty,     // EMPTY
  kAny,       // ANY
  kMixed,     // (#PCDATA | a | b)*  (or bare (#PCDATA))
  kChildren,  // a deterministic content model
};

struct DtdElement {
  std::string name;
  ContentKind content_kind = ContentKind::kEmpty;
  /// For kChildren: the model. For kMixed: a kChoice of the permitted
  /// child elements (possibly empty).
  std::unique_ptr<Particle> model;
  std::vector<DtdAttribute> attributes;
};

/// \brief A parsed Document Type Definition: the element and attribute-list
/// declarations the random-instance generator consumes.
class Dtd {
 public:
  /// Parses the text of a DTD (the content that would appear between the
  /// brackets of an internal subset, or a standalone .dtd file). Comments
  /// and parameter-entity declarations are skipped; conditional sections
  /// and parameter-entity references are not supported (the NASA/XMark
  /// DTDs shipped here do not use them).
  static Result<Dtd> Parse(std::string_view text);

  /// The element declared first (conventionally the document element).
  const std::string& root_name() const { return root_name_; }

  const DtdElement* FindElement(std::string_view name) const;

  const std::map<std::string, DtdElement, std::less<>>& elements() const {
    return elements_;
  }

 private:
  std::map<std::string, DtdElement, std::less<>> elements_;
  std::string root_name_;
};

}  // namespace mrx::datagen

#endif  // MRX_DATAGEN_DTD_H_
