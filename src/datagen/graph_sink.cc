#include "datagen/graph_sink.h"

#include <algorithm>
#include <cctype>

namespace mrx::datagen {

void DirectGraphSink::StartTag(std::string_view name) {
  const NodeId node = csr_.AddNode(name);
  if (stack_.empty()) {
    csr_.SetRoot(node);
  } else {
    csr_.AddEdge(stack_.back(), node, EdgeKind::kRegular);
  }
  stack_.push_back(node);
  peak_depth_ = std::max(peak_depth_, stack_.size());
}

void DirectGraphSink::Attribute(std::string_view name,
                                std::string_view value) {
  const NodeId node = stack_.back();
  // GraphBuildOptions::id_attribute default: the attribute literally named
  // "id" registers its value; everything else is a candidate reference.
  if (name == "id") {
    auto [it, inserted] = ids_.emplace(std::string(value), node);
    if (!inserted && !duplicate_id_) {
      duplicate_id_ = true;
      duplicate_id_value_ = std::string(value);
    }
    return;
  }
  AddPendingRef(node, value);
}

void DirectGraphSink::DeferredRefAttribute(std::string_view name,
                                           size_t token_count) {
  (void)name;
  // Each reserved token resolves to one single-token value later; record
  // who owns it. (An id attribute is never deferred — ids are assigned,
  // not drawn.)
  deferred_owners_.insert(deferred_owners_.end(), token_count, stack_.back());
}

void DirectGraphSink::FinishStartTag(bool self_close) {
  if (self_close) stack_.pop_back();
}

void DirectGraphSink::EndTag(std::string_view name) {
  (void)name;  // The generator emits well-nested tags by construction.
  stack_.pop_back();
}

void DirectGraphSink::ResolveDeferredToken(std::string_view value) {
  AddPendingRef(deferred_owners_[next_deferred_++], value);
}

void DirectGraphSink::AddPendingRef(NodeId from, std::string_view value) {
  pending_.push_back(PendingRef{from,
                                static_cast<uint32_t>(ref_values_.size()),
                                static_cast<uint32_t>(value.size())});
  ref_values_ += value;
}

Result<DataGraph> DirectGraphSink::Finish() && {
  if (duplicate_id_) {
    return Status::ParseError("duplicate ID value '" + duplicate_id_value_ +
                              "'");
  }
  // Same resolution as GraphBuildingHandler::Finish: the whole value first
  // (IDREF), then whitespace-separated tokens (IDREFS); values matching no
  // id are plain data and are ignored.
  std::string token;
  for (const PendingRef& ref : pending_) {
    const std::string_view value(ref_values_.data() + ref.offset, ref.len);
    token.assign(value);
    auto it = ids_.find(token);
    if (it != ids_.end()) {
      csr_.AddEdge(ref.from, it->second, EdgeKind::kReference);
      continue;
    }
    size_t pos = 0;
    while (pos < value.size()) {
      while (pos < value.size() &&
             std::isspace(static_cast<unsigned char>(value[pos]))) {
        ++pos;
      }
      size_t begin = pos;
      while (pos < value.size() &&
             !std::isspace(static_cast<unsigned char>(value[pos]))) {
        ++pos;
      }
      if (begin == pos) break;
      token.assign(value.substr(begin, pos - begin));
      auto token_it = ids_.find(token);
      if (token_it != ids_.end()) {
        csr_.AddEdge(ref.from, token_it->second, EdgeKind::kReference);
      }
    }
  }
  return std::move(csr_).Build();
}

}  // namespace mrx::datagen
