#ifndef MRX_OBS_QUERY_DIAG_H_
#define MRX_OBS_QUERY_DIAG_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/query_cost.h"

namespace mrx::obs {

/// \brief The per-query EXPLAIN record: what the chooser considered and
/// estimated, what the evaluation physically cost, which resolution levels
/// of the M*(k) hierarchy it touched, and how the cache treated it.
///
/// Kept as plain strings and numbers (no index/server types) so the obs
/// layer stays at the bottom of the dependency stack; producers
/// (ConcurrentSession, the CLI's explain verbs) fill it in, and it renders
/// itself as one-line JSON (the slow-query log format) or as human-readable
/// text (`mrx query --explain`). Schema: docs/OBSERVABILITY.md.
struct QueryDiag {
  /// One strategy the chooser considered.
  struct Candidate {
    std::string strategy;
    double estimated_cost = 0;
    bool eligible = true;  ///< False when anchoring/axes rule it out.
    bool chosen = false;
  };

  std::string query;           ///< Printed path expression.
  uint64_t trace_id = 0;       ///< Span-trace exemplar id; 0 = untraced.
  uint64_t epoch = 0;          ///< Answer-cache epoch of the snapshot.
  uint64_t graph_version = 0;  ///< Mutation batches behind the snapshot.
  bool cache_hit = false;
  bool precise = true;  ///< Answer certified without validation.

  std::string strategy;       ///< Strategy actually executed.
  double estimated_cost = 0;  ///< Chooser estimate for that strategy.
  std::vector<Candidate> considered;

  /// Actual §5-style costs (QueryStats plus the extent-algebra counters).
  uint64_t index_nodes_visited = 0;
  uint64_t data_nodes_validated = 0;
  uint64_t extent_elems_scanned = 0;
  uint64_t extent_intersect_calls = 0;
  uint64_t extent_difference_calls = 0;
  uint64_t validation_checks = 0;

  /// M*(k) components the evaluation used, ascending.
  std::vector<uint32_t> levels_touched;

  uint64_t eval_ns = 0;     ///< Index probe + validation window.
  uint64_t latency_ns = 0;  ///< Whole query() call, cache lookup included.
  uint64_t answer_size = 0;

  /// Copies the collected actual-cost counters (including the decoded
  /// levels-touched list) into this record.
  void SetCost(const QueryCostCounters& cost);

  /// One JSON object, no trailing newline — the slow-query log and
  /// `--json` renderings.
  void WriteJson(std::ostream& os) const;

  /// Multi-line human-readable rendering (`mrx query --explain`).
  void WriteText(std::ostream& os) const;
};

}  // namespace mrx::obs

#endif  // MRX_OBS_QUERY_DIAG_H_
