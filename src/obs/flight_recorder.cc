#include "obs/flight_recorder.h"

#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mrx::obs {
namespace {

std::atomic<uint64_t> g_next_recorder_id{1};

/// Crash-handler plumbing: one recorder per process owns the handler. The
/// fd is pre-opened at install time so the handler never allocates or
/// opens files.
std::atomic<int> g_crash_fd{-1};
std::atomic<FlightRecorder*> g_crash_recorder{nullptr};

void CrashHandler(int signal_number) {
  const int fd = g_crash_fd.load(std::memory_order_acquire);
  FlightRecorder* recorder = g_crash_recorder.load(std::memory_order_acquire);
  if (fd >= 0 && recorder != nullptr) {
    recorder->DumpRawTo(fd, signal_number);
  }
  std::signal(signal_number, SIG_DFL);
  std::raise(signal_number);
}

/// write(2) the whole buffer, retrying short writes. Async-signal-safe.
void WriteAll(int fd, const void* data, size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::write(fd, p, size);
    if (n <= 0) return;
    p += n;
    size -= static_cast<size_t>(n);
  }
}

/// Formats `v` into `buf` (decimal), returns the digit count. The signal
/// handler cannot call snprintf (not async-signal-safe on all libcs).
size_t FormatU64(uint64_t v, char* buf) {
  char tmp[24];
  size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  for (size_t i = 0; i < n; ++i) buf[i] = tmp[n - 1 - i];
  return n;
}

}  // namespace

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* const recorder = new FlightRecorder();
  return *recorder;
}

FlightRecorder::FlightRecorder(FlightRecorderOptions options)
    : options_(options),
      recorder_id_(
          g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)) {
  if (options_.events_per_thread == 0) {
    const_cast<FlightRecorderOptions&>(options_).events_per_thread = 1;
  }
}

FlightRecorder::~FlightRecorder() {
  // Retire the crash handler if this recorder owned it: the rings are
  // about to be freed.
  FlightRecorder* self = this;
  if (g_crash_recorder.compare_exchange_strong(self, nullptr)) {
    g_crash_fd.store(-1, std::memory_order_release);
  }
}

FlightRecorder::Ring* FlightRecorder::ThisThreadRing() {
  // Per-thread cache keyed by the recorder's process-unique id (not its
  // address, which a later recorder could reuse). Threads touch a handful
  // of recorders at most (the global one plus test-local ones), so the
  // linear scan is fine.
  struct CacheEntry {
    uint64_t recorder_id;
    Ring* ring;
  };
  thread_local std::vector<CacheEntry> cache;
  for (const CacheEntry& e : cache) {
    if (e.recorder_id == recorder_id_) return e.ring;
  }
  std::lock_guard<std::mutex> lock(registry_mu_);
  rings_.push_back(std::make_unique<Ring>(
      options_.events_per_thread, static_cast<uint32_t>(rings_.size())));
  Ring* ring = rings_.back().get();
  const size_t flat = flat_count_.load(std::memory_order_relaxed);
  if (flat < kMaxRings) {
    flat_[flat] = ring;
    flat_count_.store(flat + 1, std::memory_order_release);
  }
  cache.push_back(CacheEntry{recorder_id_, ring});
  return ring;
}

void FlightRecorder::Record(FlightEventType type, uint64_t a, uint64_t b,
                            uint16_t code) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  Ring* ring = ThisThreadRing();
  const uint64_t now = MonotonicNowNs();
  {
    std::lock_guard<std::mutex> lock(ring->mu);
    FlightEvent& e = ring->events[ring->next % ring->events.size()];
    e.ts_ns = now;
    e.thread = ring->thread;
    e.type = static_cast<uint16_t>(type);
    e.code = code;
    e.a = a;
    e.b = b;
    ++ring->next;
  }
  total_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<FlightEvent> FlightRecorder::Snapshot(size_t last_n) const {
  std::vector<FlightEvent> out;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    for (const std::unique_ptr<Ring>& ring : rings_) {
      std::lock_guard<std::mutex> ring_lock(ring->mu);
      const size_t cap = ring->events.size();
      const size_t count = static_cast<size_t>(
          std::min<uint64_t>(ring->next, cap));
      const size_t head =
          ring->next > cap ? static_cast<size_t>(ring->next % cap) : 0;
      for (size_t i = 0; i < count; ++i) {
        out.push_back(ring->events[(head + i) % cap]);
      }
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const FlightEvent& x, const FlightEvent& y) {
                     return x.ts_ns < y.ts_ns;
                   });
  if (last_n > 0 && out.size() > last_n) {
    out.erase(out.begin(),
              out.begin() + static_cast<ptrdiff_t>(out.size() - last_n));
  }
  return out;
}

void FlightRecorder::WriteJsonl(std::ostream& os, size_t last_n) const {
  for (const FlightEvent& e : Snapshot(last_n)) {
    os << "{\"ts_ns\":" << e.ts_ns << ",\"thread\":" << e.thread
       << ",\"type\":";
    AppendJsonString(os, TypeName(e.type));
    os << ",\"code\":" << e.code << ",\"a\":" << e.a << ",\"b\":" << e.b
       << "}\n";
  }
}

size_t FlightRecorder::num_threads() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  return rings_.size();
}

const char* FlightRecorder::TypeName(uint16_t type) {
  switch (static_cast<FlightEventType>(type)) {
    case FlightEventType::kNone:
      return "none";
    case FlightEventType::kQueryAdmit:
      return "query_admit";
    case FlightEventType::kQueryStart:
      return "query_start";
    case FlightEventType::kQueryPhase:
      return "query_phase";
    case FlightEventType::kStrategyDecision:
      return "strategy_decision";
    case FlightEventType::kRefinePublish:
      return "refine_publish";
    case FlightEventType::kMutationApply:
      return "mutation_apply";
    case FlightEventType::kCacheEvictionSweep:
      return "cache_eviction_sweep";
    case FlightEventType::kSlowQuery:
      return "slow_query";
    case FlightEventType::kWatchdogStall:
      return "watchdog_stall";
  }
  return "unknown";
}

Status FlightRecorder::InstallCrashHandler(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("cannot open crash-dump target: " + path);
  }
  // Hand the fd to the handler; the FILE* is leaked on purpose (the
  // process is crashing when it gets used, and fclose would invalidate
  // the fd the handler holds).
  g_crash_fd.store(fileno(file), std::memory_order_release);
  g_crash_recorder.store(this, std::memory_order_release);
  for (const int sig : {SIGSEGV, SIGBUS, SIGABRT, SIGFPE, SIGILL}) {
    std::signal(sig, CrashHandler);
  }
  return Status::Ok();
}

void FlightRecorder::DumpRawTo(int fd, int signal_number) const {
  // Header line: "MRXFLIGHT1 sig=<n> rings=<m>\n", hand-formatted (the
  // caller may be a signal handler).
  char buf[96];
  size_t n = 0;
  const char magic[] = "MRXFLIGHT1 sig=";
  for (const char* p = magic; *p != '\0'; ++p) buf[n++] = *p;
  n += FormatU64(static_cast<uint64_t>(signal_number), buf + n);
  const char rings_label[] = " rings=";
  for (const char* p = rings_label; *p != '\0'; ++p) buf[n++] = *p;
  const size_t num_rings = flat_count_.load(std::memory_order_acquire);
  n += FormatU64(num_rings, buf + n);
  buf[n++] = '\n';
  WriteAll(fd, buf, n);

  // Per ring: "ring <thread> <count>\n" then the raw 32-byte events,
  // oldest first. No locks: a racing writer can tear at most the one
  // event it is writing.
  for (size_t r = 0; r < num_rings; ++r) {
    const Ring* ring = flat_[r];
    const size_t cap = ring->events.size();
    const uint64_t next = ring->next;
    const size_t count = static_cast<size_t>(std::min<uint64_t>(next, cap));
    n = 0;
    const char ring_label[] = "ring ";
    for (const char* p = ring_label; *p != '\0'; ++p) buf[n++] = *p;
    n += FormatU64(ring->thread, buf + n);
    buf[n++] = ' ';
    n += FormatU64(count, buf + n);
    buf[n++] = '\n';
    WriteAll(fd, buf, n);
    const size_t head = next > cap ? static_cast<size_t>(next % cap) : 0;
    if (head == 0) {
      WriteAll(fd, ring->events.data(), count * sizeof(FlightEvent));
    } else {
      WriteAll(fd, ring->events.data() + head,
               (cap - head) * sizeof(FlightEvent));
      WriteAll(fd, ring->events.data(), head * sizeof(FlightEvent));
    }
  }
}

}  // namespace mrx::obs
