#include "obs/watchdog.h"

#include <chrono>
#include <fstream>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mrx::obs {

StallWatchdog::StallWatchdog(StallWatchdogOptions options)
    : options_(std::move(options)) {
  thread_ = std::thread([this] { Run(); });
}

StallWatchdog::~StallWatchdog() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

StallWatchdog::Activity* StallWatchdog::RegisterActivity(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  activities_.push_back(std::make_unique<Activity>(std::move(name)));
  return activities_.back().get();
}

uint64_t StallWatchdog::RegisterProbe(std::string name,
                                      std::function<uint64_t()> age_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = next_probe_id_++;
  probes_.push_back(Probe{id, std::move(name), std::move(age_ns), 0});
  return id;
}

void StallWatchdog::UnregisterProbe(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < probes_.size(); ++i) {
    if (probes_[i].id == id) {
      probes_.erase(probes_.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }
}

void StallWatchdog::Run() {
  const uint64_t deadline_ns = options_.deadline_ms * 1'000'000ull;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait_for(lock, std::chrono::milliseconds(options_.poll_interval_ms),
                 [&] { return stop_; });
    if (stop_) return;
    const uint64_t now = MonotonicNowNs();
    // Activities: flag once per Begin that overstays the deadline.
    for (const std::unique_ptr<Activity>& activity : activities_) {
      const uint64_t since =
          activity->busy_since_ns_.load(std::memory_order_relaxed);
      if (since != 0 && now > since && now - since > deadline_ns &&
          activity->reported_begin_ns_ != since) {
        activity->reported_begin_ns_ = since;
        ReportStall(activity->name(), now - since, /*code=*/0);
      }
    }
    // Probes: flag while over-age, at most once per deadline window.
    for (size_t i = 0; i < probes_.size(); ++i) {
      Probe& probe = probes_[i];
      const uint64_t age = probe.age_ns ? probe.age_ns() : 0;
      if (age > deadline_ns &&
          (probe.last_report_ns == 0 ||
           now - probe.last_report_ns > deadline_ns)) {
        probe.last_report_ns = now;
        ReportStall(probe.name, age, static_cast<uint16_t>(i + 1));
      }
    }
  }
}

void StallWatchdog::ReportStall(const std::string& what, uint64_t stalled_ns,
                                uint16_t code) {
  static Counter* const stalls_total =
      MetricsRegistry::Global().GetCounter("mrx_watchdog_stalls_total");
  stalls_.fetch_add(1, std::memory_order_relaxed);
  stalls_total->Increment();
  FlightRecorder::Global().Record(FlightEventType::kWatchdogStall,
                                  stalled_ns, 0, code);
  const std::string line =
      "stall: " + what + " busy " +
      std::to_string(stalled_ns / 1'000'000ull) + "ms (deadline " +
      std::to_string(options_.deadline_ms) + "ms)";
  if (options_.on_stall) {
    options_.on_stall(line);
    return;
  }
  if (!options_.dump_path.empty()) {
    std::ofstream dump(options_.dump_path, std::ios::trunc);
    if (dump) {
      dump << "{\"stall\":true,\"what\":";
      AppendJsonString(dump, what);
      dump << ",\"stalled_ns\":" << stalled_ns << "}\n";
      FlightRecorder::Global().WriteJsonl(dump);
    }
  }
}

}  // namespace mrx::obs
