#include "obs/query_diag.h"

#include <cstdio>

#include "obs/trace.h"

namespace mrx::obs {
namespace {

/// Doubles rendered the strict-JSON way: finite, plain decimal/exponent
/// form ("%.*g" never emits inf/nan for the cost estimates, which are
/// finite sums of row sizes).
void AppendJsonDouble(std::ostream& os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  os << buf;
}

}  // namespace

void QueryDiag::SetCost(const QueryCostCounters& cost) {
  extent_elems_scanned = cost.extent_elems_scanned;
  extent_intersect_calls = cost.extent_intersect_calls;
  extent_difference_calls = cost.extent_difference_calls;
  validation_checks = cost.validation_checks;
  levels_touched = cost.LevelsTouched();
}

void QueryDiag::WriteJson(std::ostream& os) const {
  os << "{\"query\":";
  AppendJsonString(os, query);
  os << ",\"strategy\":";
  AppendJsonString(os, strategy);
  os << ",\"estimated_cost\":";
  AppendJsonDouble(os, estimated_cost);
  os << ",\"cache_hit\":" << (cache_hit ? "true" : "false")
     << ",\"precise\":" << (precise ? "true" : "false")
     << ",\"epoch\":" << epoch << ",\"graph_version\":" << graph_version
     << ",\"trace_id\":" << trace_id;
  if (!considered.empty()) {
    os << ",\"considered\":[";
    for (size_t i = 0; i < considered.size(); ++i) {
      if (i > 0) os << ',';
      const Candidate& c = considered[i];
      os << "{\"strategy\":";
      AppendJsonString(os, c.strategy);
      os << ",\"estimated_cost\":";
      AppendJsonDouble(os, c.estimated_cost);
      os << ",\"eligible\":" << (c.eligible ? "true" : "false")
         << ",\"chosen\":" << (c.chosen ? "true" : "false") << '}';
    }
    os << ']';
  }
  os << ",\"cost\":{\"index_nodes_visited\":" << index_nodes_visited
     << ",\"data_nodes_validated\":" << data_nodes_validated
     << ",\"extent_elems_scanned\":" << extent_elems_scanned
     << ",\"extent_intersect_calls\":" << extent_intersect_calls
     << ",\"extent_difference_calls\":" << extent_difference_calls
     << ",\"validation_checks\":" << validation_checks << '}';
  os << ",\"levels_touched\":[";
  for (size_t i = 0; i < levels_touched.size(); ++i) {
    if (i > 0) os << ',';
    os << levels_touched[i];
  }
  os << "],\"eval_ns\":" << eval_ns << ",\"latency_ns\":" << latency_ns
     << ",\"answer_size\":" << answer_size << '}';
}

void QueryDiag::WriteText(std::ostream& os) const {
  os << "query: " << query << "\n";
  os << "strategy: " << strategy << " (estimated cost ";
  AppendJsonDouble(os, estimated_cost);
  os << " index-node visits)\n";
  os << "cache: " << (cache_hit ? "hit" : "miss")
     << "  precise: " << (precise ? "yes" : "no") << "  epoch: " << epoch
     << "  graph_version: " << graph_version << "\n";
  if (!considered.empty()) {
    os << "considered:\n";
    for (const Candidate& c : considered) {
      os << "  " << c.strategy;
      for (size_t pad = c.strategy.size(); pad < 9; ++pad) os << ' ';
      os << " est ";
      AppendJsonDouble(os, c.estimated_cost);
      if (!c.eligible) os << "  (ineligible)";
      if (c.chosen) os << "  <- chosen";
      os << "\n";
    }
  }
  os << "actual cost: index_nodes_visited=" << index_nodes_visited
     << " extent_elems_scanned=" << extent_elems_scanned
     << " data_nodes_validated=" << data_nodes_validated << "\n";
  os << "             intersect_calls=" << extent_intersect_calls
     << " difference_calls=" << extent_difference_calls
     << " validation_checks=" << validation_checks << "\n";
  os << "levels touched:";
  if (levels_touched.empty()) {
    os << " none";
  } else {
    for (uint32_t l : levels_touched) os << " I" << l;
  }
  os << "\n";
  os << "timing: eval=" << eval_ns / 1000 << "us latency="
     << latency_ns / 1000 << "us\n";
  os << "answer: " << answer_size << " nodes";
  if (trace_id != 0) os << "  (trace id " << trace_id << ")";
  os << "\n";
}

}  // namespace mrx::obs
