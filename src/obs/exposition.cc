#include "obs/exposition.h"

#include "obs/trace.h"

namespace mrx::obs {

void WritePrometheusText(const MetricsSnapshot& snapshot, std::ostream& os) {
  for (const MetricsSnapshot::CounterSample& c : snapshot.counters) {
    os << "# TYPE " << c.name << " counter\n";
    os << c.name << ' ' << c.value << '\n';
  }
  for (const MetricsSnapshot::GaugeSample& g : snapshot.gauges) {
    os << "# TYPE " << g.name << " gauge\n";
    os << g.name << ' ' << g.value << '\n';
  }
  for (const MetricsSnapshot::HistogramSample& h : snapshot.histograms) {
    os << "# TYPE " << h.name << " summary\n";
    os << h.name << "{quantile=\"0.5\"} " << h.hist.ValueAtPercentile(50)
       << '\n';
    os << h.name << "{quantile=\"0.95\"} " << h.hist.ValueAtPercentile(95)
       << '\n';
    os << h.name << "{quantile=\"0.99\"} " << h.hist.ValueAtPercentile(99)
       << '\n';
    os << h.name << "_sum " << h.hist.sum() << '\n';
    os << h.name << "_count " << h.hist.count() << '\n';
    // Not part of the summary convention, but too useful to drop; exported
    // as a companion gauge.
    os << "# TYPE " << h.name << "_max gauge\n";
    os << h.name << "_max " << h.hist.max() << '\n';
  }
}

void WriteJsonlSnapshot(const MetricsSnapshot& snapshot, std::ostream& os) {
  for (const MetricsSnapshot::CounterSample& c : snapshot.counters) {
    os << "{\"kind\":\"counter\",\"name\":";
    AppendJsonString(os, c.name);
    os << ",\"value\":" << c.value << "}\n";
  }
  for (const MetricsSnapshot::GaugeSample& g : snapshot.gauges) {
    os << "{\"kind\":\"gauge\",\"name\":";
    AppendJsonString(os, g.name);
    os << ",\"value\":" << g.value << "}\n";
  }
  for (const MetricsSnapshot::HistogramSample& h : snapshot.histograms) {
    os << "{\"kind\":\"histogram\",\"name\":";
    AppendJsonString(os, h.name);
    os << ",\"count\":" << h.hist.count() << ",\"sum\":" << h.hist.sum()
       << ",\"max\":" << h.hist.max()
       << ",\"p50\":" << h.hist.ValueAtPercentile(50)
       << ",\"p95\":" << h.hist.ValueAtPercentile(95)
       << ",\"p99\":" << h.hist.ValueAtPercentile(99) << ",\"mean\":"
       << h.hist.Mean() << "}\n";
  }
}

}  // namespace mrx::obs
