#ifndef MRX_OBS_EXPOSITION_H_
#define MRX_OBS_EXPOSITION_H_

#include <ostream>

#include "obs/metrics.h"

namespace mrx::obs {

/// \brief Prometheus text exposition (format 0.0.4) of a snapshot.
///
/// Counters and gauges become one sample each; histograms become summaries:
///   # TYPE mrx_query_eval_ns summary
///   mrx_query_eval_ns{quantile="0.5"} 1234
///   mrx_query_eval_ns{quantile="0.95"} 5678
///   mrx_query_eval_ns{quantile="0.99"} 9012
///   mrx_query_eval_ns_sum 99999
///   mrx_query_eval_ns_count 42
/// Metric names are expected to already be Prometheus-legal (the registry's
/// naming convention guarantees it); samples appear sorted by name.
void WritePrometheusText(const MetricsSnapshot& snapshot, std::ostream& os);

/// \brief JSONL exposition: one self-describing JSON object per line, e.g.
///   {"kind":"counter","name":"mrx_queries_total","value":42}
///   {"kind":"gauge","name":"mrx_server_queue_depth","value":3}
///   {"kind":"histogram","name":"...","count":9,"sum":123,"max":45,
///    "p50":10,"p95":30,"p99":44,"mean":13.67}
/// Line-oriented so snapshots can be appended to one file across a run and
/// grepped/parsed without a JSON-array reader.
void WriteJsonlSnapshot(const MetricsSnapshot& snapshot, std::ostream& os);

}  // namespace mrx::obs

#endif  // MRX_OBS_EXPOSITION_H_
