#ifndef MRX_OBS_TRACE_H_
#define MRX_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mrx::obs {

class TraceRecorder;

/// Nanoseconds on the monotonic clock (std::chrono::steady_clock) — the
/// time base of every span. Values are only meaningful relative to each
/// other within one process run.
uint64_t MonotonicNowNs();

/// One finished span, as exported to the JSONL trace. `parent_id == 0`
/// marks a root span; all ids are unique within a recorder.
struct SpanEvent {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  std::string name;
  uint64_t start_ns = 0;     ///< MonotonicNowNs() at span start.
  uint64_t duration_ns = 0;
  /// Small numeric payload (visit counts, hit flags, sizes).
  std::vector<std::pair<std::string, uint64_t>> attrs;
};

/// \brief An RAII timed section. A default-constructed (or unsampled) Span
/// is *disabled*: every operation on it is a cheap no-op, so call sites
/// never branch on whether tracing is on. Enabled spans record a SpanEvent
/// into their recorder when ended (explicitly or by the destructor).
///
/// Spans are move-only and single-threaded: a span and its children must be
/// ended on the thread that started them (the recorder itself is
/// thread-safe, so concurrent queries each carry their own span tree).
class Span {
 public:
  Span() = default;  ///< Disabled span.
  ~Span() { End(); }

  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool enabled() const { return recorder_ != nullptr; }

  /// Trace id this span belongs to (0 for a disabled span) — the exemplar
  /// handle the slow-query log stores so a JSONL record can be joined back
  /// to its span tree in trace.jsonl.
  uint64_t trace_id() const { return event_.trace_id; }

  /// Starts a child span of this one (disabled if this span is disabled).
  Span Child(std::string_view name);

  void AddAttr(std::string_view key, uint64_t value);

  /// Records the span with duration = now - start. Idempotent; the
  /// destructor calls it.
  void End();

  /// Records the span with an explicit window instead of the RAII timing.
  /// Used for *phase* spans carved out of an instrumented section after the
  /// fact (e.g. data validation time accumulated across validator calls —
  /// see docs/OBSERVABILITY.md on non-contiguous phases).
  void EndManual(uint64_t start_ns, uint64_t duration_ns);

 private:
  friend class TraceRecorder;
  Span(TraceRecorder* recorder, std::string_view name, uint64_t trace_id,
       uint64_t parent_id);

  TraceRecorder* recorder_ = nullptr;
  SpanEvent event_;
};

/// \brief A bounded, sampled collector of span events.
///
/// StartTrace() decides per call whether the new trace is sampled (every
/// `sample_every`-th call; 1 = always). Unsampled traces return disabled
/// spans whose whole lifecycle costs a couple of branches. Finished spans
/// are appended under a mutex into a true ring: once `max_events` are
/// buffered, each new event *overwrites the oldest* (the newest evidence
/// is what a post-incident look cares about). Every overwrite is counted
/// in dropped() and in the process-global `mrx_trace_dropped_total`
/// counter, so buffer pressure is visible in the metrics exposition.
struct TraceRecorderOptions {
  /// Sample every Nth trace; 1 traces everything, 0 disables tracing.
  size_t sample_every = 64;

  /// Event-buffer bound; the ring overwrites oldest events beyond it
  /// (counting each overwrite). 0 drops everything.
  size_t max_events = 200000;
};

class TraceRecorder {
 public:
  using Options = TraceRecorderOptions;

  explicit TraceRecorder(Options options = {});

  /// Starts a new (maybe sampled) root span. `always_sample` bypasses the
  /// sampling decision — used for rare, high-signal traces (refinement
  /// batches) that must not be lost to a 1-in-N sampler.
  Span StartTrace(std::string_view name, bool always_sample = false);

  size_t size() const;

  /// Events overwritten (or, with max_events == 0, discarded) so far.
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  uint64_t traces_started() const {
    return traces_.load(std::memory_order_relaxed);
  }

  /// One JSON object per line, oldest buffered event first:
  /// {"trace":1,"span":2,"parent":1,"name":"cache_lookup",
  ///  "start_ns":123,"dur_ns":456,"attrs":{"hit":1}}
  void WriteJsonl(std::ostream& os) const;

  /// Snapshot of the buffered events, oldest first (tests; WriteJsonl is
  /// the export).
  std::vector<SpanEvent> Events() const;

 private:
  friend class Span;
  uint64_t NextId() { return next_id_.fetch_add(1, std::memory_order_relaxed); }
  void Record(SpanEvent event);

  const Options options_;
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> traces_{0};
  std::atomic<uint64_t> dropped_{0};
  mutable std::mutex mu_;
  std::vector<SpanEvent> events_;
  /// Oldest buffered event once the ring has wrapped (events_ is full);
  /// the next overwrite lands here. Guarded by mu_.
  size_t ring_head_ = 0;
};

/// Appends `text` to `os` as a double-quoted JSON string with the
/// characters JSON requires escaped. Shared by the trace and snapshot
/// exporters (and the harness's bench JSON).
void AppendJsonString(std::ostream& os, std::string_view text);

}  // namespace mrx::obs

#endif  // MRX_OBS_TRACE_H_
