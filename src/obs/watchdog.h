#ifndef MRX_OBS_WATCHDOG_H_
#define MRX_OBS_WATCHDOG_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace mrx::obs {

struct StallWatchdogOptions {
  /// An activity busy longer than this (or a probe reporting an age above
  /// it) is a stall.
  uint64_t deadline_ms = 5000;

  /// Poll cadence of the watchdog thread.
  uint64_t poll_interval_ms = 250;

  /// Optional path the flight recorder is dumped to (JSONL, truncate per
  /// stall) when a stall fires; empty = no dump. The `on_stall` callback,
  /// when set, runs instead of the dump.
  std::string dump_path;

  /// Called on each detected stall with a one-line description. Replaces
  /// the default flight-recorder dump; tests hook this.
  std::function<void(const std::string&)> on_stall;
};

/// \brief A deadline monitor for the writer-side progress of the serving
/// stack: refiner publishes, mutation applies, and request-queue age.
///
/// Two kinds of subjects:
///  - An **Activity** is a begin/end window (one refine-publish, one
///    mutation apply). Begin stamps a monotonic start; the watchdog thread
///    flags any activity that has been busy past the deadline, once per
///    begin.
///  - A **probe** is a pull-style age callback (e.g. "age of the oldest
///    queued request in ns"); the watchdog flags it while the age exceeds
///    the deadline, rate-limited to once per deadline window.
///
/// On a stall the watchdog increments `mrx_watchdog_stalls_total`, records
/// a kWatchdogStall flight event, and dumps the flight recorder (or runs
/// the on_stall hook). Detection is advisory — nothing is killed or
/// unblocked; the artifact trail is the point (docs/OBSERVABILITY.md).
class StallWatchdog {
 public:
  /// One monitored begin/end subject. Owned by the watchdog (stable
  /// address for the lifetime of the watchdog); Begin/End are wait-free.
  class Activity {
   public:
    explicit Activity(std::string name) : name_(std::move(name)) {}

    void Begin(uint64_t now_ns) {
      busy_since_ns_.store(now_ns, std::memory_order_relaxed);
    }
    void End() { busy_since_ns_.store(0, std::memory_order_relaxed); }

    const std::string& name() const { return name_; }

   private:
    friend class StallWatchdog;
    const std::string name_;
    std::atomic<uint64_t> busy_since_ns_{0};
    uint64_t reported_begin_ns_ = 0;  ///< Watchdog thread only.
  };

  /// RAII Begin/End around one unit of monitored work.
  class ScopedActivity {
   public:
    ScopedActivity(Activity* activity, uint64_t now_ns)
        : activity_(activity) {
      if (activity_ != nullptr) activity_->Begin(now_ns);
    }
    ~ScopedActivity() {
      if (activity_ != nullptr) activity_->End();
    }
    ScopedActivity(const ScopedActivity&) = delete;
    ScopedActivity& operator=(const ScopedActivity&) = delete;

   private:
    Activity* activity_;
  };

  explicit StallWatchdog(StallWatchdogOptions options = {});
  ~StallWatchdog();

  StallWatchdog(const StallWatchdog&) = delete;
  StallWatchdog& operator=(const StallWatchdog&) = delete;

  /// Registers a begin/end subject. The returned pointer stays valid for
  /// the watchdog's lifetime (callers must End() before destroying the
  /// watchdog's owner relationships, i.e. the watchdog must outlive its
  /// registered users).
  Activity* RegisterActivity(std::string name);

  /// Registers a pull-style age probe; `age_ns` is called from the
  /// watchdog thread. Returns a handle id for UnregisterProbe.
  uint64_t RegisterProbe(std::string name,
                         std::function<uint64_t()> age_ns);
  void UnregisterProbe(uint64_t id);

  uint64_t stalls() const { return stalls_.load(std::memory_order_relaxed); }

 private:
  struct Probe {
    uint64_t id;
    std::string name;
    std::function<uint64_t()> age_ns;
    uint64_t last_report_ns = 0;
  };

  void Run();
  void ReportStall(const std::string& what, uint64_t stalled_ns,
                   uint16_t code);

  const StallWatchdogOptions options_;
  std::atomic<uint64_t> stalls_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::vector<std::unique_ptr<Activity>> activities_;
  std::vector<Probe> probes_;
  uint64_t next_probe_id_ = 1;

  std::thread thread_;
};

}  // namespace mrx::obs

#endif  // MRX_OBS_WATCHDOG_H_
