#ifndef MRX_OBS_FLIGHT_RECORDER_H_
#define MRX_OBS_FLIGHT_RECORDER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "util/result.h"

namespace mrx::obs {

/// What a flight-recorder event describes. Values are stable (they appear
/// in crash dumps and the diag bundle); append only.
enum class FlightEventType : uint16_t {
  kNone = 0,
  kQueryAdmit = 1,        ///< a = queue depth at admit.
  kQueryStart = 2,        ///< a = snapshot epoch, b = graph version.
  kQueryPhase = 3,        ///< a = eval_ns, b = index nodes visited.
  kStrategyDecision = 4,  ///< code = strategy, a = estimated cost (units).
  kRefinePublish = 5,     ///< a = publish_ns, b = new epoch.
  kMutationApply = 6,     ///< a = apply_ns, b = new graph version.
  kCacheEvictionSweep = 7,  ///< a = new epoch (invalidation sweep).
  kSlowQuery = 8,         ///< a = latency_ns, b = trace id.
  kWatchdogStall = 9,     ///< a = stalled-for ns, code = probe index.
};

/// One compact binary event: 32 bytes, fixed layout, no pointers — safe to
/// write raw from a fatal-signal handler.
struct FlightEvent {
  uint64_t ts_ns = 0;   ///< MonotonicNowNs() at record time.
  uint32_t thread = 0;  ///< Recorder-local thread ordinal.
  uint16_t type = 0;    ///< FlightEventType.
  uint16_t code = 0;    ///< Small per-type discriminator.
  uint64_t a = 0;
  uint64_t b = 0;
};
static_assert(sizeof(FlightEvent) == 32, "FlightEvent must stay compact");

struct FlightRecorderOptions {
  /// Ring capacity per recording thread. At 32 bytes/event the default is
  /// 128 KiB per thread — enough for the last few seconds of server
  /// activity, small enough to stay always-on.
  size_t events_per_thread = 4096;
};

/// \brief An always-on, per-thread ring buffer of compact binary events —
/// the "what was the process doing just before X" record that metrics
/// (aggregates) and traces (sampled) cannot answer.
///
/// Record() writes into the calling thread's private ring under that
/// ring's own mutex (uncontended on the hot path: only Snapshot takes
/// another thread's ring mutex), overwriting the oldest event when full.
/// Snapshot() merges all rings, timestamp-sorted. The crash handler writes
/// the raw rings to a pre-opened fd without locks or allocation, then
/// re-raises — best effort, but the rings are plain arrays, so a torn
/// in-progress event is the worst case.
class FlightRecorder {
 public:
  /// The process-wide recorder every subsystem records into. Never
  /// destroyed (like MetricsRegistry::Global()).
  static FlightRecorder& Global();

  explicit FlightRecorder(FlightRecorderOptions options = {});
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Records one event into the calling thread's ring. Cheap: an atomic
  /// enabled check, a thread-local ring lookup, one uncontended lock, one
  /// 32-byte store.
  void Record(FlightEventType type, uint64_t a = 0, uint64_t b = 0,
              uint16_t code = 0);

  /// Turns recording off/on (`mrx serve-bench --diag off` for overhead
  /// A/B runs). Events recorded while disabled are simply not written.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// All buffered events, merged across rings and sorted by timestamp;
  /// `last_n` > 0 keeps only the newest n.
  std::vector<FlightEvent> Snapshot(size_t last_n = 0) const;

  /// One JSON object per line:
  /// {"ts_ns":1,"thread":0,"type":"query_start","code":0,"a":2,"b":3}
  void WriteJsonl(std::ostream& os, size_t last_n = 0) const;

  /// Events ever recorded (including overwritten ones).
  uint64_t total_recorded() const {
    return total_.load(std::memory_order_relaxed);
  }

  /// Rings registered so far (== threads that have recorded).
  size_t num_threads() const;

  static const char* TypeName(uint16_t type);

  /// Installs a best-effort fatal-signal handler (SIGSEGV/SIGBUS/SIGABRT/
  /// SIGFPE/SIGILL) that dumps this recorder's raw rings to `path` and
  /// re-raises. One recorder per process can own the handler; installing
  /// again replaces the dump target.
  Status InstallCrashHandler(const std::string& path);

  /// The crash handler's writer, public for tests: appends a small text
  /// header then each ring's raw event bytes to `fd` using only
  /// async-signal-safe calls (write(2); no locks, no allocation).
  void DumpRawTo(int fd, int signal_number) const;

 private:
  struct Ring {
    Ring(size_t capacity, uint32_t thread)
        : thread(thread), events(capacity) {}
    mutable std::mutex mu;
    const uint32_t thread;
    uint64_t next = 0;  ///< Events ever written to this ring.
    std::vector<FlightEvent> events;  ///< Fixed size, ring-indexed.
  };

  Ring* ThisThreadRing();

  const FlightRecorderOptions options_;
  const uint64_t recorder_id_;  ///< Process-unique; keys the TLS cache.
  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> total_{0};

  mutable std::mutex registry_mu_;
  std::vector<std::unique_ptr<Ring>> rings_;

  /// Lock-free view of the rings for the signal handler: a fixed array
  /// filled left to right with release stores; the handler reads count
  /// with acquire and never touches beyond it.
  static constexpr size_t kMaxRings = 256;
  std::array<Ring*, kMaxRings> flat_{};
  std::atomic<size_t> flat_count_{0};
};

}  // namespace mrx::obs

#endif  // MRX_OBS_FLIGHT_RECORDER_H_
