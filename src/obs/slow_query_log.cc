#include "obs/slow_query_log.h"

#include <sstream>
#include <utility>

#include "obs/metrics.h"

namespace mrx::obs {

SlowQueryLog::SlowQueryLog(SlowQueryLogOptions options) : options_(options) {}

void SlowQueryLog::Append(const QueryDiag& diag) {
  static Counter* const slow_queries =
      MetricsRegistry::Global().GetCounter("mrx_slow_queries_total");
  std::ostringstream line;
  diag.WriteJson(line);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (options_.max_records > 0 &&
        records_.size() >= options_.max_records) {
      records_.pop_front();
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    records_.push_back(std::move(line).str());
  }
  total_.fetch_add(1, std::memory_order_relaxed);
  if (diag.trace_id != 0) {
    last_trace_id_.store(diag.trace_id, std::memory_order_relaxed);
  }
  slow_queries->Increment();
}

void SlowQueryLog::WriteJsonl(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& record : records_) os << record << "\n";
}

size_t SlowQueryLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

}  // namespace mrx::obs
