#include "obs/trace.h"

#include <chrono>
#include <cstdio>

#include "obs/metrics.h"

namespace mrx::obs {
namespace {

/// Process-global overwrite counter, shared by every recorder: exposes
/// dropped() in the Prometheus/JSONL expositions. Resolved once.
obs::Counter* TraceDroppedCounter() {
  static obs::Counter* const dropped =
      obs::MetricsRegistry::Global().GetCounter("mrx_trace_dropped_total");
  return dropped;
}

}  // namespace

uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void AppendJsonString(std::ostream& os, std::string_view text) {
  os << '"';
  for (const char ch : text) {
    switch (ch) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          os << buf;
        } else {
          os << ch;
        }
    }
  }
  os << '"';
}

// --- Span ------------------------------------------------------------------

Span::Span(TraceRecorder* recorder, std::string_view name, uint64_t trace_id,
           uint64_t parent_id)
    : recorder_(recorder) {
  event_.trace_id = trace_id;
  event_.span_id = recorder->NextId();
  event_.parent_id = parent_id;
  event_.name = name;
  event_.start_ns = MonotonicNowNs();
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    recorder_ = other.recorder_;
    event_ = std::move(other.event_);
    other.recorder_ = nullptr;
  }
  return *this;
}

Span Span::Child(std::string_view name) {
  if (!enabled()) return Span();
  return Span(recorder_, name, event_.trace_id, event_.span_id);
}

void Span::AddAttr(std::string_view key, uint64_t value) {
  if (!enabled()) return;
  event_.attrs.emplace_back(std::string(key), value);
}

void Span::End() {
  if (!enabled()) return;
  event_.duration_ns = MonotonicNowNs() - event_.start_ns;
  TraceRecorder* recorder = recorder_;
  recorder_ = nullptr;
  recorder->Record(std::move(event_));
}

void Span::EndManual(uint64_t start_ns, uint64_t duration_ns) {
  if (!enabled()) return;
  event_.start_ns = start_ns;
  event_.duration_ns = duration_ns;
  TraceRecorder* recorder = recorder_;
  recorder_ = nullptr;
  recorder->Record(std::move(event_));
}

// --- TraceRecorder ---------------------------------------------------------

TraceRecorder::TraceRecorder(Options options) : options_(options) {}

Span TraceRecorder::StartTrace(std::string_view name, bool always_sample) {
  if (options_.sample_every == 0) return Span();
  const uint64_t n = traces_.fetch_add(1, std::memory_order_relaxed);
  if (!always_sample && n % options_.sample_every != 0) return Span();
  const uint64_t trace_id = NextId();
  return Span(this, name, trace_id, /*parent_id=*/0);
}

void TraceRecorder::Record(SpanEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.max_events == 0) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    TraceDroppedCounter()->Increment();
    return;
  }
  if (events_.size() < options_.max_events) {
    events_.push_back(std::move(event));
    return;
  }
  // Ring: overwrite the oldest buffered event and count the overwrite —
  // the newest spans are the ones a post-incident look needs.
  events_[ring_head_] = std::move(event);
  ring_head_ = (ring_head_ + 1) % events_.size();
  dropped_.fetch_add(1, std::memory_order_relaxed);
  TraceDroppedCounter()->Increment();
}

size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<SpanEvent> TraceRecorder::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanEvent> out;
  out.reserve(events_.size());
  // Rotate so the oldest event comes first (ring_head_ is 0 until the
  // ring wraps, so the un-wrapped case is the identity).
  for (size_t i = 0; i < events_.size(); ++i) {
    out.push_back(events_[(ring_head_ + i) % events_.size()]);
  }
  return out;
}

void TraceRecorder::WriteJsonl(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < events_.size(); ++i) {
    const SpanEvent& e = events_[(ring_head_ + i) % events_.size()];
    os << "{\"trace\":" << e.trace_id << ",\"span\":" << e.span_id
       << ",\"parent\":" << e.parent_id << ",\"name\":";
    AppendJsonString(os, e.name);
    os << ",\"start_ns\":" << e.start_ns << ",\"dur_ns\":" << e.duration_ns;
    if (!e.attrs.empty()) {
      os << ",\"attrs\":{";
      for (size_t i = 0; i < e.attrs.size(); ++i) {
        if (i > 0) os << ',';
        AppendJsonString(os, e.attrs[i].first);
        os << ':' << e.attrs[i].second;
      }
      os << '}';
    }
    os << "}\n";
  }
}

}  // namespace mrx::obs
