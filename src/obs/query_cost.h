#ifndef MRX_OBS_QUERY_COST_H_
#define MRX_OBS_QUERY_COST_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mrx::obs {

/// \brief Actual per-query cost counters in the spirit of the paper's §5
/// metrics: what the evaluation *physically did*, as opposed to the index
/// node visits the StrategyChooser *estimated*. Collected by the inline
/// hooks below, which the extent algebra (`index/extent_ops.h`), the M*(k)
/// query strategies, and the data-graph validator call unconditionally —
/// each hook is one thread-local load plus a branch, so the counters are
/// cheap enough to leave always-on (docs/OBSERVABILITY.md).
struct QueryCostCounters {
  /// Extent elements touched while collecting answers, descending through
  /// the hierarchy, or feeding the intersection/difference kernels.
  uint64_t extent_elems_scanned = 0;

  /// Calls into the shared extent-algebra kernels.
  uint64_t extent_intersect_calls = 0;
  uint64_t extent_difference_calls = 0;

  /// DataEvaluator::HasIncomingPath invocations (one per candidate data
  /// node whose membership needed validation).
  uint64_t validation_checks = 0;

  /// Bit i set = M*(k) component min(i, 31) was touched by the evaluation
  /// (which resolution levels of the multiresolution hierarchy the query
  /// actually used).
  uint32_t levels_touched_mask = 0;

  /// The touched component indices, decoded from levels_touched_mask in
  /// ascending order.
  std::vector<uint32_t> LevelsTouched() const {
    std::vector<uint32_t> out;
    for (uint32_t i = 0; i < 32; ++i) {
      if (levels_touched_mask & (1u << i)) out.push_back(i);
    }
    return out;
  }
};

namespace cost_internal {
/// The calling thread's active collector; null = counting off. Installed
/// by QueryCostScope only.
extern thread_local QueryCostCounters* active;
}  // namespace cost_internal

/// \brief RAII: installs `counters` as the calling thread's cost collector
/// for the enclosed evaluation. Scopes nest (the previous collector is
/// restored on destruction; an inner scope's counts are *not* added to the
/// outer one). On destruction the collected counts are also flushed into
/// the process-global `mrx_cost_*_total` registry counters, so process
/// totals exist even when nobody keeps the per-query struct.
class QueryCostScope {
 public:
  explicit QueryCostScope(QueryCostCounters* counters);
  ~QueryCostScope();

  QueryCostScope(const QueryCostScope&) = delete;
  QueryCostScope& operator=(const QueryCostScope&) = delete;

 private:
  QueryCostCounters* counters_;
  QueryCostCounters* prev_;
};

/// `n` extent elements were read (answer collection, hierarchy descent,
/// prefilter mapping).
inline void CountExtentScan(uint64_t n) {
  if (QueryCostCounters* c = cost_internal::active) {
    c->extent_elems_scanned += n;
  }
}

/// One Intersect kernel call that read `scanned` input elements.
inline void CountIntersect(uint64_t scanned) {
  if (QueryCostCounters* c = cost_internal::active) {
    ++c->extent_intersect_calls;
    c->extent_elems_scanned += scanned;
  }
}

/// One Difference kernel call that read `scanned` input elements.
inline void CountDifference(uint64_t scanned) {
  if (QueryCostCounters* c = cost_internal::active) {
    ++c->extent_difference_calls;
    c->extent_elems_scanned += scanned;
  }
}

/// One validation-oracle call (DataEvaluator::HasIncomingPath).
inline void CountValidationCheck() {
  if (QueryCostCounters* c = cost_internal::active) ++c->validation_checks;
}

/// Component `ci` of the M*(k) hierarchy was used by the evaluation.
inline void CountComponentTouched(size_t ci) {
  if (QueryCostCounters* c = cost_internal::active) {
    c->levels_touched_mask |= 1u << (ci < 31 ? ci : 31);
  }
}

}  // namespace mrx::obs

#endif  // MRX_OBS_QUERY_COST_H_
