#include "obs/query_cost.h"

#include "obs/metrics.h"

namespace mrx::obs {

namespace cost_internal {
thread_local QueryCostCounters* active = nullptr;
}  // namespace cost_internal

QueryCostScope::QueryCostScope(QueryCostCounters* counters)
    : counters_(counters), prev_(cost_internal::active) {
  cost_internal::active = counters;
}

QueryCostScope::~QueryCostScope() {
  cost_internal::active = prev_;
  if (counters_ == nullptr) return;
  // One flush per scope (per query), so the always-on registry totals cost
  // nothing on the per-element hot path. Handles are resolved once and
  // leaked with the registry.
  struct Handles {
    Counter* scanned;
    Counter* intersects;
    Counter* differences;
    Counter* checks;
  };
  static Handles* const h = new Handles{
      MetricsRegistry::Global().GetCounter(
          "mrx_cost_extent_elems_scanned_total"),
      MetricsRegistry::Global().GetCounter(
          "mrx_cost_extent_intersect_calls_total"),
      MetricsRegistry::Global().GetCounter(
          "mrx_cost_extent_difference_calls_total"),
      MetricsRegistry::Global().GetCounter(
          "mrx_cost_validation_checks_total")};
  if (counters_->extent_elems_scanned != 0) {
    h->scanned->Increment(counters_->extent_elems_scanned);
  }
  if (counters_->extent_intersect_calls != 0) {
    h->intersects->Increment(counters_->extent_intersect_calls);
  }
  if (counters_->extent_difference_calls != 0) {
    h->differences->Increment(counters_->extent_difference_calls);
  }
  if (counters_->validation_checks != 0) {
    h->checks->Increment(counters_->validation_checks);
  }
}

}  // namespace mrx::obs
