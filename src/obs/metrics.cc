#include "obs/metrics.h"

#include <functional>
#include <thread>

namespace mrx::obs {

size_t ThisThreadStripe() {
  static thread_local const size_t stripe =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      kMetricStripes;
  return stripe;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* const global = new MetricsRegistry();
  return *global;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->Value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->Value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.push_back({name, histogram->Merged()});
  }
  return snapshot;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    for (Counter::Cell& c : counter->cells_) {
      c.v.store(0, std::memory_order_relaxed);
    }
  }
  for (auto& [name, gauge] : gauges_) gauge->Set(0);
  for (auto& [name, histogram] : histograms_) {
    for (Histogram::Cell& c : histogram->cells_) {
      std::lock_guard<std::mutex> cell_lock(c.mu);
      c.hist.Reset();
    }
  }
}

uint64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  for (const CounterSample& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

int64_t MetricsSnapshot::GaugeValue(std::string_view name) const {
  for (const GaugeSample& g : gauges) {
    if (g.name == name) return g.value;
  }
  return 0;
}

const LatencyHistogram* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  for (const HistogramSample& h : histograms) {
    if (h.name == name) return &h.hist;
  }
  return nullptr;
}

}  // namespace mrx::obs
