#ifndef MRX_OBS_SLOW_QUERY_LOG_H_
#define MRX_OBS_SLOW_QUERY_LOG_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <ostream>
#include <string>

#include "obs/query_diag.h"

namespace mrx::obs {

struct SlowQueryLogOptions {
  /// Retained records; the oldest is dropped (and counted) when full.
  size_t max_records = 1024;
};

/// \brief A bounded log of EXPLAIN records for queries that crossed the
/// slow-query latency threshold (ConcurrentSessionOptions::slow_query_ns).
///
/// Records are serialized to one-line JSON at append time (the producer's
/// QueryDiag is transient) and kept in a drop-oldest deque, so a burst of
/// slow queries costs bounded memory and the newest evidence survives.
/// Appends also bump the process-global `mrx_slow_queries_total` counter.
class SlowQueryLog {
 public:
  explicit SlowQueryLog(SlowQueryLogOptions options = {});

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  /// Serializes `diag` and appends it. Thread-safe.
  void Append(const QueryDiag& diag);

  /// Writes the retained records, oldest first, one JSON object per line.
  void WriteJsonl(std::ostream& os) const;

  size_t size() const;

  /// Records ever appended / dropped by the bound.
  uint64_t total() const { return total_.load(std::memory_order_relaxed); }
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Trace id of the most recent slow query (0 if none was traced) — the
  /// exemplar ServerStats carries.
  uint64_t last_trace_id() const {
    return last_trace_id_.load(std::memory_order_relaxed);
  }

 private:
  const SlowQueryLogOptions options_;
  mutable std::mutex mu_;
  std::deque<std::string> records_;
  std::atomic<uint64_t> total_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> last_trace_id_{0};
};

}  // namespace mrx::obs

#endif  // MRX_OBS_SLOW_QUERY_LOG_H_
