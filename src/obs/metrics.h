#ifndef MRX_OBS_METRICS_H_
#define MRX_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/latency_histogram.h"

namespace mrx::obs {

/// Stripe count for the sharded hot-path instruments. Sixteen stripes keep
/// two threads on the same cache line rare at the worker counts the server
/// runs (and a stripe is one cache line, so the memory cost is 1 KiB per
/// counter).
inline constexpr size_t kMetricStripes = 16;

/// Index of the calling thread's stripe: a cheap hash of the thread id,
/// computed once per thread.
size_t ThisThreadStripe();

/// \brief A monotonically increasing counter, striped across cache-line-
/// aligned atomics so concurrent Increment() calls from different threads
/// never contend. Increment is wait-free; Value() sums the stripes (it may
/// miss increments that race with it, which is fine for telemetry).
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    cells_[ThisThreadStripe()].v.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  friend class MetricsRegistry;
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  std::array<Cell, kMetricStripes> cells_{};
};

/// \brief A point-in-time signed value (queue depth, index size). Set/Add
/// are single relaxed atomic operations.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief A distribution of uint64 samples, striped like Counter. Each
/// stripe pairs a LatencyHistogram (the engine: log-bucketed, ~6% quantile
/// error) with its own mutex; Record() locks only the calling thread's
/// stripe, which is uncontended unless two threads hash to the same stripe
/// *and* race, so the hot path stays at roughly mutex-uncontended cost.
class Histogram {
 public:
  void Record(uint64_t value) {
    Cell& c = cells_[ThisThreadStripe()];
    std::lock_guard<std::mutex> lock(c.mu);
    c.hist.Record(value);
  }

  /// All stripes merged into one histogram.
  LatencyHistogram Merged() const {
    LatencyHistogram out;
    for (const Cell& c : cells_) {
      std::lock_guard<std::mutex> lock(c.mu);
      out.Merge(c.hist);
    }
    return out;
  }

 private:
  friend class MetricsRegistry;
  struct Cell {
    mutable std::mutex mu;
    LatencyHistogram hist;
  };
  std::array<Cell, kMetricStripes> cells_{};
};

/// A consistent-enough copy of every registered metric, sorted by name
/// (registration order is irrelevant, exposition is deterministic).
struct MetricsSnapshot {
  struct CounterSample {
    std::string name;
    uint64_t value;
  };
  struct GaugeSample {
    std::string name;
    int64_t value;
  };
  struct HistogramSample {
    std::string name;
    LatencyHistogram hist;
  };

  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// Lookup helpers for tests and reporting code; return 0 / an empty
  /// histogram when `name` was never registered.
  uint64_t CounterValue(std::string_view name) const;
  int64_t GaugeValue(std::string_view name) const;
  const LatencyHistogram* FindHistogram(std::string_view name) const;
};

/// \brief The process-wide name → instrument table.
///
/// Instrumented components resolve their handles once (at construction) and
/// then record through the stable Counter*/Gauge*/Histogram* pointers — the
/// registry mutex is only taken on registration and Snapshot(), never on
/// the record path. Names follow Prometheus convention
/// (`mrx_<subsystem>_<what>[_total|_ns]`, see docs/OBSERVABILITY.md for the
/// catalog); registering the same name twice returns the same instrument.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-global registry every component defaults to. Never
  /// destroyed (intentionally leaked) so handles stay valid during static
  /// teardown.
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered instrument, keeping handles valid. For tests
  /// that want a clean slate of the global registry.
  void ResetForTest();

 private:
  mutable std::mutex mu_;
  // std::map keeps snapshots sorted by name with no extra work; these are
  // touched only at registration/snapshot frequency.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace mrx::obs

#endif  // MRX_OBS_METRICS_H_
