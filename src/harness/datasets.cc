#include "harness/datasets.h"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "datagen/dtd.h"
#include "datagen/dtd_generator.h"
#include "datagen/graph_sink.h"
#include "datagen/nasa.h"
#include "datagen/xmark.h"
#include "xml/graph_builder.h"

namespace mrx::harness {
namespace {

/// Generator knobs for the catalog/section bench dataset; one definition
/// shared by the oracle and streamed builders so they stay the same graph.
datagen::DtdGeneratorOptions DtdRandomOptions(size_t target_elements,
                                              uint64_t seed) {
  datagen::DtdGeneratorOptions options;
  options.seed = seed;
  options.min_elements = target_elements;
  options.max_elements = target_elements * 2;
  options.star_mean = 2.0;
  options.max_depth = 14;
  return options;
}

}  // namespace

Result<DataGraph> BuildXMarkGraph(double scale, uint64_t seed) {
  std::string doc =
      datagen::GenerateXMarkDocument(datagen::XMarkOptions::Scaled(scale, seed));
  return xml::BuildGraphFromXml(doc);
}

Result<DataGraph> BuildNasaGraph(double scale, uint64_t seed) {
  MRX_ASSIGN_OR_RETURN(std::string doc,
                       datagen::GenerateNasaDocument(scale, seed));
  return xml::BuildGraphFromXml(doc);
}

Result<DataGraph> BuildXMarkGraphStreamed(double scale, uint64_t seed) {
  datagen::DirectGraphSink sink;
  datagen::GenerateXMarkDocument(datagen::XMarkOptions::Scaled(scale, seed),
                                 &sink);
  return std::move(sink).Finish();
}

Result<DataGraph> BuildNasaGraphStreamed(double scale, uint64_t seed) {
  datagen::DirectGraphSink sink;
  MRX_RETURN_IF_ERROR(datagen::GenerateNasaDocument(scale, seed, &sink));
  return std::move(sink).Finish();
}

const char* BenchCatalogDtd() {
  // A compact recursive DTD in the spirit of src/check/case_gen.cc: nested
  // repetition plus ID/IDREF attributes, so the generated graph has the
  // multi-parent, cyclic shape that stresses signature grouping.
  return R"(
<!ELEMENT catalog (section+)>
<!ELEMENT section (section*, item*, note?)>
<!ELEMENT item (name, ref*)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT note (#PCDATA)>
<!ELEMENT ref EMPTY>
<!ATTLIST item id ID #REQUIRED>
<!ATTLIST ref target IDREF #REQUIRED>
)";
}

Result<DataGraph> BuildDtdRandomGraph(size_t target_elements, uint64_t seed) {
  MRX_ASSIGN_OR_RETURN(datagen::Dtd dtd,
                       datagen::Dtd::Parse(BenchCatalogDtd()));
  MRX_ASSIGN_OR_RETURN(
      std::string doc,
      datagen::GenerateDocument(dtd, DtdRandomOptions(target_elements, seed)));
  return xml::BuildGraphFromXml(doc);
}

Result<DataGraph> BuildDtdRandomGraphStreamed(size_t target_elements,
                                              uint64_t seed) {
  MRX_ASSIGN_OR_RETURN(datagen::Dtd dtd,
                       datagen::Dtd::Parse(BenchCatalogDtd()));
  datagen::DirectGraphSink sink;
  MRX_RETURN_IF_ERROR(datagen::GenerateDocument(
      dtd, DtdRandomOptions(target_elements, seed), &sink));
  return std::move(sink).Finish();
}

double XMarkScaleForNodes(size_t nodes) {
  return static_cast<double>(nodes) / 120000.0;
}

std::string ScaleTierName(size_t nodes) {
  char buf[32];
  if (nodes >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%.1fm",
                  static_cast<double>(nodes) / 1000000.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%zuk", nodes / 1000);
  }
  return buf;
}

std::vector<ScaleTier> ScaleBenchTiers() {
  const double scale = BenchScaleFromEnv(1.0);
  std::vector<ScaleTier> tiers;
  for (size_t base : {100000u, 500000u, 2000000u}) {
    const size_t nodes =
        static_cast<size_t>(static_cast<double>(base) * scale);
    if (nodes < 1000) continue;  // Sub-1k tiers measure only noise.
    tiers.push_back(ScaleTier{ScaleTierName(nodes), nodes});
  }
  return tiers;
}

double BenchScaleFromEnv(double default_scale) {
  const char* env = std::getenv("MRX_SCALE");
  if (env == nullptr || *env == '\0') return default_scale;
  char* end = nullptr;
  double value = std::strtod(env, &end);
  if (end == env || value <= 0.0) return default_scale;
  return value;
}

}  // namespace mrx::harness
