#include "harness/datasets.h"

#include <cstdlib>
#include <string>

#include "datagen/nasa.h"
#include "datagen/xmark.h"
#include "xml/graph_builder.h"

namespace mrx::harness {

Result<DataGraph> BuildXMarkGraph(double scale, uint64_t seed) {
  std::string doc =
      datagen::GenerateXMarkDocument(datagen::XMarkOptions::Scaled(scale, seed));
  return xml::BuildGraphFromXml(doc);
}

Result<DataGraph> BuildNasaGraph(double scale, uint64_t seed) {
  MRX_ASSIGN_OR_RETURN(std::string doc,
                       datagen::GenerateNasaDocument(scale, seed));
  return xml::BuildGraphFromXml(doc);
}

double BenchScaleFromEnv(double default_scale) {
  const char* env = std::getenv("MRX_SCALE");
  if (env == nullptr || *env == '\0') return default_scale;
  char* end = nullptr;
  double value = std::strtod(env, &end);
  if (end == env || value <= 0.0) return default_scale;
  return value;
}

}  // namespace mrx::harness
