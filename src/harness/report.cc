#include "harness/report.h"

#include <cmath>
#include <cstdio>

#include "obs/trace.h"
#include "util/table_writer.h"

namespace mrx::harness {

void PrintCostVsSize(std::ostream& os, const std::string& title,
                     const std::vector<IndexRunResult>& runs) {
  os << "== " << title << " ==\n";
  TableWriter table({"index", "nodes", "edges", "avg_cost", "index_visits",
                     "validation"});
  for (const IndexRunResult& run : runs) {
    table.AddRowValues(run.index_name, run.nodes, run.edges,
                       run.avg_query_cost, run.avg_index_cost,
                       run.avg_validation_cost);
  }
  table.RenderText(os);
  os << "\n";
}

void PrintGrowth(std::ostream& os, const std::string& title,
                 const std::vector<IndexRunResult>& runs) {
  os << "== " << title << " ==\n";
  std::vector<std::string> headers = {"queries"};
  for (const IndexRunResult& run : runs) {
    headers.push_back(run.index_name + " nodes");
    headers.push_back(run.index_name + " edges");
  }
  TableWriter table(headers);
  if (!runs.empty()) {
    for (size_t i = 0; i < runs.front().growth.size(); ++i) {
      std::vector<std::string> row;
      row.push_back(
          TableWriter::Format(runs.front().growth[i].queries_processed));
      for (const IndexRunResult& run : runs) {
        if (i < run.growth.size()) {
          row.push_back(TableWriter::Format(run.growth[i].nodes));
          row.push_back(TableWriter::Format(run.growth[i].edges));
        } else {
          row.push_back("-");
          row.push_back("-");
        }
      }
      table.AddRow(std::move(row));
    }
  }
  table.RenderText(os);
  os << "\n";
}

void PrintHistogram(std::ostream& os, const std::string& title,
                    const std::vector<double>& fractions) {
  os << "== " << title << " ==\n";
  TableWriter table({"query_length", "fraction"});
  for (size_t i = 0; i < fractions.size(); ++i) {
    table.AddRowValues(i, fractions[i]);
  }
  table.RenderText(os);
  os << "\n";
}

void WriteBenchJson(
    std::ostream& os, const std::string& bench_name,
    const std::vector<std::pair<std::string, double>>& metrics) {
  os << "{\"bench\":";
  obs::AppendJsonString(os, bench_name);
  os << ",\"metrics\":{";
  for (size_t i = 0; i < metrics.size(); ++i) {
    if (i > 0) os << ',';
    obs::AppendJsonString(os, metrics[i].first);
    const double v = std::isfinite(metrics[i].second) ? metrics[i].second : 0;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    os << ':' << buf;
  }
  os << "}}\n";
}

void PrintDatasetSummary(std::ostream& os, const std::string& name,
                         const DataGraph& graph) {
  os << "dataset " << name << ": " << graph.num_nodes() << " nodes, "
     << graph.num_edges() << " edges (" << graph.num_reference_edges()
     << " reference), " << graph.symbols().size() << " labels\n";
}

}  // namespace mrx::harness
