#include "harness/experiment.h"

#include "index/a_k_index.h"
#include "index/d_k_index.h"
#include "index/m_k_index.h"
#include "index/m_star_index.h"
#include "query/stats.h"

namespace mrx::harness {
namespace {

/// Accumulates per-query costs of a full workload pass through `query_fn`.
template <typename QueryFn>
void MeasureWorkload(const std::vector<PathExpression>& workload,
                     QueryFn&& query_fn, IndexRunResult* result) {
  QueryStats total;
  for (const PathExpression& q : workload) total += query_fn(q).stats;
  const double n = static_cast<double>(workload.size());
  result->avg_query_cost = static_cast<double>(total.total()) / n;
  result->avg_index_cost =
      static_cast<double>(total.index_nodes_visited) / n;
  result->avg_validation_cost =
      static_cast<double>(total.data_nodes_validated) / n;
}

}  // namespace

ExperimentDriver::ExperimentDriver(const DataGraph& graph,
                                   std::vector<PathExpression> workload)
    : graph_(graph), workload_(std::move(workload)) {}

IndexRunResult ExperimentDriver::RunAk(int k) {
  IndexRunResult result;
  result.index_name = "A(" + std::to_string(k) + ")";
  AkIndex index(graph_, k);
  result.nodes = index.graph().num_nodes();
  result.edges = index.graph().num_edges();
  MeasureWorkload(
      workload_, [&](const PathExpression& q) { return index.Query(q); },
      &result);
  return result;
}

IndexRunResult ExperimentDriver::RunDkConstruct() {
  IndexRunResult result;
  result.index_name = "D(k)-construct";
  DkIndex index = DkIndex::Construct(graph_, workload_);
  result.nodes = index.graph().num_nodes();
  result.edges = index.graph().num_edges();
  MeasureWorkload(
      workload_, [&](const PathExpression& q) { return index.Query(q); },
      &result);
  return result;
}

IndexRunResult ExperimentDriver::RunDkPromote(size_t growth_interval) {
  IndexRunResult result;
  result.index_name = "D(k)-promote";
  DkIndex index(graph_);
  for (size_t i = 0; i < workload_.size(); ++i) {
    index.Promote(workload_[i]);
    if ((i + 1) % growth_interval == 0 || i + 1 == workload_.size()) {
      result.growth.push_back(GrowthPoint{i + 1, index.graph().num_nodes(),
                                          index.graph().num_edges()});
    }
  }
  result.nodes = index.graph().num_nodes();
  result.edges = index.graph().num_edges();
  MeasureWorkload(
      workload_, [&](const PathExpression& q) { return index.Query(q); },
      &result);
  return result;
}

IndexRunResult ExperimentDriver::RunMk(size_t growth_interval) {
  IndexRunResult result;
  result.index_name = "M(k)";
  MkIndex index(graph_);
  for (size_t i = 0; i < workload_.size(); ++i) {
    index.Refine(workload_[i]);
    if ((i + 1) % growth_interval == 0 || i + 1 == workload_.size()) {
      result.growth.push_back(GrowthPoint{i + 1, index.graph().num_nodes(),
                                          index.graph().num_edges()});
    }
  }
  result.nodes = index.graph().num_nodes();
  result.edges = index.graph().num_edges();
  MeasureWorkload(
      workload_, [&](const PathExpression& q) { return index.Query(q); },
      &result);
  return result;
}

IndexRunResult ExperimentDriver::RunMStar(size_t growth_interval,
                                          MStarStrategy strategy) {
  IndexRunResult result;
  result.index_name = "M*(k)";
  MStarIndex index(graph_);
  for (size_t i = 0; i < workload_.size(); ++i) {
    index.Refine(workload_[i]);
    if ((i + 1) % growth_interval == 0 || i + 1 == workload_.size()) {
      result.growth.push_back(GrowthPoint{i + 1, index.PhysicalNodeCount(),
                                          index.PhysicalEdgeCount()});
    }
  }
  result.nodes = index.PhysicalNodeCount();
  result.edges = index.PhysicalEdgeCount();
  MeasureWorkload(
      workload_,
      [&](const PathExpression& q) {
        return strategy == MStarStrategy::kTopDown ? index.QueryTopDown(q)
                                                   : index.QueryNaive(q);
      },
      &result);
  return result;
}

}  // namespace mrx::harness
