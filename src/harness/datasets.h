#ifndef MRX_HARNESS_DATASETS_H_
#define MRX_HARNESS_DATASETS_H_

#include <cstdint>

#include "graph/data_graph.h"
#include "util/result.h"

namespace mrx::harness {

/// \brief Generates an XMark document at `scale` and loads it into the
/// paper's graph model (element nodes; containment + ID/IDREF edges).
/// scale = 1.0 targets the paper's ~120k-node dataset.
Result<DataGraph> BuildXMarkGraph(double scale, uint64_t seed = 7);

/// \brief Generates a NASA-like document at `scale` and loads it.
/// scale = 1.0 targets the paper's ~90k-node dataset.
Result<DataGraph> BuildNasaGraph(double scale, uint64_t seed = 11);

/// \brief Scale factor for the figure benches: reads the MRX_SCALE
/// environment variable, defaulting to `default_scale`. The benches accept
/// reduced scales so a full figure sweep stays laptop-friendly; shapes are
/// stable across scales (see EXPERIMENTS.md).
double BenchScaleFromEnv(double default_scale);

}  // namespace mrx::harness

#endif  // MRX_HARNESS_DATASETS_H_
