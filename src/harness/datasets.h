#ifndef MRX_HARNESS_DATASETS_H_
#define MRX_HARNESS_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/data_graph.h"
#include "util/result.h"

namespace mrx::harness {

/// \brief Generates an XMark document at `scale` and loads it into the
/// paper's graph model (element nodes; containment + ID/IDREF edges).
/// scale = 1.0 targets the paper's ~120k-node dataset.
Result<DataGraph> BuildXMarkGraph(double scale, uint64_t seed = 7);

/// \brief Generates a NASA-like document at `scale` and loads it.
/// scale = 1.0 targets the paper's ~90k-node dataset.
Result<DataGraph> BuildNasaGraph(double scale, uint64_t seed = 11);

/// \brief Streamed variants: the generator drives a DirectGraphSink, so
/// the graph assembles without the serialized document ever existing.
/// Byte-identical to the parse-path builders above at the same scale and
/// seed (tests/scale_stream_test.cc pins it); the scale tier's only
/// practical route to multi-million-node graphs (docs/PERFORMANCE.md).
Result<DataGraph> BuildXMarkGraphStreamed(double scale, uint64_t seed = 7);
Result<DataGraph> BuildNasaGraphStreamed(double scale, uint64_t seed = 11);

/// \brief The compact recursive catalog/section DTD (ID/IDREF attributes;
/// multi-parent, cyclic graphs) the parallel/scale benches generate their
/// reference-rich dataset from.
const char* BenchCatalogDtd();

/// \brief DTD-random graph over BenchCatalogDtd() targeting at least
/// `target_elements` element nodes: parse-path oracle and streamed variant
/// (same bytes, same seed, same graph).
Result<DataGraph> BuildDtdRandomGraph(size_t target_elements,
                                      uint64_t seed = 4242);
Result<DataGraph> BuildDtdRandomGraphStreamed(size_t target_elements,
                                              uint64_t seed = 4242);

/// \brief XMark scale factor that targets roughly `nodes` element nodes
/// (scale 1.0 ≈ 120k nodes).
double XMarkScaleForNodes(size_t nodes);

/// One row of the scale-tier sweep: a human-readable size name ("500k",
/// "2.0m") and the node target it stands for.
struct ScaleTier {
  std::string name;
  size_t nodes = 0;
};

/// \brief Renders a node count as a tier name: "100k", "500k", "2.0m".
std::string ScaleTierName(size_t nodes);

/// \brief Default scale-tier node targets {100k, 500k, 2M}, multiplied by
/// MRX_SCALE (so MRX_SCALE=0.1 sweeps 10k/50k/200k).
std::vector<ScaleTier> ScaleBenchTiers();

/// \brief Scale factor for the figure benches: reads the MRX_SCALE
/// environment variable, defaulting to `default_scale`. The benches accept
/// reduced scales so a full figure sweep stays laptop-friendly; shapes are
/// stable across scales (see EXPERIMENTS.md).
double BenchScaleFromEnv(double default_scale);

}  // namespace mrx::harness

#endif  // MRX_HARNESS_DATASETS_H_
