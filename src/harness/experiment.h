#ifndef MRX_HARNESS_EXPERIMENT_H_
#define MRX_HARNESS_EXPERIMENT_H_

#include <string>
#include <vector>

#include "graph/data_graph.h"
#include "query/path_expression.h"

namespace mrx::harness {

/// Index size sampled during incremental refinement (Figures 14-17/23-26).
struct GrowthPoint {
  size_t queries_processed = 0;
  size_t nodes = 0;
  size_t edges = 0;
};

/// The measurements behind one curve/point of the paper's figures.
struct IndexRunResult {
  std::string index_name;
  size_t nodes = 0;           ///< Final index size in nodes.
  size_t edges = 0;           ///< Final index size in edges.
  double avg_query_cost = 0;  ///< Average per-query cost on the (re)run.
  double avg_index_cost = 0;  ///< ... the index-graph-visit component.
  double avg_validation_cost = 0;  ///< ... the validation component.
  std::vector<GrowthPoint> growth;  ///< Adaptive indexes only.
};

/// Which §4.1 evaluation strategy an M*(k) run uses.
enum class MStarStrategy {
  kTopDown,  // The paper's choice for §5.
  kNaive,
};

/// \brief Replays the paper's experimental procedure (§5) for one dataset
/// and workload: build/refine each index, then rerun the workload and
/// report average per-query cost and index sizes.
class ExperimentDriver {
 public:
  /// `graph` must outlive the driver. The workload doubles as the FUP set,
  /// as in the paper ("Our workload consists of 500 queries ... as FUPs").
  ExperimentDriver(const DataGraph& graph,
                   std::vector<PathExpression> workload);

  /// A(k): static build, one workload pass (validation costs included).
  IndexRunResult RunAk(int k);

  /// D(k)-construct: build from the whole FUP set, then rerun.
  IndexRunResult RunDkConstruct();

  /// D(k)-promote: start at A(0), PROMOTE per query, sample size every
  /// `growth_interval` queries, then rerun.
  IndexRunResult RunDkPromote(size_t growth_interval = 50);

  /// M(k): start at A(0), REFINE per query, sample, rerun.
  IndexRunResult RunMk(size_t growth_interval = 50);

  /// M*(k): start at {I0}, REFINE* per query, sample physical sizes,
  /// rerun with the chosen strategy.
  IndexRunResult RunMStar(size_t growth_interval = 50,
                          MStarStrategy strategy = MStarStrategy::kTopDown);

  const std::vector<PathExpression>& workload() const { return workload_; }
  const DataGraph& graph() const { return graph_; }

 private:
  const DataGraph& graph_;
  std::vector<PathExpression> workload_;
};

}  // namespace mrx::harness

#endif  // MRX_HARNESS_EXPERIMENT_H_
