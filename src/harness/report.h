#ifndef MRX_HARNESS_REPORT_H_
#define MRX_HARNESS_REPORT_H_

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "harness/experiment.h"

namespace mrx::harness {

/// \brief Prints the series behind a cost-vs-size figure pair (e.g.
/// Figures 10+11): one row per index with node count, edge count and the
/// average per-query cost split into its two components.
void PrintCostVsSize(std::ostream& os, const std::string& title,
                     const std::vector<IndexRunResult>& runs);

/// \brief Prints the series behind a growth figure pair (e.g. Figures
/// 14+15): one row per sample point, node and edge counts per index.
/// All runs must share the same sampling schedule.
void PrintGrowth(std::ostream& os, const std::string& title,
                 const std::vector<IndexRunResult>& runs);

/// \brief Prints a query-length histogram (Figures 8/9).
void PrintHistogram(std::ostream& os, const std::string& title,
                    const std::vector<double>& fractions);

/// \brief One-line dataset summary (nodes/edges/labels/references).
void PrintDatasetSummary(std::ostream& os, const std::string& name,
                         const DataGraph& graph);

/// \brief Writes one machine-readable bench-trajectory record:
///   {"bench":"server","metrics":{"xmark_4w_qps":12345.6,...}}
/// `mrx serve-bench --metrics-out` and bench_server_throughput emit this as
/// BENCH_server.json so the perf trajectory is diffable across PRs (CI
/// uploads it as an artifact). Non-finite values are serialized as 0 to
/// keep the record valid JSON. Metrics appear in the given order.
void WriteBenchJson(
    std::ostream& os, const std::string& bench_name,
    const std::vector<std::pair<std::string, double>>& metrics);

}  // namespace mrx::harness

#endif  // MRX_HARNESS_REPORT_H_
