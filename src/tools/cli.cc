#include "tools/cli.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "check/checker.h"
#include "check/mrxcase.h"
#include "check/mutation_trace.h"
#include "check/stress.h"
#include "datagen/nasa.h"
#include "datagen/xmark.h"
#include "graph/statistics.h"
#include "harness/datasets.h"
#include "harness/report.h"
#include "obs/exposition.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/query_cost.h"
#include "obs/query_diag.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "index/extent.h"
#include "util/cpu_features.h"
#include "index/m_star_index.h"
#include "index/strategy_chooser.h"
#include "index/twig_eval.h"
#include "mutate/incremental_maintainer.h"
#include "mutate/random_batch.h"
#include "query/data_evaluator.h"
#include "query/twig.h"
#include "server/concurrent_session.h"
#include "server/load_driver.h"
#include "storage/disk_m_star_index.h"
#include "storage/graph_io.h"
#include "storage/index_io.h"
#include "util/string_util.h"
#include "util/table_writer.h"
#include "util/thread_pool.h"
#include "workload/generator.h"
#include "workload/label_paths.h"
#include "xml/graph_builder.h"
#include "xml/writer.h"

namespace mrx::tools {
namespace {

constexpr const char* kUsage = R"(usage: mrx <command> [args]

commands:
  stats <graph> [--metrics prom|json]   graph shape statistics; --metrics
                                        appends the process metrics
                                        exposition (docs/OBSERVABILITY.md)
  convert <in> <out>                    convert between .xml and .mrxg
  index build <graph> <out.mrxs> --fup <expr> [--fup <expr> ...]
              [--threads N]           N>1 fans refinement target evaluation
                                      out over a thread pool; results are
                                      byte-identical for every N
                                      (docs/PERFORMANCE.md)
  index info <graph> <index.mrxs>
  query <graph> [index.mrxs] <expr> [--strategy auto|topdown|naive|bottomup|hybrid]
        [--explain] [--json]          --explain prints the strategy decision
                                      table (estimated cost per candidate)
                                      and the measured cost counters next
                                      to the answer; --json emits the
                                      explain record as one JSON line
  explain <graph> [index.mrxs] <expr> [--json]
                                      run every eligible strategy and
                                      report estimated vs actual cost per
                                      strategy (docs/OBSERVABILITY.md)
  diag <graph> [--queries N] [--count N] [--seed N] [--slow-query-ms X]
       [--watchdog-ms N] [--out DIR] [--last N]
                                      drive a seeded mini-workload through
                                      a concurrent session and write a
                                      diagnostics bundle (flight.jsonl,
                                      slow_queries.jsonl, trace.jsonl,
                                      metrics.prom/.jsonl, diag.json) to
                                      DIR; --last N bounds the flight dump
  generate <xmark|nasa|dtd-random> <out.xml|out.mrxg> [--scale S]
           [--nodes N] [--seed N]      .mrxg outputs stream the generator
                                      straight into the graph (no document
                                      in memory; scale-tier sizes OK);
                                      --nodes targets a node count directly
  workload <graph> [--count N] [--max-length L] [--seed N]
  serve-bench <graph> [--workers N] [--clients N] [--queries N]
              [--count N] [--max-length L] [--seed N] [--csv out.csv]
              [--metrics-out DIR] [--trace-sample N] [--threads N]
              [--mutation-rate R] [--mutation-ops N]
              [--slow-query-ms X] [--watchdog-ms N] [--diag on|off]
                                      --threads N gives the background
                                      refiner an N-thread pool;
                                      --mutation-rate R applies R random
                                      mutation batches per 1000 timed
                                      queries from a mutator thread;
                                      --slow-query-ms X captures queries
                                      slower than X ms (fractional ok) into
                                      slow_queries.jsonl with forced
                                      traces; --diag off disables the
                                      always-on flight recorder (overhead
                                      A/B runs)
  mutate <graph> [--steps N] [--ops N] [--seed N] [--k N] [--verify on]
         [--out out.mrxg]             apply N seeded random mutation
                                      batches with incremental A(k)/D(k)/
                                      M*(k) maintenance (docs/UPDATES.md);
                                      --verify cross-checks every step
                                      against from-scratch rebuilds
  check [--mode diff|stress|mutate|mutate-stress] [--seed N] [--cases M]
        [--queries N] [--max-nodes N] [--out DIR] [--max-failures N]
        [--fault on] [--threads N] [--rounds N] [--refine-threads N]
        [--steps N] [--ops N] [--batches N]
        [--extent-rep auto|vector|delta|hybrid]
        [--simd scalar|sse42|avx2|native]
        [--replay file.mrxcase|file.mrxtrace]
                                        differential correctness harness
                                        (docs/TESTING.md); exit 1 on any
                                        discrepancy or invariant violation.
                                        mutate replays seeded mutation
                                        traces against from-scratch
                                        oracles; mutate-stress hammers a
                                        live session with concurrent
                                        readers + mutations

graphs are detected by suffix: .xml (parsed) or .mrxg (binary).
--metrics-out writes metrics.prom, metrics.jsonl, trace.jsonl and
BENCH_server.json into DIR; --trace-sample N samples every Nth query's
span tree into the trace (default 16).
)";

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Status WriteFile(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::NotFound("cannot open for writing: " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

Result<DataGraph> LoadGraph(const std::string& path) {
  MRX_ASSIGN_OR_RETURN(std::string bytes, ReadFile(path));
  if (EndsWith(path, ".mrxg")) {
    return storage::DeserializeDataGraph(bytes);
  }
  return xml::BuildGraphFromXml(bytes);
}

/// Parses "--key value" style options out of `args` from `begin` on;
/// returns positional arguments. Unknown keys are an error via `err`.
struct Options {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> flags;

  std::string Flag(const std::string& key,
                   const std::string& fallback = "") const {
    for (const auto& [k, v] : flags) {
      if (k == key) return v;
    }
    return fallback;
  }
  std::vector<std::string> AllFlags(const std::string& key) const {
    std::vector<std::string> out;
    for (const auto& [k, v] : flags) {
      if (k == key) out.push_back(v);
    }
    return out;
  }
};

/// Flags that take no value ("--explain", not "--explain on"); they parse
/// to the value "on".
bool IsBooleanFlag(const std::string& key) {
  return key == "explain" || key == "json";
}

Result<Options> ParseOptions(const std::vector<std::string>& args,
                             size_t begin) {
  Options options;
  for (size_t i = begin; i < args.size(); ++i) {
    if (StartsWith(args[i], "--")) {
      const std::string key = args[i].substr(2);
      if (IsBooleanFlag(key)) {
        options.flags.emplace_back(key, "on");
        continue;
      }
      if (i + 1 >= args.size()) {
        return Status::InvalidArgument("missing value for " + args[i]);
      }
      options.flags.emplace_back(key, args[i + 1]);
      ++i;
    } else {
      options.positional.push_back(args[i]);
    }
  }
  return options;
}

int Fail(std::ostream& err, const Status& status) {
  err << "error: " << status << "\n";
  return 1;
}

int CmdStats(const Options& options, std::ostream& out, std::ostream& err) {
  if (options.positional.size() != 1) {
    err << "usage: mrx stats <graph> [--metrics prom|json]\n";
    return 2;
  }
  Result<DataGraph> g = LoadGraph(options.positional[0]);
  if (!g.ok()) return Fail(err, g.status());
  PrintStatistics(out, ComputeStatistics(*g));

  const std::string metrics_format = options.Flag("metrics");
  if (!metrics_format.empty()) {
    // Surface the loaded graph in the registry so the exposition is
    // meaningful even for this one-shot command.
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    registry.GetGauge("mrx_graph_nodes")->Set(
        static_cast<int64_t>(g->num_nodes()));
    registry.GetGauge("mrx_graph_edges")->Set(
        static_cast<int64_t>(g->num_edges()));
    registry.GetGauge("mrx_graph_labels")->Set(
        static_cast<int64_t>(g->symbols().size()));
    const obs::MetricsSnapshot snapshot = registry.Snapshot();
    out << "\n";
    if (metrics_format == "prom") {
      obs::WritePrometheusText(snapshot, out);
    } else if (metrics_format == "json") {
      obs::WriteJsonlSnapshot(snapshot, out);
    } else {
      err << "unknown metrics format: " << metrics_format
          << " (expected prom or json)\n";
      return 2;
    }
  }
  return 0;
}

int CmdConvert(const Options& options, std::ostream& out,
               std::ostream& err) {
  if (options.positional.size() != 2) {
    err << "usage: mrx convert <in> <out>\n";
    return 2;
  }
  const std::string& in_path = options.positional[0];
  const std::string& out_path = options.positional[1];
  Result<DataGraph> g = LoadGraph(in_path);
  if (!g.ok()) return Fail(err, g.status());
  Status s = Status::Ok();
  if (EndsWith(out_path, ".mrxg")) {
    s = WriteFile(out_path, storage::SerializeDataGraph(*g));
  } else {
    Result<std::string> text = xml::WriteGraphAsXml(*g);
    if (!text.ok()) return Fail(err, text.status());
    s = WriteFile(out_path, *text);
  }
  if (!s.ok()) return Fail(err, s);
  out << "wrote " << out_path << " (" << g->num_nodes() << " nodes)\n";
  return 0;
}

int CmdIndexBuild(const Options& options, std::ostream& out,
                  std::ostream& err) {
  if (options.positional.size() != 2) {
    err << "usage: mrx index build <graph> <out.mrxs> --fup <expr> ...\n";
    return 2;
  }
  Result<DataGraph> g = LoadGraph(options.positional[0]);
  if (!g.ok()) return Fail(err, g.status());
  MStarIndex index(*g);
  const size_t threads =
      static_cast<size_t>(std::atoll(options.Flag("threads", "1").c_str()));
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) {
    pool = std::make_unique<ThreadPool>(threads);
    index.set_thread_pool(pool.get());
  }
  std::vector<PathExpression> fups;
  for (const std::string& text : options.AllFlags("fup")) {
    auto fup = PathExpression::Parse(text, g->symbols());
    if (!fup.ok()) return Fail(err, fup.status());
    fups.push_back(*std::move(fup));
    out << "refining for " << text << "\n";
  }
  index.RefineBatch(fups);
  Status s = storage::SaveMStarIndexToFile(index, options.positional[1]);
  if (!s.ok()) return Fail(err, s);
  out << "wrote " << options.positional[1] << ": "
      << index.num_components() << " components, "
      << index.PhysicalNodeCount() << " physical nodes\n";
  return 0;
}

int CmdIndexInfo(const Options& options, std::ostream& out,
                 std::ostream& err) {
  if (options.positional.size() != 2) {
    err << "usage: mrx index info <graph> <index.mrxs>\n";
    return 2;
  }
  Result<DataGraph> g = LoadGraph(options.positional[0]);
  if (!g.ok()) return Fail(err, g.status());
  Result<MStarIndex> index =
      storage::LoadMStarIndexFromFile(*g, options.positional[1]);
  if (!index.ok()) return Fail(err, index.status());
  out << "components: " << index->num_components() << "\n";
  for (size_t i = 0; i < index->num_components(); ++i) {
    out << "  I" << i << ": " << index->component(i).num_nodes()
        << " nodes, " << index->component(i).num_edges() << " edges\n";
  }
  out << "physical: " << index->PhysicalNodeCount() << " nodes, "
      << index->PhysicalEdgeCount() << " edges\n";
  return 0;
}

/// Runs `query` against `index` with `strategy` ("auto" uses `chooser`),
/// collecting the actual-cost counters, and fills `diag` with the full
/// explain record. Returns the query result.
QueryResult RunExplained(const MStarIndex& index,
                         const StrategyChooser& chooser, const DataGraph& g,
                         const PathExpression& query,
                         MStarQueryStrategy strategy, bool auto_choose,
                         obs::QueryDiag* diag) {
  obs::QueryCostCounters cost;
  MStarQueryStrategy used = strategy;
  QueryResult result;
  const uint64_t start_ns = obs::MonotonicNowNs();
  {
    obs::QueryCostScope scope(&cost);
    DataEvaluator validator(g);
    if (auto_choose) {
      result = chooser.Evaluate(index, query, &validator, &used);
    } else {
      switch (strategy) {
        case MStarQueryStrategy::kNaive:
          result = index.QueryNaive(query, &validator);
          break;
        case MStarQueryStrategy::kTopDown:
          result = index.QueryTopDown(query, &validator);
          break;
        case MStarQueryStrategy::kBottomUp:
          result = index.QueryBottomUp(query, &validator);
          break;
        case MStarQueryStrategy::kHybrid:
          result = index.QueryHybrid(query, &validator);
          break;
      }
    }
  }
  const uint64_t eval_ns = obs::MonotonicNowNs() - start_ns;
  diag->query = query.ToString(g.symbols());
  diag->precise = result.precise;
  diag->strategy = StrategyName(used);
  diag->estimated_cost = chooser.EstimateCost(query, used);
  for (const StrategyCandidate& c : chooser.ExplainChoice(query)) {
    obs::QueryDiag::Candidate row;
    row.strategy = StrategyName(c.strategy);
    row.estimated_cost = c.estimated_cost;
    row.eligible = c.eligible;
    row.chosen = c.strategy == used;
    diag->considered.push_back(row);
  }
  diag->index_nodes_visited = result.stats.index_nodes_visited;
  diag->data_nodes_validated = result.stats.data_nodes_validated;
  diag->SetCost(cost);
  diag->eval_ns = eval_ns;
  diag->latency_ns = eval_ns;
  diag->answer_size = result.answer.size();
  return result;
}

Result<MStarQueryStrategy> ParseStrategy(const std::string& name) {
  if (name == "topdown") return MStarQueryStrategy::kTopDown;
  if (name == "naive") return MStarQueryStrategy::kNaive;
  if (name == "bottomup") return MStarQueryStrategy::kBottomUp;
  if (name == "hybrid") return MStarQueryStrategy::kHybrid;
  return Status::InvalidArgument("unknown strategy: " + name);
}

void PrintAnswer(const QueryResult& result, const DataGraph& g,
                 std::ostream& out) {
  out << result.answer.size() << " nodes (cost " << result.stats.total()
      << (result.precise ? ", precise" : ", validated") << "):";
  size_t shown = 0;
  for (NodeId n : result.answer) {
    if (++shown > 20) {
      out << " ...";
      break;
    }
    out << " " << n << ":" << g.label_name(n);
  }
  out << "\n";
}

int CmdQuery(const Options& options, std::ostream& out, std::ostream& err) {
  if (options.positional.size() < 2 || options.positional.size() > 3) {
    err << "usage: mrx query <graph> [index.mrxs] <expr> [--strategy ...] "
           "[--explain] [--json]\n";
    return 2;
  }
  Result<DataGraph> g = LoadGraph(options.positional[0]);
  if (!g.ok()) return Fail(err, g.status());

  const bool has_index = options.positional.size() == 3;
  const std::string& expr = options.positional.back();

  // Expressions with [...] predicates are twigs: the index answers the
  // trunk, predicates validate against the data graph.
  if (expr.find('[') != std::string::npos) {
    auto twig = TwigQuery::Parse(expr, g->symbols());
    if (!twig.ok()) return Fail(err, twig.status());
    DataEvaluator evaluator(*g);
    QueryResult result;
    if (has_index) {
      Result<MStarIndex> index =
          storage::LoadMStarIndexFromFile(*g, options.positional[1]);
      if (!index.ok()) return Fail(err, index.status());
      result = EvaluateTwigWithIndex(*index, *twig, evaluator);
    } else {
      MStarIndex fresh(*g);
      result = EvaluateTwigWithIndex(fresh, *twig, evaluator);
    }
    out << result.answer.size() << " nodes (cost " << result.stats.total()
        << ", twig):";
    size_t shown = 0;
    for (NodeId n : result.answer) {
      if (++shown > 20) {
        out << " ...";
        break;
      }
      out << " " << n << ":" << g->label_name(n);
    }
    out << "\n";
    return 0;
  }

  auto query = PathExpression::Parse(expr, g->symbols());
  if (!query.ok()) return Fail(err, query.status());

  const bool explain = options.Flag("explain") == "on";
  const bool as_json = options.Flag("json") == "on";
  const std::string strategy_name = options.Flag("strategy", "auto");
  const bool auto_choose = strategy_name == "auto";
  MStarQueryStrategy strategy = MStarQueryStrategy::kTopDown;
  if (!auto_choose) {
    Result<MStarQueryStrategy> parsed = ParseStrategy(strategy_name);
    if (!parsed.ok()) {
      err << parsed.status().message() << "\n";
      return 2;
    }
    strategy = *parsed;
  }

  // The explain path needs a chooser (for the decision table) whether the
  // index came from disk or is the fresh k=0 hierarchy.
  if (explain) {
    std::unique_ptr<MStarIndex> owned;
    if (has_index) {
      Result<MStarIndex> loaded =
          storage::LoadMStarIndexFromFile(*g, options.positional[1]);
      if (!loaded.ok()) return Fail(err, loaded.status());
      owned = std::make_unique<MStarIndex>(std::move(*loaded));
    } else {
      owned = std::make_unique<MStarIndex>(*g);
    }
    const MStarIndex* index = owned.get();
    StrategyChooser chooser(*index);
    obs::QueryDiag diag;
    QueryResult result = RunExplained(*index, chooser, *g, *query, strategy,
                                      auto_choose, &diag);
    if (as_json) {
      diag.WriteJson(out);
      out << "\n";
    } else {
      diag.WriteText(out);
      PrintAnswer(result, *g, out);
    }
    return 0;
  }

  QueryResult result;
  if (has_index) {
    Result<MStarIndex> index =
        storage::LoadMStarIndexFromFile(*g, options.positional[1]);
    if (!index.ok()) return Fail(err, index.status());
    if (auto_choose) {
      result = StrategyChooser::QueryAuto(*index, *query);
    } else {
      switch (strategy) {
        case MStarQueryStrategy::kTopDown:
          result = index->QueryTopDown(*query);
          break;
        case MStarQueryStrategy::kNaive:
          result = index->QueryNaive(*query);
          break;
        case MStarQueryStrategy::kBottomUp:
          result = index->QueryBottomUp(*query);
          break;
        case MStarQueryStrategy::kHybrid:
          result = index->QueryHybrid(*query);
          break;
      }
    }
  } else {
    MStarIndex fresh(*g);
    result = fresh.QueryTopDown(*query);
  }

  PrintAnswer(result, *g, out);
  return 0;
}

int CmdExplain(const Options& options, std::ostream& out,
               std::ostream& err) {
  if (options.positional.size() < 2 || options.positional.size() > 3) {
    err << "usage: mrx explain <graph> [index.mrxs] <expr> [--json]\n";
    return 2;
  }
  Result<DataGraph> g = LoadGraph(options.positional[0]);
  if (!g.ok()) return Fail(err, g.status());
  const bool has_index = options.positional.size() == 3;
  const std::string& expr = options.positional.back();
  auto query = PathExpression::Parse(expr, g->symbols());
  if (!query.ok()) return Fail(err, query.status());
  const bool as_json = options.Flag("json") == "on";

  std::unique_ptr<MStarIndex> owned;
  if (has_index) {
    Result<MStarIndex> loaded =
        storage::LoadMStarIndexFromFile(*g, options.positional[1]);
    if (!loaded.ok()) return Fail(err, loaded.status());
    owned = std::make_unique<MStarIndex>(std::move(*loaded));
  } else {
    owned = std::make_unique<MStarIndex>(*g);
  }
  const MStarIndex* index = owned.get();
  StrategyChooser chooser(*index);

  // Run every *eligible* strategy so estimated-vs-actual is measured, not
  // extrapolated; ineligible rows keep their estimate with actuals blank.
  TableWriter table({"strategy", "eligible", "est_cost", "index_nodes",
                     "extent_scanned", "validated", "eval_us", "answer",
                     "chosen"});
  for (const StrategyCandidate& c : chooser.ExplainChoice(*query)) {
    if (!c.eligible) {
      table.AddRowValues(StrategyName(c.strategy), "no", c.estimated_cost,
                         "-", "-", "-", "-", "-", c.chosen ? "<-" : "");
      continue;
    }
    obs::QueryDiag diag;
    RunExplained(*index, chooser, *g, *query, c.strategy,
                 /*auto_choose=*/false, &diag);
    if (as_json) {
      diag.WriteJson(out);
      out << "\n";
    }
    table.AddRowValues(StrategyName(c.strategy), "yes", c.estimated_cost,
                       diag.index_nodes_visited, diag.extent_elems_scanned,
                       diag.data_nodes_validated, diag.eval_ns / 1000.0,
                       diag.answer_size, c.chosen ? "<-" : "");
  }
  if (!as_json) table.RenderText(out);
  return 0;
}

int CmdDiag(const Options& options, std::ostream& out, std::ostream& err) {
  if (options.positional.size() != 1) {
    err << "usage: mrx diag <graph> [--queries N] [--count N] [--seed N] "
           "[--slow-query-ms X] [--watchdog-ms N] [--out DIR] [--last N]\n";
    return 2;
  }
  Result<DataGraph> g = LoadGraph(options.positional[0]);
  if (!g.ok()) return Fail(err, g.status());

  const size_t total_queries = static_cast<size_t>(
      std::atoll(options.Flag("queries", "400").c_str()));
  const double slow_ms = std::atof(options.Flag("slow-query-ms", "0").c_str());
  const uint64_t watchdog_ms = static_cast<uint64_t>(
      std::atoll(options.Flag("watchdog-ms", "5000").c_str()));
  const size_t last_n =
      static_cast<size_t>(std::atoll(options.Flag("last", "0").c_str()));
  const std::string out_dir = options.Flag("out", "mrx-diag");

  LabelPathEnumerationOptions eo;
  eo.max_length = 9;
  LabelPathSet paths = EnumerateLabelPaths(*g, eo);
  WorkloadOptions wo;
  wo.num_queries =
      static_cast<size_t>(std::atoll(options.Flag("count", "40").c_str()));
  wo.max_query_length = 9;
  wo.seed =
      static_cast<uint64_t>(std::atoll(options.Flag("seed", "1").c_str()));
  std::vector<PathExpression> workload = GenerateWorkload(paths, wo);
  if (workload.empty()) {
    err << "error: graph yields an empty workload\n";
    return 1;
  }

  obs::TraceRecorder tracer;
  obs::SlowQueryLog slow_log;
  obs::StallWatchdogOptions wd;
  wd.deadline_ms = watchdog_ms;
  obs::StallWatchdog watchdog(wd);

  // The session is declared after (destroyed before) the watchdog and the
  // log it writes into.
  server::ConcurrentSessionOptions so;
  so.strategy = SessionOptions::Strategy::kAuto;
  so.tracer = &tracer;
  so.slow_query_log = &slow_log;
  so.watchdog = &watchdog;
  so.slow_query_ns = static_cast<uint64_t>(slow_ms * 1e6);
  server::ConcurrentSession session(*g, so);
  for (size_t i = 0; i < total_queries; ++i) {
    session.Query(workload[i % workload.size()]);
  }
  session.DrainRefinements();

  const std::filesystem::path dir(out_dir);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Fail(err, Status::Internal("cannot create " + out_dir + ": " +
                                      ec.message()));
  }
  obs::FlightRecorder& flight = obs::FlightRecorder::Global();
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Global().Snapshot();
  {
    std::ofstream f(dir / "flight.jsonl", std::ios::trunc);
    flight.WriteJsonl(f, last_n);
    if (!f) return Fail(err, Status::Internal("write failed: flight.jsonl"));
  }
  {
    std::ofstream f(dir / "slow_queries.jsonl", std::ios::trunc);
    slow_log.WriteJsonl(f);
    if (!f) {
      return Fail(err, Status::Internal("write failed: slow_queries.jsonl"));
    }
  }
  {
    std::ofstream f(dir / "trace.jsonl", std::ios::trunc);
    tracer.WriteJsonl(f);
    if (!f) return Fail(err, Status::Internal("write failed: trace.jsonl"));
  }
  {
    std::ofstream f(dir / "metrics.prom", std::ios::trunc);
    obs::WritePrometheusText(snapshot, f);
    if (!f) return Fail(err, Status::Internal("write failed: metrics.prom"));
  }
  {
    std::ofstream f(dir / "metrics.jsonl", std::ios::trunc);
    obs::WriteJsonlSnapshot(snapshot, f);
    if (!f) {
      return Fail(err, Status::Internal("write failed: metrics.jsonl"));
    }
  }
  {
    // One strict-JSON summary object tying the bundle together.
    std::ofstream f(dir / "diag.json", std::ios::trunc);
    f << "{\"queries\":" << session.queries_answered()
      << ",\"cache_hits\":" << session.cache_hits()
      << ",\"slow_queries\":" << session.slow_queries()
      << ",\"last_slow_trace_id\":" << session.last_slow_trace_id()
      << ",\"refinements\":" << session.refinements_applied()
      << ",\"publications\":" << session.index_publications()
      << ",\"index_epoch\":" << session.index_epoch()
      << ",\"flight_events\":" << flight.total_recorded()
      << ",\"flight_threads\":" << flight.num_threads()
      << ",\"watchdog_stalls\":" << watchdog.stalls()
      << ",\"trace_spans\":" << tracer.size()
      << ",\"trace_dropped\":" << tracer.dropped() << "}\n";
    if (!f) return Fail(err, Status::Internal("write failed: diag.json"));
  }
  out << "diag: " << session.queries_answered() << " queries, "
      << session.slow_queries() << " slow, " << flight.total_recorded()
      << " flight events across " << flight.num_threads() << " threads, "
      << watchdog.stalls() << " stalls\n";
  out << "wrote " << (dir / "flight.jsonl").string() << ", "
      << (dir / "slow_queries.jsonl").string() << ", "
      << (dir / "trace.jsonl").string() << ", "
      << (dir / "metrics.prom").string() << ", "
      << (dir / "metrics.jsonl").string() << ", "
      << (dir / "diag.json").string() << "\n";
  return 0;
}

int CmdGenerate(const Options& options, std::ostream& out,
                std::ostream& err) {
  if (options.positional.size() != 2) {
    err << "usage: mrx generate <xmark|nasa|dtd-random> <out.xml|out.mrxg> "
           "[--scale S] [--nodes N] [--seed N]\n";
    return 2;
  }
  const std::string& dataset = options.positional[0];
  const std::string& out_path = options.positional[1];
  const double scale = std::atof(options.Flag("scale", "0.1").c_str());
  const uint64_t seed =
      static_cast<uint64_t>(std::atoll(options.Flag("seed", "7").c_str()));
  const size_t nodes =
      static_cast<size_t>(std::atoll(options.Flag("nodes", "0").c_str()));

  if (EndsWith(out_path, ".mrxg")) {
    // Streamed direct-to-graph path: the serialized document never exists,
    // so multi-million-node graphs generate in graph-sized memory.
    Result<DataGraph> g(Status::InvalidArgument("unknown dataset"));
    if (dataset == "xmark") {
      g = harness::BuildXMarkGraphStreamed(
          nodes > 0 ? harness::XMarkScaleForNodes(nodes) : scale, seed);
    } else if (dataset == "nasa") {
      g = harness::BuildNasaGraphStreamed(
          nodes > 0 ? static_cast<double>(nodes) / 90000.0 : scale, seed);
    } else if (dataset == "dtd-random") {
      g = harness::BuildDtdRandomGraphStreamed(
          nodes > 0 ? nodes : static_cast<size_t>(60000 * scale), seed);
    } else {
      err << "unknown dataset: " << dataset << "\n";
      return 2;
    }
    if (!g.ok()) return Fail(err, g.status());
    Status s = storage::SaveDataGraphToFile(*g, out_path);
    if (!s.ok()) return Fail(err, s);
    out << "wrote " << out_path << " (" << g->num_nodes() << " nodes, "
        << g->num_edges() << " edges)\n";
    return 0;
  }

  std::string doc;
  if (dataset == "xmark") {
    doc = datagen::GenerateXMarkDocument(
        datagen::XMarkOptions::Scaled(scale, seed));
  } else if (dataset == "nasa") {
    Result<std::string> nasa = datagen::GenerateNasaDocument(scale, seed);
    if (!nasa.ok()) return Fail(err, nasa.status());
    doc = *std::move(nasa);
  } else if (dataset == "dtd-random") {
    err << "dtd-random only generates graphs; use a .mrxg output path\n";
    return 2;
  } else {
    err << "unknown dataset: " << dataset << "\n";
    return 2;
  }
  Status s = WriteFile(options.positional[1], doc);
  if (!s.ok()) return Fail(err, s);
  out << "wrote " << options.positional[1] << " (" << doc.size()
      << " bytes)\n";
  return 0;
}

int CmdWorkload(const Options& options, std::ostream& out,
                std::ostream& err) {
  if (options.positional.size() != 1) {
    err << "usage: mrx workload <graph> [--count N] [--max-length L] "
           "[--seed N]\n";
    return 2;
  }
  Result<DataGraph> g = LoadGraph(options.positional[0]);
  if (!g.ok()) return Fail(err, g.status());
  LabelPathEnumerationOptions eo;
  eo.max_length = 9;
  LabelPathSet paths = EnumerateLabelPaths(*g, eo);
  WorkloadOptions wo;
  wo.num_queries =
      static_cast<size_t>(std::atoll(options.Flag("count", "20").c_str()));
  wo.max_query_length = static_cast<size_t>(
      std::atoll(options.Flag("max-length", "9").c_str()));
  wo.seed =
      static_cast<uint64_t>(std::atoll(options.Flag("seed", "1").c_str()));
  for (const PathExpression& q : GenerateWorkload(paths, wo)) {
    out << q.ToString(g->symbols()) << "\n";
  }
  return 0;
}

int CmdServeBench(const Options& options, std::ostream& out,
                  std::ostream& err) {
  if (options.positional.size() != 1) {
    err << "usage: mrx serve-bench <graph> [--workers N] [--clients N] "
           "[--queries N] [--count N] [--max-length L] [--seed N] "
           "[--csv out.csv] [--metrics-out DIR] [--trace-sample N]\n";
    return 2;
  }
  Result<DataGraph> g = LoadGraph(options.positional[0]);
  if (!g.ok()) return Fail(err, g.status());

  LabelPathEnumerationOptions eo;
  eo.max_length = 9;
  LabelPathSet paths = EnumerateLabelPaths(*g, eo);
  WorkloadOptions wo;
  wo.num_queries =
      static_cast<size_t>(std::atoll(options.Flag("count", "500").c_str()));
  wo.max_query_length = static_cast<size_t>(
      std::atoll(options.Flag("max-length", "9").c_str()));
  wo.seed =
      static_cast<uint64_t>(std::atoll(options.Flag("seed", "1").c_str()));
  std::vector<PathExpression> workload = GenerateWorkload(paths, wo);
  if (workload.empty()) {
    err << "error: graph yields an empty workload\n";
    return 1;
  }

  server::LoadDriverOptions lo;
  lo.num_workers =
      static_cast<size_t>(std::atoll(options.Flag("workers", "4").c_str()));
  lo.num_clients =
      static_cast<size_t>(std::atoll(options.Flag("clients", "0").c_str()));
  lo.total_queries =
      static_cast<size_t>(std::atoll(options.Flag("queries", "10000").c_str()));
  lo.session.refine_threads =
      static_cast<size_t>(std::atoll(options.Flag("threads", "1").c_str()));
  lo.mutation_rate = std::atof(options.Flag("mutation-rate", "0").c_str());
  lo.mutation_ops = static_cast<size_t>(
      std::atoll(options.Flag("mutation-ops", "2").c_str()));
  lo.mutation_seed = wo.seed;

  // Diagnostics: the flight recorder is always on unless --diag off (the
  // overhead A/B switch); --slow-query-ms X captures slow queries into
  // slow_queries.jsonl; --watchdog-ms N monitors writer progress.
  obs::FlightRecorder::Global().set_enabled(options.Flag("diag", "on") !=
                                            "off");
  const double slow_ms = std::atof(options.Flag("slow-query-ms", "0").c_str());
  lo.session.slow_query_ns = static_cast<uint64_t>(slow_ms * 1e6);
  obs::SlowQueryLog slow_log;
  if (lo.session.slow_query_ns > 0) lo.session.slow_query_log = &slow_log;
  const uint64_t watchdog_ms = static_cast<uint64_t>(
      std::atoll(options.Flag("watchdog-ms", "0").c_str()));
  std::unique_ptr<obs::StallWatchdog> watchdog;
  if (watchdog_ms > 0) {
    obs::StallWatchdogOptions wd;
    wd.deadline_ms = watchdog_ms;
    watchdog = std::make_unique<obs::StallWatchdog>(wd);
    lo.session.watchdog = watchdog.get();
  }

  // Observability: with --metrics-out, the run's session samples span
  // trees into `tracer` and the exposition files are written below.
  const std::string metrics_dir = options.Flag("metrics-out");
  obs::TraceRecorder::Options to;
  to.sample_every = static_cast<size_t>(
      std::atoll(options.Flag("trace-sample", "16").c_str()));
  obs::TraceRecorder tracer(to);
  if (!metrics_dir.empty() || lo.session.slow_query_ns > 0) {
    lo.session.tracer = &tracer;
  }
  if (!metrics_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(metrics_dir, ec);
    if (ec) {
      return Fail(err, Status::Internal("cannot create " + metrics_dir +
                                        ": " + ec.message()));
    }
  }

  server::LoadReport report = server::RunLoadDriver(*g, workload, lo);

  TableWriter table(server::ServerStatsHeaders());
  server::AppendServerStatsRow(
      report.stats, std::to_string(lo.num_workers) + " workers",
      report.Qps(), &table);
  table.RenderText(out);
  if (lo.mutation_rate > 0) {
    out << "mutations: " << report.mutations_applied << " applied, "
        << report.mutations_rejected << " rejected (rate "
        << lo.mutation_rate << "/1000 queries)\n";
  }

  const std::string csv_path = options.Flag("csv");
  if (!csv_path.empty()) {
    std::ofstream csv(csv_path, std::ios::trunc);
    if (!csv) return Fail(err, Status::NotFound("cannot open: " + csv_path));
    table.RenderCsv(csv);
    out << "wrote " << csv_path << "\n";
  }

  if (!metrics_dir.empty()) {
    const std::filesystem::path dir(metrics_dir);
    const obs::MetricsSnapshot snapshot =
        obs::MetricsRegistry::Global().Snapshot();
    {
      std::ofstream prom(dir / "metrics.prom", std::ios::trunc);
      obs::WritePrometheusText(snapshot, prom);
      if (!prom) {
        return Fail(err, Status::Internal("write failed: metrics.prom"));
      }
    }
    {
      std::ofstream jsonl(dir / "metrics.jsonl", std::ios::trunc);
      obs::WriteJsonlSnapshot(snapshot, jsonl);
      if (!jsonl) {
        return Fail(err, Status::Internal("write failed: metrics.jsonl"));
      }
    }
    {
      std::ofstream trace(dir / "trace.jsonl", std::ios::trunc);
      tracer.WriteJsonl(trace);
      if (!trace) {
        return Fail(err, Status::Internal("write failed: trace.jsonl"));
      }
    }
    if (lo.session.slow_query_ns > 0) {
      std::ofstream slow(dir / "slow_queries.jsonl", std::ios::trunc);
      slow_log.WriteJsonl(slow);
      if (!slow) {
        return Fail(err,
                    Status::Internal("write failed: slow_queries.jsonl"));
      }
    }
    {
      const server::ServerStats& stats = report.stats;
      // Estimated-vs-actual cost ratio: chooser units over measured index
      // node visits — the chooser's calibration across the whole run.
      const double est_actual_ratio =
          static_cast<double>(stats.estimated_cost_units) /
          static_cast<double>(
              std::max<uint64_t>(1, stats.cumulative_cost.index_nodes_visited));
      std::ofstream bench(dir / "BENCH_server.json", std::ios::trunc);
      harness::WriteBenchJson(
          bench, "serve-bench",
          {{"workers", static_cast<double>(lo.num_workers)},
           {"queries", static_cast<double>(report.timed_queries)},
           {"qps", report.Qps()},
           {"p50_us", stats.LatencyUs(50)},
           {"p95_us", stats.LatencyUs(95)},
           {"p99_us", stats.LatencyUs(99)},
           {"cache_hit_rate", stats.CacheHitRate()},
           {"utilization", stats.AvgWorkerUtilization()},
           {"refinements", static_cast<double>(stats.refinements_applied)},
           {"publications", static_cast<double>(stats.index_publications)},
           {"rejected", static_cast<double>(stats.rejected)},
           {"mutations", static_cast<double>(report.mutations_applied)},
           {"graph_version", static_cast<double>(stats.graph_version)},
           {"index_physical_nodes",
            static_cast<double>(
                snapshot.GaugeValue("mrx_index_physical_nodes"))},
           {"trace_spans", static_cast<double>(tracer.size())},
           {"trace_dropped", static_cast<double>(tracer.dropped())},
           {"cost_index_nodes_visited",
            static_cast<double>(stats.cumulative_cost.index_nodes_visited)},
           {"cost_data_nodes_validated",
            static_cast<double>(stats.cumulative_cost.data_nodes_validated)},
           {"cost_extent_elems_scanned",
            static_cast<double>(snapshot.CounterValue(
                "mrx_cost_extent_elems_scanned_total"))},
           {"est_cost_units",
            static_cast<double>(stats.estimated_cost_units)},
           {"est_actual_cost_ratio", est_actual_ratio},
           {"slow_queries", static_cast<double>(stats.slow_queries)},
           {"watchdog_stalls",
            static_cast<double>(
                snapshot.CounterValue("mrx_watchdog_stalls_total"))},
           {"flight_events",
            static_cast<double>(
                obs::FlightRecorder::Global().total_recorded())}});
      if (!bench) {
        return Fail(err, Status::Internal("write failed: BENCH_server.json"));
      }
    }
    out << "wrote " << (dir / "metrics.prom").string() << ", "
        << (dir / "metrics.jsonl").string() << ", "
        << (dir / "trace.jsonl").string() << ", "
        << (dir / "BENCH_server.json").string();
    if (lo.session.slow_query_ns > 0) {
      out << ", " << (dir / "slow_queries.jsonl").string();
    }
    out << "\n";
  }
  return 0;
}

int CmdMutate(const Options& options, std::ostream& out, std::ostream& err) {
  if (options.positional.size() != 1) {
    err << "usage: mrx mutate <graph> [--steps N] [--ops N] [--seed N] "
           "[--k N] [--verify on] [--out out.mrxg]\n";
    return 2;
  }
  Result<DataGraph> g = LoadGraph(options.positional[0]);
  if (!g.ok()) return Fail(err, g.status());

  const size_t steps =
      static_cast<size_t>(std::atoll(options.Flag("steps", "10").c_str()));
  const bool verify = options.Flag("verify") == "on" ||
                      options.Flag("verify") == "1" ||
                      options.Flag("verify") == "true";
  Rng rng(
      static_cast<uint64_t>(std::atoll(options.Flag("seed", "1").c_str())));
  mutate::RandomBatchOptions gen;
  gen.num_ops =
      static_cast<size_t>(std::atoll(options.Flag("ops", "3").c_str()));
  mutate::MaintainerOptions mo;
  mo.k_max = static_cast<int>(std::atoll(options.Flag("k", "3").c_str()));
  mutate::IncrementalMaintainer m(*g, mo);

  size_t rejected = 0;
  for (size_t s = 0; s < steps; ++s) {
    const mutate::MutationBatch batch =
        mutate::GenerateRandomBatch(rng, m.graph(), gen);
    Result<mutate::BatchReceipt> receipt = m.Apply(batch);
    if (!receipt.ok()) {
      ++rejected;
      out << "v" << m.version() << ": batch rejected ("
          << receipt.status().message() << ")\n";
      continue;
    }
    out << "v" << receipt->version << ": +" << receipt->new_nodes.size()
        << " -" << receipt->nodes_deleted << " nodes -> " << receipt->nodes
        << " nodes / " << receipt->edges << " edges, cascade "
        << receipt->dirty_nodes
        << (receipt->full_rounds > 0 ? " (rebuild fallback)" : "")
        << (receipt->dk_rebuilt ? " (D rebuilt)" : "") << "\n";
    if (verify) {
      for (int k = 0; k <= mo.k_max; ++k) {
        const BisimulationPartition oracle =
            ComputeKBisimulation(m.graph(), k);
        const BisimulationPartition got = m.AkPartition(k);
        if (got.num_blocks != oracle.num_blocks ||
            got.block_of != mutate::CanonicalBlockIds(oracle.block_of,
                                                      oracle.num_blocks)) {
          err << "FAILED: A(" << k << ") diverged from from-scratch at v"
              << receipt->version << "\n";
          return 1;
        }
      }
    }
  }
  const mutate::MaintainerStats& stats = m.stats();
  out << "applied " << stats.batches << " batches (" << rejected
      << " rejected): +" << stats.nodes_added << " -" << stats.nodes_deleted
      << " nodes, " << stats.incremental_rounds << " incremental / "
      << stats.full_rounds << " full rounds, " << stats.dk_rebuilds
      << " D rebuilds" << (verify ? ", all steps verified" : "") << "\n";

  const std::string out_path = options.Flag("out");
  if (!out_path.empty()) {
    const Status written =
        WriteFile(out_path, storage::SerializeDataGraph(m.graph()));
    if (!written.ok()) return Fail(err, written);
    out << "wrote " << out_path << "\n";
  }
  return 0;
}

int CmdCheck(const Options& options, std::ostream& out, std::ostream& err) {
  const bool fault = options.Flag("fault") == "on" ||
                     options.Flag("fault") == "1" ||
                     options.Flag("fault") == "true";

  // Pin the extent representation for the whole run: every index the
  // harness builds (never the vector-based oracle) goes through the forced
  // encoder, so a differential run exercises one representation end to end.
  const std::string rep_name = options.Flag("extent-rep", "auto");
  const std::optional<ExtentRepMode> rep_mode = ParseExtentRepMode(rep_name);
  if (!rep_mode.has_value()) {
    err << "unknown --extent-rep: " << rep_name
        << " (expected auto|vector|delta|hybrid)\n";
    return 2;
  }
  SetExtentRepMode(*rep_mode);

  // Cap the SIMD dispatch level for the whole run (differential runs force
  // scalar vs vectorized kernels against each other; levels above the
  // detected hardware are clamped, "native" lifts any MRX_SIMD env cap).
  const std::string simd_name = options.Flag("simd");
  if (!simd_name.empty()) {
    const std::optional<SimdLevel> simd = ParseSimdLevel(simd_name);
    if (!simd.has_value()) {
      err << "unknown --simd: " << simd_name
          << " (expected scalar|sse42|avx2|native)\n";
      return 2;
    }
    SetSimdLevel(*simd);
  }

  const std::string replay_path = options.Flag("replay");
  if (EndsWith(replay_path, ".mrxtrace")) {
    Result<std::string> text = ReadFile(replay_path);
    if (!text.ok()) return Fail(err, text.status());
    Result<check::MutationTrace> trace = check::ParseTrace(*text);
    if (!trace.ok()) return Fail(err, trace.status());
    const check::TraceResult result =
        check::RunMutationTrace(*trace, check::MutationTraceOptions{});
    out << "replay " << replay_path << ": " << result.steps_applied
        << " steps applied, " << result.checks << " oracle checks\n";
    for (const std::string& v : result.violations) out << "  " << v << "\n";
    out << (result.ok() ? "did not reproduce\n" : "REPRODUCED\n");
    return result.ok() ? 0 : 1;
  }
  if (!replay_path.empty()) {
    Result<std::string> text = ReadFile(replay_path);
    if (!text.ok()) return Fail(err, text.status());
    Result<check::ReproCase> repro = check::ParseCase(*text);
    if (!repro.ok()) return Fail(err, repro.status());
    const bool previous = fault::inject_extent_drop.exchange(fault);
    Result<check::ReplayReport> report = check::ReplayCase(*repro);
    fault::inject_extent_drop.store(previous);
    if (!report.ok()) return Fail(err, report.status());
    out << "replay " << replay_path << " [" << repro->index_class << "]"
        << (repro->note.empty() ? "" : " " + repro->note) << "\n"
        << "  expected " << report->expected.size() << " nodes, got "
        << report->actual.size() << "\n";
    if (!report->detail.empty()) out << "  detail: " << report->detail << "\n";
    out << (report->reproduced ? "REPRODUCED\n" : "did not reproduce\n");
    return report->reproduced ? 1 : 0;
  }

  const std::string mode = options.Flag("mode", "diff");
  if (mode == "stress") {
    check::StressOptions so;
    so.seed =
        static_cast<uint64_t>(std::atoll(options.Flag("seed", "1").c_str()));
    so.threads = static_cast<size_t>(
        std::atoll(options.Flag("threads", "4").c_str()));
    so.rounds = static_cast<size_t>(
        std::atoll(options.Flag("rounds", "400").c_str()));
    so.num_queries = static_cast<size_t>(
        std::atoll(options.Flag("queries", "32").c_str()));
    so.max_nodes = static_cast<size_t>(
        std::atoll(options.Flag("max-nodes", "96").c_str()));
    so.refine_threads = static_cast<size_t>(
        std::atoll(options.Flag("refine-threads", "1").c_str()));
    obs::TraceRecorder tracer;
    so.tracer = &tracer;
    const check::StressReport report = check::RunStressCheck(so);
    out << "stress: shape=" << report.shape << " queries="
        << report.queries_run << " mismatches=" << report.mismatches
        << " epoch_regressions=" << report.epoch_regressions
        << " final_mismatches=" << report.final_mismatches << "\n"
        << "stress: publications=" << report.publications
        << " refinements=" << report.refinements << " stale_put_drops="
        << report.stale_put_drops << " trace_spans=" << tracer.size()
        << "\n";
    out << (report.ok() ? "OK\n" : "FAILED\n");
    return report.ok() ? 0 : 1;
  }
  if (mode == "mutate") {
    check::MutationCheckOptions mo;
    mo.seed =
        static_cast<uint64_t>(std::atoll(options.Flag("seed", "1").c_str()));
    mo.num_traces = static_cast<size_t>(
        std::atoll(options.Flag("cases", "200").c_str()));
    mo.trace.num_steps = static_cast<size_t>(
        std::atoll(options.Flag("steps", "6").c_str()));
    mo.trace.ops_per_batch =
        static_cast<size_t>(std::atoll(options.Flag("ops", "3").c_str()));
    mo.trace.gen.num_queries = static_cast<size_t>(
        std::atoll(options.Flag("queries", "6").c_str()));
    mo.trace.gen.max_nodes = static_cast<size_t>(
        std::atoll(options.Flag("max-nodes", "48").c_str()));
    mo.out_dir = options.Flag("out");
    mo.max_failures = static_cast<size_t>(
        std::atoll(options.Flag("max-failures", "8").c_str()));
    mo.log = &out;
    const check::MutationCheckSummary summary =
        check::RunMutationTraceCheck(mo);
    out << "mutate: " << summary.traces << " traces, "
        << summary.steps_applied << " batches applied, " << summary.checks
        << " oracle checks\n"
        << "mutate: " << summary.violations << " violations, "
        << summary.failures.size() << " recorded failures\n";
    for (const check::MutationCheckFailure& f : summary.failures) {
      out << "  trace " << f.trace_index << " (" << f.shrunk_steps
          << " steps shrunk): " << f.note
          << (f.file.empty() ? "" : " -> " + f.file) << "\n";
    }
    out << (summary.ok() ? "OK\n" : "FAILED\n");
    return summary.ok() ? 0 : 1;
  }
  if (mode == "mutate-stress") {
    check::MutationStressOptions so;
    so.seed =
        static_cast<uint64_t>(std::atoll(options.Flag("seed", "1").c_str()));
    so.threads = static_cast<size_t>(
        std::atoll(options.Flag("threads", "4").c_str()));
    so.mutation_batches = static_cast<size_t>(
        std::atoll(options.Flag("batches", "40").c_str()));
    so.ops_per_batch =
        static_cast<size_t>(std::atoll(options.Flag("ops", "3").c_str()));
    so.num_queries = static_cast<size_t>(
        std::atoll(options.Flag("queries", "16").c_str()));
    so.max_nodes = static_cast<size_t>(
        std::atoll(options.Flag("max-nodes", "96").c_str()));
    const check::MutationStressReport report = check::RunMutationStress(so);
    out << "mutate-stress: shape=" << report.shape << " queries="
        << report.queries_run << " mutations=" << report.mutations_applied
        << " mismatches=" << report.mismatches << " epoch_regressions="
        << report.epoch_regressions << " final_mismatches="
        << report.final_mismatches << " stale_put_drops="
        << report.stale_put_drops << "\n";
    out << (report.ok() ? "OK\n" : "FAILED\n");
    return report.ok() ? 0 : 1;
  }
  if (mode != "diff") {
    err << "unknown check mode: " << mode
        << " (expected diff, stress, mutate, or mutate-stress)\n";
    return 2;
  }

  check::CheckOptions co;
  co.seed =
      static_cast<uint64_t>(std::atoll(options.Flag("seed", "1").c_str()));
  co.num_cases = static_cast<size_t>(
      std::atoll(options.Flag("cases", "100").c_str()));
  co.gen.num_queries = static_cast<size_t>(
      std::atoll(options.Flag("queries", "6").c_str()));
  co.gen.max_nodes = static_cast<size_t>(
      std::atoll(options.Flag("max-nodes", "48").c_str()));
  co.out_dir = options.Flag("out");
  co.max_failures = static_cast<size_t>(
      std::atoll(options.Flag("max-failures", "8").c_str()));
  co.inject_extent_drop = fault;
  co.log = &out;
  const check::CheckSummary summary = check::RunCheck(co);
  out << "check: " << summary.cases << " cases, " << summary.queries
      << " queries, " << summary.checks << " oracle checks\n"
      << "check: " << summary.discrepancies << " discrepancies, "
      << summary.violations << " invariant violations, "
      << summary.failures.size() << " recorded failures\n";
  out << (summary.ok() ? "OK\n" : "FAILED\n");
  return summary.ok() ? 0 : 1;
}

}  // namespace

int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    out << kUsage;
    return args.empty() ? 2 : 0;
  }
  const std::string& command = args[0];

  size_t begin = 1;
  std::string sub;
  if (command == "index") {
    if (args.size() < 2) {
      err << "usage: mrx index <build|info> ...\n";
      return 2;
    }
    sub = args[1];
    begin = 2;
  }
  Result<Options> options = ParseOptions(args, begin);
  if (!options.ok()) return Fail(err, options.status());

  if (command == "stats") return CmdStats(*options, out, err);
  if (command == "convert") return CmdConvert(*options, out, err);
  if (command == "index" && sub == "build") {
    return CmdIndexBuild(*options, out, err);
  }
  if (command == "index" && sub == "info") {
    return CmdIndexInfo(*options, out, err);
  }
  if (command == "query") return CmdQuery(*options, out, err);
  if (command == "explain") return CmdExplain(*options, out, err);
  if (command == "diag") return CmdDiag(*options, out, err);
  if (command == "generate") return CmdGenerate(*options, out, err);
  if (command == "workload") return CmdWorkload(*options, out, err);
  if (command == "serve-bench") return CmdServeBench(*options, out, err);
  if (command == "mutate") return CmdMutate(*options, out, err);
  if (command == "check") return CmdCheck(*options, out, err);

  err << "unknown command: " << command << "\n" << kUsage;
  return 2;
}

}  // namespace mrx::tools
