#ifndef MRX_TOOLS_CLI_H_
#define MRX_TOOLS_CLI_H_

#include <ostream>
#include <string>
#include <vector>

namespace mrx::tools {

/// \brief The `mrx` command-line tool, as a testable library function.
///
/// Subcommands:
///   stats <file.xml|file.mrxg> [--metrics prom|json]
///                                           graph shape statistics, plus
///                                           the process metrics exposition
///   convert <in.xml|in.mrxg> <out.xml|out.mrxg>
///                                           XML ⇄ binary graph conversion
///   index build <graph> <out.mrxs> --fup <expr> [--fup <expr> ...]
///                                           build + refine an M*(k)-index
///   index info <graph> <index.mrxs>         component/size summary
///   query <graph> [index.mrxs] <expr> [--strategy auto|topdown|naive|
///                                       bottomup|hybrid]
///   generate xmark|nasa <out.xml> [--scale S] [--seed N]
///   workload <graph> [--count N] [--max-length L] [--seed N]
///                                           print a synthetic workload
///   serve-bench <graph> [--workers N] [--clients N] [--queries N]
///               [--count N] [--max-length L] [--seed N] [--csv out.csv]
///               [--metrics-out DIR] [--trace-sample N]
///                                           closed-loop load test against
///                                           the concurrent query server;
///                                           --metrics-out writes the
///                                           Prometheus/JSONL expositions,
///                                           the span trace, and
///                                           BENCH_server.json into DIR
///   check [--mode diff|stress] [--seed N] [--cases M] [--out DIR]
///         [--fault on] [--threads N] [--rounds N] [--replay f.mrxcase]
///                                           differential correctness
///                                           harness (docs/TESTING.md):
///                                           randomized oracle cross-checks
///                                           + invariant audits (diff) or a
///                                           concurrent-session hammer
///                                           (stress); exit 1 on failure
///
/// Returns a process exit code; all human output goes to `out`, errors to
/// `err`. File formats are detected by suffix (.xml / .mrxg / .mrxs).
int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err);

}  // namespace mrx::tools

#endif  // MRX_TOOLS_CLI_H_
