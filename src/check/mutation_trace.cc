#include "check/mutation_trace.h"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <tuple>
#include <utility>

#include "check/checker.h"
#include "check/invariants.h"
#include "check/oracle.h"
#include "index/bisimulation.h"
#include "index/d_k_index.h"
#include "index/m_star_index.h"
#include "mutate/incremental_maintainer.h"
#include "mutate/mutable_graph.h"
#include "mutate/random_batch.h"
#include "query/data_evaluator.h"
#include "server/concurrent_session.h"
#include "util/string_util.h"

namespace mrx::check {
namespace {

/// \brief An independent shadow of the mutable graph: labels by stable id,
/// an alive set, and a flat edge set, with mutation semantics implemented
/// from the Mutation contract alone (no MutableDataGraph code). If the
/// subsystem materializes a graph the shadow disagrees with, the graph
/// itself is wrong — partition exactness checks could not see that, since
/// they compare against oracles run on the same (wrong) graph.
class ShadowModel {
 public:
  explicit ShadowModel(const DataGraph& g) : root_(g.root()) {
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      labels_.emplace_back(g.label_name(n));
      alive_.push_back(true);
    }
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      const auto kids = g.children(n);
      const auto kinds = g.child_kinds(n);
      for (size_t i = 0; i < kids.size(); ++i) {
        edges_.insert({n, kids[i], kinds[i] == EdgeKind::kReference});
      }
    }
  }

  /// Ascending alive stable ids — the compaction order the contract pins.
  std::vector<uint32_t> CompactOrder() const {
    std::vector<uint32_t> order;
    for (uint32_t s = 0; s < labels_.size(); ++s) {
      if (alive_[s]) order.push_back(s);
    }
    return order;
  }

  /// Replays an *accepted* batch (ids in the pre-batch compact space).
  void Apply(const mutate::MutationBatch& batch) {
    const std::vector<uint32_t> stable = CompactOrder();
    for (const mutate::Mutation& op : batch) {
      switch (op.kind) {
        case mutate::Mutation::Kind::kAppendSubtree: {
          const uint32_t parent = stable[op.target];
          const uint32_t base = static_cast<uint32_t>(labels_.size());
          for (const std::string& label : op.subtree.labels) {
            labels_.push_back(label);
            alive_.push_back(true);
          }
          edges_.insert({parent, base, false});
          for (const auto& e : op.subtree.edges) {
            edges_.insert({base + e.from, base + e.to,
                           e.kind == EdgeKind::kReference});
          }
          break;
        }
        case mutate::Mutation::Kind::kDeleteSubtree: {
          // Doomed set: regular-edge closure from the victim, alive only.
          std::vector<uint32_t> frontier = {stable[op.target]};
          std::set<uint32_t> doomed(frontier.begin(), frontier.end());
          while (!frontier.empty()) {
            const uint32_t u = frontier.back();
            frontier.pop_back();
            for (const auto& [from, to, ref] : edges_) {
              if (from == u && !ref && alive_[to] && doomed.insert(to).second) {
                frontier.push_back(to);
              }
            }
          }
          for (uint32_t d : doomed) alive_[d] = false;
          std::erase_if(edges_, [&](const auto& e) {
            return doomed.count(std::get<0>(e)) != 0 ||
                   doomed.count(std::get<1>(e)) != 0;
          });
          break;
        }
        case mutate::Mutation::Kind::kAddRefEdge:
          edges_.insert({stable[op.target], stable[op.ref_target], true});
          break;
        case mutate::Mutation::Kind::kRemoveRefEdge:
          edges_.erase({stable[op.target], stable[op.ref_target], true});
          break;
      }
    }
  }

  /// Compares against a materialized version; returns violation messages.
  std::vector<std::string> Compare(const DataGraph& g) const {
    std::vector<std::string> out;
    const std::vector<uint32_t> order = CompactOrder();
    if (order.size() != g.num_nodes()) {
      out.push_back("shadow: node count " + std::to_string(order.size()) +
                    " vs materialized " + std::to_string(g.num_nodes()));
      return out;
    }
    std::vector<uint32_t> compact(labels_.size(), 0);
    for (size_t c = 0; c < order.size(); ++c) {
      compact[order[c]] = static_cast<uint32_t>(c);
      if (g.label_name(static_cast<NodeId>(c)) != labels_[order[c]]) {
        out.push_back("shadow: label of compact " + std::to_string(c) +
                      ": expected " + labels_[order[c]] + ", got " +
                      std::string(g.label_name(static_cast<NodeId>(c))));
      }
    }
    if (g.root() != compact[root_]) {
      out.push_back("shadow: root " + std::to_string(compact[root_]) +
                    " vs materialized " + std::to_string(g.root()));
    }
    std::set<std::tuple<uint32_t, uint32_t, bool>> expected;
    for (const auto& [from, to, ref] : edges_) {
      expected.insert({compact[from], compact[to], ref});
    }
    std::set<std::tuple<uint32_t, uint32_t, bool>> got;
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      const auto kids = g.children(n);
      const auto kinds = g.child_kinds(n);
      for (size_t i = 0; i < kids.size(); ++i) {
        got.insert({n, kids[i], kinds[i] == EdgeKind::kReference});
      }
    }
    if (expected != got) {
      out.push_back("shadow: edge sets differ (" +
                    std::to_string(expected.size()) + " expected, " +
                    std::to_string(got.size()) + " materialized)");
    }
    return out;
  }

 private:
  std::vector<std::string> labels_;  ///< By stable id, dead slots kept.
  std::vector<bool> alive_;
  std::set<std::tuple<uint32_t, uint32_t, bool>> edges_;  ///< Stable ids.
  uint32_t root_;
};

/// The static hierarchy's spec sequence, derived from scratch — the oracle
/// the maintainer's ExportStaticSpecs must match byte for byte.
std::vector<MStarComponentSpec> StaticSpecsOracle(const DataGraph& g,
                                                  int k_max) {
  std::vector<MStarComponentSpec> specs;
  std::vector<uint32_t> prev_block_of;
  BisimulationPartition part = ComputeKBisimulation(g, 0);
  for (int i = 0; i <= k_max; ++i) {
    if (i > 0) RefineBisimulationRound(g, &part);
    MStarComponentSpec spec;
    // Stage as vectors (scatter by block), then seal into Extents.
    std::vector<std::vector<NodeId>> staged(part.num_blocks);
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      staged[part.block_of[n]].push_back(n);
    }
    spec.ks.assign(part.num_blocks, i);
    spec.supernodes.assign(part.num_blocks, 0);
    spec.extents.reserve(part.num_blocks);
    for (uint32_t b = 0; b < part.num_blocks; ++b) {
      if (i > 0) spec.supernodes[b] = prev_block_of[staged[b].front()];
      spec.extents.push_back(Extent::FromSorted(std::move(staged[b])));
    }
    prev_block_of = part.block_of;
    specs.push_back(std::move(spec));
  }
  return specs;
}

/// Cross-checks one maintained state against the from-scratch oracles.
void CheckStep(const mutate::IncrementalMaintainer& m,
               const ShadowModel& shadow,
               const std::vector<PathExpression>& queries,
               const MutationTraceOptions& options, const std::string& where,
               TraceResult* result) {
  const DataGraph& g = m.graph();
  auto fail = [&](std::string message) {
    result->violations.push_back(where + ": " + std::move(message));
  };

  for (std::string& v : shadow.Compare(g)) fail(std::move(v));
  ++result->checks;

  if (options.audit_invariants) {
    for (std::string& v : AuditDataGraphCsr(g)) fail(std::move(v));
    ++result->checks;
  }

  for (int k = 0; k <= options.k_max; ++k) {
    const BisimulationPartition oracle = ComputeKBisimulation(g, k);
    const BisimulationPartition got = m.AkPartition(k);
    ++result->checks;
    if (got.num_blocks != oracle.num_blocks ||
        got.block_of !=
            mutate::CanonicalBlockIds(oracle.block_of, oracle.num_blocks)) {
      fail("A(" + std::to_string(k) + "): incremental partition (" +
           std::to_string(got.num_blocks) + " blocks) != from-scratch (" +
           std::to_string(oracle.num_blocks) + " blocks)");
    }
  }

  if (options.maintain_dk) {
    const std::vector<int32_t> kreq = ComputeDkLabelRequirements(g, queries);
    const BisimulationPartition oracle = ComputeDkConstructPartition(g, kreq);
    const BisimulationPartition got = m.DkPartition();
    ++result->checks;
    if (got.num_blocks != oracle.num_blocks ||
        got.block_of !=
            mutate::CanonicalBlockIds(oracle.block_of, oracle.num_blocks)) {
      fail("D(k)-construct: incremental partition (" +
           std::to_string(got.num_blocks) + " blocks) != from-scratch (" +
           std::to_string(oracle.num_blocks) + " blocks)");
    }
  }

  if (options.check_mstar) {
    const std::vector<MStarComponentSpec> got = m.ExportStaticSpecs();
    const std::vector<MStarComponentSpec> want =
        StaticSpecsOracle(g, options.k_max);
    ++result->checks;
    for (size_t i = 0; i < want.size(); ++i) {
      if (got[i].extents != want[i].extents || got[i].ks != want[i].ks ||
          got[i].supernodes != want[i].supernodes) {
        fail("M*: exported spec of component " + std::to_string(i) +
             " differs from the static hierarchy's");
        break;
      }
    }
    Result<MStarIndex> index = m.BuildMStar();
    if (!index.ok()) {
      fail("M*: FromComponents rejected the exported specs: " +
           index.status().ToString());
    } else {
      if (options.audit_invariants) {
        for (std::string& v : AuditMStarIndex(*index)) fail(std::move(v));
        ++result->checks;
      }
      DataEvaluator validator(g);
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        ++result->checks;
        const QueryResult answer = index->QueryTopDown(queries[qi], &validator);
        if (answer.answer != GroundTruth(g, queries[qi])) {
          fail("M*: query " + std::to_string(qi) +
               " disagrees with ground truth on the mutated graph");
        }
      }
    }
  }
}

Result<uint64_t> ParseUint(std::string_view token, std::string_view what) {
  uint64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return Status::ParseError("mrxtrace: bad " + std::string(what) + ": " +
                              std::string(token));
  }
  return value;
}

}  // namespace

std::string MutationTrace::ToText() const {
  std::ostringstream out;
  out << "mrxtrace 1\n";
  if (!shape.empty()) out << "shape " << shape << "\n";
  out << "root " << initial.root << "\n";
  for (const std::string& label : initial.labels) out << "n " << label << "\n";
  for (const GraphSpec::Edge& e : initial.edges) {
    out << "e " << e.from << " " << e.to << (e.reference ? " ref" : " reg")
        << "\n";
  }
  for (const QuerySpec& q : queries) {
    out << "query anchored " << (q.anchored ? 1 : 0) << "\n";
    for (size_t i = 0; i < q.steps.size(); ++i) {
      const int desc = i < q.descendant.size() && q.descendant[i] ? 1 : 0;
      out << "step " << q.steps[i] << " " << desc << "\n";
    }
  }
  for (const mutate::MutationBatch& batch : steps) {
    out << "batch\n";
    for (const mutate::Mutation& op : batch) {
      switch (op.kind) {
        case mutate::Mutation::Kind::kAppendSubtree: {
          out << "append " << op.target << " " << op.subtree.labels.size();
          for (const std::string& label : op.subtree.labels) {
            out << " " << label;
          }
          out << " " << op.subtree.edges.size();
          for (const auto& e : op.subtree.edges) {
            out << " " << e.from << " " << e.to
                << (e.kind == EdgeKind::kReference ? " ref" : " reg");
          }
          out << "\n";
          break;
        }
        case mutate::Mutation::Kind::kDeleteSubtree:
          out << "delete " << op.target << "\n";
          break;
        case mutate::Mutation::Kind::kAddRefEdge:
          out << "addref " << op.target << " " << op.ref_target << "\n";
          break;
        case mutate::Mutation::Kind::kRemoveRefEdge:
          out << "rmref " << op.target << " " << op.ref_target << "\n";
          break;
      }
    }
  }
  return out.str();
}

Result<MutationTrace> ParseTrace(const std::string& text) {
  MutationTrace trace;
  QuerySpec* open_query = nullptr;
  bool saw_header = false;
  bool in_batches = false;

  for (std::string_view raw : Split(text, '\n')) {
    std::string_view line = StripWhitespace(raw);
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string_view> tokens = SplitSkipEmpty(line, ' ');
    const std::string_view kind = tokens[0];

    if (kind == "mrxtrace") {
      saw_header = true;
      continue;
    }
    if (!saw_header) return Status::ParseError("mrxtrace: missing header");

    if (kind == "shape" && tokens.size() == 2) {
      trace.shape = std::string(tokens[1]);
    } else if (kind == "root" && tokens.size() == 2) {
      MRX_ASSIGN_OR_RETURN(uint64_t root, ParseUint(tokens[1], "root"));
      trace.initial.root = static_cast<uint32_t>(root);
    } else if (kind == "n" && tokens.size() == 2) {
      trace.initial.labels.emplace_back(tokens[1]);
    } else if (kind == "e" && tokens.size() == 4) {
      MRX_ASSIGN_OR_RETURN(uint64_t from, ParseUint(tokens[1], "edge from"));
      MRX_ASSIGN_OR_RETURN(uint64_t to, ParseUint(tokens[2], "edge to"));
      if (tokens[3] != "ref" && tokens[3] != "reg") {
        return Status::ParseError("mrxtrace: bad edge kind: " +
                                  std::string(tokens[3]));
      }
      trace.initial.edges.push_back({static_cast<uint32_t>(from),
                                     static_cast<uint32_t>(to),
                                     tokens[3] == "ref"});
    } else if (kind == "query" && tokens.size() == 3 &&
               tokens[1] == "anchored" && !in_batches) {
      MRX_ASSIGN_OR_RETURN(uint64_t anchored,
                           ParseUint(tokens[2], "anchored"));
      trace.queries.emplace_back();
      open_query = &trace.queries.back();
      open_query->anchored = anchored != 0;
    } else if (kind == "step" && tokens.size() == 3) {
      if (open_query == nullptr) {
        return Status::ParseError("mrxtrace: step before query");
      }
      MRX_ASSIGN_OR_RETURN(uint64_t desc, ParseUint(tokens[2], "descendant"));
      open_query->steps.emplace_back(tokens[1]);
      open_query->descendant.push_back(desc != 0 ? 1 : 0);
    } else if (kind == "batch" && tokens.size() == 1) {
      in_batches = true;
      open_query = nullptr;
      trace.steps.emplace_back();
    } else if (kind == "delete" && tokens.size() == 2 && in_batches) {
      MRX_ASSIGN_OR_RETURN(uint64_t target, ParseUint(tokens[1], "target"));
      trace.steps.back().push_back(
          mutate::Mutation::Delete(static_cast<NodeId>(target)));
    } else if ((kind == "addref" || kind == "rmref") && tokens.size() == 3 &&
               in_batches) {
      MRX_ASSIGN_OR_RETURN(uint64_t from, ParseUint(tokens[1], "ref from"));
      MRX_ASSIGN_OR_RETURN(uint64_t to, ParseUint(tokens[2], "ref to"));
      trace.steps.back().push_back(
          kind == "addref"
              ? mutate::Mutation::AddRef(static_cast<NodeId>(from),
                                         static_cast<NodeId>(to))
              : mutate::Mutation::RemoveRef(static_cast<NodeId>(from),
                                            static_cast<NodeId>(to)));
    } else if (kind == "append" && tokens.size() >= 3 && in_batches) {
      MRX_ASSIGN_OR_RETURN(uint64_t target, ParseUint(tokens[1], "target"));
      MRX_ASSIGN_OR_RETURN(uint64_t nlabels,
                           ParseUint(tokens[2], "label count"));
      size_t cursor = 3;
      mutate::SubtreeSpec spec;
      if (tokens.size() < cursor + nlabels + 1) {
        return Status::ParseError("mrxtrace: truncated append");
      }
      for (uint64_t i = 0; i < nlabels; ++i) {
        spec.labels.emplace_back(tokens[cursor++]);
      }
      MRX_ASSIGN_OR_RETURN(uint64_t nedges,
                           ParseUint(tokens[cursor++], "edge count"));
      if (tokens.size() != cursor + nedges * 3) {
        return Status::ParseError("mrxtrace: truncated append edges");
      }
      for (uint64_t i = 0; i < nedges; ++i) {
        MRX_ASSIGN_OR_RETURN(uint64_t from,
                             ParseUint(tokens[cursor++], "subtree from"));
        MRX_ASSIGN_OR_RETURN(uint64_t to,
                             ParseUint(tokens[cursor++], "subtree to"));
        const std::string_view ek = tokens[cursor++];
        if (ek != "ref" && ek != "reg") {
          return Status::ParseError("mrxtrace: bad subtree edge kind: " +
                                    std::string(ek));
        }
        spec.edges.push_back({static_cast<uint32_t>(from),
                              static_cast<uint32_t>(to),
                              ek == "ref" ? EdgeKind::kReference
                                          : EdgeKind::kRegular});
      }
      trace.steps.back().push_back(
          mutate::Mutation::Append(static_cast<NodeId>(target),
                                   std::move(spec)));
    } else {
      return Status::ParseError("mrxtrace: unrecognized line: " +
                                std::string(line));
    }
  }
  if (trace.initial.labels.empty()) {
    return Status::ParseError("mrxtrace: no nodes");
  }
  return trace;
}

MutationTrace GenerateMutationTrace(Rng& rng,
                                    const MutationTraceOptions& options) {
  MutationTrace trace;
  GeneratedCase gcase = GenerateCase(rng, options.gen);
  trace.initial = std::move(gcase.graph);
  trace.queries = std::move(gcase.queries);
  trace.shape = std::move(gcase.shape);

  Result<DataGraph> g = trace.initial.Build();
  if (!g.ok()) return trace;  // No steps; replay reports the build failure.

  // Each batch is generated against the evolving graph so its ids are
  // valid at application time; rejected batches are recorded anyway (they
  // replay as skips, keeping generation and replay in lockstep).
  mutate::RandomBatchOptions gen;
  gen.num_ops = options.ops_per_batch;
  mutate::MutableDataGraph live(*g);
  auto mat = live.Materialize();
  for (size_t s = 0; s < options.num_steps && mat.ok(); ++s) {
    mutate::MutationBatch batch =
        mutate::GenerateRandomBatch(rng, mat->graph, gen);
    trace.steps.push_back(batch);
    if (live.ApplyBatch(batch, mat->stable_of).ok()) {
      mat = live.Materialize();
    }
  }
  return trace;
}

TraceResult RunMutationTrace(const MutationTrace& trace,
                             const MutationTraceOptions& options) {
  TraceResult result;
  Result<DataGraph> initial = trace.initial.Build();
  if (!initial.ok()) {
    result.violations.push_back("trace: initial graph does not build: " +
                                initial.status().ToString());
    return result;
  }

  std::vector<PathExpression> queries;
  for (const QuerySpec& spec : trace.queries) {
    Result<PathExpression> q = spec.Compile(initial->symbols());
    if (q.ok()) queries.push_back(*std::move(q));
  }

  mutate::MaintainerOptions mo;
  mo.k_max = options.k_max;
  mo.rebuild_threshold = options.rebuild_threshold;
  mo.maintain_dk = options.maintain_dk;
  mo.dk_fups = queries;
  mutate::IncrementalMaintainer m(*initial, mo);
  ShadowModel shadow(*initial);

  CheckStep(m, shadow, queries, options, "seed", &result);
  for (size_t s = 0; s < trace.steps.size(); ++s) {
    if (!m.Apply(trace.steps[s]).ok()) continue;  // A reject is a no-op.
    shadow.Apply(trace.steps[s]);
    ++result.steps_applied;
    CheckStep(m, shadow, queries, options, "step " + std::to_string(s),
              &result);
  }
  return result;
}

MutationTrace ShrinkMutationTrace(const MutationTrace& trace,
                                  const MutationTraceOptions& options,
                                  size_t max_attempts) {
  auto fails = [&](const MutationTrace& candidate) {
    return !RunMutationTrace(candidate, options).ok();
  };
  if (!fails(trace)) return trace;

  MutationTrace best = trace;
  size_t attempts = 0;
  bool changed = true;
  while (changed && attempts < max_attempts) {
    changed = false;
    // Whole steps, last to first (later steps depend on earlier ids, so
    // the tail is the cheapest to lose).
    for (size_t i = best.steps.size(); i-- > 0 && attempts < max_attempts;) {
      MutationTrace candidate = best;
      candidate.steps.erase(candidate.steps.begin() +
                            static_cast<ptrdiff_t>(i));
      ++attempts;
      if (fails(candidate)) {
        best = std::move(candidate);
        changed = true;
      }
    }
    // Single ops within steps.
    for (size_t s = 0; s < best.steps.size() && attempts < max_attempts;
         ++s) {
      for (size_t o = best.steps[s].size();
           o-- > 0 && attempts < max_attempts;) {
        MutationTrace candidate = best;
        candidate.steps[s].erase(candidate.steps[s].begin() +
                                 static_cast<ptrdiff_t>(o));
        if (candidate.steps[s].empty()) {
          candidate.steps.erase(candidate.steps.begin() +
                                static_cast<ptrdiff_t>(s));
        }
        ++attempts;
        if (fails(candidate)) {
          best = std::move(candidate);
          changed = true;
          if (s >= best.steps.size()) break;
        }
      }
    }
    // Queries (they drive the D(k) schedule and the M* answer checks).
    for (size_t q = best.queries.size();
         q-- > 0 && best.queries.size() > 1 && attempts < max_attempts;) {
      MutationTrace candidate = best;
      candidate.queries.erase(candidate.queries.begin() +
                              static_cast<ptrdiff_t>(q));
      ++attempts;
      if (fails(candidate)) {
        best = std::move(candidate);
        changed = true;
      }
    }
  }
  return best;
}

MutationCheckSummary RunMutationTraceCheck(
    const MutationCheckOptions& options) {
  MutationCheckSummary summary;
  for (uint64_t i = 0; i < options.num_traces; ++i) {
    Rng rng(CaseSeed(options.seed, i));
    const MutationTrace trace = GenerateMutationTrace(rng, options.trace);
    const TraceResult result = RunMutationTrace(trace, options.trace);
    ++summary.traces;
    summary.steps_applied += result.steps_applied;
    summary.checks += result.checks;
    summary.violations += result.violations.size();
    if (result.ok()) continue;

    if (options.log != nullptr) {
      *options.log << "mutate: trace " << i << " FAILED: "
                   << result.violations.front() << "\n";
    }
    MutationCheckFailure failure;
    failure.trace_index = i;
    failure.repro = ShrinkMutationTrace(trace, options.trace);
    const TraceResult shrunk = RunMutationTrace(failure.repro, options.trace);
    failure.note = shrunk.violations.empty() ? result.violations.front()
                                             : shrunk.violations.front();
    failure.shrunk_steps = failure.repro.steps.size();
    if (!options.out_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(options.out_dir, ec);
      const std::filesystem::path path =
          std::filesystem::path(options.out_dir) /
          ("trace_" + std::to_string(options.seed) + "_" + std::to_string(i) +
           ".mrxtrace");
      std::ofstream out(path, std::ios::trunc);
      if (out) {
        out << failure.repro.ToText() << "# " << failure.note << "\n";
        failure.file = path.string();
      }
    }
    summary.failures.push_back(std::move(failure));
    if (summary.failures.size() >= options.max_failures) break;
  }
  return summary;
}

MutationStressReport RunMutationStress(const MutationStressOptions& options) {
  MutationStressReport report;
  Rng rng(options.seed);
  CaseGenOptions gen;
  gen.max_nodes = options.max_nodes;
  gen.num_queries = options.num_queries;
  gen.allow_dtd = false;  // Keep graph build deterministic and fast here.
  GeneratedCase gcase = GenerateCase(rng, gen);
  report.shape = gcase.shape;
  Result<DataGraph> built = gcase.graph.Build();
  if (!built.ok()) return report;
  const DataGraph& g = *built;

  std::vector<PathExpression> queries;
  for (const QuerySpec& spec : gcase.queries) {
    Result<PathExpression> q = spec.Compile(g.symbols());
    if (q.ok()) queries.push_back(*std::move(q));
  }
  if (queries.empty()) return report;

  server::ConcurrentSessionOptions session_options;
  session_options.refine_after = options.refine_after;
  server::ConcurrentSession session(g, session_options);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries_run{0};
  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> epoch_regressions{0};
  std::vector<std::thread> readers;
  for (size_t t = 0; t < std::max<size_t>(1, options.threads); ++t) {
    readers.emplace_back([&, t] {
      uint64_t last_epoch = 0;
      size_t i = t;
      while (!stop.load(std::memory_order_relaxed)) {
        const PathExpression& q = queries[i++ % queries.size()];
        const server::ConcurrentSession::VersionedAnswer a =
            session.QueryVersioned(q);
        queries_run.fetch_add(1, std::memory_order_relaxed);
        if (a.epoch < last_epoch) {
          epoch_regressions.fetch_add(1, std::memory_order_relaxed);
        }
        last_epoch = a.epoch;
        // Ground truth on the answering snapshot — only comparable when
        // the published version did not move in between (checked after
        // acquiring, so a match pins the snapshot to a.graph_version).
        std::shared_ptr<const DataGraph> snapshot = session.graph_snapshot();
        if (session.graph_version() == a.graph_version) {
          DataEvaluator oracle(*snapshot);
          if (oracle.Evaluate(q) != a.result.answer) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  mutate::RandomBatchOptions batch_gen;
  batch_gen.num_ops = options.ops_per_batch;
  for (size_t b = 0; b < options.mutation_batches; ++b) {
    std::shared_ptr<const DataGraph> snapshot = session.graph_snapshot();
    const mutate::MutationBatch batch =
        mutate::GenerateRandomBatch(rng, *snapshot, batch_gen);
    if (session.ApplyMutations(batch).ok()) ++report.mutations_applied;
  }
  // Small batches can all land before the readers' first iteration; keep
  // the session open until every reader has seen the final version at
  // least once (bounded, in case a sanitizer makes readers crawl).
  const uint64_t floor = readers.size() * 2;
  for (int spin = 0; spin < 2000 && queries_run.load() < floor; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  session.DrainRefinements();

  report.queries_run = queries_run.load();
  report.mismatches = mismatches.load();
  report.epoch_regressions = epoch_regressions.load();

  // Post-run: every query against ground truth on the final version.
  std::shared_ptr<const DataGraph> final_graph = session.graph_snapshot();
  DataEvaluator oracle(*final_graph);
  for (const PathExpression& q : queries) {
    if (session.Query(q).answer != oracle.Evaluate(q)) {
      ++report.final_mismatches;
    }
  }
  for (const auto& shard : session.cache_shard_stats()) {
    report.stale_put_drops += shard.stale_drops;
  }
  return report;
}

}  // namespace mrx::check
