#ifndef MRX_CHECK_SHRINKER_H_
#define MRX_CHECK_SHRINKER_H_

#include <cstddef>
#include <functional>

#include "check/graph_spec.h"

namespace mrx::check {

/// Re-runs the failing check on a candidate (graph, query) pair; returns
/// true iff the original failure still reproduces. The predicate owns
/// everything else about the failure (index class, FUPs, fault flags).
using ReproPredicate =
    std::function<bool(const GraphSpec& graph, const QuerySpec& query)>;

struct ShrinkOptions {
  /// Upper bound on predicate evaluations (the budget; shrinking stops
  /// early when it runs out).
  size_t max_evaluations = 4000;
};

struct ShrinkOutcome {
  GraphSpec graph;
  QuerySpec query;
  size_t evaluations = 0;  ///< Predicate calls spent.
};

/// \brief Greedy delta-debugging minimizer for a failing case.
///
/// Alternates three families of moves until none applies (or the budget
/// runs out), re-validating with `repro` after every candidate:
///  1. drop query steps (shortest failing expression first),
///  2. drop graph nodes — chunks first (binary contraction), then one by
///     one — with incident edges and id remapping,
///  3. drop individual edges.
/// The root node is never dropped (specs keep a valid root). `repro` must
/// hold for the input pair; the returned pair also satisfies it.
ShrinkOutcome ShrinkCase(GraphSpec graph, QuerySpec query,
                         const ReproPredicate& repro,
                         const ShrinkOptions& options = {});

}  // namespace mrx::check

#endif  // MRX_CHECK_SHRINKER_H_
