#ifndef MRX_CHECK_CHECKER_H_
#define MRX_CHECK_CHECKER_H_

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "check/case_gen.h"
#include "check/mrxcase.h"
#include "check/oracle.h"
#include "check/shrinker.h"
#include "util/result.h"

namespace mrx::check {

/// Knobs for one `mrx check` run.
struct CheckOptions {
  uint64_t seed = 1;
  size_t num_cases = 100;

  CaseGenOptions gen;
  OracleOptions oracle;
  ShrinkOptions shrink;

  /// Directory shrunk `.mrxcase` repros are written into (created on
  /// demand); empty disables writing.
  std::string out_dir;

  /// Stop the run after this many recorded failures (each failing case
  /// records one failure — its first discrepancy or violation).
  size_t max_failures = 8;

  /// Flip mrx::fault::inject_extent_drop for the whole run (including
  /// shrinking), restoring it on return. The acceptance path: the oracle
  /// must catch the planted extent bug and the shrinker must minimize it.
  bool inject_extent_drop = false;

  /// Progress/failure log; nullptr is silent.
  std::ostream* log = nullptr;
};

/// One recorded failure: the case that failed, its shrunk repro, and where
/// it was written.
struct CheckFailure {
  uint64_t case_index = 0;
  std::string index_class;  ///< Oracle class id, or "invariant".
  std::string note;
  std::string file;         ///< .mrxcase path, empty if not written.
  size_t shrunk_nodes = 0;  ///< Graph size after shrinking.
  ReproCase repro;
};

struct CheckSummary {
  size_t cases = 0;
  size_t queries = 0;
  size_t checks = 0;         ///< (class, query) oracle comparisons.
  size_t discrepancies = 0;  ///< Extent mismatches across all cases.
  size_t violations = 0;     ///< Invariant audit violations.
  std::vector<CheckFailure> failures;

  bool ok() const { return discrepancies == 0 && violations == 0; }
};

/// Per-case seed derivation: prefix-stable, so `--cases 2000` replays the
/// first 2000 cases of `--cases 20000` bit for bit.
inline uint64_t CaseSeed(uint64_t run_seed, uint64_t case_index) {
  return run_seed * 1000003ull + case_index;
}

/// \brief Runs the differential harness: `num_cases` generated cases, each
/// cross-checked by the oracle; failing cases are shrunk and written as
/// `.mrxcase` files.
CheckSummary RunCheck(const CheckOptions& options);

/// Outcome of replaying one `.mrxcase`.
struct ReplayReport {
  std::vector<NodeId> expected;  ///< Ground truth on the repro graph.
  std::vector<NodeId> actual;    ///< The named class's answer.
  bool reproduced = false;       ///< True iff the failure still fires.
  std::string detail;            ///< Violation text for invariant repros.
};

/// \brief Replays a parsed repro: rebuilds the graph, re-evaluates the
/// failing class (or, for "invariant" repros, re-runs the full
/// differential case) and reports whether the failure reproduces.
Result<ReplayReport> ReplayCase(const ReproCase& repro);

}  // namespace mrx::check

#endif  // MRX_CHECK_CHECKER_H_
