#ifndef MRX_CHECK_GRAPH_SPEC_H_
#define MRX_CHECK_GRAPH_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/data_graph.h"
#include "query/path_expression.h"
#include "util/result.h"

namespace mrx::check {

/// \brief A mutable, serializable description of a data graph.
///
/// DataGraph is frozen CSR — good for querying, useless for shrinking. The
/// checker generates, mutates, serializes, and minimizes GraphSpecs, and
/// only freezes one into a DataGraph when an index has to be built. Node
/// ids are positions in `labels`; edges may mention any node.
struct GraphSpec {
  struct Edge {
    uint32_t from = 0;
    uint32_t to = 0;
    bool reference = false;

    friend bool operator==(const Edge& a, const Edge& b) {
      return a.from == b.from && a.to == b.to && a.reference == b.reference;
    }
  };

  std::vector<std::string> labels;
  std::vector<Edge> edges;
  uint32_t root = 0;

  size_t num_nodes() const { return labels.size(); }

  uint32_t AddNode(std::string label) {
    labels.push_back(std::move(label));
    return static_cast<uint32_t>(labels.size() - 1);
  }
  void AddEdge(uint32_t from, uint32_t to, bool reference = false) {
    edges.push_back({from, to, reference});
  }

  /// Freezes into a DataGraph (fails on an empty spec or dangling edge,
  /// same as DataGraphBuilder::Build).
  Result<DataGraph> Build() const;

  /// Extracts the spec of an existing graph (used to pull DTD-generated
  /// instances into the shrinkable representation).
  static GraphSpec FromDataGraph(const DataGraph& g);

  /// Copy with node `victim` removed: incident edges are dropped and ids
  /// above `victim` shift down by one. `victim` must not be the root.
  GraphSpec WithoutNode(uint32_t victim) const;

  /// Copy with edge `index` removed.
  GraphSpec WithoutEdge(size_t index) const;
};

/// \brief A path query in label-name form, independent of any graph's
/// interned label ids — it survives graph mutation during shrinking.
///
/// `steps` are label names ("*" is the wildcard); `descendant[i]` nonzero
/// means step i is reached through the descendant axis (descendant[0] must
/// be 0, as in PathExpression).
struct QuerySpec {
  std::vector<std::string> steps;
  std::vector<uint8_t> descendant;
  bool anchored = false;

  size_t num_steps() const { return steps.size(); }

  /// Renders as PathExpression text: "/a//b", "//a/b", ...
  std::string ToText() const;

  /// Binds the steps to `symbols`: "*" becomes the wildcard, names missing
  /// from the table become kUnknownLabel (matching nothing — exactly what
  /// a query for a shrunk-away label should do). Fails on empty steps or a
  /// nonzero descendant[0].
  Result<PathExpression> Compile(const SymbolTable& symbols) const;

  /// Copy with step `i` removed (a shrinking move). The resulting first
  /// step's descendant flag is cleared. Must keep at least one step.
  QuerySpec WithoutStep(size_t i) const;

  friend bool operator==(const QuerySpec& a, const QuerySpec& b) {
    return a.anchored == b.anchored && a.steps == b.steps &&
           a.descendant == b.descendant;
  }
};

}  // namespace mrx::check

#endif  // MRX_CHECK_GRAPH_SPEC_H_
