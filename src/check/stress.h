#ifndef MRX_CHECK_STRESS_H_
#define MRX_CHECK_STRESS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/trace.h"

namespace mrx::check {

/// Knobs for `mrx check --mode stress`.
struct StressOptions {
  uint64_t seed = 1;
  size_t threads = 4;

  /// Queries issued per reader thread.
  size_t rounds = 400;

  /// Distinct expressions in the workload (drawn by the case generator, so
  /// the same adversarial shapes and query mutations apply).
  size_t num_queries = 32;

  /// Graph size bound for the generated case.
  size_t max_nodes = 96;

  /// Observations before a query becomes a FUP (kept low so refinement and
  /// publication actually race with the readers).
  size_t refine_after = 2;

  /// Thread-pool size for the session's background refiner (>1 exercises
  /// the pooled refinement path under the same reader contention; answers
  /// are identical either way).
  size_t refine_threads = 1;

  /// Optional span tracer threaded into the session (TSan-visible, and
  /// proves the obs path is exercised under contention).
  obs::TraceRecorder* tracer = nullptr;
};

/// Outcome of one stress run. Everything here is checked against the
/// serial ground truth computed before the session starts: answers are
/// exact at every refinement state, so any mismatch is a bug.
struct StressReport {
  std::string shape;  ///< Generator shape of the stressed graph.
  uint64_t queries_run = 0;
  uint64_t mismatches = 0;         ///< Query() answers != ground truth.
  uint64_t epoch_regressions = 0;  ///< index_epoch() observed decreasing.
  uint64_t final_mismatches = 0;   ///< Post-drain Query/Peek disagreements.
  uint64_t publications = 0;
  uint64_t refinements = 0;
  uint64_t stale_put_drops = 0;  ///< Cache inserts rejected by epoch guard.

  bool ok() const {
    return mismatches == 0 && epoch_regressions == 0 &&
           final_mismatches == 0;
  }
};

/// \brief Hammers a ConcurrentSession from `threads` readers while its
/// background refiner splits and republishes the index, cross-checking
/// every answer against DataEvaluator ground truth. A mid-flight
/// DrainRefinements() checkpoint races the drain protocol against the
/// readers. Designed to run under -DMRX_SANITIZE=thread.
StressReport RunStressCheck(const StressOptions& options);

}  // namespace mrx::check

#endif  // MRX_CHECK_STRESS_H_
