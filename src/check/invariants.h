#ifndef MRX_CHECK_INVARIANTS_H_
#define MRX_CHECK_INVARIANTS_H_

#include <cstddef>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "graph/data_graph.h"
#include "index/index_graph.h"
#include "index/m_star_index.h"

namespace mrx::check {

/// The structural audits of the differential checker. Each returns a list
/// of human-readable violation messages (empty = clean), prefixed with a
/// stable audit id so failures can be bucketed and shrunk:
///
///   csr:    DataGraph CSR adjacency well-formedness
///   cover:  index extents partition the data nodes (+ Property 2 edges)
///   bisim:  k-bisimulation soundness of each index node's extent
///   mstar:  M*(k) hierarchy invariants (caps, monotonicity, supernode
///           containment)
///
/// Audits are *independent implementations* — they check against
/// Definition 2 directly (pairwise oracle) rather than re-running the
/// builders they are auditing, so a bug shared by builder and audit cannot
/// hide itself.

/// `csr`: children/parents mirror each other edge-for-edge, label buckets
/// cover exactly the nodes carrying each label in ascending order, and the
/// root is in range.
std::vector<std::string> AuditDataGraphCsr(const DataGraph& g);

/// `cover` + `bisim` for one index graph. `pair_cap` bounds the number of
/// extent members compared against the representative per node (audits on
/// generated cases are exhaustive in practice; the cap keeps pathological
/// extents from going quadratic). `k_cap` bounds the bisimilarity depth
/// actually verified (kInfiniteSimilarity nodes are checked to k_cap).
std::vector<std::string> AuditIndexGraph(const IndexGraph& ig,
                                         size_t pair_cap = 64,
                                         int32_t k_cap = 8);

/// `mstar` + per-component `cover`/`bisim`: CheckProperties, component
/// sizes never shrink with resolution, every node's k is capped by its
/// component number, and each node's extent is contained in its
/// supernode's extent one component up.
std::vector<std::string> AuditMStarIndex(const MStarIndex& index,
                                         size_t pair_cap = 64);

/// \brief Memoized pairwise k-bisimilarity oracle, straight from the
/// paper's Definition 2 (coinductive on cycles). Exponential-ish in the
/// worst case — meant for the checker's small generated graphs.
class PairwiseBisimilarity {
 public:
  explicit PairwiseBisimilarity(const DataGraph& g) : g_(g) {}

  bool Bisimilar(NodeId u, NodeId v, int k);

 private:
  bool MatchParents(NodeId u, NodeId v, int k);

  const DataGraph& g_;
  // Keyed by (min, max, k).
  std::map<std::tuple<NodeId, NodeId, int>, bool> memo_;
};

}  // namespace mrx::check

#endif  // MRX_CHECK_INVARIANTS_H_
