#include "check/invariants.h"

#include <algorithm>
#include <sstream>

#include "index/bisimulation.h"

namespace mrx::check {
namespace {

std::string NodeStr(const DataGraph& g, NodeId n) {
  std::ostringstream out;
  out << n << ":" << g.label_name(n);
  return out.str();
}

}  // namespace

bool PairwiseBisimilarity::Bisimilar(NodeId u, NodeId v, int k) {
  if (g_.label(u) != g_.label(v)) return false;
  if (k <= 0 || u == v) return true;
  auto key = std::make_tuple(std::min(u, v), std::max(u, v), k);
  auto it = memo_.find(key);
  if (it != memo_.end()) return it->second;
  memo_[key] = true;  // Coinductive default so cycles don't diverge.
  const bool ok = MatchParents(u, v, k) && MatchParents(v, u, k);
  memo_[key] = ok;
  return ok;
}

bool PairwiseBisimilarity::MatchParents(NodeId u, NodeId v, int k) {
  for (NodeId up : g_.parents(u)) {
    bool matched = false;
    for (NodeId vp : g_.parents(v)) {
      if (Bisimilar(up, vp, k - 1)) {
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;
}

std::vector<std::string> AuditDataGraphCsr(const DataGraph& g) {
  std::vector<std::string> violations;
  auto fail = [&violations](const std::string& msg) {
    violations.push_back("csr: " + msg);
  };

  if (g.num_nodes() == 0) {
    fail("graph has no nodes");
    return violations;
  }
  if (g.root() >= g.num_nodes()) {
    fail("root out of range");
    return violations;
  }

  // The child and parent CSRs must describe the same edge multiset.
  std::map<std::pair<NodeId, NodeId>, int64_t> balance;
  size_t child_edges = 0;
  size_t reference_edges = 0;
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    auto children = g.children(n);
    auto kinds = g.child_kinds(n);
    if (children.size() != kinds.size()) {
      fail("children/kinds length mismatch at node " + NodeStr(g, n));
      return violations;
    }
    child_edges += children.size();
    for (size_t i = 0; i < children.size(); ++i) {
      if (children[i] >= g.num_nodes()) {
        fail("child target out of range at node " + NodeStr(g, n));
        return violations;
      }
      ++balance[{n, children[i]}];
      if (kinds[i] == EdgeKind::kReference) ++reference_edges;
    }
    for (NodeId p : g.parents(n)) {
      if (p >= g.num_nodes()) {
        fail("parent source out of range at node " + NodeStr(g, n));
        return violations;
      }
      --balance[{p, n}];
    }
  }
  for (const auto& [edge, count] : balance) {
    if (count != 0) {
      std::ostringstream out;
      out << "edge (" << edge.first << " -> " << edge.second
          << ") appears " << (count > 0 ? "only in children" : "only in parents")
          << " CSR (imbalance " << count << ")";
      fail(out.str());
    }
  }
  if (child_edges != g.num_edges()) {
    fail("num_edges() disagrees with the child CSR");
  }
  if (reference_edges != g.num_reference_edges()) {
    fail("num_reference_edges() disagrees with child kinds");
  }

  // Label buckets: each bucket holds exactly the nodes with that label,
  // ascending, and every node is in its label's bucket.
  size_t bucketed = 0;
  for (LabelId l = 0; l < g.symbols().size(); ++l) {
    NodeId prev = kInvalidNode;
    for (NodeId n : g.nodes_with_label(l)) {
      if (n >= g.num_nodes()) {
        fail("label bucket entry out of range");
        return violations;
      }
      if (g.label(n) != l) {
        fail("node " + NodeStr(g, n) + " listed under wrong label bucket");
      }
      if (prev != kInvalidNode && n <= prev) {
        fail("label bucket for label " + std::to_string(l) + " not ascending");
      }
      prev = n;
      ++bucketed;
    }
  }
  if (bucketed != g.num_nodes()) {
    fail("label buckets cover " + std::to_string(bucketed) + " of " +
         std::to_string(g.num_nodes()) + " nodes");
  }
  return violations;
}

std::vector<std::string> AuditIndexGraph(const IndexGraph& ig,
                                         size_t pair_cap, int32_t k_cap) {
  std::vector<std::string> violations;

  // `cover`: partition validity, label uniformity, Property 2 adjacency —
  // IndexGraph's own self-check, surfaced under the audit id.
  if (Status s = ig.CheckConsistency(); !s.ok()) {
    violations.push_back("cover: " + s.ToString());
    return violations;  // Extents unreliable; skip the bisim audit.
  }

  // `bisim`: every extent is k-bisimilar for its recorded k, against the
  // independent pairwise oracle.
  PairwiseBisimilarity oracle(ig.data());
  for (IndexNodeId v = 0; v < ig.capacity(); ++v) {
    if (!ig.alive(v)) continue;
    const IndexGraph::Node& node = ig.node(v);
    const int32_t k = std::min(node.k, k_cap);
    const size_t members = std::min(node.extent.size(), pair_cap + 1);
    // Decode the capped prefix once (extents may be compressed).
    std::vector<NodeId> sampled;
    sampled.reserve(members);
    for (NodeId o : node.extent) {
      if (sampled.size() == members) break;
      sampled.push_back(o);
    }
    for (size_t i = 1; i < members; ++i) {
      if (!oracle.Bisimilar(sampled[0], sampled[i], k)) {
        std::ostringstream out;
        out << "bisim: index node " << v << " (k=" << node.k << ") holds "
            << NodeStr(ig.data(), sampled[0]) << " and "
            << NodeStr(ig.data(), sampled[i]) << " which are not " << k
            << "-bisimilar";
        violations.push_back(out.str());
      }
    }
  }
  return violations;
}

std::vector<std::string> AuditMStarIndex(const MStarIndex& index,
                                         size_t pair_cap) {
  std::vector<std::string> violations;
  auto fail = [&violations](const std::string& msg) {
    violations.push_back("mstar: " + msg);
  };

  if (Status s = index.CheckProperties(); !s.ok()) {
    fail(s.ToString());
  }

  for (size_t ci = 0; ci < index.num_components(); ++ci) {
    const IndexGraph& component = index.component(ci);
    for (std::string& v : AuditIndexGraph(component, pair_cap)) {
      violations.push_back("I" + std::to_string(ci) + " " + std::move(v));
    }

    // Resolution monotonicity: similarity caps and non-shrinking size.
    for (IndexNodeId v = 0; v < component.capacity(); ++v) {
      if (!component.alive(v)) continue;
      if (component.node(v).k > static_cast<int32_t>(ci)) {
        fail("I" + std::to_string(ci) + " node " + std::to_string(v) +
             " exceeds the component similarity cap (k=" +
             std::to_string(component.node(v).k) + ")");
      }
    }
    if (ci == 0) continue;
    const IndexGraph& coarser = index.component(ci - 1);
    if (component.num_nodes() < coarser.num_nodes()) {
      fail("I" + std::to_string(ci) + " has fewer nodes than I" +
           std::to_string(ci - 1) + " (hierarchy must refine)");
    }

    // Supernode containment: each node's extent lies inside its
    // supernode's extent one component up.
    for (IndexNodeId v = 0; v < component.capacity(); ++v) {
      if (!component.alive(v)) continue;
      const IndexNodeId sup = index.supernode(ci, v);
      if (sup == kInvalidIndexNode || sup >= coarser.capacity() ||
          !coarser.alive(sup)) {
        fail("I" + std::to_string(ci) + " node " + std::to_string(v) +
             " has a dead or invalid supernode");
        continue;
      }
      for (NodeId o : component.node(v).extent) {
        if (coarser.index_of(o) != sup) {
          fail("I" + std::to_string(ci) + " node " + std::to_string(v) +
               " holds data node " + std::to_string(o) +
               " outside its supernode's extent");
          break;
        }
      }
    }
  }
  return violations;
}

}  // namespace mrx::check
