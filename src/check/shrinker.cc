#include "check/shrinker.h"

#include <algorithm>

namespace mrx::check {
namespace {

/// Removes nodes [begin, end) except the root, highest id first (so lower
/// ids stay stable while iterating).
GraphSpec WithoutNodeRange(const GraphSpec& spec, uint32_t begin,
                           uint32_t end) {
  GraphSpec out = spec;
  for (uint32_t n = end; n > begin; --n) {
    const uint32_t victim = n - 1;
    if (victim == out.root) continue;
    out = out.WithoutNode(victim);
  }
  return out;
}

}  // namespace

ShrinkOutcome ShrinkCase(GraphSpec graph, QuerySpec query,
                         const ReproPredicate& repro,
                         const ShrinkOptions& options) {
  ShrinkOutcome out;
  out.graph = std::move(graph);
  out.query = std::move(query);

  auto budget_left = [&] { return out.evaluations < options.max_evaluations; };
  auto reproduces = [&](const GraphSpec& g, const QuerySpec& q) {
    ++out.evaluations;
    return repro(g, q);
  };

  bool progress = true;
  while (progress && budget_left()) {
    progress = false;

    // 1. Query steps: drop one at a time; on success retry the same
    // position (the next step shifted into it).
    for (size_t i = 0; out.query.num_steps() > 1 &&
                       i < out.query.num_steps() && budget_left();) {
      QuerySpec candidate = out.query.WithoutStep(i);
      if (reproduces(out.graph, candidate)) {
        out.query = std::move(candidate);
        progress = true;
      } else {
        ++i;
      }
    }

    // 2. Nodes: binary contraction — big windows first, then singles.
    for (size_t chunk = std::max<size_t>(out.graph.num_nodes() / 2, 1);
         chunk >= 1 && budget_left(); chunk /= 2) {
      bool removed = true;
      while (removed && out.graph.num_nodes() > 1 && budget_left()) {
        removed = false;
        const uint32_t n = static_cast<uint32_t>(out.graph.num_nodes());
        for (uint32_t end = n; end > 0 && budget_left();) {
          const uint32_t begin =
              end > chunk ? end - static_cast<uint32_t>(chunk) : 0;
          GraphSpec candidate = WithoutNodeRange(out.graph, begin, end);
          if (candidate.num_nodes() < out.graph.num_nodes() &&
              reproduces(candidate, out.query)) {
            out.graph = std::move(candidate);
            progress = true;
            removed = true;
            break;  // Ids shifted; rescan at this chunk size.
          }
          end = begin;
        }
      }
      if (chunk == 1) break;
    }

    // 3. Edges, one at a time, highest index first (stable positions).
    for (size_t e = out.graph.edges.size(); e > 0 && budget_left(); --e) {
      GraphSpec candidate = out.graph.WithoutEdge(e - 1);
      if (reproduces(candidate, out.query)) {
        out.graph = std::move(candidate);
        progress = true;
      }
    }
  }
  return out;
}

}  // namespace mrx::check
