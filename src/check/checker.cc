#include "check/checker.h"

#include <filesystem>
#include <fstream>
#include <utility>

#include "index/evaluator.h"
#include "util/rng.h"

namespace mrx::check {
namespace {

/// Restores mrx::fault::inject_extent_drop on scope exit, so a faulted
/// check run (or a thrown-together test) cannot leak the flag into later
/// work in the same process.
class FaultGuard {
 public:
  explicit FaultGuard(bool want)
      : previous_(fault::inject_extent_drop.exchange(want)) {}
  ~FaultGuard() { fault::inject_extent_drop.store(previous_); }

 private:
  bool previous_;
};

/// FUPs must be plain floating child-axis label paths over known labels:
/// that is what the refinement operators are defined on (§4), and it keeps
/// shrink replays meaningful after labels vanish from the graph.
bool UsableAsFup(const QuerySpec& spec, const PathExpression& compiled) {
  if (spec.anchored) return false;
  if (compiled.HasDescendantAxis() || compiled.HasWildcard()) return false;
  for (LabelId l : compiled.labels()) {
    if (l == kUnknownLabel) return false;
  }
  return true;
}

std::string WriteRepro(const CheckOptions& options, const ReproCase& repro,
                       std::ostream* log) {
  if (options.out_dir.empty()) return "";
  std::error_code ec;
  std::filesystem::create_directories(options.out_dir, ec);
  if (ec) {
    if (log) *log << "check: cannot create " << options.out_dir << ": "
                  << ec.message() << "\n";
    return "";
  }
  const std::filesystem::path path =
      std::filesystem::path(options.out_dir) /
      ("case-" + std::to_string(repro.seed) + "-" +
       std::to_string(repro.case_index) + ".mrxcase");
  std::ofstream out(path, std::ios::trunc);
  out << SerializeCase(repro);
  out.flush();
  if (!out) {
    if (log) *log << "check: write failed: " << path.string() << "\n";
    return "";
  }
  return path.string();
}

}  // namespace

CheckSummary RunCheck(const CheckOptions& options) {
  FaultGuard fault_guard(options.inject_extent_drop);
  CheckSummary summary;
  std::ostream* log = options.log;

  for (uint64_t i = 0; i < options.num_cases; ++i) {
    if (summary.failures.size() >= options.max_failures) {
      if (log) *log << "check: stopping early after "
                    << summary.failures.size() << " failures\n";
      break;
    }
    Rng rng(CaseSeed(options.seed, i));
    GeneratedCase c = GenerateCase(rng, options.gen);
    Result<DataGraph> built = c.graph.Build();
    if (!built.ok()) continue;  // GenerateCase guarantees buildable specs.
    const DataGraph& g = *built;

    std::vector<PathExpression> queries;
    std::vector<PathExpression> fups;
    std::vector<QuerySpec> fup_specs;
    for (const QuerySpec& qs : c.queries) {
      Result<PathExpression> q = qs.Compile(g.symbols());
      if (!q.ok()) continue;
      if (fups.size() < options.oracle.max_fups && UsableAsFup(qs, *q)) {
        fups.push_back(*q);
        fup_specs.push_back(qs);
      }
      queries.push_back(*std::move(q));
    }

    const CaseResult r = RunDifferentialCase(g, queries, fups,
                                             options.oracle);
    ++summary.cases;
    summary.queries += queries.size();
    summary.checks += r.checks;
    summary.discrepancies += r.discrepancies.size();
    summary.violations += r.violations.size();
    if (r.discrepancies.empty() && r.violations.empty()) continue;

    CheckFailure failure;
    failure.case_index = i;
    failure.repro.seed = options.seed;
    failure.repro.case_index = i;
    failure.repro.fups = fup_specs;

    if (!r.discrepancies.empty()) {
      const Discrepancy& d = r.discrepancies.front();
      failure.index_class = d.index_class;
      failure.note = "shape=" + c.shape + " query=" +
                     c.queries[d.query_index].ToText() + " expected " +
                     std::to_string(d.expected.size()) + " nodes, got " +
                     std::to_string(d.actual.size());

      // Shrink against the exact replay path that failed.
      const std::string index_class = d.index_class;
      const std::vector<QuerySpec> fixed_fups = fup_specs;
      ReproPredicate repro = [&index_class, &fixed_fups](
                                 const GraphSpec& gs, const QuerySpec& q) {
        Result<DataGraph> candidate = gs.Build();
        if (!candidate.ok()) return false;
        Result<PathExpression> cq = q.Compile(candidate->symbols());
        if (!cq.ok()) return false;
        std::vector<PathExpression> cf;
        for (const QuerySpec& f : fixed_fups) {
          Result<PathExpression> e = f.Compile(candidate->symbols());
          if (!e.ok()) return false;
          cf.push_back(*std::move(e));
        }
        Result<std::vector<NodeId>> actual =
            EvaluateClass(*candidate, index_class, *cq, cf);
        if (!actual.ok()) return false;
        return *actual != GroundTruth(*candidate, *cq);
      };
      if (repro(c.graph, c.queries[d.query_index])) {
        ShrinkOutcome shrunk = ShrinkCase(c.graph, c.queries[d.query_index],
                                          repro, options.shrink);
        failure.repro.graph = std::move(shrunk.graph);
        failure.repro.query = std::move(shrunk.query);
        failure.note += " (shrunk in " +
                        std::to_string(shrunk.evaluations) + " evals)";
      } else {
        // Oracle path and replay path disagree about the failure itself —
        // that is a harness bug; keep the unshrunk case as evidence.
        failure.repro.graph = c.graph;
        failure.repro.query = c.queries[d.query_index];
        failure.note += " (not replayable; kept unshrunk)";
      }
      failure.repro.index_class = d.index_class;
    } else {
      failure.index_class = "invariant";
      failure.repro.index_class = "invariant";
      failure.note = "shape=" + c.shape + " " + r.violations.front();
      failure.repro.graph = c.graph;
      failure.repro.query =
          c.queries.empty() ? QuerySpec{{"*"}, {0}, false} : c.queries[0];
    }

    failure.repro.note = failure.note;
    failure.shrunk_nodes = failure.repro.graph.num_nodes();
    failure.file = WriteRepro(options, failure.repro, log);
    if (log) {
      *log << "check: FAIL case " << i << " [" << failure.index_class
           << "] " << failure.note;
      if (!failure.file.empty()) *log << " -> " << failure.file;
      *log << "\n";
    }
    summary.failures.push_back(std::move(failure));
  }
  return summary;
}

Result<ReplayReport> ReplayCase(const ReproCase& repro) {
  MRX_ASSIGN_OR_RETURN(DataGraph g, repro.graph.Build());
  MRX_ASSIGN_OR_RETURN(PathExpression query, repro.query.Compile(g.symbols()));
  std::vector<PathExpression> fups;
  for (const QuerySpec& f : repro.fups) {
    MRX_ASSIGN_OR_RETURN(PathExpression e, f.Compile(g.symbols()));
    fups.push_back(std::move(e));
  }

  ReplayReport report;
  report.expected = GroundTruth(g, query);
  if (repro.index_class.empty() || repro.index_class == "invariant") {
    const CaseResult r =
        RunDifferentialCase(g, {query}, fups, OracleOptions{});
    report.reproduced = !r.discrepancies.empty() || !r.violations.empty();
    if (!r.violations.empty()) {
      report.detail = r.violations.front();
    } else if (!r.discrepancies.empty()) {
      const Discrepancy& d = r.discrepancies.front();
      report.detail = d.index_class;
      report.actual = d.actual;
    }
    return report;
  }
  MRX_ASSIGN_OR_RETURN(report.actual,
                       EvaluateClass(g, repro.index_class, query, fups));
  report.reproduced = report.actual != report.expected;
  return report;
}

}  // namespace mrx::check
