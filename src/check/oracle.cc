#include "check/oracle.h"

#include <algorithm>
#include <charconv>
#include <string_view>
#include <utility>

#include "check/invariants.h"
#include "index/a_k_index.h"
#include "index/d_k_index.h"
#include "index/m_k_index.h"
#include "index/m_star_index.h"
#include "index/ud_kl_index.h"
#include "query/data_evaluator.h"

namespace mrx::check {
namespace {

/// Per-case evaluation context: ground truth is computed once per query
/// and every class comparison records into the shared result.
class CaseChecker {
 public:
  CaseChecker(const DataGraph& g, const std::vector<PathExpression>& queries,
              const OracleOptions& options, CaseResult* result)
      : g_(g), queries_(queries), options_(options), result_(result) {
    DataEvaluator truth(g);
    expected_.reserve(queries.size());
    for (const PathExpression& q : queries) {
      expected_.push_back(truth.Evaluate(q));
    }
  }

  /// Compares `index`'s answer to ground truth for every query.
  template <typename QueryFn>
  void CheckAll(const std::string& index_class, QueryFn&& answer) {
    for (size_t i = 0; i < queries_.size(); ++i) {
      ++result_->checks;
      std::vector<NodeId> actual = answer(queries_[i]);
      if (actual != expected_[i]) {
        result_->discrepancies.push_back(
            {index_class, i, expected_[i], std::move(actual)});
      }
    }
  }

  void Audit(const std::string& where, std::vector<std::string> violations) {
    for (std::string& v : violations) {
      result_->violations.push_back(where + ": " + std::move(v));
    }
  }

  bool audit() const { return options_.audit_invariants; }
  size_t pair_cap() const { return options_.audit_pair_cap; }

 private:
  const DataGraph& g_;
  const std::vector<PathExpression>& queries_;
  const OracleOptions& options_;
  CaseResult* result_;
  std::vector<std::vector<NodeId>> expected_;
};

std::string Snapshot(const std::string& base, size_t s) {
  return base + "@" + std::to_string(s);
}

QueryResult MStarAnswer(const MStarIndex& index, const std::string& strategy,
                        const PathExpression& query,
                        DataEvaluator* validator) {
  if (strategy == "naive") return index.QueryNaive(query, validator);
  if (strategy == "bottomup") return index.QueryBottomUp(query, validator);
  if (strategy == "hybrid") return index.QueryHybrid(query, validator);
  return index.QueryTopDown(query, validator);
}

constexpr const char* kMStarStrategies[] = {"naive", "topdown", "bottomup",
                                            "hybrid"};

}  // namespace

std::vector<NodeId> GroundTruth(const DataGraph& g,
                                const PathExpression& query) {
  DataEvaluator truth(g);
  return truth.Evaluate(query);
}

CaseResult RunDifferentialCase(const DataGraph& g,
                               const std::vector<PathExpression>& queries,
                               const std::vector<PathExpression>& fups,
                               const OracleOptions& options) {
  CaseResult result;
  CaseChecker checker(g, queries, options, &result);

  if (checker.audit()) {
    checker.Audit("data-graph", AuditDataGraphCsr(g));
  }

  if (options.check_ak) {
    for (int k : options.ak_ks) {
      AkIndex index(g, k);
      checker.CheckAll("A(" + std::to_string(k) + ")",
                       [&](const PathExpression& q) {
                         return index.Query(q).answer;
                       });
      if (checker.audit()) {
        checker.Audit("A(" + std::to_string(k) + ")",
                      AuditIndexGraph(index.graph(), checker.pair_cap()));
      }
    }
  }

  if (options.check_one_index) {
    OneIndex index(g);
    checker.CheckAll("1-index", [&](const PathExpression& q) {
      return index.Query(q).answer;
    });
    if (checker.audit()) {
      checker.Audit("1-index",
                    AuditIndexGraph(index.graph(), checker.pair_cap()));
    }
  }

  if (options.check_udkl) {
    UdklIndex index(g, options.ud_k, options.ud_l);
    const std::string name = "UD(" + std::to_string(options.ud_k) + "," +
                             std::to_string(options.ud_l) + ")";
    checker.CheckAll(name, [&](const PathExpression& q) {
      return index.Query(q).answer;
    });
    if (checker.audit()) {
      checker.Audit(name, AuditIndexGraph(index.graph(), checker.pair_cap()));
    }
  }

  if (options.check_dk) {
    {
      DkIndex index = DkIndex::Construct(g, fups);
      checker.CheckAll("D(k)-construct", [&](const PathExpression& q) {
        return index.Query(q).answer;
      });
      if (checker.audit()) {
        checker.Audit("D(k)-construct",
                      AuditIndexGraph(index.graph(), checker.pair_cap()));
      }
    }
    {
      DkIndex index(g);
      checker.CheckAll(Snapshot("D(k)-promote", 0),
                       [&](const PathExpression& q) {
                         return index.Query(q).answer;
                       });
      for (size_t s = 1; s <= fups.size(); ++s) {
        index.Promote(fups[s - 1]);
        checker.CheckAll(Snapshot("D(k)-promote", s),
                         [&](const PathExpression& q) {
                           return index.Query(q).answer;
                         });
        if (checker.audit()) {
          checker.Audit(Snapshot("D(k)-promote", s),
                        AuditIndexGraph(index.graph(), checker.pair_cap()));
        }
      }
    }
  }

  if (options.check_mk) {
    MkIndex index(g);
    checker.CheckAll(Snapshot("M(k)", 0), [&](const PathExpression& q) {
      return index.Query(q).answer;
    });
    for (size_t s = 1; s <= fups.size(); ++s) {
      index.Refine(fups[s - 1]);
      checker.CheckAll(Snapshot("M(k)", s), [&](const PathExpression& q) {
        return index.Query(q).answer;
      });
      if (checker.audit()) {
        checker.Audit(Snapshot("M(k)", s),
                      AuditIndexGraph(index.graph(), checker.pair_cap()));
      }
    }
  }

  if (options.check_mstar) {
    MStarIndex index(g);
    DataEvaluator validator(g);
    for (size_t s = 0; s <= fups.size(); ++s) {
      if (s > 0) index.Refine(fups[s - 1]);
      for (const char* strategy : kMStarStrategies) {
        checker.CheckAll(Snapshot(std::string("M*:") + strategy, s),
                         [&](const PathExpression& q) {
                           return MStarAnswer(index, strategy, q, &validator)
                               .answer;
                         });
      }
      if (checker.audit()) {
        checker.Audit(Snapshot("M*", s),
                      AuditMStarIndex(index, checker.pair_cap()));
      }
    }
  }

  return result;
}

Result<std::vector<NodeId>> EvaluateClass(
    const DataGraph& g, const std::string& index_class,
    const PathExpression& query, const std::vector<PathExpression>& fups) {
  auto parse_int = [](std::string_view text) -> int {
    int value = 0;
    std::from_chars(text.data(), text.data() + text.size(), value);
    return value;
  };
  // Split a trailing "@<s>" snapshot marker.
  std::string base = index_class;
  size_t snapshot = fups.size();
  if (size_t at = base.rfind('@'); at != std::string::npos) {
    snapshot = static_cast<size_t>(parse_int(base.substr(at + 1)));
    base = base.substr(0, at);
  }
  std::vector<PathExpression> applied(
      fups.begin(),
      fups.begin() +
          static_cast<ptrdiff_t>(std::min(snapshot, fups.size())));

  if (base.size() >= 4 && base.compare(0, 2, "A(") == 0) {
    AkIndex index(g, parse_int(base.substr(2)));
    return index.Query(query).answer;
  }
  if (base == "1-index") {
    OneIndex index(g);
    return index.Query(query).answer;
  }
  if (base == "D(k)-construct") {
    DkIndex index = DkIndex::Construct(g, applied);
    return index.Query(query).answer;
  }
  if (base == "D(k)-promote") {
    DkIndex index(g);
    for (const PathExpression& fup : applied) index.Promote(fup);
    return index.Query(query).answer;
  }
  if (base.compare(0, 3, "UD(") == 0) {
    const size_t comma = base.find(',');
    if (comma == std::string::npos) {
      return Status::InvalidArgument("bad UD class: " + index_class);
    }
    UdklIndex index(g, parse_int(base.substr(3)),
                    parse_int(base.substr(comma + 1)));
    return index.Query(query).answer;
  }
  if (base == "M(k)") {
    MkIndex index(g);
    for (const PathExpression& fup : applied) index.Refine(fup);
    return index.Query(query).answer;
  }
  if (base.compare(0, 3, "M*:") == 0) {
    MStarIndex index(g);
    for (const PathExpression& fup : applied) index.Refine(fup);
    DataEvaluator validator(g);
    return MStarAnswer(index, base.substr(3), query, &validator).answer;
  }
  return Status::InvalidArgument("unknown index class: " + index_class);
}

}  // namespace mrx::check
