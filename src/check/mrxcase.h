#ifndef MRX_CHECK_MRXCASE_H_
#define MRX_CHECK_MRXCASE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "check/graph_spec.h"
#include "util/result.h"

namespace mrx::check {

/// \brief A replayable repro of one checker failure: the (shrunk) graph,
/// the query that disagreed, the index class that produced the wrong
/// answer, and the FUP sequence that put the adaptive indexes into the
/// failing state. Serializes to the line-based `.mrxcase` text format
/// (docs/TESTING.md) so a failure found by CI can be replayed locally with
/// `mrx check --replay file.mrxcase`.
struct ReproCase {
  uint64_t seed = 0;        ///< Checker seed that produced the case.
  uint64_t case_index = 0;  ///< Case number within that run.
  /// Index class identifier as reported by the oracle, e.g. "A(2)",
  /// "M*:topdown@1", "invariant" for audit failures.
  std::string index_class;
  std::string note;  ///< One-line human summary of the failure.
  GraphSpec graph;
  QuerySpec query;
  /// FUPs applied (in order) before evaluating `query`; only the first
  /// `@s` of them for snapshot classes.
  std::vector<QuerySpec> fups;
};

/// Renders `repro` in the .mrxcase text format.
std::string SerializeCase(const ReproCase& repro);

/// Parses the .mrxcase text format; tolerant of blank lines and `#`
/// comments.
Result<ReproCase> ParseCase(std::string_view text);

}  // namespace mrx::check

#endif  // MRX_CHECK_MRXCASE_H_
