#include "check/case_gen.h"

#include <algorithm>
#include <string>
#include <utility>

#include "datagen/dtd.h"
#include "datagen/dtd_generator.h"
#include "xml/graph_builder.h"

namespace mrx::check {
namespace {

// A deliberately nasty little schema: recursive content (`val` under
// `val`), reused element names across contexts, and ID/IDREF links so
// instances come out of the parser with reference edges (and cycles).
constexpr const char* kCheckDtd = R"(
<!ELEMENT db (rec+)>
<!ELEMENT rec (name, val*, link*)>
<!ATTLIST rec id ID #REQUIRED>
<!ELEMENT name (#PCDATA)>
<!ELEMENT val (name?, val*, link?)>
<!ELEMENT link EMPTY>
<!ATTLIST link ref IDREF #REQUIRED>
)";

std::string SmallLabel(Rng& rng, size_t alphabet) {
  return std::string(1, static_cast<char>('a' + rng.Below(alphabet)));
}

GraphSpec RandomTreeShape(Rng& rng, size_t max_nodes) {
  GraphSpec spec;
  const size_t n = 2 + rng.Below(max_nodes - 1);
  const size_t alphabet = 1 + rng.Below(6);
  for (size_t i = 0; i < n; ++i) spec.AddNode(SmallLabel(rng, alphabet));
  for (uint32_t v = 1; v < n; ++v) {
    spec.AddEdge(static_cast<uint32_t>(rng.Below(v)), v);
  }
  const size_t extra = rng.Below(n / 2 + 1);
  for (size_t e = 0; e < extra; ++e) {
    spec.AddEdge(static_cast<uint32_t>(rng.Below(n)),
                 static_cast<uint32_t>(rng.Below(n)), rng.Chance(0.5));
  }
  return spec;
}

GraphSpec DeepChainShape(Rng& rng, size_t max_nodes) {
  GraphSpec spec;
  const size_t depth = std::min(max_nodes - 1, 6 + rng.Below(10));
  const size_t alphabet = 1 + rng.Below(3);
  spec.AddNode("r");
  uint32_t tip = 0;
  for (size_t d = 0; d < depth; ++d) {
    uint32_t next = spec.AddNode(SmallLabel(rng, alphabet));
    spec.AddEdge(tip, next);
    tip = next;
  }
  // A few side branches reusing the chain's labels, so prefixes of the
  // chain stop being structurally unique.
  const size_t branches = rng.Below(4);
  for (size_t b = 0; b < branches && spec.num_nodes() < max_nodes; ++b) {
    uint32_t at = static_cast<uint32_t>(rng.Below(spec.num_nodes()));
    uint32_t leaf = spec.AddNode(SmallLabel(rng, alphabet));
    spec.AddEdge(at, leaf);
  }
  if (rng.Chance(0.4)) spec.AddEdge(tip, 0, /*reference=*/true);
  return spec;
}

GraphSpec DiamondShape(Rng& rng, size_t max_nodes) {
  GraphSpec spec;
  spec.AddNode("r");
  std::vector<uint32_t> prev = {0};
  const size_t num_layers = 3 + rng.Below(4);
  for (size_t layer = 0; layer < num_layers; ++layer) {
    const size_t width = 1 + rng.Below(4);
    const bool uniform = rng.Chance(0.5);
    std::vector<uint32_t> current;
    for (size_t i = 0; i < width && spec.num_nodes() < max_nodes; ++i) {
      const std::string label =
          uniform ? "L" + std::to_string(layer)
                  : std::string(1, static_cast<char>('a' + (i & 1)));
      current.push_back(spec.AddNode(label));
    }
    if (current.empty()) break;
    // Every new node gets 1..|prev| parents: the diamond convergence that
    // makes bisimulation blocks merge and split nontrivially.
    for (uint32_t v : current) {
      const size_t num_parents = 1 + rng.Below(prev.size());
      for (size_t p = 0; p < num_parents; ++p) {
        spec.AddEdge(prev[rng.Below(prev.size())], v);
      }
    }
    prev = std::move(current);
  }
  return spec;
}

GraphSpec RefCycleShape(Rng& rng, size_t max_nodes) {
  GraphSpec spec;
  const size_t n = 3 + rng.Below(std::max<size_t>(max_nodes - 2, 1));
  const size_t alphabet = 1 + rng.Below(4);
  std::vector<uint32_t> parent(n, 0);
  spec.AddNode("r");
  for (uint32_t v = 1; v < n; ++v) {
    spec.AddNode(SmallLabel(rng, alphabet));
    parent[v] = static_cast<uint32_t>(rng.Below(v));
    spec.AddEdge(parent[v], v);
  }
  // Reference back-edges to ancestors close cycles of varying length.
  const size_t cycles = 1 + rng.Below(3);
  for (size_t c = 0; c < cycles; ++c) {
    uint32_t v = static_cast<uint32_t>(rng.Below(n));
    uint32_t ancestor = v;
    const size_t hops = 1 + rng.Below(4);
    for (size_t h = 0; h < hops && ancestor != 0; ++h) {
      ancestor = parent[ancestor];
    }
    spec.AddEdge(v, ancestor, /*reference=*/true);
  }
  if (rng.Chance(0.3)) {
    uint32_t v = static_cast<uint32_t>(rng.Below(n));
    spec.AddEdge(v, v, /*reference=*/true);  // IDREF self-loop.
  }
  return spec;
}

GraphSpec SparseFanoutShape(Rng& rng, size_t max_nodes) {
  GraphSpec spec;
  spec.AddNode("r");
  const size_t fanout = 2 + rng.Below(std::max<size_t>(max_nodes / 2, 2));
  for (size_t i = 0; i < fanout && spec.num_nodes() < max_nodes; ++i) {
    uint32_t child = spec.AddNode(SmallLabel(rng, 2));
    spec.AddEdge(0, child);
    if (rng.Chance(0.4) && spec.num_nodes() < max_nodes) {
      uint32_t grandchild = spec.AddNode("g");
      spec.AddEdge(child, grandchild);
    }
  }
  return spec;
}

GraphSpec TinyShape(Rng& rng) {
  GraphSpec spec;
  spec.AddNode("r");
  switch (rng.Below(3)) {
    case 0:  // Root-only graph.
      break;
    case 1:  // Root with one child.
      spec.AddNode("a");
      spec.AddEdge(0, 1);
      break;
    default:  // Root with an IDREF self-loop.
      spec.AddEdge(0, 0, /*reference=*/true);
      break;
  }
  return spec;
}

GraphSpec DtdShape(Rng& rng, size_t max_nodes, std::string* shape) {
  auto dtd = datagen::Dtd::Parse(kCheckDtd);
  if (!dtd.ok()) return TinyShape(rng);  // Unreachable; the DTD is static.
  datagen::DtdGeneratorOptions options;
  options.seed = rng.Next();
  options.max_elements = max_nodes * 2;
  options.star_mean = 1.5;
  options.max_depth = 12;
  auto doc = datagen::GenerateDocument(*dtd, options);
  if (!doc.ok()) return TinyShape(rng);
  auto graph = xml::BuildGraphFromXml(*doc);
  if (!graph.ok()) return TinyShape(rng);
  *shape = "dtd";
  return GraphSpec::FromDataGraph(*graph);
}

/// A random downward label walk through the built graph.
QuerySpec RandomWalkQuery(Rng& rng, const DataGraph& g) {
  QuerySpec q;
  q.anchored = rng.Chance(0.2);
  NodeId at = q.anchored
                  ? g.root()
                  : static_cast<NodeId>(rng.Below(g.num_nodes()));
  q.steps.push_back(g.label_name(at));
  q.descendant.push_back(0);
  // Lengths biased short: the refinement boundaries for the oracle's k
  // values (0..3) live at 1..4 edges.
  const size_t target_len = 1 + rng.Below(rng.Chance(0.8) ? 4 : 6);
  for (size_t i = 0; i < target_len; ++i) {
    auto children = g.children(at);
    if (children.empty()) break;
    at = children[rng.Below(children.size())];
    q.steps.push_back(g.label_name(at));
    q.descendant.push_back(0);
  }
  return q;
}

void MutateQuery(Rng& rng, const DataGraph& g, QuerySpec* q) {
  if (rng.Chance(0.15)) {
    q->steps[rng.Below(q->steps.size())] = "*";
  }
  if (q->num_steps() > 1 && rng.Chance(0.15)) {
    q->descendant[1 + rng.Below(q->num_steps() - 1)] = 1;
  }
  if (rng.Chance(0.1)) {
    q->steps[rng.Below(q->steps.size())] = "zzq";  // Matches nothing.
  }
  if (rng.Chance(0.1)) {
    // Teleport one step to a random label of the graph: likely breaks the
    // walk, probing (near-)empty target sets.
    const LabelId l = static_cast<LabelId>(rng.Below(g.symbols().size()));
    q->steps[rng.Below(q->steps.size())] = g.symbols().Name(l);
  }
}

}  // namespace

GeneratedCase GenerateCase(Rng& rng, const CaseGenOptions& options) {
  GeneratedCase out;
  const size_t max_nodes = std::max<size_t>(options.max_nodes, 4);
  const uint64_t roll = rng.Below(100);
  if (roll < 5) {
    out.shape = "tiny";
    out.graph = TinyShape(rng);
  } else if (roll < 17 && options.allow_dtd) {
    out.shape = "dtd-fallback";
    out.graph = DtdShape(rng, max_nodes, &out.shape);
  } else if (roll < 32) {
    out.shape = "deep-chain";
    out.graph = DeepChainShape(rng, max_nodes);
  } else if (roll < 47) {
    out.shape = "diamond";
    out.graph = DiamondShape(rng, max_nodes);
  } else if (roll < 65) {
    out.shape = "ref-cycle";
    out.graph = RefCycleShape(rng, max_nodes);
  } else if (roll < 75) {
    out.shape = "sparse-fanout";
    out.graph = SparseFanoutShape(rng, max_nodes);
  } else {
    out.shape = "random-tree";
    out.graph = RandomTreeShape(rng, max_nodes);
  }

  auto built = out.graph.Build();
  if (!built.ok()) {
    // Generator bug guard: fall back to a trivially valid case rather than
    // crashing the run (the checker still audits whatever we return).
    out.shape = "tiny";
    out.graph = TinyShape(rng);
    built = out.graph.Build();
  }
  const DataGraph& g = *built;

  out.queries.reserve(options.num_queries);
  for (size_t i = 0; i < options.num_queries; ++i) {
    QuerySpec q = RandomWalkQuery(rng, g);
    MutateQuery(rng, g, &q);
    out.queries.push_back(std::move(q));
  }
  return out;
}

}  // namespace mrx::check
