#include "check/graph_spec.h"

#include <utility>

namespace mrx::check {

Result<DataGraph> GraphSpec::Build() const {
  DataGraphBuilder builder;
  for (const std::string& label : labels) builder.AddNode(label);
  for (const Edge& e : edges) {
    builder.AddEdge(e.from, e.to,
                    e.reference ? EdgeKind::kReference : EdgeKind::kRegular);
  }
  builder.SetRoot(root);
  return std::move(builder).Build();
}

GraphSpec GraphSpec::FromDataGraph(const DataGraph& g) {
  GraphSpec spec;
  spec.labels.reserve(g.num_nodes());
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    spec.labels.push_back(g.label_name(n));
  }
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    auto children = g.children(n);
    auto kinds = g.child_kinds(n);
    for (size_t i = 0; i < children.size(); ++i) {
      spec.edges.push_back(
          {n, children[i], kinds[i] == EdgeKind::kReference});
    }
  }
  spec.root = g.root();
  return spec;
}

GraphSpec GraphSpec::WithoutNode(uint32_t victim) const {
  GraphSpec out;
  out.labels.reserve(labels.size() - 1);
  for (uint32_t n = 0; n < labels.size(); ++n) {
    if (n != victim) out.labels.push_back(labels[n]);
  }
  auto remap = [victim](uint32_t n) { return n > victim ? n - 1 : n; };
  for (const Edge& e : edges) {
    if (e.from == victim || e.to == victim) continue;
    out.edges.push_back({remap(e.from), remap(e.to), e.reference});
  }
  out.root = remap(root);
  return out;
}

GraphSpec GraphSpec::WithoutEdge(size_t index) const {
  GraphSpec out = *this;
  out.edges.erase(out.edges.begin() + static_cast<ptrdiff_t>(index));
  return out;
}

std::string QuerySpec::ToText() const {
  std::string text = anchored ? "/" : "//";
  for (size_t i = 0; i < steps.size(); ++i) {
    if (i > 0) text += (i < descendant.size() && descendant[i]) ? "//" : "/";
    text += steps[i];
  }
  return text;
}

Result<PathExpression> QuerySpec::Compile(const SymbolTable& symbols) const {
  if (steps.empty()) {
    return Status::InvalidArgument("query spec has no steps");
  }
  if (!descendant.empty() && descendant[0] != 0) {
    return Status::InvalidArgument("descendant flag on step 0");
  }
  std::vector<LabelId> labels;
  labels.reserve(steps.size());
  for (const std::string& step : steps) {
    if (step == "*") {
      labels.push_back(kWildcardLabel);
    } else if (auto id = symbols.Lookup(step)) {
      labels.push_back(*id);
    } else {
      labels.push_back(kUnknownLabel);
    }
  }
  std::vector<uint8_t> desc = descendant;
  desc.resize(steps.size(), 0);
  return PathExpression(std::move(labels), std::move(desc), anchored);
}

QuerySpec QuerySpec::WithoutStep(size_t i) const {
  QuerySpec out = *this;
  out.descendant.resize(out.steps.size(), 0);
  out.steps.erase(out.steps.begin() + static_cast<ptrdiff_t>(i));
  out.descendant.erase(out.descendant.begin() + static_cast<ptrdiff_t>(i));
  if (!out.descendant.empty()) out.descendant[0] = 0;
  return out;
}

}  // namespace mrx::check
