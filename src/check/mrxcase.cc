#include "check/mrxcase.h"

#include <charconv>
#include <sstream>

#include "util/string_util.h"

namespace mrx::check {
namespace {

void AppendQuery(std::ostringstream& out, std::string_view keyword,
                 const QuerySpec& q) {
  out << keyword << " anchored " << (q.anchored ? 1 : 0) << "\n";
  for (size_t i = 0; i < q.steps.size(); ++i) {
    const int desc = i < q.descendant.size() && q.descendant[i] ? 1 : 0;
    out << "step " << q.steps[i] << " " << desc << "\n";
  }
}

Result<uint64_t> ParseUint(std::string_view token, std::string_view what) {
  uint64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return Status::ParseError("mrxcase: bad " + std::string(what) + ": " +
                              std::string(token));
  }
  return value;
}

}  // namespace

std::string SerializeCase(const ReproCase& repro) {
  std::ostringstream out;
  out << "mrxcase 1\n";
  out << "seed " << repro.seed << "\n";
  out << "case " << repro.case_index << "\n";
  if (!repro.index_class.empty()) out << "class " << repro.index_class << "\n";
  if (!repro.note.empty()) out << "note " << repro.note << "\n";
  out << "root " << repro.graph.root << "\n";
  for (const std::string& label : repro.graph.labels) {
    out << "n " << label << "\n";
  }
  for (const GraphSpec::Edge& e : repro.graph.edges) {
    out << "e " << e.from << " " << e.to << (e.reference ? " ref" : " reg")
        << "\n";
  }
  for (const QuerySpec& fup : repro.fups) AppendQuery(out, "fup", fup);
  AppendQuery(out, "query", repro.query);
  return out.str();
}

Result<ReproCase> ParseCase(std::string_view text) {
  ReproCase repro;
  QuerySpec* open_query = nullptr;  // Last "query"/"fup" line, receiving steps.
  bool saw_header = false;
  bool saw_query = false;

  for (std::string_view raw : Split(text, '\n')) {
    std::string_view line = StripWhitespace(raw);
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string_view> tokens = SplitSkipEmpty(line, ' ');
    const std::string_view kind = tokens[0];

    if (kind == "mrxcase") {
      saw_header = true;
      continue;
    }
    if (!saw_header) return Status::ParseError("mrxcase: missing header");

    if (kind == "seed" && tokens.size() == 2) {
      MRX_ASSIGN_OR_RETURN(repro.seed, ParseUint(tokens[1], "seed"));
    } else if (kind == "case" && tokens.size() == 2) {
      MRX_ASSIGN_OR_RETURN(repro.case_index, ParseUint(tokens[1], "case"));
    } else if (kind == "class") {
      repro.index_class = std::string(line.substr(kind.size() + 1));
    } else if (kind == "note") {
      repro.note = std::string(line.substr(kind.size() + 1));
    } else if (kind == "root" && tokens.size() == 2) {
      MRX_ASSIGN_OR_RETURN(uint64_t root, ParseUint(tokens[1], "root"));
      repro.graph.root = static_cast<uint32_t>(root);
    } else if (kind == "n" && tokens.size() == 2) {
      repro.graph.labels.emplace_back(tokens[1]);
    } else if (kind == "e" && tokens.size() == 4) {
      MRX_ASSIGN_OR_RETURN(uint64_t from, ParseUint(tokens[1], "edge from"));
      MRX_ASSIGN_OR_RETURN(uint64_t to, ParseUint(tokens[2], "edge to"));
      if (tokens[3] != "ref" && tokens[3] != "reg") {
        return Status::ParseError("mrxcase: bad edge kind: " +
                                  std::string(tokens[3]));
      }
      repro.graph.edges.push_back({static_cast<uint32_t>(from),
                                   static_cast<uint32_t>(to),
                                   tokens[3] == "ref"});
    } else if ((kind == "query" || kind == "fup") && tokens.size() == 3 &&
               tokens[1] == "anchored") {
      MRX_ASSIGN_OR_RETURN(uint64_t anchored,
                           ParseUint(tokens[2], "anchored"));
      if (kind == "query") {
        open_query = &repro.query;
        saw_query = true;
      } else {
        repro.fups.emplace_back();
        open_query = &repro.fups.back();
      }
      open_query->anchored = anchored != 0;
    } else if (kind == "step" && tokens.size() == 3) {
      if (open_query == nullptr) {
        return Status::ParseError("mrxcase: step before query/fup");
      }
      MRX_ASSIGN_OR_RETURN(uint64_t desc, ParseUint(tokens[2], "descendant"));
      open_query->steps.emplace_back(tokens[1]);
      open_query->descendant.push_back(desc != 0 ? 1 : 0);
    } else {
      return Status::ParseError("mrxcase: unrecognized line: " +
                                std::string(line));
    }
  }

  if (repro.graph.labels.empty()) {
    return Status::ParseError("mrxcase: no nodes");
  }
  if (!saw_query || repro.query.steps.empty()) {
    return Status::ParseError("mrxcase: no query");
  }
  return repro;
}

}  // namespace mrx::check
