#ifndef MRX_CHECK_ORACLE_H_
#define MRX_CHECK_ORACLE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "graph/data_graph.h"
#include "query/path_expression.h"
#include "util/result.h"

namespace mrx::check {

/// Which index classes the oracle cross-checks, and how hard.
struct OracleOptions {
  /// k values for the A(k)-index sweep.
  std::vector<int> ak_ks = {0, 1, 2, 3};

  /// Parameters for the UD(k,l)-index.
  int ud_k = 1;
  int ud_l = 1;

  /// How many FUPs (drawn from the case's queries) drive the adaptive
  /// indexes; each applied FUP is a snapshot at which every query is
  /// re-checked.
  size_t max_fups = 2;

  bool check_ak = true;
  bool check_one_index = true;
  bool check_dk = true;
  bool check_udkl = true;
  bool check_mk = true;
  bool check_mstar = true;

  /// Run the structural invariant audits (src/check/invariants.h) on every
  /// index the oracle builds.
  bool audit_invariants = true;
  size_t audit_pair_cap = 64;
};

/// One extent mismatch: an index class answered `query_index` differently
/// from the data-graph ground truth.
struct Discrepancy {
  std::string index_class;  ///< e.g. "A(2)", "M*:topdown@1" — see oracle.cc.
  size_t query_index = 0;
  std::vector<NodeId> expected;
  std::vector<NodeId> actual;
};

struct CaseResult {
  std::vector<Discrepancy> discrepancies;
  std::vector<std::string> violations;  ///< Invariant audit messages.
  size_t checks = 0;  ///< (class, query) comparisons performed.
};

/// \brief Cross-checks every enabled index class against query::DataEvaluator
/// ground truth on `g`, over all `queries`, at every FUP snapshot.
///
/// Class identifiers (stable; EvaluateClass replays them):
///   A(<k>)                 the A(k)-index
///   1-index                the full bisimulation quotient
///   D(k)-construct         D(k) built for the FUP set
///   D(k)-promote@<s>       D(k)-promote after the first s FUPs
///   UD(<k>,<l>)            the UD(k,l)-index
///   M(k)@<s>               M(k) after the first s FUPs
///   M*:<strategy>@<s>      M*(k) via naive|topdown|bottomup|hybrid after
///                          the first s FUPs (each Refine is a snapshot of
///                          the hierarchy mid-refinement-sequence)
///
/// `fups` must be plain floating child-axis expressions (the checker
/// filters them); they are applied in order.
CaseResult RunDifferentialCase(const DataGraph& g,
                               const std::vector<PathExpression>& queries,
                               const std::vector<PathExpression>& fups,
                               const OracleOptions& options);

/// \brief Replays a single class identifier: rebuilds the named index over
/// `g` (applying the first `s` of `fups` for snapshot classes; `@<s>`
/// greater than fups.size() applies them all) and evaluates `query`.
/// This is what the shrinker's reproduction predicate and `--replay` use,
/// so a shrunk .mrxcase exercises the exact code path that failed.
Result<std::vector<NodeId>> EvaluateClass(const DataGraph& g,
                                          const std::string& index_class,
                                          const PathExpression& query,
                                          const std::vector<PathExpression>& fups);

/// Ground truth: the target set of `query` on the data graph.
std::vector<NodeId> GroundTruth(const DataGraph& g,
                                const PathExpression& query);

}  // namespace mrx::check

#endif  // MRX_CHECK_ORACLE_H_
