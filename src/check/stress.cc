#include "check/stress.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>
#include <vector>

#include "check/case_gen.h"
#include "query/data_evaluator.h"
#include "server/concurrent_session.h"
#include "util/rng.h"

namespace mrx::check {

StressReport RunStressCheck(const StressOptions& options) {
  StressReport report;

  Rng rng(options.seed);
  CaseGenOptions gen;
  gen.max_nodes = std::max<size_t>(options.max_nodes, 8);
  gen.num_queries = std::max<size_t>(options.num_queries, 1);
  GeneratedCase c = GenerateCase(rng, gen);
  report.shape = c.shape;
  Result<DataGraph> built = c.graph.Build();
  if (!built.ok()) {
    ++report.mismatches;  // Generator contract broken; surface as failure.
    return report;
  }
  const DataGraph& g = *built;

  std::vector<PathExpression> queries;
  for (const QuerySpec& qs : c.queries) {
    Result<PathExpression> q = qs.Compile(g.symbols());
    if (q.ok()) queries.push_back(*std::move(q));
  }
  if (queries.empty()) {
    ++report.mismatches;
    return report;
  }

  // Serial ground truth, fixed before any concurrency starts: the data
  // graph is immutable, so these stay correct across every index epoch.
  DataEvaluator truth(g);
  std::vector<std::vector<NodeId>> expected;
  expected.reserve(queries.size());
  for (const PathExpression& q : queries) {
    expected.push_back(truth.Evaluate(q));
  }

  server::ConcurrentSessionOptions so;
  so.refine_after = options.refine_after;
  so.refine_threads = options.refine_threads;
  so.tracer = options.tracer;
  server::ConcurrentSession session(g, so);

  std::atomic<uint64_t> queries_run{0};
  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> epoch_regressions{0};

  auto reader = [&](size_t t) {
    Rng trng(options.seed + 0x9E3779B97F4A7C15ull * (t + 1));
    uint64_t last_epoch = 0;
    for (size_t r = 0; r < options.rounds; ++r) {
      const size_t qi = trng.Below(queries.size());
      const QueryResult qr = session.Query(queries[qi]);
      queries_run.fetch_add(1, std::memory_order_relaxed);
      if (qr.answer != expected[qi]) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
      const uint64_t epoch = session.index_epoch();
      if (epoch < last_epoch) {
        epoch_regressions.fetch_add(1, std::memory_order_relaxed);
      }
      last_epoch = epoch;
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(options.threads);
  for (size_t t = 0; t < options.threads; ++t) pool.emplace_back(reader, t);

  // Mid-flight checkpoint: the drain protocol must coexist with active
  // readers (it blocks only on the refiner, never on them).
  session.DrainRefinements();

  for (std::thread& t : pool) t.join();
  session.DrainRefinements();

  // Post-drain sweep: the settled index must agree with ground truth on
  // both the observing and the non-observing read path.
  for (size_t i = 0; i < queries.size(); ++i) {
    if (session.Query(queries[i]).answer != expected[i]) {
      ++report.final_mismatches;
    }
    if (session.Peek(queries[i]).answer != expected[i]) {
      ++report.final_mismatches;
    }
  }

  report.queries_run = queries_run.load();
  report.mismatches = mismatches.load();
  report.epoch_regressions = epoch_regressions.load();
  report.publications = session.index_publications();
  report.refinements = session.refinements_applied();
  for (const auto& shard : session.cache_shard_stats()) {
    report.stale_put_drops += shard.stale_drops;
  }
  return report;
}

}  // namespace mrx::check
