#ifndef MRX_CHECK_CASE_GEN_H_
#define MRX_CHECK_CASE_GEN_H_

#include <cstddef>
#include <string>
#include <vector>

#include "check/graph_spec.h"
#include "util/rng.h"

namespace mrx::check {

/// Knobs for one generated case.
struct CaseGenOptions {
  /// Upper bound on generated graph size (DTD-driven cases may exceed it
  /// slightly; the generator's shapes respect it).
  size_t max_nodes = 48;

  /// Queries generated per case.
  size_t num_queries = 6;

  /// Allow DTD-driven instances (slower per case; exercised on a fraction
  /// of cases when enabled).
  bool allow_dtd = true;
};

/// One generated test case: a graph plus a query workload biased toward
/// index-refinement boundaries.
struct GeneratedCase {
  GraphSpec graph;
  std::vector<QuerySpec> queries;
  std::string shape;  ///< Generator shape name, for logging.
};

/// \brief Draws an adversarial case from `rng`, deterministically.
///
/// Shapes rotate through the structures the indexes historically find
/// hard: random trees with extra (reference) edges, deep label-repeating
/// chains, diamond DAGs (multi-parent convergence), reference-edge cycles
/// and self-loops, label-sparse fan-outs, degenerate one-node graphs, and
/// DTD-driven instances generated through src/datagen/ and parsed through
/// src/xml/ (so the whole ingestion path is under test too).
///
/// Queries are random downward label walks of the generated graph,
/// mutated with wildcards, descendant-axis steps, anchors, and unknown
/// labels; lengths are biased to 1..4 — the refinement boundaries for the
/// k values the oracle checks.
GeneratedCase GenerateCase(Rng& rng, const CaseGenOptions& options);

}  // namespace mrx::check

#endif  // MRX_CHECK_CASE_GEN_H_
