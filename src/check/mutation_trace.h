#ifndef MRX_CHECK_MUTATION_TRACE_H_
#define MRX_CHECK_MUTATION_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "check/case_gen.h"
#include "check/graph_spec.h"
#include "mutate/mutation.h"
#include "util/result.h"
#include "util/rng.h"

namespace mrx::check {

/// \brief One replayable mutation trace: an initial graph, a query
/// workload, and a sequence of concrete mutation batches.
///
/// Batch node ids refer to the compact id space of the graph version
/// current when the batch is applied. Replay SKIPS rejected batches (a
/// reject is a maintained no-op), which makes every *subsequence* of steps
/// a valid trace — the property the shrinker leans on: dropping a step can
/// turn later steps invalid, and those then skip instead of poisoning the
/// replay.
struct MutationTrace {
  GraphSpec initial;
  std::vector<QuerySpec> queries;
  std::vector<mutate::MutationBatch> steps;
  std::string shape;  ///< Generator shape of the initial graph.

  /// Serializes as `.mrxtrace` text (line-oriented, versioned).
  std::string ToText() const;
};

/// Parses `.mrxtrace` text back into a trace.
Result<MutationTrace> ParseTrace(const std::string& text);

/// Knobs for trace generation and replay checking.
struct MutationTraceOptions {
  size_t num_steps = 6;      ///< Mutation batches per trace.
  size_t ops_per_batch = 3;
  int k_max = 3;
  double rebuild_threshold = 0.25;
  bool maintain_dk = true;   ///< Also keep + check the D(k) chain.
  bool check_mstar = true;   ///< Exported specs vs a static rebuild.
  bool audit_invariants = true;

  CaseGenOptions gen;  ///< Initial graph + query workload shapes.
};

/// Draws a trace: a generated case seeds the graph and queries, then each
/// step is a random batch generated against the evolving graph (so ids are
/// valid at application time). Deterministic in `rng`.
MutationTrace GenerateMutationTrace(Rng& rng,
                                    const MutationTraceOptions& options);

/// What replaying one trace found.
struct TraceResult {
  std::vector<std::string> violations;  ///< Empty = clean.
  size_t steps_applied = 0;             ///< Batches that were not rejected.
  size_t checks = 0;                    ///< Oracle comparisons performed.

  bool ok() const { return violations.empty(); }
};

/// \brief Replays `trace` through an IncrementalMaintainer and, after every
/// applied batch, cross-checks the incrementally maintained state against
/// from-scratch oracles on the current graph:
///
///   csr:    AuditDataGraphCsr on the materialized version
///   A(k):   canonical block_of vs ComputeKBisimulation, k = 0..k_max
///   D(k):   canonical block_of vs ComputeDkConstructPartition for the
///           trace's query set (when maintain_dk)
///   M*:     ExportStaticSpecs byte-equal to the static hierarchy's specs,
///           and every trace query answered on BuildMStar() equal to
///           DataEvaluator ground truth (when check_mstar)
///
/// The maintainer is the system under test; every oracle is an independent
/// from-scratch rebuild.
TraceResult RunMutationTrace(const MutationTrace& trace,
                             const MutationTraceOptions& options);

/// Shrinks a failing trace: greedily drops whole steps, then ops within
/// steps, then queries, keeping each removal that still fails. Returns the
/// minimized trace (== input if nothing could be removed).
MutationTrace ShrinkMutationTrace(const MutationTrace& trace,
                                  const MutationTraceOptions& options,
                                  size_t max_attempts = 400);

/// Knobs for `mrx check --mode mutate`.
struct MutationCheckOptions {
  uint64_t seed = 1;
  size_t num_traces = 200;
  MutationTraceOptions trace;
  /// Directory shrunk `.mrxtrace` repros are written into (created on
  /// demand); empty disables writing.
  std::string out_dir;
  size_t max_failures = 8;
  std::ostream* log = nullptr;
};

struct MutationCheckFailure {
  uint64_t trace_index = 0;
  std::string note;   ///< First violation of the shrunk trace.
  std::string file;   ///< .mrxtrace path, empty if not written.
  size_t shrunk_steps = 0;
  MutationTrace repro;
};

struct MutationCheckSummary {
  size_t traces = 0;
  size_t steps_applied = 0;
  size_t checks = 0;
  size_t violations = 0;
  std::vector<MutationCheckFailure> failures;

  bool ok() const { return violations == 0; }
};

/// \brief The mutation differential harness: `num_traces` seeded traces,
/// each replayed with per-step oracle cross-checks; failing traces are
/// shrunk and written as `.mrxtrace` files. Seeds are prefix-stable (same
/// CaseSeed scheme as RunCheck).
MutationCheckSummary RunMutationTraceCheck(const MutationCheckOptions& options);

/// Knobs for `mrx check --mode mutate-stress`.
struct MutationStressOptions {
  uint64_t seed = 1;
  size_t threads = 4;        ///< Reader threads.
  size_t mutation_batches = 40;
  size_t ops_per_batch = 3;
  size_t num_queries = 16;
  size_t max_nodes = 96;
  size_t refine_after = 2;   ///< Kept low so refinement races mutations.
};

/// Outcome of one mutation stress run (designed for -DMRX_SANITIZE=thread).
struct MutationStressReport {
  std::string shape;
  uint64_t queries_run = 0;
  uint64_t mutations_applied = 0;
  uint64_t mismatches = 0;         ///< Versioned answer != ground truth
                                   ///< for the answering version.
  uint64_t epoch_regressions = 0;  ///< Per-reader epoch went backwards.
  uint64_t final_mismatches = 0;   ///< Post-run answers vs ground truth.
  uint64_t stale_put_drops = 0;    ///< Cache inserts rejected by the guard.

  bool ok() const {
    return mismatches == 0 && epoch_regressions == 0 &&
           final_mismatches == 0;
  }
};

/// \brief Hammers a ConcurrentSession from `threads` readers while the main
/// thread applies random mutation batches (and the background refiner
/// promotes FUPs). Every versioned answer is cross-checked against
/// DataEvaluator ground truth on the snapshot that answered it; reader
/// epochs must be monotone; after the run every query is re-checked on the
/// final version.
MutationStressReport RunMutationStress(const MutationStressOptions& options);

}  // namespace mrx::check

#endif  // MRX_CHECK_MUTATION_TRACE_H_
