#ifndef MRX_GRAPH_STATISTICS_H_
#define MRX_GRAPH_STATISTICS_H_

#include <cstdint>
#include <ostream>
#include <vector>

#include "graph/data_graph.h"

namespace mrx {

/// \brief Shape statistics of a data graph, used to compare generated
/// datasets against the paper's descriptions (NASA is "deeper, broader,
/// has a more irregular structure, and contains more references than the
/// XMark DTD") and printed by the dataset reports.
struct GraphStatistics {
  size_t num_nodes = 0;
  size_t num_edges = 0;
  size_t num_reference_edges = 0;
  size_t num_labels = 0;

  /// Depth = length of the shortest containment path from the root
  /// (reference edges excluded); nodes unreachable that way count as
  /// depth 0 and are tallied separately.
  size_t max_depth = 0;
  double avg_depth = 0;
  size_t unreachable_by_containment = 0;

  /// Fan-out over containment edges.
  size_t max_out_degree = 0;
  double avg_out_degree = 0;

  /// In-degree over all edges (references included).
  size_t max_in_degree = 0;

  /// Number of labels used by nodes in at least `contexts` distinct parent
  /// label sets is expensive to define compactly; instead we report how
  /// many labels appear under more than one distinct parent label — the
  /// paper's "name is used in seven different contexts" notion.
  size_t labels_in_multiple_contexts = 0;

  /// Fraction of nodes with at least one incoming reference edge.
  double referenced_node_fraction = 0;
};

/// Computes the statistics in one pass plus a containment BFS.
GraphStatistics ComputeStatistics(const DataGraph& graph);

/// Multi-line human-readable rendering.
void PrintStatistics(std::ostream& os, const GraphStatistics& stats);

}  // namespace mrx

#endif  // MRX_GRAPH_STATISTICS_H_
