#include "graph/data_graph.h"

#include <algorithm>
#include <sstream>

namespace mrx {

std::string DataGraph::ToDot() const {
  std::ostringstream os;
  os << "digraph G {\n";
  for (NodeId n = 0; n < num_nodes(); ++n) {
    os << "  n" << n << " [label=\"" << n << ":" << label_name(n) << "\"];\n";
  }
  for (NodeId n = 0; n < num_nodes(); ++n) {
    auto kids = children(n);
    auto kinds = child_kinds(n);
    for (size_t i = 0; i < kids.size(); ++i) {
      os << "  n" << n << " -> n" << kids[i];
      if (kinds[i] == EdgeKind::kReference) os << " [style=dashed]";
      os << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

NodeId DataGraphBuilder::AddNode(std::string_view label) {
  return AddNodeWithLabelId(symbols_.Intern(label));
}

NodeId DataGraphBuilder::AddNodeWithLabelId(LabelId label) {
  NodeId id = static_cast<NodeId>(labels_.size());
  labels_.push_back(label);
  return id;
}

void DataGraphBuilder::AddEdge(NodeId from, NodeId to, EdgeKind kind) {
  edges_.push_back(Edge{from, to, kind});
}

Result<DataGraph> DataGraphBuilder::Build() && {
  const size_t n = labels_.size();
  if (n == 0) {
    return Status::FailedPrecondition("cannot build an empty data graph");
  }
  if (root_ >= n) {
    return Status::FailedPrecondition("root node id out of range");
  }
  for (const Edge& e : edges_) {
    if (e.from >= n || e.to >= n) {
      return Status::FailedPrecondition("edge endpoint out of range");
    }
  }

  // Deduplicate parallel edges. When a (u,v) pair appears both as a regular
  // and as a reference edge, keep the regular kind (containment dominates
  // for reporting purposes; the indexes ignore the kind entirely).
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    if (a.from != b.from) return a.from < b.from;
    if (a.to != b.to) return a.to < b.to;
    return a.kind < b.kind;
  });
  edges_.erase(std::unique(edges_.begin(), edges_.end(),
                           [](const Edge& a, const Edge& b) {
                             return a.from == b.from && a.to == b.to;
                           }),
               edges_.end());

  DataGraph g;
  g.symbols_ = std::move(symbols_);
  g.labels_ = std::move(labels_);
  g.root_ = root_;

  // Children CSR (edges_ is already sorted by `from`).
  g.child_offsets_.assign(n + 1, 0);
  for (const Edge& e : edges_) ++g.child_offsets_[e.from + 1];
  for (size_t i = 1; i <= n; ++i) g.child_offsets_[i] += g.child_offsets_[i - 1];
  g.child_targets_.reserve(edges_.size());
  g.child_kinds_.reserve(edges_.size());
  for (const Edge& e : edges_) {
    g.child_targets_.push_back(e.to);
    g.child_kinds_.push_back(e.kind);
    if (e.kind == EdgeKind::kReference) ++g.num_reference_edges_;
  }

  // Parents CSR.
  g.parent_offsets_.assign(n + 1, 0);
  for (const Edge& e : edges_) ++g.parent_offsets_[e.to + 1];
  for (size_t i = 1; i <= n; ++i) {
    g.parent_offsets_[i] += g.parent_offsets_[i - 1];
  }
  g.parent_targets_.resize(edges_.size());
  {
    std::vector<uint32_t> cursor(g.parent_offsets_.begin(),
                                 g.parent_offsets_.end() - 1);
    for (const Edge& e : edges_) g.parent_targets_[cursor[e.to]++] = e.from;
  }

  // Label buckets.
  const size_t num_labels = g.symbols_.size();
  g.label_offsets_.assign(num_labels + 1, 0);
  for (LabelId l : g.labels_) ++g.label_offsets_[l + 1];
  for (size_t i = 1; i <= num_labels; ++i) {
    g.label_offsets_[i] += g.label_offsets_[i - 1];
  }
  g.label_nodes_.resize(n);
  {
    std::vector<uint32_t> cursor(g.label_offsets_.begin(),
                                 g.label_offsets_.end() - 1);
    for (NodeId v = 0; v < n; ++v) g.label_nodes_[cursor[g.labels_[v]]++] = v;
  }

  return g;
}

}  // namespace mrx
