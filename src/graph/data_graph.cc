#include "graph/data_graph.h"

#include <algorithm>
#include <sstream>

namespace mrx {

std::string DataGraph::ToDot() const {
  std::ostringstream os;
  os << "digraph G {\n";
  for (NodeId n = 0; n < num_nodes(); ++n) {
    os << "  n" << n << " [label=\"" << n << ":" << label_name(n) << "\"];\n";
  }
  for (NodeId n = 0; n < num_nodes(); ++n) {
    auto kids = children(n);
    auto kinds = child_kinds(n);
    for (size_t i = 0; i < kids.size(); ++i) {
      os << "  n" << n << " -> n" << kids[i];
      if (kinds[i] == EdgeKind::kReference) os << " [style=dashed]";
      os << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

NodeId DataGraphBuilder::AddNode(std::string_view label) {
  return AddNodeWithLabelId(symbols_.Intern(label));
}

NodeId DataGraphBuilder::AddNodeWithLabelId(LabelId label) {
  NodeId id = static_cast<NodeId>(labels_.size());
  labels_.push_back(label);
  return id;
}

void DataGraphBuilder::AddEdge(NodeId from, NodeId to, EdgeKind kind) {
  edges_.push_back(Edge{from, to, kind});
}

Result<DataGraph> DataGraphBuilder::Build() && {
  const size_t n = labels_.size();
  if (n == 0) {
    return Status::FailedPrecondition("cannot build an empty data graph");
  }
  if (root_ >= n) {
    return Status::FailedPrecondition("root node id out of range");
  }
  for (const Edge& e : edges_) {
    if (e.from >= n || e.to >= n) {
      return Status::FailedPrecondition("edge endpoint out of range");
    }
  }

  // Deduplicate parallel edges. When a (u,v) pair appears both as a regular
  // and as a reference edge, keep the regular kind (containment dominates
  // for reporting purposes; the indexes ignore the kind entirely). Callers
  // that promised sorted-unique input (MarkEdgesSortedUnique) skip the
  // sort after an O(E) verification of the promise.
  const bool presorted =
      edges_presorted_ &&
      std::is_sorted(edges_.begin(), edges_.end(),
                     [](const Edge& a, const Edge& b) {
                       return a.from != b.from ? a.from < b.from
                                               : a.to < b.to;
                     }) &&
      std::adjacent_find(edges_.begin(), edges_.end(),
                         [](const Edge& a, const Edge& b) {
                           return a.from == b.from && a.to == b.to;
                         }) == edges_.end();
  if (!presorted) {
    std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
      if (a.from != b.from) return a.from < b.from;
      if (a.to != b.to) return a.to < b.to;
      return a.kind < b.kind;
    });
    edges_.erase(std::unique(edges_.begin(), edges_.end(),
                             [](const Edge& a, const Edge& b) {
                               return a.from == b.from && a.to == b.to;
                             }),
                 edges_.end());
  }

  DataGraph g;
  g.symbols_ = std::move(symbols_);
  g.labels_ = std::move(labels_);
  g.root_ = root_;

  // Children CSR (edges_ is already sorted by `from`).
  g.child_offsets_.assign(n + 1, 0);
  for (const Edge& e : edges_) ++g.child_offsets_[e.from + 1];
  for (size_t i = 1; i <= n; ++i) g.child_offsets_[i] += g.child_offsets_[i - 1];
  g.child_targets_.reserve(edges_.size());
  g.child_kinds_.reserve(edges_.size());
  for (const Edge& e : edges_) {
    g.child_targets_.push_back(e.to);
    g.child_kinds_.push_back(e.kind);
    if (e.kind == EdgeKind::kReference) ++g.num_reference_edges_;
  }

  DeriveInverseStructures(&g);
  return g;
}

/// Shared tail of both build paths: derives the parent CSR and label
/// buckets from the frozen children CSR.
void DataGraphBuilder::DeriveInverseStructures(DataGraph* g) {
  const size_t n = g->labels_.size();
  const size_t e = g->child_targets_.size();

  g->parent_offsets_.assign(n + 1, 0);
  for (NodeId t : g->child_targets_) ++g->parent_offsets_[t + 1];
  for (size_t i = 1; i <= n; ++i) {
    g->parent_offsets_[i] += g->parent_offsets_[i - 1];
  }
  g->parent_targets_.resize(e);
  {
    std::vector<uint32_t> cursor(g->parent_offsets_.begin(),
                                 g->parent_offsets_.end() - 1);
    for (NodeId from = 0; from < n; ++from) {
      const uint32_t end = g->child_offsets_[from + 1];
      for (uint32_t i = g->child_offsets_[from]; i < end; ++i) {
        g->parent_targets_[cursor[g->child_targets_[i]]++] = from;
      }
    }
  }

  const size_t num_labels = g->symbols_.size();
  g->label_offsets_.assign(num_labels + 1, 0);
  for (LabelId l : g->labels_) ++g->label_offsets_[l + 1];
  for (size_t i = 1; i <= num_labels; ++i) {
    g->label_offsets_[i] += g->label_offsets_[i - 1];
  }
  g->label_nodes_.resize(n);
  {
    std::vector<uint32_t> cursor(g->label_offsets_.begin(),
                                 g->label_offsets_.end() - 1);
    for (NodeId v = 0; v < n; ++v) g->label_nodes_[cursor[g->labels_[v]]++] = v;
  }
}

Result<DataGraph> DataGraphBuilder::FromChildCsr(
    SymbolTable symbols, std::vector<LabelId> labels, NodeId root,
    std::vector<uint32_t> child_offsets, std::vector<NodeId> child_targets,
    std::vector<EdgeKind> child_kinds,
    std::optional<InverseStructures> inverse) {
  const size_t n = labels.size();
  if (n == 0) {
    return Status::FailedPrecondition("cannot build an empty data graph");
  }
  if (root >= n) {
    return Status::FailedPrecondition("root node id out of range");
  }
  if (child_offsets.size() != n + 1 || child_offsets.front() != 0 ||
      child_offsets.back() != child_targets.size() ||
      child_kinds.size() != child_targets.size()) {
    return Status::FailedPrecondition("malformed children CSR");
  }
  // A caller that patched the inverse structures forward necessarily froze
  // the adjacency itself, so the per-edge validation sweeps are skipped on
  // that (hot, per-mutation-batch) path; the mutation check harness pins
  // the contents against from-scratch materialization instead.
  size_t num_refs = 0;
  if (inverse.has_value()) {
    num_refs = inverse->num_reference_edges;
    if (num_refs > child_targets.size()) {
      return Status::FailedPrecondition("malformed inverse structures");
    }
  } else {
    if (!std::is_sorted(child_offsets.begin(), child_offsets.end())) {
      return Status::FailedPrecondition("malformed children CSR");
    }
    for (NodeId t : child_targets) {
      if (t >= n) {
        return Status::FailedPrecondition("edge endpoint out of range");
      }
    }
    for (EdgeKind k : child_kinds) {
      if (k == EdgeKind::kReference) ++num_refs;
    }
  }

  DataGraph g;
  g.symbols_ = std::move(symbols);
  g.labels_ = std::move(labels);
  g.root_ = root;
  g.child_offsets_ = std::move(child_offsets);
  g.child_targets_ = std::move(child_targets);
  g.child_kinds_ = std::move(child_kinds);
  g.num_reference_edges_ = num_refs;
  if (inverse.has_value()) {
    if (inverse->parent_offsets.size() != n + 1 ||
        inverse->parent_offsets.front() != 0 ||
        inverse->parent_offsets.back() != g.child_targets_.size() ||
        inverse->parent_targets.size() != g.child_targets_.size() ||
        inverse->label_offsets.size() != g.symbols_.size() + 1 ||
        inverse->label_offsets.front() != 0 ||
        inverse->label_offsets.back() != n ||
        inverse->label_nodes.size() != n) {
      return Status::FailedPrecondition("malformed inverse structures");
    }
    g.parent_offsets_ = std::move(inverse->parent_offsets);
    g.parent_targets_ = std::move(inverse->parent_targets);
    g.label_offsets_ = std::move(inverse->label_offsets);
    g.label_nodes_ = std::move(inverse->label_nodes);
  } else {
    DeriveInverseStructures(&g);
  }
  return g;
}

}  // namespace mrx
