#ifndef MRX_GRAPH_SYMBOL_TABLE_H_
#define MRX_GRAPH_SYMBOL_TABLE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mrx {

/// Dense identifier for an interned element label (tag name).
using LabelId = uint32_t;

/// \brief Interns element labels so the graph and the indexes can compare
/// labels as dense integers.
///
/// Label ids are assigned contiguously from 0 in interning order, so they can
/// be used directly as vector indexes (e.g., for the A(0) partition).
class SymbolTable {
 public:
  SymbolTable() = default;

  /// Returns the id of `name`, interning it if new.
  LabelId Intern(std::string_view name);

  /// Returns the id of `name` if it was interned before, otherwise nullopt.
  std::optional<LabelId> Lookup(std::string_view name) const;

  /// The label string for `id`; `id` must be a valid interned id.
  const std::string& Name(LabelId id) const { return names_[id]; }

  /// Number of distinct labels interned so far.
  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  // Keyed by owned strings (not views into names_) so the table is freely
  // copyable and reallocation-safe.
  std::unordered_map<std::string, LabelId> ids_;
};

}  // namespace mrx

#endif  // MRX_GRAPH_SYMBOL_TABLE_H_
