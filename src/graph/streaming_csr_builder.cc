#include "graph/streaming_csr_builder.h"

#include <algorithm>
#include <cstdint>

namespace mrx {

StreamingCsrBuilder::StreamingCsrBuilder() = default;
StreamingCsrBuilder::~StreamingCsrBuilder() = default;
StreamingCsrBuilder::StreamingCsrBuilder(StreamingCsrBuilder&&) noexcept =
    default;
StreamingCsrBuilder& StreamingCsrBuilder::operator=(
    StreamingCsrBuilder&&) noexcept = default;

NodeId StreamingCsrBuilder::AddNode(std::string_view label) {
  return AddNodeWithLabelId(symbols_.Intern(label));
}

NodeId StreamingCsrBuilder::AddNodeWithLabelId(LabelId label) {
  if ((num_nodes_ & kChunkMask) == 0) {
    label_chunks_.push_back(std::make_unique<LabelId[]>(kChunkSize));
  }
  label_chunks_[num_nodes_ >> kChunkShift][num_nodes_ & kChunkMask] = label;
  return static_cast<NodeId>(num_nodes_++);
}

void StreamingCsrBuilder::AddEdge(NodeId from, NodeId to, EdgeKind kind) {
  if ((num_edges_ & kChunkMask) == 0) {
    edge_chunks_.push_back(std::make_unique<EdgeRec[]>(kChunkSize));
  }
  edge_chunks_[num_edges_ >> kChunkShift][num_edges_ & kChunkMask] =
      EdgeRec{from, to, kind};
  ++num_edges_;
}

size_t StreamingCsrBuilder::arena_bytes() const {
  return label_chunks_.size() * kChunkSize * sizeof(LabelId) +
         edge_chunks_.size() * kChunkSize * sizeof(EdgeRec);
}

Result<DataGraph> StreamingCsrBuilder::Build() && {
  const size_t n = num_nodes_;
  const size_t e = num_edges_;
  if (n == 0) {
    return Status::FailedPrecondition("cannot build an empty data graph");
  }
  if (root_ >= n) {
    return Status::FailedPrecondition("root node id out of range");
  }
  if (n > static_cast<size_t>(kInvalidNode)) {
    return Status::FailedPrecondition("node count exceeds NodeId range");
  }

  // Flatten the label arena (releasing each chunk as it is copied).
  std::vector<LabelId> labels(n);
  for (size_t i = 0; i < n; i += kChunkSize) {
    const size_t chunk = i >> kChunkShift;
    const size_t count = std::min(kChunkSize, n - i);
    std::copy_n(label_chunks_[chunk].get(), count, labels.begin() + i);
    label_chunks_[chunk].reset();
  }

  // Counting sort by source: degree pass, prefix sums, scatter.
  std::vector<uint32_t> offsets(n + 1, 0);
  for (size_t i = 0; i < e; ++i) {
    const EdgeRec& rec = edge_chunks_[i >> kChunkShift][i & kChunkMask];
    if (rec.from >= n || rec.to >= n) {
      return Status::FailedPrecondition("edge endpoint out of range");
    }
    ++offsets[rec.from + 1];
  }
  for (size_t i = 1; i <= n; ++i) offsets[i] += offsets[i - 1];

  std::vector<NodeId> targets(e);
  std::vector<EdgeKind> kinds(e);
  {
    std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
    for (size_t i = 0; i < e; ++i) {
      const size_t chunk = i >> kChunkShift;
      const EdgeRec& rec = edge_chunks_[chunk][i & kChunkMask];
      const uint32_t at = cursor[rec.from]++;
      targets[at] = rec.to;
      kinds[at] = rec.kind;
      if ((i & kChunkMask) == kChunkMask) edge_chunks_[chunk].reset();
    }
    edge_chunks_.clear();
  }

  // Per-row sort + dedup, in place (the write cursor never passes the read
  // cursor because deduplication only shrinks rows). Rows are keyed by
  // (target, kind) packed into one word; keeping the first key per target
  // makes the regular kind (0) win over reference (1) — exactly the
  // DataGraphBuilder::Build() tie-break.
  std::vector<uint64_t> row;
  size_t write = 0;
  uint32_t row_begin_prev = 0;
  for (size_t u = 0; u < n; ++u) {
    const uint32_t begin = row_begin_prev;
    const uint32_t end = offsets[u + 1];
    row_begin_prev = end;
    row.clear();
    for (uint32_t i = begin; i < end; ++i) {
      row.push_back((static_cast<uint64_t>(targets[i]) << 8) |
                    static_cast<uint64_t>(kinds[i]));
    }
    std::sort(row.begin(), row.end());
    NodeId prev_to = kInvalidNode;
    for (uint64_t key : row) {
      const NodeId to = static_cast<NodeId>(key >> 8);
      if (to == prev_to) continue;
      prev_to = to;
      targets[write] = to;
      kinds[write] = static_cast<EdgeKind>(key & 0xff);
      ++write;
    }
    offsets[u + 1] = static_cast<uint32_t>(write);
  }
  targets.resize(write);
  kinds.resize(write);
  targets.shrink_to_fit();
  kinds.shrink_to_fit();

  return DataGraphBuilder::FromChildCsr(std::move(symbols_), std::move(labels),
                                        root_, std::move(offsets),
                                        std::move(targets), std::move(kinds));
}

}  // namespace mrx
