#include "graph/symbol_table.h"

namespace mrx {

LabelId SymbolTable::Intern(std::string_view name) {
  std::string key(name);
  auto it = ids_.find(key);
  if (it != ids_.end()) return it->second;
  LabelId id = static_cast<LabelId>(names_.size());
  names_.push_back(key);
  ids_.emplace(std::move(key), id);
  return id;
}

std::optional<LabelId> SymbolTable::Lookup(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

}  // namespace mrx
