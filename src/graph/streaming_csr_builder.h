#ifndef MRX_GRAPH_STREAMING_CSR_BUILDER_H_
#define MRX_GRAPH_STREAMING_CSR_BUILDER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "graph/data_graph.h"

namespace mrx {

/// \brief Assembles a DataGraph from a node/edge stream using chunked
/// arenas instead of geometrically grown vectors.
///
/// The scale-tier generators emit millions of nodes and edges one at a
/// time; DataGraphBuilder would hold them in std::vectors whose doubling
/// reallocations copy the whole edge list O(log E) times and transiently
/// hold ~1.5× the final footprint. This builder appends into fixed-size
/// chunks (no copies, no over-allocation beyond one chunk per array) and
/// freezes into CSR form with one counting-sort pass.
///
/// Build() reproduces DataGraphBuilder::Build() semantics exactly: rows
/// sorted ascending by target, parallel (u,v) edges deduplicated with the
/// regular kind winning over reference — so a graph built from a streamed
/// event sequence is byte-identical to one built by parsing the serialized
/// document (tests/scale_stream_test.cc pins this).
class StreamingCsrBuilder {
 public:
  StreamingCsrBuilder();
  ~StreamingCsrBuilder();
  StreamingCsrBuilder(StreamingCsrBuilder&&) noexcept;
  StreamingCsrBuilder& operator=(StreamingCsrBuilder&&) noexcept;

  /// Adds a node labeled with the interned id of `label`; ids are dense in
  /// call order (matching DataGraphBuilder::AddNode).
  NodeId AddNode(std::string_view label);
  NodeId AddNodeWithLabelId(LabelId label);

  /// Adds a directed edge; endpoints may be created later (validated at
  /// Build time).
  void AddEdge(NodeId from, NodeId to, EdgeKind kind = EdgeKind::kRegular);

  /// Declares the root. Defaults to node 0.
  void SetRoot(NodeId root) { root_ = root; }

  SymbolTable& symbols() { return symbols_; }
  size_t num_nodes() const { return num_nodes_; }
  size_t num_edges() const { return num_edges_; }

  /// Bytes currently held by the node/edge arenas (storage accounting for
  /// the memory-bound tests; grows linearly with the emitted graph, never
  /// with the serialized document).
  size_t arena_bytes() const;

  /// Validates, deduplicates, and freezes into a DataGraph. Fails on an
  /// empty graph, an out-of-range root, or an out-of-range edge endpoint.
  /// Consumes the builder.
  Result<DataGraph> Build() &&;

 private:
  struct EdgeRec {
    NodeId from;
    NodeId to;
    EdgeKind kind;
  };

  /// 64Ki entries per chunk: large enough that chunk bookkeeping is noise,
  /// small enough that a near-empty tail chunk wastes little.
  static constexpr size_t kChunkShift = 16;
  static constexpr size_t kChunkSize = size_t{1} << kChunkShift;
  static constexpr size_t kChunkMask = kChunkSize - 1;

  SymbolTable symbols_;
  std::vector<std::unique_ptr<LabelId[]>> label_chunks_;
  std::vector<std::unique_ptr<EdgeRec[]>> edge_chunks_;
  size_t num_nodes_ = 0;
  size_t num_edges_ = 0;
  NodeId root_ = 0;
};

}  // namespace mrx

#endif  // MRX_GRAPH_STREAMING_CSR_BUILDER_H_
