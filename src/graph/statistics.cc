#include "graph/statistics.h"

#include <algorithm>
#include <set>

namespace mrx {

GraphStatistics ComputeStatistics(const DataGraph& graph) {
  GraphStatistics stats;
  const size_t n = graph.num_nodes();
  stats.num_nodes = n;
  stats.num_edges = graph.num_edges();
  stats.num_reference_edges = graph.num_reference_edges();
  stats.num_labels = graph.symbols().size();

  // Containment BFS from the root for depths and containment fan-out.
  std::vector<int64_t> depth(n, -1);
  std::vector<NodeId> queue = {graph.root()};
  depth[graph.root()] = 0;
  uint64_t depth_sum = 0;
  size_t reachable = 1;
  for (size_t i = 0; i < queue.size(); ++i) {
    NodeId u = queue[i];
    auto kids = graph.children(u);
    auto kinds = graph.child_kinds(u);
    size_t containment_degree = 0;
    for (size_t j = 0; j < kids.size(); ++j) {
      if (kinds[j] != EdgeKind::kRegular) continue;
      ++containment_degree;
      if (depth[kids[j]] < 0) {
        depth[kids[j]] = depth[u] + 1;
        stats.max_depth =
            std::max(stats.max_depth, static_cast<size_t>(depth[kids[j]]));
        depth_sum += static_cast<uint64_t>(depth[kids[j]]);
        ++reachable;
        queue.push_back(kids[j]);
      }
    }
    stats.max_out_degree = std::max(stats.max_out_degree, containment_degree);
    stats.avg_out_degree += static_cast<double>(containment_degree);
  }
  stats.avg_out_degree /= static_cast<double>(n);
  stats.avg_depth =
      reachable > 0 ? static_cast<double>(depth_sum) / reachable : 0;
  stats.unreachable_by_containment = n - reachable;

  // In-degrees and referenced nodes.
  size_t referenced = 0;
  for (NodeId v = 0; v < n; ++v) {
    stats.max_in_degree =
        std::max(stats.max_in_degree, graph.parents(v).size());
  }
  std::vector<char> has_ref(n, 0);
  for (NodeId u = 0; u < n; ++u) {
    auto kids = graph.children(u);
    auto kinds = graph.child_kinds(u);
    for (size_t j = 0; j < kids.size(); ++j) {
      if (kinds[j] == EdgeKind::kReference) has_ref[kids[j]] = 1;
    }
  }
  for (NodeId v = 0; v < n; ++v) referenced += has_ref[v];
  stats.referenced_node_fraction =
      n > 0 ? static_cast<double>(referenced) / static_cast<double>(n) : 0;

  // Context reuse: labels appearing under more than one parent label.
  std::vector<std::set<LabelId>> parent_labels(stats.num_labels);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId c : graph.children(u)) {
      parent_labels[graph.label(c)].insert(graph.label(u));
    }
  }
  for (const auto& contexts : parent_labels) {
    if (contexts.size() > 1) ++stats.labels_in_multiple_contexts;
  }
  return stats;
}

void PrintStatistics(std::ostream& os, const GraphStatistics& stats) {
  os << "nodes: " << stats.num_nodes << "\n"
     << "edges: " << stats.num_edges << " (" << stats.num_reference_edges
     << " reference)\n"
     << "labels: " << stats.num_labels << " ("
     << stats.labels_in_multiple_contexts << " used in multiple contexts)\n"
     << "depth: max " << stats.max_depth << ", avg " << stats.avg_depth
     << "\n"
     << "containment fan-out: max " << stats.max_out_degree << ", avg "
     << stats.avg_out_degree << "\n"
     << "max in-degree: " << stats.max_in_degree << "\n"
     << "nodes referenced via ID/IDREF: "
     << stats.referenced_node_fraction * 100 << "%\n";
  if (stats.unreachable_by_containment > 0) {
    os << "unreachable by containment: "
       << stats.unreachable_by_containment << "\n";
  }
}

}  // namespace mrx
