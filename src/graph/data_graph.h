#ifndef MRX_GRAPH_DATA_GRAPH_H_
#define MRX_GRAPH_DATA_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/symbol_table.h"
#include "util/result.h"
#include "util/status.h"

namespace mrx {

/// Dense identifier of a data node (the paper's "oid").
using NodeId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// The two edge kinds of the paper's data-graph model (§2): regular edges
/// are XML parent-child containment; reference edges come from ID/IDREF.
enum class EdgeKind : uint8_t {
  kRegular = 0,
  kReference = 1,
};

/// \brief An immutable labeled directed graph G = (V, E, root, Σ), the
/// paper's data model for an XML document (§2).
///
/// Stored as twin CSR adjacency structures (children and parents) plus
/// per-label node buckets. Both children and parents of a node are exposed
/// in O(1); the indexes lean heavily on parent traversal (bisimilarity is
/// defined over incoming paths) and on label buckets (query starts and the
/// A(0) partition).
///
/// Build one with DataGraphBuilder; a built graph never changes.
class DataGraph {
 public:
  DataGraph() = default;

  size_t num_nodes() const { return labels_.size(); }
  size_t num_edges() const { return child_targets_.size(); }

  /// The document root (always a valid node in a built graph).
  NodeId root() const { return root_; }

  /// Label id of `n`.
  LabelId label(NodeId n) const { return labels_[n]; }

  /// Label string of `n` (for diagnostics and DOT export).
  const std::string& label_name(NodeId n) const {
    return symbols_.Name(labels_[n]);
  }

  /// Children of `n` (regular and reference edges together, as in the
  /// paper: path expressions traverse both).
  std::span<const NodeId> children(NodeId n) const {
    return {child_targets_.data() + child_offsets_[n],
            child_offsets_[n + 1] - child_offsets_[n]};
  }

  /// Edge kinds parallel to children(n).
  std::span<const EdgeKind> child_kinds(NodeId n) const {
    return {child_kinds_.data() + child_offsets_[n],
            child_offsets_[n + 1] - child_offsets_[n]};
  }

  /// Parents of `n` (sources of all incoming edges).
  std::span<const NodeId> parents(NodeId n) const {
    return {parent_targets_.data() + parent_offsets_[n],
            parent_offsets_[n + 1] - parent_offsets_[n]};
  }

  /// All nodes carrying label `l`, in ascending NodeId order. Returns an
  /// empty span for label ids ≥ the number of interned labels.
  std::span<const NodeId> nodes_with_label(LabelId l) const {
    if (l + 1 >= label_offsets_.size()) return {};
    return {label_nodes_.data() + label_offsets_[l],
            label_offsets_[l + 1] - label_offsets_[l]};
  }

  /// The label alphabet Σ.
  const SymbolTable& symbols() const { return symbols_; }

  /// Number of reference (ID/IDREF) edges.
  size_t num_reference_edges() const { return num_reference_edges_; }

  /// Graphviz DOT rendering (reference edges dashed), for debugging small
  /// graphs; node captions are "oid:label" as in the paper's Figure 1.
  std::string ToDot() const;

 private:
  friend class DataGraphBuilder;

  SymbolTable symbols_;
  std::vector<LabelId> labels_;
  NodeId root_ = kInvalidNode;

  std::vector<uint32_t> child_offsets_;   // size num_nodes()+1
  std::vector<NodeId> child_targets_;
  std::vector<EdgeKind> child_kinds_;
  std::vector<uint32_t> parent_offsets_;  // size num_nodes()+1
  std::vector<NodeId> parent_targets_;

  std::vector<uint32_t> label_offsets_;   // size num_labels()+1
  std::vector<NodeId> label_nodes_;

  size_t num_reference_edges_ = 0;
};

/// \brief Incrementally assembles a DataGraph.
///
/// Nodes are created with AddNode (ids are assigned densely in call order);
/// edges may reference nodes created later. Build() validates everything,
/// deduplicates parallel edges (a duplicated (u,v) edge carries no extra
/// information for any structural index), and freezes the CSR form.
class DataGraphBuilder {
 public:
  DataGraphBuilder() = default;

  /// Adds a node labeled with the interned id of `label`; returns its id.
  NodeId AddNode(std::string_view label);

  /// Adds a node with an already-interned label id (must come from
  /// symbols()).
  NodeId AddNodeWithLabelId(LabelId label);

  /// Adds a directed edge; both endpoints must exist by Build() time.
  void AddEdge(NodeId from, NodeId to, EdgeKind kind = EdgeKind::kRegular);

  /// Declares the root. Defaults to node 0 if never called.
  void SetRoot(NodeId root) { root_ = root; }

  /// Access to the label table (so callers can pre-intern labels).
  SymbolTable& symbols() { return symbols_; }

  size_t num_nodes() const { return labels_.size(); }

  /// Validates and freezes. Fails if the graph is empty, the root is out of
  /// range, or any edge endpoint is out of range. Consumes the builder.
  Result<DataGraph> Build() &&;

 private:
  struct Edge {
    NodeId from;
    NodeId to;
    EdgeKind kind;
  };

  SymbolTable symbols_;
  std::vector<LabelId> labels_;
  std::vector<Edge> edges_;
  NodeId root_ = 0;
};

}  // namespace mrx

#endif  // MRX_GRAPH_DATA_GRAPH_H_
