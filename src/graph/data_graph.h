#ifndef MRX_GRAPH_DATA_GRAPH_H_
#define MRX_GRAPH_DATA_GRAPH_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "graph/symbol_table.h"
#include "util/result.h"
#include "util/status.h"

namespace mrx {

/// Dense identifier of a data node (the paper's "oid").
using NodeId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// The two edge kinds of the paper's data-graph model (§2): regular edges
/// are XML parent-child containment; reference edges come from ID/IDREF.
enum class EdgeKind : uint8_t {
  kRegular = 0,
  kReference = 1,
};

/// \brief An immutable labeled directed graph G = (V, E, root, Σ), the
/// paper's data model for an XML document (§2).
///
/// Stored as twin CSR adjacency structures (children and parents) plus
/// per-label node buckets. Both children and parents of a node are exposed
/// in O(1); the indexes lean heavily on parent traversal (bisimilarity is
/// defined over incoming paths) and on label buckets (query starts and the
/// A(0) partition).
///
/// Build one with DataGraphBuilder; a built graph never changes.
class DataGraph {
 public:
  DataGraph() = default;

  size_t num_nodes() const { return labels_.size(); }
  size_t num_edges() const { return child_targets_.size(); }

  /// The document root (always a valid node in a built graph).
  NodeId root() const { return root_; }

  /// Label id of `n`.
  LabelId label(NodeId n) const { return labels_[n]; }

  /// Label string of `n` (for diagnostics and DOT export).
  const std::string& label_name(NodeId n) const {
    return symbols_.Name(labels_[n]);
  }

  /// Children of `n` (regular and reference edges together, as in the
  /// paper: path expressions traverse both).
  std::span<const NodeId> children(NodeId n) const {
    return {child_targets_.data() + child_offsets_[n],
            child_offsets_[n + 1] - child_offsets_[n]};
  }

  /// Edge kinds parallel to children(n).
  std::span<const EdgeKind> child_kinds(NodeId n) const {
    return {child_kinds_.data() + child_offsets_[n],
            child_offsets_[n + 1] - child_offsets_[n]};
  }

  /// Parents of `n` (sources of all incoming edges).
  std::span<const NodeId> parents(NodeId n) const {
    return {parent_targets_.data() + parent_offsets_[n],
            parent_offsets_[n + 1] - parent_offsets_[n]};
  }

  /// All nodes carrying label `l`, in ascending NodeId order. Returns an
  /// empty span for label ids ≥ the number of interned labels.
  std::span<const NodeId> nodes_with_label(LabelId l) const {
    if (l + 1 >= label_offsets_.size()) return {};
    return {label_nodes_.data() + label_offsets_[l],
            label_offsets_[l + 1] - label_offsets_[l]};
  }

  /// Raw children-CSR arrays (row n spans [child_row_offsets()[n],
  /// child_row_offsets()[n+1]) of the target/kind arrays) and the dense
  /// per-node label array — for bulk row streaming in the live-update delta
  /// materializer, which copies runs of unchanged rows wholesale.
  std::span<const uint32_t> child_row_offsets() const { return child_offsets_; }
  std::span<const NodeId> child_row_targets() const { return child_targets_; }
  std::span<const EdgeKind> child_row_kinds() const { return child_kinds_; }
  std::span<const LabelId> node_labels() const { return labels_; }
  std::span<const uint32_t> parent_row_offsets() const {
    return parent_offsets_;
  }
  std::span<const NodeId> parent_row_targets() const {
    return parent_targets_;
  }
  std::span<const uint32_t> label_bucket_offsets() const {
    return label_offsets_;
  }
  std::span<const NodeId> label_bucket_nodes() const { return label_nodes_; }

  /// The label alphabet Σ.
  const SymbolTable& symbols() const { return symbols_; }

  /// Number of reference (ID/IDREF) edges.
  size_t num_reference_edges() const { return num_reference_edges_; }

  /// Graphviz DOT rendering (reference edges dashed), for debugging small
  /// graphs; node captions are "oid:label" as in the paper's Figure 1.
  std::string ToDot() const;

 private:
  friend class DataGraphBuilder;

  SymbolTable symbols_;
  std::vector<LabelId> labels_;
  NodeId root_ = kInvalidNode;

  std::vector<uint32_t> child_offsets_;   // size num_nodes()+1
  std::vector<NodeId> child_targets_;
  std::vector<EdgeKind> child_kinds_;
  std::vector<uint32_t> parent_offsets_;  // size num_nodes()+1
  std::vector<NodeId> parent_targets_;

  std::vector<uint32_t> label_offsets_;   // size num_labels()+1
  std::vector<NodeId> label_nodes_;

  size_t num_reference_edges_ = 0;
};

/// \brief Incrementally assembles a DataGraph.
///
/// Nodes are created with AddNode (ids are assigned densely in call order);
/// edges may reference nodes created later. Build() validates everything,
/// deduplicates parallel edges (a duplicated (u,v) edge carries no extra
/// information for any structural index), and freezes the CSR form.
class DataGraphBuilder {
 public:
  DataGraphBuilder() = default;

  /// Adds a node labeled with the interned id of `label`; returns its id.
  NodeId AddNode(std::string_view label);

  /// Adds a node with an already-interned label id (must come from
  /// symbols()).
  NodeId AddNodeWithLabelId(LabelId label);

  /// Adds a directed edge; both endpoints must exist by Build() time.
  void AddEdge(NodeId from, NodeId to, EdgeKind kind = EdgeKind::kRegular);

  /// Pre-sizes the node and edge arrays (bulk assembly paths — the XML
  /// parser and the live-update materializer — know their counts up front).
  void Reserve(size_t nodes, size_t edges) {
    labels_.reserve(nodes);
    edges_.reserve(edges);
  }

  /// Declares the root. Defaults to node 0 if never called.
  void SetRoot(NodeId root) { root_ = root; }

  /// Promises that edges were added in strictly ascending (from, to) order
  /// with no duplicate (from, to) pair, letting Build() skip its O(E log E)
  /// sort — the live-update materializer emits from adjacency lists that
  /// already hold this invariant, and pays this on every mutation batch.
  /// Build() verifies the promise in O(E) and quietly falls back to
  /// sorting if it does not hold.
  void MarkEdgesSortedUnique() { edges_presorted_ = true; }

  /// Access to the label table (so callers can pre-intern labels).
  SymbolTable& symbols() { return symbols_; }

  size_t num_nodes() const { return labels_.size(); }

  /// Validates and freezes. Fails if the graph is empty, the root is out of
  /// range, or any edge endpoint is out of range. Consumes the builder.
  Result<DataGraph> Build() &&;

  /// Caller-precomputed inverse structures for FromChildCsr. The delta
  /// materializer patches these over from the previous version instead of
  /// paying the from-scratch derivation (two O(E) scatter passes). Shapes
  /// are validated; contents must equal what the derivation would produce —
  /// the mutation check harness replays traces against from-scratch
  /// materialization to pin exactly that.
  struct InverseStructures {
    std::vector<uint32_t> parent_offsets;  ///< size num_nodes()+1
    std::vector<NodeId> parent_targets;
    std::vector<uint32_t> label_offsets;   ///< size num_labels()+1
    std::vector<NodeId> label_nodes;
    /// Reference-edge count, carried forward alongside the inverse arrays
    /// (prev count ± the refs in rewritten rows) so FromChildCsr can skip
    /// its O(E) kind scan on the trusted path.
    size_t num_reference_edges = 0;
  };

  /// Assembles a DataGraph straight from a children-CSR, for callers that
  /// already hold the adjacency frozen (the live-update delta materializer
  /// pays this on every batch). Rows must be sorted ascending by target
  /// with no duplicate (from, to) pair — the invariant children(n) exposes.
  /// Validates shape and endpoint bounds, then derives the parent CSR and
  /// label buckets exactly as Build() would — or adopts `inverse` (shape-
  /// checked) when the caller patched them forward itself.
  static Result<DataGraph> FromChildCsr(
      SymbolTable symbols, std::vector<LabelId> labels, NodeId root,
      std::vector<uint32_t> child_offsets, std::vector<NodeId> child_targets,
      std::vector<EdgeKind> child_kinds,
      std::optional<InverseStructures> inverse = std::nullopt);

 private:
  static void DeriveInverseStructures(DataGraph* g);

  struct Edge {
    NodeId from;
    NodeId to;
    EdgeKind kind;
  };

  SymbolTable symbols_;
  bool edges_presorted_ = false;
  std::vector<LabelId> labels_;
  std::vector<Edge> edges_;
  NodeId root_ = 0;
};

}  // namespace mrx

#endif  // MRX_GRAPH_DATA_GRAPH_H_
