#include "storage/index_io.h"

#include <bit>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "storage/binary_io.h"

namespace mrx::storage {
namespace {

constexpr std::string_view kMagic = "MRX*";

/// Node id → ordinal (position among alive nodes) for one component.
std::unordered_map<IndexNodeId, uint32_t> OrdinalMap(const IndexGraph& g) {
  std::unordered_map<IndexNodeId, uint32_t> out;
  uint32_t ordinal = 0;
  for (IndexNodeId v : g.AliveNodes()) out.emplace(v, ordinal++);
  return out;
}

/// Version-1 extent body, also the body of a version-2 kSortedVector
/// record: member count then ascending varint deltas.
void EncodeSortedDeltas(const Extent& extent, BinaryWriter* blob) {
  blob->PutVarint(extent.size());
  NodeId prev = 0;
  for (NodeId o : extent) {
    blob->PutVarint(o - prev);
    prev = o;
  }
}

/// Version-2 extent record: one representation tag byte, then the payload
/// of that representation verbatim — a compressed index round-trips to
/// disk without decompressing.
void EncodeExtentV2(const Extent& extent, BinaryWriter* blob) {
  using extent_internal::BitmapChunk;
  blob->PutVarint(static_cast<uint64_t>(extent.rep()));
  switch (extent.rep()) {
    case ExtentRep::kSortedVector:
      EncodeSortedDeltas(extent, blob);
      return;
    case ExtentRep::kDeltaPacked: {
      const auto* p = extent.payload();
      blob->PutVarint(extent.size());
      blob->PutVarint(p->base);
      blob->PutVarint(p->delta_bits);
      blob->PutVarint(p->packed.size());
      for (uint64_t word : p->packed) blob->PutFixed64(word);
      return;
    }
    case ExtentRep::kHybridBitmap: {
      const auto* p = extent.payload();
      blob->PutVarint(extent.size());
      blob->PutVarint(p->chunks.size());
      for (const BitmapChunk& chunk : p->chunks) {
        blob->PutVarint(chunk.high);
        blob->PutVarint(static_cast<uint64_t>(chunk.kind));
        blob->PutVarint(chunk.count);
        if (chunk.kind == BitmapChunk::Kind::kBitmap) {
          for (uint64_t word : chunk.words) blob->PutFixed64(word);
        } else {
          blob->PutVarint(chunk.lows.size());
          for (uint16_t low : chunk.lows) blob->PutFixed16(low);
        }
      }
      return;
    }
  }
}

Result<Extent> DecodeSortedDeltas(BinaryReader* reader) {
  MRX_ASSIGN_OR_RETURN(uint64_t extent_size, reader->GetVarint());
  std::vector<NodeId> extent;
  extent.reserve(extent_size);
  NodeId prev = 0;
  for (uint64_t i = 0; i < extent_size; ++i) {
    MRX_ASSIGN_OR_RETURN(uint64_t delta, reader->GetVarint());
    prev += static_cast<NodeId>(delta);
    extent.push_back(prev);
  }
  // Normalized under the current representation mode — loading a version-1
  // (or vector-rep) extent upgrades it like a fresh build would.
  return Extent::FromSorted(std::move(extent));
}

Result<Extent> DecodeExtentV2(BinaryReader* reader) {
  using extent_internal::BitmapChunk;
  using extent_internal::ExtentPayload;
  MRX_ASSIGN_OR_RETURN(uint64_t rep_tag, reader->GetVarint());
  switch (static_cast<ExtentRep>(rep_tag)) {
    case ExtentRep::kSortedVector:
      return DecodeSortedDeltas(reader);
    case ExtentRep::kDeltaPacked: {
      auto p = std::make_shared<ExtentPayload>();
      p->rep = ExtentRep::kDeltaPacked;
      MRX_ASSIGN_OR_RETURN(uint64_t size, reader->GetVarint());
      p->size = static_cast<uint32_t>(size);
      MRX_ASSIGN_OR_RETURN(uint64_t base, reader->GetVarint());
      p->base = static_cast<NodeId>(base);
      MRX_ASSIGN_OR_RETURN(uint64_t bits, reader->GetVarint());
      if (bits > 32) return Status::ParseError("extent delta width > 32");
      p->delta_bits = static_cast<uint8_t>(bits);
      MRX_ASSIGN_OR_RETURN(uint64_t words, reader->GetVarint());
      const uint64_t needed =
          p->size <= 1 ? 0 : ((p->size - 1) * bits + 63) / 64;
      if (words != needed) {
        return Status::ParseError("extent packed-word count mismatch");
      }
      p->packed.reserve(words);
      for (uint64_t w = 0; w < words; ++w) {
        MRX_ASSIGN_OR_RETURN(uint64_t word, reader->GetFixed64());
        p->packed.push_back(word);
      }
      // The block skip index is derived, not serialized.
      extent_internal::FinalizeDeltaPayload(p.get());
      return Extent::FromPayload(std::move(p));
    }
    case ExtentRep::kHybridBitmap: {
      auto p = std::make_shared<ExtentPayload>();
      p->rep = ExtentRep::kHybridBitmap;
      MRX_ASSIGN_OR_RETURN(uint64_t size, reader->GetVarint());
      p->size = static_cast<uint32_t>(size);
      MRX_ASSIGN_OR_RETURN(uint64_t num_chunks, reader->GetVarint());
      uint64_t total = 0;
      for (uint64_t c = 0; c < num_chunks; ++c) {
        BitmapChunk chunk;
        MRX_ASSIGN_OR_RETURN(uint64_t high, reader->GetVarint());
        chunk.high = static_cast<uint16_t>(high);
        MRX_ASSIGN_OR_RETURN(uint64_t kind, reader->GetVarint());
        if (kind > 2) return Status::ParseError("bad extent chunk kind");
        chunk.kind = static_cast<BitmapChunk::Kind>(kind);
        MRX_ASSIGN_OR_RETURN(uint64_t count, reader->GetVarint());
        chunk.count = static_cast<uint32_t>(count);
        if (chunk.kind == BitmapChunk::Kind::kBitmap) {
          chunk.words.reserve(1024);
          uint64_t popcount = 0;
          for (size_t w = 0; w < 1024; ++w) {
            MRX_ASSIGN_OR_RETURN(uint64_t word, reader->GetFixed64());
            popcount += static_cast<uint64_t>(std::popcount(word));
            chunk.words.push_back(word);
          }
          if (popcount != chunk.count) {
            return Status::ParseError("extent bitmap popcount mismatch");
          }
        } else {
          MRX_ASSIGN_OR_RETURN(uint64_t lows, reader->GetVarint());
          chunk.lows.reserve(lows);
          for (uint64_t l = 0; l < lows; ++l) {
            MRX_ASSIGN_OR_RETURN(uint16_t low, reader->GetFixed16());
            chunk.lows.push_back(low);
          }
          if (chunk.kind == BitmapChunk::Kind::kArray) {
            if (chunk.lows.size() != chunk.count) {
              return Status::ParseError("extent array length mismatch");
            }
          } else {
            if (chunk.lows.size() % 2 != 0) {
              return Status::ParseError("extent run list has odd length");
            }
            uint64_t run_total = 0;
            for (size_t r = 1; r < chunk.lows.size(); r += 2) {
              run_total += static_cast<uint64_t>(chunk.lows[r]) + 1;
            }
            if (run_total != chunk.count) {
              return Status::ParseError("extent run lengths mismatch");
            }
          }
        }
        total += chunk.count;
        p->chunks.push_back(std::move(chunk));
      }
      if (total != p->size) {
        return Status::ParseError("extent chunk counts mismatch");
      }
      return Extent::FromPayload(std::move(p));
    }
    default:
      return Status::ParseError("unknown extent representation tag " +
                                std::to_string(rep_tag));
  }
}

}  // namespace

std::string EncodeComponentBlob(const MStarIndex& index, size_t component) {
  const IndexGraph& graph = index.component(component);
  std::unordered_map<IndexNodeId, uint32_t> prev_ordinals;
  if (component > 0) {
    prev_ordinals = OrdinalMap(index.component(component - 1));
  }

  BinaryWriter blob;
  blob.PutVarint(component);
  blob.PutVarint(graph.num_nodes());
  for (IndexNodeId v : graph.AliveNodes()) {
    const IndexGraph::Node& node = graph.node(v);
    blob.PutSignedVarint(node.k);
    if (component > 0) {
      blob.PutVarint(prev_ordinals.at(index.supernode(component, v)));
    }
    EncodeExtentV2(node.extent, &blob);
  }
  return blob.TakeBuffer();
}

Result<MStarComponentSpec> DecodeComponentBlob(std::string_view blob,
                                               uint64_t version) {
  if (version < kMStarOldestSupportedVersion ||
      version > kMStarFormatVersion) {
    return Status::ParseError("unsupported index container version " +
                              std::to_string(version));
  }
  BinaryReader reader(blob);
  MRX_ASSIGN_OR_RETURN(uint64_t component, reader.GetVarint());
  MRX_ASSIGN_OR_RETURN(uint64_t num_nodes, reader.GetVarint());
  MStarComponentSpec spec;
  spec.extents.reserve(num_nodes);
  spec.ks.reserve(num_nodes);
  for (uint64_t n = 0; n < num_nodes; ++n) {
    MRX_ASSIGN_OR_RETURN(int64_t k, reader.GetSignedVarint());
    spec.ks.push_back(static_cast<int32_t>(k));
    if (component > 0) {
      MRX_ASSIGN_OR_RETURN(uint64_t sup, reader.GetVarint());
      spec.supernodes.push_back(static_cast<uint32_t>(sup));
    }
    if (version == 1) {
      MRX_ASSIGN_OR_RETURN(Extent extent, DecodeSortedDeltas(&reader));
      spec.extents.push_back(std::move(extent));
    } else {
      MRX_ASSIGN_OR_RETURN(Extent extent, DecodeExtentV2(&reader));
      spec.extents.push_back(std::move(extent));
    }
  }
  if (component == 0) {
    spec.supernodes.assign(spec.extents.size(), 0);
  }
  return spec;
}

std::string SerializeMStarIndex(const MStarIndex& index) {
  std::vector<std::string> blobs;
  blobs.reserve(index.num_components());
  for (size_t i = 0; i < index.num_components(); ++i) {
    blobs.push_back(EncodeComponentBlob(index, i));
  }

  // Header: magic, version, component count, then the TOC with fixed-size
  // entries so offsets are computable before writing.
  BinaryWriter header;
  header.PutRaw(kMagic);
  header.PutFixed64(kMStarFormatVersion);
  header.PutFixed64(blobs.size());
  uint64_t offset = header.size() + blobs.size() * 24;  // 3 fixed64 each
  BinaryWriter toc;
  for (const std::string& blob : blobs) {
    toc.PutFixed64(offset);
    toc.PutFixed64(blob.size());
    toc.PutFixed64(Checksum(blob));
    offset += blob.size();
  }

  std::string out = header.TakeBuffer();
  out += toc.buffer();
  for (const std::string& blob : blobs) out += blob;
  return out;
}

Result<MStarFileToc> ReadMStarToc(std::string_view bytes,
                                  uint64_t total_size) {
  if (bytes.substr(0, kMagic.size()) != kMagic) {
    return Status::ParseError("not an MRX* index container");
  }
  BinaryReader reader(bytes.substr(kMagic.size()));
  MRX_ASSIGN_OR_RETURN(uint64_t version, reader.GetFixed64());
  if (version < kMStarOldestSupportedVersion ||
      version > kMStarFormatVersion) {
    return Status::ParseError("unsupported index container version " +
                              std::to_string(version));
  }
  MRX_ASSIGN_OR_RETURN(uint64_t count, reader.GetFixed64());
  MStarFileToc toc;
  toc.version = version;
  toc.components.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    MStarFileToc::Entry entry;
    MRX_ASSIGN_OR_RETURN(entry.offset, reader.GetFixed64());
    MRX_ASSIGN_OR_RETURN(entry.length, reader.GetFixed64());
    MRX_ASSIGN_OR_RETURN(entry.checksum, reader.GetFixed64());
    if (entry.offset + entry.length > total_size) {
      return Status::ParseError("index container TOC out of bounds");
    }
    toc.components.push_back(entry);
  }
  return toc;
}

Result<MStarIndex> DeserializeMStarIndex(const DataGraph& graph,
                                         std::string_view bytes) {
  MRX_ASSIGN_OR_RETURN(MStarFileToc toc, ReadMStarToc(bytes));
  std::vector<MStarComponentSpec> specs;
  specs.reserve(toc.components.size());
  for (const auto& entry : toc.components) {
    std::string_view blob = bytes.substr(entry.offset, entry.length);
    if (Checksum(blob) != entry.checksum) {
      return Status::ParseError("index component checksum mismatch");
    }
    MRX_ASSIGN_OR_RETURN(MStarComponentSpec spec,
                         DecodeComponentBlob(blob, toc.version));
    specs.push_back(std::move(spec));
  }
  return MStarIndex::FromComponents(graph, specs);
}

Status SaveMStarIndexToFile(const MStarIndex& index,
                            const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::NotFound("cannot open for writing: " + path);
  std::string bytes = SerializeMStarIndex(index);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

Result<MStarIndex> LoadMStarIndexFromFile(const DataGraph& graph,
                                          const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string bytes = buffer.str();
  return DeserializeMStarIndex(graph, bytes);
}

}  // namespace mrx::storage
