#include "storage/index_io.h"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "storage/binary_io.h"

namespace mrx::storage {
namespace {

constexpr std::string_view kMagic = "MRX*";
constexpr uint64_t kVersion = 1;

/// Node id → ordinal (position among alive nodes) for one component.
std::unordered_map<IndexNodeId, uint32_t> OrdinalMap(const IndexGraph& g) {
  std::unordered_map<IndexNodeId, uint32_t> out;
  uint32_t ordinal = 0;
  for (IndexNodeId v : g.AliveNodes()) out.emplace(v, ordinal++);
  return out;
}

}  // namespace

std::string EncodeComponentBlob(const MStarIndex& index, size_t component) {
  const IndexGraph& graph = index.component(component);
  std::unordered_map<IndexNodeId, uint32_t> prev_ordinals;
  if (component > 0) {
    prev_ordinals = OrdinalMap(index.component(component - 1));
  }

  BinaryWriter blob;
  blob.PutVarint(component);
  blob.PutVarint(graph.num_nodes());
  for (IndexNodeId v : graph.AliveNodes()) {
    const IndexGraph::Node& node = graph.node(v);
    blob.PutSignedVarint(node.k);
    if (component > 0) {
      blob.PutVarint(prev_ordinals.at(index.supernode(component, v)));
    }
    blob.PutVarint(node.extent.size());
    NodeId prev = 0;
    for (NodeId o : node.extent) {
      blob.PutVarint(o - prev);
      prev = o;
    }
  }
  return blob.TakeBuffer();
}

Result<MStarComponentSpec> DecodeComponentBlob(std::string_view blob) {
  BinaryReader reader(blob);
  MRX_ASSIGN_OR_RETURN(uint64_t component, reader.GetVarint());
  MRX_ASSIGN_OR_RETURN(uint64_t num_nodes, reader.GetVarint());
  MStarComponentSpec spec;
  spec.extents.reserve(num_nodes);
  spec.ks.reserve(num_nodes);
  for (uint64_t n = 0; n < num_nodes; ++n) {
    MRX_ASSIGN_OR_RETURN(int64_t k, reader.GetSignedVarint());
    spec.ks.push_back(static_cast<int32_t>(k));
    if (component > 0) {
      MRX_ASSIGN_OR_RETURN(uint64_t sup, reader.GetVarint());
      spec.supernodes.push_back(static_cast<uint32_t>(sup));
    }
    MRX_ASSIGN_OR_RETURN(uint64_t extent_size, reader.GetVarint());
    std::vector<NodeId> extent;
    extent.reserve(extent_size);
    NodeId prev = 0;
    for (uint64_t i = 0; i < extent_size; ++i) {
      MRX_ASSIGN_OR_RETURN(uint64_t delta, reader.GetVarint());
      prev += static_cast<NodeId>(delta);
      extent.push_back(prev);
    }
    spec.extents.push_back(std::move(extent));
  }
  if (component == 0) {
    spec.supernodes.assign(spec.extents.size(), 0);
  }
  return spec;
}

std::string SerializeMStarIndex(const MStarIndex& index) {
  std::vector<std::string> blobs;
  blobs.reserve(index.num_components());
  for (size_t i = 0; i < index.num_components(); ++i) {
    blobs.push_back(EncodeComponentBlob(index, i));
  }

  // Header: magic, version, component count, then the TOC with fixed-size
  // entries so offsets are computable before writing.
  BinaryWriter header;
  header.PutRaw(kMagic);
  header.PutFixed64(kVersion);
  header.PutFixed64(blobs.size());
  uint64_t offset = header.size() + blobs.size() * 24;  // 3 fixed64 each
  BinaryWriter toc;
  for (const std::string& blob : blobs) {
    toc.PutFixed64(offset);
    toc.PutFixed64(blob.size());
    toc.PutFixed64(Checksum(blob));
    offset += blob.size();
  }

  std::string out = header.TakeBuffer();
  out += toc.buffer();
  for (const std::string& blob : blobs) out += blob;
  return out;
}

Result<MStarFileToc> ReadMStarToc(std::string_view bytes,
                                  uint64_t total_size) {
  if (bytes.substr(0, kMagic.size()) != kMagic) {
    return Status::ParseError("not an MRX* index container");
  }
  BinaryReader reader(bytes.substr(kMagic.size()));
  MRX_ASSIGN_OR_RETURN(uint64_t version, reader.GetFixed64());
  if (version != kVersion) {
    return Status::ParseError("unsupported index container version " +
                              std::to_string(version));
  }
  MRX_ASSIGN_OR_RETURN(uint64_t count, reader.GetFixed64());
  MStarFileToc toc;
  toc.components.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    MStarFileToc::Entry entry;
    MRX_ASSIGN_OR_RETURN(entry.offset, reader.GetFixed64());
    MRX_ASSIGN_OR_RETURN(entry.length, reader.GetFixed64());
    MRX_ASSIGN_OR_RETURN(entry.checksum, reader.GetFixed64());
    if (entry.offset + entry.length > total_size) {
      return Status::ParseError("index container TOC out of bounds");
    }
    toc.components.push_back(entry);
  }
  return toc;
}

Result<MStarIndex> DeserializeMStarIndex(const DataGraph& graph,
                                         std::string_view bytes) {
  MRX_ASSIGN_OR_RETURN(MStarFileToc toc, ReadMStarToc(bytes));
  std::vector<MStarComponentSpec> specs;
  specs.reserve(toc.components.size());
  for (const auto& entry : toc.components) {
    std::string_view blob = bytes.substr(entry.offset, entry.length);
    if (Checksum(blob) != entry.checksum) {
      return Status::ParseError("index component checksum mismatch");
    }
    MRX_ASSIGN_OR_RETURN(MStarComponentSpec spec, DecodeComponentBlob(blob));
    specs.push_back(std::move(spec));
  }
  return MStarIndex::FromComponents(graph, specs);
}

Status SaveMStarIndexToFile(const MStarIndex& index,
                            const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::NotFound("cannot open for writing: " + path);
  std::string bytes = SerializeMStarIndex(index);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

Result<MStarIndex> LoadMStarIndexFromFile(const DataGraph& graph,
                                          const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string bytes = buffer.str();
  return DeserializeMStarIndex(graph, bytes);
}

}  // namespace mrx::storage
