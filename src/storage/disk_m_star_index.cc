#include "storage/disk_m_star_index.h"

#include <algorithm>
#include <fstream>

#include "storage/binary_io.h"

namespace mrx::storage {

Result<DiskMStarIndex> DiskMStarIndex::Open(const DataGraph& graph,
                                            const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + path);
  // The TOC lives at the front; read a bounded prefix.
  std::string head(4 + 16, '\0');
  in.read(head.data(), static_cast<std::streamsize>(head.size()));
  if (!in) return Status::ParseError("index container too small");
  if (std::string_view(head).substr(0, 4) != "MRX*") {
    return Status::ParseError("not an MRX* index container");
  }
  // Re-read with the full TOC once the component count is known: simplest
  // is to read the fixed-size region (magic + 2 fixed64 + count * 24).
  BinaryReader counter(std::string_view(head).substr(4));
  MRX_ASSIGN_OR_RETURN(uint64_t version, counter.GetFixed64());
  (void)version;  // Validated by ReadMStarToc below.
  MRX_ASSIGN_OR_RETURN(uint64_t count, counter.GetFixed64());
  if (count == 0 || count > 4096) {
    return Status::ParseError("implausible component count " +
                              std::to_string(count));
  }
  const size_t header_size = 4 + 16 + count * 24;
  std::string header_bytes(header_size, '\0');
  in.seekg(0);
  in.read(header_bytes.data(), static_cast<std::streamsize>(header_size));
  if (!in) return Status::ParseError("index container truncated (TOC)");
  // ReadMStarToc bounds-checks offsets against the view we hand it, so
  // extend the view to the real file size.
  in.seekg(0, std::ios::end);
  const uint64_t file_size = static_cast<uint64_t>(in.tellg());
  MRX_ASSIGN_OR_RETURN(MStarFileToc toc,
                       ReadMStarToc(header_bytes, file_size));
  if (toc.components.empty()) {
    return Status::ParseError("index container has no components");
  }
  return DiskMStarIndex(graph, path, std::move(toc));
}

Status DiskMStarIndex::EnsureLoaded(size_t i) {
  if (cache_[i].has_value()) return Status::Ok();
  const MStarFileToc::Entry& entry = toc_.components[i];
  std::ifstream in(path_, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + path_);
  std::string blob(entry.length, '\0');
  in.seekg(static_cast<std::streamoff>(entry.offset));
  in.read(blob.data(), static_cast<std::streamsize>(entry.length));
  if (!in) return Status::ParseError("component blob truncated");
  if (Checksum(blob) != entry.checksum) {
    return Status::ParseError("component blob checksum mismatch");
  }
  MRX_ASSIGN_OR_RETURN(MStarComponentSpec spec,
                       DecodeComponentBlob(blob, toc_.version));

  std::vector<uint32_t> block_of(graph_.num_nodes(),
                                 static_cast<uint32_t>(-1));
  for (uint32_t b = 0; b < spec.extents.size(); ++b) {
    for (NodeId o : spec.extents[b]) {
      if (o >= graph_.num_nodes() ||
          block_of[o] != static_cast<uint32_t>(-1)) {
        return Status::ParseError("component extents are not a partition");
      }
      block_of[o] = b;
    }
  }
  for (uint32_t b : block_of) {
    if (b == static_cast<uint32_t>(-1)) {
      return Status::ParseError("component extents do not cover the graph");
    }
  }
  cache_[i] = IndexGraph::FromPartition(
      graph_, block_of, static_cast<uint32_t>(spec.extents.size()),
      spec.ks);
  ++loaded_count_;
  bytes_read_ += entry.length;
  return Status::Ok();
}

Result<QueryResult> DiskMStarIndex::QueryNaive(const PathExpression& path) {
  const size_t ci = std::min(path.length(), num_components() - 1);
  MRX_RETURN_IF_ERROR(EnsureLoaded(ci));
  return AnswerOnIndex(component(ci), path, &evaluator_);
}

Result<QueryResult> DiskMStarIndex::QueryTopDown(
    const PathExpression& path) {
  if (path.HasDescendantAxis()) return QueryNaive(path);
  QueryResult result;
  const size_t finest = num_components() - 1;

  MRX_RETURN_IF_ERROR(EnsureLoaded(0));
  std::vector<IndexNodeId> q;
  {
    const IndexGraph& c0 = component(0);
    if (path.anchored()) {
      IndexNodeId root_node = c0.index_of(graph_.root());
      if (path.StepMatches(0, c0.node(root_node).label)) {
        q.push_back(root_node);
      }
    } else {
      for (IndexNodeId v = 0; v < c0.capacity(); ++v) {
        if (c0.alive(v) && path.StepMatches(0, c0.node(v).label)) {
          q.push_back(v);
        }
      }
    }
    result.stats.index_nodes_visited += q.size();
  }

  size_t current = 0;
  for (size_t step = 1; step < path.num_steps() && !q.empty(); ++step) {
    const size_t ci = std::min(step, finest);
    MRX_RETURN_IF_ERROR(EnsureLoaded(ci));
    const IndexGraph& comp = component(ci);

    std::vector<IndexNodeId> s;
    if (ci != current) {
      const IndexGraph& prev = component(current);
      std::vector<char> seen(comp.capacity(), 0);
      for (IndexNodeId u : q) {
        for (NodeId o : prev.node(u).extent) {
          IndexNodeId v = comp.index_of(o);
          if (!seen[v]) {
            seen[v] = 1;
            s.push_back(v);
          }
        }
      }
      result.stats.index_nodes_visited += s.size();
      current = ci;
    } else {
      s = std::move(q);
    }

    std::vector<IndexNodeId> next;
    std::vector<char> seen(comp.capacity(), 0);
    for (IndexNodeId u : s) {
      for (IndexNodeId v : comp.node(u).children) {
        if (path.StepMatches(step, comp.node(v).label) && !seen[v]) {
          seen[v] = 1;
          next.push_back(v);
        }
      }
    }
    result.stats.index_nodes_visited += next.size();
    q = std::move(next);
  }

  std::sort(q.begin(), q.end());
  result.target = q;
  const IndexGraph& comp = component(current);
  const int32_t needed = static_cast<int32_t>(path.length());
  for (IndexNodeId v : q) {
    const IndexGraph::Node& node = comp.node(v);
    if (node.k >= needed && !path.anchored()) {
      result.answer.insert(result.answer.end(), node.extent.begin(),
                           node.extent.end());
    } else {
      result.precise = false;
      for (NodeId o : node.extent) {
        if (evaluator_.HasIncomingPath(
                o, path, &result.stats.data_nodes_validated)) {
          result.answer.push_back(o);
        }
      }
    }
  }
  std::sort(result.answer.begin(), result.answer.end());
  return result;
}

}  // namespace mrx::storage
