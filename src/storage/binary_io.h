#ifndef MRX_STORAGE_BINARY_IO_H_
#define MRX_STORAGE_BINARY_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.h"
#include "util/status.h"

namespace mrx::storage {

/// \brief Append-only binary encoder: LEB128 varints, zigzag for signed,
/// length-prefixed strings. Accumulates into an owned buffer so callers
/// can compute offsets and checksums before committing bytes to a file.
class BinaryWriter {
 public:
  void PutVarint(uint64_t value) {
    while (value >= 0x80) {
      buffer_.push_back(static_cast<char>((value & 0x7F) | 0x80));
      value >>= 7;
    }
    buffer_.push_back(static_cast<char>(value));
  }

  void PutSignedVarint(int64_t value) {
    PutVarint((static_cast<uint64_t>(value) << 1) ^
              static_cast<uint64_t>(value >> 63));
  }

  void PutString(std::string_view s) {
    PutVarint(s.size());
    buffer_.append(s);
  }

  void PutFixed16(uint16_t value) {
    buffer_.push_back(static_cast<char>(value & 0xFF));
    buffer_.push_back(static_cast<char>((value >> 8) & 0xFF));
  }

  void PutFixed32(uint32_t value) {
    for (int i = 0; i < 4; ++i) {
      buffer_.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
    }
  }

  void PutFixed64(uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      buffer_.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
    }
  }

  void PutRaw(std::string_view bytes) { buffer_.append(bytes); }

  const std::string& buffer() const { return buffer_; }
  std::string TakeBuffer() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

/// \brief Bounds-checked binary decoder over a byte range; every getter
/// reports truncation/corruption through Status instead of crashing.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  Result<uint64_t> GetVarint() {
    uint64_t value = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= data_.size()) {
        return Status::ParseError("binary data truncated (varint)");
      }
      uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
      if (shift >= 63 && byte > 1) {
        return Status::ParseError("varint overflow");
      }
      value |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return value;
      shift += 7;
    }
  }

  Result<int64_t> GetSignedVarint() {
    MRX_ASSIGN_OR_RETURN(uint64_t raw, GetVarint());
    return static_cast<int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
  }

  Result<std::string> GetString() {
    MRX_ASSIGN_OR_RETURN(uint64_t size, GetVarint());
    if (size > Remaining()) {
      return Status::ParseError("binary data truncated (string)");
    }
    std::string out(data_.substr(pos_, size));
    pos_ += size;
    return out;
  }

  Result<uint16_t> GetFixed16() {
    if (Remaining() < 2) {
      return Status::ParseError("binary data truncated (fixed16)");
    }
    uint16_t value = static_cast<uint8_t>(data_[pos_++]);
    value = static_cast<uint16_t>(
        value | (static_cast<uint16_t>(static_cast<uint8_t>(data_[pos_++]))
                 << 8));
    return value;
  }

  Result<uint32_t> GetFixed32() {
    if (Remaining() < 4) {
      return Status::ParseError("binary data truncated (fixed32)");
    }
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_++]))
               << (8 * i);
    }
    return value;
  }

  Result<uint64_t> GetFixed64() {
    if (Remaining() < 8) {
      return Status::ParseError("binary data truncated (fixed64)");
    }
    uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_++]))
               << (8 * i);
    }
    return value;
  }

  size_t Remaining() const { return data_.size() - pos_; }
  size_t pos() const { return pos_; }
  bool AtEnd() const { return pos_ >= data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// FNV-1a checksum of a byte range (stored with every blob so corrupted
/// files fail loudly at load time).
inline uint64_t Checksum(std::string_view bytes) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace mrx::storage

#endif  // MRX_STORAGE_BINARY_IO_H_
