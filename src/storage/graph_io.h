#ifndef MRX_STORAGE_GRAPH_IO_H_
#define MRX_STORAGE_GRAPH_IO_H_

#include <string>

#include "graph/data_graph.h"
#include "util/result.h"

namespace mrx::storage {

/// \brief Serializes `graph` into a compact, checksummed binary blob
/// (magic "MRXG", version 1; labels interned once, node labels and
/// delta-encoded adjacency as varints).
std::string SerializeDataGraph(const DataGraph& graph);

/// \brief Reconstructs a DataGraph from SerializeDataGraph output.
/// Verifies magic, version and checksum; the result is value-identical to
/// the original (same node ids, labels, edges, kinds, root).
Result<DataGraph> DeserializeDataGraph(std::string_view bytes);

/// File convenience wrappers.
Status SaveDataGraphToFile(const DataGraph& graph, const std::string& path);
Result<DataGraph> LoadDataGraphFromFile(const std::string& path);

}  // namespace mrx::storage

#endif  // MRX_STORAGE_GRAPH_IO_H_
