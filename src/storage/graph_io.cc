#include "storage/graph_io.h"

#include <fstream>
#include <sstream>

#include "storage/binary_io.h"

namespace mrx::storage {
namespace {

constexpr std::string_view kMagic = "MRXG";
constexpr uint64_t kVersion = 1;

}  // namespace

std::string SerializeDataGraph(const DataGraph& graph) {
  BinaryWriter body;
  body.PutVarint(kVersion);

  // Label table, in id order.
  body.PutVarint(graph.symbols().size());
  for (LabelId l = 0; l < graph.symbols().size(); ++l) {
    body.PutString(graph.symbols().Name(l));
  }

  // Nodes.
  body.PutVarint(graph.num_nodes());
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    body.PutVarint(graph.label(n));
  }
  body.PutVarint(graph.root());

  // Adjacency: per node, delta-encoded sorted child list with kinds.
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    auto kids = graph.children(n);
    auto kinds = graph.child_kinds(n);
    body.PutVarint(kids.size());
    NodeId prev = 0;
    for (size_t i = 0; i < kids.size(); ++i) {
      body.PutVarint(kids[i] - prev);
      prev = kids[i];
      body.PutVarint(static_cast<uint64_t>(kinds[i]));
    }
  }

  BinaryWriter out;
  out.PutRaw(kMagic);
  out.PutVarint(body.size());
  out.PutFixed64(Checksum(body.buffer()));
  out.PutRaw(body.buffer());
  return out.TakeBuffer();
}

Result<DataGraph> DeserializeDataGraph(std::string_view bytes) {
  if (bytes.substr(0, kMagic.size()) != kMagic) {
    return Status::ParseError("not an MRXG data-graph blob");
  }
  BinaryReader header(bytes.substr(kMagic.size()));
  MRX_ASSIGN_OR_RETURN(uint64_t body_size, header.GetVarint());
  MRX_ASSIGN_OR_RETURN(uint64_t checksum, header.GetFixed64());
  std::string_view body_bytes =
      bytes.substr(kMagic.size() + header.pos());
  if (body_bytes.size() != body_size) {
    return Status::ParseError("data-graph blob truncated");
  }
  if (Checksum(body_bytes) != checksum) {
    return Status::ParseError("data-graph blob checksum mismatch");
  }

  BinaryReader body(body_bytes);
  MRX_ASSIGN_OR_RETURN(uint64_t version, body.GetVarint());
  if (version != kVersion) {
    return Status::ParseError("unsupported data-graph version " +
                              std::to_string(version));
  }

  DataGraphBuilder builder;
  MRX_ASSIGN_OR_RETURN(uint64_t num_labels, body.GetVarint());
  for (uint64_t l = 0; l < num_labels; ++l) {
    MRX_ASSIGN_OR_RETURN(std::string name, body.GetString());
    builder.symbols().Intern(name);
  }

  MRX_ASSIGN_OR_RETURN(uint64_t num_nodes, body.GetVarint());
  for (uint64_t n = 0; n < num_nodes; ++n) {
    MRX_ASSIGN_OR_RETURN(uint64_t label, body.GetVarint());
    if (label >= num_labels) {
      return Status::ParseError("node label out of range");
    }
    builder.AddNodeWithLabelId(static_cast<LabelId>(label));
  }
  MRX_ASSIGN_OR_RETURN(uint64_t root, body.GetVarint());
  builder.SetRoot(static_cast<NodeId>(root));

  for (uint64_t n = 0; n < num_nodes; ++n) {
    MRX_ASSIGN_OR_RETURN(uint64_t degree, body.GetVarint());
    NodeId prev = 0;
    for (uint64_t i = 0; i < degree; ++i) {
      MRX_ASSIGN_OR_RETURN(uint64_t delta, body.GetVarint());
      MRX_ASSIGN_OR_RETURN(uint64_t kind, body.GetVarint());
      if (kind > 1) return Status::ParseError("bad edge kind");
      NodeId target = prev + static_cast<NodeId>(delta);
      prev = target;
      builder.AddEdge(static_cast<NodeId>(n), target,
                      static_cast<EdgeKind>(kind));
    }
  }
  return std::move(builder).Build();
}

Status SaveDataGraphToFile(const DataGraph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::NotFound("cannot open for writing: " + path);
  std::string blob = SerializeDataGraph(graph);
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  out.flush();
  if (!out) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

Result<DataGraph> LoadDataGraphFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string bytes = buffer.str();
  return DeserializeDataGraph(bytes);
}

}  // namespace mrx::storage
