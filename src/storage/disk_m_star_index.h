#ifndef MRX_STORAGE_DISK_M_STAR_INDEX_H_
#define MRX_STORAGE_DISK_M_STAR_INDEX_H_

#include <optional>
#include <string>
#include <vector>

#include "index/evaluator.h"
#include "query/data_evaluator.h"
#include "storage/index_io.h"
#include "util/result.h"

namespace mrx::storage {

/// \brief A disk-resident M*(k)-index that loads component indexes
/// *selectively and incrementally during query processing* — the exact
/// structure the paper's §6 names as future work.
///
/// The "MRX*" container stores each component as an independent blob. A
/// query of length l only ever touches components I0..Il, so answering it
/// loads at most l+1 blobs; short queries on a deeply-refined index read
/// a tiny prefix of the file. Loaded components are cached for the
/// lifetime of the object. `components_loaded()` exposes how many blobs
/// have been materialized (tests and the storage bench assert on it).
///
/// The data graph stays in memory (it is needed for validation); only the
/// index is disk-resident.
class DiskMStarIndex {
 public:
  /// Opens a container written by SaveMStarIndexToFile. Reads only the
  /// header/TOC; no component is loaded yet. `graph` must be the data
  /// graph the index was built on and must outlive the object.
  static Result<DiskMStarIndex> Open(const DataGraph& graph,
                                     const std::string& path);

  DiskMStarIndex(DiskMStarIndex&&) = default;

  /// §4.1 QUERYTOPDOWN over lazily-loaded components: prefixes of length
  /// i run in component min(i, finest), so exactly
  /// min(length, finest) + 1 components are materialized.
  Result<QueryResult> QueryTopDown(const PathExpression& path);

  /// Naive evaluation: loads only component min(length, finest).
  Result<QueryResult> QueryNaive(const PathExpression& path);

  size_t num_components() const { return toc_.components.size(); }

  /// Number of component blobs materialized so far.
  size_t components_loaded() const { return loaded_count_; }

  /// Bytes of the container read so far (TOC excluded).
  uint64_t bytes_read() const { return bytes_read_; }

 private:
  DiskMStarIndex(const DataGraph& graph, std::string path, MStarFileToc toc)
      : graph_(graph),
        evaluator_(graph),
        path_(std::move(path)),
        toc_(std::move(toc)),
        cache_(toc_.components.size()) {}

  /// Materializes component `i` from disk if not cached.
  Status EnsureLoaded(size_t i);

  const IndexGraph& component(size_t i) const { return *cache_[i]; }

  const DataGraph& graph_;
  DataEvaluator evaluator_;
  std::string path_;
  MStarFileToc toc_;
  std::vector<std::optional<IndexGraph>> cache_;
  size_t loaded_count_ = 0;
  uint64_t bytes_read_ = 0;
};

}  // namespace mrx::storage

#endif  // MRX_STORAGE_DISK_M_STAR_INDEX_H_
