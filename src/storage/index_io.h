#ifndef MRX_STORAGE_INDEX_IO_H_
#define MRX_STORAGE_INDEX_IO_H_

#include <string>
#include <vector>

#include "index/m_star_index.h"
#include "util/result.h"

namespace mrx::storage {

/// \brief Serializes an M*(k)-index into the "MRX*" container format:
/// a header, a table of contents with one (offset, length, checksum)
/// entry per component, and one independently-decodable blob per
/// component. The per-component layout is what makes *selective* loading
/// possible (the paper's §6 future work — see DiskMStarIndex).
std::string SerializeMStarIndex(const MStarIndex& index);

/// \brief Reassembles a full in-memory M*(k)-index over `graph` (which
/// must be the same data graph the index was built on — extents are node
/// ids into it). Adjacency is recomputed from the graph; Properties 1-5
/// are re-verified.
Result<MStarIndex> DeserializeMStarIndex(const DataGraph& graph,
                                         std::string_view bytes);

/// File convenience wrappers.
Status SaveMStarIndexToFile(const MStarIndex& index,
                            const std::string& path);
Result<MStarIndex> LoadMStarIndexFromFile(const DataGraph& graph,
                                          const std::string& path);

/// Container format versions. Version 1 (the original format) stored every
/// extent as varint deltas of a sorted vector; version 2 (the Extent
/// redesign) tags each extent with its physical representation and stores
/// compressed payloads verbatim, so a hybrid-bitmap index round-trips
/// without decompressing. Readers accept both; writers emit the current
/// version.
inline constexpr uint64_t kMStarFormatVersion = 2;
inline constexpr uint64_t kMStarOldestSupportedVersion = 1;

/// Decoded container header (exposed for DiskMStarIndex and tests).
struct MStarFileToc {
  uint64_t version = kMStarFormatVersion;
  struct Entry {
    uint64_t offset = 0;  ///< Absolute byte offset of the component blob.
    uint64_t length = 0;
    uint64_t checksum = 0;
  };
  std::vector<Entry> components;
};

/// Parses just the header/TOC of an "MRX*" container (cheap: no component
/// blob is touched). `total_size` bounds the TOC's offsets — pass the
/// container's full byte size when `bytes` holds only its prefix.
Result<MStarFileToc> ReadMStarToc(std::string_view bytes,
                                  uint64_t total_size);
inline Result<MStarFileToc> ReadMStarToc(std::string_view bytes) {
  return ReadMStarToc(bytes, bytes.size());
}

/// Decodes one component blob (bounds given by the TOC) into a spec.
/// `version` selects the node encoding (pass the TOC's version when
/// decoding a file; defaults to the current format).
Result<MStarComponentSpec> DecodeComponentBlob(
    std::string_view blob, uint64_t version = kMStarFormatVersion);

/// Encodes one component of `index` as an independent blob (exposed for
/// tests).
std::string EncodeComponentBlob(const MStarIndex& index, size_t component);

}  // namespace mrx::storage

#endif  // MRX_STORAGE_INDEX_IO_H_
