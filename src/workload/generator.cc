#include "workload/generator.h"

#include <algorithm>

#include "util/rng.h"

namespace mrx {

std::vector<PathExpression> GenerateWorkload(const LabelPathSet& paths,
                                             const WorkloadOptions& options) {
  std::vector<PathExpression> queries;
  if (paths.paths.empty()) return queries;
  queries.reserve(options.num_queries);
  Rng rng(options.seed);

  while (queries.size() < options.num_queries) {
    const std::vector<LabelId>& labels =
        paths.paths[rng.Below(paths.paths.size())];
    const size_t n = labels.size() - 1;  // Path length in edges.
    const size_t start = rng.Below(n + 1);
    const size_t feasible =
        std::min(options.max_query_length, n - start);
    const size_t len = rng.Below(feasible + 1);
    std::vector<LabelId> slice(labels.begin() + start,
                               labels.begin() + start + len + 1);
    queries.emplace_back(std::move(slice), /*anchored=*/false);
  }
  return queries;
}

std::vector<double> QueryLengthHistogram(
    const std::vector<PathExpression>& queries, size_t max_length) {
  std::vector<double> fractions(max_length + 1, 0.0);
  if (queries.empty()) return fractions;
  for (const PathExpression& q : queries) {
    size_t len = std::min(q.length(), max_length);
    fractions[len] += 1.0;
  }
  for (double& f : fractions) f /= static_cast<double>(queries.size());
  return fractions;
}

}  // namespace mrx
