#include "workload/label_paths.h"

#include <algorithm>
#include <map>

#include "index/bisimulation.h"
#include "index/index_graph.h"

namespace mrx {

LabelPathSet EnumerateLabelPaths(
    const DataGraph& g, const LabelPathEnumerationOptions& options) {
  BisimulationPartition part = ComputeKBisimulation(g, /*k=*/-1);
  std::vector<int32_t> block_k(part.num_blocks, kInfiniteSimilarity);
  IndexGraph index =
      IndexGraph::FromPartition(g, part.block_of, part.num_blocks, block_k);

  LabelPathSet result;

  // DataGuide-style frontier: each distinct label sequence of the current
  // length, with the set of 1-index nodes its instances end at.
  struct Entry {
    std::vector<LabelId> labels;
    std::vector<IndexNodeId> nodes;  // sorted unique
  };
  std::vector<Entry> frontier;
  {
    Entry root_entry;
    root_entry.labels = {g.label(g.root())};
    root_entry.nodes = {index.index_of(g.root())};
    frontier.push_back(std::move(root_entry));
    result.paths.push_back(frontier.front().labels);
  }

  for (size_t depth = 1;
       depth <= options.max_length && !frontier.empty(); ++depth) {
    std::vector<Entry> next;
    for (const Entry& entry : frontier) {
      // Group the children of the whole node set by label.
      std::map<LabelId, std::vector<IndexNodeId>> by_label;
      for (IndexNodeId u : entry.nodes) {
        for (IndexNodeId v : index.node(u).children) {
          by_label[index.node(v).label].push_back(v);
        }
      }
      for (auto& [label, nodes] : by_label) {
        std::sort(nodes.begin(), nodes.end());
        nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
        Entry child;
        child.labels = entry.labels;
        child.labels.push_back(label);
        child.nodes = std::move(nodes);
        if (result.paths.size() >= options.max_paths) {
          result.truncated = true;
          return result;
        }
        result.paths.push_back(child.labels);
        next.push_back(std::move(child));
      }
    }
    frontier.swap(next);
  }
  return result;
}

}  // namespace mrx
