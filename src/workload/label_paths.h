#ifndef MRX_WORKLOAD_LABEL_PATHS_H_
#define MRX_WORKLOAD_LABEL_PATHS_H_

#include <cstdint>
#include <vector>

#include "graph/data_graph.h"

namespace mrx {

struct LabelPathEnumerationOptions {
  /// Maximum path length in edges (the paper uses 9: "the length limit
  /// prevents paths containing infinite loops from being generated").
  size_t max_length = 9;

  /// Safety cap on the number of distinct label paths returned.
  size_t max_paths = 500000;
};

struct LabelPathSet {
  /// Distinct rooted label paths (each starts with the root's label),
  /// ordered by length then lexicographically by label id.
  std::vector<std::vector<LabelId>> paths;

  /// True if max_paths stopped the enumeration early.
  bool truncated = false;
};

/// \brief Enumerates all distinct rooted label paths of `g` of length up to
/// `max_length` (the first stage of the paper's workload generator, §5).
///
/// Works on the 1-index (full bisimulation quotient) rather than the data
/// graph: the 1-index preserves the set of rooted label paths exactly and
/// is much smaller. Distinct label sequences are expanded DataGuide-style
/// (each sequence tracked with the set of index nodes it reaches), so the
/// work is proportional to the output, not to the number of node paths.
LabelPathSet EnumerateLabelPaths(const DataGraph& g,
                                 const LabelPathEnumerationOptions& options);

}  // namespace mrx

#endif  // MRX_WORKLOAD_LABEL_PATHS_H_
