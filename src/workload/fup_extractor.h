#ifndef MRX_WORKLOAD_FUP_EXTRACTOR_H_
#define MRX_WORKLOAD_FUP_EXTRACTOR_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "query/path_expression.h"

namespace mrx {

/// \brief The "FUP processor" of the paper's Figure 5: watches the query
/// stream and decides which path expressions are *frequently used* and
/// therefore worth refining the index for.
///
/// A query becomes a FUP once it has been observed `min_frequency` times;
/// it is reported exactly once (the refine processor only needs to act on
/// it once). Length-0 queries are never reported — a single label is
/// always answered precisely by any index in this library.
class FupExtractor {
 public:
  struct Options {
    /// Observations needed before a query counts as frequent. 1 treats
    /// every query as a FUP, reproducing the paper's §5 experiments where
    /// the whole 500-query workload is the FUP set.
    size_t min_frequency = 2;

    /// Upper bound on distinct queries tracked; once reached, queries not
    /// seen before are counted against nothing (a simple guard against
    /// adversarial churn; 0 = unlimited).
    size_t max_tracked = 100000;
  };

  FupExtractor() : FupExtractor(Options{}) {}
  explicit FupExtractor(Options options) : options_(options) {}

  /// Records one observation. Returns true if this observation promoted
  /// the query to FUP status (i.e. the caller should refine for it now).
  bool Observe(const PathExpression& query);

  /// Number of times `query` has been observed.
  size_t Frequency(const PathExpression& query) const;

  /// All queries promoted to FUPs so far, in promotion order.
  const std::vector<PathExpression>& fups() const { return fups_; }

  size_t num_tracked() const { return counts_.size(); }

 private:
  using Key = std::pair<bool, std::vector<LabelId>>;

  static Key KeyOf(const PathExpression& query) {
    return {query.anchored(), query.labels()};
  }

  Options options_;
  std::map<Key, size_t> counts_;
  std::vector<PathExpression> fups_;
};

}  // namespace mrx

#endif  // MRX_WORKLOAD_FUP_EXTRACTOR_H_
