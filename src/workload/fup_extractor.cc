#include "workload/fup_extractor.h"

namespace mrx {

bool FupExtractor::Observe(const PathExpression& query) {
  // Single labels need no refinement; descendant-axis expressions cannot
  // be certified by any finite local similarity.
  if (query.length() == 0 || query.HasDescendantAxis()) return false;
  Key key = KeyOf(query);
  auto it = counts_.find(key);
  if (it == counts_.end()) {
    if (options_.max_tracked != 0 && counts_.size() >= options_.max_tracked) {
      return false;
    }
    it = counts_.emplace(std::move(key), 0).first;
  }
  ++it->second;
  if (it->second == options_.min_frequency) {
    fups_.push_back(query);
    return true;
  }
  return false;
}

size_t FupExtractor::Frequency(const PathExpression& query) const {
  auto it = counts_.find(KeyOf(query));
  return it == counts_.end() ? 0 : it->second;
}

}  // namespace mrx
