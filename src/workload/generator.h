#ifndef MRX_WORKLOAD_GENERATOR_H_
#define MRX_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "query/path_expression.h"
#include "workload/label_paths.h"

namespace mrx {

struct WorkloadOptions {
  /// Number of path expression queries (the paper uses 500 per dataset).
  size_t num_queries = 500;

  /// Maximum query length in edges. The paper runs two variants: 9
  /// (Figures 10-17) and 4 (Figures 18-26).
  size_t max_query_length = 9;

  uint64_t seed = 1;
};

/// \brief The paper's synthetic workload generator (§5 "Query workload"):
/// pick a rooted label path at random, extract a subsequence with a random
/// start position and random feasible length (capped at max_query_length),
/// and prepend `//`. Random starts make short queries more likely than
/// long ones, matching the observation that short path expressions
/// dominate real workloads (Figures 8-9).
std::vector<PathExpression> GenerateWorkload(const LabelPathSet& paths,
                                             const WorkloadOptions& options);

/// \brief Fraction of queries at each length 0..max_length (the series of
/// Figures 8 and 9). Index i holds the fraction of queries of length i.
std::vector<double> QueryLengthHistogram(
    const std::vector<PathExpression>& queries, size_t max_length);

}  // namespace mrx

#endif  // MRX_WORKLOAD_GENERATOR_H_
