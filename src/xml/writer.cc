#include "xml/writer.h"

#include <vector>

#include "util/string_util.h"

namespace mrx::xml {

Result<std::string> WriteGraphAsXml(const DataGraph& graph,
                                    const XmlWriteOptions& options) {
  const size_t n = graph.num_nodes();

  // Verify the containment (regular-edge) structure is a tree rooted at
  // graph.root(), and collect per-node reference targets.
  std::vector<uint32_t> regular_in_degree(n, 0);
  std::vector<std::vector<NodeId>> ref_targets(n);
  std::vector<char> referenced(n, 0);
  for (NodeId u = 0; u < n; ++u) {
    auto kids = graph.children(u);
    auto kinds = graph.child_kinds(u);
    for (size_t i = 0; i < kids.size(); ++i) {
      if (kinds[i] == EdgeKind::kRegular) {
        ++regular_in_degree[kids[i]];
      } else {
        ref_targets[u].push_back(kids[i]);
        referenced[kids[i]] = 1;
      }
    }
  }
  if (regular_in_degree[graph.root()] != 0) {
    return Status::FailedPrecondition(
        "root has an incoming containment edge");
  }
  for (NodeId v = 0; v < n; ++v) {
    if (v == graph.root()) continue;
    if (regular_in_degree[v] != 1) {
      return Status::FailedPrecondition(
          "containment edges do not form a tree (node " +
          std::to_string(v) + " has " +
          std::to_string(regular_in_degree[v]) + " parents)");
    }
  }

  std::string out = "<?xml version=\"1.0\"?>\n";

  // Iterative DFS: entries are (node, depth, closing?) — a closing entry
  // emits the end tag.
  struct Frame {
    NodeId node;
    uint32_t depth;
    bool closing;
  };
  std::vector<Frame> stack = {{graph.root(), 0, false}};
  std::vector<char> visited(n, 0);

  auto emit_indent = [&](uint32_t depth) {
    if (options.indent) out.append(2 * static_cast<size_t>(depth), ' ');
  };

  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    if (frame.closing) {
      emit_indent(frame.depth);
      out += "</";
      out += graph.label_name(frame.node);
      out += ">";
      if (options.indent) out += "\n";
      continue;
    }
    if (visited[frame.node]) {
      return Status::FailedPrecondition(
          "containment edges contain a cycle");
    }
    visited[frame.node] = 1;

    emit_indent(frame.depth);
    out += "<";
    out += graph.label_name(frame.node);
    if (referenced[frame.node]) {
      out += " " + options.id_attribute + "=\"n" +
             std::to_string(frame.node) + "\"";
    }
    for (size_t i = 0; i < ref_targets[frame.node].size(); ++i) {
      out += " " + options.ref_attribute;
      if (i > 0) out += std::to_string(i + 1);
      out += "=\"n" + std::to_string(ref_targets[frame.node][i]) + "\"";
    }

    // Regular children, in ascending id order (= document order for
    // graphs that came from XML).
    std::vector<NodeId> kids;
    {
      auto children = graph.children(frame.node);
      auto kinds = graph.child_kinds(frame.node);
      for (size_t i = 0; i < children.size(); ++i) {
        if (kinds[i] == EdgeKind::kRegular) kids.push_back(children[i]);
      }
    }
    if (kids.empty()) {
      out += "/>";
      if (options.indent) out += "\n";
      continue;
    }
    out += ">";
    if (options.indent) out += "\n";
    stack.push_back({frame.node, frame.depth, true});
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back({*it, frame.depth + 1, false});
    }
  }
  return out;
}

}  // namespace mrx::xml
