#ifndef MRX_XML_WRITER_H_
#define MRX_XML_WRITER_H_

#include <string>

#include "graph/data_graph.h"
#include "util/result.h"

namespace mrx::xml {

/// Options for WriteGraphAsXml.
struct XmlWriteOptions {
  /// Attribute name used for generated element IDs.
  std::string id_attribute = "id";

  /// Attribute name used for reference edges.
  std::string ref_attribute = "ref";

  /// Pretty-print with two-space indentation.
  bool indent = true;
};

/// \brief Serializes a data graph back into an XML document.
///
/// The regular (containment) edges must form a tree over the nodes rooted
/// at graph.root() — which holds for every graph produced by
/// BuildGraphFromXml — otherwise the call fails with FailedPrecondition.
/// Reference edges become `ref` attributes pointing at generated `id`
/// attributes (nodes with several outgoing references get ref, ref2, ...).
/// Feeding the output back through BuildGraphFromXml (with the matching
/// id attribute) reproduces the graph exactly: same node ids (document
/// order), labels, and edge set.
Result<std::string> WriteGraphAsXml(const DataGraph& graph,
                                    const XmlWriteOptions& options = {});

}  // namespace mrx::xml

#endif  // MRX_XML_WRITER_H_
