#include "xml/parser.h"

#include <cctype>
#include <cstdint>
#include <string>

namespace mrx::xml {
namespace {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

/// Cursor over the input with line/column tracking for error messages.
class Cursor {
 public:
  explicit Cursor(std::string_view input) : input_(input) {}

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char PeekAt(size_t ahead) const {
    return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
  }

  char Advance() {
    char c = input_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  bool Consume(char c) {
    if (AtEnd() || Peek() != c) return false;
    Advance();
    return true;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (input_.substr(pos_).substr(0, lit.size()) != lit) return false;
    for (size_t i = 0; i < lit.size(); ++i) Advance();
    return true;
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }

  /// Advances until `lit` has just been consumed; false if it never occurs.
  bool SkipPast(std::string_view lit) {
    size_t found = input_.find(lit, pos_);
    if (found == std::string_view::npos) return false;
    while (pos_ < found + lit.size()) Advance();
    return true;
  }

  std::string_view Remaining() const { return input_.substr(pos_); }
  size_t pos() const { return pos_; }
  std::string_view Slice(size_t begin, size_t end) const {
    return input_.substr(begin, end - begin);
  }

  Status Error(std::string message) const {
    return Status::ParseError(message + " at " + std::to_string(line_) + ":" +
                              std::to_string(col_));
  }

 private:
  std::string_view input_;
  size_t pos_ = 0;
  uint32_t line_ = 1;
  uint32_t col_ = 1;
};

/// Recursive-descent parser state: cursor + handler + element stack.
class ParserImpl {
 public:
  ParserImpl(std::string_view input, ParseEventHandler* handler)
      : cur_(input), handler_(handler) {}

  Status Run() {
    MRX_RETURN_IF_ERROR(ParseProlog());
    if (cur_.AtEnd() || cur_.Peek() != '<') {
      return cur_.Error("expected document element");
    }
    MRX_RETURN_IF_ERROR(ParseElement());
    // Trailing misc: whitespace, comments, PIs.
    while (true) {
      cur_.SkipWhitespace();
      if (cur_.AtEnd()) return Status::Ok();
      if (cur_.ConsumeLiteral("<!--")) {
        if (!cur_.SkipPast("-->")) return cur_.Error("unterminated comment");
      } else if (cur_.ConsumeLiteral("<?")) {
        if (!cur_.SkipPast("?>")) return cur_.Error("unterminated PI");
      } else {
        return cur_.Error("content after document element");
      }
    }
  }

 private:
  Status ParseProlog() {
    while (true) {
      cur_.SkipWhitespace();
      if (cur_.ConsumeLiteral("<?")) {
        if (!cur_.SkipPast("?>")) {
          return cur_.Error("unterminated XML declaration or PI");
        }
      } else if (cur_.ConsumeLiteral("<!--")) {
        if (!cur_.SkipPast("-->")) return cur_.Error("unterminated comment");
      } else if (cur_.ConsumeLiteral("<!DOCTYPE")) {
        MRX_RETURN_IF_ERROR(SkipDoctype());
      } else {
        return Status::Ok();
      }
    }
  }

  /// Skips a DOCTYPE declaration, including a bracketed internal subset.
  Status SkipDoctype() {
    int depth = 0;
    while (!cur_.AtEnd()) {
      char c = cur_.Advance();
      if (c == '[') {
        ++depth;
      } else if (c == ']') {
        --depth;
      } else if (c == '>' && depth == 0) {
        return Status::Ok();
      }
    }
    return cur_.Error("unterminated DOCTYPE");
  }

  Status ParseName(std::string* out) {
    if (cur_.AtEnd() || !IsNameStartChar(cur_.Peek())) {
      return cur_.Error("expected a name");
    }
    size_t begin = cur_.pos();
    while (!cur_.AtEnd() && IsNameChar(cur_.Peek())) cur_.Advance();
    *out = std::string(cur_.Slice(begin, cur_.pos()));
    return Status::Ok();
  }

  /// Decodes one entity/char reference starting just after '&' into `out`.
  Status DecodeReference(std::string* out) {
    size_t begin = cur_.pos();
    while (!cur_.AtEnd() && cur_.Peek() != ';') {
      if (cur_.Peek() == '<' || cur_.Peek() == '&') {
        return cur_.Error("malformed entity reference");
      }
      cur_.Advance();
    }
    if (cur_.AtEnd()) return cur_.Error("unterminated entity reference");
    std::string_view name = cur_.Slice(begin, cur_.pos());
    cur_.Advance();  // ';'
    if (name == "lt") {
      *out += '<';
    } else if (name == "gt") {
      *out += '>';
    } else if (name == "amp") {
      *out += '&';
    } else if (name == "apos") {
      *out += '\'';
    } else if (name == "quot") {
      *out += '"';
    } else if (!name.empty() && name[0] == '#') {
      uint32_t code = 0;
      bool ok = false;
      if (name.size() > 2 && (name[1] == 'x' || name[1] == 'X')) {
        for (size_t i = 2; i < name.size(); ++i) {
          char c = name[i];
          uint32_t digit;
          if (c >= '0' && c <= '9') digit = c - '0';
          else if (c >= 'a' && c <= 'f') digit = 10 + (c - 'a');
          else if (c >= 'A' && c <= 'F') digit = 10 + (c - 'A');
          else return cur_.Error("bad hex character reference");
          code = code * 16 + digit;
          ok = true;
        }
      } else {
        for (size_t i = 1; i < name.size(); ++i) {
          char c = name[i];
          if (c < '0' || c > '9') {
            return cur_.Error("bad decimal character reference");
          }
          code = code * 10 + (c - '0');
          ok = true;
        }
      }
      if (!ok) return cur_.Error("empty character reference");
      AppendUtf8(code, out);
    } else {
      return cur_.Error("unknown entity '" + std::string(name) + "'");
    }
    return Status::Ok();
  }

  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      *out += static_cast<char>(code);
    } else if (code < 0x800) {
      *out += static_cast<char>(0xC0 | (code >> 6));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      *out += static_cast<char>(0xE0 | (code >> 12));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (code >> 18));
      *out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  Status ParseAttributeValue(std::string* out) {
    char quote = cur_.Peek();
    if (quote != '"' && quote != '\'') {
      return cur_.Error("expected quoted attribute value");
    }
    cur_.Advance();
    while (!cur_.AtEnd() && cur_.Peek() != quote) {
      char c = cur_.Peek();
      if (c == '<') return cur_.Error("'<' in attribute value");
      cur_.Advance();
      if (c == '&') {
        MRX_RETURN_IF_ERROR(DecodeReference(out));
      } else {
        *out += c;
      }
    }
    if (cur_.AtEnd()) return cur_.Error("unterminated attribute value");
    cur_.Advance();  // closing quote
    return Status::Ok();
  }

  /// Parses one element, assuming the cursor sits on its '<'.
  Status ParseElement() {
    cur_.Advance();  // '<'
    std::string name;
    MRX_RETURN_IF_ERROR(ParseName(&name));

    std::vector<Attribute> attributes;
    while (true) {
      cur_.SkipWhitespace();
      if (cur_.AtEnd()) return cur_.Error("unterminated start tag");
      char c = cur_.Peek();
      if (c == '>' || c == '/') break;
      Attribute attr;
      MRX_RETURN_IF_ERROR(ParseName(&attr.name));
      cur_.SkipWhitespace();
      if (!cur_.Consume('=')) return cur_.Error("expected '='");
      cur_.SkipWhitespace();
      MRX_RETURN_IF_ERROR(ParseAttributeValue(&attr.value));
      for (const Attribute& prev : attributes) {
        if (prev.name == attr.name) {
          return cur_.Error("duplicate attribute '" + attr.name + "'");
        }
      }
      attributes.push_back(std::move(attr));
    }

    if (cur_.Consume('/')) {
      if (!cur_.Consume('>')) return cur_.Error("expected '/>'");
      MRX_RETURN_IF_ERROR(handler_->StartElement(name, attributes));
      return handler_->EndElement(name);
    }
    cur_.Advance();  // '>'
    MRX_RETURN_IF_ERROR(handler_->StartElement(name, attributes));
    MRX_RETURN_IF_ERROR(ParseContent(name));
    return handler_->EndElement(name);
  }

  /// Parses element content up to and including the matching end tag.
  Status ParseContent(const std::string& element_name) {
    std::string text;
    auto flush_text = [&]() -> Status {
      if (text.empty()) return Status::Ok();
      Status s = handler_->CharacterData(text);
      text.clear();
      return s;
    };

    while (true) {
      if (cur_.AtEnd()) {
        return cur_.Error("unterminated element '" + element_name + "'");
      }
      char c = cur_.Peek();
      if (c == '<') {
        if (cur_.PeekAt(1) == '/') {
          MRX_RETURN_IF_ERROR(flush_text());
          cur_.Advance();  // '<'
          cur_.Advance();  // '/'
          std::string end_name;
          MRX_RETURN_IF_ERROR(ParseName(&end_name));
          cur_.SkipWhitespace();
          if (!cur_.Consume('>')) return cur_.Error("expected '>'");
          if (end_name != element_name) {
            return cur_.Error("mismatched end tag '</" + end_name +
                              ">' for '<" + element_name + ">'");
          }
          return Status::Ok();
        }
        if (cur_.ConsumeLiteral("<!--")) {
          MRX_RETURN_IF_ERROR(flush_text());
          if (!cur_.SkipPast("-->")) return cur_.Error("unterminated comment");
          continue;
        }
        if (cur_.ConsumeLiteral("<![CDATA[")) {
          size_t begin = cur_.pos();
          if (!cur_.SkipPast("]]>")) return cur_.Error("unterminated CDATA");
          text += cur_.Slice(begin, cur_.pos() - 3);
          continue;
        }
        if (cur_.ConsumeLiteral("<?")) {
          MRX_RETURN_IF_ERROR(flush_text());
          if (!cur_.SkipPast("?>")) return cur_.Error("unterminated PI");
          continue;
        }
        MRX_RETURN_IF_ERROR(flush_text());
        MRX_RETURN_IF_ERROR(ParseElement());
        continue;
      }
      cur_.Advance();
      if (c == '&') {
        MRX_RETURN_IF_ERROR(DecodeReference(&text));
      } else {
        text += c;
      }
    }
  }

  Cursor cur_;
  ParseEventHandler* handler_;
};

}  // namespace

Status Parser::Parse(std::string_view input, ParseEventHandler* handler) {
  // Skip a UTF-8 byte-order mark if present.
  if (input.size() >= 3 && input.substr(0, 3) == "\xEF\xBB\xBF") {
    input.remove_prefix(3);
  }
  ParserImpl impl(input, handler);
  return impl.Run();
}

}  // namespace mrx::xml
