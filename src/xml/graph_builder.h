#ifndef MRX_XML_GRAPH_BUILDER_H_
#define MRX_XML_GRAPH_BUILDER_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "graph/data_graph.h"
#include "util/result.h"
#include "xml/parser.h"

namespace mrx::xml {

/// Options controlling how an XML document maps onto the paper's
/// labeled-directed-graph model (§2).
struct GraphBuildOptions {
  /// Attribute treated as an ID definition (XML `ID` type). Case-sensitive.
  std::string id_attribute = "id";

  /// If true, after the parse every non-ID attribute whose value (or, for
  /// IDREFS, any whitespace-separated token of it) matches a declared ID
  /// produces a *reference edge* from the owning element to the identified
  /// element. This reproduces how XMark's seller/bidder/itemref and the
  /// NASA dataset's references become graph edges.
  bool resolve_references = true;

  /// If true, each attribute also becomes a child node labeled "@<name>"
  /// (some structural-index papers include attribute nodes; He & Yang do
  /// not, so the default is off).
  bool include_attribute_nodes = false;

  /// If true, each non-whitespace character-data run becomes a child node
  /// labeled "#text". Off by default: structural indexes summarize element
  /// structure only.
  bool include_text_nodes = false;
};

/// \brief Parses an XML document into a DataGraph.
///
/// Element nodes are labeled with their tag names; containment gives regular
/// edges; ID/IDREF attribute pairs give reference edges (see
/// GraphBuildOptions). The document element becomes the graph root.
Result<DataGraph> BuildGraphFromXml(std::string_view document,
                                    const GraphBuildOptions& options = {});

/// \brief The event handler behind BuildGraphFromXml, exposed so callers
/// with streaming input can drive it directly.
class GraphBuildingHandler : public ParseEventHandler {
 public:
  explicit GraphBuildingHandler(GraphBuildOptions options)
      : options_(std::move(options)) {}

  Status StartElement(std::string_view name,
                      const std::vector<Attribute>& attributes) override;
  Status EndElement(std::string_view name) override;
  Status CharacterData(std::string_view text) override;

  /// Finishes reference resolution and builds the graph. Call once, after
  /// the parse completed successfully.
  Result<DataGraph> Finish() &&;

  /// Number of attribute tokens that looked like references (matched some
  /// declared ID). Available after Finish() decides them; exposed for
  /// dataset statistics before Finish via pending counts.
  size_t num_elements() const { return num_elements_; }

 private:
  struct PendingRef {
    NodeId from;
    std::string value;  // attribute value, possibly IDREFS
  };

  GraphBuildOptions options_;
  DataGraphBuilder builder_;
  std::vector<NodeId> stack_;
  std::unordered_map<std::string, NodeId> ids_;
  std::vector<PendingRef> pending_refs_;
  size_t num_elements_ = 0;
  bool duplicate_id_ = false;
  std::string duplicate_id_value_;
};

}  // namespace mrx::xml

#endif  // MRX_XML_GRAPH_BUILDER_H_
