#ifndef MRX_XML_PARSER_H_
#define MRX_XML_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace mrx::xml {

/// A single attribute on a start tag; entity references in the value are
/// already decoded.
struct Attribute {
  std::string name;
  std::string value;
};

/// \brief Receiver of parse events, SAX-style.
///
/// Returning a non-OK Status from any callback aborts the parse and the
/// status is surfaced from Parser::Parse.
class ParseEventHandler {
 public:
  virtual ~ParseEventHandler() = default;

  /// `<name attr="v" ...>` or `<name .../>`; a self-closing tag produces a
  /// StartElement immediately followed by EndElement.
  virtual Status StartElement(std::string_view name,
                              const std::vector<Attribute>& attributes) = 0;

  /// `</name>`.
  virtual Status EndElement(std::string_view name) = 0;

  /// Character data between tags (entity references decoded; CDATA sections
  /// delivered verbatim). Whitespace-only runs are still reported.
  virtual Status CharacterData(std::string_view text) = 0;
};

/// \brief A small, dependency-free, non-validating XML parser.
///
/// Supports the subset of XML 1.0 that structural XML indexing needs:
///   - elements, attributes (single- or double-quoted), self-closing tags
///   - character data with the five predefined entities plus numeric
///     character references (`&#NN;`, `&#xHH;`)
///   - comments, processing instructions, CDATA sections
///   - an XML declaration and a DOCTYPE declaration (skipped, including an
///     internal subset)
/// Checks well-formedness: matching end tags, a single document element,
/// nothing but misc content outside it. DTD validation is not performed
/// (the paper's model is schemaless, semi-structured data).
class Parser {
 public:
  Parser() = default;

  /// Parses `input`, driving `handler`. On failure returns a ParseError
  /// whose message includes 1-based line:column.
  Status Parse(std::string_view input, ParseEventHandler* handler);
};

}  // namespace mrx::xml

#endif  // MRX_XML_PARSER_H_
