#include "xml/graph_builder.h"

#include <cctype>

#include "util/string_util.h"

namespace mrx::xml {

Status GraphBuildingHandler::StartElement(
    std::string_view name, const std::vector<Attribute>& attributes) {
  NodeId node = builder_.AddNode(name);
  ++num_elements_;
  if (stack_.empty()) {
    builder_.SetRoot(node);
  } else {
    builder_.AddEdge(stack_.back(), node, EdgeKind::kRegular);
  }
  stack_.push_back(node);

  for (const Attribute& attr : attributes) {
    if (attr.name == options_.id_attribute) {
      auto [it, inserted] = ids_.emplace(attr.value, node);
      if (!inserted && !duplicate_id_) {
        duplicate_id_ = true;
        duplicate_id_value_ = attr.value;
      }
      continue;
    }
    if (options_.resolve_references) {
      pending_refs_.push_back(PendingRef{node, attr.value});
    }
    if (options_.include_attribute_nodes) {
      NodeId attr_node = builder_.AddNode("@" + attr.name);
      builder_.AddEdge(node, attr_node, EdgeKind::kRegular);
    }
  }
  return Status::Ok();
}

Status GraphBuildingHandler::EndElement(std::string_view name) {
  (void)name;  // The parser already verified tag matching.
  stack_.pop_back();
  return Status::Ok();
}

Status GraphBuildingHandler::CharacterData(std::string_view text) {
  if (!options_.include_text_nodes || stack_.empty()) return Status::Ok();
  if (StripWhitespace(text).empty()) return Status::Ok();
  NodeId text_node = builder_.AddNode("#text");
  builder_.AddEdge(stack_.back(), text_node, EdgeKind::kRegular);
  return Status::Ok();
}

Result<DataGraph> GraphBuildingHandler::Finish() && {
  if (duplicate_id_) {
    return Status::ParseError("duplicate ID value '" + duplicate_id_value_ +
                              "'");
  }
  for (const PendingRef& ref : pending_refs_) {
    // Try the whole value first (IDREF), then whitespace-separated tokens
    // (IDREFS). Values that match no ID are plain data and are ignored.
    auto it = ids_.find(ref.value);
    if (it != ids_.end()) {
      builder_.AddEdge(ref.from, it->second, EdgeKind::kReference);
      continue;
    }
    size_t pos = 0;
    while (pos < ref.value.size()) {
      while (pos < ref.value.size() &&
             std::isspace(static_cast<unsigned char>(ref.value[pos]))) {
        ++pos;
      }
      size_t begin = pos;
      while (pos < ref.value.size() &&
             !std::isspace(static_cast<unsigned char>(ref.value[pos]))) {
        ++pos;
      }
      if (begin == pos) break;
      auto token_it = ids_.find(ref.value.substr(begin, pos - begin));
      if (token_it != ids_.end()) {
        builder_.AddEdge(ref.from, token_it->second, EdgeKind::kReference);
      }
    }
  }
  return std::move(builder_).Build();
}

Result<DataGraph> BuildGraphFromXml(std::string_view document,
                                    const GraphBuildOptions& options) {
  GraphBuildingHandler handler(options);
  Parser parser;
  Status s = parser.Parse(document, &handler);
  if (!s.ok()) return s;
  return std::move(handler).Finish();
}

}  // namespace mrx::xml
