#ifndef MRX_MUTATE_MUTABLE_GRAPH_H_
#define MRX_MUTATE_MUTABLE_GRAPH_H_

#include <cstdint>
#include <vector>

#include "graph/data_graph.h"
#include "mutate/mutation.h"
#include "util/result.h"
#include "util/status.h"

namespace mrx::mutate {

/// \brief The live, updatable twin of DataGraph.
///
/// DataGraph is frozen CSR — ideal for querying, useless for updates. A
/// MutableDataGraph holds the same graph in adjacency-list form under
/// *stable* node ids: ids are assigned once and never reused, so deletions
/// leave holes instead of shifting everyone else. Materialize() compacts
/// the alive nodes back into a fresh DataGraph plus the id maps the
/// incremental maintainer needs to carry partitions across versions.
///
/// Invariants mirrored from DataGraphBuilder::Build: at most one edge per
/// (from, to) pair (the builder deduplicates parallel edges), child lists
/// sorted ascending by target, parent lists sorted unique. Because stable
/// ids grow monotonically and compaction preserves ascending order, the
/// materialized CSR is byte-identical to what DataGraphBuilder would
/// produce from the same node/edge set (same symbol interning order).
class MutableDataGraph {
 public:
  struct AdjEntry {
    uint32_t to = 0;
    EdgeKind kind = EdgeKind::kRegular;
  };

  /// Seeds the live graph from `g`; stable id i is g's node i.
  explicit MutableDataGraph(const DataGraph& g);

  size_t num_alive() const { return num_alive_; }
  size_t num_stable_ids() const { return labels_.size(); }
  size_t num_edges() const { return num_edges_; }
  bool alive(uint32_t s) const { return alive_[s] != 0; }
  LabelId label(uint32_t s) const { return labels_[s]; }
  uint32_t root() const { return root_; }
  const SymbolTable& symbols() const { return symbols_; }
  const std::vector<AdjEntry>& children(uint32_t s) const {
    return children_[s];
  }
  const std::vector<uint32_t>& parents(uint32_t s) const {
    return parents_[s];
  }

  /// What one applied batch touched, in stable ids — the seed of the
  /// maintainer's dirty set.
  struct BatchTouch {
    std::vector<uint32_t> new_nodes;  ///< Appended, in op/spec order.
    /// Surviving nodes whose parent *set* changed (ref-edge endpoints and
    /// nodes stranded by a deletion), sorted unique.
    std::vector<uint32_t> parent_set_changed;
    /// Surviving nodes whose *child list* changed (append parents, ref-edge
    /// tails, parents severed from a deleted subtree), sorted unique —
    /// MaterializeAfter() streams every other node's CSR row straight from
    /// the previous version.
    std::vector<uint32_t> children_changed;
    bool any_deletion = false;
    size_t nodes_deleted = 0;
    size_t ref_edges_added = 0;
    size_t ref_edges_removed = 0;
  };

  /// Applies `batch` atomically: ops validate and apply in order; the
  /// first failure rolls back everything already applied and returns the
  /// failing op's error (annotated with its index). `compact_to_stable`
  /// translates the batch's node ids (the id space of the version the
  /// client read — see Mutation) into stable ids; pass the map from the
  /// last Materialize, or the identity for a never-materialized graph.
  Result<BatchTouch> ApplyBatch(const MutationBatch& batch,
                                const std::vector<uint32_t>& compact_to_stable);

  // --- Individual ops (stable ids; each validates, then applies) --------

  /// Returns the stable ids of the appended nodes, in spec order.
  Result<std::vector<uint32_t>> AppendSubtree(uint32_t parent,
                                              const SubtreeSpec& spec);

  struct DeleteReport {
    std::vector<uint32_t> removed;       ///< The doomed set, sorted.
    std::vector<uint32_t> ref_orphaned;  ///< Survivors that lost a ref
                                         ///< parent, sorted unique.
    /// Survivor-side adjacency entries the detach erased, recorded so a
    /// failing batch can roll the delete back exactly: children_[p] lost
    /// (s, kind); parents_[c] lost s.
    std::vector<std::tuple<uint32_t, uint32_t, EdgeKind>> severed_children;
    std::vector<std::pair<uint32_t, uint32_t>> severed_parents;
    size_t edges_removed = 0;
  };

  /// Removes `victim` and every node regular-reachable from it. Reference
  /// edges crossing into the doomed set are dropped (their sources keep
  /// dangling-free lists; their surviving targets are reported as
  /// stranded). Deleting the root is rejected.
  Result<DeleteReport> DeleteSubtree(uint32_t victim);

  Status AddRefEdge(uint32_t from, uint32_t to);
  Status RemoveRefEdge(uint32_t from, uint32_t to);

  /// The frozen-CSR view of the current version plus both id maps.
  struct Materialized {
    DataGraph graph;
    std::vector<uint32_t> stable_of;  ///< compact NodeId → stable id.
    std::vector<NodeId> compact_of;   ///< stable id → compact (kInvalidNode
                                      ///< for dead ids).
  };

  Result<Materialized> Materialize() const;

  /// Materialize(), but patching from the previous version instead of
  /// walking every adjacency list. When `touch` (the receipt of the one
  /// batch applied since `prev` was materialized) contains no deletion,
  /// every pre-existing node keeps its compact id, so unchanged CSR rows
  /// are streamed straight out of `prev` — turning the dominant cost of a
  /// small batch's materialization from O(V) scattered list walks into a
  /// sequential copy. Falls back to Materialize() whenever the
  /// preconditions do not hold.
  Result<Materialized> MaterializeAfter(const DataGraph& prev,
                                        const std::vector<uint32_t>& prev_stable_of,
                                        const BatchTouch& touch) const;

 private:
  struct UndoRecord;

  Status CheckNode(uint32_t s) const;

  SymbolTable symbols_;
  std::vector<LabelId> labels_;            // per stable id
  std::vector<uint8_t> alive_;             // per stable id
  std::vector<std::vector<AdjEntry>> children_;
  std::vector<std::vector<uint32_t>> parents_;
  uint32_t root_ = 0;
  size_t num_alive_ = 0;
  size_t num_edges_ = 0;  ///< Edges between alive nodes.
};

}  // namespace mrx::mutate

#endif  // MRX_MUTATE_MUTABLE_GRAPH_H_
