#include "mutate/incremental_maintainer.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "index/d_k_index.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mrx::mutate {
namespace {

/// Same tag word src/index/bisimulation.cc prefixes to frozen-node
/// signatures; the incremental signatures must match the full-round ones
/// bit for bit or clean-class joining breaks.
constexpr uint32_t kFrozenTag = static_cast<uint32_t>(-1);

/// Carried-class sentinel for nodes with no previous version (appended).
constexpr uint32_t kNoClass = static_cast<uint32_t>(-2);

uint64_t SigHash(const std::vector<uint32_t>& v) {
  uint64_t h = 1469598103934665603ULL;
  for (uint32_t w : v) {
    h ^= w;
    h *= 1099511628211ULL;
  }
  // Bit 0 doubles as the occupied marker in SigTable slots.
  return h | 1;
}

/// Flat signature interner for the incremental round: open-addressing table
/// whose keys live in one shared word arena. Replaces a pair of
/// unordered_map<vector<uint32_t>, ...> (clean + fresh) whose per-emplace
/// key copies and node allocations dominated small-cascade rounds. A single
/// table suffices because the old clean-before-fresh lookup order reduces
/// to two rules here: clean inserts shadow an existing fresh entry, and
/// duplicate clean signatures keep the first.
class SigTable {
 public:
  explicit SigTable(size_t expected) {
    size_t cap = 64;
    while (cap < expected * 2) cap <<= 1;
    slots_.assign(cap, Slot{});
    mask_ = cap - 1;
  }

  /// Registers a clean class under `sig`. First clean wins; a fresh entry
  /// with the same signature is converted in place.
  void InsertClean(const std::vector<uint32_t>& sig, uint32_t value) {
    const uint64_t h = SigHash(sig);
    Slot* s = Probe(sig, h);
    if (s->hash == 0) {
      Fill(s, sig, h, value, /*clean=*/true);
    } else if (!s->clean) {
      s->value = value;
      s->clean = true;
    }
  }

  /// Finds `sig`, inserting it as a fresh class with `fresh_value` on miss.
  /// Returns {assigned value, whether a fresh entry was created}.
  std::pair<uint32_t, bool> FindOrInsertFresh(const std::vector<uint32_t>& sig,
                                              uint32_t fresh_value) {
    const uint64_t h = SigHash(sig);
    Slot* s = Probe(sig, h);
    if (s->hash != 0) return {s->value, false};
    Fill(s, sig, h, fresh_value, /*clean=*/false);
    return {fresh_value, true};
  }

 private:
  struct Slot {
    uint64_t hash = 0;  // 0 = empty (SigHash never returns 0)
    uint32_t offset = 0;
    uint32_t len = 0;
    uint32_t value = 0;
    bool clean = false;
  };

  Slot* Probe(const std::vector<uint32_t>& sig, uint64_t h) {
    size_t i = static_cast<size_t>(h) & mask_;
    while (true) {
      Slot& s = slots_[i];
      if (s.hash == 0 ||
          (s.hash == h && s.len == sig.size() &&
           std::equal(sig.begin(), sig.end(), arena_.begin() + s.offset))) {
        return &s;
      }
      i = (i + 1) & mask_;
    }
  }

  void Fill(Slot* s, const std::vector<uint32_t>& sig, uint64_t h,
            uint32_t value, bool clean) {
    s->hash = h;
    s->offset = static_cast<uint32_t>(arena_.size());
    s->len = static_cast<uint32_t>(sig.size());
    s->value = value;
    s->clean = clean;
    arena_.insert(arena_.end(), sig.begin(), sig.end());
    if (++size_ * 4 > slots_.size() * 3) Grow();
  }

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    mask_ = slots_.size() - 1;
    for (const Slot& s : old) {
      if (s.hash == 0) continue;
      size_t i = static_cast<size_t>(s.hash) & mask_;
      while (slots_[i].hash != 0) i = (i + 1) & mask_;
      slots_[i] = s;
    }
  }

  std::vector<Slot> slots_;
  std::vector<uint32_t> arena_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

/// Node n's round signature against the previous level, matching
/// bisimulation.cc's BuildSignature exactly:
/// active -> [own block, sorted unique parent blocks],
/// frozen -> [kFrozenTag, own block].
template <typename Active>
void BuildSig(const DataGraph& g, const std::vector<uint32_t>& prev_block_of,
              const Active& active, NodeId n, std::vector<uint32_t>* sig) {
  sig->clear();
  if (active(n)) {
    sig->push_back(prev_block_of[n]);
    for (NodeId p : g.parents(n)) sig->push_back(prev_block_of[p]);
    std::sort(sig->begin() + 1, sig->end());
    sig->erase(std::unique(sig->begin() + 1, sig->end()), sig->end());
  } else {
    sig->push_back(kFrozenTag);
    sig->push_back(prev_block_of[n]);
  }
}

}  // namespace

std::vector<uint32_t> CanonicalBlockIds(const std::vector<uint32_t>& block_of,
                                        uint32_t num_blocks) {
  std::vector<uint32_t> renum(num_blocks, kNoClass);
  std::vector<uint32_t> out(block_of.size());
  uint32_t next = 0;
  for (size_t n = 0; n < block_of.size(); ++n) {
    uint32_t& r = renum[block_of[n]];
    if (r == kNoClass) r = next++;
    out[n] = r;
  }
  return out;
}

void IncrementalMaintainer::FinishLevel(Level* lvl,
                                        std::vector<uint32_t>&& block_of,
                                        uint32_t id_bound,
                                        bool canonicalize) const {
  const size_t num_nodes = block_of.size();
  uint32_t num_blocks = id_bound;
  if (canonicalize) {
    // Renumber and count in one pass: canonical ids are assigned in first-
    // occurrence order, so extent_offsets can accumulate counts as they go.
    if (scratch_renum_.size() < id_bound) scratch_renum_.resize(id_bound);
    std::fill(scratch_renum_.begin(), scratch_renum_.begin() + id_bound,
              kNoClass);
    lvl->extent_offsets.assign(static_cast<size_t>(id_bound) + 1, 0);
    uint32_t next = 0;
    for (size_t n = 0; n < num_nodes; ++n) {
      uint32_t& r = scratch_renum_[block_of[n]];
      if (r == kNoClass) r = next++;
      block_of[n] = r;
      ++lvl->extent_offsets[r + 1];
    }
    num_blocks = next;
    lvl->extent_offsets.resize(static_cast<size_t>(num_blocks) + 1);
  } else {
    lvl->extent_offsets.assign(static_cast<size_t>(num_blocks) + 1, 0);
    for (size_t n = 0; n < num_nodes; ++n) {
      ++lvl->extent_offsets[block_of[n] + 1];
    }
  }
  for (uint32_t b = 0; b < num_blocks; ++b) {
    lvl->extent_offsets[b + 1] += lvl->extent_offsets[b];
  }
  lvl->block_of = std::move(block_of);
  lvl->num_blocks = num_blocks;
  lvl->extent_nodes.resize(num_nodes);
  if (scratch_cursor_.size() < num_blocks) scratch_cursor_.resize(num_blocks);
  std::copy(lvl->extent_offsets.begin(), lvl->extent_offsets.end() - 1,
            scratch_cursor_.begin());
  for (size_t n = 0; n < num_nodes; ++n) {
    lvl->extent_nodes[scratch_cursor_[lvl->block_of[n]]++] =
        static_cast<NodeId>(n);
  }
}

void IncrementalMaintainer::PatchLevelAppendOnly(Level* lvl,
                                                 size_t old_num_nodes,
                                                 uint32_t old_blocks,
                                                 uint32_t id_bound) const {
  const size_t num_nodes = lvl->block_of.size();
  // Old classes keep their canonical ids (their first occurrences are old
  // nodes, all below every appended id); fresh classes are renumbered by
  // first occurrence in the appended tail.
  if (scratch_renum_.size() < id_bound) scratch_renum_.resize(id_bound);
  std::fill(scratch_renum_.begin() + old_blocks,
            scratch_renum_.begin() + id_bound, kNoClass);
  uint32_t next = old_blocks;
  for (size_t n = old_num_nodes; n < num_nodes; ++n) {
    uint32_t& b = lvl->block_of[n];
    if (b >= old_blocks) {
      uint32_t& r = scratch_renum_[b];
      if (r == kNoClass) r = next++;
      b = r;
    }
  }
  const uint32_t num_blocks = next;

  // Per-block appended-member counts, then new offsets = old width + count.
  if (scratch_counts_.size() < num_blocks) scratch_counts_.resize(num_blocks);
  std::fill(scratch_counts_.begin(), scratch_counts_.begin() + num_blocks, 0);
  for (size_t n = old_num_nodes; n < num_nodes; ++n) {
    ++scratch_counts_[lvl->block_of[n]];
  }
  if (scratch_cursor_.size() < static_cast<size_t>(old_blocks) + 1) {
    scratch_cursor_.resize(static_cast<size_t>(old_blocks) + 1);
  }
  std::copy(lvl->extent_offsets.begin(), lvl->extent_offsets.end(),
            scratch_cursor_.begin());  // Old offsets survive the rewrite.
  lvl->extent_offsets.resize(static_cast<size_t>(num_blocks) + 1);
  lvl->extent_offsets[0] = 0;
  for (uint32_t b = 0; b < num_blocks; ++b) {
    const uint32_t old_len =
        b < old_blocks ? scratch_cursor_[b + 1] - scratch_cursor_[b] : 0;
    lvl->extent_offsets[b + 1] =
        lvl->extent_offsets[b] + old_len + scratch_counts_[b];
  }

  // Backward merge: shift the old buckets right (highest first — every
  // destination sits at or right of its source, and right of any lower
  // bucket's source), then drop the appended ids into each bucket's tail
  // slots back-to-front so they land ascending. Appended compact ids all
  // exceed the old ones, so buckets stay ascending.
  lvl->extent_nodes.resize(num_nodes);
  for (uint32_t b = old_blocks; b-- > 0;) {
    const uint32_t src_begin = scratch_cursor_[b];
    const uint32_t src_end = scratch_cursor_[b + 1];
    const uint32_t dst_begin = lvl->extent_offsets[b];
    if (dst_begin != src_begin) {
      std::copy_backward(
          lvl->extent_nodes.begin() + src_begin,
          lvl->extent_nodes.begin() + src_end,
          lvl->extent_nodes.begin() + dst_begin + (src_end - src_begin));
    }
  }
  for (uint32_t b = 0; b < num_blocks; ++b) {
    scratch_counts_[b] = lvl->extent_offsets[b + 1];
  }
  for (size_t n = num_nodes; n-- > old_num_nodes;) {
    lvl->extent_nodes[--scratch_counts_[lvl->block_of[n]]] =
        static_cast<NodeId>(n);
  }
  lvl->num_blocks = num_blocks;
}

namespace {

/// Borrowed view of a maintained level (the Level struct itself is private
/// to IncrementalMaintainer).
struct LevelView {
  const std::vector<uint32_t>& block_of;
  uint32_t num_blocks;
  const std::vector<uint32_t>& extent_offsets;
  const std::vector<NodeId>& extent_nodes;
};

/// One incremental refinement round: re-signs the dirty nodes of level i
/// against the (already updated) level i-1 in `prev` and assigns each to
/// the clean class with an equal signature, or to a fresh class (ids from
/// old_num_blocks up). `cur` carries the old level-i class per node
/// (kNoClass for new nodes) and receives the assignments; nodes whose
/// assignment differs from the carried class land in `changed`. Returns the
/// id bound (old_num_blocks + fresh classes) for the canonical renumber.
///
/// Clean-class candidates are found by scanning the level-(i-1) extent
/// bucket each dirty node occupies: every class that could absorb the node
/// has all its clean members in exactly that bucket (equal signatures imply
/// an equal own-block word). Per-bucket and per-class memoization keeps the
/// scan linear in the touched buckets.
template <typename Active>
uint32_t IncrementalRound(const DataGraph& g, const LevelView& prev,
                          const Active& active,
                          const std::vector<NodeId>& dirty,
                          const std::vector<uint8_t>& dirty_mask,
                          uint32_t old_num_blocks, std::vector<uint32_t>* cur,
                          std::vector<NodeId>* changed,
                          std::vector<uint8_t>* changed_mask,
                          std::vector<uint32_t>* bucket_stamp,
                          std::vector<uint32_t>* class_stamp, uint32_t epoch) {
  SigTable sigs(dirty.size() + 16);
  // The probe memos are epoch-stamped scratch: clearing bitmaps here would
  // cost O(num_blocks) per level, dwarfing small cascades.
  if (bucket_stamp->size() < prev.num_blocks) {
    bucket_stamp->resize(prev.num_blocks, 0);
  }
  if (class_stamp->size() < old_num_blocks) {
    class_stamp->resize(old_num_blocks, 0);
  }
  std::vector<uint32_t> sig;
  uint32_t fresh = 0;
  for (NodeId v : dirty) {
    const uint32_t bucket = prev.block_of[v];
    if ((*bucket_stamp)[bucket] != epoch) {
      (*bucket_stamp)[bucket] = epoch;
      for (uint32_t idx = prev.extent_offsets[bucket];
           idx < prev.extent_offsets[bucket + 1]; ++idx) {
        const NodeId u = prev.extent_nodes[idx];
        if (dirty_mask[u]) continue;
        const uint32_t c = (*cur)[u];
        if ((*class_stamp)[c] == epoch) continue;
        (*class_stamp)[c] = epoch;
        BuildSig(g, prev.block_of, active, u, &sig);
        sigs.InsertClean(sig, c);
      }
    }
    BuildSig(g, prev.block_of, active, v, &sig);
    auto [assign, inserted] = sigs.FindOrInsertFresh(sig, old_num_blocks + fresh);
    if (inserted) ++fresh;
    if (assign != (*cur)[v]) {
      (*cur)[v] = assign;
      if (!(*changed_mask)[v]) {
        (*changed_mask)[v] = 1;
        changed->push_back(v);
      }
    }
  }
  return old_num_blocks + fresh;
}

}  // namespace

IncrementalMaintainer::IncrementalMaintainer(const DataGraph& g,
                                             MaintainerOptions options)
    : live_(g), options_(std::move(options)) {
  Result<MutableDataGraph::Materialized> mat = live_.Materialize();
  if (!mat.ok()) std::abort();  // Unreachable: the seed graph has a root.
  graph_ = std::make_shared<DataGraph>(std::move(mat->graph));
  stable_of_ = std::move(mat->stable_of);
  compact_of_ = std::move(mat->compact_of);
  if (options_.k_max < 0) options_.k_max = 0;
  RebuildAChain();
  if (options_.maintain_dk) RebuildDChain();
}

void IncrementalMaintainer::RebuildAChain() {
  const DataGraph& g = *graph_;
  a_chain_.levels.assign(static_cast<size_t>(options_.k_max) + 1, Level{});
  UpdateLevelZero(&a_chain_);
  BisimulationPartition part;
  part.block_of = a_chain_.levels[0].block_of;
  part.num_blocks = a_chain_.levels[0].num_blocks;
  for (int i = 1; i <= options_.k_max; ++i) {
    RefineBisimulationRound(g, &part, RefineOptions{options_.pool});
    FinishLevel(&a_chain_.levels[i], std::vector<uint32_t>(part.block_of),
                part.num_blocks, /*canonicalize=*/true);
  }
}

void IncrementalMaintainer::RebuildDChain() {
  const DataGraph& g = *graph_;
  dk_kreq_ = ComputeDkLabelRequirements(g, options_.dk_fups);
  int32_t max_k = 0;
  for (int32_t k : dk_kreq_) max_k = std::max(max_k, k);
  d_chain_.levels.assign(static_cast<size_t>(max_k) + 1, Level{});
  UpdateLevelZero(&d_chain_);
  BisimulationPartition part;
  part.block_of = d_chain_.levels[0].block_of;
  part.num_blocks = d_chain_.levels[0].num_blocks;
  for (int32_t i = 1; i <= max_k; ++i) {
    RefineDkConstructRound(g, &part, dk_kreq_, i,
                           RefineOptions{options_.pool});
    FinishLevel(&d_chain_.levels[i], std::vector<uint32_t>(part.block_of),
                part.num_blocks, /*canonicalize=*/true);
  }
}

void IncrementalMaintainer::UpdateLevelZero(Chain* chain, bool append_only,
                                            size_t old_num_nodes) const {
  const DataGraph& g = *graph_;
  const size_t num_nodes = g.num_nodes();
  Level& lvl = chain->levels[0];
  if (append_only && lvl.block_of.size() == old_num_nodes &&
      old_num_nodes > 0) {
    // Labels of existing nodes never change: classify just the appended
    // tail against the level's label → block map and patch the extents.
    const size_t num_labels = g.symbols().size();
    if (scratch_renum_.size() < num_labels) scratch_renum_.resize(num_labels);
    std::fill(scratch_renum_.begin(), scratch_renum_.begin() + num_labels,
              kNoClass);
    const uint32_t old_blocks = lvl.num_blocks;
    for (uint32_t b = 0; b < old_blocks; ++b) {
      scratch_renum_[g.label(lvl.extent_nodes[lvl.extent_offsets[b]])] = b;
    }
    lvl.block_of.resize(num_nodes);
    uint32_t next = old_blocks;
    for (size_t n = old_num_nodes; n < num_nodes; ++n) {
      uint32_t& b = scratch_renum_[g.label(static_cast<NodeId>(n))];
      if (b == kNoClass) b = next++;
      lvl.block_of[n] = b;
    }
    // Fresh label blocks were assigned in ascending node order, so the
    // patch's fresh-class renumber is the identity.
    PatchLevelAppendOnly(&lvl, old_num_nodes, old_blocks, next);
    return;
  }
  // Level-0 blocks are the graph's label buckets, numbered by first
  // occurrence in node order; each block's extent is exactly
  // nodes_with_label(its label), already ascending — so the extents are
  // sequential bucket copies, not a scatter.
  const size_t num_labels = g.symbols().size();
  if (scratch_renum_.size() < num_labels) scratch_renum_.resize(num_labels);
  std::fill(scratch_renum_.begin(), scratch_renum_.begin() + num_labels,
            kNoClass);
  std::vector<LabelId> label_of_block;
  label_of_block.reserve(num_labels);
  lvl.block_of.resize(num_nodes);
  uint32_t num = 0;
  for (NodeId n = 0; n < num_nodes; ++n) {
    uint32_t& b = scratch_renum_[g.label(n)];
    if (b == kNoClass) {
      b = num++;
      label_of_block.push_back(g.label(n));
    }
    lvl.block_of[n] = b;
  }
  lvl.num_blocks = num;
  lvl.extent_offsets.resize(static_cast<size_t>(num) + 1);
  lvl.extent_offsets[0] = 0;
  lvl.extent_nodes.resize(num_nodes);
  size_t at = 0;
  for (uint32_t b = 0; b < num; ++b) {
    const auto bucket = g.nodes_with_label(label_of_block[b]);
    std::copy(bucket.begin(), bucket.end(), lvl.extent_nodes.begin() + at);
    at += bucket.size();
    lvl.extent_offsets[b + 1] = static_cast<uint32_t>(at);
  }
}

void IncrementalMaintainer::UpdateChain(
    Chain* chain, const std::vector<int32_t>* kreq, const DataGraph& g,
    const std::vector<NodeId>& new_nodes, const std::vector<NodeId>& seed,
    const std::vector<NodeId>* new_to_old, size_t old_num_nodes,
    bool any_deletion, BatchReceipt* receipt) {
  const size_t num_nodes = g.num_nodes();
  // Append-only batches (no deletion, no old node's parent set touched) add
  // no edges into old nodes, and bisimilarity is incoming-path defined: no
  // old node's signature — hence no old class — can move at any level. The
  // whole update is classifying the appended tail, so every level is
  // extended and patched in place instead of carried and rebuilt.
  const bool append_only = !any_deletion && seed.size() == new_nodes.size() &&
                           !new_nodes.empty();
  UpdateLevelZero(chain, append_only, old_num_nodes);
  // Level 0 is the label partition: an existing node's class is its label,
  // so only the appended nodes count as changed.
  std::vector<NodeId> changed(new_nodes);
  bool all_changed = false;

  // Survivor runs of a deletion batch: maximal id ranges the compaction
  // left contiguous. The per-level class carry is then a few bulk copies
  // instead of an O(V) per-node map lookup.
  struct Run {
    NodeId new_start;
    NodeId old_start;
    uint32_t len;
  };
  std::vector<Run> runs;
  size_t first_new = num_nodes - new_nodes.size();
  if (any_deletion) {
    for (NodeId n = 0; n < first_new;) {
      const NodeId old_start = (*new_to_old)[n];
      NodeId end = n + 1;
      while (end < first_new &&
             (*new_to_old)[end] == old_start + (end - n)) {
        ++end;
      }
      runs.push_back({n, old_start, end - n});
      n = end;
    }
  }

  std::vector<uint8_t> dirty_mask;
  std::vector<NodeId> dirty;
  std::vector<uint8_t> changed_mask;
  std::vector<uint32_t> cur_storage;
  for (size_t i = 1; i < chain->levels.size(); ++i) {
    Level& lvl = chain->levels[i];
    const Level& prev = chain->levels[i - 1];

    size_t dirty_count = num_nodes;
    if (!all_changed) {
      dirty_mask.assign(num_nodes, 0);
      dirty.clear();
      auto add = [&](NodeId n) {
        if (!dirty_mask[n]) {
          dirty_mask[n] = 1;
          dirty.push_back(n);
        }
      };
      // New nodes and parent-set changes seed every level (a parent swap
      // whose old and new parents agree up to level i-1 first bites here);
      // a node whose own level-(i-1) class moved re-signs, and so do its
      // children (its class id is one of their signature words).
      for (NodeId n : seed) add(n);
      for (NodeId c : changed) {
        add(c);
        for (NodeId child : g.children(c)) add(child);
      }
      dirty_count = dirty.size();
    }
    receipt->dirty_nodes += dirty_count;

    if (all_changed ||
        static_cast<double>(dirty_count) >
            options_.rebuild_threshold * static_cast<double>(num_nodes)) {
      // Fallback: one full refinement round seeded from the maintained
      // level i-1. Its output numbering is first-occurrence (canonical)
      // both when it refines and when it is a fixpoint no-op over the
      // already-canonical previous level.
      BisimulationPartition part;
      part.block_of = prev.block_of;
      part.num_blocks = prev.num_blocks;
      if (kreq != nullptr) {
        RefineDkConstructRound(g, &part, *kreq, static_cast<int32_t>(i),
                               RefineOptions{options_.pool});
      } else {
        RefineBisimulationRound(g, &part, RefineOptions{options_.pool});
      }
      FinishLevel(&lvl, std::move(part.block_of), part.num_blocks,
                  /*canonicalize=*/false);
      all_changed = true;
      ++receipt->full_rounds;
      continue;
    }

    // Carry the old level-i classes into the new id space.
    const uint32_t old_blocks = lvl.num_blocks;
    std::vector<uint32_t>* cur;
    if (append_only) {
      // In place: the old prefix already is the carried classes.
      lvl.block_of.resize(num_nodes);
      std::fill(lvl.block_of.begin() + old_num_nodes, lvl.block_of.end(),
                kNoClass);
      cur = &lvl.block_of;
    } else {
      cur_storage.resize(num_nodes);
      if (!any_deletion) {
        // Appends never shift compact ids: the old nodes are the prefix.
        std::copy(lvl.block_of.begin(), lvl.block_of.end(),
                  cur_storage.begin());
      } else {
        for (const Run& r : runs) {
          std::copy_n(lvl.block_of.data() + r.old_start, r.len,
                      cur_storage.data() + r.new_start);
        }
      }
      std::fill(cur_storage.begin() + first_new, cur_storage.end(), kNoClass);
      cur = &cur_storage;
    }

    std::vector<NodeId> changed_out;
    changed_mask.assign(num_nodes, 0);
    LevelView prev_view{prev.block_of, prev.num_blocks, prev.extent_offsets,
                        prev.extent_nodes};
    uint32_t bound;
    if (kreq != nullptr) {
      const int32_t round = static_cast<int32_t>(i);
      bound = IncrementalRound(
          g, prev_view,
          [&](NodeId n) { return (*kreq)[g.label(n)] >= round; }, dirty,
          dirty_mask, old_blocks, cur, &changed_out, &changed_mask,
          &scratch_bucket_stamp_, &scratch_class_stamp_, ++scratch_epoch_);
    } else {
      bound = IncrementalRound(
          g, prev_view, [](NodeId) { return true; }, dirty, dirty_mask,
          old_blocks, cur, &changed_out, &changed_mask,
          &scratch_bucket_stamp_, &scratch_class_stamp_, ++scratch_epoch_);
    }
    ++receipt->incremental_rounds;
    if (changed_out.empty() && !any_deletion && new_nodes.empty()) {
      // Nothing moved and the node set is unchanged: the level (ids,
      // extents and all) is exactly what it was.
      changed.clear();
      continue;
    }
    if (append_only) {
      PatchLevelAppendOnly(&lvl, old_num_nodes, old_blocks, bound);
    } else {
      FinishLevel(&lvl, std::move(cur_storage), bound, /*canonicalize=*/true);
    }
    changed = std::move(changed_out);
  }
}

Result<BatchReceipt> IncrementalMaintainer::Apply(const MutationBatch& batch) {
  static obs::Counter* batches_total = obs::MetricsRegistry::Global().GetCounter(
      "mrx_mutation_batches_total");
  static obs::Counter* ops_total =
      obs::MetricsRegistry::Global().GetCounter("mrx_mutation_ops_total");
  static obs::Counter* added_total = obs::MetricsRegistry::Global().GetCounter(
      "mrx_mutation_nodes_added_total");
  static obs::Counter* deleted_total =
      obs::MetricsRegistry::Global().GetCounter(
          "mrx_mutation_nodes_deleted_total");
  static obs::Counter* full_rounds_total =
      obs::MetricsRegistry::Global().GetCounter(
          "mrx_mutation_full_rounds_total");
  static obs::Counter* rejected_total =
      obs::MetricsRegistry::Global().GetCounter("mrx_mutation_rejected_total");
  static obs::Counter* dk_rebuilds_total =
      obs::MetricsRegistry::Global().GetCounter(
          "mrx_mutation_dk_rebuilds_total");
  static obs::Histogram* cascade_size =
      obs::MetricsRegistry::Global().GetHistogram("mrx_mutation_cascade_size");
  static obs::Histogram* apply_ns =
      obs::MetricsRegistry::Global().GetHistogram("mrx_mutation_apply_ns");
  static obs::Gauge* graph_nodes =
      obs::MetricsRegistry::Global().GetGauge("mrx_mutation_graph_nodes");
  static obs::Gauge* graph_edges =
      obs::MetricsRegistry::Global().GetGauge("mrx_mutation_graph_edges");
  static obs::Gauge* version_gauge =
      obs::MetricsRegistry::Global().GetGauge("mrx_mutation_version");

  BatchReceipt receipt;
  if (batch.empty()) {
    receipt.version = version_;
    receipt.nodes = graph_->num_nodes();
    receipt.edges = graph_->num_edges();
    return receipt;
  }

  const uint64_t start_ns = obs::MonotonicNowNs();
  Result<MutableDataGraph::BatchTouch> touch_r =
      live_.ApplyBatch(batch, stable_of_);
  if (!touch_r.ok()) {
    rejected_total->Increment();
    return touch_r.status();
  }
  const MutableDataGraph::BatchTouch& touch = *touch_r;

  Result<MutableDataGraph::Materialized> mat_r =
      live_.MaterializeAfter(*graph_, stable_of_, touch);
  if (!mat_r.ok()) return mat_r.status();  // Unreachable: root survives.
  MutableDataGraph::Materialized mat = *std::move(mat_r);

  const size_t old_num_nodes = graph_->num_nodes();
  const size_t num_nodes = mat.graph.num_nodes();

  // Old-version → new-version compact id map (identity prefix when no
  // deletion: compaction preserves ascending stable order, appends get the
  // largest stable ids).
  std::vector<NodeId> new_to_old;
  if (touch.any_deletion) {
    new_to_old.assign(num_nodes, kInvalidNode);
    for (NodeId o = 0; o < old_num_nodes; ++o) {
      const NodeId nc = mat.compact_of[stable_of_[o]];
      if (nc != kInvalidNode) new_to_old[nc] = o;
    }
  }

  std::vector<NodeId> new_nodes;
  new_nodes.reserve(touch.new_nodes.size());
  for (uint32_t s : touch.new_nodes) new_nodes.push_back(mat.compact_of[s]);
  std::vector<NodeId> seed = new_nodes;
  for (uint32_t s : touch.parent_set_changed) {
    seed.push_back(mat.compact_of[s]);
  }

  // Publish the new version, then bring the chains to it (they read the
  // stored previous levels and the new graph; nothing past this point can
  // fail).
  graph_ = std::make_shared<DataGraph>(std::move(mat.graph));
  stable_of_ = std::move(mat.stable_of);
  compact_of_ = std::move(mat.compact_of);
  ++version_;
  const DataGraph& g = *graph_;

  UpdateChain(&a_chain_, nullptr, g, new_nodes, seed,
              touch.any_deletion ? &new_to_old : nullptr, old_num_nodes,
              touch.any_deletion, &receipt);

  if (options_.maintain_dk) {
    std::vector<int32_t> new_kreq =
        ComputeDkLabelRequirements(g, options_.dk_fups);
    bool old_label_changed = false;
    for (size_t l = 0; l < dk_kreq_.size(); ++l) {
      if (new_kreq[l] != dk_kreq_[l]) {
        old_label_changed = true;
        break;
      }
    }
    if (old_label_changed) {
      // An edit changed what an existing label must guarantee (the D(k)
      // constraint propagates requirements along data edges); the freeze
      // schedule itself moved, so incremental rounds don't apply.
      RebuildDChain();
      receipt.dk_rebuilt = true;
      ++stats_.dk_rebuilds;
      dk_rebuilds_total->Increment();
    } else {
      // New labels can only extend the schedule with requirements below
      // the current maximum (they have no base requirement of their own),
      // and their nodes are new — already dirty at every level.
      dk_kreq_ = std::move(new_kreq);
      UpdateChain(&d_chain_, &dk_kreq_, g, new_nodes, seed,
                  touch.any_deletion ? &new_to_old : nullptr, old_num_nodes,
                  touch.any_deletion, &receipt);
    }
  }

  receipt.version = version_;
  receipt.new_nodes = std::move(new_nodes);
  receipt.nodes = g.num_nodes();
  receipt.edges = g.num_edges();
  receipt.nodes_deleted = touch.nodes_deleted;

  stats_.batches += 1;
  stats_.ops += batch.size();
  stats_.nodes_added += receipt.new_nodes.size();
  stats_.nodes_deleted += touch.nodes_deleted;
  stats_.incremental_rounds += receipt.incremental_rounds;
  stats_.full_rounds += receipt.full_rounds;
  stats_.dirty_nodes += receipt.dirty_nodes;

  batches_total->Increment();
  ops_total->Increment(batch.size());
  added_total->Increment(receipt.new_nodes.size());
  deleted_total->Increment(touch.nodes_deleted);
  full_rounds_total->Increment(receipt.full_rounds);
  cascade_size->Record(receipt.dirty_nodes);
  apply_ns->Record(obs::MonotonicNowNs() - start_ns);
  graph_nodes->Set(static_cast<int64_t>(receipt.nodes));
  graph_edges->Set(static_cast<int64_t>(receipt.edges));
  version_gauge->Set(static_cast<int64_t>(version_));
  return receipt;
}

BisimulationPartition IncrementalMaintainer::AkPartition(int k) const {
  const Chain& chain = a_chain_;
  BisimulationPartition p;
  const Level& lvl = chain.levels.at(static_cast<size_t>(k));
  p.block_of = lvl.block_of;
  p.num_blocks = lvl.num_blocks;
  for (int j = 1; j <= k; ++j) {
    if (chain.levels[j].num_blocks == chain.levels[j - 1].num_blocks) {
      p.reached_fixpoint = true;
      break;
    }
    ++p.rounds;
  }
  return p;
}

BisimulationPartition IncrementalMaintainer::DkPartition() const {
  const Chain& chain = d_chain_;
  BisimulationPartition p;
  const Level& lvl = chain.levels.back();
  p.block_of = lvl.block_of;
  p.num_blocks = lvl.num_blocks;
  for (size_t j = 1; j < chain.levels.size(); ++j) {
    if (chain.levels[j].num_blocks == chain.levels[j - 1].num_blocks) {
      p.reached_fixpoint = true;
      break;
    }
    ++p.rounds;
  }
  return p;
}

void IncrementalMaintainer::SetDkFups(std::vector<PathExpression> fups) {
  options_.dk_fups = std::move(fups);
  options_.maintain_dk = true;
  RebuildDChain();
}

std::vector<MStarComponentSpec> IncrementalMaintainer::ExportStaticSpecs()
    const {
  const DataGraph& g = *graph_;
  const std::vector<Level>& levels = a_chain_.levels;
  std::vector<MStarComponentSpec> specs(levels.size());

  // perm[i]: canonical block id of level i → the ordinal BuildStaticHierarchy
  // would give it. Level 0 is numbered by ascending LabelId (LabelBlocks);
  // a level that refined is numbered by first occurrence — our canonical
  // form, so the identity; a fixpoint level keeps the previous numbering.
  std::vector<uint32_t> perm;
  std::vector<uint32_t> prev_perm;
  {
    const Level& l0 = levels[0];
    std::vector<std::pair<LabelId, uint32_t>> order(l0.num_blocks);
    for (uint32_t b = 0; b < l0.num_blocks; ++b) {
      order[b] = {g.label(l0.extent_nodes[l0.extent_offsets[b]]), b};
    }
    std::sort(order.begin(), order.end());
    perm.resize(l0.num_blocks);
    for (uint32_t rank = 0; rank < l0.num_blocks; ++rank) {
      perm[order[rank].second] = rank;
    }
    MStarComponentSpec& spec = specs[0];
    spec.extents.resize(l0.num_blocks);
    for (uint32_t b = 0; b < l0.num_blocks; ++b) {
      // Seal the CSR slice into a (possibly compressed) extent.
      spec.extents[perm[b]] = Extent::FromSorted(std::vector<NodeId>(
          l0.extent_nodes.begin() + l0.extent_offsets[b],
          l0.extent_nodes.begin() + l0.extent_offsets[b + 1]));
    }
    spec.ks.assign(l0.num_blocks, 0);
    spec.supernodes.assign(l0.num_blocks, 0);
  }
  prev_perm = perm;

  for (size_t i = 1; i < levels.size(); ++i) {
    const Level& li = levels[i];
    const Level& lp = levels[i - 1];
    if (li.num_blocks == lp.num_blocks) {
      // Fixpoint repeat: identical partition, identical canonical vector,
      // and BuildStaticHierarchy carries the previous numbering forward.
      perm = prev_perm;
    } else {
      perm.resize(li.num_blocks);
      for (uint32_t b = 0; b < li.num_blocks; ++b) perm[b] = b;
    }
    MStarComponentSpec& spec = specs[i];
    spec.extents.resize(li.num_blocks);
    spec.ks.assign(li.num_blocks, static_cast<int32_t>(i));
    spec.supernodes.assign(li.num_blocks, 0);
    for (uint32_t b = 0; b < li.num_blocks; ++b) {
      spec.extents[perm[b]] = Extent::FromSorted(std::vector<NodeId>(
          li.extent_nodes.begin() + li.extent_offsets[b],
          li.extent_nodes.begin() + li.extent_offsets[b + 1]));
      spec.supernodes[perm[b]] =
          prev_perm[lp.block_of[li.extent_nodes[li.extent_offsets[b]]]];
    }
    prev_perm = perm;
  }
  return specs;
}

Result<MStarIndex> IncrementalMaintainer::BuildMStar() const {
  return MStarIndex::FromComponents(*graph_, ExportStaticSpecs());
}

}  // namespace mrx::mutate
