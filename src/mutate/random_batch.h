#ifndef MRX_MUTATE_RANDOM_BATCH_H_
#define MRX_MUTATE_RANDOM_BATCH_H_

#include <cstddef>

#include "graph/data_graph.h"
#include "mutate/mutation.h"
#include "util/rng.h"

namespace mrx::mutate {

/// Knobs for GenerateRandomBatch. The weights need not sum to 1; they are
/// normalized. Ops whose preconditions cannot be met on `g` (no reference
/// edge to remove, no deletable subtree small enough) degrade to appends.
struct RandomBatchOptions {
  size_t num_ops = 4;
  double append_weight = 0.55;
  double delete_weight = 0.20;
  double add_ref_weight = 0.15;
  double remove_ref_weight = 0.10;
  /// Appended subtrees have 1..max_subtree_nodes nodes.
  size_t max_subtree_nodes = 5;
  /// Chance of an extra intra-subtree reference edge per appended node.
  double subtree_ref_chance = 0.2;
  /// Delete victims are sampled until one's regular-reachable set is at
  /// most this large (bounded so a random delete doesn't take out half the
  /// document); 0 disables deletes.
  size_t max_delete_size = 8;
  /// Chance an appended node gets a label the graph has never seen.
  double fresh_label_chance = 0.1;
};

/// Seeded random mutation batch against the *current* version `g` (batch
/// ids are g's compact NodeIds). Ops are generated independently against
/// `g`, so a batch can still fail validation when its ops interact (an
/// append under a subtree an earlier op deleted); callers that replay
/// traces treat a rejected batch as a no-op, which mutable-graph rollback
/// guarantees it is.
MutationBatch GenerateRandomBatch(Rng& rng, const DataGraph& g,
                                  const RandomBatchOptions& options = {});

}  // namespace mrx::mutate

#endif  // MRX_MUTATE_RANDOM_BATCH_H_
