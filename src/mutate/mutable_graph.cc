#include "mutate/mutable_graph.h"

#include <algorithm>
#include <string>
#include <tuple>
#include <utility>

namespace mrx::mutate {
namespace {

/// Sorted-insert / erase helpers keeping the adjacency invariants (child
/// lists ascending by target, parent lists ascending unique).

std::vector<MutableDataGraph::AdjEntry>::iterator FindChild(
    std::vector<MutableDataGraph::AdjEntry>& list, uint32_t to) {
  auto it = std::lower_bound(
      list.begin(), list.end(), to,
      [](const MutableDataGraph::AdjEntry& e, uint32_t t) { return e.to < t; });
  return it;
}

void InsertChild(std::vector<MutableDataGraph::AdjEntry>& list, uint32_t to,
                 EdgeKind kind) {
  auto it = FindChild(list, to);
  list.insert(it, MutableDataGraph::AdjEntry{to, kind});
}

void InsertParent(std::vector<uint32_t>& list, uint32_t from) {
  auto it = std::lower_bound(list.begin(), list.end(), from);
  list.insert(it, from);
}

void EraseParent(std::vector<uint32_t>& list, uint32_t from) {
  auto it = std::lower_bound(list.begin(), list.end(), from);
  if (it != list.end() && *it == from) list.erase(it);
}

void SortUnique(std::vector<uint32_t>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

}  // namespace

/// Inverse of one applied op, replayed in reverse order on batch failure.
struct MutableDataGraph::UndoRecord {
  Mutation::Kind kind = Mutation::Kind::kAppendSubtree;
  uint32_t from = 0, to = 0;  // Ref-edge ops; append: (parent, first new).
  size_t appended = 0;        // Append: node count to pop.
  size_t edges_added = 0;     // Append: attach edge + internal edges.
  std::vector<uint32_t> revived;  // Delete: the doomed set to revive.
  /// Delete: the survivor-side entries the detach erased (DeleteReport's
  /// severed_* lists, moved here).
  std::vector<std::tuple<uint32_t, uint32_t, EdgeKind>> child_entries;
  std::vector<std::pair<uint32_t, uint32_t>> parent_entries;
  size_t edges_removed = 0;  // Delete: num_edges_ delta to restore.
};

MutableDataGraph::MutableDataGraph(const DataGraph& g)
    : symbols_(g.symbols()),
      labels_(g.num_nodes()),
      alive_(g.num_nodes(), 1),
      children_(g.num_nodes()),
      parents_(g.num_nodes()),
      root_(g.root()),
      num_alive_(g.num_nodes()),
      num_edges_(g.num_edges()) {
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    labels_[n] = g.label(n);
    const auto children = g.children(n);
    const auto kinds = g.child_kinds(n);
    children_[n].reserve(children.size());
    for (size_t i = 0; i < children.size(); ++i) {
      children_[n].push_back(AdjEntry{children[i], kinds[i]});
    }
    const auto parents = g.parents(n);
    parents_[n].assign(parents.begin(), parents.end());
    std::sort(parents_[n].begin(), parents_[n].end());
  }
}

Status MutableDataGraph::CheckNode(uint32_t s) const {
  if (s >= labels_.size()) {
    return Status::InvalidArgument("node id " + std::to_string(s) +
                                   " out of range");
  }
  if (!alive_[s]) {
    return Status::FailedPrecondition("node " + std::to_string(s) +
                                      " was deleted");
  }
  return Status::Ok();
}

Result<std::vector<uint32_t>> MutableDataGraph::AppendSubtree(
    uint32_t parent, const SubtreeSpec& spec) {
  Status st = CheckNode(parent);
  if (!st.ok()) return st;
  if (spec.labels.empty()) {
    return Status::InvalidArgument("empty subtree spec");
  }
  const size_t m = spec.labels.size();
  std::vector<uint64_t> seen;
  seen.reserve(spec.edges.size());
  for (const SubtreeSpec::Edge& e : spec.edges) {
    if (e.from >= m || e.to >= m) {
      return Status::InvalidArgument("subtree edge endpoint out of range");
    }
    seen.push_back((static_cast<uint64_t>(e.from) << 32) | e.to);
  }
  std::sort(seen.begin(), seen.end());
  if (std::adjacent_find(seen.begin(), seen.end()) != seen.end()) {
    return Status::InvalidArgument("duplicate edge in subtree spec");
  }

  const uint32_t base = static_cast<uint32_t>(labels_.size());
  std::vector<uint32_t> ids(m);
  for (size_t i = 0; i < m; ++i) {
    ids[i] = base + static_cast<uint32_t>(i);
    labels_.push_back(symbols_.Intern(spec.labels[i]));
    alive_.push_back(1);
    children_.emplace_back();
    parents_.emplace_back();
  }
  InsertChild(children_[parent], base, EdgeKind::kRegular);
  parents_[base].push_back(parent);
  for (const SubtreeSpec::Edge& e : spec.edges) {
    InsertChild(children_[base + e.from], base + e.to, e.kind);
    InsertParent(parents_[base + e.to], base + e.from);
  }
  num_alive_ += m;
  num_edges_ += 1 + spec.edges.size();
  return ids;
}

Result<MutableDataGraph::DeleteReport> MutableDataGraph::DeleteSubtree(
    uint32_t victim) {
  Status st = CheckNode(victim);
  if (!st.ok()) return st;

  // The doomed set: everything reachable from the victim along *regular*
  // (containment) edges — the XML subtree, plus anything a local reference
  // cycle ropes in only if containment also reaches it.
  std::vector<uint32_t> doomed;
  std::vector<uint8_t> in_doomed(labels_.size(), 0);
  std::vector<uint32_t> frontier = {victim};
  in_doomed[victim] = 1;
  while (!frontier.empty()) {
    const uint32_t s = frontier.back();
    frontier.pop_back();
    doomed.push_back(s);
    for (const AdjEntry& e : children_[s]) {
      if (e.kind == EdgeKind::kRegular && !in_doomed[e.to]) {
        in_doomed[e.to] = 1;
        frontier.push_back(e.to);
      }
    }
  }
  if (in_doomed[root_]) {
    return Status::FailedPrecondition(
        "cannot delete the document root (node " + std::to_string(victim) +
        " contains it)");
  }
  std::sort(doomed.begin(), doomed.end());

  // Detach the doomed set from the survivors. Doomed nodes keep their own
  // adjacency (they are dead, Materialize skips them, and batch rollback
  // revives them wholesale); only survivor lists are edited.
  DeleteReport report;
  report.removed = doomed;
  for (uint32_t s : doomed) {
    for (uint32_t p : parents_[s]) {
      if (in_doomed[p]) continue;
      auto it = FindChild(children_[p], s);
      report.severed_children.emplace_back(p, s, it->kind);
      children_[p].erase(it);
      ++report.edges_removed;
    }
    for (const AdjEntry& e : children_[s]) {
      if (in_doomed[e.to]) {
        ++report.edges_removed;  // Internal edge dies with the set.
        continue;
      }
      // A surviving regular child would itself be regular-reachable, so a
      // crossing edge to a survivor is necessarily a reference — the
      // stranded-IDREF case.
      EraseParent(parents_[e.to], s);
      report.severed_parents.emplace_back(e.to, s);
      report.ref_orphaned.push_back(e.to);
      ++report.edges_removed;
    }
    alive_[s] = 0;
  }
  SortUnique(&report.ref_orphaned);
  num_alive_ -= doomed.size();
  num_edges_ -= report.edges_removed;
  return report;
}

Status MutableDataGraph::AddRefEdge(uint32_t from, uint32_t to) {
  Status st = CheckNode(from);
  if (!st.ok()) return st;
  st = CheckNode(to);
  if (!st.ok()) return st;
  auto it = FindChild(children_[from], to);
  if (it != children_[from].end() && it->to == to) {
    return Status::FailedPrecondition(
        "edge (" + std::to_string(from) + ", " + std::to_string(to) +
        ") already exists");
  }
  children_[from].insert(it, AdjEntry{to, EdgeKind::kReference});
  InsertParent(parents_[to], from);
  ++num_edges_;
  return Status::Ok();
}

Status MutableDataGraph::RemoveRefEdge(uint32_t from, uint32_t to) {
  Status st = CheckNode(from);
  if (!st.ok()) return st;
  st = CheckNode(to);
  if (!st.ok()) return st;
  auto it = FindChild(children_[from], to);
  if (it == children_[from].end() || it->to != to) {
    return Status::NotFound("no edge (" + std::to_string(from) + ", " +
                            std::to_string(to) + ")");
  }
  if (it->kind != EdgeKind::kReference) {
    return Status::FailedPrecondition(
        "edge (" + std::to_string(from) + ", " + std::to_string(to) +
        ") is a containment edge, not a reference");
  }
  children_[from].erase(it);
  EraseParent(parents_[to], from);
  --num_edges_;
  return Status::Ok();
}

Result<MutableDataGraph::BatchTouch> MutableDataGraph::ApplyBatch(
    const MutationBatch& batch,
    const std::vector<uint32_t>& compact_to_stable) {
  BatchTouch touch;
  std::vector<UndoRecord> undo;
  undo.reserve(batch.size());

  auto resolve = [&](NodeId id, uint32_t* stable) -> Status {
    if (id >= compact_to_stable.size()) {
      return Status::InvalidArgument("node id " + std::to_string(id) +
                                     " out of range for this graph version");
    }
    *stable = compact_to_stable[id];
    return Status::Ok();
  };

  Status failure = Status::Ok();
  size_t failed_at = 0;
  for (size_t i = 0; i < batch.size() && failure.ok(); ++i) {
    const Mutation& op = batch[i];
    failed_at = i;
    uint32_t target = 0;
    failure = resolve(op.target, &target);
    if (!failure.ok()) break;
    switch (op.kind) {
      case Mutation::Kind::kAppendSubtree: {
        Result<std::vector<uint32_t>> ids = AppendSubtree(target, op.subtree);
        if (!ids.ok()) {
          failure = ids.status();
          break;
        }
        UndoRecord u;
        u.kind = op.kind;
        u.from = target;
        u.to = ids->front();
        u.appended = ids->size();
        u.edges_added = 1 + op.subtree.edges.size();
        undo.push_back(std::move(u));
        touch.new_nodes.insert(touch.new_nodes.end(), ids->begin(),
                               ids->end());
        touch.children_changed.push_back(target);
        break;
      }
      case Mutation::Kind::kDeleteSubtree: {
        Result<DeleteReport> report = DeleteSubtree(target);
        if (!report.ok()) {
          failure = report.status();
          break;
        }
        UndoRecord u;
        u.kind = op.kind;
        u.revived = std::move(report->removed);
        u.child_entries = std::move(report->severed_children);
        u.parent_entries = std::move(report->severed_parents);
        u.edges_removed = report->edges_removed;
        touch.any_deletion = true;
        touch.nodes_deleted += u.revived.size();
        for (uint32_t c : report->ref_orphaned) {
          touch.parent_set_changed.push_back(c);
        }
        for (const auto& severed : u.child_entries) {
          touch.children_changed.push_back(std::get<0>(severed));
        }
        undo.push_back(std::move(u));
        break;
      }
      case Mutation::Kind::kAddRefEdge: {
        uint32_t head = 0;
        failure = resolve(op.ref_target, &head);
        if (!failure.ok()) break;
        failure = AddRefEdge(target, head);
        if (!failure.ok()) break;
        UndoRecord u;
        u.kind = op.kind;
        u.from = target;
        u.to = head;
        undo.push_back(std::move(u));
        touch.parent_set_changed.push_back(head);
        touch.children_changed.push_back(target);
        ++touch.ref_edges_added;
        break;
      }
      case Mutation::Kind::kRemoveRefEdge: {
        uint32_t head = 0;
        failure = resolve(op.ref_target, &head);
        if (!failure.ok()) break;
        failure = RemoveRefEdge(target, head);
        if (!failure.ok()) break;
        UndoRecord u;
        u.kind = op.kind;
        u.from = target;
        u.to = head;
        undo.push_back(std::move(u));
        touch.parent_set_changed.push_back(head);
        touch.children_changed.push_back(target);
        ++touch.ref_edges_removed;
        break;
      }
    }
  }

  if (!failure.ok()) {
    // Roll back in reverse: the batch is atomic.
    for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
      const UndoRecord& u = *it;
      switch (u.kind) {
        case Mutation::Kind::kAppendSubtree: {
          const size_t old_size = labels_.size() - u.appended;
          auto child = FindChild(children_[u.from], u.to);
          children_[u.from].erase(child);
          labels_.resize(old_size);
          alive_.resize(old_size);
          children_.resize(old_size);
          parents_.resize(old_size);
          num_alive_ -= u.appended;
          num_edges_ -= u.edges_added;
          break;
        }
        case Mutation::Kind::kDeleteSubtree: {
          for (uint32_t s : u.revived) alive_[s] = 1;
          for (const auto& [p, s, kind] : u.child_entries) {
            InsertChild(children_[p], s, kind);
          }
          for (const auto& [c, s] : u.parent_entries) {
            InsertParent(parents_[c], s);
          }
          num_alive_ += u.revived.size();
          num_edges_ += u.edges_removed;
          break;
        }
        case Mutation::Kind::kAddRefEdge: {
          auto child = FindChild(children_[u.from], u.to);
          children_[u.from].erase(child);
          EraseParent(parents_[u.to], u.from);
          --num_edges_;
          break;
        }
        case Mutation::Kind::kRemoveRefEdge: {
          InsertChild(children_[u.from], u.to, EdgeKind::kReference);
          InsertParent(parents_[u.to], u.from);
          ++num_edges_;
          break;
        }
      }
    }
    return Status::FailedPrecondition(
        "mutation " + std::to_string(failed_at + 1) + " of " +
        std::to_string(batch.size()) + " failed (batch rolled back): " +
        failure.message());
  }

  SortUnique(&touch.parent_set_changed);
  std::erase_if(touch.children_changed, [&](uint32_t s) { return !alive_[s]; });
  SortUnique(&touch.children_changed);
  // Appended nodes supersede "parent set changed" (they are wholly new).
  if (!touch.new_nodes.empty() && !touch.parent_set_changed.empty()) {
    std::vector<uint8_t> is_new(labels_.size(), 0);
    for (uint32_t s : touch.new_nodes) is_new[s] = 1;
    std::erase_if(touch.parent_set_changed,
                  [&](uint32_t s) { return is_new[s] != 0; });
  }
  // Drop parent-set-changed entries that a later delete in the same batch
  // removed.
  std::erase_if(touch.parent_set_changed,
                [&](uint32_t s) { return !alive_[s]; });
  std::erase_if(touch.new_nodes, [&](uint32_t s) { return !alive_[s]; });
  return touch;
}

Result<MutableDataGraph::Materialized> MutableDataGraph::Materialize() const {
  if (num_alive_ == 0) {
    return Status::FailedPrecondition("graph has no alive nodes");
  }
  Materialized out;
  out.compact_of.assign(labels_.size(), kInvalidNode);
  out.stable_of.reserve(num_alive_);
  for (uint32_t s = 0; s < labels_.size(); ++s) {
    if (!alive_[s]) continue;
    out.compact_of[s] = static_cast<NodeId>(out.stable_of.size());
    out.stable_of.push_back(s);
  }

  DataGraphBuilder builder;
  builder.symbols() = symbols_;
  builder.Reserve(num_alive_, num_edges_);
  // Adjacency lists are sorted by stable target id and duplicate-free, and
  // stable → compact is monotone, so the emission below is already in
  // (from, to) order: let Build() skip its edge sort.
  builder.MarkEdgesSortedUnique();
  for (uint32_t s : out.stable_of) builder.AddNodeWithLabelId(labels_[s]);
  for (uint32_t s : out.stable_of) {
    const NodeId from = out.compact_of[s];
    for (const AdjEntry& e : children_[s]) {
      builder.AddEdge(from, out.compact_of[e.to], e.kind);
    }
  }
  builder.SetRoot(out.compact_of[root_]);
  Result<DataGraph> graph = std::move(builder).Build();
  if (!graph.ok()) return graph.status();
  out.graph = *std::move(graph);
  return out;
}

Result<MutableDataGraph::Materialized> MutableDataGraph::MaterializeAfter(
    const DataGraph& prev, const std::vector<uint32_t>& prev_stable_of,
    const BatchTouch& touch) const {
  if (prev.num_nodes() == 0 || num_alive_ == 0) return Materialize();
  const size_t old_n = prev.num_nodes();

  // Old compact ids map monotonically onto new ones: survivors keep their
  // relative order and slide down past the deleted (`remap`), appended
  // stable ids all sit above prev's largest alive id and take the tail.
  Materialized out;
  out.compact_of.assign(labels_.size(), kInvalidNode);
  out.stable_of.resize(num_alive_);
  std::vector<NodeId> remap(old_n, kInvalidNode);
  std::vector<NodeId> doomed;  // Old compact ids the batch deleted.
  size_t w = 0;
  for (NodeId c = 0; c < old_n; ++c) {
    const uint32_t s = prev_stable_of[c];
    if (!alive_[s]) {
      doomed.push_back(c);
      continue;
    }
    remap[c] = static_cast<NodeId>(w);
    out.compact_of[s] = remap[c];
    out.stable_of[w++] = s;
  }
  const size_t first_new = w;
  // Ids below prev's ceiling that were dead then are dead still (rollback,
  // which precedes the receipt, is the only revival).
  for (uint32_t s = prev_stable_of.back() + 1; s < labels_.size(); ++s) {
    if (!alive_[s]) continue;
    if (w == num_alive_) {
      ++w;  // Overflow: bookkeeping drift, handled below.
      break;
    }
    out.compact_of[s] = static_cast<NodeId>(w);
    out.stable_of[w++] = s;
  }
  if (w != num_alive_) return Materialize();

  // Rows needing a re-walk of the live adjacency, in old compact ids.
  // children_changed is sorted ascending in stable ids and prev's
  // compaction preserves stable order, so one linear merge marks them.
  std::vector<uint8_t> row_changed(old_n, 0);
  {
    NodeId c = 0;
    for (uint32_t s : touch.children_changed) {
      while (c < old_n && prev_stable_of[c] < s) ++c;
      if (c < old_n && prev_stable_of[c] == s) row_changed[c] = 1;
    }
  }

  // Assemble the children CSR directly — no builder edge vector, no sort.
  // Unchanged rows stream out of prev's CSR through `remap` (their targets
  // are all survivors: an edge into the doomed set would have marked the
  // row changed); touched and new rows re-walk the live adjacency through
  // compact_of. Rows stay sorted: prev rows were sorted and both maps are
  // monotone over the alive ids.
  const bool identity = first_new == old_n;  // Every old node survived.
  const std::span<const uint32_t> prev_off = prev.child_row_offsets();
  const std::span<const NodeId> prev_tgt = prev.child_row_targets();
  const std::span<const EdgeKind> prev_knd = prev.child_row_kinds();
  const std::span<const LabelId> prev_lbl = prev.node_labels();
  std::vector<LabelId> labels(num_alive_);
  if (identity) {
    std::copy(prev_lbl.begin(), prev_lbl.end(), labels.begin());
    for (size_t c = old_n; c < num_alive_; ++c) {
      labels[c] = labels_[out.stable_of[c]];
    }
  } else {
    for (size_t c = 0; c < num_alive_; ++c) {
      labels[c] = labels_[out.stable_of[c]];
    }
  }
  std::vector<uint32_t> offsets(num_alive_ + 1);
  std::vector<NodeId> targets(num_edges_);
  std::vector<EdgeKind> kinds(num_edges_);
  offsets[0] = 0;
  size_t at = 0;
  // Reference-edge count, patched forward with the rows: unchanged rows
  // keep their refs, so only rewritten and dropped rows adjust the total.
  size_t refs = prev.num_reference_edges();
  auto drop_prev_row_refs = [&](NodeId c) {
    for (uint32_t i = prev_off[c]; i < prev_off[c + 1]; ++i) {
      if (prev_knd[i] == EdgeKind::kReference) --refs;
    }
  };
  if (identity) {
    // Maximal runs of unchanged rows move as two bulk copies each; their
    // offsets are prev's shifted by the run's displacement.
    NodeId c = 0;
    while (c < old_n) {
      if (!row_changed[c]) {
        NodeId run_end = c + 1;
        while (run_end < old_n && !row_changed[run_end]) ++run_end;
        const uint32_t base = prev_off[c];
        const uint32_t len = prev_off[run_end] - base;
        std::copy_n(prev_tgt.data() + base, len, targets.data() + at);
        std::copy_n(prev_knd.data() + base, len, kinds.data() + at);
        const int64_t shift = static_cast<int64_t>(at) - base;
        for (NodeId r = c; r < run_end; ++r) {
          offsets[r + 1] = static_cast<uint32_t>(prev_off[r + 1] + shift);
        }
        at += len;
        c = run_end;
      } else {
        drop_prev_row_refs(c);
        for (const AdjEntry& e : children_[prev_stable_of[c]]) {
          targets[at] = out.compact_of[e.to];
          kinds[at] = e.kind;
          if (e.kind == EdgeKind::kReference) ++refs;
          ++at;
        }
        offsets[c + 1] = static_cast<uint32_t>(at);
        ++c;
      }
    }
  } else {
    // Same run treatment as the identity path: consecutive unchanged
    // survivors share one edge-shift and one id-shift (no doomed node
    // inside a run), so their offsets and kinds move in bulk and only the
    // targets pay the per-edge remap (their values slide past the doomed).
    NodeId c = 0;
    while (c < old_n) {
      if (remap[c] == kInvalidNode) {
        drop_prev_row_refs(c);
        ++c;
        continue;
      }
      if (row_changed[c]) {
        drop_prev_row_refs(c);
        for (const AdjEntry& e : children_[prev_stable_of[c]]) {
          targets[at] = out.compact_of[e.to];
          kinds[at] = e.kind;
          if (e.kind == EdgeKind::kReference) ++refs;
          ++at;
        }
        offsets[remap[c] + 1] = static_cast<uint32_t>(at);
        ++c;
        continue;
      }
      NodeId run_end = c + 1;
      while (run_end < old_n && remap[run_end] != kInvalidNode &&
             !row_changed[run_end]) {
        ++run_end;
      }
      const uint32_t base = prev_off[c];
      const uint32_t len = prev_off[run_end] - base;
      const int64_t shift = static_cast<int64_t>(at) - base;
      const NodeId nbase = remap[c];
      for (NodeId r = c; r < run_end; ++r) {
        offsets[nbase + (r - c) + 1] =
            static_cast<uint32_t>(prev_off[r + 1] + shift);
      }
      for (uint32_t i = 0; i < len; ++i) {
        targets[at + i] = remap[prev_tgt[base + i]];
      }
      std::copy_n(prev_knd.data() + base, len, kinds.data() + at);
      at += len;
      c = run_end;
    }
  }
  for (size_t c = first_new; c < out.stable_of.size(); ++c) {
    for (const AdjEntry& e : children_[out.stable_of[c]]) {
      targets[at] = out.compact_of[e.to];
      kinds[at] = e.kind;
      if (e.kind == EdgeKind::kReference) ++refs;
      ++at;
    }
    offsets[c + 1] = static_cast<uint32_t>(at);
  }
  if (at != num_edges_) return Materialize();  // Bookkeeping drift: re-walk.

  // Patch the inverse structures forward too, sparing FromChildCsr its two
  // O(E) from-scratch scatter passes.
  //
  // Parent rows change only for appended nodes and parent_set_changed
  // survivors: a deletion cannot silently edit an unchanged row (a doomed
  // regular parent dooms the node with it; a doomed reference parent lands
  // the node in parent_set_changed as ref-orphaned), and ref-edge edits
  // record their head there. Unchanged rows stream from prev; the entries
  // of an unchanged row are all survivors for the same reason.
  std::vector<uint8_t> prow_changed(old_n, 0);
  {
    NodeId c = 0;
    for (uint32_t s : touch.parent_set_changed) {
      while (c < old_n && prev_stable_of[c] < s) ++c;
      if (c < old_n && prev_stable_of[c] == s) prow_changed[c] = 1;
    }
  }
  const std::span<const uint32_t> prev_poff = prev.parent_row_offsets();
  const std::span<const NodeId> prev_ptgt = prev.parent_row_targets();
  DataGraphBuilder::InverseStructures inv;
  inv.num_reference_edges = refs;
  inv.parent_offsets.resize(num_alive_ + 1);
  inv.parent_targets.resize(num_edges_);
  inv.parent_offsets[0] = 0;
  size_t pat = 0;
  if (identity) {
    NodeId c = 0;
    while (c < old_n) {
      if (!prow_changed[c]) {
        NodeId run_end = c + 1;
        while (run_end < old_n && !prow_changed[run_end]) ++run_end;
        const uint32_t base = prev_poff[c];
        const uint32_t len = prev_poff[run_end] - base;
        std::copy_n(prev_ptgt.data() + base, len,
                    inv.parent_targets.data() + pat);
        const int64_t shift = static_cast<int64_t>(pat) - base;
        for (NodeId r = c; r < run_end; ++r) {
          inv.parent_offsets[r + 1] =
              static_cast<uint32_t>(prev_poff[r + 1] + shift);
        }
        pat += len;
        c = run_end;
      } else {
        for (uint32_t p : parents_[prev_stable_of[c]]) {
          inv.parent_targets[pat++] = out.compact_of[p];
        }
        inv.parent_offsets[c + 1] = static_cast<uint32_t>(pat);
        ++c;
      }
    }
  } else {
    NodeId c = 0;
    while (c < old_n) {
      if (remap[c] == kInvalidNode) {
        ++c;
        continue;
      }
      if (prow_changed[c]) {
        for (uint32_t p : parents_[prev_stable_of[c]]) {
          inv.parent_targets[pat++] = out.compact_of[p];
        }
        inv.parent_offsets[remap[c] + 1] = static_cast<uint32_t>(pat);
        ++c;
        continue;
      }
      NodeId run_end = c + 1;
      while (run_end < old_n && remap[run_end] != kInvalidNode &&
             !prow_changed[run_end]) {
        ++run_end;
      }
      const uint32_t base = prev_poff[c];
      const uint32_t len = prev_poff[run_end] - base;
      const int64_t shift = static_cast<int64_t>(pat) - base;
      const NodeId nbase = remap[c];
      for (NodeId r = c; r < run_end; ++r) {
        inv.parent_offsets[nbase + (r - c) + 1] =
            static_cast<uint32_t>(prev_poff[r + 1] + shift);
      }
      for (uint32_t i = 0; i < len; ++i) {
        inv.parent_targets[pat + i] = remap[prev_ptgt[base + i]];
      }
      pat += len;
      c = run_end;
    }
  }
  for (size_t c = first_new; c < out.stable_of.size(); ++c) {
    for (uint32_t p : parents_[out.stable_of[c]]) {
      inv.parent_targets[pat++] = out.compact_of[p];
    }
    inv.parent_offsets[c + 1] = static_cast<uint32_t>(pat);
  }

  // Label buckets: labels of existing nodes never change, so bucket widths
  // move only by appends (tail ids, spliced at bucket ends — ascending is
  // preserved) and deletions (filtered out by remap). Labels the batch
  // interned fresh have no prev bucket.
  const size_t num_labels = symbols_.size();
  const std::span<const uint32_t> prev_loff = prev.label_bucket_offsets();
  const size_t prev_labels = prev_loff.empty() ? 0 : prev_loff.size() - 1;
  const std::span<const NodeId> prev_lnodes = prev.label_bucket_nodes();
  inv.label_offsets.assign(num_labels + 1, 0);
  for (size_t c = first_new; c < out.stable_of.size(); ++c) {
    ++inv.label_offsets[labels[c] + 1];
  }
  for (size_t l = 0; l < prev_labels; ++l) {
    inv.label_offsets[l + 1] += prev_loff[l + 1] - prev_loff[l];
  }
  for (NodeId c : doomed) --inv.label_offsets[prev_lbl[c] + 1];
  for (size_t l = 0; l < num_labels; ++l) {
    inv.label_offsets[l + 1] += inv.label_offsets[l];
  }
  inv.label_nodes.resize(num_alive_);
  {
    std::vector<uint32_t> cursor(num_labels);
    for (size_t l = 0; l < num_labels; ++l) cursor[l] = inv.label_offsets[l];
    if (identity) {
      for (size_t l = 0; l < prev_labels; ++l) {
        const uint32_t len = prev_loff[l + 1] - prev_loff[l];
        std::copy_n(prev_lnodes.data() + prev_loff[l], len,
                    inv.label_nodes.data() + cursor[l]);
        cursor[l] += len;
      }
    } else {
      for (size_t l = 0; l < prev_labels; ++l) {
        for (uint32_t i = prev_loff[l]; i < prev_loff[l + 1]; ++i) {
          const NodeId r = remap[prev_lnodes[i]];
          if (r != kInvalidNode) inv.label_nodes[cursor[l]++] = r;
        }
      }
    }
    for (size_t c = first_new; c < out.stable_of.size(); ++c) {
      inv.label_nodes[cursor[labels[c]]++] = static_cast<NodeId>(c);
    }
  }

  Result<DataGraph> graph = DataGraphBuilder::FromChildCsr(
      symbols_, std::move(labels), out.compact_of[root_], std::move(offsets),
      std::move(targets), std::move(kinds),
      pat == num_edges_ ? std::optional(std::move(inv)) : std::nullopt);
  if (!graph.ok()) return graph.status();
  out.graph = *std::move(graph);
  return out;
}

}  // namespace mrx::mutate
