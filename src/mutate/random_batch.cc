#include "mutate/random_batch.h"

#include <string>
#include <utility>
#include <vector>

namespace mrx::mutate {
namespace {

/// Size of the regular-reachable set from `victim`, capped at `limit + 1`
/// (the caller only cares whether it exceeds `limit`).
size_t CappedSubtreeSize(const DataGraph& g, NodeId victim, size_t limit) {
  std::vector<NodeId> stack{victim};
  std::vector<uint8_t> seen(g.num_nodes(), 0);
  seen[victim] = 1;
  size_t count = 0;
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    if (++count > limit) return count;
    const auto kids = g.children(n);
    const auto kinds = g.child_kinds(n);
    for (size_t i = 0; i < kids.size(); ++i) {
      if (kinds[i] != EdgeKind::kRegular) continue;
      if (!seen[kids[i]]) {
        seen[kids[i]] = 1;
        stack.push_back(kids[i]);
      }
    }
  }
  return count;
}

std::string SampleLabel(Rng& rng, const DataGraph& g,
                        const RandomBatchOptions& options) {
  if (rng.Chance(options.fresh_label_chance)) {
    return "mut" + std::to_string(rng.Below(1u << 30));
  }
  const LabelId l = static_cast<LabelId>(rng.Below(g.symbols().size()));
  return g.symbols().Name(l);
}

Mutation RandomAppend(Rng& rng, const DataGraph& g,
                      const RandomBatchOptions& options) {
  const NodeId parent = static_cast<NodeId>(rng.Below(g.num_nodes()));
  SubtreeSpec spec;
  const size_t n =
      1 + rng.Below(options.max_subtree_nodes > 0 ? options.max_subtree_nodes
                                                  : 1);
  spec.labels.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    spec.labels.push_back(SampleLabel(rng, g, options));
    if (i > 0) {
      spec.edges.push_back({static_cast<uint32_t>(rng.Below(i)),
                            static_cast<uint32_t>(i), EdgeKind::kRegular});
    }
  }
  // Occasional intra-subtree reference edges (the data model is a graph;
  // appended content can carry its own ID/IDREF links, including cycles).
  if (n > 1) {
    for (size_t i = 0; i < n; ++i) {
      if (!rng.Chance(options.subtree_ref_chance)) continue;
      const uint32_t from = static_cast<uint32_t>(rng.Below(n));
      const uint32_t to = static_cast<uint32_t>(rng.Below(n));
      spec.edges.push_back({from, to, EdgeKind::kReference});
    }
    // The spec validator rejects duplicate (from, to) pairs; drop them.
    std::vector<SubtreeSpec::Edge> dedup;
    for (const SubtreeSpec::Edge& e : spec.edges) {
      bool dup = false;
      for (const SubtreeSpec::Edge& d : dedup) {
        dup = dup || (d.from == e.from && d.to == e.to);
      }
      if (!dup) dedup.push_back(e);
    }
    spec.edges = std::move(dedup);
  }
  return Mutation::Append(parent, std::move(spec));
}

}  // namespace

MutationBatch GenerateRandomBatch(Rng& rng, const DataGraph& g,
                                  const RandomBatchOptions& options) {
  // Reference edges present in g, for RemoveRef sampling.
  std::vector<std::pair<NodeId, NodeId>> ref_edges;
  if (options.remove_ref_weight > 0 && g.num_reference_edges() > 0) {
    ref_edges.reserve(g.num_reference_edges());
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      const auto kids = g.children(n);
      const auto kinds = g.child_kinds(n);
      for (size_t i = 0; i < kids.size(); ++i) {
        if (kinds[i] == EdgeKind::kReference) ref_edges.push_back({n, kids[i]});
      }
    }
  }

  const double total = options.append_weight + options.delete_weight +
                       options.add_ref_weight + options.remove_ref_weight;
  MutationBatch batch;
  batch.reserve(options.num_ops);
  for (size_t op = 0; op < options.num_ops; ++op) {
    double roll = rng.NextDouble() * (total > 0 ? total : 1.0);
    if (roll < options.append_weight || total <= 0) {
      batch.push_back(RandomAppend(rng, g, options));
      continue;
    }
    roll -= options.append_weight;
    if (roll < options.delete_weight) {
      // Sample a victim with a small enough subtree; degrade to an append
      // when the graph offers none within a few tries.
      bool placed = false;
      if (options.max_delete_size > 0 && g.num_nodes() > 1) {
        for (int attempt = 0; attempt < 8 && !placed; ++attempt) {
          const NodeId victim =
              static_cast<NodeId>(1 + rng.Below(g.num_nodes() - 1));
          if (victim == g.root()) continue;
          if (CappedSubtreeSize(g, victim, options.max_delete_size) <=
              options.max_delete_size) {
            batch.push_back(Mutation::Delete(victim));
            placed = true;
          }
        }
      }
      if (!placed) batch.push_back(RandomAppend(rng, g, options));
      continue;
    }
    roll -= options.delete_weight;
    if (roll < options.add_ref_weight) {
      const NodeId from = static_cast<NodeId>(rng.Below(g.num_nodes()));
      const NodeId to = static_cast<NodeId>(rng.Below(g.num_nodes()));
      batch.push_back(Mutation::AddRef(from, to));
      continue;
    }
    if (!ref_edges.empty()) {
      const auto& e = ref_edges[rng.Below(ref_edges.size())];
      batch.push_back(Mutation::RemoveRef(e.first, e.second));
    } else {
      batch.push_back(RandomAppend(rng, g, options));
    }
  }
  return batch;
}

}  // namespace mrx::mutate
