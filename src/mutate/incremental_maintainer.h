#ifndef MRX_MUTATE_INCREMENTAL_MAINTAINER_H_
#define MRX_MUTATE_INCREMENTAL_MAINTAINER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/data_graph.h"
#include "index/bisimulation.h"
#include "index/m_star_index.h"
#include "mutate/mutable_graph.h"
#include "mutate/mutation.h"
#include "query/path_expression.h"
#include "util/result.h"

namespace mrx::mutate {

struct MaintainerOptions {
  /// Depth of the maintained A-chain: levels A(0)..A(k_max). Must match the
  /// k_max of any M*(k) hierarchy built from the exported specs.
  int k_max = 3;
  /// A level whose dirty set exceeds this fraction of the node count falls
  /// back to one full refinement round (and cascades full rounds upward —
  /// a full round conservatively marks every node changed). 0 forces full
  /// rounds always (a from-scratch rebuild per batch, the bench baseline);
  /// > 1 never falls back.
  double rebuild_threshold = 0.25;
  /// When true the maintainer also keeps the D(k)-construct partition for
  /// `dk_fups` exact (the A-chain is always maintained). Off by default:
  /// the server path serves M*(k) from the A-chain alone.
  bool maintain_dk = false;
  std::vector<PathExpression> dk_fups;
  /// Optional pool for the full-round fallback and the from-scratch seed
  /// build (the incremental path itself is serial — its cost is the point).
  ThreadPool* pool = nullptr;
};

/// Renumbers a partition to ascending first occurrence in node order — the
/// canonical form every maintained level uses, so differently-numbered but
/// equal partitions compare byte-identical.
std::vector<uint32_t> CanonicalBlockIds(const std::vector<uint32_t>& block_of,
                                        uint32_t num_blocks);

/// What one applied batch did, in the id space of the *new* version.
struct BatchReceipt {
  uint64_t version = 0;            ///< Version number after this batch.
  std::vector<NodeId> new_nodes;   ///< Appended nodes, compact ids, op order.
  size_t nodes = 0;                ///< Node count of the new version.
  size_t edges = 0;
  size_t nodes_deleted = 0;
  size_t dirty_nodes = 0;          ///< Cascade size: Σ per-level dirty sets.
  size_t incremental_rounds = 0;
  size_t full_rounds = 0;          ///< Levels that hit the rebuild fallback.
  bool dk_rebuilt = false;         ///< D chain rebuilt from scratch (kreq
                                   ///< of an existing label changed).
};

struct MaintainerStats {
  uint64_t batches = 0;
  uint64_t ops = 0;
  uint64_t nodes_added = 0;
  uint64_t nodes_deleted = 0;
  uint64_t incremental_rounds = 0;
  uint64_t full_rounds = 0;
  uint64_t dirty_nodes = 0;  ///< Cumulative cascade size.
  uint64_t dk_rebuilds = 0;
};

/// \brief Keeps the A(k) chain — and optionally the D(k)-construct
/// partition — exact under graph mutations, by local re-refinement with a
/// bounded cascade (ISSUE 6 tentpole).
///
/// The algorithm per batch: apply the ops to the live adjacency-list graph,
/// materialize a fresh CSR version, then walk the partition chain level by
/// level. Level 0 (the label partition) is recomputed directly in O(V).
/// For level i ≥ 1 the dirty set is
///
///   dirty_i = new nodes ∪ parent-set-changed ∪ changed_{i-1}
///                       ∪ children(changed_{i-1})
///
/// (new nodes and parent-set-changed seed *every* level: two old parents
/// may share their level-0 block but differ at level 1, so a swap first
/// bites at level 2). Everything outside dirty_i keeps its class — a clean
/// class can neither split (all signature inputs unchanged up to a
/// consistent renaming of level-(i−1) ids) nor merge with another clean
/// class (the renaming is injective). Each dirty node re-signs against the
/// current level-(i−1) blocks and joins the clean class with the same
/// signature if one exists — candidates are found by scanning the
/// level-(i−1) extent bucket the node sits in, since a clean class's
/// members all share one such bucket — or founds a fresh class. Classes
/// are then renumbered canonically (ascending first occurrence in node
/// order, the numbering every from-scratch round produces).
///
/// When |dirty_i| exceeds rebuild_threshold · |V| the level falls back to
/// one full RefineBisimulationRound / RefineDkConstructRound instead.
///
/// Exactness is pinned two ways: tests/incremental_maintainer_test.cc
/// compares whole chains against from-scratch rebuilds over random
/// mutation traces, and the src/check mutation-trace harness replays
/// thousands of seeded traces against an independent oracle.
class IncrementalMaintainer {
 public:
  /// Seeds from `g` at version 0 with full from-scratch builds. The seed
  /// graph is only read during construction; the maintainer keeps its own
  /// materialized copy afterwards.
  explicit IncrementalMaintainer(const DataGraph& g,
                                 MaintainerOptions options = {});

  IncrementalMaintainer(const IncrementalMaintainer&) = delete;
  IncrementalMaintainer& operator=(const IncrementalMaintainer&) = delete;

  /// Applies `batch` atomically and brings every maintained partition to
  /// the new version. On failure (any op invalid) the graph and partitions
  /// are untouched. Batch node ids refer to the current version()'s compact
  /// id space; receipt ids to the new version's.
  Result<BatchReceipt> Apply(const MutationBatch& batch);

  /// The current materialized version (compact NodeId space).
  const DataGraph& graph() const { return *graph_; }
  std::shared_ptr<const DataGraph> graph_ptr() const { return graph_; }
  uint64_t version() const { return version_; }

  const MaintainerOptions& options() const { return options_; }
  const MaintainerStats& stats() const { return stats_; }

  /// The exact A(k) partition of graph(), canonically numbered, 0 ≤ k ≤
  /// k_max. `rounds`/`reached_fixpoint` are set from the chain's block
  /// counts.
  BisimulationPartition AkPartition(int k) const;

  /// The exact D(k)-construct partition for options().dk_fups (requires
  /// maintain_dk), canonically numbered.
  BisimulationPartition DkPartition() const;

  /// Replaces the maintained FUP set (full D-chain rebuild).
  void SetDkFups(std::vector<PathExpression> fups);

  /// Component specs for MStarIndex::FromComponents, numbered exactly as
  /// BuildStaticHierarchy(graph(), k_max) would number them — so the
  /// resulting hierarchy is byte-identical to a static build on the
  /// current version (level 0 in ascending-label order, later levels in
  /// first-occurrence order, fixpoint levels keeping the previous
  /// numbering).
  std::vector<MStarComponentSpec> ExportStaticSpecs() const;

  /// FromComponents(graph(), ExportStaticSpecs()).
  Result<MStarIndex> BuildMStar() const;

 private:
  /// One maintained partition level, canonically numbered, with extent
  /// buckets (CSR: nodes of block b are extent_nodes[extent_offsets[b] ..
  /// extent_offsets[b+1]], ascending).
  struct Level {
    std::vector<uint32_t> block_of;
    uint32_t num_blocks = 0;
    std::vector<uint32_t> extent_offsets;
    std::vector<NodeId> extent_nodes;
  };

  struct Chain {
    std::vector<Level> levels;
  };

  void RebuildAChain();
  void RebuildDChain();

  /// Recomputes level 0 of `chain` (label partition, first-occurrence
  /// canonical) for graph() in O(V). With `append_only` (the level's first
  /// old_num_nodes entries are known unchanged) it only classifies the
  /// appended tail and patches the extents in place.
  void UpdateLevelZero(Chain* chain, bool append_only = false,
                       size_t old_num_nodes = 0) const;

  /// Advances every level of `chain` past level 0 to the current graph_.
  /// `kreq` selects the D(k) freeze schedule (nullptr = all-active A
  /// rounds); `seed` is the per-level base dirty set (new nodes ∪
  /// parent-set-changed); `new_to_old` maps current compact ids to the
  /// previous version's (nullptr when no deletion made the map an identity
  /// prefix of size `old_num_nodes`).
  void UpdateChain(Chain* chain, const std::vector<int32_t>* kreq,
                   const DataGraph& g, const std::vector<NodeId>& new_nodes,
                   const std::vector<NodeId>& seed,
                   const std::vector<NodeId>* new_to_old,
                   size_t old_num_nodes, bool any_deletion,
                   BatchReceipt* receipt);

  /// Builds extent buckets (and, when `canonicalize`, renumbers blocks to
  /// ascending first occurrence first). `id_bound` bounds the raw ids in
  /// block_of. Reuses the scratch members — one fused renumber+count pass,
  /// no per-call allocation in steady state.
  void FinishLevel(Level* lvl, std::vector<uint32_t>&& block_of,
                   uint32_t id_bound, bool canonicalize) const;

  /// Append-only finish: lvl->block_of already holds the new assignments
  /// (old prefix untouched, appended tail classified with raw ids <
  /// id_bound). Renumbers only the fresh classes (old canonical ids cannot
  /// move — their first occurrences are all below the appended range) and
  /// splices the appended nodes into the extent buckets by one backward
  /// merge instead of a full rebuild.
  void PatchLevelAppendOnly(Level* lvl, size_t old_num_nodes,
                            uint32_t old_blocks, uint32_t id_bound) const;

  std::shared_ptr<const DataGraph> graph_;
  MutableDataGraph live_;
  std::vector<uint32_t> stable_of_;  ///< compact → stable, current version.
  std::vector<NodeId> compact_of_;   ///< stable → compact, current version.
  uint64_t version_ = 0;

  MaintainerOptions options_;
  MaintainerStats stats_;

  Chain a_chain_;                  ///< Levels 0..k_max.
  Chain d_chain_;                  ///< Levels 0..max kreq (maintain_dk).
  std::vector<int32_t> dk_kreq_;   ///< Per-label requirement, current fups.

  /// Apply-path scratch, reused across batches so the steady state is
  /// allocation-free. The stamp arrays are epoch-versioned in place of
  /// cleared bitmaps (an O(num_blocks) memset per level otherwise).
  mutable std::vector<uint32_t> scratch_renum_;
  mutable std::vector<uint32_t> scratch_cursor_;
  mutable std::vector<uint32_t> scratch_counts_;
  mutable std::vector<uint32_t> scratch_bucket_stamp_;
  mutable std::vector<uint32_t> scratch_class_stamp_;
  mutable uint32_t scratch_epoch_ = 0;
};

}  // namespace mrx::mutate

#endif  // MRX_MUTATE_INCREMENTAL_MAINTAINER_H_
