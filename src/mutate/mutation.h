#ifndef MRX_MUTATE_MUTATION_H_
#define MRX_MUTATE_MUTATION_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/data_graph.h"

namespace mrx::mutate {

/// \brief A subtree to be appended: local node 0 is the subtree root that
/// gets attached to the target parent by a regular edge. Internal edges
/// reference local positions in `labels` and may form any shape (including
/// local reference cycles) — the paper's data model is a graph, not a tree.
struct SubtreeSpec {
  struct Edge {
    uint32_t from = 0;
    uint32_t to = 0;
    EdgeKind kind = EdgeKind::kRegular;
  };

  std::vector<std::string> labels;
  std::vector<Edge> edges;

  size_t num_nodes() const { return labels.size(); }
};

/// \brief One update to the data graph (§2 model: regular containment
/// edges plus ID/IDREF reference edges).
///
/// Node ids (`target`, `ref_target`) always refer to the graph *version
/// current when the batch is applied* — the compact NodeId space of the
/// snapshot a client last read. Ids never shift mid-batch: the mutable
/// graph resolves them to stable ids up front, so a batch like
/// [Delete(5), AddRef(7, 3)] means exactly what the client saw.
struct Mutation {
  enum class Kind : uint8_t {
    kAppendSubtree,   ///< Attach `subtree` under `target` (regular edge).
    kDeleteSubtree,   ///< Remove `target` and everything regular-reachable
                      ///< from it; IDREF edges into the doomed set from
                      ///< outside are dropped (stranded references).
    kAddRefEdge,      ///< Add a reference edge `target` → `ref_target`.
    kRemoveRefEdge,   ///< Remove the reference edge `target` → `ref_target`.
  };

  Kind kind = Kind::kAppendSubtree;
  NodeId target = 0;
  NodeId ref_target = 0;   ///< Edge head for the reference-edge ops.
  SubtreeSpec subtree;     ///< Payload for kAppendSubtree.

  static Mutation Append(NodeId parent, SubtreeSpec spec) {
    Mutation m;
    m.kind = Kind::kAppendSubtree;
    m.target = parent;
    m.subtree = std::move(spec);
    return m;
  }

  static Mutation AppendLeaf(NodeId parent, std::string label) {
    SubtreeSpec spec;
    spec.labels.push_back(std::move(label));
    return Append(parent, std::move(spec));
  }

  static Mutation Delete(NodeId victim) {
    Mutation m;
    m.kind = Kind::kDeleteSubtree;
    m.target = victim;
    return m;
  }

  static Mutation AddRef(NodeId from, NodeId to) {
    Mutation m;
    m.kind = Kind::kAddRefEdge;
    m.target = from;
    m.ref_target = to;
    return m;
  }

  static Mutation RemoveRef(NodeId from, NodeId to) {
    Mutation m;
    m.kind = Kind::kRemoveRefEdge;
    m.target = from;
    m.ref_target = to;
    return m;
  }
};

/// A batch of mutations applied atomically (all ops validate and apply, or
/// none do) and published as one new graph version.
using MutationBatch = std::vector<Mutation>;

}  // namespace mrx::mutate

#endif  // MRX_MUTATE_MUTATION_H_
