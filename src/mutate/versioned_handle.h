#ifndef MRX_MUTATE_VERSIONED_HANDLE_H_
#define MRX_MUTATE_VERSIONED_HANDLE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <utility>
#include <vector>

#include "graph/data_graph.h"
#include "index/m_star_index.h"
#include "index/strategy_chooser.h"
#include "query/data_evaluator.h"

namespace mrx::mutate {

/// \brief One published version: the graph, the index built over *that*
/// graph, the strategy chooser built over *that* index, and a pool of
/// graph-sized validators — everything a reader needs, kept alive as one
/// unit.
///
/// This generalizes the server refiner's clone-and-publish: with a single
/// immutable graph only the index needed swapping; once mutations create
/// new graph versions, a reader must never pair index N with graph N+1, so
/// the whole tuple travels together. A reader that acquired snapshot N
/// keeps evaluating against N — exact answers for the version it read —
/// while N+1 publishes; the shared_ptr keeps N alive until its last reader
/// returns.
class VersionSnapshot {
 public:
  VersionSnapshot(std::shared_ptr<const DataGraph> graph,
                  std::shared_ptr<const MStarIndex> index,
                  std::shared_ptr<const StrategyChooser> chooser,
                  uint64_t epoch, uint64_t version)
      : graph_(std::move(graph)),
        index_(std::move(index)),
        chooser_(std::move(chooser)),
        epoch_(epoch),
        version_(version) {}

  VersionSnapshot(const VersionSnapshot&) = delete;
  VersionSnapshot& operator=(const VersionSnapshot&) = delete;

  const DataGraph& graph() const { return *graph_; }
  std::shared_ptr<const DataGraph> graph_ptr() const { return graph_; }
  const MStarIndex& index() const { return *index_; }
  const StrategyChooser& chooser() const { return *chooser_; }

  /// Answer-cache epoch this snapshot was published under (monotonic
  /// across every publication source: refinement and mutation).
  uint64_t epoch() const { return epoch_; }

  /// Graph version (number of mutation batches applied before this
  /// snapshot).
  uint64_t version() const { return version_; }

  /// RAII lease of a pooled DataEvaluator bound to this snapshot's graph.
  /// Validators hold graph-sized scratch, so they are pooled — but per
  /// snapshot: a validator must not outlive its graph version.
  class EvaluatorLease {
   public:
    explicit EvaluatorLease(VersionSnapshot* snapshot) : snapshot_(snapshot) {
      {
        std::lock_guard<std::mutex> lock(snapshot_->pool_mu_);
        if (!snapshot_->pool_.empty()) {
          evaluator_ = std::move(snapshot_->pool_.back());
          snapshot_->pool_.pop_back();
        }
      }
      if (evaluator_ == nullptr) {
        evaluator_ = std::make_unique<DataEvaluator>(snapshot_->graph());
      }
    }

    ~EvaluatorLease() {
      std::lock_guard<std::mutex> lock(snapshot_->pool_mu_);
      snapshot_->pool_.push_back(std::move(evaluator_));
    }

    EvaluatorLease(const EvaluatorLease&) = delete;
    EvaluatorLease& operator=(const EvaluatorLease&) = delete;

    DataEvaluator* get() { return evaluator_.get(); }

   private:
    VersionSnapshot* snapshot_;
    std::unique_ptr<DataEvaluator> evaluator_;
  };

 private:
  std::shared_ptr<const DataGraph> graph_;
  std::shared_ptr<const MStarIndex> index_;
  std::shared_ptr<const StrategyChooser> chooser_;
  uint64_t epoch_ = 0;
  uint64_t version_ = 0;

  std::mutex pool_mu_;
  std::vector<std::unique_ptr<DataEvaluator>> pool_;
};

/// \brief The publication point: holds the current VersionSnapshot and
/// assigns epochs. Acquire is a shared-lock pointer copy (readers never
/// wait on a publish in progress longer than the two pointer swaps);
/// Publish stamps the next epoch and swaps. Writers (refiner thread,
/// mutation appliers) must serialize among themselves externally — the
/// handle orders publications but does not merge concurrent index builds.
class VersionedIndexHandle {
 public:
  VersionedIndexHandle() = default;

  std::shared_ptr<VersionSnapshot> Acquire() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return current_;
  }

  /// Publishes a new version; returns the snapshot with its assigned epoch
  /// (0 for the first publication, then monotonically increasing — the
  /// answer-cache epoch contract).
  std::shared_ptr<VersionSnapshot> Publish(
      std::shared_ptr<const DataGraph> graph,
      std::shared_ptr<const MStarIndex> index,
      std::shared_ptr<const StrategyChooser> chooser, uint64_t version) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto snapshot = std::make_shared<VersionSnapshot>(
        std::move(graph), std::move(index), std::move(chooser), next_epoch_++,
        version);
    current_ = snapshot;
    return snapshot;
  }

  uint64_t epoch() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return current_ != nullptr ? current_->epoch() : 0;
  }

 private:
  mutable std::shared_mutex mu_;
  std::shared_ptr<VersionSnapshot> current_;
  uint64_t next_epoch_ = 0;
};

}  // namespace mrx::mutate

#endif  // MRX_MUTATE_VERSIONED_HANDLE_H_
