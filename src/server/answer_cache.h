#ifndef MRX_SERVER_ANSWER_CACHE_H_
#define MRX_SERVER_ANSWER_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "index/evaluator.h"
#include "index/extent.h"
#include "obs/metrics.h"
#include "util/lru_cache.h"

namespace mrx::server {

/// \brief An immutable cached query answer, shared between the cache and
/// every reader that hit it.
///
/// The answer set is held as an Extent, so a large answer sits in the
/// cache in its compressed representation and a hit hands out a handle
/// (refcount bump) instead of deep-copying vectors under the shard lock.
/// Query stats are deliberately absent: a cache hit visits no nodes, so
/// the session rebuilds a zeroed QueryStats on every hit anyway.
struct CachedAnswer {
  Extent answer;                      ///< Sorted data-node answer set.
  std::vector<IndexNodeId> target;    ///< Target index nodes.
  bool precise = true;                ///< Was the index precise?
};

using CachedAnswerPtr = std::shared_ptr<const CachedAnswer>;

/// \brief A thread-safe LRU cache of query answers, sharded by key hash.
///
/// This is the concurrent replacement for AdaptiveIndexSession's
/// single-threaded memo (and the paper's §2 reading of APEX: "an
/// efficiently organized cache of answers to FUPs"). Each shard is an
/// independently locked LruCache, so workers hitting different shards
/// never contend; the total capacity is split evenly across shards.
///
/// Entries are tagged with the index epoch they were computed under.
/// Publishing a refined index bumps the epoch and clears the cache; a
/// racing insert that started under the old epoch is rejected by Put, so
/// readers never see an entry whose stats/precision predate the published
/// index (answers themselves are always exact either way — the data graph
/// is immutable).
class ShardedAnswerCache {
 public:
  /// `capacity` is the total entry bound across all shards; `num_shards`
  /// is rounded up to a power of two. A capacity of 0 disables caching.
  ShardedAnswerCache(size_t capacity, size_t num_shards);

  /// Returns a shared handle to the cached answer for `key` (refreshing
  /// its recency), or null on miss. The handle stays valid after
  /// Invalidate/eviction — entries are immutable and refcounted.
  CachedAnswerPtr Get(const std::string& key);

  /// Inserts `value` computed under `epoch`; dropped silently if the
  /// current epoch has moved on (a refinement was published in between).
  void Put(const std::string& key, CachedAnswerPtr value, uint64_t epoch);

  /// Seals a freshly computed result into an immutable cache entry.
  /// `result.answer` must be sorted and duplicate-free (QueryResult's
  /// contract); the Extent conversion may compress it.
  static CachedAnswerPtr Wrap(const QueryResult& result);

  /// Clears all shards and records `new_epoch` as current. Called by the
  /// refinement worker while it holds the index write lock.
  void Invalidate(uint64_t new_epoch);

  /// Current entry count across shards (approximate under concurrency).
  size_t size() const;

  size_t num_shards() const { return shards_.size(); }

  /// Per-shard telemetry counters, accumulated since construction
  /// (Invalidate clears entries, not counters).
  struct ShardStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    /// Puts rejected because the index epoch moved between computing the
    /// answer and inserting it (the stale-entry guard the differential
    /// stress checker asserts on).
    uint64_t stale_drops = 0;
  };

  /// One ShardStats per shard, in shard order. The aggregate is also
  /// mirrored into the process-global metrics registry
  /// (mrx_answer_cache_{hits,misses,evictions}_total).
  std::vector<ShardStats> PerShardStats() const;

 private:
  struct Shard {
    std::mutex mu;
    LruCache<std::string, CachedAnswerPtr> lru;
    uint64_t epoch = 0;
    ShardStats stats;

    explicit Shard(size_t capacity) : lru(capacity) {}
  };

  Shard& ShardFor(const std::string& key) {
    return *shards_[std::hash<std::string>{}(key) & shard_mask_];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  size_t shard_mask_;

  // Global-registry mirrors of the aggregate counters; resolved once.
  obs::Counter* hits_counter_;
  obs::Counter* misses_counter_;
  obs::Counter* evictions_counter_;
};

}  // namespace mrx::server

#endif  // MRX_SERVER_ANSWER_CACHE_H_
