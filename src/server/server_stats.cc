#include "server/server_stats.h"

namespace mrx::server {

std::vector<std::string> ServerStatsHeaders() {
  return {"config",  "workers",        "queries",     "qps",
          "p50_us",  "p95_us",         "p99_us",      "cache_hit_rate",
          "avg_query_cost", "refinements", "rejected", "utilization",
          "epoch",   "graph_version",  "slow_q"};
}

void AppendServerStatsRow(const ServerStats& stats, const std::string& label,
                          double qps, TableWriter* table) {
  const double avg_cost =
      stats.queries_answered == 0
          ? 0.0
          : static_cast<double>(stats.cumulative_cost.total()) /
                static_cast<double>(stats.queries_answered);
  table->AddRowValues(label, stats.num_workers, stats.queries_answered, qps,
                      stats.LatencyUs(50), stats.LatencyUs(95),
                      stats.LatencyUs(99), stats.CacheHitRate(), avg_cost,
                      stats.refinements_applied, stats.rejected,
                      stats.AvgWorkerUtilization(), stats.index_epoch,
                      stats.graph_version, stats.slow_queries);
}

}  // namespace mrx::server
