#include "server/query_server.h"

#include <algorithm>
#include <future>
#include <utility>

namespace mrx::server {

QueryServer::QueryServer(const DataGraph& graph, QueryServerOptions options)
    : options_(options),
      session_(graph, options.session),
      queue_(std::max<size_t>(1, options.queue_capacity)) {
  const size_t n = std::max<size_t>(1, options_.num_workers);
  worker_stats_.reserve(n);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    worker_stats_.push_back(std::make_unique<WorkerStats>());
    workers_.emplace_back(
        [this, stats = worker_stats_.back().get()] { WorkerLoop(stats); });
  }
}

QueryServer::~QueryServer() { Shutdown(); }

Status QueryServer::Submit(PathExpression query, Callback done) {
  Request request{std::move(query), std::move(done), Clock::now()};
  if (!queue_.TryPush(request)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable(queue_.closed()
                                   ? "server is shutting down"
                                   : "request queue full; retry later");
  }
  return Status::Ok();
}

Result<QueryResult> QueryServer::Execute(const PathExpression& query) {
  auto promise = std::make_shared<std::promise<QueryResult>>();
  std::future<QueryResult> answer = promise->get_future();
  Request request{query,
                  [promise](const QueryResult& r) { promise->set_value(r); },
                  Clock::now()};
  if (!queue_.Push(std::move(request))) {
    return Status::Unavailable("server is shutting down");
  }
  return answer.get();
}

void QueryServer::WorkerLoop(WorkerStats* stats) {
  for (;;) {
    std::optional<Request> request = queue_.Pop();
    if (!request.has_value()) return;  // Closed and drained.
    QueryResult result = session_.Query(request->query);
    const auto elapsed = Clock::now() - request->enqueued_at;
    {
      std::lock_guard<std::mutex> lock(stats->mu);
      ++stats->queries;
      stats->latency_ns.Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()));
    }
    if (request->done) request->done(result);
  }
}

void QueryServer::Shutdown() {
  if (shutdown_.exchange(true)) {
    return;  // Already shut down (workers joined exactly once).
  }
  queue_.Close();
  for (std::thread& t : workers_) t.join();
}

ServerStats QueryServer::Snapshot() const {
  ServerStats stats;
  stats.num_workers = workers_.size();
  stats.queue_depth = queue_.size();
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  for (const auto& ws : worker_stats_) {
    std::lock_guard<std::mutex> lock(ws->mu);
    stats.latency.Merge(ws->latency_ns);
  }
  stats.queries_answered = session_.queries_answered();
  stats.cache_hits = session_.cache_hits();
  stats.cumulative_cost = session_.cumulative_stats();
  stats.refinements_applied = session_.refinements_applied();
  stats.index_publications = session_.index_publications();
  stats.observations_pending = session_.observations_pending();
  stats.cache_entries = session_.cache_entries();
  return stats;
}

}  // namespace mrx::server
