#include "server/query_server.h"

#include <algorithm>
#include <future>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mrx::server {
namespace {

/// Process-global server gauges/counters, shared by every QueryServer in
/// the process (in practice one; concurrent bench servers would
/// last-writer-win on the gauges, which telemetry tolerates).
struct ServerMetrics {
  obs::Gauge* queue_depth = obs::MetricsRegistry::Global().GetGauge(
      "mrx_server_queue_depth");
  obs::Gauge* workers =
      obs::MetricsRegistry::Global().GetGauge("mrx_server_workers");
  obs::Counter* rejected = obs::MetricsRegistry::Global().GetCounter(
      "mrx_server_rejected_total");
  obs::Counter* busy_ns = obs::MetricsRegistry::Global().GetCounter(
      "mrx_server_worker_busy_ns_total");
};

ServerMetrics& Metrics() {
  static ServerMetrics* const metrics = new ServerMetrics();
  return *metrics;
}

}  // namespace

QueryServer::QueryServer(const DataGraph& graph, QueryServerOptions options)
    : options_(options),
      session_(graph, options.session),
      queue_(std::max<size_t>(1, options.queue_capacity)) {
  const size_t n = std::max<size_t>(1, options_.num_workers);
  worker_stats_.reserve(n);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    worker_stats_.push_back(std::make_unique<WorkerStats>());
    workers_.emplace_back(
        [this, stats = worker_stats_.back().get()] { WorkerLoop(stats); });
  }
  if (options_.session.watchdog != nullptr) {
    // Queue-age probe: time since a worker last dequeued, while requests
    // are waiting. Catches a wedged worker pool (queue non-empty, nobody
    // draining) that per-activity monitors cannot see.
    last_dequeue_ns_.store(obs::MonotonicNowNs(), std::memory_order_relaxed);
    queue_probe_id_ = options_.session.watchdog->RegisterProbe(
        "request_queue", [this]() -> uint64_t {
          if (queue_.size() == 0) return 0;
          const uint64_t last =
              last_dequeue_ns_.load(std::memory_order_relaxed);
          const uint64_t now = obs::MonotonicNowNs();
          return now > last ? now - last : 0;
        });
  }
}

QueryServer::~QueryServer() { Shutdown(); }

Status QueryServer::Submit(PathExpression query, Callback done) {
  Request request{std::move(query), std::move(done), Clock::now()};
  if (!queue_.TryPush(request)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    Metrics().rejected->Increment();
    return Status::Unavailable(queue_.closed()
                                   ? "server is shutting down"
                                   : "request queue full; retry later");
  }
  obs::FlightRecorder::Global().Record(obs::FlightEventType::kQueryAdmit,
                                       queue_.size());
  return Status::Ok();
}

Result<QueryResult> QueryServer::Execute(const PathExpression& query) {
  auto promise = std::make_shared<std::promise<QueryResult>>();
  std::future<QueryResult> answer = promise->get_future();
  Request request{query,
                  [promise](const QueryResult& r) { promise->set_value(r); },
                  Clock::now()};
  if (!queue_.Push(std::move(request))) {
    return Status::Unavailable("server is shutting down");
  }
  return answer.get();
}

void QueryServer::WorkerLoop(WorkerStats* stats) {
  for (;;) {
    std::optional<Request> request = queue_.Pop();
    if (!request.has_value()) return;  // Closed and drained.
    last_dequeue_ns_.store(obs::MonotonicNowNs(), std::memory_order_relaxed);
    const auto processing_start = Clock::now();
    QueryResult result = session_.Query(request->query);
    const auto now = Clock::now();
    const uint64_t busy_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            now - processing_start)
            .count());
    const auto elapsed = now - request->enqueued_at;
    {
      std::lock_guard<std::mutex> lock(stats->mu);
      ++stats->queries;
      stats->busy_ns += busy_ns;
      stats->latency_ns.Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()));
    }
    Metrics().busy_ns->Increment(busy_ns);
    // Completion is signalled only after the stats are recorded: a caller
    // unblocked by done() may Snapshot() immediately and must see this
    // query in the latency histogram.
    if (request->done) request->done(result);
  }
}

void QueryServer::Shutdown() {
  if (shutdown_.exchange(true)) {
    return;  // Already shut down (workers joined exactly once).
  }
  if (queue_probe_id_ != 0 && options_.session.watchdog != nullptr) {
    // Unregister before the workers stop draining, or an idle shutdown
    // with queued rejects would read as a stall.
    options_.session.watchdog->UnregisterProbe(queue_probe_id_);
  }
  queue_.Close();
  for (std::thread& t : workers_) t.join();
}

ServerStats QueryServer::Snapshot() const {
  ServerStats stats;
  stats.num_workers = workers_.size();
  stats.queue_depth = queue_.size();
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.uptime_seconds =
      std::chrono::duration<double>(Clock::now() - started_at_).count();
  stats.worker_busy_ns.reserve(worker_stats_.size());
  for (const auto& ws : worker_stats_) {
    std::lock_guard<std::mutex> lock(ws->mu);
    stats.latency.Merge(ws->latency_ns);
    stats.worker_busy_ns.push_back(ws->busy_ns);
  }
  // The pull-style gauges refresh whenever someone looks (snapshots are
  // how this server is scraped; there is no background ticker thread).
  Metrics().queue_depth->Set(static_cast<int64_t>(stats.queue_depth));
  Metrics().workers->Set(static_cast<int64_t>(stats.num_workers));
  stats.queries_answered = session_.queries_answered();
  stats.cache_hits = session_.cache_hits();
  stats.cumulative_cost = session_.cumulative_stats();
  stats.refinements_applied = session_.refinements_applied();
  stats.index_publications = session_.index_publications();
  stats.observations_pending = session_.observations_pending();
  stats.cache_entries = session_.cache_entries();
  stats.index_epoch = session_.index_epoch();
  stats.graph_version = session_.graph_version();
  stats.slow_queries = session_.slow_queries();
  stats.last_slow_trace_id = session_.last_slow_trace_id();
  stats.estimated_cost_units = session_.estimated_cost_units();
  return stats;
}

}  // namespace mrx::server
