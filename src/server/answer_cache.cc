#include "server/answer_cache.h"

#include <algorithm>
#include <bit>

namespace mrx::server {

ShardedAnswerCache::ShardedAnswerCache(size_t capacity, size_t num_shards)
    : hits_counter_(obs::MetricsRegistry::Global().GetCounter(
          "mrx_answer_cache_hits_total")),
      misses_counter_(obs::MetricsRegistry::Global().GetCounter(
          "mrx_answer_cache_misses_total")),
      evictions_counter_(obs::MetricsRegistry::Global().GetCounter(
          "mrx_answer_cache_evictions_total")) {
  const size_t shards = std::bit_ceil(std::max<size_t>(1, num_shards));
  shard_mask_ = shards - 1;
  // Split the budget evenly; round up so the total is never below the
  // requested capacity (a shard capacity of 0 would disable its cache).
  const size_t per_shard =
      capacity == 0 ? 0 : (capacity + shards - 1) / shards;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(per_shard));
  }
}

CachedAnswerPtr ShardedAnswerCache::Get(const std::string& key) {
  Shard& shard = ShardFor(key);
  CachedAnswerPtr hit;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const CachedAnswerPtr* cached = shard.lru.Get(key);
    if (cached != nullptr) {
      ++shard.stats.hits;
      hit = *cached;  // Refcount bump; no payload copy under the lock.
    } else {
      ++shard.stats.misses;
    }
  }
  (hit ? hits_counter_ : misses_counter_)->Increment();
  return hit;
}

void ShardedAnswerCache::Put(const std::string& key, CachedAnswerPtr value,
                             uint64_t epoch) {
  Shard& shard = ShardFor(key);
  bool evicted = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.epoch != epoch) {  // Stale: index republished since.
      ++shard.stats.stale_drops;
      return;
    }
    evicted = shard.lru.Put(key, std::move(value));
    if (evicted) ++shard.stats.evictions;
  }
  if (evicted) evictions_counter_->Increment();
}

CachedAnswerPtr ShardedAnswerCache::Wrap(const QueryResult& result) {
  auto entry = std::make_shared<CachedAnswer>();
  entry->answer = Extent::FromSorted(std::vector<NodeId>(result.answer));
  entry->target = result.target;
  entry->precise = result.precise;
  return entry;
}

void ShardedAnswerCache::Invalidate(uint64_t new_epoch) {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.Clear();
    shard->epoch = new_epoch;
  }
}

std::vector<ShardedAnswerCache::ShardStats> ShardedAnswerCache::PerShardStats()
    const {
  std::vector<ShardStats> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.push_back(shard->stats);
  }
  return out;
}

size_t ShardedAnswerCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

}  // namespace mrx::server
