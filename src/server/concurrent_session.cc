#include "server/concurrent_session.h"

#include <utility>

#include "obs/flight_recorder.h"
#include "obs/query_cost.h"

namespace mrx::server {

ConcurrentSession::SessionMetrics::SessionMetrics() {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  queries_total = registry.GetCounter("mrx_queries_total");
  cache_lookup_ns =
      registry.GetHistogram("mrx_query_phase_cache_lookup_ns");
  eval_ns = registry.GetHistogram("mrx_query_phase_eval_ns");
  index_probe_ns = registry.GetHistogram("mrx_query_phase_index_probe_ns");
  validation_ns =
      registry.GetHistogram("mrx_query_phase_data_validation_ns");
  fup_promotions = registry.GetCounter("mrx_refine_fup_promotions_total");
  partition_splits =
      registry.GetCounter("mrx_refine_partition_splits_total");
  observations_dropped =
      registry.GetCounter("mrx_refine_observations_dropped_total");
  publish_ns = registry.GetHistogram("mrx_refine_publish_ns");
  index_epoch = registry.GetGauge("mrx_index_epoch");
  index_components = registry.GetGauge("mrx_index_components");
  index_physical_nodes = registry.GetGauge("mrx_index_physical_nodes");
  index_physical_edges = registry.GetGauge("mrx_index_physical_edges");
  inbox_backlog = registry.GetGauge("mrx_refine_inbox_backlog");
  pool_threads = registry.GetGauge("mrx_refine_pool_threads");
  pool_jobs = registry.GetGauge("mrx_refine_pool_jobs_total");
  pool_busy_ns = registry.GetGauge("mrx_refine_pool_busy_ns_total");
}

ConcurrentSession::ConcurrentSession(const DataGraph& graph,
                                     ConcurrentSessionOptions options)
    : graph_(graph),
      options_(options),
      cache_(options.cache_results ? options.cache_capacity : 0,
             options.cache_shards == 0 ? 16 : options.cache_shards),
      fups_(FupExtractor::Options{options.refine_after, 0}),
      // The seed graph stays caller-owned (the pre-mutation contract); the
      // aliasing pointer lets it ride in snapshots next to maintainer-owned
      // successors.
      master_graph_(&graph, [](const DataGraph*) {}),
      master_(std::make_unique<MStarIndex>(graph)) {
  if (options.refine_threads > 1) {
    refine_pool_ = std::make_unique<ThreadPool>(options.refine_threads);
    master_->set_thread_pool(refine_pool_.get());
  }
  metrics_.pool_threads->Set(static_cast<int64_t>(
      refine_pool_ != nullptr ? refine_pool_->num_threads() : 1));
  if (options_.watchdog != nullptr) {
    refine_activity_ = options_.watchdog->RegisterActivity("refine_publish");
    mutate_activity_ = options_.watchdog->RegisterActivity("mutation_apply");
  }
  // Seed publication: epoch 0, graph version 0. publications_ counts only
  // post-seed publications, so index_epoch() == index_publications() holds
  // for mutation-free sessions.
  auto fresh = std::make_shared<const MStarIndex>(master_->Clone());
  auto chooser = std::make_shared<const StrategyChooser>(*fresh);
  handle_.Publish(master_graph_, std::move(fresh), std::move(chooser),
                  /*version=*/0);
  refiner_ = std::thread([this] { RefineLoop(); });
}

ConcurrentSession::~ConcurrentSession() {
  {
    std::lock_guard<std::mutex> lock(inbox_mu_);
    stop_ = true;
  }
  inbox_cv_.notify_all();
  refiner_.join();
}

QueryResult ConcurrentSession::EvaluateOn(
    const mutate::VersionSnapshot& snapshot, const PathExpression& query,
    DataEvaluator* validator, MStarQueryStrategy* used) const {
  const MStarIndex& index = snapshot.index();
  MStarQueryStrategy chosen = MStarQueryStrategy::kTopDown;
  QueryResult result;
  switch (options_.strategy) {
    case SessionOptions::Strategy::kNaive:
      chosen = MStarQueryStrategy::kNaive;
      result = index.QueryNaive(query, validator);
      break;
    case SessionOptions::Strategy::kBottomUp:
      chosen = MStarQueryStrategy::kBottomUp;
      result = index.QueryBottomUp(query, validator);
      break;
    case SessionOptions::Strategy::kHybrid:
      chosen = MStarQueryStrategy::kHybrid;
      result = index.QueryHybrid(query, validator);
      break;
    case SessionOptions::Strategy::kAuto:
      result = snapshot.chooser().Evaluate(index, query, validator, &chosen);
      break;
    case SessionOptions::Strategy::kTopDown:
      result = index.QueryTopDown(query, validator);
      break;
  }
  if (used != nullptr) *used = chosen;
  return result;
}

QueryResult ConcurrentSession::Query(const PathExpression& query) {
  return QueryInternal(query, nullptr).result;
}

ConcurrentSession::VersionedAnswer ConcurrentSession::QueryVersioned(
    const PathExpression& query) {
  return QueryInternal(query, nullptr);
}

QueryResult ConcurrentSession::QueryExplained(const PathExpression& query,
                                              obs::QueryDiag* diag) {
  return QueryInternal(query, diag).result;
}

ConcurrentSession::VersionedAnswer ConcurrentSession::QueryInternal(
    const PathExpression& query, obs::QueryDiag* diag) {
  const uint64_t begin_ns = obs::MonotonicNowNs();
  const bool slow_capture = options_.slow_query_ns > 0;
  // Per-query trace root; disabled (all no-ops) when there is no tracer or
  // the sampler skips this query. Phase *histograms* are recorded for
  // every query regardless — only the span events and the index-probe /
  // data-validation split are sampled (the split needs validator timing,
  // which costs two clock reads per validation call).
  obs::Span root = options_.tracer != nullptr
                       ? options_.tracer->StartTrace("query")
                       : obs::Span();

  // The whole query runs against one acquired snapshot: graph, index,
  // chooser, and validator all belong to the same version, even if a
  // refinement or mutation publishes mid-flight.
  std::shared_ptr<mutate::VersionSnapshot> snapshot = handle_.Acquire();
  VersionedAnswer answer;
  answer.epoch = snapshot->epoch();
  answer.graph_version = snapshot->version();
  obs::FlightRecorder::Global().Record(obs::FlightEventType::kQueryStart,
                                       answer.epoch, answer.graph_version);

  // The observation is recorded only *after* the cache lookup: if it went
  // to the inbox first, the refiner could promote this very query and
  // invalidate the cache between the observation and the lookup, making
  // even a single-threaded repeat nondeterministically miss.
  std::string key;
  if (options_.cache_results) {
    // The snapshot's symbol table is a superset of every version's (label
    // ids are stable across mutations), so the key is printable whatever
    // version the query was parsed against.
    key = query.ToString(snapshot->graph().symbols());
    const uint64_t lookup_start = obs::MonotonicNowNs();
    const CachedAnswerPtr hit = cache_.Get(key);
    const bool found = hit != nullptr;
    const uint64_t lookup_ns = obs::MonotonicNowNs() - lookup_start;
    metrics_.cache_lookup_ns->Record(lookup_ns);
    if (root.enabled()) {
      obs::Span lookup = root.Child("cache_lookup");
      lookup.AddAttr("hit", found ? 1 : 0);
      lookup.EndManual(lookup_start, lookup_ns);
    }
    if (found) {
      RecordObservation(query);
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      queries_answered_.fetch_add(1, std::memory_order_relaxed);
      metrics_.queries_total->Increment();
      root.AddAttr("cache_hit", 1);
      // Rehydrate outside the shard lock; stats stay zeroed (a cache hit
      // visits no nodes).
      QueryResult rehydrated;
      rehydrated.answer = hit->answer.Materialize();
      rehydrated.target = hit->target;
      rehydrated.precise = hit->precise;
      const uint64_t total_ns = obs::MonotonicNowNs() - begin_ns;
      const bool is_slow = slow_capture && total_ns >= options_.slow_query_ns;
      if (diag != nullptr || is_slow) {
        // A cache hit ran no strategy and visited nothing: the record is
        // the outcome (hit), the snapshot coordinates, and the latency.
        obs::QueryDiag local;
        obs::QueryDiag* d = diag != nullptr ? diag : &local;
        d->query = key;
        d->epoch = answer.epoch;
        d->graph_version = answer.graph_version;
        d->cache_hit = true;
        d->precise = hit->precise;
        d->latency_ns = total_ns;
        d->answer_size = hit->answer.size();
        if (is_slow) CaptureSlowQuery(d, begin_ns, 0, 0, 0);
      }
      answer.result = std::move(rehydrated);
      return answer;
    }
  }

  // On a miss, record before evaluating so promotion can overlap the
  // evaluation; the answer is exact either way (validation covers
  // under-refinement), and at worst the Put below is dropped as stale.
  RecordObservation(query);

  // The split needs validator timing (two clock reads per validation
  // call), so it stays gated — but EXPLAIN and slow-query capture force it
  // on even when the sampler skipped the span.
  const bool want_timing = root.enabled() || diag != nullptr || slow_capture;

  QueryResult result;
  MStarQueryStrategy used = MStarQueryStrategy::kTopDown;
  obs::QueryCostCounters cost;
  uint64_t validation_ns = 0;
  const uint64_t eval_start = obs::MonotonicNowNs();
  {
    // Actual-cost collection is always on for evaluated queries: the scope
    // is two thread-local stores, and its destructor feeds the process
    // totals (mrx_cost_*_total) the bench reports.
    obs::QueryCostScope cost_scope(&cost);
    mutate::VersionSnapshot::EvaluatorLease lease(snapshot.get());
    DataEvaluator* validator = lease.get();
    if (want_timing) {
      validator->ConsumeValidationNs();  // Clear any stale accumulation.
      validator->EnableValidationTiming(true);
    }
    result = EvaluateOn(*snapshot, query, validator, &used);
    if (want_timing) {
      validation_ns = validator->ConsumeValidationNs();
      validator->EnableValidationTiming(false);  // Returned to pool off.
    }
  }
  const uint64_t eval_ns = obs::MonotonicNowNs() - eval_start;
  metrics_.eval_ns->Record(eval_ns);
  const double est_cost = snapshot->chooser().EstimateCost(query, used);
  est_cost_units_.fetch_add(static_cast<uint64_t>(est_cost + 0.5),
                            std::memory_order_relaxed);
  obs::FlightRecorder::Global().Record(
      obs::FlightEventType::kStrategyDecision,
      static_cast<uint64_t>(est_cost + 0.5), 0,
      static_cast<uint16_t>(used));
  obs::FlightRecorder::Global().Record(obs::FlightEventType::kQueryPhase,
                                       eval_ns,
                                       result.stats.index_nodes_visited);
  // data_validation is accumulated across validator calls interleaved
  // with the probe, so both phase spans share the evaluation window's
  // start; their durations partition eval_ns (see docs/OBSERVABILITY.md).
  const uint64_t probe_ns =
      eval_ns >= validation_ns ? eval_ns - validation_ns : 0;
  if (root.enabled()) {
    metrics_.index_probe_ns->Record(probe_ns);
    metrics_.validation_ns->Record(validation_ns);
    obs::Span probe = root.Child("index_probe");
    probe.AddAttr("index_nodes_visited", result.stats.index_nodes_visited);
    probe.EndManual(eval_start, probe_ns);
    obs::Span validation = root.Child("data_validation");
    validation.AddAttr("data_nodes_validated",
                       result.stats.data_nodes_validated);
    validation.EndManual(eval_start, validation_ns);
    root.AddAttr("answer_size", result.answer.size());
  }
  queries_answered_.fetch_add(1, std::memory_order_relaxed);
  metrics_.queries_total->Increment();
  stat_index_nodes_.fetch_add(result.stats.index_nodes_visited,
                              std::memory_order_relaxed);
  stat_data_nodes_.fetch_add(result.stats.data_nodes_validated,
                             std::memory_order_relaxed);
  if (options_.cache_results) {
    cache_.Put(key, ShardedAnswerCache::Wrap(result), answer.epoch);
  }

  const uint64_t total_ns = obs::MonotonicNowNs() - begin_ns;
  const bool is_slow = slow_capture && total_ns >= options_.slow_query_ns;
  if (diag != nullptr || is_slow) {
    obs::QueryDiag local;
    obs::QueryDiag* d = diag != nullptr ? diag : &local;
    d->query = options_.cache_results
                   ? key
                   : query.ToString(snapshot->graph().symbols());
    d->epoch = answer.epoch;
    d->graph_version = answer.graph_version;
    d->cache_hit = false;
    d->precise = result.precise;
    d->strategy = StrategyName(used);
    d->estimated_cost = est_cost;
    for (const StrategyCandidate& c :
         snapshot->chooser().ExplainChoice(query)) {
      obs::QueryDiag::Candidate row;
      row.strategy = StrategyName(c.strategy);
      row.estimated_cost = c.estimated_cost;
      row.eligible = c.eligible;
      // Fixed-strategy sessions override the chooser: flag what actually
      // ran, keeping the chooser's estimates as the comparison column.
      row.chosen = c.strategy == used;
      d->considered.push_back(row);
    }
    d->index_nodes_visited = result.stats.index_nodes_visited;
    d->data_nodes_validated = result.stats.data_nodes_validated;
    d->SetCost(cost);
    d->eval_ns = eval_ns;
    d->latency_ns = total_ns;
    d->answer_size = result.answer.size();
    if (is_slow) {
      CaptureSlowQuery(d, begin_ns, eval_start, probe_ns, validation_ns);
    }
  }
  answer.result = std::move(result);
  return answer;
}

void ConcurrentSession::CaptureSlowQuery(obs::QueryDiag* diag,
                                         uint64_t begin_ns,
                                         uint64_t eval_start_ns,
                                         uint64_t probe_ns,
                                         uint64_t validation_ns) {
  slow_queries_.fetch_add(1, std::memory_order_relaxed);
  if (options_.tracer != nullptr) {
    // Forced trace: slow queries are exactly the ones worth a full span
    // record, so they bypass the sampler.
    obs::Span slow =
        options_.tracer->StartTrace("slow_query", /*always_sample=*/true);
    if (slow.enabled()) {
      slow.AddAttr("cache_hit", diag->cache_hit ? 1 : 0);
      slow.AddAttr("answer_size", diag->answer_size);
      if (eval_start_ns != 0) {
        obs::Span probe = slow.Child("index_probe");
        probe.AddAttr("index_nodes_visited", diag->index_nodes_visited);
        probe.EndManual(eval_start_ns, probe_ns);
        obs::Span validation = slow.Child("data_validation");
        validation.AddAttr("data_nodes_validated",
                           diag->data_nodes_validated);
        validation.EndManual(eval_start_ns, validation_ns);
      }
      diag->trace_id = slow.trace_id();
      last_slow_trace_id_.store(diag->trace_id, std::memory_order_relaxed);
      slow.EndManual(begin_ns, diag->latency_ns);
    }
  }
  obs::FlightRecorder::Global().Record(obs::FlightEventType::kSlowQuery,
                                       diag->latency_ns, diag->trace_id);
  if (options_.slow_query_log != nullptr) {
    options_.slow_query_log->Append(*diag);
  }
}

QueryResult ConcurrentSession::Peek(const PathExpression& query) {
  std::shared_ptr<mutate::VersionSnapshot> snapshot = handle_.Acquire();
  mutate::VersionSnapshot::EvaluatorLease lease(snapshot.get());
  return EvaluateOn(*snapshot, query, lease.get(), nullptr);
}

Result<ConcurrentSession::MutationReceipt> ConcurrentSession::ApplyMutations(
    const mutate::MutationBatch& batch) {
  std::lock_guard<std::mutex> lock(refine_mu_);
  const uint64_t apply_start = obs::MonotonicNowNs();
  obs::StallWatchdog::ScopedActivity watch(mutate_activity_, apply_start);
  if (maintainer_ == nullptr) {
    mutate::MaintainerOptions mo = options_.mutation;
    if (mo.pool == nullptr) mo.pool = refine_pool_.get();
    maintainer_ =
        std::make_unique<mutate::IncrementalMaintainer>(*master_graph_, mo);
  }
  MRX_ASSIGN_OR_RETURN(mutate::BatchReceipt receipt,
                       maintainer_->Apply(batch));

  // Rebuild the adaptive master over the new version and replay every FUP
  // promoted so far: the result is exactly what a fresh session on the new
  // graph would serve after promoting the same FUPs.
  master_graph_ = maintainer_->graph_ptr();
  master_ = std::make_unique<MStarIndex>(*master_graph_);
  if (refine_pool_ != nullptr) master_->set_thread_pool(refine_pool_.get());
  if (!applied_fups_.empty()) master_->RefineBatch(applied_fups_);
  graph_version_.store(receipt.version, std::memory_order_relaxed);

  const uint64_t publish_start = obs::MonotonicNowNs();
  PublishLocked();
  metrics_.publish_ns->Record(obs::MonotonicNowNs() - publish_start);
  obs::FlightRecorder::Global().Record(
      obs::FlightEventType::kMutationApply,
      obs::MonotonicNowNs() - apply_start, receipt.version);

  MutationReceipt out;
  out.batch = std::move(receipt);
  out.epoch = handle_.epoch();
  return out;
}

void ConcurrentSession::RecordObservation(const PathExpression& query) {
  {
    std::lock_guard<std::mutex> lock(inbox_mu_);
    // Never block the read path on the refiner: a full inbox sheds the
    // observation. Frequency signals are statistical — a genuinely hot
    // query will come around again.
    if (inbox_.size() >= options_.inbox_capacity) {
      metrics_.observations_dropped->Increment();
      return;
    }
    inbox_.push_back(query);
    ++submitted_;
    metrics_.inbox_backlog->Set(static_cast<int64_t>(inbox_.size()));
  }
  inbox_cv_.notify_one();
}

void ConcurrentSession::RefineLoop() {
  std::vector<PathExpression> batch;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(inbox_mu_);
      inbox_cv_.wait(lock, [&] { return stop_ || !inbox_.empty(); });
      if (inbox_.empty()) {
        if (stop_) return;
        continue;
      }
      batch.clear();
      batch.swap(inbox_);
      metrics_.inbox_backlog->Set(0);
    }

    // FUP extraction and refinement run against the private master under
    // the writer mutex (serializing with ApplyMutations) — readers are
    // undisturbed until the publish swaps the snapshot pointer.
    std::lock_guard<std::mutex> writer_lock(refine_mu_);
    const uint64_t batch_start = obs::MonotonicNowNs();
    obs::StallWatchdog::ScopedActivity watch(refine_activity_, batch_start);
    const uint64_t splits_before = master_->TotalRefinementStats().splits;
    std::vector<PathExpression> promoted;
    for (const PathExpression& q : batch) {
      if (fups_.Observe(q)) promoted.push_back(q);
    }
    // One RefineBatch call per drained inbox: target evaluation for the
    // whole promoted set fans out over the refine pool (when configured),
    // and the serial refinement that follows is identical to per-query
    // Refine calls in order.
    if (!promoted.empty()) {
      master_->RefineBatch(promoted);
      for (const PathExpression& q : promoted) {
        // Remember the promotion for post-mutation replays (dedup on the
        // printed form; label ids are stable across versions).
        if (applied_fup_keys_.insert(q.ToString(master_graph_->symbols()))
                .second) {
          applied_fups_.push_back(q);
        }
      }
      refinements_applied_.fetch_add(promoted.size(),
                                     std::memory_order_relaxed);
      metrics_.fup_promotions->Increment(promoted.size());
    }
    const uint64_t promotions = promoted.size();
    const uint64_t splits =
        master_->TotalRefinementStats().splits - splits_before;
    metrics_.partition_splits->Increment(splits);

    uint64_t publish_start = 0;
    uint64_t publish_ns = 0;
    if (promotions > 0) {
      publish_start = obs::MonotonicNowNs();
      PublishLocked();
      publish_ns = obs::MonotonicNowNs() - publish_start;
      metrics_.publish_ns->Record(publish_ns);
      obs::FlightRecorder::Global().Record(
          obs::FlightEventType::kRefinePublish, publish_ns, handle_.epoch());
    }

    // Refinement batches are rare and high-signal, so they bypass the
    // per-query sampler — every promoted batch shows up in the trace.
    if (promotions > 0 && options_.tracer != nullptr) {
      obs::Span span = options_.tracer->StartTrace("refine_batch",
                                                   /*always_sample=*/true);
      if (span.enabled()) {
        obs::Span publish = span.Child("publish");
        publish.EndManual(publish_start, publish_ns);
        span.AddAttr("batch_observations", batch.size());
        span.AddAttr("fup_promotions", promotions);
        span.AddAttr("partition_splits", splits);
        span.AddAttr("index_physical_nodes", master_->PhysicalNodeCount());
        span.EndManual(batch_start, obs::MonotonicNowNs() - batch_start);
      }
    }

    {
      std::lock_guard<std::mutex> lock(inbox_mu_);
      processed_ += batch.size();
    }
    drained_cv_.notify_all();
  }
}

void ConcurrentSession::PublishLocked() {
  // Clone and build the chooser before the handle swap: readers only ever
  // wait for the snapshot-pointer swap itself.
  auto fresh = std::make_shared<const MStarIndex>(master_->Clone());
  auto chooser = std::make_shared<const StrategyChooser>(*fresh);
  std::shared_ptr<mutate::VersionSnapshot> snapshot = handle_.Publish(
      master_graph_, std::move(fresh), std::move(chooser),
      graph_version_.load(std::memory_order_relaxed));
  // Invalidate after the swap: entries admitted before this are wiped, and
  // a racing Put tagged with an older epoch is dropped by the epoch guard —
  // so once a publication is visible, no pre-publication answer survives in
  // the cache (the mutation-staleness contract).
  cache_.Invalidate(snapshot->epoch());
  obs::FlightRecorder::Global().Record(
      obs::FlightEventType::kCacheEvictionSweep, snapshot->epoch());
  publications_.fetch_add(1, std::memory_order_relaxed);

  // Refresh the index-size gauges from the writer's master copy (equal to
  // the published clone by construction). PhysicalNodeCount walks the
  // hierarchy, but the publish just deep-cloned it, so the walk is noise
  // here.
  metrics_.index_epoch->Set(static_cast<int64_t>(snapshot->epoch()));
  metrics_.index_components->Set(
      static_cast<int64_t>(master_->num_components()));
  metrics_.index_physical_nodes->Set(
      static_cast<int64_t>(master_->PhysicalNodeCount()));
  metrics_.index_physical_edges->Set(
      static_cast<int64_t>(master_->PhysicalEdgeCount()));
  if (refine_pool_ != nullptr) {
    const ThreadPool::Stats stats = refine_pool_->stats();
    metrics_.pool_jobs->Set(static_cast<int64_t>(stats.jobs));
    metrics_.pool_busy_ns->Set(static_cast<int64_t>(stats.busy_ns));
  }
}

void ConcurrentSession::DrainRefinements() {
  std::unique_lock<std::mutex> lock(inbox_mu_);
  drained_cv_.wait(lock, [&] { return processed_ == submitted_; });
}

uint64_t ConcurrentSession::observations_pending() const {
  std::lock_guard<std::mutex> lock(inbox_mu_);
  return submitted_ - processed_;
}

QueryStats ConcurrentSession::cumulative_stats() const {
  QueryStats stats;
  stats.index_nodes_visited =
      stat_index_nodes_.load(std::memory_order_relaxed);
  stats.data_nodes_validated =
      stat_data_nodes_.load(std::memory_order_relaxed);
  return stats;
}

uint64_t ConcurrentSession::index_epoch() const { return handle_.epoch(); }

size_t ConcurrentSession::published_components() const {
  return handle_.Acquire()->index().num_components();
}

}  // namespace mrx::server
