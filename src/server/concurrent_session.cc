#include "server/concurrent_session.h"

#include <utility>

namespace mrx::server {

/// RAII lease of a pooled DataEvaluator: pops one (or builds the first for
/// this concurrency level) on construction, returns it on destruction.
class ConcurrentSession::EvaluatorLease {
 public:
  explicit EvaluatorLease(ConcurrentSession* session) : session_(session) {
    std::lock_guard<std::mutex> lock(session_->pool_mu_);
    if (!session_->evaluator_pool_.empty()) {
      evaluator_ = std::move(session_->evaluator_pool_.back());
      session_->evaluator_pool_.pop_back();
    }
    if (evaluator_ == nullptr) {
      evaluator_ = std::make_unique<DataEvaluator>(session_->graph_);
    }
  }

  ~EvaluatorLease() {
    std::lock_guard<std::mutex> lock(session_->pool_mu_);
    session_->evaluator_pool_.push_back(std::move(evaluator_));
  }

  DataEvaluator* get() { return evaluator_.get(); }

 private:
  ConcurrentSession* session_;
  std::unique_ptr<DataEvaluator> evaluator_;
};

ConcurrentSession::ConcurrentSession(const DataGraph& graph,
                                     ConcurrentSessionOptions options)
    : graph_(graph),
      options_(options),
      cache_(options.cache_results ? options.cache_capacity : 0,
             options.cache_shards == 0 ? 16 : options.cache_shards),
      fups_(FupExtractor::Options{options.refine_after, 0}),
      master_(graph) {
  published_ = std::make_unique<const MStarIndex>(master_.Clone());
  chooser_ = std::make_unique<const StrategyChooser>(*published_);
  refiner_ = std::thread([this] { RefineLoop(); });
}

ConcurrentSession::~ConcurrentSession() {
  {
    std::lock_guard<std::mutex> lock(inbox_mu_);
    stop_ = true;
  }
  inbox_cv_.notify_all();
  refiner_.join();
}

QueryResult ConcurrentSession::EvaluateLocked(const PathExpression& query,
                                              DataEvaluator* validator) const {
  switch (options_.strategy) {
    case SessionOptions::Strategy::kNaive:
      return published_->QueryNaive(query, validator);
    case SessionOptions::Strategy::kBottomUp:
      return published_->QueryBottomUp(query, validator);
    case SessionOptions::Strategy::kHybrid:
      return published_->QueryHybrid(query, validator);
    case SessionOptions::Strategy::kAuto:
      return chooser_->Evaluate(*published_, query, validator);
    case SessionOptions::Strategy::kTopDown:
      break;
  }
  return published_->QueryTopDown(query, validator);
}

QueryResult ConcurrentSession::Query(const PathExpression& query) {
  // The observation is recorded only *after* the cache lookup: if it went
  // to the inbox first, the refiner could promote this very query and
  // invalidate the cache between the observation and the lookup, making
  // even a single-threaded repeat nondeterministically miss.
  std::string key;
  if (options_.cache_results) {
    key = query.ToString(graph_.symbols());
    QueryResult hit;
    if (cache_.Get(key, &hit)) {
      RecordObservation(query);
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      queries_answered_.fetch_add(1, std::memory_order_relaxed);
      hit.stats = QueryStats{};  // A cache hit visits no nodes.
      return hit;
    }
  }

  // On a miss, record before evaluating so promotion can overlap the
  // evaluation; the answer is exact either way (validation covers
  // under-refinement), and at worst the Put below is dropped as stale.
  RecordObservation(query);

  QueryResult result;
  uint64_t epoch;
  {
    EvaluatorLease lease(this);
    std::shared_lock<std::shared_mutex> lock(index_mu_);
    epoch = epoch_;
    result = EvaluateLocked(query, lease.get());
  }
  queries_answered_.fetch_add(1, std::memory_order_relaxed);
  stat_index_nodes_.fetch_add(result.stats.index_nodes_visited,
                              std::memory_order_relaxed);
  stat_data_nodes_.fetch_add(result.stats.data_nodes_validated,
                             std::memory_order_relaxed);
  if (options_.cache_results) {
    cache_.Put(key, result, epoch);
  }
  return result;
}

QueryResult ConcurrentSession::Peek(const PathExpression& query) {
  EvaluatorLease lease(this);
  std::shared_lock<std::shared_mutex> lock(index_mu_);
  return EvaluateLocked(query, lease.get());
}

void ConcurrentSession::RecordObservation(const PathExpression& query) {
  {
    std::lock_guard<std::mutex> lock(inbox_mu_);
    // Never block the read path on the refiner: a full inbox sheds the
    // observation. Frequency signals are statistical — a genuinely hot
    // query will come around again.
    if (inbox_.size() >= options_.inbox_capacity) return;
    inbox_.push_back(query);
    ++submitted_;
  }
  inbox_cv_.notify_one();
}

void ConcurrentSession::RefineLoop() {
  std::vector<PathExpression> batch;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(inbox_mu_);
      inbox_cv_.wait(lock, [&] { return stop_ || !inbox_.empty(); });
      if (inbox_.empty()) {
        if (stop_) return;
        continue;
      }
      batch.clear();
      batch.swap(inbox_);
    }

    // FUP extraction and refinement run entirely on this thread, against
    // the private master copy — no locks held, readers undisturbed.
    bool refined = false;
    for (const PathExpression& q : batch) {
      if (fups_.Observe(q)) {
        master_.Refine(q);
        refinements_applied_.fetch_add(1, std::memory_order_relaxed);
        refined = true;
      }
    }
    if (refined) Publish();

    {
      std::lock_guard<std::mutex> lock(inbox_mu_);
      processed_ += batch.size();
    }
    drained_cv_.notify_all();
  }
}

void ConcurrentSession::Publish() {
  // Clone and build the chooser *before* taking the write lock: readers
  // only ever wait for two pointer swaps and the cache wipe.
  auto fresh = std::make_unique<const MStarIndex>(master_.Clone());
  auto chooser = std::make_unique<const StrategyChooser>(*fresh);
  {
    std::unique_lock<std::shared_mutex> lock(index_mu_);
    published_ = std::move(fresh);
    chooser_ = std::move(chooser);
    ++epoch_;
    cache_.Invalidate(epoch_);
  }
  publications_.fetch_add(1, std::memory_order_relaxed);
}

void ConcurrentSession::DrainRefinements() {
  std::unique_lock<std::mutex> lock(inbox_mu_);
  drained_cv_.wait(lock, [&] { return processed_ == submitted_; });
}

uint64_t ConcurrentSession::observations_pending() const {
  std::lock_guard<std::mutex> lock(inbox_mu_);
  return submitted_ - processed_;
}

QueryStats ConcurrentSession::cumulative_stats() const {
  QueryStats stats;
  stats.index_nodes_visited =
      stat_index_nodes_.load(std::memory_order_relaxed);
  stats.data_nodes_validated =
      stat_data_nodes_.load(std::memory_order_relaxed);
  return stats;
}

uint64_t ConcurrentSession::index_epoch() const {
  std::shared_lock<std::shared_mutex> lock(index_mu_);
  return epoch_;
}

size_t ConcurrentSession::published_components() const {
  std::shared_lock<std::shared_mutex> lock(index_mu_);
  return published_->num_components();
}

}  // namespace mrx::server
