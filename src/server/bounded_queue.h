#ifndef MRX_SERVER_BOUNDED_QUEUE_H_
#define MRX_SERVER_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace mrx::server {

/// \brief A bounded multi-producer/multi-consumer FIFO.
///
/// Producers use TryPush (non-blocking; false when full — the server maps
/// this to a kUnavailable Status, which is the backpressure signal) or Push
/// (blocks until space). Consumers use Pop, which blocks until an item is
/// available or the queue is closed; after Close(), Pop drains the
/// remaining items and then returns nullopt, so workers shut down cleanly
/// without dropping accepted work.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues without blocking. Returns false if the queue is full or
  /// closed (the item is untouched in that case).
  bool TryPush(T& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until space is available; returns false only if the queue was
  /// closed first.
  bool Push(T item) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_full_.wait(lock,
                     [&] { return closed_ || items_.size() < capacity_; });
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item arrives or the queue is closed and drained.
  std::optional<T> Pop() {
    std::optional<T> out;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
      if (items_.empty()) return std::nullopt;  // Closed and drained.
      out.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    not_full_.notify_one();
    return out;
  }

  /// Rejects future pushes and wakes all waiters. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace mrx::server

#endif  // MRX_SERVER_BOUNDED_QUEUE_H_
