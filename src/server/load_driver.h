#ifndef MRX_SERVER_LOAD_DRIVER_H_
#define MRX_SERVER_LOAD_DRIVER_H_

#include <cstddef>
#include <vector>

#include "query/path_expression.h"
#include "server/query_server.h"

namespace mrx::server {

/// Options for RunLoadDriver.
struct LoadDriverOptions {
  /// Worker threads in the server under test.
  size_t num_workers = 4;

  /// Closed-loop client threads; 0 means one client per worker. Each
  /// client submits a query, waits for the answer, and immediately submits
  /// the next — the classic closed-loop load model.
  size_t num_clients = 0;

  /// Total queries driven through the pool during the timed phase.
  size_t total_queries = 20000;

  size_t queue_capacity = 1024;

  /// Replay the workload stream once through the session before timing
  /// (off the pool), then wait for the refiner to catch up — so the timed
  /// phase measures steady-state serving, the deployment regime the
  /// paper's FUP loop converges to.
  bool prime_before_timing = true;

  /// Mutation batches per 1000 timed queries (0 disables). A dedicated
  /// mutator thread paces itself on the shared stream position and applies
  /// random batches through ConcurrentSession::ApplyMutations, so the
  /// timed phase measures serving *under live updates*.
  double mutation_rate = 0;
  size_t mutation_ops = 2;     ///< Ops per mutation batch.
  uint64_t mutation_seed = 1;

  ConcurrentSessionOptions session;
};

/// What a load run measured.
struct LoadReport {
  /// Snapshot at the end of the run (includes priming traffic in the
  /// session-level counters; worker latency histograms cover only the
  /// timed pool traffic).
  ServerStats stats;

  /// Timed-phase wall time and the queries driven during it.
  double elapsed_seconds = 0;
  size_t timed_queries = 0;

  /// Mutation batches the mutator thread applied / had rejected during
  /// the timed phase (zero unless mutation_rate > 0).
  size_t mutations_applied = 0;
  size_t mutations_rejected = 0;

  double Qps() const {
    return elapsed_seconds > 0 ? timed_queries / elapsed_seconds : 0.0;
  }
};

/// \brief Drives `workload` through a freshly built QueryServer from
/// closed-loop client threads and reports throughput plus a stats
/// snapshot. Clients cycle through the workload stream in submission
/// order, so the FUP mix matches the paper's generator regardless of
/// thread count.
LoadReport RunLoadDriver(const DataGraph& graph,
                         const std::vector<PathExpression>& workload,
                         const LoadDriverOptions& options);

}  // namespace mrx::server

#endif  // MRX_SERVER_LOAD_DRIVER_H_
