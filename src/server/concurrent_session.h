#ifndef MRX_SERVER_CONCURRENT_SESSION_H_
#define MRX_SERVER_CONCURRENT_SESSION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/session.h"
#include "index/strategy_chooser.h"
#include "mutate/incremental_maintainer.h"
#include "mutate/mutation.h"
#include "mutate/versioned_handle.h"
#include "obs/metrics.h"
#include "obs/query_diag.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "server/answer_cache.h"
#include "util/thread_pool.h"
#include "workload/fup_extractor.h"

namespace mrx::server {

/// Options for ConcurrentSession.
struct ConcurrentSessionOptions {
  /// Observations before a query becomes a FUP and triggers background
  /// refinement (the serial session's refine_after).
  size_t refine_after = 2;

  /// Evaluation strategy; kAuto uses a StrategyChooser rebuilt at each
  /// index publication.
  SessionOptions::Strategy strategy = SessionOptions::Strategy::kTopDown;

  /// Memoize answers in the sharded LRU cache.
  bool cache_results = true;

  /// Total answer-cache capacity across shards.
  size_t cache_capacity = 4096;

  /// Number of cache shards (rounded up to a power of two). More shards =
  /// less lock contention between workers; 0 picks a default.
  size_t cache_shards = 16;

  /// FUP-observation inbox bound. The read path never blocks on the
  /// refiner: observations beyond this backlog are dropped (they are
  /// statistics, not work items — a hot query will be observed again).
  size_t inbox_capacity = 1 << 16;

  /// Worker threads for the refiner's parallelizable stages (batch target
  /// evaluation and cascade regrouping; see docs/PERFORMANCE.md). 0 or 1
  /// keeps the refiner fully serial. The refined index is byte-identical
  /// for every value — parallelism changes publish latency, not results.
  size_t refine_threads = 1;

  /// Span tracer for per-query phase spans (cache lookup → index probe →
  /// data validation) and refinement telemetry. nullptr disables tracing;
  /// metrics (the process-global registry) are always on. The recorder
  /// must outlive the session. See docs/OBSERVABILITY.md.
  obs::TraceRecorder* tracer = nullptr;

  /// Options for the incremental maintainer behind ApplyMutations (cascade
  /// fallback threshold and A-chain depth; see docs/UPDATES.md). The
  /// maintainer is created lazily on the first mutation, so sessions that
  /// never mutate pay nothing.
  mutate::MaintainerOptions mutation;

  /// Slow-query capture threshold in nanoseconds; 0 disables. A query
  /// whose wall time crosses it gets a forced (sampler-bypassing) trace
  /// and a full explain record appended to `slow_query_log`. See
  /// docs/OBSERVABILITY.md "EXPLAIN & diagnostics".
  uint64_t slow_query_ns = 0;

  /// Sink for slow-query explain records; nullptr keeps capture purely in
  /// counters. Must outlive the session.
  obs::SlowQueryLog* slow_query_log = nullptr;

  /// Stall watchdog to register the refiner-publish and mutation-apply
  /// activities with (plus any caller-side probes). nullptr disables
  /// monitoring. Must outlive the session.
  obs::StallWatchdog* watchdog = nullptr;
};

/// \brief The paper's Figure 5 closed loop as a *concurrent* service: the
/// thread-safe counterpart of AdaptiveIndexSession.
///
/// Threading model (see docs/SERVER.md for the full protocol):
///  - Any number of reader threads call Query()/Peek() concurrently. Each
///    reader acquires the current VersionSnapshot — the (graph, index,
///    chooser, validator pool) tuple published as one immutable unit — and
///    evaluates entirely against it, so a publication never tears a
///    reader's view: a query that began on version N finishes on version N
///    with exact answers for N, even while N+1 publishes.
///  - Query() records its expression in a bounded inbox (mutex + swap). A
///    single background refinement worker drains the inbox, runs the FUP
///    extractor, refines a *private* master copy of the M*(k)-index, and
///    publishes a clone as a fresh snapshot. Readers therefore never
///    observe a half-refined hierarchy, and refinement cost never rides on
///    the query path.
///  - ApplyMutations() feeds a batch through the live-update subsystem
///    (src/mutate/): the IncrementalMaintainer applies it atomically and
///    brings its partitions to the new version; the session then rebuilds
///    its master index over the new graph, replays every previously
///    promoted FUP, and publishes — so the published index is
///    indistinguishable from a fresh session on the new graph that
///    promoted the same FUPs. Mutations serialize with the refiner on one
///    writer mutex; readers are never blocked beyond the snapshot-pointer
///    swap.
///  - Publishing (refinement or mutation) bumps the answer-cache epoch and
///    invalidates the sharded cache; racing inserts tagged with the old
///    epoch are dropped. This is what keeps cached answers from surviving
///    a graph mutation that changed them.
///
/// Answers are always exact for the snapshot they were computed on (as in
/// the serial session): under-refined index nodes are validated against
/// that snapshot's data graph.
class ConcurrentSession {
 public:
  /// What one ApplyMutations call did.
  struct MutationReceipt {
    /// The maintainer's receipt (new version number, appended compact ids,
    /// cascade statistics; ids refer to the new version's id space).
    mutate::BatchReceipt batch;
    /// Answer-cache epoch of the publication that made the new version
    /// visible to readers.
    uint64_t epoch = 0;
  };

  /// A query answer tagged with the snapshot it was computed on.
  struct VersionedAnswer {
    QueryResult result;
    uint64_t epoch = 0;          ///< Answer-cache epoch of the snapshot.
    uint64_t graph_version = 0;  ///< Mutation batches behind the snapshot.
  };

  explicit ConcurrentSession(const DataGraph& graph,
                             ConcurrentSessionOptions options = {});
  ~ConcurrentSession();

  ConcurrentSession(const ConcurrentSession&) = delete;
  ConcurrentSession& operator=(const ConcurrentSession&) = delete;

  /// Answers `query` on the currently published snapshot and records the
  /// observation for background FUP extraction. Thread-safe.
  QueryResult Query(const PathExpression& query);

  /// Query() plus the epoch/version of the snapshot that answered — the
  /// handle concurrent mutators and checkers use to reason about which
  /// graph version an answer is exact for.
  VersionedAnswer QueryVersioned(const PathExpression& query);

  /// Answers without recording the observation or touching the cache.
  QueryResult Peek(const PathExpression& query);

  /// Query() with a full EXPLAIN record: strategy decision table with
  /// estimated costs, actual §5-style cost counters, resolution levels
  /// touched, cache outcome, and phase timings. `diag` must be non-null;
  /// the answer is identical to Query()'s. Thread-safe.
  QueryResult QueryExplained(const PathExpression& query,
                             obs::QueryDiag* diag);

  /// Applies `batch` to the data graph atomically and publishes a new
  /// snapshot (fresh index over the new graph with every promoted FUP
  /// replayed). Node ids in `batch` refer to graph_snapshot()'s compact id
  /// space at version graph_version(). On failure nothing changes and
  /// readers keep the current snapshot. Thread-safe; mutators serialize
  /// with each other and the refiner.
  Result<MutationReceipt> ApplyMutations(const mutate::MutationBatch& batch);

  /// Blocks until every observation recorded so far has been processed by
  /// the refinement worker and any resulting index publication is visible.
  /// Tests and benchmarks use this to reach a deterministic index state.
  void DrainRefinements();

  uint64_t queries_answered() const {
    return queries_answered_.load(std::memory_order_relaxed);
  }
  uint64_t cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  uint64_t refinements_applied() const {
    return refinements_applied_.load(std::memory_order_relaxed);
  }
  uint64_t index_publications() const {
    return publications_.load(std::memory_order_relaxed);
  }

  /// Mutation batches applied so far (== graph_version()).
  uint64_t mutation_batches() const {
    return graph_version_.load(std::memory_order_relaxed);
  }

  /// Queries that crossed options.slow_query_ns (0 when capture is off).
  uint64_t slow_queries() const {
    return slow_queries_.load(std::memory_order_relaxed);
  }

  /// Trace id of the most recent slow-query capture (0 if none, or if the
  /// session has no tracer). Serves as the exemplar in ServerStats.
  uint64_t last_slow_trace_id() const {
    return last_slow_trace_id_.load(std::memory_order_relaxed);
  }

  /// Cumulative chooser-estimated cost (index-node-visit units) across all
  /// evaluated (non-cache-hit) queries — the denominator-side of the
  /// est-vs-actual cost ratio the bench reports.
  uint64_t estimated_cost_units() const {
    return est_cost_units_.load(std::memory_order_relaxed);
  }

  /// Observations recorded but not yet processed by the refiner.
  uint64_t observations_pending() const;

  /// Cumulative paper-metric cost of all Query() calls.
  QueryStats cumulative_stats() const;

  size_t cache_entries() const { return cache_.size(); }

  /// Per-shard answer-cache telemetry (hits/misses/evictions/stale drops);
  /// the check_stress harness sums stale_drops to prove the epoch guard
  /// fired rather than silently admitting stale entries.
  std::vector<ShardedAnswerCache::ShardStats> cache_shard_stats() const {
    return cache_.PerShardStats();
  }

  /// Epoch of the currently published snapshot (starts at 0, bumped per
  /// publication — refinement or mutation).
  uint64_t index_epoch() const;

  /// Graph version of the currently published snapshot (mutation batches
  /// applied; 0 until the first ApplyMutations).
  uint64_t graph_version() const {
    return graph_version_.load(std::memory_order_relaxed);
  }

  /// Component count of the currently published index.
  size_t published_components() const;

  /// The *seed* graph this session was constructed over (version 0). Kept
  /// for symbol-table access and pre-mutation callers; after
  /// ApplyMutations the current graph is graph_snapshot().
  const DataGraph& graph() const { return graph_; }

  /// The currently published graph version, kept alive by the returned
  /// pointer even across later publications.
  std::shared_ptr<const DataGraph> graph_snapshot() const {
    return handle_.Acquire()->graph_ptr();
  }

 private:
  /// Handles into the process-global MetricsRegistry, resolved once at
  /// construction (metric names: docs/OBSERVABILITY.md). Recording through
  /// them is wait-free (counters/gauges) or stripe-local (histograms).
  struct SessionMetrics {
    obs::Counter* queries_total;
    obs::Histogram* cache_lookup_ns;
    obs::Histogram* eval_ns;
    obs::Histogram* index_probe_ns;
    obs::Histogram* validation_ns;
    obs::Counter* fup_promotions;
    obs::Counter* partition_splits;
    obs::Counter* observations_dropped;
    obs::Histogram* publish_ns;
    obs::Gauge* index_epoch;
    obs::Gauge* index_components;
    obs::Gauge* index_physical_nodes;
    obs::Gauge* index_physical_edges;
    obs::Gauge* inbox_backlog;
    obs::Gauge* pool_threads;
    obs::Gauge* pool_jobs;
    obs::Gauge* pool_busy_ns;

    SessionMetrics();
  };

  QueryResult EvaluateOn(const mutate::VersionSnapshot& snapshot,
                         const PathExpression& query, DataEvaluator* validator,
                         MStarQueryStrategy* used) const;
  VersionedAnswer QueryInternal(const PathExpression& query,
                                obs::QueryDiag* diag);

  /// Slow-query bookkeeping: counter bump, forced (sampler-bypassing)
  /// trace whose id lands in diag->trace_id, kSlowQuery flight event, and
  /// the slow-log append. `eval_start_ns` == 0 means the query never
  /// evaluated (cache hit), so no phase children are emitted.
  void CaptureSlowQuery(obs::QueryDiag* diag, uint64_t begin_ns,
                        uint64_t eval_start_ns, uint64_t probe_ns,
                        uint64_t validation_ns);
  void RecordObservation(const PathExpression& query);
  void RefineLoop();

  /// Clones the master, publishes it as a fresh snapshot over
  /// master_graph_, and invalidates the answer cache under the new epoch.
  /// Caller holds refine_mu_.
  void PublishLocked();

  const DataGraph& graph_;
  const ConcurrentSessionOptions options_;

  // --- Read path ---------------------------------------------------------
  /// The publication point. Readers acquire the current snapshot (a
  /// shared-lock pointer copy) and run entirely against it.
  mutate::VersionedIndexHandle handle_;

  ShardedAnswerCache cache_;

  std::atomic<uint64_t> queries_answered_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> stat_index_nodes_{0};
  std::atomic<uint64_t> stat_data_nodes_{0};
  std::atomic<uint64_t> slow_queries_{0};
  std::atomic<uint64_t> last_slow_trace_id_{0};
  std::atomic<uint64_t> est_cost_units_{0};

  // --- Refine path -------------------------------------------------------
  mutable std::mutex inbox_mu_;
  std::condition_variable inbox_cv_;   ///< Signals the refiner.
  std::condition_variable drained_cv_; ///< Signals DrainRefinements waiters.
  std::vector<PathExpression> inbox_;
  uint64_t submitted_ = 0;  ///< Observations accepted into the inbox.
  uint64_t processed_ = 0;  ///< Observations fully handled (post-publish).
  bool stop_ = false;

  // --- Writer state (refiner thread and mutators) ------------------------
  /// Serializes every master mutation: the refiner's drain-refine-publish
  /// step and ApplyMutations. Readers never take this lock.
  std::mutex refine_mu_;

  /// The FUP extractor, the pool the writer's parallel stages run on (null
  /// when refine_threads ≤ 1; declared before the master so it outlives
  /// it), the graph version the master is built over, and the master index
  /// the writers refine before cloning it into the published snapshot. All
  /// guarded by refine_mu_ after construction.
  FupExtractor fups_;
  std::unique_ptr<ThreadPool> refine_pool_;
  std::shared_ptr<const DataGraph> master_graph_;
  std::unique_ptr<MStarIndex> master_;

  /// The live-update subsystem, created on the first ApplyMutations.
  std::unique_ptr<mutate::IncrementalMaintainer> maintainer_;

  /// Every FUP promoted so far, in promotion order (deduplicated): the
  /// replay set that makes a post-mutation rebuild land exactly where a
  /// fresh session on the new graph would after promoting the same FUPs.
  std::vector<PathExpression> applied_fups_;
  std::unordered_set<std::string> applied_fup_keys_;

  std::atomic<uint64_t> refinements_applied_{0};
  std::atomic<uint64_t> publications_{0};
  std::atomic<uint64_t> graph_version_{0};

  SessionMetrics metrics_;

  /// Watchdog-owned activities (null when options.watchdog is null); the
  /// watchdog guarantees stable addresses for its lifetime.
  obs::StallWatchdog::Activity* refine_activity_ = nullptr;
  obs::StallWatchdog::Activity* mutate_activity_ = nullptr;

  std::thread refiner_;
};

}  // namespace mrx::server

#endif  // MRX_SERVER_CONCURRENT_SESSION_H_
