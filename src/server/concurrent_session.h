#ifndef MRX_SERVER_CONCURRENT_SESSION_H_
#define MRX_SERVER_CONCURRENT_SESSION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/session.h"
#include "index/strategy_chooser.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/answer_cache.h"
#include "util/thread_pool.h"
#include "workload/fup_extractor.h"

namespace mrx::server {

/// Options for ConcurrentSession.
struct ConcurrentSessionOptions {
  /// Observations before a query becomes a FUP and triggers background
  /// refinement (the serial session's refine_after).
  size_t refine_after = 2;

  /// Evaluation strategy; kAuto uses a StrategyChooser rebuilt at each
  /// index publication.
  SessionOptions::Strategy strategy = SessionOptions::Strategy::kTopDown;

  /// Memoize answers in the sharded LRU cache.
  bool cache_results = true;

  /// Total answer-cache capacity across shards.
  size_t cache_capacity = 4096;

  /// Number of cache shards (rounded up to a power of two). More shards =
  /// less lock contention between workers; 0 picks a default.
  size_t cache_shards = 16;

  /// FUP-observation inbox bound. The read path never blocks on the
  /// refiner: observations beyond this backlog are dropped (they are
  /// statistics, not work items — a hot query will be observed again).
  size_t inbox_capacity = 1 << 16;

  /// Worker threads for the refiner's parallelizable stages (batch target
  /// evaluation and cascade regrouping; see docs/PERFORMANCE.md). 0 or 1
  /// keeps the refiner fully serial. The refined index is byte-identical
  /// for every value — parallelism changes publish latency, not results.
  size_t refine_threads = 1;

  /// Span tracer for per-query phase spans (cache lookup → index probe →
  /// data validation) and refinement telemetry. nullptr disables tracing;
  /// metrics (the process-global registry) are always on. The recorder
  /// must outlive the session. See docs/OBSERVABILITY.md.
  obs::TraceRecorder* tracer = nullptr;
};

/// \brief The paper's Figure 5 closed loop as a *concurrent* service: the
/// thread-safe counterpart of AdaptiveIndexSession.
///
/// Threading model (see docs/SERVER.md for the full protocol):
///  - Any number of reader threads call Query()/Peek() concurrently. The
///    published index is immutable and guarded by a shared mutex; each
///    reader validates through a pooled DataEvaluator, so the hot path
///    takes the lock in shared (non-exclusive) mode only.
///  - Query() records its expression in a bounded inbox (mutex + swap). A
///    single background refinement worker drains the inbox, runs the FUP
///    extractor, refines a *private* master copy of the M*(k)-index, and
///    publishes a clone under the write lock. Readers therefore never
///    observe a half-refined hierarchy, and refinement cost never rides on
///    the query path.
///  - Publishing bumps the index epoch and invalidates the sharded answer
///    cache; racing inserts tagged with the old epoch are dropped.
///
/// Answers are always exact (as in the serial session): under-refined
/// index nodes are validated against the immutable data graph.
class ConcurrentSession {
 public:
  explicit ConcurrentSession(const DataGraph& graph,
                             ConcurrentSessionOptions options = {});
  ~ConcurrentSession();

  ConcurrentSession(const ConcurrentSession&) = delete;
  ConcurrentSession& operator=(const ConcurrentSession&) = delete;

  /// Answers `query` on the currently published index and records the
  /// observation for background FUP extraction. Thread-safe.
  QueryResult Query(const PathExpression& query);

  /// Answers without recording the observation or touching the cache.
  QueryResult Peek(const PathExpression& query);

  /// Blocks until every observation recorded so far has been processed by
  /// the refinement worker and any resulting index publication is visible.
  /// Tests and benchmarks use this to reach a deterministic index state.
  void DrainRefinements();

  uint64_t queries_answered() const {
    return queries_answered_.load(std::memory_order_relaxed);
  }
  uint64_t cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  uint64_t refinements_applied() const {
    return refinements_applied_.load(std::memory_order_relaxed);
  }
  uint64_t index_publications() const {
    return publications_.load(std::memory_order_relaxed);
  }

  /// Observations recorded but not yet processed by the refiner.
  uint64_t observations_pending() const;

  /// Cumulative paper-metric cost of all Query() calls.
  QueryStats cumulative_stats() const;

  size_t cache_entries() const { return cache_.size(); }

  /// Per-shard answer-cache telemetry (hits/misses/evictions/stale drops);
  /// the check_stress harness sums stale_drops to prove the epoch guard
  /// fired rather than silently admitting stale entries.
  std::vector<ShardedAnswerCache::ShardStats> cache_shard_stats() const {
    return cache_.PerShardStats();
  }

  /// Epoch of the currently published index (starts at 0, bumped per
  /// publication).
  uint64_t index_epoch() const;

  /// Component count of the currently published index.
  size_t published_components() const;

  const DataGraph& graph() const { return graph_; }

 private:
  class EvaluatorLease;

  /// Handles into the process-global MetricsRegistry, resolved once at
  /// construction (metric names: docs/OBSERVABILITY.md). Recording through
  /// them is wait-free (counters/gauges) or stripe-local (histograms).
  struct SessionMetrics {
    obs::Counter* queries_total;
    obs::Histogram* cache_lookup_ns;
    obs::Histogram* eval_ns;
    obs::Histogram* index_probe_ns;
    obs::Histogram* validation_ns;
    obs::Counter* fup_promotions;
    obs::Counter* partition_splits;
    obs::Counter* observations_dropped;
    obs::Histogram* publish_ns;
    obs::Gauge* index_epoch;
    obs::Gauge* index_components;
    obs::Gauge* index_physical_nodes;
    obs::Gauge* index_physical_edges;
    obs::Gauge* inbox_backlog;
    obs::Gauge* pool_threads;
    obs::Gauge* pool_jobs;
    obs::Gauge* pool_busy_ns;

    SessionMetrics();
  };

  QueryResult EvaluateLocked(const PathExpression& query,
                             DataEvaluator* validator) const;
  void RecordObservation(const PathExpression& query);
  void RefineLoop();
  void Publish();

  const DataGraph& graph_;
  const ConcurrentSessionOptions options_;

  // --- Read path ---------------------------------------------------------
  /// Guards published_/chooser_/epoch_. Readers: shared; publisher:
  /// exclusive.
  mutable std::shared_mutex index_mu_;
  std::unique_ptr<const MStarIndex> published_;
  std::unique_ptr<const StrategyChooser> chooser_;
  uint64_t epoch_ = 0;

  ShardedAnswerCache cache_;

  /// Reusable validation evaluators (each holds graph-sized scratch
  /// buffers, so they are pooled rather than rebuilt per query).
  std::mutex pool_mu_;
  std::vector<std::unique_ptr<DataEvaluator>> evaluator_pool_;

  std::atomic<uint64_t> queries_answered_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> stat_index_nodes_{0};
  std::atomic<uint64_t> stat_data_nodes_{0};

  // --- Refine path -------------------------------------------------------
  mutable std::mutex inbox_mu_;
  std::condition_variable inbox_cv_;   ///< Signals the refiner.
  std::condition_variable drained_cv_; ///< Signals DrainRefinements waiters.
  std::vector<PathExpression> inbox_;
  uint64_t submitted_ = 0;  ///< Observations accepted into the inbox.
  uint64_t processed_ = 0;  ///< Observations fully handled (post-publish).
  bool stop_ = false;

  /// Refiner-thread-private state: the FUP extractor, the pool the
  /// refiner's parallel stages run on (null when refine_threads ≤ 1;
  /// declared before the master so it outlives it), and the master index
  /// the worker refines before cloning it into published_.
  FupExtractor fups_;
  std::unique_ptr<ThreadPool> refine_pool_;
  MStarIndex master_;

  std::atomic<uint64_t> refinements_applied_{0};
  std::atomic<uint64_t> publications_{0};

  SessionMetrics metrics_;

  std::thread refiner_;
};

}  // namespace mrx::server

#endif  // MRX_SERVER_CONCURRENT_SESSION_H_
