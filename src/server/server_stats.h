#ifndef MRX_SERVER_SERVER_STATS_H_
#define MRX_SERVER_SERVER_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "query/stats.h"
#include "util/latency_histogram.h"
#include "util/table_writer.h"

namespace mrx::server {

/// \brief A point-in-time aggregate of the server's per-worker counters,
/// produced by QueryServer::Snapshot(). Plain data: safe to copy around
/// and hand to reporting code with no locks held.
struct ServerStats {
  uint64_t queries_answered = 0;
  uint64_t cache_hits = 0;
  uint64_t rejected = 0;  ///< Submissions refused by backpressure.

  /// Cumulative paper-metric cost of all answered queries.
  QueryStats cumulative_cost;

  /// End-to-end per-query service latency in nanoseconds (dequeue to
  /// completion), merged across workers.
  LatencyHistogram latency;

  uint64_t refinements_applied = 0;   ///< FUP promotions refined so far.
  uint64_t index_publications = 0;    ///< Refined indexes published.
  uint64_t observations_pending = 0;  ///< Refine-inbox backlog.

  /// Answer-cache epoch of the published snapshot (bumped per publication,
  /// refinement or mutation) and the graph version it serves (mutation
  /// batches applied; 0 for a never-mutated session).
  uint64_t index_epoch = 0;
  uint64_t graph_version = 0;

  /// Slow-query capture: queries that crossed the configured threshold,
  /// and the trace id of the most recent capture (the exemplar linking
  /// these stats to the span trace; 0 = none captured / no tracer).
  uint64_t slow_queries = 0;
  uint64_t last_slow_trace_id = 0;

  /// Cumulative chooser-estimated cost (index-node-visit units) across all
  /// evaluated queries; estimated/actual is the chooser's calibration
  /// ratio reported by serve-bench.
  uint64_t estimated_cost_units = 0;

  size_t queue_depth = 0;  ///< Requests waiting in the MPMC queue.
  size_t num_workers = 0;
  size_t cache_entries = 0;

  /// Per-worker nanoseconds spent processing requests (dequeue to
  /// completion callback), in worker order, and the server's age when the
  /// snapshot was taken — together they give per-worker utilization.
  std::vector<uint64_t> worker_busy_ns;
  double uptime_seconds = 0;

  /// Mean fraction of wall time the workers spent processing requests
  /// since the server started, in [0, 1].
  double AvgWorkerUtilization() const {
    if (worker_busy_ns.empty() || uptime_seconds <= 0) return 0.0;
    double busy_seconds = 0;
    for (uint64_t ns : worker_busy_ns) busy_seconds += ns * 1e-9;
    return busy_seconds / (uptime_seconds * worker_busy_ns.size());
  }

  double CacheHitRate() const {
    return queries_answered == 0
               ? 0.0
               : static_cast<double>(cache_hits) / queries_answered;
  }

  /// Latency percentile in microseconds.
  double LatencyUs(double percentile) const {
    return latency.ValueAtPercentile(percentile) / 1000.0;
  }
};

/// Column headers matching AppendServerStatsRow, for building a TableWriter
/// whose rows track the throughput trajectory across configurations (and,
/// via RenderCsv, across PRs).
std::vector<std::string> ServerStatsHeaders();

/// Appends one row for a finished run: `label` names the configuration,
/// `qps` the measured aggregate throughput (callers time the driven phase
/// themselves — the snapshot alone cannot know the measurement window).
void AppendServerStatsRow(const ServerStats& stats, const std::string& label,
                          double qps, TableWriter* table);

}  // namespace mrx::server

#endif  // MRX_SERVER_SERVER_STATS_H_
