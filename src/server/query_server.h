#ifndef MRX_SERVER_QUERY_SERVER_H_
#define MRX_SERVER_QUERY_SERVER_H_

#include <chrono>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "server/bounded_queue.h"
#include "server/concurrent_session.h"
#include "server/server_stats.h"
#include "util/result.h"

namespace mrx::server {

struct QueryServerOptions {
  /// Worker threads draining the request queue.
  size_t num_workers = 4;

  /// Bounded MPMC request-queue capacity; Submit rejects with
  /// kUnavailable once this many requests are waiting (backpressure).
  size_t queue_capacity = 1024;

  ConcurrentSessionOptions session;
};

/// \brief A fixed-size worker pool serving path-expression queries from a
/// bounded MPMC queue over one shared ConcurrentSession.
///
/// Clients Submit() a query with a completion callback (invoked on a
/// worker thread), or use the blocking Execute() convenience. When the
/// queue is full, Submit fails fast with Status::Unavailable — the
/// backpressure contract; callers decide whether to retry, shed, or block
/// (Execute blocks). Shutdown() stops intake, finishes every accepted
/// request, and joins the workers; the destructor calls it.
///
/// Each worker keeps private latency/cost counters (merged into a
/// ServerStats by Snapshot()), so the hot path never touches a shared
/// stats lock.
class QueryServer {
 public:
  using Callback = std::function<void(const QueryResult&)>;

  explicit QueryServer(const DataGraph& graph, QueryServerOptions options = {});
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Enqueues `query`; `done` runs on a worker thread once answered.
  /// Fails with kUnavailable if the queue is full or the server is
  /// shutting down (the callback is then never invoked).
  Status Submit(PathExpression query, Callback done);

  /// Blocking convenience for closed-loop clients: waits for queue space,
  /// then for the answer. Fails only if the server is shutting down.
  Result<QueryResult> Execute(const PathExpression& query);

  /// Stops intake, completes accepted requests, joins workers. Idempotent.
  void Shutdown();

  /// Aggregates per-worker counters and session/queue gauges. Safe to call
  /// at any time, including while the server is under load.
  ServerStats Snapshot() const;

  ConcurrentSession& session() { return session_; }
  const QueryServerOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Request {
    PathExpression query;
    Callback done;
    Clock::time_point enqueued_at;
  };

  /// One worker's counters. Guarded by its own (uncontended) mutex so
  /// Snapshot can read while the worker runs; latency covers submit to
  /// completion, so queueing delay shows up in the percentiles. busy_ns
  /// covers dequeue to completion only — the utilization numerator.
  struct WorkerStats {
    mutable std::mutex mu;
    uint64_t queries = 0;
    uint64_t busy_ns = 0;
    LatencyHistogram latency_ns;
  };

  void WorkerLoop(WorkerStats* stats);

  const QueryServerOptions options_;
  ConcurrentSession session_;
  BoundedQueue<Request> queue_;
  const Clock::time_point started_at_ = Clock::now();
  std::atomic<uint64_t> rejected_{0};
  /// Monotonic time of the last worker dequeue; with a non-empty queue its
  /// age is the watchdog's queue-stall signal.
  std::atomic<uint64_t> last_dequeue_ns_{0};
  uint64_t queue_probe_id_ = 0;  ///< Watchdog probe handle; 0 = none.
  std::vector<std::unique_ptr<WorkerStats>> worker_stats_;
  std::vector<std::thread> workers_;
  std::atomic<bool> shutdown_{false};
};

}  // namespace mrx::server

#endif  // MRX_SERVER_QUERY_SERVER_H_
