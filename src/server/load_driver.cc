#include "server/load_driver.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "mutate/random_batch.h"
#include "util/rng.h"

namespace mrx::server {

LoadReport RunLoadDriver(const DataGraph& graph,
                         const std::vector<PathExpression>& workload,
                         const LoadDriverOptions& options) {
  LoadReport report;
  if (workload.empty() || options.total_queries == 0) return report;

  QueryServerOptions server_options;
  server_options.num_workers = options.num_workers;
  server_options.queue_capacity = options.queue_capacity;
  server_options.session = options.session;
  QueryServer server(graph, server_options);

  if (options.prime_before_timing) {
    for (const PathExpression& q : workload) {
      server.session().Query(q);
    }
    server.session().DrainRefinements();
  }

  const size_t num_clients =
      options.num_clients == 0 ? std::max<size_t>(1, options.num_workers)
                               : options.num_clients;

  // Clients claim global stream positions so the replayed query order (and
  // therefore the FUP mix) is independent of the client count.
  std::atomic<size_t> next{0};
  auto client = [&] {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= options.total_queries) return;
      Result<QueryResult> r = server.Execute(workload[i % workload.size()]);
      (void)r;  // Unavailable only on shutdown, which we don't race with.
    }
  };

  // The mutator races the clients: one batch per 1000/mutation_rate
  // stream positions, paced on `next`. Counters are written by the
  // mutator thread only and read after its join.
  std::atomic<bool> done{false};
  size_t mutations_applied = 0;
  size_t mutations_rejected = 0;
  std::thread mutator;
  if (options.mutation_rate > 0) {
    mutator = std::thread([&] {
      Rng rng(options.mutation_seed);
      mutate::RandomBatchOptions gen;
      gen.num_ops = options.mutation_ops;
      const double stride = 1000.0 / options.mutation_rate;
      double next_at = stride;
      while (!done.load(std::memory_order_relaxed)) {
        const auto pos =
            static_cast<double>(next.load(std::memory_order_relaxed));
        if (pos < next_at) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          continue;
        }
        next_at += stride;
        std::shared_ptr<const DataGraph> snapshot =
            server.session().graph_snapshot();
        const auto receipt = server.session().ApplyMutations(
            mutate::GenerateRandomBatch(rng, *snapshot, gen));
        ++(receipt.ok() ? mutations_applied : mutations_rejected);
      }
    });
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(num_clients);
  for (size_t c = 0; c < num_clients; ++c) clients.emplace_back(client);
  for (std::thread& t : clients) t.join();
  const auto end = std::chrono::steady_clock::now();
  done.store(true, std::memory_order_relaxed);
  if (mutator.joinable()) mutator.join();
  report.mutations_applied = mutations_applied;
  report.mutations_rejected = mutations_rejected;

  report.elapsed_seconds =
      std::chrono::duration<double>(end - start).count();
  report.timed_queries = options.total_queries;
  report.stats = server.Snapshot();
  server.Shutdown();
  return report;
}

}  // namespace mrx::server
