#ifndef MRX_CORE_MRX_H_
#define MRX_CORE_MRX_H_

/// \file Umbrella header: everything a typical user of the library needs.
/// The paper's primary contribution (M(k)/M*(k) and the adaptive session
/// loop) plus the supporting model types. Include fine-grained headers
/// directly for the baselines and substrates.

#include "core/session.h"           // AdaptiveIndexSession (Figure 5 loop)
#include "graph/data_graph.h"       // DataGraph, DataGraphBuilder
#include "index/m_k_index.h"        // MkIndex (§3)
#include "index/m_star_index.h"     // MStarIndex (§4)
#include "query/data_evaluator.h"   // ground truth / validation
#include "query/path_expression.h"  // PathExpression
#include "util/result.h"            // Status / Result
#include "workload/fup_extractor.h" // FupExtractor
#include "xml/graph_builder.h"      // BuildGraphFromXml

#endif  // MRX_CORE_MRX_H_
