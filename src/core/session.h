#ifndef MRX_CORE_SESSION_H_
#define MRX_CORE_SESSION_H_

#include <cstdint>
#include <string>

#include "index/m_star_index.h"
#include "query/path_expression.h"
#include "util/lru_cache.h"
#include "workload/fup_extractor.h"

namespace mrx {

/// \brief The closed loop of the paper's Figure 5, packaged as the
/// library's primary user-facing API: a query processor over an adaptive
/// M*(k)-index with an attached FUP processor and refine processor.
///
///   1. initialize the index with k = 0 everywhere (A(0));
///   2. answer incoming queries on the index, validating when imprecise;
///   3. extract FUPs from the query stream;
///   4. refine the index to support each new FUP;
///   5. repeat.
///
/// Construct over a DataGraph (which must outlive the session), then just
/// call Query(): refinement happens automatically once a path expression
/// turns frequent.
class AdaptiveIndexSession;

/// Options for AdaptiveIndexSession (a namespace-level type so it can be
/// used as an in-class default constructor argument).
struct SessionOptions {
  /// Observations before a query becomes a FUP and triggers refinement.
  size_t refine_after = 2;

  /// Evaluation strategy for answering queries. kAuto picks per query
  /// with StrategyChooser (rebuilt after each refinement).
  enum class Strategy { kTopDown, kNaive, kBottomUp, kHybrid, kAuto };
  Strategy strategy = Strategy::kTopDown;

  /// If true, answers are memoized per expression (the paper's §2 reading
  /// of APEX: "an efficiently organized cache of answers to FUPs"). The
  /// cache is invalidated whenever the index refines; hits are answered
  /// with zero index/validation cost.
  bool cache_results = false;

  /// Upper bound on cached answers; the least recently *used* entry is
  /// evicted first (a hit refreshes an entry's recency).
  size_t cache_capacity = 1024;
};

class AdaptiveIndexSession {
 public:
  using Options = SessionOptions;

  explicit AdaptiveIndexSession(const DataGraph& graph,
                                SessionOptions options = {});

  /// Answers `query`, refining first if this observation just made it a
  /// FUP. Answers are always exact.
  QueryResult Query(const PathExpression& query);

  /// Answers without recording the observation (e.g. for monitoring).
  QueryResult Peek(const PathExpression& query);

  /// Forces refinement for `fup` regardless of frequency.
  void Refine(const PathExpression& fup);

  const MStarIndex& index() const { return index_; }
  const FupExtractor& fup_extractor() const { return fups_; }

  /// Total queries answered through Query().
  uint64_t queries_answered() const { return queries_answered_; }

  /// Cache hits served so far (0 unless options.cache_results).
  uint64_t cache_hits() const { return cache_hits_; }

  /// Cumulative cost of all Query() calls (the paper's metric).
  const QueryStats& cumulative_stats() const { return cumulative_stats_; }

 private:
  SessionOptions options_;
  MStarIndex index_;
  FupExtractor fups_;
  uint64_t queries_answered_ = 0;
  uint64_t cache_hits_ = 0;
  QueryStats cumulative_stats_;
  /// Memoized answers keyed by canonical query text, LRU-evicted.
  LruCache<std::string, QueryResult> cache_;
};

}  // namespace mrx

#endif  // MRX_CORE_SESSION_H_
