#include "core/session.h"

#include "index/strategy_chooser.h"

namespace mrx {

AdaptiveIndexSession::AdaptiveIndexSession(const DataGraph& graph,
                                           SessionOptions options)
    : options_(options),
      index_(graph),
      fups_(FupExtractor::Options{options.refine_after, 0}),
      cache_(options.cache_results ? options.cache_capacity : 0) {}

QueryResult AdaptiveIndexSession::Query(const PathExpression& query) {
  if (fups_.Observe(query)) {
    index_.Refine(query);
    // Refinement restructures the index; cached answers remain *correct*
    // (the data graph is immutable) but their stats and precision flags
    // would be stale, so drop them wholesale.
    cache_.Clear();
  }

  std::string key;
  if (options_.cache_results) {
    key = query.ToString(index_.component(0).data().symbols());
    if (const QueryResult* cached = cache_.Get(key)) {
      ++cache_hits_;
      ++queries_answered_;
      QueryResult hit = *cached;
      hit.stats = QueryStats{};  // A cache hit visits no nodes.
      return hit;
    }
  }

  QueryResult result = Peek(query);
  ++queries_answered_;
  cumulative_stats_ += result.stats;
  if (options_.cache_results) {
    cache_.Put(std::move(key), result);
  }
  return result;
}

QueryResult AdaptiveIndexSession::Peek(const PathExpression& query) {
  switch (options_.strategy) {
    case SessionOptions::Strategy::kNaive:
      return index_.QueryNaive(query);
    case SessionOptions::Strategy::kBottomUp:
      return index_.QueryBottomUp(query);
    case SessionOptions::Strategy::kHybrid:
      return index_.QueryHybrid(query);
    case SessionOptions::Strategy::kAuto:
      return StrategyChooser::QueryAuto(index_, query);
    case SessionOptions::Strategy::kTopDown:
      break;
  }
  return index_.QueryTopDown(query);
}

void AdaptiveIndexSession::Refine(const PathExpression& fup) {
  index_.Refine(fup);
}

}  // namespace mrx
