#include "query/path_expression.h"

#include <cstdint>

#include "util/string_util.h"

namespace mrx {

Result<PathExpression> PathExpression::Parse(std::string_view text,
                                             const SymbolTable& symbols) {
  std::string_view s = StripWhitespace(text);
  if (s.empty()) return Status::InvalidArgument("empty path expression");

  bool anchored = false;
  if (StartsWith(s, "//")) {
    s.remove_prefix(2);
  } else if (StartsWith(s, "/")) {
    anchored = true;
    s.remove_prefix(1);
  }
  if (s.empty()) {
    return Status::InvalidArgument("path expression has no steps");
  }

  // Empty pieces inside mark the descendant axis for the following step:
  // "a//b" splits to {"a", "", "b"}.
  std::vector<LabelId> labels;
  std::vector<uint8_t> descendant;
  bool next_is_descendant = false;
  for (std::string_view step : Split(s, '/')) {
    if (step.empty()) {
      if (next_is_descendant || labels.empty()) {
        return Status::InvalidArgument(
            "malformed '//' in path expression");
      }
      next_is_descendant = true;
      continue;
    }
    if (step == "*") {
      labels.push_back(kWildcardLabel);
    } else {
      auto id = symbols.Lookup(step);
      labels.push_back(id.has_value() ? *id : kUnknownLabel);
    }
    descendant.push_back(next_is_descendant ? 1 : 0);
    next_is_descendant = false;
  }
  if (next_is_descendant) {
    return Status::InvalidArgument("path expression ends with '//'");
  }
  if (labels.empty()) {
    return Status::InvalidArgument("path expression has no steps");
  }
  return PathExpression(std::move(labels), std::move(descendant), anchored);
}

bool PathExpression::HasWildcard() const {
  for (LabelId l : labels_) {
    if (l == kWildcardLabel) return true;
  }
  return false;
}

bool PathExpression::HasDescendantAxis() const {
  for (uint8_t d : descendant_) {
    if (d != 0) return true;
  }
  return false;
}

PathExpression PathExpression::Subpath(size_t begin, size_t end) const {
  std::vector<LabelId> labels(labels_.begin() + begin,
                              labels_.begin() + end + 1);
  std::vector<uint8_t> descendant(descendant_.begin() + begin,
                                  descendant_.begin() + end + 1);
  descendant[0] = 0;  // A subpath starts fresh; its first step floats.
  return PathExpression(std::move(labels), std::move(descendant),
                        /*anchored=*/false);
}

std::string PathExpression::ToString(const SymbolTable& symbols) const {
  std::string out = anchored_ ? "/" : "//";
  for (size_t i = 0; i < labels_.size(); ++i) {
    if (i > 0) out += descendant_[i] ? "//" : "/";
    if (labels_[i] == kWildcardLabel) {
      out += '*';
    } else if (labels_[i] == kUnknownLabel) {
      out += '?';
    } else {
      out += symbols.Name(labels_[i]);
    }
  }
  return out;
}

}  // namespace mrx
