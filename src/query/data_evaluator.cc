#include "query/data_evaluator.h"

#include <algorithm>
#include <chrono>

#include "obs/query_cost.h"

namespace mrx {
namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

DataEvaluator::DataEvaluator(const DataGraph& graph)
    : graph_(graph), mark_(graph.num_nodes(), 0) {}

std::vector<NodeId> DataEvaluator::Evaluate(const PathExpression& path) {
  // Forward, level by level: frontier_ holds the distinct nodes reachable
  // as instances of the prefix ending at the current step.
  frontier_.clear();
  NextEpoch();
  if (path.anchored()) {
    if (path.StepMatches(0, graph_.label(graph_.root()))) {
      frontier_.push_back(graph_.root());
      Mark(graph_.root());
    }
  } else if (path.label(0) == kWildcardLabel) {
    for (NodeId n = 0; n < graph_.num_nodes(); ++n) {
      frontier_.push_back(n);
      Mark(n);
    }
  } else if (path.label(0) != kUnknownLabel) {
    for (NodeId n : graph_.nodes_with_label(path.label(0))) {
      frontier_.push_back(n);
      Mark(n);
    }
  }

  for (size_t step = 1; step < path.num_steps() && !frontier_.empty();
       ++step) {
    next_.clear();
    NextEpoch();
    if (path.DescendantStep(step)) {
      // Descendant axis: everything reachable through one or more edges;
      // collect the label matches. `work` doubles as the BFS queue.
      std::vector<NodeId> work = frontier_;
      // The frontier nodes themselves are *not* marked: a node may match
      // through a cycle back to itself (one-or-more edges).
      for (size_t i = 0; i < work.size(); ++i) {
        for (NodeId c : graph_.children(work[i])) {
          if (Mark(c)) {
            work.push_back(c);
            if (path.StepMatches(step, graph_.label(c))) {
              next_.push_back(c);
            }
          }
        }
      }
    } else {
      for (NodeId u : frontier_) {
        for (NodeId v : graph_.children(u)) {
          if (path.StepMatches(step, graph_.label(v)) && Mark(v)) {
            next_.push_back(v);
          }
        }
      }
    }
    frontier_.swap(next_);
  }

  std::vector<NodeId> result = frontier_;
  std::sort(result.begin(), result.end());
  return result;
}

bool DataEvaluator::HasIncomingPath(NodeId node, const PathExpression& path,
                                    uint64_t* visited) {
  const uint64_t start_ns = timing_enabled_ ? NowNs() : 0;
  obs::CountValidationCheck();
  const bool matched = HasIncomingPathImpl(node, path, visited);
  if (timing_enabled_) validation_ns_ += NowNs() - start_ns;
  return matched;
}

bool DataEvaluator::HasIncomingPathImpl(NodeId node,
                                        const PathExpression& path,
                                        uint64_t* visited) {
  if (!path.StepMatches(path.num_steps() - 1, graph_.label(node))) {
    return false;
  }
  // Backward, level by level, from `node` toward the first step.
  frontier_.clear();
  NextEpoch();
  frontier_.push_back(node);
  Mark(node);
  uint64_t visit_count = 1;  // `node` itself is visited.

  for (size_t step = path.num_steps() - 1; step > 0 && !frontier_.empty();
       --step) {
    next_.clear();
    NextEpoch();
    if (path.DescendantStep(step)) {
      // Ancestors through one or more edges, filtered to the previous
      // step's label.
      std::vector<NodeId> work = frontier_;
      for (size_t i = 0; i < work.size(); ++i) {
        for (NodeId u : graph_.parents(work[i])) {
          if (Mark(u)) {
            work.push_back(u);
            ++visit_count;
            if (path.StepMatches(step - 1, graph_.label(u))) {
              next_.push_back(u);
            }
          }
        }
      }
    } else {
      for (NodeId v : frontier_) {
        for (NodeId u : graph_.parents(v)) {
          if (path.StepMatches(step - 1, graph_.label(u)) && Mark(u)) {
            next_.push_back(u);
            ++visit_count;
          }
        }
      }
    }
    frontier_.swap(next_);
  }

  bool found;
  if (path.anchored()) {
    found = std::find(frontier_.begin(), frontier_.end(), graph_.root()) !=
            frontier_.end();
  } else {
    found = !frontier_.empty();
  }
  if (visited != nullptr) *visited += visit_count;
  return found;
}

}  // namespace mrx
