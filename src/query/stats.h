#ifndef MRX_QUERY_STATS_H_
#define MRX_QUERY_STATS_H_

#include <cstdint>

namespace mrx {

/// \brief The paper's main-memory query cost model (§5 "Cost metrics"):
/// the number of index nodes visited while evaluating the expression on the
/// index graph, plus the number of data nodes visited while validating
/// candidate answers against the data graph. Extent members of target index
/// nodes are *not* counted unless validation visits them.
struct QueryStats {
  uint64_t index_nodes_visited = 0;
  uint64_t data_nodes_validated = 0;

  uint64_t total() const { return index_nodes_visited + data_nodes_validated; }

  QueryStats& operator+=(const QueryStats& other) {
    index_nodes_visited += other.index_nodes_visited;
    data_nodes_validated += other.data_nodes_validated;
    return *this;
  }
};

}  // namespace mrx

#endif  // MRX_QUERY_STATS_H_
