#include "query/twig.h"

#include <algorithm>

#include "index/extent_ops.h"
#include "util/string_util.h"

namespace mrx {
namespace {

/// Character cursor for the twig parser.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  void Advance() { ++pos_; }
  bool Consume(char c) {
    if (AtEnd() || Peek() != c) return false;
    ++pos_;
    return true;
  }
  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }
  std::string_view ReadName() {
    size_t begin = pos_;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_' || Peek() == '-' || Peek() == '.' ||
                        Peek() == ':' || Peek() == '#' || Peek() == '@' ||
                        Peek() == '*')) {
      ++pos_;
    }
    return text_.substr(begin, pos_ - begin);
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

/// Parses a chain of steps (with predicates) into a TwigNode; the chain's
/// continuation becomes a child with `trunk = mark_trunk`.
Result<TwigNode> ParseChain(Cursor* cur, const SymbolTable& symbols,
                            bool first_descendant, bool mark_trunk);

Result<TwigNode> ParseStep(Cursor* cur, const SymbolTable& symbols,
                           bool descendant, bool mark_trunk) {
  std::string_view name = cur->ReadName();
  if (name.empty()) {
    return Status::InvalidArgument("expected a step name in twig");
  }
  TwigNode node;
  node.descendant = descendant;
  if (name == "*") {
    node.label = kWildcardLabel;
  } else {
    auto id = symbols.Lookup(name);
    node.label = id.has_value() ? *id : kUnknownLabel;
  }

  // Predicates: zero or more [ ... ] groups.
  while (cur->Consume('[')) {
    // Inside a predicate, a leading "//" means descendant axis relative to
    // this node; default is child axis.
    bool pred_descendant = cur->ConsumeLiteral("//");
    if (!pred_descendant) cur->Consume('/');  // Optional "./"-like slash.
    MRX_ASSIGN_OR_RETURN(
        TwigNode pred,
        ParseChain(cur, symbols, pred_descendant, /*mark_trunk=*/false));
    if (!cur->Consume(']')) {
      return Status::InvalidArgument("unterminated '[' in twig");
    }
    node.children.push_back(std::move(pred));
  }

  // Continuation of the chain.
  if (cur->ConsumeLiteral("//")) {
    MRX_ASSIGN_OR_RETURN(
        TwigNode next,
        ParseChain(cur, symbols, /*first_descendant=*/true, mark_trunk));
    next.trunk = mark_trunk;
    node.children.push_back(std::move(next));
  } else if (cur->Consume('/')) {
    MRX_ASSIGN_OR_RETURN(
        TwigNode next,
        ParseChain(cur, symbols, /*first_descendant=*/false, mark_trunk));
    next.trunk = mark_trunk;
    node.children.push_back(std::move(next));
  }
  return node;
}

Result<TwigNode> ParseChain(Cursor* cur, const SymbolTable& symbols,
                            bool first_descendant, bool mark_trunk) {
  return ParseStep(cur, symbols, first_descendant, mark_trunk);
}

const TwigNode* TrunkChild(const TwigNode& node) {
  for (const TwigNode& c : node.children) {
    if (c.trunk) return &c;
  }
  return nullptr;
}

bool AnyPredicates(const TwigNode& node) {
  for (const TwigNode& c : node.children) {
    if (!c.trunk) return true;
    if (AnyPredicates(c)) return true;
  }
  return false;
}

void RenderNode(const TwigNode& node, const SymbolTable& symbols,
                std::string* out) {
  if (node.label == kWildcardLabel) {
    *out += '*';
  } else if (node.label == kUnknownLabel) {
    *out += '?';
  } else {
    *out += symbols.Name(node.label);
  }
  for (const TwigNode& c : node.children) {
    if (c.trunk) continue;
    *out += '[';
    if (c.descendant) *out += "//";
    RenderNode(c, symbols, out);
    *out += ']';
  }
  if (const TwigNode* trunk = TrunkChild(node)) {
    *out += trunk->descendant ? "//" : "/";
    RenderNode(*trunk, symbols, out);
  }
}

// ---- Data-graph evaluation ------------------------------------------------

std::vector<NodeId> SortedUnique(std::vector<NodeId> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

std::vector<NodeId> ParentsOf(const DataGraph& g,
                              const std::vector<NodeId>& s) {
  std::vector<NodeId> out;
  for (NodeId n : s) {
    auto ps = g.parents(n);
    out.insert(out.end(), ps.begin(), ps.end());
  }
  return SortedUnique(std::move(out));
}

/// All nodes with a descendant (≥1 edge) in `s`: backward closure.
std::vector<NodeId> AncestorsOf(const DataGraph& g,
                                const std::vector<NodeId>& s) {
  std::vector<char> seen(g.num_nodes(), 0);
  std::vector<NodeId> work;
  for (NodeId n : s) {
    for (NodeId p : g.parents(n)) {
      if (!seen[p]) {
        seen[p] = 1;
        work.push_back(p);
      }
    }
  }
  for (size_t i = 0; i < work.size(); ++i) {
    for (NodeId p : g.parents(work[i])) {
      if (!seen[p]) {
        seen[p] = 1;
        work.push_back(p);
      }
    }
  }
  return SortedUnique(std::move(work));
}

std::vector<NodeId> ChildrenOf(const DataGraph& g,
                               const std::vector<NodeId>& s) {
  std::vector<NodeId> out;
  for (NodeId n : s) {
    auto cs = g.children(n);
    out.insert(out.end(), cs.begin(), cs.end());
  }
  return SortedUnique(std::move(out));
}

std::vector<NodeId> DescendantsOf(const DataGraph& g,
                                  const std::vector<NodeId>& s) {
  std::vector<char> seen(g.num_nodes(), 0);
  std::vector<NodeId> work;
  for (NodeId n : s) {
    for (NodeId c : g.children(n)) {
      if (!seen[c]) {
        seen[c] = 1;
        work.push_back(c);
      }
    }
  }
  for (size_t i = 0; i < work.size(); ++i) {
    for (NodeId c : g.children(work[i])) {
      if (!seen[c]) {
        seen[c] = 1;
        work.push_back(c);
      }
    }
  }
  return SortedUnique(std::move(work));
}

std::vector<NodeId> LabelRow(const DataGraph& g, LabelId label) {
  if (label == kWildcardLabel) {
    std::vector<NodeId> all(g.num_nodes());
    for (NodeId n = 0; n < g.num_nodes(); ++n) all[n] = n;
    return all;
  }
  if (label == kUnknownLabel) return {};
  auto row = g.nodes_with_label(label);
  return {row.begin(), row.end()};
}

/// Bottom-up: nodes matching the subtree rooted at `t` (ignoring how the
/// node itself is reached). Gathers one constraint set per child plus the
/// label row, then runs them through the k-way IntersectMany — operands
/// ordered by size, seeded from the smallest — instead of the old
/// left-fold of pairwise intersections in child order.
std::vector<NodeId> MatchSet(const DataGraph& g, const TwigNode& t) {
  std::vector<std::vector<NodeId>> sets;
  sets.push_back(LabelRow(g, t.label));
  for (const TwigNode& c : t.children) {
    if (sets.back().empty()) return {};  // No operand can rescue an empty.
    std::vector<NodeId> child_set = MatchSet(g, c);
    sets.push_back(c.descendant ? AncestorsOf(g, child_set)
                                : ParentsOf(g, child_set));
  }
  std::vector<const std::vector<NodeId>*> operands;
  operands.reserve(sets.size());
  for (const std::vector<NodeId>& s : sets) operands.push_back(&s);
  return IntersectMany(std::move(operands));
}

}  // namespace

Result<TwigQuery> TwigQuery::Parse(std::string_view text,
                                   const SymbolTable& symbols) {
  std::string_view s = StripWhitespace(text);
  if (s.empty()) return Status::InvalidArgument("empty twig query");
  bool anchored = false;
  if (StartsWith(s, "//")) {
    s.remove_prefix(2);
  } else if (StartsWith(s, "/")) {
    anchored = true;
    s.remove_prefix(1);
  }
  Cursor cur(s);
  MRX_ASSIGN_OR_RETURN(TwigNode root,
                       ParseChain(&cur, symbols, /*first_descendant=*/false,
                                  /*mark_trunk=*/true));
  if (!cur.AtEnd()) {
    return Status::InvalidArgument("trailing characters in twig query");
  }
  root.trunk = true;
  return TwigQuery(std::move(root), anchored);
}

PathExpression TwigQuery::TrunkExpression() const {
  std::vector<LabelId> labels;
  std::vector<uint8_t> descendant;
  const TwigNode* node = &root_;
  while (node != nullptr) {
    labels.push_back(node->label);
    descendant.push_back(node == &root_ ? 0 : (node->descendant ? 1 : 0));
    node = TrunkChild(*node);
  }
  return PathExpression(std::move(labels), std::move(descendant),
                        anchored_);
}

bool TwigQuery::HasPredicates() const { return AnyPredicates(root_); }

std::string TwigQuery::ToString(const SymbolTable& symbols) const {
  std::string out = anchored_ ? "/" : "//";
  RenderNode(root_, symbols, &out);
  return out;
}

std::vector<NodeId> EvaluateTwig(const DataGraph& graph,
                                 const TwigQuery& twig) {
  // Bottom-up candidate sets for every pattern node, then a top-down
  // restriction along the trunk.
  std::vector<NodeId> current = MatchSet(graph, twig.root());
  if (twig.anchored()) {
    current = Intersect(current, {graph.root()});
  }
  const TwigNode* node = &twig.root();
  while (const TwigNode* trunk = [&]() -> const TwigNode* {
           for (const TwigNode& c : node->children) {
             if (c.trunk) return &c;
           }
           return nullptr;
         }()) {
    std::vector<NodeId> reach = trunk->descendant
                                    ? DescendantsOf(graph, current)
                                    : ChildrenOf(graph, current);
    current = Intersect(MatchSet(graph, *trunk), reach);
    node = trunk;
    if (current.empty()) break;
  }
  return current;
}

}  // namespace mrx
