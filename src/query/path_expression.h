#ifndef MRX_QUERY_PATH_EXPRESSION_H_
#define MRX_QUERY_PATH_EXPRESSION_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "graph/symbol_table.h"
#include "util/result.h"

namespace mrx {

/// Pseudo-label matching any element label (the `*` wildcard of §2's
/// /site/regions/*/item example).
inline constexpr LabelId kWildcardLabel = static_cast<LabelId>(-1);

/// Pseudo-label for a name that does not occur in the data graph at all; it
/// matches nothing, so such queries cleanly evaluate to the empty set.
inline constexpr LabelId kUnknownLabel = static_cast<LabelId>(-2);

/// \brief A simple path expression: a label path `l0/l1/.../lm`, either
/// anchored at the document root (`/l0/...`) or floating (`//l0/...`).
///
/// This is the paper's query class (§2 "we focus on simple path
/// expressions, which are basically label paths"). The *length* of the
/// expression is its edge count m, matching the paper's convention
/// ("the path length is defined by the edge number of a path").
class PathExpression {
 public:
  /// `labels` must be non-empty. Every step uses the child axis.
  PathExpression(std::vector<LabelId> labels, bool anchored)
      : labels_(std::move(labels)),
        descendant_(labels_.size(), 0),
        anchored_(anchored) {}

  /// Full form: `descendant[i]` nonzero means step i is reached through
  /// the descendant axis (one *or more* edges from step i-1, XPath
  /// `a//b`). `descendant[0]` must be 0 (a leading `//` is the
  /// anchored=false case). Vectors must have equal size.
  PathExpression(std::vector<LabelId> labels, std::vector<uint8_t> descendant,
                 bool anchored)
      : labels_(std::move(labels)),
        descendant_(std::move(descendant)),
        anchored_(anchored) {}

  /// Parses an XPath-like string: "/a/b" (anchored), "//a/b" (floating),
  /// "a/b" (floating), with `*` as a wildcard step and `//` *inside* the
  /// expression as the descendant axis ("a//b" matches b any number of
  /// levels below a). Steps whose labels do not occur in `symbols` become
  /// kUnknownLabel (the query is well-formed but selects nothing). Fails
  /// on empty input.
  static Result<PathExpression> Parse(std::string_view text,
                                      const SymbolTable& symbols);

  /// Number of edges of a *shortest* instance (= number of labels - 1;
  /// descendant steps can span more). This is the paper's length for
  /// child-axis-only expressions; expressions with a descendant step are
  /// never treated as precise, so the exact value only affects which
  /// component a multiresolution strategy starts from.
  size_t length() const { return labels_.size() - 1; }

  /// Number of labels (steps).
  size_t num_steps() const { return labels_.size(); }

  LabelId label(size_t step) const { return labels_[step]; }
  const std::vector<LabelId>& labels() const { return labels_; }
  bool anchored() const { return anchored_; }

  /// True if `label` satisfies the step at `position`.
  bool StepMatches(size_t position, LabelId label) const {
    LabelId want = labels_[position];
    return want == kWildcardLabel || want == label;
  }

  /// True if step `i` is reached through the descendant axis.
  bool DescendantStep(size_t i) const { return descendant_[i] != 0; }

  /// True if the expression contains a `*` step.
  bool HasWildcard() const;

  /// True if any step uses the descendant axis (such expressions always
  /// validate: k-bisimilarity cannot certify unbounded-length paths).
  bool HasDescendantAxis() const;

  /// The sub-expression labels[begin..end] (inclusive bounds, floating).
  PathExpression Subpath(size_t begin, size_t end) const;

  /// Renders as "//a/b/c" or "/a/b/c" (wildcards as `*`, unknown labels as
  /// `?`).
  std::string ToString(const SymbolTable& symbols) const;

  friend bool operator==(const PathExpression& a, const PathExpression& b) {
    return a.anchored_ == b.anchored_ && a.labels_ == b.labels_ &&
           a.descendant_ == b.descendant_;
  }

 private:
  std::vector<LabelId> labels_;
  std::vector<uint8_t> descendant_;  // Parallel to labels_.
  bool anchored_;
};

}  // namespace mrx

#endif  // MRX_QUERY_PATH_EXPRESSION_H_
