#ifndef MRX_QUERY_DATA_EVALUATOR_H_
#define MRX_QUERY_DATA_EVALUATOR_H_

#include <cstdint>
#include <vector>

#include "graph/data_graph.h"
#include "query/path_expression.h"

namespace mrx {

/// \brief Evaluates path expressions directly on the data graph.
///
/// This is the reproduction's ground truth (the paper's "target set of l in
/// the data graph", input T of REFINE) and also the validation oracle used
/// to strip false positives from imprecise index answers.
///
/// The evaluator is reusable across queries; it keeps scratch buffers sized
/// to the graph so repeated evaluation does not reallocate.
class DataEvaluator {
 public:
  explicit DataEvaluator(const DataGraph& graph);

  DataEvaluator(const DataEvaluator&) = delete;
  DataEvaluator& operator=(const DataEvaluator&) = delete;
  // Movable (not assignable — holds a reference) so owners like
  // MStarIndex can be returned from factory functions.
  DataEvaluator(DataEvaluator&&) = default;

  /// The target set of `path` in the data graph, sorted ascending.
  std::vector<NodeId> Evaluate(const PathExpression& path);

  /// True iff `node` has `path` as an incoming label path (ending at
  /// `node`). For anchored paths the instance must start at the root.
  /// If `visited` is non-null, the number of data nodes visited by the
  /// backward search (including `node` itself) is added to it — this is the
  /// validation cost of the paper's metric.
  bool HasIncomingPath(NodeId node, const PathExpression& path,
                       uint64_t* visited = nullptr);

  /// Opt-in validation-phase timing for the observability layer: while
  /// enabled, wall time spent inside HasIncomingPath (the index strategies'
  /// validation oracle) accumulates into a nanosecond counter. Off by
  /// default — the clock reads are only paid on traced queries (the server
  /// enables timing on the sampled ones; see docs/OBSERVABILITY.md).
  void EnableValidationTiming(bool enabled) { timing_enabled_ = enabled; }

  /// Returns the accumulated validation nanoseconds and resets the counter.
  uint64_t ConsumeValidationNs() {
    const uint64_t ns = validation_ns_;
    validation_ns_ = 0;
    return ns;
  }

  const DataGraph& graph() const { return graph_; }

 private:
  bool HasIncomingPathImpl(NodeId node, const PathExpression& path,
                           uint64_t* visited);

  /// Marks `n` in the current epoch; returns true if newly marked.
  bool Mark(NodeId n) {
    if (mark_[n] == epoch_) return false;
    mark_[n] = epoch_;
    return true;
  }
  void NextEpoch() { ++epoch_; }

  const DataGraph& graph_;
  std::vector<uint64_t> mark_;
  uint64_t epoch_ = 0;
  std::vector<NodeId> frontier_;
  std::vector<NodeId> next_;
  bool timing_enabled_ = false;
  uint64_t validation_ns_ = 0;
};

}  // namespace mrx

#endif  // MRX_QUERY_DATA_EVALUATOR_H_
