#ifndef MRX_QUERY_TWIG_H_
#define MRX_QUERY_TWIG_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/data_graph.h"
#include "query/path_expression.h"
#include "util/result.h"

namespace mrx {

/// \brief One node of a twig (branching path) pattern.
///
/// `children` are AND-predicates: every child pattern must match below a
/// data node for the node to match this pattern node. The child flagged
/// `trunk` (at most one) continues the output path; the last trunk node
/// is the query's output. `descendant` is the axis from the parent
/// pattern node (child vs one-or-more edges).
struct TwigNode {
  LabelId label = kUnknownLabel;  ///< kWildcardLabel allowed.
  bool descendant = false;        ///< Axis from the parent pattern node.
  bool trunk = false;             ///< Continues the output path.
  std::vector<TwigNode> children;
};

/// \brief A branching path query, e.g. `//open_auction[bidder/personref]
/// /seller/person` — the query class the paper's §2 cites covering
/// indexes and the UD(k,l)-index for. Bisimilarity indexes only summarize
/// incoming paths, so twigs are answered by using the index for the
/// *trunk* and validating the branch predicates against the data graph.
class TwigQuery {
 public:
  /// Parses an XPath-like twig: steps separated by `/` or `//`, each step
  /// optionally followed by one or more `[...]` predicates, which are
  /// themselves twigs (relative, child axis by default, `.//` for the
  /// descendant axis is written as a leading `//` inside the brackets).
  /// Examples:
  ///   //a[b]/c             c children of a's that have a b child
  ///   //a[b/c][//d]/e      ... with a nested path and a descendant pred
  ///   /site/people/person[address/city]
  static Result<TwigQuery> Parse(std::string_view text,
                                 const SymbolTable& symbols);

  const TwigNode& root() const { return root_; }
  bool anchored() const { return anchored_; }

  /// The trunk as a plain path expression (labels + axes along the trunk
  /// chain) — what the structural index evaluates.
  PathExpression TrunkExpression() const;

  /// True if any pattern node carries predicates (otherwise the twig is a
  /// plain path).
  bool HasPredicates() const;

  /// Canonical rendering: predicate chains print as nested brackets
  /// (`a[b/c]` prints as `a[b[c]]` — equivalent under existential AND).
  std::string ToString(const SymbolTable& symbols) const;

 private:
  TwigQuery(TwigNode root, bool anchored)
      : root_(std::move(root)), anchored_(anchored) {}

  TwigNode root_;
  bool anchored_;
};

/// \brief Ground-truth twig evaluation on the data graph (bottom-up
/// candidate sets, then a top-down trunk restriction). Returns the sorted
/// output-node set.
std::vector<NodeId> EvaluateTwig(const DataGraph& graph,
                                 const TwigQuery& twig);

}  // namespace mrx

#endif  // MRX_QUERY_TWIG_H_
