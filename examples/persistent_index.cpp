// Scenario: persist an adaptively-refined index and reopen it later as a
// disk-resident structure (the paper's §6 future work). An online session
// learns a workload; its index is saved; a fresh process then answers the
// same workload loading only the components each query actually needs.
//
// Build & run:   ./build/examples/persistent_index [scale]

#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "core/mrx.h"
#include "datagen/xmark.h"
#include "storage/disk_m_star_index.h"
#include "storage/graph_io.h"
#include "storage/index_io.h"

int main(int argc, char** argv) {
  using namespace mrx;
  double scale = argc > 1 ? std::atof(argv[1]) : 0.1;

  // --- Day 1: an adaptive session learns the workload. ------------------
  std::string doc =
      datagen::GenerateXMarkDocument(datagen::XMarkOptions::Scaled(scale));
  Result<DataGraph> graph = xml::BuildGraphFromXml(doc);
  if (!graph.ok()) {
    std::cerr << graph.status() << "\n";
    return 1;
  }

  SessionOptions options;
  options.refine_after = 2;
  AdaptiveIndexSession session(*graph, options);
  const char* hot_queries[] = {
      "//open_auction/seller/person",
      "//open_auction/bidder/personref/person",
      "//regions/europe/item/incategory/category",
  };
  for (int round = 0; round < 3; ++round) {
    for (const char* text : hot_queries) {
      auto q = PathExpression::Parse(text, graph->symbols());
      session.Query(*q);
    }
  }
  std::cout << "session answered " << session.queries_answered()
            << " queries; index grew to "
            << session.index().num_components() << " components, "
            << session.index().PhysicalNodeCount() << " physical nodes\n";

  // --- Persist graph + index. -------------------------------------------
  std::string dir = std::filesystem::temp_directory_path().string();
  std::string graph_path = dir + "/persistent_example.mrxg";
  std::string index_path = dir + "/persistent_example.mrxs";
  if (Status s = storage::SaveDataGraphToFile(*graph, graph_path); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  if (Status s = storage::SaveMStarIndexToFile(session.index(), index_path);
      !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  std::cout << "saved " << std::filesystem::file_size(graph_path) / 1024
            << " KiB graph + " << std::filesystem::file_size(index_path) / 1024
            << " KiB index\n\n";

  // --- Day 2: a fresh "process" reopens everything from disk. -----------
  Result<DataGraph> reloaded = storage::LoadDataGraphFromFile(graph_path);
  if (!reloaded.ok()) {
    std::cerr << reloaded.status() << "\n";
    return 1;
  }
  auto disk = storage::DiskMStarIndex::Open(*reloaded, index_path);
  if (!disk.ok()) {
    std::cerr << disk.status() << "\n";
    return 1;
  }
  std::cout << "reopened: " << disk->num_components()
            << " components on disk, none loaded yet\n";

  auto short_q = PathExpression::Parse("//person", reloaded->symbols());
  auto r = disk->QueryTopDown(*short_q);
  std::cout << "//person -> " << r->answer.size() << " nodes; components "
            << "loaded so far: " << disk->components_loaded() << "\n";

  auto long_q = PathExpression::Parse(hot_queries[1], reloaded->symbols());
  r = disk->QueryTopDown(*long_q);
  std::cout << hot_queries[1] << " -> " << r->answer.size()
            << " nodes (precise=" << (r->precise ? "yes" : "no")
            << "); components loaded: " << disk->components_loaded() << "/"
            << disk->num_components() << ", " << disk->bytes_read() / 1024
            << " KiB read\n";

  std::filesystem::remove(graph_path);
  std::filesystem::remove(index_path);
  return 0;
}
