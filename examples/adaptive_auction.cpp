// Scenario: an auction site (XMark) whose query workload shifts over time.
// Shows the M*(k)-index adapting: the first phase hammers person lookups,
// the second phase switches to auction-item navigation. After each phase
// the index is refined with the phase's frequent path expressions and the
// per-query cost collapses, while the coarse component keeps short
// queries cheap throughout.
//
// Build & run:   ./build/examples/adaptive_auction [scale]

#include <cstdlib>
#include <iostream>
#include <vector>

#include "datagen/xmark.h"
#include "index/m_star_index.h"
#include "query/path_expression.h"
#include "util/table_writer.h"
#include "xml/graph_builder.h"

namespace {

using namespace mrx;

std::vector<PathExpression> ParseAll(const std::vector<const char*>& texts,
                                     const SymbolTable& symbols) {
  std::vector<PathExpression> out;
  for (const char* t : texts) {
    auto p = PathExpression::Parse(t, symbols);
    if (p.ok()) out.push_back(std::move(p).value());
  }
  return out;
}

double AvgCost(MStarIndex& index, const std::vector<PathExpression>& qs) {
  uint64_t total = 0;
  for (const PathExpression& q : qs) {
    total += index.QueryTopDown(q).stats.total();
  }
  return qs.empty() ? 0.0 : static_cast<double>(total) / qs.size();
}

}  // namespace

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.2;
  std::string doc =
      datagen::GenerateXMarkDocument(datagen::XMarkOptions::Scaled(scale));
  Result<DataGraph> graph = xml::BuildGraphFromXml(doc);
  if (!graph.ok()) {
    std::cerr << graph.status() << "\n";
    return 1;
  }
  std::cout << "auction site: " << graph->num_nodes() << " nodes, "
            << graph->num_reference_edges() << " reference edges\n\n";

  // Phase 1: the people pages are hot — who sells, who bids, who watches.
  std::vector<PathExpression> phase1 = ParseAll(
      {
          "//open_auction/seller/person",
          "//open_auction/bidder/personref/person",
          "//closed_auction/buyer/person",
          "//person/watches/watch/open_auction",
          "//annotation/author/person",
      },
      graph->symbols());

  // Phase 2: item navigation becomes hot — regions, categories, mailboxes.
  std::vector<PathExpression> phase2 = ParseAll(
      {
          "//regions/africa/item/incategory/category",
          "//open_auction/itemref/item/mailbox/mail",
          "//closed_auction/itemref/item/incategory/category",
          "//site/categories/category/description/text",
          "//catgraph/edge/category",
      },
      graph->symbols());

  MStarIndex index(*graph);
  TableWriter table({"stage", "phase1_avg_cost", "phase2_avg_cost",
                     "components", "physical_nodes"});

  auto snapshot = [&](const char* stage) {
    table.AddRowValues(stage, AvgCost(index, phase1), AvgCost(index, phase2),
                       index.num_components(), index.PhysicalNodeCount());
  };

  snapshot("fresh A(0)");
  for (const PathExpression& q : phase1) index.Refine(q);
  snapshot("after phase-1 FUPs");
  for (const PathExpression& q : phase2) index.Refine(q);
  snapshot("after phase-2 FUPs");

  table.RenderText(std::cout);
  std::cout << "\nShort queries stay cheap on the coarse component, e.g. "
               "//person costs "
            << index.QueryTopDown(
                     *PathExpression::Parse("//person", graph->symbols()))
                   .stats.total()
            << " node visits with " << index.num_components()
            << " components built.\n";
  return 0;
}
