// Command-line index explorer: load any XML file, build an adaptive
// M*(k)-index over it, and answer path expression queries interactively.
// Queries marked frequent (prefixed with '!') refine the index.
//
//   ./build/examples/index_explorer file.xml            # interactive
//   ./build/examples/index_explorer file.xml '//a/b'    # one-shot
//   ./build/examples/index_explorer --xmark             # built-in dataset
//   ./build/examples/index_explorer --nasa
//
// Commands at the prompt:
//   //a/b/c      evaluate a path expression
//   !//a/b/c     evaluate it and refine the index for it (mark as FUP)
//   :stats       index statistics
//   :dot         dump the data graph as Graphviz DOT (small graphs!)
//   :quit        exit

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "datagen/nasa.h"
#include "datagen/xmark.h"
#include "index/m_star_index.h"
#include "query/path_expression.h"
#include "xml/graph_builder.h"

namespace {

using namespace mrx;

Result<std::string> LoadInput(const std::string& arg) {
  if (arg == "--xmark") {
    return datagen::GenerateXMarkDocument(datagen::XMarkOptions::Scaled(0.05));
  }
  if (arg == "--nasa") {
    return datagen::GenerateNasaDocument(0.05, /*seed=*/3);
  }
  std::ifstream in(arg, std::ios::binary);
  if (!in) return Status::NotFound("cannot open file: " + arg);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void RunQuery(MStarIndex& index, const DataGraph& graph,
              const std::string& text, bool refine) {
  auto query = PathExpression::Parse(text, graph.symbols());
  if (!query.ok()) {
    std::cout << "error: " << query.status() << "\n";
    return;
  }
  if (refine) {
    index.Refine(*query);
    std::cout << "(refined; components=" << index.num_components() << ")\n";
  }
  QueryResult result = index.QueryTopDown(*query);
  std::cout << result.answer.size() << " nodes, cost="
            << result.stats.total()
            << (result.precise ? " precise" : " validated") << ":";
  size_t shown = 0;
  for (NodeId n : result.answer) {
    if (++shown > 12) {
      std::cout << " ...";
      break;
    }
    std::cout << " " << n << ":" << graph.label_name(n);
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: index_explorer <file.xml | --xmark | --nasa> "
                 "[query]\n";
    return 2;
  }
  Result<std::string> document = LoadInput(argv[1]);
  if (!document.ok()) {
    std::cerr << document.status() << "\n";
    return 1;
  }
  Result<DataGraph> graph = xml::BuildGraphFromXml(*document);
  if (!graph.ok()) {
    std::cerr << graph.status() << "\n";
    return 1;
  }
  std::cout << "loaded: " << graph->num_nodes() << " nodes, "
            << graph->num_edges() << " edges ("
            << graph->num_reference_edges() << " references), "
            << graph->symbols().size() << " labels\n";

  MStarIndex index(*graph);

  if (argc > 2) {
    RunQuery(index, *graph, argv[2], /*refine=*/false);
    return 0;
  }

  std::cout << "enter path expressions ('!' prefix refines, :stats, :dot, "
               ":quit)\n";
  std::string line;
  while (std::cout << "> " << std::flush, std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == ":quit" || line == ":q") break;
    if (line == ":stats") {
      std::cout << "components=" << index.num_components()
                << " physical_nodes=" << index.PhysicalNodeCount()
                << " physical_edges=" << index.PhysicalEdgeCount() << "\n";
      for (size_t i = 0; i < index.num_components(); ++i) {
        std::cout << "  I" << i << ": " << index.component(i).num_nodes()
                  << " nodes, " << index.component(i).num_edges()
                  << " edges\n";
      }
      continue;
    }
    if (line == ":dot") {
      std::cout << graph->ToDot();
      continue;
    }
    bool refine = line[0] == '!';
    RunQuery(index, *graph, refine ? line.substr(1) : line, refine);
  }
  return 0;
}
