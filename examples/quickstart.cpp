// Quickstart: parse an XML document into the data-graph model, build the
// adaptive M*(k)-index, answer a few path expression queries, and refine
// the index for a frequently used path expression (FUP).
//
// Build & run:   ./build/examples/quickstart

#include <iostream>

#include "index/m_star_index.h"
#include "query/data_evaluator.h"
#include "query/path_expression.h"
#include "xml/graph_builder.h"

int main() {
  using namespace mrx;

  // A small auction document in the spirit of the paper's Figure 1. The
  // `person` attributes are ID references: the graph loader turns them
  // into reference edges (dashed edges of the figure).
  const char* document = R"xml(
    <site>
      <people>
        <person id="p0"><name>Ada</name></person>
        <person id="p1"><name>Grace</name></person>
      </people>
      <open_auctions>
        <open_auction id="a0">
          <seller person="p0"/>
          <bidder><personref person="p1"/></bidder>
        </open_auction>
        <open_auction id="a1">
          <seller person="p1"/>
        </open_auction>
      </open_auctions>
    </site>
  )xml";

  Result<DataGraph> graph = xml::BuildGraphFromXml(document);
  if (!graph.ok()) {
    std::cerr << "parse failed: " << graph.status() << "\n";
    return 1;
  }
  std::cout << "loaded " << graph->num_nodes() << " element nodes, "
            << graph->num_edges() << " edges ("
            << graph->num_reference_edges() << " references)\n";

  // Build the index: starts as a single coarse component (A(0)).
  MStarIndex index(*graph);

  auto run = [&](const char* text) {
    auto query = PathExpression::Parse(text, graph->symbols());
    if (!query.ok()) {
      std::cerr << "bad query: " << query.status() << "\n";
      return;
    }
    QueryResult result = index.QueryTopDown(*query);
    std::cout << text << " -> {";
    for (size_t i = 0; i < result.answer.size(); ++i) {
      if (i > 0) std::cout << ", ";
      std::cout << result.answer[i] << ":"
                << graph->label_name(result.answer[i]);
    }
    std::cout << "}  cost=" << result.stats.total()
              << (result.precise ? " (precise)" : " (validated)") << "\n";
  };

  const char* fup = "//open_auction/seller/person";
  std::cout << "\nbefore refinement:\n";
  run(fup);
  run("//bidder/personref/person");

  // The workload says seller lookups are frequent: refine for them. The
  // index gains components I1, I2 and becomes precise for the FUP.
  index.Refine(*PathExpression::Parse(fup, graph->symbols()));
  std::cout << "\nafter Refine(" << fup << "):  components="
            << index.num_components()
            << ", physical nodes=" << index.PhysicalNodeCount() << "\n";
  run(fup);
  run("//bidder/personref/person");
  return 0;
}
