// Scenario: branching searches over the auction site. Twig queries mix a
// trunk (answered by the M*(k)-index) with branch predicates (validated
// against the data graph): "auctions with a bidder, give me their
// sellers", "items in a category that have mail activity", etc.
//
// Build & run:   ./build/examples/twig_search [scale]

#include <cstdlib>
#include <iostream>

#include "datagen/xmark.h"
#include "index/twig_eval.h"
#include "query/twig.h"
#include "util/table_writer.h"
#include "xml/graph_builder.h"

int main(int argc, char** argv) {
  using namespace mrx;
  double scale = argc > 1 ? std::atof(argv[1]) : 0.1;
  std::string doc =
      datagen::GenerateXMarkDocument(datagen::XMarkOptions::Scaled(scale));
  Result<DataGraph> graph = xml::BuildGraphFromXml(doc);
  if (!graph.ok()) {
    std::cerr << graph.status() << "\n";
    return 1;
  }
  std::cout << "auction site: " << graph->num_nodes() << " nodes\n\n";

  DataEvaluator evaluator(*graph);
  MStarIndex index(*graph);

  const char* searches[] = {
      // Sellers of auctions that already have bids.
      "//open_auction[bidder]/seller/person",
      // Items that are categorized *and* have mailbox traffic.
      "//item[incategory][mailbox/mail]/name",
      // People with a full address who watch something.
      "//person[address/city][watches]/name",
      // Closed auctions whose annotation contains emphasized text.
      "//closed_auction[annotation//emph]/price",
  };

  // Warm the index for the trunks (an adaptive system would learn these).
  for (const char* text : searches) {
    auto twig = TwigQuery::Parse(text, graph->symbols());
    if (twig.ok()) index.Refine(twig->TrunkExpression());
  }

  TableWriter table({"search", "matches", "cost", "sample"});
  for (const char* text : searches) {
    auto twig = TwigQuery::Parse(text, graph->symbols());
    if (!twig.ok()) {
      std::cerr << "bad twig: " << twig.status() << "\n";
      continue;
    }
    QueryResult r = EvaluateTwigWithIndex(index, *twig, evaluator);
    std::string sample = r.answer.empty()
                             ? "-"
                             : std::to_string(r.answer.front()) + ":" +
                                   graph->label_name(r.answer.front());
    table.AddRowValues(text, r.answer.size(), r.stats.total(), sample);
  }
  table.RenderText(std::cout);
  std::cout << "\nTrunks are precise after refinement; the bracketed "
               "predicates validate\nagainst the data graph (counted in "
               "the cost column).\n";
  return 0;
}
